package dkbms

import (
	"fmt"
	"time"

	"dkbms/internal/matview"
)

// MaintenancePolicy selects what happens to a query's memoized answer
// when a commit changes base tables its program reads.
type MaintenancePolicy int

// Maintenance policies.
const (
	// MaintDefault defers to ConcurrentOptions.MaintenancePolicy (and,
	// failing that, to MaintAuto).
	MaintDefault MaintenancePolicy = iota
	// MaintRederive drops the stale memo; the next identical query
	// re-derives from scratch (the pre-view behavior).
	MaintRederive
	// MaintIncremental maintains the memo through every fact commit:
	// insertions propagate along the program's semi-naive delta rules,
	// retractions run Delete-and-Rederive. Coarser changes (rules,
	// relation creation, Resync) still re-derive.
	MaintIncremental
	// MaintAuto maintains incrementally while the commit's relevant
	// delta stays below the cost crossover (matview.AutoIncremental)
	// and re-derives past it.
	MaintAuto
)

// String names the policy.
func (p MaintenancePolicy) String() string {
	switch p {
	case MaintDefault:
		return "default"
	case MaintRederive:
		return "rederive"
	case MaintIncremental:
		return "incremental"
	case MaintAuto:
		return "auto"
	}
	return fmt.Sprintf("maintenancepolicy(%d)", int(p))
}

// ParseMaintenancePolicy parses a policy name as accepted by the dkbd
// -maint-policy flag ("rederive", "incremental", "auto"; "default"
// defers to the server default).
func ParseMaintenancePolicy(s string) (MaintenancePolicy, error) {
	switch s {
	case "", "default":
		return MaintDefault, nil
	case "rederive":
		return MaintRederive, nil
	case "incremental":
		return MaintIncremental, nil
	case "auto":
		return MaintAuto, nil
	}
	return MaintDefault, fmt.Errorf("dkbms: unknown maintenance policy %q (want rederive, incremental or auto)", s)
}

// MaterializedView describes one maintained view in the shared plan
// cache (dkbsh .views and the wire VIEWS reply render these).
type MaterializedView struct {
	// Query is the cached query's source text.
	Query string
	// Policy is the maintenance policy the view was stored under.
	Policy MaintenancePolicy
	// Rows is the current size of the memoized answer.
	Rows int
	// Maintains counts commits this view absorbed incrementally.
	Maintains int64
	// LastDeltaTuples is the derived-delta size of the last
	// maintenance run; LastDuration its wall-clock cost.
	LastDeltaTuples int64
	LastDuration    time.Duration
}

// Views lists the maintained materialized views currently in the plan
// cache, most recently used first.
func (c *ConcurrentTestbed) Views() []MaterializedView {
	return c.plans.views()
}

// MatViewStats snapshots the materialized-view maintenance counters.
func (c *ConcurrentTestbed) MatViewStats() matview.Stats {
	return c.plans.mvStats()
}
