#!/bin/sh
# Lint entry point: go vet, the dkblint domain analyzers, and — when
# installed — the generic linters CI pins. Extra arguments are passed
# to dkblint (e.g. scripts/lint.sh -json).
set -e
cd "$(dirname "$0")/.."

go vet ./...
go run ./cmd/dkblint "$@" ./...

if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "lint.sh: staticcheck not installed, skipping" >&2
fi
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "lint.sh: govulncheck not installed, skipping" >&2
fi
