#!/bin/sh
# Performance-regression gate: re-runs the quick benchmark suite and
# compares every latency cell against the committed baselines in
# scripts/bench_baseline/ (fail at >2x slower and >1ms absolute, by
# default). After an intentional perf change, refresh the baselines:
#
#   go run ./cmd/benchgate -update
#
# Extra arguments pass through to the gate, e.g.
#   ./scripts/benchgate.sh -exp fig13 -tolerance 3
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/benchgate "$@"
