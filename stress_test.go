package dkbms

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedPoolStress is the scheduler's contention test: many
// sessions run Parallel recursive queries against one small shared
// evaluation pool while a writer streams live updates. Every answer
// must be the exact closure (the writer only adds edges *into* c0,
// which never change the closure from c0), no evaluation temp tables
// may leak, and the total goroutine count must stay bounded by
// sessions + pool size — not sessions × rules.
func TestSharedPoolStress(t *testing.T) {
	const (
		sessions   = 8
		perSession = 6
		chainLen   = 12
	)
	tb := NewMemory()
	c := NewConcurrentWithOptions(tb, ConcurrentOptions{SchedWorkers: 2})
	defer c.Close()

	var src strings.Builder
	for i := 0; i < chainLen; i++ {
		fmt.Fprintf(&src, "parent(c%d, c%d).\n", i, i+1)
	}
	src.WriteString("ancestor(X, Y) :- parent(X, Y).\n")
	src.WriteString("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n")
	src.WriteString("audit(seed, seed).\n")
	if err := c.Load(src.String()); err != nil {
		t.Fatal(err)
	}

	const q = "?- ancestor(c0, X)."
	baseline, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := rowsKey(baseline)
	if len(baseline.Rows) != chainLen {
		t.Fatalf("baseline closure has %d rows, want %d", len(baseline.Rows), chainLen)
	}

	baseGoroutines := runtime.NumGoroutine()
	var peak atomic.Int64
	monStop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-monStop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Writer: a live stream of cold audit facts plus hot parent edges
	// pointing INTO c0 — real snapshot churn on the queried relation
	// that leaves the answer set untouched.
	writerStop := make(chan struct{})
	writerErr := make(chan error, 1)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-writerStop:
				return
			default:
			}
			if err := c.Load(fmt.Sprintf("audit(a%d, b%d).\nparent(w%d, c0).", i, i, i)); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, sessions*perSession)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		//dkblint:bounded one goroutine per test session
		go func() {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				res, err := c.Query(q, &QueryOptions{Parallel: true})
				if err != nil {
					errs <- err
					return
				}
				if got := rowsKey(res); got != want {
					errs <- fmt.Errorf("parallel answer drifted:\n got %s\nwant %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(writerStop)
	writer.Wait()
	close(monStop)
	mon.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	select {
	case err := <-writerErr:
		t.Fatal(err)
	default:
	}

	// Live maintained views intentionally hold their accumulator temp
	// tables; flush them (and drain any condemned views) so the leak
	// check below sees only genuinely leaked evaluation tables.
	c.Resync()

	// No evaluation temp tables may survive the storm.
	for _, name := range c.Testbed().DB().Catalog().Tables() {
		if strings.HasPrefix(name, "dkb") {
			t.Fatalf("leaked evaluation temp table %q", name)
		}
	}

	// Goroutines: one per session + pool workers + writer + monitor +
	// runtime slack. Unbounded per-rule fan-out would instead add
	// sessions × rules on top.
	st := c.SchedStats()
	if st.Workers != 2 {
		t.Fatalf("pool workers = %d, want 2", st.Workers)
	}
	if st.Submitted == 0 {
		t.Fatal("parallel queries never reached the shared pool")
	}
	limit := int64(baseGoroutines + sessions + st.Workers + 12)
	if p := peak.Load(); p > limit {
		t.Fatalf("peak goroutines %d exceeds bound %d (base %d)", p, limit, baseGoroutines)
	}
}
