package dkbms

import (
	"dkbms/internal/core"
	"dkbms/internal/dlog"
)

// Prepared is a precompiled query (the paper's §6 precompilation
// conclusion: "for applications involving few updates and frequently
// occurring queries with large R_r values, this price is well worth
// paying"). The compiled program is cached and transparently recompiled
// when a rule-base change invalidates it — committing workspace rules,
// adding workspace rules, or creating a new fact relation (which can
// change the mixed rules/facts normalization).
type Prepared struct {
	tb   *Testbed
	q    dlog.Query
	opts QueryOptions

	compiled *core.Compiled
	gen      uint64
	// Recompiles counts compilations performed (1 after Prepare; grows
	// only when the cache is invalidated).
	Recompiles int
}

// Prepare compiles a query once for repeated execution.
func (tb *Testbed) Prepare(src string, opts *QueryOptions) (*Prepared, error) {
	if tb.closed {
		return nil, ErrClosed
	}
	q, err := dlog.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &QueryOptions{}
	}
	p := &Prepared{tb: tb, q: q, opts: *opts}
	if err := p.ensure(); err != nil {
		return nil, err
	}
	return p, nil
}

// Run executes the prepared query, recompiling first if the rule base
// changed since the last compilation. Running against a closed testbed
// returns ErrClosed.
func (p *Prepared) Run() (*QueryResult, error) {
	if p.tb.closed {
		return nil, ErrClosed
	}
	if err := p.ensure(); err != nil {
		return nil, err
	}
	return p.tb.Evaluate(p.compiled, &p.opts)
}

// Stale reports whether the cached program would be recompiled by the
// next Run.
func (p *Prepared) Stale() bool {
	return p.compiled == nil || p.gen != p.tb.ruleGen
}

func (p *Prepared) ensure() error {
	if !p.Stale() {
		return nil
	}
	compiled, err := p.tb.Compile(p.q, &p.opts)
	if err != nil {
		return err
	}
	p.compiled = compiled
	p.gen = p.tb.ruleGen
	p.Recompiles++
	return nil
}
