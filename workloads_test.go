package dkbms

import (
	"fmt"
	"math/rand"
	"testing"

	"dkbms/internal/rel"
	"dkbms/internal/workload"
)

// TestDAGWorkload runs the ancestor query over the paper's layered-DAG
// characterization and cross-checks modes against each other.
func TestDAGWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := NewMemory()
	defer tb.Close()
	edges := workload.DAG(6, 5, 2, rng)
	if err := tb.AssertTuples("e", edges); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreateFactIndex("e", 0); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
reach(X, Y) :- e(X, Y).
reach(X, Y) :- e(X, Z), reach(Z, Y).
`)
	src := workload.DAGNode(0, 0)
	var counts []int
	for _, mode := range allModes {
		opts := mode.opts
		res, err := tb.Query(fmt.Sprintf("?- reach(%s, W).", src), &opts)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		counts = append(counts, len(res.Rows))
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("modes disagree: %v", counts)
		}
	}
	if counts[0] == 0 {
		t.Fatal("no reachable nodes in a connected DAG layer")
	}
}

// TestCyclicWorkload: cycles must terminate and every node of a cycle
// reaches every node of that cycle (including itself).
func TestCyclicWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tb := NewMemory()
	defer tb.Close()
	edges := workload.CyclicGraph(2, 5, 0, rng)
	if err := tb.AssertTuples("e", edges); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
reach(X, Y) :- e(X, Y).
reach(X, Y) :- e(X, Z), reach(Z, Y).
`)
	res, err := tb.Query(fmt.Sprintf("?- reach(%s, W).", workload.CyclicNode(0, 0)), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle of length 5: the source reaches all 5 nodes (itself via the
	// full loop).
	if len(res.Rows) != 5 {
		t.Fatalf("reached %d nodes, want 5: %v", len(res.Rows), rowSet(res.Rows))
	}
}

// TestDeepRecursionList: a long list forces hundreds of LFP iterations;
// nothing may overflow or leak.
func TestDeepRecursionList(t *testing.T) {
	if testing.Short() {
		t.Skip("deep recursion is slow")
	}
	tb := NewMemory()
	defer tb.Close()
	n := 200
	if err := tb.AssertTuples("e", workload.Lists(1, n)); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreateFactIndex("e", 0); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
reach(X, Y) :- e(X, Y).
reach(X, Y) :- e(X, Z), reach(Z, Y).
`)
	before := len(tb.DB().Catalog().Tables())
	res, err := tb.Query("?- reach(l0_0, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n-1 {
		t.Fatalf("reached %d, want %d", len(res.Rows), n-1)
	}
	iters := 0
	for _, ns := range res.Eval.Nodes {
		if ns.Recursive && ns.Iterations > iters {
			iters = ns.Iterations
		}
	}
	if iters < n-2 {
		t.Fatalf("only %d iterations for a %d-list", iters, n)
	}
	if after := len(tb.DB().Catalog().Tables()); after != before {
		t.Fatalf("temp tables leaked across %d iterations: %d -> %d", iters, before, after)
	}
}

// TestManyPredicatesOneQuery: a query touching dozens of predicates
// (wide evaluation order list) compiles and runs.
func TestManyPredicatesOneQuery(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	if err := tb.AssertTuples("base", []rel.Tuple{
		{rel.NewString("a"), rel.NewString("b")},
		{rel.NewString("b"), rel.NewString("c")},
	}); err != nil {
		t.Fatal(err)
	}
	src := "p0(X, Y) :- base(X, Y).\n"
	for i := 1; i < 40; i++ {
		src += fmt.Sprintf("p%d(X, Y) :- p%d(X, Y).\n", i, i-1)
	}
	tb.MustLoad(src)
	res, err := tb.Query("?- p39(a, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(b)")
	if res.Compile.RelevantPreds < 40 {
		t.Fatalf("P_r = %d", res.Compile.RelevantPreds)
	}
}

// TestFactsAddedBetweenQueries: query results track extensional
// updates without recompilation machinery getting in the way.
func TestFactsAddedBetweenQueries(t *testing.T) {
	tb := familyTB(t)
	res1, err := tb.Query("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.MustLoad("parent(tom, pat). parent(pat, sue).")
	res2, err := tb.Query("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res1.Rows)+2 {
		t.Fatalf("rows %d -> %d, want +2", len(res1.Rows), len(res2.Rows))
	}
}

// TestTernaryPredicates: nothing in the pipeline is binary-specific.
func TestTernaryPredicates(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
flight(sfo, lax, 99).
flight(lax, jfk, 299).
flight(jfk, bos, 89).
route(A, B, C) :- flight(A, B, C).
route(A, B, C) :- flight(A, M, C), route(M, B, D).
`)
	// Reachable cities from sfo with the first-hop fare.
	res, err := tb.Query("?- route(sfo, W, F).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(lax, 99)", "(jfk, 99)", "(bos, 99)")
}

// TestUnaryPredicates through the whole stack.
func TestUnaryPredicates(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
red(a). red(b).
blue(b). blue(c).
purple(X) :- red(X), blue(X).
`)
	res, err := tb.Query("?- purple(W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(b)")
}
