module dkbms

go 1.22
