package dkbms

import (
	"context"
	"fmt"
	"sync"

	"dkbms/internal/dlog"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
	"dkbms/internal/stored"
)

// ConcurrentTestbed makes one Testbed safe for use from many goroutines
// — the shared-testbed concurrency control behind the dkbd server. The
// paper's testbed is a single-user harness; this wrapper applies the
// observation of its conclusion 7a (recursive equations evaluate
// correctly in parallel over a shared DBMS) across sessions:
//
//   - queries, compilation and prepared-query execution take a read
//     lock and run concurrently — including internally-parallel LFP
//     evaluations, whose temp tables are session-private (the catalog
//     and pager serialize their own registries);
//   - Load, Assert, Retract, Update and Close take the write lock and
//     run exclusively, so a query never observes a half-applied update.
//
// Query additionally consults a shared plan cache: compiled evaluation
// programs are keyed by (query text, options) and reused across sessions
// while the rule-base generation stands still, and a query's answer is
// memoized until any rule or fact changes — so a hot query repeated by
// many sessions skips the whole parse→typecheck→magic→codegen pipeline
// (and, when the D/KB is unchanged, the LFP evaluation too).
//
// The zero value is not usable; wrap an open Testbed with NewConcurrent.
type ConcurrentTestbed struct {
	mu    sync.RWMutex
	tb    *Testbed
	plans *planCache
}

// NewConcurrent wraps a testbed for concurrent use. The caller must not
// use the wrapped testbed directly afterwards.
func NewConcurrent(tb *Testbed) *ConcurrentTestbed {
	return &ConcurrentTestbed{tb: tb, plans: newPlanCache(DefaultPlanCacheEntries)}
}

// NewConcurrentWithCache is NewConcurrent with an explicit plan-cache
// capacity (entries; <= 0 selects DefaultPlanCacheEntries).
func NewConcurrentWithCache(tb *Testbed, planEntries int) *ConcurrentTestbed {
	return &ConcurrentTestbed{tb: tb, plans: newPlanCache(planEntries)}
}

// Testbed returns the wrapped testbed for single-goroutine phases
// (setup, teardown, benchmarks). Using it while other goroutines go
// through the wrapper forfeits the concurrency guarantees.
func (c *ConcurrentTestbed) Testbed() *Testbed { return c.tb }

// Close shuts the testbed down after all in-flight operations drain.
func (c *ConcurrentTestbed) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tb.Close()
}

// Load enters a Horn-clause program exclusively.
func (c *ConcurrentTestbed) Load(src string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.tb.Load(src)
	c.invalidate()
	return err
}

// Assert adds one ground fact exclusively.
func (c *ConcurrentTestbed) Assert(fact dlog.Atom) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.tb.Assert(fact)
	c.invalidate()
	return err
}

// Retract deletes matching facts exclusively.
func (c *ConcurrentTestbed) Retract(pattern dlog.Atom) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := c.tb.Retract(pattern)
	c.invalidate()
	return n, err
}

// RetractSrc is Retract for a source-syntax pattern.
func (c *ConcurrentTestbed) RetractSrc(src string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := c.tb.RetractSrc(src)
	c.invalidate()
	return n, err
}

// Update commits workspace rules to the stored D/KB exclusively.
func (c *ConcurrentTestbed) Update() (stored.UpdateStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, err := c.tb.Update()
	c.invalidate()
	return st, err
}

// invalidate reconciles the plan cache with the generations after an
// exclusive update. Caller holds the write lock. Even a partially failed
// update may have moved a generation, so this runs on every exit path.
func (c *ConcurrentTestbed) invalidate() {
	c.plans.purgeStale(c.tb.ruleGen, c.tb.dataGen)
}

// Query evaluates a query under the read lock, concurrently with other
// queries, consulting the shared plan cache first: an unchanged D/KB
// serves repeated identical queries from the memoized answer; a fact
// change (LOAD of facts, RETRACT) keeps the compiled program but
// re-evaluates; a rule change recompiles from scratch.
func (c *ConcurrentTestbed) Query(src string, opts *QueryOptions) (*QueryResult, error) {
	return c.QueryContext(context.Background(), src, opts)
}

// QueryContext is Query under a context: cancellation is observed at
// LFP iteration boundaries (see Testbed.QueryContext). Traced queries
// (opts.Trace) share compiled plans with untraced ones but bypass the
// memoized-answer path in both directions, so a returned trace always
// describes an evaluation that actually ran.
func (c *ConcurrentTestbed) QueryContext(ctx context.Context, src string, opts *QueryOptions) (*QueryResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if opts == nil {
		opts = &QueryOptions{}
	}
	key := planKey{src: src, opts: *opts}
	key.opts.Trace = false // the trace flag does not change the plan
	ruleGen, dataGen := c.tb.ruleGen, c.tb.dataGen
	compiled, cached := c.plans.lookup(key, ruleGen, dataGen)
	if cached != nil && !opts.Trace {
		out := shareResult(cached)
		out.Cache = "result"
		return out, nil
	}
	cacheStatus := "miss"
	if compiled != nil {
		cacheStatus = "plan"
	}
	var tr *obs.Trace
	if opts.Trace {
		tr = obs.NewTrace("query")
	}
	if compiled == nil {
		q, err := dlog.ParseQuery(src)
		if err != nil {
			return nil, parseErr(err)
		}
		if compiled, err = c.tb.compile(q, opts, tr); err != nil {
			return nil, err
		}
	}
	res, err := c.tb.evaluate(ctx, compiled, opts, tr)
	if err != nil {
		return nil, err
	}
	if opts.Trace {
		c.plans.store(key, ruleGen, compiled, dataGen, nil)
	} else {
		c.plans.store(key, ruleGen, compiled, dataGen, res)
	}
	out := shareResult(res)
	out.Cache = cacheStatus
	return out, nil
}

// shareResult returns a caller-private view of a cached result: the
// struct and row slice are copied so callers may append to or reorder
// Rows, while the tuples themselves (treated as immutable everywhere)
// stay shared.
func shareResult(res *QueryResult) *QueryResult {
	out := *res
	out.Rows = append([]rel.Tuple(nil), res.Rows...)
	return &out
}

// PlanStats snapshots the shared plan cache's counters.
func (c *ConcurrentTestbed) PlanStats() PlanCacheStats {
	return c.plans.snapshot()
}

// PagerStats snapshots the underlying buffer pool's counters, aggregated
// across its shards.
func (c *ConcurrentTestbed) PagerStats() storage.PagerStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tb.db.PagerStats()
}

// EngineMetrics snapshots the engine floor as registry metrics: a row
// gauge and heap-traffic counters per table, shape and search counters
// per index, and the buffer-pool counters per shard. It runs under the
// read lock, which excludes writers, so the non-atomic structural fields
// (index height, key counts) read cleanly. The server registers this as
// a metrics-registry collector; the set of names follows the live schema
// as tables are created and dropped.
func (c *ConcurrentTestbed) EngineMetrics() []obs.Metric {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cat := c.tb.db.Catalog()
	var out []obs.Metric
	for _, name := range cat.Tables() {
		t := cat.Table(name)
		if t == nil {
			continue
		}
		hs := t.Heap.Stats()
		pre := "table." + name + "."
		out = append(out,
			obs.Metric{Name: pre + "rows", Kind: "gauge", Value: int64(t.Rows())},
			obs.Metric{Name: pre + "heap_reads", Kind: "counter", Value: hs.Reads},
			obs.Metric{Name: pre + "heap_inserts", Kind: "counter", Value: hs.Inserts},
			obs.Metric{Name: pre + "heap_deletes", Kind: "counter", Value: hs.Deletes},
			obs.Metric{Name: pre + "heap_scans", Kind: "counter", Value: hs.Scans},
			obs.Metric{Name: pre + "heap_pages_scanned", Kind: "counter", Value: hs.PagesScanned},
			obs.Metric{Name: pre + "heap_recs_scanned", Kind: "counter", Value: hs.RecsScanned},
		)
		for _, ix := range t.Indexes {
			ts := ix.Stats()
			ipre := "index." + ix.Name + "."
			out = append(out,
				obs.Metric{Name: ipre + "height", Kind: "gauge", Value: ts.Height},
				obs.Metric{Name: ipre + "entries", Kind: "gauge", Value: ts.Entries},
				obs.Metric{Name: ipre + "searches", Kind: "counter", Value: ts.Searches},
				obs.Metric{Name: ipre + "depth_total", Kind: "counter", Value: ts.DepthTotal},
				obs.Metric{Name: ipre + "splits", Kind: "counter", Value: ts.Splits},
			)
		}
	}
	for i, st := range c.tb.db.PagerShardStats() {
		pre := fmt.Sprintf("pool.shard.%02d.", i)
		out = append(out,
			obs.Metric{Name: pre + "hits", Kind: "counter", Value: st.Hits},
			obs.Metric{Name: pre + "misses", Kind: "counter", Value: st.Misses},
			obs.Metric{Name: pre + "evictions", Kind: "counter", Value: st.Evictions},
			obs.Metric{Name: pre + "writes", Kind: "counter", Value: st.Writes},
		)
	}
	return out
}

// RunQuery is Query for a pre-parsed query.
func (c *ConcurrentTestbed) RunQuery(q dlog.Query, opts *QueryOptions) (*QueryResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tb.RunQuery(q, opts)
}

// Generation returns the current rule-base generation. Prepared queries
// compiled at an older generation recompile on their next run; the
// server reports it so clients can correlate results with D/KB versions.
func (c *ConcurrentTestbed) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tb.ruleGen
}

// Prepare compiles a query for repeated execution. The returned
// ConcurrentPrepared is itself safe for use by one goroutine at a time
// (the server keys them per session); its runs take the read lock.
func (c *ConcurrentTestbed) Prepare(src string, opts *QueryOptions) (*ConcurrentPrepared, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, err := c.tb.Prepare(src, opts)
	if err != nil {
		return nil, err
	}
	return &ConcurrentPrepared{c: c, p: p}, nil
}

// ConcurrentPrepared is a prepared query bound to a ConcurrentTestbed.
// Each run takes the testbed's read lock, so a run either sees the rule
// base entirely before or entirely after any concurrent update — and
// recompiles transparently in the latter case.
type ConcurrentPrepared struct {
	c *ConcurrentTestbed
	p *Prepared
}

// Run executes the prepared query under the read lock.
func (cp *ConcurrentPrepared) Run() (*QueryResult, error) {
	cp.c.mu.RLock()
	defer cp.c.mu.RUnlock()
	return cp.p.Run()
}

// Stale reports whether the next Run will recompile.
func (cp *ConcurrentPrepared) Stale() bool {
	cp.c.mu.RLock()
	defer cp.c.mu.RUnlock()
	return cp.p.Stale()
}

// Recompiles returns the number of compilations performed so far.
func (cp *ConcurrentPrepared) Recompiles() int {
	cp.c.mu.RLock()
	defer cp.c.mu.RUnlock()
	return cp.p.Recompiles
}
