package dkbms

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dkbms/internal/catalog"
	"dkbms/internal/core"
	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/matview"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/sched"
	"dkbms/internal/snapshot"
	"dkbms/internal/storage"
	"dkbms/internal/stored"
)

// ConcurrentTestbed makes one Testbed safe for use from many goroutines
// — the shared-testbed concurrency control behind the dkbd server. The
// paper's testbed is a single-user harness; this wrapper applies the
// observation of its conclusion 7a (recursive equations evaluate
// correctly in parallel over a shared DBMS) across sessions, using
// MVCC-lite snapshot isolation instead of a reader/writer lock:
//
//   - queries pin the current engine snapshot (internal/snapshot): an
//     immutable view of the rule workspace and every base-table version
//     at one commit boundary. Pinning is an atomic pointer load plus a
//     reference count — readers never take a lock a writer holds, so a
//     long LOAD or RETRACT no longer convoys the whole read side;
//   - Load, Assert, Retract and Update serialize on a commit mutex,
//     copy only the tables they touch (copy-on-write at table
//     granularity), apply themselves to the copies, and publish the
//     successor snapshot atomically. In-flight queries keep reading the
//     versions their snapshot pinned; those versions are reclaimed when
//     the last reader drains;
//   - a query therefore always observes a committed state — entirely
//     before or entirely after any concurrent update, never between.
//
// Query additionally consults a shared plan cache: compiled evaluation
// programs are keyed by (query text, options) and reused across sessions
// while the rule-base generation stands still, and a query's answer is
// memoized with the set of base-table versions it was computed from —
// so an update invalidates only the answers that read the tables it
// touched, and a hot query repeated by many sessions skips the whole
// parse→typecheck→magic→codegen pipeline (and, when its tables are
// unchanged, the LFP evaluation too).
//
// The zero value is not usable; wrap an open Testbed with NewConcurrent.
type ConcurrentTestbed struct {
	// commitMu serializes the write path (footprint analysis, table
	// copies, the update itself, snapshot publication) and Close. The
	// read path never takes it.
	commitMu sync.Mutex
	tb       *Testbed
	snaps    *snapshot.Store
	plans    *planCache
	// sched is the shared evaluation worker pool: every session's
	// parallel query submits its work here, so total evaluation
	// goroutines stay bounded by the pool size regardless of how many
	// sessions run recursions concurrently.
	sched *sched.Pool
	// closed is set by Close before the reader drain; readers check it
	// after pinning so a query admitted during shutdown backs out.
	closed atomic.Bool
	// defaultPolicy is the maintenance policy for queries that leave
	// QueryOptions.Maintenance at MaintDefault.
	defaultPolicy MaintenancePolicy
}

// ConcurrentOptions tune a ConcurrentTestbed.
type ConcurrentOptions struct {
	// PlanCacheEntries is the shared plan-cache capacity (<= 0 selects
	// DefaultPlanCacheEntries).
	PlanCacheEntries int
	// SchedWorkers sizes the shared evaluation worker pool (<= 0
	// selects GOMAXPROCS).
	SchedWorkers int
	// MaintenancePolicy is the default materialized-view maintenance
	// policy for queries that do not set QueryOptions.Maintenance
	// (MaintDefault selects MaintAuto).
	MaintenancePolicy MaintenancePolicy
}

// NewConcurrent wraps a testbed for concurrent use. The caller must not
// use the wrapped testbed directly afterwards (see Testbed).
func NewConcurrent(tb *Testbed) *ConcurrentTestbed {
	return NewConcurrentWithOptions(tb, ConcurrentOptions{})
}

// NewConcurrentWithCache is NewConcurrent with an explicit plan-cache
// capacity (entries; <= 0 selects DefaultPlanCacheEntries).
func NewConcurrentWithCache(tb *Testbed, planEntries int) *ConcurrentTestbed {
	return NewConcurrentWithOptions(tb, ConcurrentOptions{PlanCacheEntries: planEntries})
}

// NewConcurrentWithOptions is NewConcurrent with explicit tuning.
func NewConcurrentWithOptions(tb *Testbed, opts ConcurrentOptions) *ConcurrentTestbed {
	planEntries := opts.PlanCacheEntries
	if planEntries <= 0 {
		planEntries = DefaultPlanCacheEntries
	}
	c := &ConcurrentTestbed{
		tb:            tb,
		snaps:         snapshot.NewStore(BaseTableName("")),
		plans:         newPlanCache(planEntries),
		sched:         sched.NewPool(opts.SchedWorkers),
		defaultPolicy: opts.MaintenancePolicy,
	}
	// Wire view maintenance: refreshes run against the live database
	// (the writer maintains after publishing), in parallel across views
	// on the shared pool.
	c.plans.db = tb.db
	c.plans.pool = c.sched
	tb.SetEvalPool(c.sched)
	c.publish(0) // the initial snapshot: the testbed state as wrapped
	return c
}

// resolvePolicy maps a query's requested maintenance policy through the
// testbed default down to the hard default, MaintAuto.
func (c *ConcurrentTestbed) resolvePolicy(opts *QueryOptions) MaintenancePolicy {
	p := opts.Maintenance
	if p == MaintDefault {
		p = c.defaultPolicy
	}
	if p == MaintDefault {
		p = MaintAuto
	}
	return p
}

// SchedStats snapshots the shared evaluation pool's counters.
func (c *ConcurrentTestbed) SchedStats() sched.Stats {
	return c.sched.Stats()
}

// Testbed returns the wrapped testbed for single-goroutine phases
// (setup, teardown, benchmarks). Direct mutations bypass snapshot
// publication: they are invisible to queries (and racy against any
// concurrent reader) until Resync republishes the live state.
func (c *ConcurrentTestbed) Testbed() *Testbed { return c.tb }

// Resync republishes the engine snapshot from the live testbed state
// and emits a flush invalidation event, dropping every cached plan,
// result and maintained view (out-of-band mutation moves no
// generations, so nothing cached can be trusted). Call it after
// mutating the wrapped testbed directly in a phase with no concurrent
// readers.
func (c *ConcurrentTestbed) Resync() {
	//dkblint:locksafe single-writer commit protocol: writers serialize on commitMu through publication I/O; readers never take it
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.closed.Load() {
		return
	}
	c.publishEvent(0, &matview.Event{Kind: matview.EventFlush})
}

// Close shuts the testbed down after all in-flight queries drain and
// every superseded table version has been reclaimed.
func (c *ConcurrentTestbed) Close() error {
	//dkblint:locksafe shutdown drains in-flight readers under commitMu by design; no new commit can interleave with the close
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if !c.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	// New readers now back out at the post-pin closed check; wait for
	// admitted ones (and the version reclamation their releases
	// trigger) before closing the pager under them.
	c.snaps.Shutdown()
	err := c.tb.Close()
	// Stop the evaluation workers after the reader drain: a draining
	// query's Group.Wait would still complete its tasks inline, but an
	// idle pool past this point is pure overhead.
	c.sched.Close()
	return err
}

// acquire pins the current snapshot for one read operation. The closed
// re-check after pinning pairs with Close: either Close's drain
// observes our pin and waits, or we observe closed and back out — a
// reader never touches storage the pager has released.
func (c *ConcurrentTestbed) acquire() (*snapshot.Snapshot, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	s := c.snaps.Acquire()
	if c.closed.Load() {
		s.Release()
		return nil, ErrClosed
	}
	return s, nil
}

// view returns database and stored-manager views bound to the pinned
// snapshot: every base-table resolution inside them lands on the
// snapshot's frozen versions, while session-private temp tables fall
// through to the live catalog.
func (c *ConcurrentTestbed) view(s *snapshot.Snapshot) (*db.DB, *stored.Manager) {
	vdb := c.tb.db.WithResolver(s)
	return vdb, c.tb.st.WithDB(vdb)
}

// --- Write path: copy-on-write commits ---

// shadow clones each named table that exists in the live catalog
// (catalog.ShadowTable), so the update about to run mutates fresh
// copies while every pinned snapshot keeps reading the originals. It
// returns the time spent copying — the writer-stall cost the snapshot
// telemetry reports. A failed copy aborts the commit: the catalog is
// still consistent (fully-copied tables are content-identical) but the
// update must not run on a half-shadowed footprint.
func (c *ConcurrentTestbed) shadow(tables []string) (time.Duration, error) {
	start := time.Now()
	cat := c.tb.db.Catalog()
	for _, name := range tables {
		if cat.Table(name) == nil {
			continue
		}
		if _, err := cat.ShadowTable(name); err != nil {
			return time.Since(start), fmt.Errorf("dkbms: copy-on-write of %s: %w", name, err)
		}
	}
	return time.Since(start), nil
}

// publish installs the successor snapshot with no invalidation event:
// the plan cache treats the commit as an unknown mutation and drops
// stale memos instead of maintaining them. Failed commit exit paths use
// this — a partially applied update may have moved tables or
// generations in ways the intended event no longer describes.
func (c *ConcurrentTestbed) publish(buildCost time.Duration) {
	c.publishEvent(buildCost, nil)
}

// publishEvent installs the successor snapshot from the live catalog
// state (every non-temp table) and the current generations, then
// reconciles the plan cache against the typed invalidation event:
// memoized answers whose programs read the committed fact deltas are
// maintained in place (policy permitting), everything staler is
// dropped. It runs on every commit exit path. Caller holds commitMu.
func (c *ConcurrentTestbed) publishEvent(buildCost time.Duration, ev *matview.Event) {
	cat := c.tb.db.Catalog()
	tables := make(map[string]*catalog.Table)
	for _, name := range cat.Tables() {
		t := cat.Table(name)
		if t == nil || t.Temp {
			continue
		}
		tables[name] = t
	}
	prev := c.snaps.Current()
	s := c.snaps.Publish(tables, c.tb.ruleGen, c.tb.dataGen, c.tb.ws, buildCost)
	c.plans.Invalidate(prev, s, ev)
}

// Load enters a Horn-clause program as one commit: the fact relations
// it appends to are copied, rules go to a fresh workspace clone, and
// the result is published as the next snapshot.
func (c *ConcurrentTestbed) Load(src string) error {
	//dkblint:locksafe single-writer commit protocol: writers serialize on commitMu through copy-and-publish I/O; readers never take it
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	prog, err := dlog.ParseProgram(src)
	if err != nil {
		return parseErr(err)
	}
	if len(prog.Queries) > 0 {
		return fmt.Errorf("%w: Load input contains a query; use Query", ErrSemantic)
	}
	// Commit footprint: one table per fact predicate, the extensional
	// dictionary when a new relation will be created, a workspace clone
	// when rules will be added.
	cat := c.tb.db.Catalog()
	var tables []string
	seen := make(map[string]int) // table -> 1 + index into deltas (0 = unseen)
	var deltas []matview.TableDelta
	hasRules, newTable := false, false
	for _, cl := range prog.Clauses {
		if !cl.IsFact() {
			hasRules = true
			continue
		}
		t := BaseTableName(cl.Head.Pred)
		if seen[t] == 0 {
			if cat.Table(t) != nil {
				tables = append(tables, t)
				deltas = append(deltas, matview.TableDelta{Table: t})
				seen[t] = len(deltas)
			} else {
				// A fresh relation bumps the rule generation, which
				// already re-derives every memo; no delta needed.
				newTable = true
				seen[t] = -1
			}
		}
		if di := seen[t]; di > 0 {
			tu := make(rel.Tuple, len(cl.Head.Args))
			for i, a := range cl.Head.Args {
				tu[i] = a.Val
			}
			deltas[di-1].Inserted = append(deltas[di-1].Inserted, tu)
		}
	}
	if newTable {
		tables = append(tables, stored.TabEDBRels, stored.TabEDBCols)
	}
	if len(tables) == 0 && !hasRules && !newTable {
		// An empty program mutates nothing; skip the publish.
		return c.tb.Load(src)
	}
	if hasRules {
		// Pinned snapshots hold the current workspace; mutate a clone.
		c.tb.ws = c.tb.ws.Clone()
	}
	cost, err := c.shadow(tables)
	if err != nil {
		c.publish(cost)
		return err
	}
	err = c.tb.Load(src)
	if err != nil {
		// A partially applied program: the deltas above may overstate
		// what landed, so invalidate conservatively.
		c.publish(cost)
		return err
	}
	c.publishEvent(cost, loadEvent(hasRules || newTable, deltas))
	return nil
}

// loadEvent types a Load commit: rule or relation changes invalidate at
// the rule-generation level, pure fact appends carry their deltas.
func loadEvent(ruleChange bool, deltas []matview.TableDelta) *matview.Event {
	if ruleChange {
		return &matview.Event{Kind: matview.EventRuleGen}
	}
	return &matview.Event{Kind: matview.EventCommit, Deltas: deltas}
}

// Assert adds one ground fact as one commit.
func (c *ConcurrentTestbed) Assert(fact dlog.Atom) error {
	//dkblint:locksafe single-writer commit protocol: writers serialize on commitMu through copy-and-publish I/O; readers never take it
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	if !fact.IsGround() {
		return fmt.Errorf("%w: fact %s is not ground", ErrSemantic, fact.String())
	}
	table := BaseTableName(fact.Pred)
	tables := []string{table}
	newTable := c.tb.db.Catalog().Table(table) == nil
	if newTable {
		tables = []string{stored.TabEDBRels, stored.TabEDBCols}
	}
	cost, err := c.shadow(tables)
	if err != nil {
		c.publish(cost)
		return err
	}
	err = c.tb.Assert(fact)
	if err != nil {
		c.publish(cost)
		return err
	}
	if newTable {
		// Relation creation bumps the rule generation; every memo
		// re-derives.
		c.publishEvent(cost, &matview.Event{Kind: matview.EventRuleGen})
		return nil
	}
	tu := make(rel.Tuple, len(fact.Args))
	for i, a := range fact.Args {
		tu[i] = a.Val
	}
	c.publishEvent(cost, &matview.Event{Kind: matview.EventCommit,
		Deltas: []matview.TableDelta{{Table: table, Inserted: []rel.Tuple{tu}}}})
	return nil
}

// Retract deletes matching facts as one commit. A retract that cannot
// match anything (no relation, or no matching rows) runs without
// copying or publishing, so memoized answers survive no-op retractions.
func (c *ConcurrentTestbed) Retract(pattern dlog.Atom) (int, error) {
	//dkblint:locksafe single-writer commit protocol: writers serialize on commitMu through copy-and-publish I/O; readers never take it
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.closed.Load() {
		return 0, ErrClosed
	}
	table, where := retractFilter(pattern)
	t := c.tb.db.Catalog().Table(table)
	if t == nil || t.Schema.Len() != pattern.Arity() {
		// No relation (removes nothing) or an arity error: either way
		// the testbed call mutates nothing.
		return c.tb.Retract(pattern)
	}
	// Read the matching rows up front: a no-op retract skips the commit
	// entirely, and the matched set is exactly the fact delta the
	// maintained views propagate (the read and the delete are atomic
	// under commitMu).
	stmt := "SELECT * FROM " + table
	if where != "" {
		stmt += " WHERE " + where
	}
	matched, err := c.tb.db.Query(stmt)
	if err != nil {
		return 0, err
	}
	if len(matched.Tuples) == 0 {
		return c.tb.Retract(pattern)
	}
	cost, err := c.shadow([]string{table})
	if err != nil {
		c.publish(cost)
		return 0, err
	}
	removed, rerr := c.tb.Retract(pattern)
	if rerr != nil {
		c.publish(cost)
		return removed, rerr
	}
	c.publishEvent(cost, &matview.Event{Kind: matview.EventCommit,
		Deltas: []matview.TableDelta{{Table: table, Deleted: matched.Tuples}}})
	return removed, nil
}

// RetractSrc is Retract for a source-syntax pattern.
func (c *ConcurrentTestbed) RetractSrc(src string) (int, error) {
	pattern, err := parseRetract(src)
	if err != nil {
		return 0, err
	}
	return c.Retract(pattern)
}

// Update commits workspace rules to the stored D/KB as one commit: the
// rule-storage relations are copied, the workspace is cloned (Update
// clears it), and the result is published as the next snapshot.
func (c *ConcurrentTestbed) Update() (stored.UpdateStats, error) {
	//dkblint:locksafe single-writer commit protocol: writers serialize on commitMu through copy-and-publish I/O; readers never take it
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.closed.Load() {
		return stored.UpdateStats{}, ErrClosed
	}
	c.tb.ws = c.tb.ws.Clone()
	cost, err := c.shadow([]string{
		stored.TabRuleSource, stored.TabReachablePreds,
		stored.TabIDBRels, stored.TabIDBCols,
	})
	if err != nil {
		c.publish(cost)
		return stored.UpdateStats{}, err
	}
	st, uerr := c.tb.Update()
	if uerr != nil {
		c.publish(cost)
		return st, uerr
	}
	c.publishEvent(cost, &matview.Event{Kind: matview.EventRuleGen})
	return st, nil
}

// --- Read path: pinned-snapshot queries ---

// Query evaluates a query against a pinned snapshot, concurrently with
// other queries and with writers, consulting the shared plan cache
// first: a repeat whose base tables are unchanged serves the memoized
// answer; a change to a table the program reads keeps the compiled
// program but re-evaluates; a rule change recompiles from scratch.
func (c *ConcurrentTestbed) Query(src string, opts *QueryOptions) (*QueryResult, error) {
	return c.QueryContext(context.Background(), src, opts)
}

// QueryContext is Query under a context: cancellation is observed at
// LFP iteration boundaries (see Testbed.QueryContext). Traced queries
// (opts.Trace) share compiled plans with untraced ones but bypass the
// memoized-answer path in both directions, so a returned trace always
// describes an evaluation that actually ran.
func (c *ConcurrentTestbed) QueryContext(ctx context.Context, src string, opts *QueryOptions) (*QueryResult, error) {
	if opts == nil {
		opts = &QueryOptions{}
	}
	qid := opts.QueryID
	if qid == 0 {
		qid = obs.NewQueryID()
	}
	s, err := c.acquire()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	key := planKey{src: src, opts: *opts}
	key.opts.Trace = false // the trace flag does not change the plan
	key.opts.QueryID = 0   // neither does the per-request ID
	compiled, cached, maintained := c.plans.lookup(key, s)
	if cached != nil && !opts.Trace {
		out := shareResult(cached)
		out.Cache = "result"
		if maintained {
			out.Cache = "maintained"
		}
		out.Snapshot = s.Gen
		out.QueryID = qid
		return out, nil
	}
	cacheStatus := "miss"
	if compiled != nil {
		cacheStatus = "plan"
	}
	var tr *obs.Trace
	if opts.Trace {
		tr = obs.NewTrace("query")
		tr.Root().SetInt("snapshot_gen", int64(s.Gen))
		tr.Root().SetInt("query_id", int64(qid))
	}
	vdb, vst := c.view(s)
	if compiled == nil {
		q, err := dlog.ParseQuery(src)
		if err != nil {
			return nil, parseErr(err)
		}
		if compiled, err = c.tb.compileWith(s.WS(), vdb, vst, q, opts, tr); err != nil {
			return nil, err
		}
	}
	// A maintainable answer keeps its evaluation's derived relations:
	// the view layer refreshes them (and the memo) through commits.
	// Traced runs never publish answers, so they keep nothing.
	policy := c.resolvePolicy(opts)
	keep := policy != MaintRederive && !opts.Trace
	res, rres, err := c.tb.evaluateKeep(ctx, vdb, compiled, opts, tr, keep)
	if err != nil {
		return nil, err
	}
	res.Snapshot = s.Gen
	res.QueryID = 0 // cached answers are query-neutral; the copy below carries the ID
	if opts.Trace {
		c.plans.store(key, s, compiled, nil, nil, policy)
	} else {
		var view *matview.View
		if rres != nil && keep {
			tables, created := rres.Detach()
			view = matview.New(compiled.Program, tables, created)
		}
		c.plans.store(key, s, compiled, res, view, policy)
	}
	out := shareResult(res)
	out.Cache = cacheStatus
	out.QueryID = qid
	return out, nil
}

// RunQuery is Query for a pre-parsed query (uncached).
func (c *ConcurrentTestbed) RunQuery(q dlog.Query, opts *QueryOptions) (*QueryResult, error) {
	if opts == nil {
		opts = &QueryOptions{}
	}
	qid := opts.QueryID
	if qid == 0 {
		qid = obs.NewQueryID()
	}
	s, err := c.acquire()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	var tr *obs.Trace
	if opts.Trace {
		tr = obs.NewTrace("query")
		tr.Root().SetInt("snapshot_gen", int64(s.Gen))
		tr.Root().SetInt("query_id", int64(qid))
	}
	vdb, vst := c.view(s)
	compiled, err := c.tb.compileWith(s.WS(), vdb, vst, q, opts, tr)
	if err != nil {
		return nil, err
	}
	res, err := c.tb.evaluateWith(context.Background(), vdb, compiled, opts, tr)
	if err != nil {
		return nil, err
	}
	res.Snapshot = s.Gen
	res.QueryID = qid
	return res, nil
}

// shareResult returns a caller-private view of a cached result: the
// struct and row slice are copied so callers may append to or reorder
// Rows, while the tuples themselves (treated as immutable everywhere)
// stay shared.
func shareResult(res *QueryResult) *QueryResult {
	out := *res
	out.Rows = append([]rel.Tuple(nil), res.Rows...)
	return &out
}

// --- Telemetry ---

// PlanStats snapshots the shared plan cache's counters.
func (c *ConcurrentTestbed) PlanStats() PlanCacheStats {
	return c.plans.snapshot()
}

// SnapshotStats snapshots the MVCC store's telemetry: published
// generation, active readers, retired snapshots, version reclamation
// and writer-stall accounting.
func (c *ConcurrentTestbed) SnapshotStats() snapshot.Stats {
	return c.snaps.Stats()
}

// PagerStats snapshots the underlying buffer pool's counters,
// aggregated across its shards.
func (c *ConcurrentTestbed) PagerStats() storage.PagerStats {
	return c.tb.db.PagerStats()
}

// EngineMetrics snapshots the engine floor as registry metrics: a row
// gauge and heap-traffic counters per table, shape and search counters
// per index, and the buffer-pool counters per shard. It reads the
// pinned snapshot's frozen table versions, so the non-atomic structural
// fields (index height, key counts) read cleanly while writers commit.
// The server registers this as a metrics-registry collector; the set of
// names follows the published snapshot as tables are created and
// dropped.
func (c *ConcurrentTestbed) EngineMetrics() []obs.Metric {
	s, err := c.acquire()
	if err != nil {
		return nil
	}
	defer s.Release()
	var out []obs.Metric
	for _, name := range s.Tables() {
		t := s.Version(name).Table
		hs := t.Heap.Stats()
		pre := "table." + name + "."
		out = append(out,
			obs.Metric{Name: pre + "rows", Kind: "gauge", Value: int64(t.Rows())},
			obs.Metric{Name: pre + "heap_reads", Kind: "counter", Value: hs.Reads},
			obs.Metric{Name: pre + "heap_inserts", Kind: "counter", Value: hs.Inserts},
			obs.Metric{Name: pre + "heap_deletes", Kind: "counter", Value: hs.Deletes},
			obs.Metric{Name: pre + "heap_scans", Kind: "counter", Value: hs.Scans},
			obs.Metric{Name: pre + "heap_pages_scanned", Kind: "counter", Value: hs.PagesScanned},
			obs.Metric{Name: pre + "heap_recs_scanned", Kind: "counter", Value: hs.RecsScanned},
		)
		for _, ix := range t.Indexes {
			ts := ix.Stats()
			ipre := "index." + ix.Name + "."
			out = append(out,
				obs.Metric{Name: ipre + "height", Kind: "gauge", Value: ts.Height},
				obs.Metric{Name: ipre + "entries", Kind: "gauge", Value: ts.Entries},
				obs.Metric{Name: ipre + "searches", Kind: "counter", Value: ts.Searches},
				obs.Metric{Name: ipre + "depth_total", Kind: "counter", Value: ts.DepthTotal},
				obs.Metric{Name: ipre + "splits", Kind: "counter", Value: ts.Splits},
			)
		}
	}
	for i, st := range c.tb.db.PagerShardStats() {
		pre := fmt.Sprintf("pool.shard.%02d.", i)
		out = append(out,
			obs.Metric{Name: pre + "hits", Kind: "counter", Value: st.Hits},
			obs.Metric{Name: pre + "misses", Kind: "counter", Value: st.Misses},
			obs.Metric{Name: pre + "evictions", Kind: "counter", Value: st.Evictions},
			obs.Metric{Name: pre + "writes", Kind: "counter", Value: st.Writes},
		)
	}
	return out
}

// Generation returns the rule-base generation of the published
// snapshot. Prepared queries compiled at an older generation recompile
// on their next run; the server reports it so clients can correlate
// results with D/KB versions.
func (c *ConcurrentTestbed) Generation() uint64 {
	return c.snaps.Current().RuleGen
}

// --- Prepared queries ---

// Prepare compiles a query for repeated execution. The returned
// ConcurrentPrepared is safe for concurrent use; the server keys them
// per session.
func (c *ConcurrentTestbed) Prepare(src string, opts *QueryOptions) (*ConcurrentPrepared, error) {
	q, err := dlog.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &QueryOptions{}
	}
	cp := &ConcurrentPrepared{c: c, q: q, opts: *opts}
	s, err := c.acquire()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	if _, err := cp.ensure(s); err != nil {
		return nil, err
	}
	return cp, nil
}

// ConcurrentPrepared is a prepared query bound to a ConcurrentTestbed.
// Each run evaluates against a pinned snapshot, so a run either sees
// the D/KB entirely before or entirely after any concurrent update —
// and recompiles transparently when the rule base moved.
type ConcurrentPrepared struct {
	c    *ConcurrentTestbed
	q    dlog.Query
	opts QueryOptions

	mu         sync.Mutex
	compiled   *core.Compiled
	gen        uint64 // rule-base generation compiled at
	recompiles int
}

// ensure (re)compiles against the pinned snapshot when the cached
// program predates its rule-base generation.
func (cp *ConcurrentPrepared) ensure(s *snapshot.Snapshot) (*core.Compiled, error) {
	//dkblint:locksafe per-statement singleflight: compiling under the lock guarantees one compile per rule-base generation
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.compiled != nil && cp.gen == s.RuleGen {
		return cp.compiled, nil
	}
	vdb, vst := cp.c.view(s)
	compiled, err := cp.c.tb.compileWith(s.WS(), vdb, vst, cp.q, &cp.opts, nil)
	if err != nil {
		return nil, err
	}
	cp.compiled, cp.gen = compiled, s.RuleGen
	cp.recompiles++
	return compiled, nil
}

// Run executes the prepared query against a pinned snapshot.
func (cp *ConcurrentPrepared) Run() (*QueryResult, error) {
	return cp.RunWithQueryID(0)
}

// RunWithQueryID is Run under an explicit query ID (0 mints one); the
// server threads each EXECP request's wire-propagated ID through here.
func (cp *ConcurrentPrepared) RunWithQueryID(qid uint64) (*QueryResult, error) {
	if qid == 0 {
		qid = obs.NewQueryID()
	}
	s, err := cp.c.acquire()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	compiled, err := cp.ensure(s)
	if err != nil {
		return nil, err
	}
	var tr *obs.Trace
	if cp.opts.Trace {
		tr = obs.NewTrace("query")
		tr.Root().SetInt("snapshot_gen", int64(s.Gen))
		tr.Root().SetInt("query_id", int64(qid))
	}
	vdb := cp.c.tb.db.WithResolver(s)
	res, err := cp.c.tb.evaluateWith(context.Background(), vdb, compiled, &cp.opts, tr)
	if err != nil {
		return nil, err
	}
	res.Snapshot = s.Gen
	res.QueryID = qid
	return res, nil
}

// Stale reports whether the next Run will recompile.
func (cp *ConcurrentPrepared) Stale() bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.compiled == nil || cp.gen != cp.c.snaps.Current().RuleGen
}

// Recompiles returns the number of compilations performed so far.
func (cp *ConcurrentPrepared) Recompiles() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.recompiles
}
