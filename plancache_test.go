package dkbms

import (
	"sync"
	"testing"
)

const planCacheProgram = `
parent(a, b).
parent(b, c).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`

func newCachedTestbed(t *testing.T) *ConcurrentTestbed {
	t.Helper()
	c := NewConcurrent(NewMemory())
	t.Cleanup(func() { c.Close() })
	if err := c.Load(planCacheProgram); err != nil {
		t.Fatal(err)
	}
	return c
}

func queryRows(t *testing.T, c *ConcurrentTestbed, src string) int {
	t.Helper()
	res, err := c.Query(src, nil)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return len(res.Rows)
}

// queryRowsRederive queries with the memo pinned to MaintRederive, so a
// commit drops the stale answer instead of maintaining it through the
// change — the classic invalidation behavior these tests assert.
func queryRowsRederive(t *testing.T, c *ConcurrentTestbed, src string) int {
	t.Helper()
	res, err := c.Query(src, &QueryOptions{Maintenance: MaintRederive})
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return len(res.Rows)
}

// TestPlanCacheResultHit: an identical repeated query on an unchanged
// D/KB is answered from the memoized result, and the shared rows are
// safe against caller mutation.
func TestPlanCacheResultHit(t *testing.T) {
	c := newCachedTestbed(t)
	const q = "?- ancestor(a, X)."
	if n := queryRows(t, c, q); n != 2 {
		t.Fatalf("cold query: %d rows, want 2", n)
	}
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := c.PlanStats()
	if st.ResultHits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat: %+v, want 1 result hit / 1 miss", st)
	}
	// A caller truncating its answer must not corrupt the cached copy.
	res.Rows = res.Rows[:0]
	if n := queryRows(t, c, q); n != 2 {
		t.Fatalf("cached result was mutated through a caller: %d rows", n)
	}
	// Different options are a different cache key.
	if _, err := c.Query(q, &QueryOptions{Naive: true}); err != nil {
		t.Fatal(err)
	}
	if st := c.PlanStats(); st.Misses != 2 {
		t.Fatalf("distinct options shared an entry: %+v", st)
	}
}

// TestPlanCacheRetractInvalidates: RETRACT moves the data generation, so
// the next identical query keeps the compiled plan but re-evaluates —
// and must see the shrunken answer, not the memoized one.
func TestPlanCacheRetractInvalidates(t *testing.T) {
	c := newCachedTestbed(t)
	const q = "?- ancestor(a, X)."
	if n := queryRowsRederive(t, c, q); n != 2 {
		t.Fatalf("before retract: %d rows, want 2", n)
	}
	n, err := c.RetractSrc("parent(b, c)")
	if err != nil || n != 1 {
		t.Fatalf("retract: %d, %v", n, err)
	}
	if n := queryRowsRederive(t, c, q); n != 1 {
		t.Fatalf("after retract: %d rows, want 1 (stale cached answer served?)", n)
	}
	st := c.PlanStats()
	if st.PlanHits != 1 || st.Misses != 1 {
		t.Fatalf("after retract: %+v, want the plan reused (1 plan hit, 1 miss)", st)
	}
	// A retract that matches nothing leaves the generations alone, so the
	// freshly memoized answer serves the next repeat.
	if n, err := c.RetractSrc("parent(z, z)"); err != nil || n != 0 {
		t.Fatalf("no-op retract: %d, %v", n, err)
	}
	if n := queryRowsRederive(t, c, q); n != 1 {
		t.Fatalf("after no-op retract: %d rows, want 1", n)
	}
	if st := c.PlanStats(); st.ResultHits != 1 {
		t.Fatalf("no-op retract evicted the result: %+v", st)
	}
}

// TestPlanCacheLoadInvalidates: a LOAD of facts re-evaluates cached
// plans; a LOAD that changes rules recompiles them.
func TestPlanCacheLoadInvalidates(t *testing.T) {
	c := newCachedTestbed(t)
	const q = "?- ancestor(a, X)."
	if n := queryRowsRederive(t, c, q); n != 2 {
		t.Fatalf("cold query: %d rows, want 2", n)
	}

	// Facts only: the plan survives, the memoized answer does not.
	if err := c.Load("parent(c, d)."); err != nil {
		t.Fatal(err)
	}
	if n := queryRowsRederive(t, c, q); n != 3 {
		t.Fatalf("after fact load: %d rows, want 3", n)
	}
	st := c.PlanStats()
	if st.PlanHits != 1 || st.Misses != 1 {
		t.Fatalf("after fact load: %+v, want 1 plan hit / 1 miss", st)
	}

	// A rule change outdates the compiled program itself.
	if err := c.Load("forebear(X, Y) :- ancestor(X, Y)."); err != nil {
		t.Fatal(err)
	}
	if n := queryRowsRederive(t, c, q); n != 3 {
		t.Fatalf("after rule load: %d rows, want 3", n)
	}
	st = c.PlanStats()
	if st.Invalidations == 0 {
		t.Fatalf("rule load did not invalidate: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("after rule load: %+v, want a recompile (2 misses)", st)
	}
}

// TestPlanCacheLRUBound: the cache never exceeds its capacity and evicts
// the least recently used query.
func TestPlanCacheLRUBound(t *testing.T) {
	c := NewConcurrentWithCache(NewMemory(), 2)
	t.Cleanup(func() { c.Close() })
	if err := c.Load(planCacheProgram); err != nil {
		t.Fatal(err)
	}
	queries := []string{"?- ancestor(a, X).", "?- ancestor(b, X).", "?- parent(a, X)."}
	for _, q := range queries {
		queryRows(t, c, q)
	}
	st := c.PlanStats()
	if st.Entries != 2 {
		t.Fatalf("capacity 2 cache holds %d entries", st.Entries)
	}
	// The oldest query was evicted: re-running it is a miss, while the
	// newest is still a result hit.
	queryRows(t, c, queries[0])
	queryRows(t, c, queries[2])
	st = c.PlanStats()
	if st.Misses != 4 || st.ResultHits != 1 {
		t.Fatalf("LRU order wrong: %+v, want 4 misses and 1 result hit", st)
	}
}

// TestPlanCacheConcurrent drives queries and invalidating updates from
// many goroutines; with -race it checks the lookup/store/purge paths,
// and every answer must be consistent with some committed D/KB state
// (1, 2 or 3 ancestors while facts churn).
func TestPlanCacheConcurrent(t *testing.T) {
	c := newCachedTestbed(t)
	const q = "?- ancestor(a, X)."
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := c.Query(q, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if n := len(res.Rows); n < 1 || n > 3 {
					t.Errorf("impossible answer size %d", n)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := c.Load("parent(c, d)."); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.RetractSrc("parent(c, d)"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
