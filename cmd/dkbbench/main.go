// Command dkbbench regenerates the paper's experimental tables and
// figures (§5.3) over the testbed's workload generators, printing each
// as the rows/series the paper reports.
//
// Usage:
//
//	dkbbench                 # run every experiment at full scale
//	dkbbench -exp fig13      # one experiment
//	dkbbench -exp fig7,fig8  # a subset
//	dkbbench -quick          # shrunken inputs (seconds, for smoke runs)
//	dkbbench -list           # list experiment IDs
//	dkbbench -reps 5         # repetitions per measured point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dkbms/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick = flag.Bool("quick", false, "shrunken inputs for a fast smoke run")
		reps  = flag.Int("reps", 3, "repetitions per measured point (minimum reported)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("%-18s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Reps = *reps

	var runners []bench.Runner
	if *exp == "all" {
		runners = bench.Runners()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			r := bench.Find(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "dkbbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkbbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
