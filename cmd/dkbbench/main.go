// Command dkbbench regenerates the paper's experimental tables and
// figures (§5.3) over the testbed's workload generators, printing each
// as the rows/series the paper reports.
//
// Usage:
//
//	dkbbench                 # run every experiment at full scale
//	dkbbench -exp fig13      # one experiment
//	dkbbench -exp fig7,fig8  # a subset
//	dkbbench -quick          # shrunken inputs (seconds, for smoke runs)
//	dkbbench -list           # list experiment IDs
//	dkbbench -reps 5         # repetitions per measured point
//	dkbbench -json DIR       # additionally write BENCH_<exp>.json per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dkbms/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick   = flag.Bool("quick", false, "shrunken inputs for a fast smoke run")
		reps    = flag.Int("reps", 3, "repetitions per measured point (minimum reported)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		jsonDir = flag.String("json", "", "directory to write machine-readable BENCH_<exp>.json results into (empty: don't)")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("%-18s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Reps = *reps

	var runners []bench.Runner
	if *exp == "all" {
		runners = bench.Runners()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			r := bench.Find(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "dkbbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkbbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Print(rep.Format())
		fmt.Printf("(%s in %v)\n\n", r.ID, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			out, err := rep.JSON(cfg, elapsed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dkbbench: %s: render json: %v\n", r.ID, err)
				os.Exit(1)
			}
			// Experiment IDs use dashes; the artifact names use
			// underscores (BENCH_server_scaling.json).
			path := filepath.Join(*jsonDir, "BENCH_"+strings.ReplaceAll(rep.ID, "-", "_")+".json")
			if err := os.WriteFile(path, out, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dkbbench: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
