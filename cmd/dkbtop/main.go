// Command dkbtop is a live terminal monitor for a running dkbd server,
// in the spirit of top(1): it polls the server's debug HTTP endpoints
// (/metrics and /slowlog, enabled with `dkbd -debug-addr`) and redraws a
// one-screen dashboard every interval — request throughput and latency
// percentiles, session and cache activity, the busiest tables, and the
// slowest queries.
//
// Usage:
//
//	dkbtop -addr 127.0.0.1:7408            # poll every 2s until interrupted
//	dkbtop -addr 127.0.0.1:7408 -interval 500ms
//	dkbtop -addr 127.0.0.1:7408 -n 1       # one snapshot, then exit (scripts)
//
// dkbtop is read-only: it touches nothing but the two debug endpoints.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dkbms/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7408", "dkbd debug HTTP address (host:port of -debug-addr)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	n := flag.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	flag.Parse()

	if err := run(os.Stdout, "http://"+*addr, *interval, *n); err != nil {
		fmt.Fprintf(os.Stderr, "dkbtop: %v\n", err)
		os.Exit(1)
	}
}

func run(out io.Writer, baseURL string, interval time.Duration, n int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var prev *sample
	prevAt := time.Now()
	for i := 0; ; i++ {
		cur, err := fetch(baseURL)
		now := time.Now()
		if err != nil {
			return err
		}
		frame := render(prev, cur, now.Sub(prevAt))
		if n != 1 {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprint(out, frame)
		prev, prevAt = cur, now
		if n > 0 && i+1 >= n {
			return nil
		}
		select {
		case <-sig:
			return nil
		case <-time.After(interval):
		}
	}
}

// sample is one poll of the server's debug endpoints.
type sample struct {
	metrics map[string]obs.Metric
	slow    obs.SlowLogSnapshot
}

// get returns the value of a metric, 0 when absent.
func (s *sample) get(name string) int64 { return s.metrics[name].Value }

// metric returns the full metric (for histogram percentiles).
func (s *sample) metric(name string) obs.Metric { return s.metrics[name] }

// fetch polls /metrics and /slowlog.
func fetch(baseURL string) (*sample, error) {
	var list []obs.Metric
	if err := getJSON(baseURL+"/metrics", &list); err != nil {
		return nil, err
	}
	s := &sample{metrics: make(map[string]obs.Metric, len(list))}
	for _, m := range list {
		s.metrics[m.Name] = m
	}
	if err := getJSON(baseURL+"/slowlog", &s.slow); err != nil {
		return nil, err
	}
	return s, nil
}

func getJSON(url string, v any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render draws one dashboard frame from the current sample, using the
// previous one (nil on the first frame) for rates. It is a pure function
// of its inputs, so the display logic is testable without a server.
func render(prev, cur *sample, elapsed time.Duration) string {
	var b strings.Builder

	reqs := cur.get("server.requests")
	var reqRate float64
	if prev != nil && elapsed > 0 {
		reqRate = float64(reqs-prev.get("server.requests")) / elapsed.Seconds()
	}
	lat := cur.metric("server.request_latency_ns")
	fmt.Fprintf(&b, "dkbd  requests %d (%.1f/s)  errors %d  sessions %d/%d active  in-flight %d\n",
		reqs, reqRate, cur.get("server.errors"),
		cur.get("server.sessions_active"), cur.get("server.sessions_total"),
		cur.get("server.in_flight"))
	fmt.Fprintf(&b, "lat   p50 %v  p99 %v  (over %d requests)\n",
		time.Duration(lat.P50), time.Duration(lat.P99), lat.Value)

	planHits := cur.get("plan.result_hits") + cur.get("plan.hits")
	planAll := planHits + cur.get("plan.misses")
	fmt.Fprintf(&b, "cache pool %d%% hit  plan %s hit (%d result, %d plan, %d miss, %d entries)  gen %d\n",
		cur.get("pool.hit_rate_pct"), pct(planHits, planAll),
		cur.get("plan.result_hits"), cur.get("plan.hits"), cur.get("plan.misses"),
		cur.get("plan.entries"), cur.get("dkb.generation"))

	// Snapshot store: commit rate, copy-on-write stall, reclamation lag.
	var commitRate float64
	if prev != nil && elapsed > 0 {
		commitRate = float64(cur.get("snapshot.commits")-prev.get("snapshot.commits")) / elapsed.Seconds()
	}
	fmt.Fprintf(&b, "snap  gen %d  readers %d  commits %d (%.1f/s)  copied %d  backlog %d  stall %v\n",
		cur.get("snapshot.gen"), cur.get("snapshot.active_readers"),
		cur.get("snapshot.commits"), commitRate, cur.get("snapshot.copied_tables"),
		cur.get("snapshot.reclaim_backlog"), time.Duration(cur.get("snapshot.writer_stall_ns")))

	// Shared evaluation pool: task throughput and inline-steal share.
	var taskRate float64
	if prev != nil && elapsed > 0 {
		taskRate = float64(cur.get("sched.completed")-prev.get("sched.completed")) / elapsed.Seconds()
	}
	fmt.Fprintf(&b, "sched %d workers  %d clients  queued %d  done %d (%.1f/s)  stolen %d\n",
		cur.get("sched.workers"), cur.get("sched.clients"), cur.get("sched.queued"),
		cur.get("sched.completed"), taskRate, cur.get("sched.stolen"))

	// Materialized views: maintenance throughput vs forced re-derivations.
	var maintRate float64
	if prev != nil && elapsed > 0 {
		maintRate = float64(cur.get("matview.maintained")-prev.get("matview.maintained")) / elapsed.Seconds()
	}
	fmt.Fprintf(&b, "views %d live  maintained %d (%.1f/s)  rederived %d  delta %d tuples  spent %v\n",
		cur.get("matview.live"), cur.get("matview.maintained"), maintRate,
		cur.get("matview.rederives"), cur.get("matview.delta_tuples"),
		time.Duration(cur.get("matview.maintain_ns")))

	// Busiest tables by heap traffic (reads + scanned records), top 5.
	type tableRow struct {
		name          string
		rows, traffic int64
	}
	var tables []tableRow
	for name, m := range cur.metrics {
		if !strings.HasPrefix(name, "table.") || !strings.HasSuffix(name, ".rows") {
			continue
		}
		t := strings.TrimSuffix(strings.TrimPrefix(name, "table."), ".rows")
		pre := "table." + t + "."
		tables = append(tables, tableRow{
			name: t,
			rows: m.Value,
			traffic: cur.get(pre+"heap_reads") + cur.get(pre+"heap_recs_scanned") +
				cur.get(pre+"heap_inserts") + cur.get(pre+"heap_deletes"),
		})
	}
	sort.Slice(tables, func(i, j int) bool {
		if tables[i].traffic != tables[j].traffic {
			return tables[i].traffic > tables[j].traffic
		}
		return tables[i].name < tables[j].name
	})
	if len(tables) > 0 {
		fmt.Fprintf(&b, "\n%-24s %10s %12s %10s %10s\n", "TABLE", "ROWS", "HEAP-TRAFFIC", "SCANS", "READS")
		for i, t := range tables {
			if i == 5 {
				fmt.Fprintf(&b, "  … %d more\n", len(tables)-5)
				break
			}
			pre := "table." + t.name + "."
			fmt.Fprintf(&b, "%-24s %10d %12d %10d %10d\n",
				t.name, t.rows, t.traffic, cur.get(pre+"heap_scans"), cur.get(pre+"heap_reads"))
		}
	}

	// Slowest queries, top 5 (the endpoint already sorts slowest first).
	fmt.Fprintf(&b, "\nSLOW QUERIES (%d recorded", cur.slow.Recorded)
	if cur.slow.ThresholdNs > 0 {
		fmt.Fprintf(&b, ", threshold %v", time.Duration(cur.slow.ThresholdNs))
	}
	fmt.Fprint(&b, ")\n")
	if len(cur.slow.Entries) == 0 {
		fmt.Fprint(&b, "  (none)\n")
	}
	for i, e := range cur.slow.Entries {
		if i == 5 {
			break
		}
		status := e.Cache
		if e.Err != "" {
			status = "ERR"
		}
		fmt.Fprintf(&b, "%10v %7d rows %-6s  %s\n",
			e.Latency.Round(time.Microsecond), e.Rows, status, oneLine(e.Query, 60))
	}
	return b.String()
}

// pct formats part-of-whole as "NN%", "n/a" when nothing counted.
func pct(part, whole int64) string {
	if whole <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d%%", part*100/whole)
}

// oneLine flattens and truncates a query for a single display row.
func oneLine(s string, max int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > max {
		return s[:max-1] + "…"
	}
	return s
}
