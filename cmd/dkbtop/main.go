// Command dkbtop is a live terminal monitor for a running dkbd server,
// in the spirit of top(1): it polls the server's debug HTTP endpoints
// (/metrics.json, /timeseries and /slowlog, enabled with
// `dkbd -debug-addr`) and redraws a one-screen dashboard every interval
// — request throughput and latency percentiles, session and cache
// activity, sparklines over the server's retained time-series ring, the
// busiest tables, and the slowest queries.
//
// Usage:
//
//	dkbtop -addr 127.0.0.1:7408            # poll every 2s until interrupted
//	dkbtop -addr 127.0.0.1:7408 -interval 500ms
//	dkbtop -addr 127.0.0.1:7408 -n 1       # one snapshot, then exit (scripts)
//
// dkbtop is read-only: it touches nothing but the debug endpoints. The
// /timeseries ring is optional — against an old server, or one started
// with sampling disabled, rates fall back to poll-to-poll deltas.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dkbms/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7408", "dkbd debug HTTP address (host:port of -debug-addr)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	n := flag.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	flag.Parse()

	if err := run(os.Stdout, "http://"+*addr, *interval, *n); err != nil {
		fmt.Fprintf(os.Stderr, "dkbtop: %v\n", err)
		os.Exit(1)
	}
}

func run(out io.Writer, baseURL string, interval time.Duration, n int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var prev *sample
	prevAt := time.Now()
	for i := 0; ; i++ {
		cur, err := fetch(baseURL)
		now := time.Now()
		if err != nil {
			return err
		}
		frame := render(prev, cur, now.Sub(prevAt))
		if n != 1 {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprint(out, frame)
		prev, prevAt = cur, now
		if n > 0 && i+1 >= n {
			return nil
		}
		select {
		case <-sig:
			return nil
		case <-time.After(interval):
		}
	}
}

// sample is one poll of the server's debug endpoints.
type sample struct {
	metrics map[string]obs.Metric
	slow    obs.SlowLogSnapshot
	ts      *obs.TimeSeriesSnapshot // nil when the server has no ring
}

// get returns the value of a metric, 0 when absent.
func (s *sample) get(name string) int64 { return s.metrics[name].Value }

// metric returns the full metric (for histogram percentiles).
func (s *sample) metric(name string) obs.Metric { return s.metrics[name] }

// stat returns one series from the time-series ring, false when the ring
// is absent or the series unknown.
func (s *sample) stat(name string) (obs.SeriesStat, bool) {
	if s.ts == nil {
		return obs.SeriesStat{}, false
	}
	for _, st := range s.ts.Series {
		if st.Name == name {
			return st, true
		}
	}
	return obs.SeriesStat{}, false
}

// fetch polls /metrics.json, /slowlog and /timeseries.
func fetch(baseURL string) (*sample, error) {
	var list []obs.Metric
	if err := getJSON(baseURL+"/metrics.json", &list); err != nil {
		return nil, err
	}
	s := &sample{metrics: make(map[string]obs.Metric, len(list))}
	for _, m := range list {
		s.metrics[m.Name] = m
	}
	if err := getJSON(baseURL+"/slowlog", &s.slow); err != nil {
		return nil, err
	}
	// The ring is optional: pre-telemetry servers have no /timeseries, and
	// `dkbd -sample-interval -1` 404s it. Degrade to poll-to-poll rates.
	var ts obs.TimeSeriesSnapshot
	if err := getJSON(baseURL+"/timeseries?points="+fmt.Sprint(sparkWidth), &ts); err == nil {
		s.ts = &ts
	}
	return s, nil
}

func getJSON(url string, v any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render draws one dashboard frame from the current sample, using the
// previous one (nil on the first frame) for rates. It is a pure function
// of its inputs, so the display logic is testable without a server.
func render(prev, cur *sample, elapsed time.Duration) string {
	var b strings.Builder

	// Rates come from the server's retained ring when it has one — a
	// windowed rate over many samples, steady from the first frame — and
	// otherwise from the delta between this poll and the previous one.
	rate := func(name string) float64 {
		if st, ok := cur.stat(name); ok {
			return st.Rate
		}
		if prev != nil && elapsed > 0 {
			return float64(cur.get(name)-prev.get(name)) / elapsed.Seconds()
		}
		return 0
	}

	reqs := cur.get("server.requests")
	reqRate := rate("server.requests")
	lat := cur.metric("server.request_latency_ns")
	fmt.Fprintf(&b, "dkbd  requests %d (%.1f/s)  errors %d  sessions %d/%d active  in-flight %d\n",
		reqs, reqRate, cur.get("server.errors"),
		cur.get("server.sessions_active"), cur.get("server.sessions_total"),
		cur.get("server.in_flight"))
	fmt.Fprintf(&b, "lat   p50 %v  p99 %v  (over %d requests)\n",
		time.Duration(lat.P50), time.Duration(lat.P99), lat.Value)

	planHits := cur.get("plan.result_hits") + cur.get("plan.hits")
	planAll := planHits + cur.get("plan.misses")
	fmt.Fprintf(&b, "cache pool %d%% hit  plan %s hit (%d result, %d plan, %d miss, %d entries)  gen %d\n",
		cur.get("pool.hit_rate_pct"), pct(planHits, planAll),
		cur.get("plan.result_hits"), cur.get("plan.hits"), cur.get("plan.misses"),
		cur.get("plan.entries"), cur.get("dkb.generation"))

	// Snapshot store: commit rate, copy-on-write stall, reclamation lag.
	commitRate := rate("snapshot.commits")
	fmt.Fprintf(&b, "snap  gen %d  readers %d  commits %d (%.1f/s)  copied %d  backlog %d  stall %v\n",
		cur.get("snapshot.gen"), cur.get("snapshot.active_readers"),
		cur.get("snapshot.commits"), commitRate, cur.get("snapshot.copied_tables"),
		cur.get("snapshot.reclaim_backlog"), time.Duration(cur.get("snapshot.writer_stall_ns")))

	// Shared evaluation pool: task throughput and inline-steal share.
	taskRate := rate("sched.completed")
	fmt.Fprintf(&b, "sched %d workers  %d clients  queued %d  done %d (%.1f/s)  stolen %d\n",
		cur.get("sched.workers"), cur.get("sched.clients"), cur.get("sched.queued"),
		cur.get("sched.completed"), taskRate, cur.get("sched.stolen"))

	// Materialized views: maintenance throughput vs forced re-derivations.
	maintRate := rate("matview.maintained")
	fmt.Fprintf(&b, "views %d live  maintained %d (%.1f/s)  rederived %d  delta %d tuples  spent %v\n",
		cur.get("matview.live"), cur.get("matview.maintained"), maintRate,
		cur.get("matview.rederives"), cur.get("matview.delta_tuples"),
		time.Duration(cur.get("matview.maintain_ns")))

	// Sparklines over the server's time-series ring: throughput shape,
	// cache health and reclamation lag at a glance.
	if cur.ts != nil {
		fmt.Fprintf(&b, "\nring  %v × %d samples (window %v)\n",
			time.Duration(cur.ts.IntervalNs), cur.ts.Capacity, time.Duration(cur.ts.WindowNs))
		req, _ := cur.stat("server.requests")
		com, _ := cur.stat("snapshot.commits")
		hit, _ := cur.stat("pool.hit_rate_pct")
		back, _ := cur.stat("snapshot.reclaim_backlog")
		fmt.Fprintf(&b, "      req/s    %s %.1f/s\n", spark(deltas(req.Points)), req.Rate)
		fmt.Fprintf(&b, "      commit/s %s %.1f/s\n", spark(deltas(com.Points)), com.Rate)
		fmt.Fprintf(&b, "      pool-hit %s %d%%\n", spark(hit.Points), hit.Last)
		fmt.Fprintf(&b, "      backlog  %s %d\n", spark(back.Points), back.Last)
	}

	// Busiest tables by heap traffic (reads + scanned records), top 5.
	type tableRow struct {
		name          string
		rows, traffic int64
	}
	var tables []tableRow
	for name, m := range cur.metrics {
		if !strings.HasPrefix(name, "table.") || !strings.HasSuffix(name, ".rows") {
			continue
		}
		t := strings.TrimSuffix(strings.TrimPrefix(name, "table."), ".rows")
		pre := "table." + t + "."
		tables = append(tables, tableRow{
			name: t,
			rows: m.Value,
			traffic: cur.get(pre+"heap_reads") + cur.get(pre+"heap_recs_scanned") +
				cur.get(pre+"heap_inserts") + cur.get(pre+"heap_deletes"),
		})
	}
	sort.Slice(tables, func(i, j int) bool {
		if tables[i].traffic != tables[j].traffic {
			return tables[i].traffic > tables[j].traffic
		}
		return tables[i].name < tables[j].name
	})
	if len(tables) > 0 {
		fmt.Fprintf(&b, "\n%-24s %10s %12s %10s %10s\n", "TABLE", "ROWS", "HEAP-TRAFFIC", "SCANS", "READS")
		for i, t := range tables {
			if i == 5 {
				fmt.Fprintf(&b, "  … %d more\n", len(tables)-5)
				break
			}
			pre := "table." + t.name + "."
			fmt.Fprintf(&b, "%-24s %10d %12d %10d %10d\n",
				t.name, t.rows, t.traffic, cur.get(pre+"heap_scans"), cur.get(pre+"heap_reads"))
		}
	}

	// Slowest queries, top 5 (the endpoint already sorts slowest first).
	fmt.Fprintf(&b, "\nSLOW QUERIES (%d recorded", cur.slow.Recorded)
	if cur.slow.ThresholdNs > 0 {
		fmt.Fprintf(&b, ", threshold %v", time.Duration(cur.slow.ThresholdNs))
	}
	fmt.Fprint(&b, ")\n")
	if len(cur.slow.Entries) == 0 {
		fmt.Fprint(&b, "  (none)\n")
	}
	for i, e := range cur.slow.Entries {
		if i == 5 {
			break
		}
		status := e.Cache
		if e.Err != "" {
			status = "ERR"
		}
		fmt.Fprintf(&b, "%10v %7d rows %-6s  %s\n",
			e.Latency.Round(time.Microsecond), e.Rows, status, oneLine(e.Query, 60))
	}
	return b.String()
}

// sparkWidth is how many ring points the sparklines ask for and draw.
const sparkWidth = 30

// sparkBlocks are the eighth-block runes a sparkline is drawn with.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// spark draws values as a row of block characters scaled to the max;
// an all-zero or empty series renders flat.
func spark(vals []int64) string {
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 && v > 0 {
			i = int(v * int64(len(sparkBlocks)-1) / max)
		}
		b.WriteRune(sparkBlocks[i])
	}
	return b.String()
}

// deltas turns a counter's cumulative points into per-interval
// increments, clamped at zero across restarts.
func deltas(points []int64) []int64 {
	if len(points) < 2 {
		return nil
	}
	out := make([]int64, len(points)-1)
	for i := 1; i < len(points); i++ {
		if d := points[i] - points[i-1]; d > 0 {
			out[i-1] = d
		}
	}
	return out
}

// pct formats part-of-whole as "NN%", "n/a" when nothing counted.
func pct(part, whole int64) string {
	if whole <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d%%", part*100/whole)
}

// oneLine flattens and truncates a query for a single display row.
func oneLine(s string, max int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > max {
		return s[:max-1] + "…"
	}
	return s
}
