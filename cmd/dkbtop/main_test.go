package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dkbms/internal/obs"
)

func sampleFrom(metrics []obs.Metric, slow obs.SlowLogSnapshot) *sample {
	s := &sample{metrics: make(map[string]obs.Metric, len(metrics)), slow: slow}
	for _, m := range metrics {
		s.metrics[m.Name] = m
	}
	return s
}

func TestRender(t *testing.T) {
	prev := sampleFrom([]obs.Metric{
		{Name: "server.requests", Kind: "gauge", Value: 100},
	}, obs.SlowLogSnapshot{})
	cur := sampleFrom([]obs.Metric{
		{Name: "server.requests", Kind: "gauge", Value: 150},
		{Name: "server.errors", Kind: "gauge", Value: 2},
		{Name: "server.sessions_active", Kind: "gauge", Value: 3},
		{Name: "server.sessions_total", Kind: "gauge", Value: 7},
		{Name: "server.request_latency_ns", Kind: "histogram", Value: 150,
			P50: int64(2 * time.Millisecond), P99: int64(30 * time.Millisecond)},
		{Name: "pool.hit_rate_pct", Kind: "gauge", Value: 93},
		{Name: "plan.result_hits", Kind: "gauge", Value: 40},
		{Name: "plan.hits", Kind: "gauge", Value: 10},
		{Name: "plan.misses", Kind: "gauge", Value: 50},
		{Name: "plan.entries", Kind: "gauge", Value: 12},
		{Name: "dkb.generation", Kind: "gauge", Value: 4},
		{Name: "sched.workers", Kind: "gauge", Value: 4},
		{Name: "sched.clients", Kind: "gauge", Value: 2},
		{Name: "sched.queued", Kind: "gauge", Value: 1},
		{Name: "sched.completed", Kind: "gauge", Value: 640},
		{Name: "sched.stolen", Kind: "gauge", Value: 33},
		{Name: "matview.live", Kind: "gauge", Value: 2},
		{Name: "matview.maintained", Kind: "gauge", Value: 90},
		{Name: "matview.rederives", Kind: "gauge", Value: 6},
		{Name: "matview.delta_tuples", Kind: "gauge", Value: 410},
		{Name: "matview.maintain_ns", Kind: "gauge", Value: int64(3 * time.Millisecond)},
		{Name: "table.parent_2.rows", Kind: "gauge", Value: 1022},
		{Name: "table.parent_2.heap_reads", Kind: "counter", Value: 7},
		{Name: "table.parent_2.heap_recs_scanned", Kind: "counter", Value: 5000},
		{Name: "table.parent_2.heap_scans", Kind: "counter", Value: 11},
		{Name: "table.quiet_2.rows", Kind: "gauge", Value: 3},
	}, obs.SlowLogSnapshot{
		Recorded: 2,
		Entries: []obs.SlowQuery{
			{Query: "?- ancestor(c0,\n  W).", Latency: 42 * time.Millisecond, Rows: 8194, Cache: "miss"},
			{Query: "?- nosuch(X).", Latency: time.Millisecond, Err: "unknown predicate"},
		},
	})

	out := render(prev, cur, 10*time.Second)

	for _, w := range []string{
		"requests 150 (5.0/s)",
		"errors 2",
		"sessions 3/7 active",
		"p50 2ms",
		"p99 30ms",
		"pool 93% hit",
		"plan 50% hit",
		"gen 4",
		"sched 4 workers",
		"done 640",
		"stolen 33",
		"views 2 live",
		"rederived 6",
		"delta 410 tuples",
		"parent_2",
		"1022",
		"SLOW QUERIES (2 recorded)",
		"8194 rows miss",
		"?- ancestor(c0, W).", // multi-line query flattened
		"ERR",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("frame missing %q:\n%s", w, out)
		}
	}

	// parent_2 (heavy traffic) must sort above quiet_2.
	if strings.Index(out, "parent_2") > strings.Index(out, "quiet_2") {
		t.Errorf("table ordering wrong:\n%s", out)
	}

	// First frame: no previous sample, rate renders as 0.
	first := render(nil, cur, 0)
	if !strings.Contains(first, "(0.0/s)") {
		t.Errorf("first frame rate:\n%s", first)
	}
}

func TestRenderWithRing(t *testing.T) {
	// With a /timeseries ring present, rates come from the ring's windowed
	// rate (not poll deltas) and the sparkline block renders.
	cur := sampleFrom([]obs.Metric{
		{Name: "server.requests", Kind: "counter", Value: 150},
	}, obs.SlowLogSnapshot{})
	cur.ts = &obs.TimeSeriesSnapshot{
		IntervalNs: int64(time.Second),
		Capacity:   600,
		WindowNs:   int64(10 * time.Minute),
		Series: []obs.SeriesStat{
			{Name: "server.requests", Kind: "counter", Last: 150, Rate: 12.5,
				Points: []int64{100, 120, 150}},
			{Name: "snapshot.commits", Kind: "counter", Last: 4, Rate: 0.2,
				Points: []int64{2, 3, 4}},
			{Name: "pool.hit_rate_pct", Kind: "gauge", Last: 93,
				Points: []int64{90, 91, 93}},
			{Name: "snapshot.reclaim_backlog", Kind: "gauge", Last: 2,
				Points: []int64{0, 1, 2}},
		},
	}

	// prev says the poll-to-poll rate would be 5/s; the ring must win.
	prev := sampleFrom([]obs.Metric{
		{Name: "server.requests", Kind: "counter", Value: 100},
	}, obs.SlowLogSnapshot{})
	out := render(prev, cur, 10*time.Second)

	for _, w := range []string{
		"requests 150 (12.5/s)", // ring rate, not (5.0/s)
		"ring  1s × 600 samples (window 10m0s)",
		"req/s",
		"commit/s",
		"0.2/s",
		"pool-hit",
		"93%",
		"backlog",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("ring frame missing %q:\n%s", w, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("no sparkline blocks in frame:\n%s", out)
	}

	// Without the ring, the same samples fall back to poll deltas.
	cur.ts = nil
	if out := render(prev, cur, 10*time.Second); !strings.Contains(out, "(5.0/s)") {
		t.Errorf("fallback rate missing:\n%s", out)
	}
}

func TestSpark(t *testing.T) {
	if got := spark([]int64{0, 1, 2, 4}); got != "▁▂▄█" {
		t.Errorf("spark = %q", got)
	}
	if got := spark([]int64{0, 0}); got != "▁▁" {
		t.Errorf("flat spark = %q", got)
	}
	if got := spark(nil); got != "" {
		t.Errorf("empty spark = %q", got)
	}
}

func TestDeltas(t *testing.T) {
	got := deltas([]int64{10, 15, 15, 12, 20})
	want := []int64{5, 0, 0, 8} // dips (restart) clamp to zero
	if len(got) != len(want) {
		t.Fatalf("deltas = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", got, want)
		}
	}
	if deltas([]int64{7}) != nil {
		t.Error("single-point deltas should be nil")
	}
}

func TestOneLine(t *testing.T) {
	if got := oneLine("a\n  b\tc", 60); got != "a b c" {
		t.Errorf("oneLine = %q", got)
	}
	long := strings.Repeat("x", 80)
	if got := oneLine(long, 10); len(got) != 9+len("…") || !strings.HasSuffix(got, "…") {
		t.Errorf("truncation = %q", got)
	}
}

func TestRunOnceAgainstFakeServer(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics.json":
			w.Write([]byte(`[{"name":"server.requests","kind":"gauge","value":9}]`))
		case "/slowlog":
			w.Write([]byte(`{"threshold_ns":0,"capacity":128,"recorded":0,"entries":[]}`))
		default:
			// No /timeseries: dkbtop must tolerate a ring-less server.
			http.NotFound(w, r)
		}
	}))
	defer hs.Close()

	var b strings.Builder
	if err := run(&b, hs.URL, time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "requests 9") || !strings.Contains(out, "(none)") {
		t.Errorf("single-shot output:\n%s", out)
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Errorf("-n 1 output must not clear the screen:\n%s", out)
	}
}
