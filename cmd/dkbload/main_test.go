package main

import (
	"os"
	"path/filepath"
	"testing"

	"dkbms"
	"dkbms/internal/rel"
)

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "facts.csv")
	if err := os.WriteFile(csvPath, []byte("john,mary,35\nmary,ann,12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err := dkbms.Open(filepath.Join(dir, "kb.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	n, err := loadCSV(tb, "rec", csvPath)
	if err != nil || n != 2 {
		t.Fatalf("loaded %d, %v", n, err)
	}
	res, err := tb.Query("?- rec(john, W, A).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "mary" || res.Rows[0][1].Int != 35 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLoadCSVTypeMismatch(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "bad.csv")
	// First row fixes column 1 as integer; second row violates it.
	if err := os.WriteFile(csvPath, []byte("a,1\nb,notanint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err := dkbms.Open(filepath.Join(dir, "kb.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := loadCSV(tb, "bad", csvPath); err == nil {
		t.Fatal("type drift accepted")
	}
}

func TestGenerate(t *testing.T) {
	cases := []struct {
		spec string
		want int
	}{
		{"tree:5", (1 << 5) - 2},
		{"list:2:10", 2 * 9},
		{"dag:4:3:2", 2 * 4 * 2},
		{"cyclic:2:3:1", 2*3 + 1},
	}
	for _, c := range cases {
		tuples, err := generate(c.spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if len(tuples) != c.want {
			t.Fatalf("%s: %d tuples, want %d", c.spec, len(tuples), c.want)
		}
		for _, tu := range tuples {
			if len(tu) != 2 || tu[0].Kind != rel.TypeString {
				t.Fatalf("%s: bad tuple %v", c.spec, tu)
			}
		}
	}
	if _, err := generate("bogus:1", 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestEndToEndGenAndQuery(t *testing.T) {
	dir := t.TempDir()
	tb, err := dkbms.Open(filepath.Join(dir, "kb.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tuples, err := generate("tree:6", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AssertTuples("parent", tuples); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreateFactIndex("parent", 0); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
`)
	res, err := tb.Query("?- anc(t1, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != (1<<6)-2 { // every non-root node
		t.Fatalf("descendants = %d", len(res.Rows))
	}
}
