// Command dkbload bulk-loads facts and rules into a (typically
// persistent) data/knowledge base.
//
// Usage:
//
//	dkbload -db kb.db -facts parent=parent.csv -index parent:0
//	dkbload -db kb.db -rules family.dl
//	dkbload -db kb.db -gen tree:12 -pred parent
//
// Facts come from CSV files: each row is one tuple; a cell that parses
// as an integer loads as INTEGER, anything else as CHAR (the first row
// fixes the column types). Rules come from Horn-clause program files
// and are committed to the stored D/KB. -gen synthesizes a workload
// relation: tree:DEPTH, list:N:LEN, dag:WIDTH:PATH:FANIN or
// cyclic:N:LEN:CHORDS.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dkbms"
	"dkbms/internal/rel"
	"dkbms/internal/workload"
)

func main() {
	var (
		dbPath = flag.String("db", "", "database file (required)")
		facts  = flag.String("facts", "", "PRED=FILE.csv fact load")
		rules  = flag.String("rules", "", "Horn-clause program file to commit")
		index  = flag.String("index", "", "PRED:COL[,COL...] index to create")
		gen    = flag.String("gen", "", "synthetic relation: tree:D | list:N:L | dag:W:P:F | cyclic:N:L:C")
		pred   = flag.String("pred", "parent", "predicate name for -gen")
		seed   = flag.Int64("seed", 1, "random seed for -gen")
	)
	flag.Parse()
	if *dbPath == "" {
		fail("missing -db")
	}
	tb, err := dkbms.Open(*dbPath)
	if err != nil {
		fail("%v", err)
	}
	defer tb.Close()

	if *facts != "" {
		parts := strings.SplitN(*facts, "=", 2)
		if len(parts) != 2 {
			fail("-facts wants PRED=FILE.csv")
		}
		n, err := loadCSV(tb, parts[0], parts[1])
		if err != nil {
			fail("loading %s: %v", parts[1], err)
		}
		fmt.Printf("loaded %d facts into %s\n", n, parts[0])
	}

	if *gen != "" {
		tuples, err := generate(*gen, *seed)
		if err != nil {
			fail("%v", err)
		}
		if err := tb.AssertTuples(*pred, tuples); err != nil {
			fail("%v", err)
		}
		fmt.Printf("generated %d tuples into %s\n", len(tuples), *pred)
	}

	if *rules != "" {
		src, err := os.ReadFile(*rules)
		if err != nil {
			fail("%v", err)
		}
		if err := tb.Load(string(src)); err != nil {
			fail("%v", err)
		}
		st, err := tb.Update()
		if err != nil {
			fail("committing rules: %v", err)
		}
		fmt.Printf("committed %d rules (%v)\n", st.NewRules, st.Total)
	}

	if *index != "" {
		parts := strings.SplitN(*index, ":", 2)
		if len(parts) != 2 {
			fail("-index wants PRED:COL[,COL...]")
		}
		var cols []int
		for _, c := range strings.Split(parts[1], ",") {
			n, err := strconv.Atoi(c)
			if err != nil {
				fail("bad column %q", c)
			}
			cols = append(cols, n)
		}
		if err := tb.CreateFactIndex(parts[0], cols...); err != nil {
			fail("%v", err)
		}
		fmt.Printf("indexed %s on columns %v\n", parts[0], cols)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dkbload: "+format+"\n", args...)
	os.Exit(1)
}

func loadCSV(tb *dkbms.Testbed, pred, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return 0, err
	}
	if len(records) == 0 {
		return 0, nil
	}
	// Column types from the first row.
	isInt := make([]bool, len(records[0]))
	for i, cell := range records[0] {
		_, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
		isInt[i] = err == nil
	}
	tuples := make([]rel.Tuple, 0, len(records))
	for _, rec := range records {
		tu := make(rel.Tuple, len(rec))
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if i < len(isInt) && isInt[i] {
				n, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return 0, fmt.Errorf("row %v: column %d is not an integer", rec, i)
				}
				tu[i] = rel.NewInt(n)
			} else {
				tu[i] = rel.NewString(cell)
			}
		}
		tuples = append(tuples, tu)
	}
	return len(tuples), tb.AssertTuples(pred, tuples)
}

func generate(spec string, seed int64) ([]rel.Tuple, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) int {
		if i >= len(parts) {
			return 0
		}
		n, _ := strconv.Atoi(parts[i])
		return n
	}
	switch parts[0] {
	case "tree":
		return workload.FullBinaryTree(atoi(1)), nil
	case "list":
		return workload.Lists(atoi(1), atoi(2)), nil
	case "dag":
		return workload.DAG(atoi(1), atoi(2), atoi(3), rand.New(rand.NewSource(seed))), nil
	case "cyclic":
		return workload.CyclicGraph(atoi(1), atoi(2), atoi(3), rand.New(rand.NewSource(seed))), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}
