package main

import (
	"go/token"
	"testing"

	"dkbms/internal/lint/lintkit"
)

// TestModuleClean runs the full suite over the real module and asserts
// zero findings: the tree must stay dkblint-clean. (Each analyzer's
// fixtures prove the checks fire; this proves the code obeys them.)
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	fset := token.NewFileSet()
	pkgs, err := lintkit.Load(fset, ".", "dkbms/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lintkit.Run(fset, pkgs, Analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestJSONExit exercises the -json path end to end on one clean
// package.
func TestJSONExit(t *testing.T) {
	if code := run([]string{"-json", "dkbms/internal/wire"}); code != 0 {
		t.Fatalf("dkblint -json dkbms/internal/wire: exit %d, want 0", code)
	}
}
