package main

import (
	"go/token"
	"testing"

	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/lockorder"
)

// TestModuleClean runs the full suite over the real module and asserts
// zero findings: the tree must stay dkblint-clean. (Each analyzer's
// fixtures prove the checks fire; this proves the code obeys them.)
// It also pins the shape of the module's lock-order graph: a new lock
// class appearing — or one vanishing — should be a conscious decision,
// reviewed here, not an accident.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	fset := token.NewFileSet()
	pkgs, err := lintkit.Load(fset, ".", "dkbms/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	cache := lintkit.NewCache()
	diags, err := lintkit.RunWithCache(fset, pkgs, Analyzers, cache)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	cg := cache.BuiltCallGraph()
	if cg == nil {
		t.Fatal("no call graph in the cache after a module run")
	}
	if cg.NumFuncs() < 500 || cg.NumEdges() < 2000 {
		t.Errorf("implausibly small call graph: %d functions, %d edges", cg.NumFuncs(), cg.NumEdges())
	}

	g, ok := cache.Load(lockorder.GraphKey).(*lockorder.Graph)
	if !ok {
		t.Fatal("no lock-order graph in the cache after a module run")
	}
	const wantLocks = 20
	if len(g.Locks) != wantLocks {
		t.Errorf("lock-order graph has %d lock classes, want %d; update this pin when adding or removing a lock:\n%v",
			len(g.Locks), wantLocks, g.Locks)
	}
	for _, l := range []string{
		"dkbms.ConcurrentTestbed.commitMu",
		"catalog.Catalog.ddlMu",
		"storage.shard.mu",
		"snapshot.Store.mu",
		"sched.Pool.mu",
	} {
		found := false
		for _, have := range g.Locks {
			if have == l {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lock class %s missing from the module lock-order graph: %v", l, g.Locks)
		}
	}
	if g.OrderEdges == 0 || g.BlockingSites == 0 {
		t.Errorf("implausible lock graph: %d order edges, %d blocking sites", g.OrderEdges, g.BlockingSites)
	}
}

// TestJSONExit exercises the -json path end to end on one clean
// package.
func TestJSONExit(t *testing.T) {
	if code := run([]string{"-json", "dkbms/internal/wire"}); code != 0 {
		t.Fatalf("dkblint -json dkbms/internal/wire: exit %d, want 0", code)
	}
}

// TestDirectivesListing exercises the -directives registry listing.
func TestDirectivesListing(t *testing.T) {
	if code := run([]string{"-directives"}); code != 0 {
		t.Fatalf("dkblint -directives: exit %d, want 0", code)
	}
}
