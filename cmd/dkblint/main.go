// Command dkblint runs the D/KB testbed's domain analyzer suite over Go
// packages:
//
//	pinpair     pinned buffer-pool pages reach Unpin on every path
//	lockscope   no storage or network I/O under latches; locks released
//	atomicfield variables touched by sync/atomic are atomic everywhere
//	opcodecheck wire opcodes are dispatched exhaustively with codecs
//	gofanout    no unbounded `go` launches inside loops
//
// Usage:
//
//	dkblint [-json] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 for a clean run, 1 if any analyzer reported a finding,
// and 2 on a load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"

	"dkbms/internal/lint/atomicfield"
	"dkbms/internal/lint/gofanout"
	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/lockscope"
	"dkbms/internal/lint/opcodecheck"
	"dkbms/internal/lint/pinpair"
)

// Analyzers is the dkblint suite, in report order.
var Analyzers = []*lintkit.Analyzer{
	atomicfield.Analyzer,
	gofanout.Analyzer,
	lockscope.Analyzer,
	opcodecheck.Analyzer,
	pinpair.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dkblint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dkblint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := lintkit.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lintkit.Run(fset, pkgs, Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
