// Command dkblint runs the D/KB testbed's domain analyzer suite over Go
// packages:
//
//	atomicfield variables touched by sync/atomic are atomic everywhere
//	ctxflow     unbounded query-path loops observe ctx.Done/ctx.Err
//	directives  //dkblint: comments are known, well-formed and justified
//	gofanout    no unbounded `go` launches inside loops
//	lockorder   the global lock-acquisition order is acyclic; no lock is
//	            held across a blocking call (interprocedural)
//	lockscope   no storage or network I/O under latches; locks released
//	opcodecheck wire opcodes are dispatched exhaustively with codecs
//	pinleak     page pins, snapshot pins, scheduler clients and task
//	            groups are released on all paths (interprocedural)
//
// Usage:
//
//	dkblint [-json] [-stats] [packages]
//	dkblint -directives
//
// Packages default to ./... relative to the current directory. -stats
// prints call-graph and lock-graph sizes to stderr after the run;
// -directives lists the //dkblint: directive registry and exits. Exit
// status is 0 for a clean run, 1 if any analyzer reported a finding,
// and 2 on a load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"

	"dkbms/internal/lint/atomicfield"
	"dkbms/internal/lint/ctxflow"
	"dkbms/internal/lint/directives"
	"dkbms/internal/lint/gofanout"
	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/lockorder"
	"dkbms/internal/lint/lockscope"
	"dkbms/internal/lint/opcodecheck"
	"dkbms/internal/lint/pinleak"
)

// Analyzers is the dkblint suite, in report order.
var Analyzers = []*lintkit.Analyzer{
	atomicfield.Analyzer,
	ctxflow.Analyzer,
	directives.Analyzer,
	gofanout.Analyzer,
	lockorder.Analyzer,
	lockscope.Analyzer,
	opcodecheck.Analyzer,
	pinleak.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dkblint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	stats := fs.Bool("stats", false, "print call-graph and lock-graph statistics to stderr")
	listDirectives := fs.Bool("directives", false, "list the //dkblint: directive registry and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dkblint [-json] [-stats] [packages]\n       dkblint -directives\n\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listDirectives {
		printDirectives(os.Stdout)
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := lintkit.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cache := lintkit.NewCache()
	diags, err := lintkit.RunWithCache(fset, pkgs, Analyzers, cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *stats {
		printStats(cache, pkgs)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printStats reports the sizes of the module-wide structures the
// interprocedural analyzers built, so a reviewer can see how much of
// the program the graph covers (and how much escapes through dynamic
// call sites).
func printStats(cache *lintkit.Cache, pkgs []*lintkit.Package) {
	targets := 0
	for _, p := range pkgs {
		if p.Target {
			targets++
		}
	}
	fmt.Fprintf(os.Stderr, "dkblint stats:\n  packages analyzed: %d\n", targets)
	if cg := cache.BuiltCallGraph(); cg != nil {
		fmt.Fprintf(os.Stderr, "  call graph: %d functions, %d edges, %d dynamic sites\n",
			cg.NumFuncs(), cg.NumEdges(), cg.DynamicSites)
	}
	if g, ok := cache.Load(lockorder.GraphKey).(*lockorder.Graph); ok {
		fmt.Fprintf(os.Stderr, "  lock graph: %d lock classes, %d order edges, %d blocking sites\n",
			len(g.Locks), g.OrderEdges, g.BlockingSites)
		for _, l := range g.Locks {
			fmt.Fprintf(os.Stderr, "    lock %s\n", l)
		}
	}
}

func printDirectives(w *os.File) {
	fmt.Fprintf(w, "//dkblint: directive registry (grammar: //dkblint:<name>, //dkblint:<name>=<value>, //dkblint:<name> <justification>):\n")
	for _, d := range lintkit.Directives {
		form := "//dkblint:" + d.Name
		switch {
		case d.Valued:
			form += "=<value>"
		case d.NeedsJustification:
			form += " <justification>"
		}
		fmt.Fprintf(w, "  %-36s %-11s %s\n", form, d.Analyzer, d.Doc)
	}
}
