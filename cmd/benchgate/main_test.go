package main

import (
	"strings"
	"testing"
	"time"

	"dkbms/internal/bench"
)

func TestUnitNs(t *testing.T) {
	cases := map[string]float64{
		"t_e(ms)":        1e6,
		"sequential(ms)": 1e6,
		"elapsed_ms":     1e6,
		"t_extract(us)":  1e3,
		"p99_us":         1e3,
		"cycle_us":       1e3,
		"stall_ns":       1,
		"speedup":        0,
		"requests":       0,
		"D_tot":          0,
		"ratio":          0,
	}
	for col, want := range cases {
		if got := unitNs(col); got != want {
			t.Errorf("unitNs(%q) = %v, want %v", col, got, want)
		}
	}
}

func report(cols []string, rows [][]string) *bench.Report {
	return &bench.Report{ID: "x", Cols: cols, Rows: rows}
}

func baseline(cols []string, rows [][]string) *bench.JSONReport {
	return &bench.JSONReport{ID: "x", Cols: cols, Rows: rows}
}

func TestCompareClean(t *testing.T) {
	cols := []string{"level", "naive(ms)", "ratio"}
	base := baseline(cols, [][]string{{"1", "10.00", "2.0"}, {"2", "20.00", "2.1"}})
	cur := report(cols, [][]string{{"1", "11.00", "9.9"}, {"2", "19.00", "0.1"}})
	if got := compare(base, cur, 2.0, time.Millisecond); len(got) != 0 {
		t.Errorf("clean compare flagged: %v", got)
	}
}

func TestCompareRegression(t *testing.T) {
	cols := []string{"level", "naive(ms)"}
	base := baseline(cols, [][]string{{"1", "10.00"}})
	cur := report(cols, [][]string{{"1", "25.00"}})
	got := compare(base, cur, 2.0, time.Millisecond)
	if len(got) != 1 || !strings.Contains(got[0], "naive(ms)") {
		t.Errorf("regression not flagged: %v", got)
	}
}

func TestCompareFloorAbsorbsSmallCells(t *testing.T) {
	// 5µs → 50µs is 10x, but below the 1ms floor: jitter, not regression.
	cols := []string{"R_s", "t_extract(us)"}
	base := baseline(cols, [][]string{{"8", "5"}})
	cur := report(cols, [][]string{{"8", "50"}})
	if got := compare(base, cur, 2.0, time.Millisecond); len(got) != 0 {
		t.Errorf("sub-floor slowdown flagged: %v", got)
	}
	// Same ratio above the floor must fail.
	base = baseline(cols, [][]string{{"8", "5000"}})
	cur = report(cols, [][]string{{"8", "50000"}})
	if got := compare(base, cur, 2.0, time.Millisecond); len(got) != 1 {
		t.Errorf("above-floor slowdown not flagged: %v", got)
	}
}

func TestCompareShapeChanges(t *testing.T) {
	base := baseline([]string{"a", "x(ms)"}, [][]string{{"1", "10"}})
	if got := compare(base, report([]string{"a", "y(ms)"}, [][]string{{"1", "10"}}), 2, 0); len(got) != 1 || !strings.Contains(got[0], "column set changed") {
		t.Errorf("column change not flagged: %v", got)
	}
	if got := compare(base, report([]string{"a", "x(ms)"}, nil), 2, 0); len(got) != 1 || !strings.Contains(got[0], "row count changed") {
		t.Errorf("row-count change not flagged: %v", got)
	}
	if got := compare(base, report([]string{"a", "x(ms)"}, [][]string{{"2", "10"}}), 2, 0); len(got) != 1 || !strings.Contains(got[0], "relabeled") {
		t.Errorf("relabel not flagged: %v", got)
	}
}

func TestCompareSkipsNonNumeric(t *testing.T) {
	cols := []string{"q", "plain(ms)"}
	base := baseline(cols, [][]string{{"q1", "n/a"}})
	cur := report(cols, [][]string{{"q1", "99.0"}})
	if got := compare(base, cur, 2.0, 0); len(got) != 0 {
		t.Errorf("n/a cell judged: %v", got)
	}
}
