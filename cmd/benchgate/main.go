// Command benchgate is the CI performance-regression gate: it re-runs
// the quick benchmark suite in-process and compares every latency cell
// against a committed baseline (scripts/bench_baseline/BENCH_<exp>.json),
// failing when a cell is more than -tolerance times slower AND the
// absolute slowdown exceeds -floor. The double condition keeps the gate
// quiet on microsecond-scale cells, where scheduling jitter dominates,
// while still catching a real 2× regression on anything that matters.
//
// Only latency-named columns are gated — "(ms)", "(us)", or names
// ending in _ms/_us/_ns. Counts, ratios and throughput move with
// hardware in both directions and are not judged.
//
// Usage:
//
//	benchgate                      # gate against scripts/bench_baseline
//	benchgate -update              # re-measure and rewrite the baselines
//	benchgate -exp fig7,fig8       # gate a subset
//	benchgate -tolerance 3 -floor 5ms
//
// Baselines are quick-scale runs committed to the repo; refresh them
// with -update after an intentional perf change (or on new hardware).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dkbms/internal/bench"
)

func main() {
	var (
		baselineDir = flag.String("baseline", "scripts/bench_baseline", "directory of committed BENCH_<exp>.json baselines")
		update      = flag.Bool("update", false, "re-measure and rewrite the baselines instead of gating")
		tolerance   = flag.Float64("tolerance", 2.0, "fail when a latency cell exceeds baseline × tolerance")
		floor       = flag.Duration("floor", time.Millisecond, "ignore slowdowns smaller than this (absolute)")
		expFlag     = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		reps        = flag.Int("reps", 3, "repetitions per measured point (minimum reported)")
	)
	flag.Parse()

	var runners []bench.Runner
	if *expFlag == "all" {
		runners = bench.Runners()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			r := bench.Find(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "benchgate: unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	cfg := bench.QuickConfig()
	cfg.Reps = *reps

	failed := false
	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		path := filepath.Join(*baselineDir, "BENCH_"+strings.ReplaceAll(r.ID, "-", "_")+".json")

		if *update {
			out, err := rep.JSON(cfg, time.Since(start))
			if err == nil {
				err = os.WriteFile(path, out, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Printf("%-18s baseline written (%s)\n", r.ID, path)
			continue
		}

		base, err := readBaseline(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v (refresh with -update)\n", r.ID, err)
			failed = true
			continue
		}
		problems := compare(base, rep, *tolerance, *floor)
		if len(problems) == 0 {
			fmt.Printf("%-18s ok (%d latency cells within %.1fx)\n", r.ID, gatedCells(rep), *tolerance)
			continue
		}
		failed = true
		for _, p := range problems {
			fmt.Printf("%-18s REGRESSION %s\n", r.ID, p)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAILED (intentional change? refresh with: go run ./cmd/benchgate -update)")
		os.Exit(1)
	}
}

func readBaseline(path string) (*bench.JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("no baseline: %w", err)
	}
	var jr bench.JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, fmt.Errorf("unreadable baseline: %w", err)
	}
	return &jr, nil
}

// unitNs maps a latency column name to its unit in nanoseconds, 0 for
// columns that are not gated.
func unitNs(col string) float64 {
	switch {
	case strings.Contains(col, "(ms)") || strings.HasSuffix(col, "_ms"):
		return 1e6
	case strings.Contains(col, "(us)") || strings.HasSuffix(col, "_us"):
		return 1e3
	case strings.Contains(col, "(ns)") || strings.HasSuffix(col, "_ns"):
		return 1
	}
	return 0
}

// gatedCells counts the latency cells a report contributes to the gate.
func gatedCells(rep *bench.Report) int {
	n := 0
	for _, col := range rep.Cols {
		if unitNs(col) > 0 {
			n += len(rep.Rows)
		}
	}
	return n
}

// compare judges the current report against its baseline, returning one
// message per violation. A changed table shape (columns, row count, row
// labels) is a violation too: it means the baseline describes a
// different experiment and must be refreshed deliberately.
func compare(base *bench.JSONReport, cur *bench.Report, tolerance float64, floor time.Duration) []string {
	var out []string
	if strings.Join(base.Cols, "|") != strings.Join(cur.Cols, "|") {
		return []string{fmt.Sprintf("column set changed (baseline %v, now %v)", base.Cols, cur.Cols)}
	}
	if len(base.Rows) != len(cur.Rows) {
		return []string{fmt.Sprintf("row count changed (baseline %d, now %d)", len(base.Rows), len(cur.Rows))}
	}
	for i, curRow := range cur.Rows {
		baseRow := base.Rows[i]
		if len(baseRow) > 0 && len(curRow) > 0 && baseRow[0] != curRow[0] {
			out = append(out, fmt.Sprintf("row %d relabeled (baseline %q, now %q)", i, baseRow[0], curRow[0]))
			continue
		}
		for j, col := range cur.Cols {
			mult := unitNs(col)
			if mult == 0 || j >= len(baseRow) || j >= len(curRow) {
				continue
			}
			bv, berr := strconv.ParseFloat(baseRow[j], 64)
			cv, cerr := strconv.ParseFloat(curRow[j], 64)
			if berr != nil || cerr != nil {
				continue // non-numeric cell ("n/a"): nothing to judge
			}
			baseNs, curNs := bv*mult, cv*mult
			if curNs > baseNs*tolerance && curNs-baseNs > float64(floor.Nanoseconds()) {
				out = append(out, fmt.Sprintf("%s %s: %s → %s (%.1fx, limit %.1fx)",
					curRow[0], col,
					time.Duration(baseNs).Round(time.Microsecond),
					time.Duration(curNs).Round(time.Microsecond),
					curNs/baseNs, tolerance))
			}
		}
	}
	return out
}
