// Command dkbsh is the testbed's User Interface (paper §3.1): an
// interactive shell for a data/knowledge base. A typical session enters
// rules and facts into the workspace D/KB, queries them, and commits
// the workspace to the stored D/KB with .update.
//
// Usage:
//
//	dkbsh                       # in-memory D/KB
//	dkbsh -db family.db         # persistent D/KB
//	dkbsh -connect localhost:7407   # session on a running dkbd server
//
// Input:
//
//	parent(john, mary).                      add a fact
//	ancestor(X, Y) :- parent(X, Y).          add a rule to the workspace
//	?- ancestor(john, W).                    query
//	.load family.dl                          load a program file
//	.update                                  commit workspace rules to the stored D/KB
//	.rules                                   show workspace rules
//	.stored                                  stored D/KB summary
//	.opts naive|seminaive|magic|nomagic|adaptive   evaluation options
//	.timing on|off                           print compile/eval breakdowns
//	.sql SELECT ...                          raw SQL against the DBMS
//	.help / .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dkbms"
	"dkbms/internal/dlog"
	"dkbms/internal/obs"
)

func main() {
	dbPath := flag.String("db", "", "database file (empty = in-memory)")
	connect := flag.String("connect", "", "dkbd server address (remote session instead of in-process D/KB)")
	flag.Parse()

	if *connect != "" {
		if err := runRemote(*connect); err != nil {
			fmt.Fprintf(os.Stderr, "dkbsh: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tb *dkbms.Testbed
	var err error
	if *dbPath == "" {
		tb = dkbms.NewMemory()
	} else {
		tb, err = dkbms.Open(*dbPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkbsh: %v\n", err)
			os.Exit(1)
		}
	}
	defer tb.Close()

	sh := &shell{tb: tb, opts: dkbms.QueryOptions{}, out: os.Stdout,
		slow: obs.NewSlowLog(0, 0)}
	fmt.Println("dkbms testbed shell — .help for commands")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("dkb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == ".quit" || line == ".exit" {
			return
		}
		if err := sh.handle(line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

type shell struct {
	tb     *dkbms.Testbed
	opts   dkbms.QueryOptions
	timing bool
	out    io.Writer
	slow   *obs.SlowLog // this session's queries, slowest first (.slowlog)
}

func (s *shell) handle(line string) error {
	switch {
	case strings.HasPrefix(line, ".help"):
		s.help()
		return nil
	case strings.HasPrefix(line, ".load "):
		path := strings.TrimSpace(strings.TrimPrefix(line, ".load "))
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return s.tb.Load(string(src))
	case line == ".update":
		st, err := s.tb.Update()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "committed %d rules in %v (extract %v, closure %v, store %v)\n",
			st.NewRules, st.Total.Round(10e3), st.Extract.Round(10e3), st.TC.Round(10e3), st.Store.Round(10e3))
		return nil
	case line == ".rules":
		for _, c := range s.tb.Workspace().Rules() {
			fmt.Fprintln(s.out, c.String())
		}
		return nil
	case line == ".stored":
		fmt.Fprintf(s.out, "stored rules: %d, reachability edges: %d\n",
			s.tb.Stored().RuleCount(), s.tb.Stored().ReachableEdges())
		return nil
	case strings.HasPrefix(line, ".opts "):
		return s.setOpts(strings.Fields(strings.TrimPrefix(line, ".opts ")))
	case strings.HasPrefix(line, ".timing"):
		s.timing = strings.Contains(line, "on")
		return nil
	case line == ".slowlog":
		printSlowlog(s.out, s.slow.Threshold(), s.slow.Capacity(), s.slow.Recorded(), s.slow.Snapshot())
		return nil
	case strings.HasPrefix(line, ".sql "):
		return s.rawSQL(strings.TrimPrefix(line, ".sql "))
	case strings.HasPrefix(line, ".explain "):
		return s.explain(strings.TrimPrefix(line, ".explain "))
	case strings.HasPrefix(line, ".trace "):
		return s.trace(strings.TrimSpace(strings.TrimPrefix(line, ".trace ")))
	case strings.HasPrefix(line, "."):
		return fmt.Errorf("unknown command %q (.help)", line)
	case strings.HasPrefix(line, "?-"):
		return s.query(line)
	default:
		return s.tb.Load(line)
	}
}

func (s *shell) query(line string) error {
	start := time.Now()
	res, err := s.tb.Query(line, &s.opts)
	s.recordSlow(line, start, res, err)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, res.Format())
	fmt.Fprintf(s.out, "%d rows", len(res.Rows))
	if res.Optimized {
		fmt.Fprint(s.out, " (magic sets)")
	}
	fmt.Fprintf(s.out, " [%s]\n", res.Strategy)
	if s.timing {
		c, e := res.Compile, res.Eval
		fmt.Fprintf(s.out, "compile %v (setup %v, extract %v, dict %v, rewrite %v, order %v, types %v, codegen %v)\n",
			c.Total, c.Setup, c.Extract, c.ReadDict, c.Rewrite, c.EvalOrder, c.TypeCheck, c.CodeGen)
		fmt.Fprintf(s.out, "eval %v (tables %v, rules %v, termination %v)\n",
			e.Elapsed, e.TempTable, e.Eval, e.TermCheck)
		for _, ns := range e.Nodes {
			kind := "pred"
			if ns.Recursive {
				kind = "clique"
			}
			fmt.Fprintf(s.out, "  %s %v: %v in %d iterations, %d tuples\n",
				kind, ns.Preds, ns.Elapsed, ns.Iterations, ns.Tuples)
		}
	}
	return nil
}

// trace runs one query with tracing on and prints the span tree — the
// per-phase, per-iteration, per-operator account of the evaluation.
// With `-o FILE` the tree is written as Chrome trace-event JSON instead,
// loadable in ui.perfetto.dev or chrome://tracing.
func (s *shell) trace(arg string) error {
	outFile, q := parseTraceArgs(arg)
	opts := s.opts
	opts.Trace = true
	start := time.Now()
	res, err := s.tb.Query(q, &opts)
	s.recordSlow(q, start, res, err)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, res.Format())
	fmt.Fprintf(s.out, "%d rows", len(res.Rows))
	if res.Optimized {
		fmt.Fprint(s.out, " (magic sets)")
	}
	fmt.Fprintf(s.out, " [%s]\n", res.Strategy)
	fmt.Fprintf(s.out, "query id %s\n", obs.FormatQueryID(res.QueryID))
	if res.Trace == nil {
		return nil
	}
	if outFile != "" {
		return writeTraceFile(s.out, outFile, res.Trace.Root(), res.QueryID)
	}
	fmt.Fprint(s.out, res.Trace.Format())
	return nil
}

// parseTraceArgs splits a .trace argument into an optional `-o FILE`
// and the query text.
func parseTraceArgs(arg string) (outFile, query string) {
	query = strings.TrimSpace(arg)
	if rest, ok := strings.CutPrefix(query, "-o "); ok {
		rest = strings.TrimSpace(rest)
		if i := strings.IndexAny(rest, " \t"); i > 0 {
			outFile, query = rest[:i], strings.TrimSpace(rest[i:])
		}
	}
	return outFile, query
}

// writeTraceFile exports a span tree as Chrome trace-event JSON.
func writeTraceFile(out io.Writer, path string, root *obs.Span, qid uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(f, root, qid)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Fprintf(out, "wrote Perfetto trace to %s (open in ui.perfetto.dev)\n", path)
	return nil
}

// recordSlow enters one interactive query into the shell's private
// slow-query ring, mirroring what a dkbd session records server-side.
func (s *shell) recordSlow(src string, start time.Time, res *dkbms.QueryResult, err error) {
	e := obs.SlowQuery{Query: src, Start: start, Latency: time.Since(start)}
	if err != nil {
		e.Err = err.Error()
	} else {
		e.Rows = int64(len(res.Rows))
		e.Iterations = res.Iterations()
		e.Trace = res.Trace.Root()
		e.QueryID = res.QueryID
	}
	s.slow.Record(e)
}

func (s *shell) setOpts(words []string) error {
	for _, w := range words {
		switch w {
		case "naive":
			s.opts.Naive = true
		case "seminaive", "semi-naive":
			s.opts.Naive = false
		case "magic":
			s.opts.NoOptimize = false
			s.opts.Adaptive = false
		case "nomagic":
			s.opts.NoOptimize = true
			s.opts.Adaptive = false
		case "adaptive":
			s.opts.Adaptive = true
			s.opts.NoOptimize = false
		case "parallel":
			s.opts.Parallel = true
			s.opts.Naive = false
		case "serial":
			s.opts.Parallel = false
		default:
			return fmt.Errorf("unknown option %q", w)
		}
	}
	fmt.Fprintf(s.out, "strategy=%v magic=%v adaptive=%v parallel=%v\n",
		map[bool]string{true: "naive", false: "semi-naive"}[s.opts.Naive],
		!s.opts.NoOptimize, s.opts.Adaptive, s.opts.Parallel)
	return nil
}

func (s *shell) explain(q string) error {
	query, err := dlog.ParseQuery(q)
	if err != nil {
		return err
	}
	compiled, err := s.tb.Compile(query, &s.opts)
	if err != nil {
		return err
	}
	if compiled.Optimized {
		fmt.Fprintln(s.out, "magic-sets rewriting applied")
	}
	fmt.Fprint(s.out, compiled.Program.Explain())
	return nil
}

func (s *shell) rawSQL(stmt string) error {
	up := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(up, "SELECT") {
		rows, err := s.tb.DB().Query(stmt)
		if err != nil {
			return err
		}
		var names []string
		for _, c := range rows.Schema.Columns() {
			names = append(names, c.Name)
		}
		fmt.Fprintln(s.out, strings.Join(names, "\t"))
		for _, tu := range rows.Tuples {
			var cells []string
			for _, v := range tu {
				cells = append(cells, v.String())
			}
			fmt.Fprintln(s.out, strings.Join(cells, "\t"))
		}
		fmt.Fprintf(s.out, "%d rows\n", len(rows.Tuples))
		return nil
	}
	return s.tb.DB().Exec(stmt)
}

func (s *shell) help() {
	fmt.Fprint(s.out, `clauses:   parent(john, mary).    ancestor(X, Y) :- parent(X, Y).
queries:   ?- ancestor(john, W).
commands:
  .load FILE      load a Horn-clause program
  .update         commit workspace rules to the stored D/KB
  .rules          list workspace rules
  .stored         stored D/KB summary
  .opts WORDS     naive|seminaive  magic|nomagic|adaptive  parallel|serial
  .timing on|off  print compile/eval breakdowns per query
  .explain Q      show the compiled evaluation program for a query
  .trace [-o FILE] Q   run a query traced; print the span tree, or export
                       Chrome/Perfetto trace-event JSON with -o
  .slowlog        this session's queries, slowest first
  .sql STMT       raw SQL against the DBMS
  .quit
`)
}
