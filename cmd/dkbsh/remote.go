package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dkbms/internal/client"
	"dkbms/internal/obs"
	"dkbms/internal/wire"
)

// runRemote is the shell loop for `dkbsh -connect HOST:PORT`: the same
// clause/query surface, executed on a dkbd server instead of an
// in-process testbed.
func runRemote(addr string) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		return err
	}

	sh := &remoteShell{c: c, out: os.Stdout, stmts: make(map[uint64]*client.Stmt)}
	fmt.Printf("dkbms testbed shell — connected to %s (.help for commands)\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("dkb> ")
		if !sc.Scan() {
			fmt.Println()
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == ".quit" || line == ".exit" {
			return nil
		}
		if err := sh.handle(line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

type remoteShell struct {
	c     *client.Client
	opts  wire.QueryOpts
	out   io.Writer
	stmts map[uint64]*client.Stmt
}

func (s *remoteShell) handle(line string) error {
	switch {
	case strings.HasPrefix(line, ".help"):
		s.help()
		return nil
	case strings.HasPrefix(line, ".load "):
		path := strings.TrimSpace(strings.TrimPrefix(line, ".load "))
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return s.c.Load(string(src))
	case strings.HasPrefix(line, ".retract "):
		n, err := s.c.Retract(strings.TrimSpace(strings.TrimPrefix(line, ".retract ")))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "retracted %d facts\n", n)
		return nil
	case strings.HasPrefix(line, ".prepare "):
		stmt, err := s.c.Prepare(strings.TrimSpace(strings.TrimPrefix(line, ".prepare ")), s.opts)
		if err != nil {
			return err
		}
		s.stmts[stmt.ID] = stmt
		fmt.Fprintf(s.out, "prepared #%d (rule-base generation %d); run with .exec %d\n",
			stmt.ID, stmt.Generation, stmt.ID)
		return nil
	case strings.HasPrefix(line, ".exec "):
		id, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, ".exec ")), 10, 64)
		if err != nil {
			return err
		}
		stmt, ok := s.stmts[id]
		if !ok {
			return fmt.Errorf("no prepared query #%d (.prepare first)", id)
		}
		res, err := stmt.Exec()
		if err != nil {
			return err
		}
		s.printResult(res)
		return nil
	case line == ".stats":
		st, err := s.c.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "sessions %d active / %d total, in-flight %d\n",
			st.ActiveSessions, st.TotalSessions, st.InFlight)
		fmt.Fprintf(s.out, "requests %d (%d errors), p50 %v, p99 %v\n",
			st.Requests, st.Errors, st.P50, st.P99)
		planLookups := st.PlanResultHits + st.PlanHits + st.PlanMisses
		fmt.Fprintf(s.out, "plan cache: %d result hits, %d plan hits, %d misses (hit rate %s)\n",
			st.PlanResultHits, st.PlanHits, st.PlanMisses,
			rate(st.PlanResultHits+st.PlanHits, planLookups))
		fmt.Fprintf(s.out, "buffer pool: %d hits, %d misses, %d evictions (hit rate %s)\n",
			st.PoolHits, st.PoolMisses, st.PoolEvictions,
			rate(st.PoolHits, st.PoolHits+st.PoolMisses))
		fmt.Fprintf(s.out, "traffic in %d B, out %d B; rule-base generation %d\n",
			st.BytesIn, st.BytesOut, st.Generation)
		fmt.Fprintf(s.out, "snapshots: generation %d, %d active readers, %d versions awaiting reclaim, writer stall %v\n",
			st.SnapshotGen, st.SnapshotReaders, st.ReclaimBacklog, st.WriterStall)
		fmt.Fprintf(s.out, "scheduler: %d workers, %d queued, %d submitted, %d stolen inline\n",
			st.SchedWorkers, st.SchedQueued, st.SchedSubmitted, st.SchedStolen)
		fmt.Fprintf(s.out, "views: %d live, %d maintained, %d re-derived, %d delta tuples, %v maintaining\n",
			st.ViewsLive, st.ViewsMaintained, st.ViewsRederives,
			st.ViewsDeltaTuples, st.ViewsMaintainTime)
		fmt.Fprintf(s.out, "queries served %d\n", st.Queries)
		return nil
	case line == ".views":
		vs, err := s.c.Views()
		if err != nil {
			return err
		}
		if len(vs.Views) == 0 {
			fmt.Fprintln(s.out, "no maintained views")
			return nil
		}
		for _, v := range vs.Views {
			fmt.Fprintf(s.out, "%-40q %-11s %6d rows, %d maintains",
				v.Query, v.Policy, v.Rows, v.Maintains)
			if v.Maintains > 0 {
				fmt.Fprintf(s.out, " (last: %d delta tuples in %v)",
					v.LastDeltaTuples, v.LastMaintain)
			}
			fmt.Fprintln(s.out)
		}
		return nil
	case line == ".slowlog":
		sl, err := s.c.Slowlog()
		if err != nil {
			return err
		}
		printSlowlog(s.out, time.Duration(sl.ThresholdNs), int(sl.Capacity), sl.Recorded, sl.Entries)
		return nil
	case strings.HasPrefix(line, ".opts "):
		return s.setOpts(strings.Fields(strings.TrimPrefix(line, ".opts ")))
	case strings.HasPrefix(line, ".trace "):
		// Same query path with the TRACE bit set: the server evaluates
		// with tracing and ships the span tree back in the RESULT frame,
		// tagged with the query ID it ran (and was slow-logged) under.
		outFile, q := parseTraceArgs(strings.TrimPrefix(line, ".trace "))
		opts := s.opts
		opts.Trace = true
		res, err := s.c.Query(q, opts)
		if err != nil {
			return err
		}
		s.printResult(res)
		if res.Trace == nil {
			return nil
		}
		if outFile != "" {
			return writeTraceFile(s.out, outFile, res.Trace, res.QueryID)
		}
		fmt.Fprint(s.out, obs.Adopt(res.Trace).Format())
		return nil
	case strings.HasPrefix(line, "."):
		return fmt.Errorf("unknown command %q (.help)", line)
	case strings.HasPrefix(line, "?-"):
		res, err := s.c.Query(line, s.opts)
		if err != nil {
			return err
		}
		s.printResult(res)
		return nil
	default:
		return s.c.Load(line)
	}
}

// rate formats part/whole as a percentage, "n/a" when nothing counted.
func rate(part, whole int64) string {
	if whole <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

func (s *remoteShell) printResult(res *wire.Result) {
	if len(res.Vars) > 0 {
		fmt.Fprintln(s.out, strings.Join(res.Vars, "\t"))
	}
	for _, tu := range res.Rows {
		var cells []string
		for _, v := range tu {
			cells = append(cells, v.String())
		}
		fmt.Fprintln(s.out, strings.Join(cells, "\t"))
	}
	fmt.Fprintf(s.out, "%d rows", len(res.Rows))
	if res.Optimized {
		fmt.Fprint(s.out, " (magic sets)")
	}
	fmt.Fprintf(s.out, " [%s]\n", res.Strategy)
	if res.QueryID != 0 {
		// The server filed this execution in its log and slow-query ring
		// under the echoed ID; /debug/trace?id=... addresses it.
		fmt.Fprintf(s.out, "query id %s\n", obs.FormatQueryID(res.QueryID))
	}
}

func (s *remoteShell) setOpts(words []string) error {
	for _, w := range words {
		switch w {
		case "naive":
			s.opts.Naive = true
		case "seminaive", "semi-naive":
			s.opts.Naive = false
		case "magic":
			s.opts.NoOptimize = false
			s.opts.Adaptive = false
		case "nomagic":
			s.opts.NoOptimize = true
			s.opts.Adaptive = false
		case "adaptive":
			s.opts.Adaptive = true
			s.opts.NoOptimize = false
		case "parallel":
			s.opts.Parallel = true
			s.opts.Naive = false
		case "serial":
			s.opts.Parallel = false
		default:
			return fmt.Errorf("unknown option %q", w)
		}
	}
	fmt.Fprintf(s.out, "strategy=%v magic=%v adaptive=%v parallel=%v\n",
		map[bool]string{true: "naive", false: "semi-naive"}[s.opts.Naive],
		!s.opts.NoOptimize, s.opts.Adaptive, s.opts.Parallel)
	return nil
}

func (s *remoteShell) help() {
	fmt.Fprint(s.out, `clauses:   parent(john, mary).    ancestor(X, Y) :- parent(X, Y).
queries:   ?- ancestor(john, W).
commands (remote session):
  .load FILE      load a Horn-clause program into the server
  .retract PAT    retract matching base facts, e.g. .retract parent(john, X)
  .prepare Q      compile a query server-side; returns an id
  .exec ID        run a prepared query
  .stats          server activity counters
  .slowlog        server slow-query log (slowest first)
  .views          live maintained materialized views (most recent first)
  .trace [-o FILE] Q   run a query with server-side tracing; print the span
                       tree, or export Chrome/Perfetto trace-event JSON with -o
  .opts WORDS     naive|seminaive  magic|nomagic|adaptive  parallel|serial
  .quit
`)
}
