package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dkbms"
)

func newShell(t *testing.T) (*shell, *bytes.Buffer) {
	t.Helper()
	tb := dkbms.NewMemory()
	t.Cleanup(func() { tb.Close() })
	var buf bytes.Buffer
	return &shell{tb: tb, out: &buf}, &buf
}

func drive(t *testing.T, sh *shell, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := sh.handle(l); err != nil {
			t.Fatalf("handle(%q): %v", l, err)
		}
	}
}

func TestShellClauseQueryFlow(t *testing.T) {
	sh, buf := newShell(t)
	drive(t, sh,
		"parent(john, mary).",
		"parent(mary, ann).",
		"ancestor(X, Y) :- parent(X, Y).",
		"ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
		"?- ancestor(john, W).",
	)
	out := buf.String()
	if !strings.Contains(out, "mary") || !strings.Contains(out, "ann") {
		t.Fatalf("query output missing rows:\n%s", out)
	}
	if !strings.Contains(out, "2 rows") {
		t.Fatalf("row count missing:\n%s", out)
	}
}

func TestShellUpdateAndStored(t *testing.T) {
	sh, buf := newShell(t)
	drive(t, sh,
		"parent(a, b).",
		"anc(X, Y) :- parent(X, Y).",
		".update",
		".stored",
	)
	out := buf.String()
	if !strings.Contains(out, "committed 1 rules") {
		t.Fatalf("update output:\n%s", out)
	}
	if !strings.Contains(out, "stored rules: 1") {
		t.Fatalf("stored output:\n%s", out)
	}
}

func TestShellOptsAndTiming(t *testing.T) {
	sh, buf := newShell(t)
	drive(t, sh, ".opts naive nomagic")
	if !sh.opts.Naive || !sh.opts.NoOptimize {
		t.Fatalf("opts = %+v", sh.opts)
	}
	drive(t, sh, ".opts seminaive adaptive")
	if sh.opts.Naive || !sh.opts.Adaptive {
		t.Fatalf("opts = %+v", sh.opts)
	}
	if err := sh.handle(".opts bogus"); err == nil {
		t.Fatal("bogus option accepted")
	}
	buf.Reset()
	drive(t, sh,
		"parent(a, b).",
		"anc(X, Y) :- parent(X, Y).",
		".timing on",
		"?- anc(a, W).",
	)
	if !strings.Contains(buf.String(), "compile ") {
		t.Fatalf("timing output missing:\n%s", buf.String())
	}
}

func TestShellRawSQL(t *testing.T) {
	sh, buf := newShell(t)
	drive(t, sh,
		".sql CREATE TABLE raw (x INTEGER)",
		".sql INSERT INTO raw VALUES (7)",
		".sql SELECT x FROM raw",
	)
	if !strings.Contains(buf.String(), "7") {
		t.Fatalf("sql output:\n%s", buf.String())
	}
}

func TestShellLoadFile(t *testing.T) {
	sh, buf := newShell(t)
	path := filepath.Join(t.TempDir(), "prog.dl")
	if err := os.WriteFile(path, []byte("parent(x, y).\nanc(A, B) :- parent(A, B).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	drive(t, sh, ".load "+path, "?- anc(x, W).")
	if !strings.Contains(buf.String(), "y") {
		t.Fatalf("load output:\n%s", buf.String())
	}
	if err := sh.handle(".load /no/such/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newShell(t)
	if err := sh.handle(".bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := sh.handle("?- undefined(X)."); err == nil {
		t.Fatal("bad query accepted")
	}
	if err := sh.handle("not valid datalog"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestShellHelp(t *testing.T) {
	sh, buf := newShell(t)
	drive(t, sh, ".help")
	if !strings.Contains(buf.String(), ".update") {
		t.Fatal("help output incomplete")
	}
}

func TestShellExplain(t *testing.T) {
	sh, buf := newShell(t)
	drive(t, sh,
		"parent(a, b).",
		"anc(X, Y) :- parent(X, Y).",
		"anc(X, Y) :- parent(X, Z), anc(Z, Y).",
		".explain ?- anc(a, W).",
	)
	out := buf.String()
	for _, want := range []string{"magic-sets rewriting applied", "clique", "SELECT DISTINCT", "edb_parent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if err := sh.handle(".explain ?- nosuch(X)."); err == nil {
		t.Fatal("explain of bad query accepted")
	}
}
