package main

import (
	"fmt"
	"io"
	"time"

	"dkbms/internal/obs"
)

// printSlowlog renders a slow-query snapshot (slowest first), shared by
// the local shell (its private ring) and the remote shell (the server's
// ring fetched over SLOWLOG).
func printSlowlog(w io.Writer, threshold time.Duration, capacity int, recorded int64, entries []obs.SlowQuery) {
	if threshold > 0 {
		fmt.Fprintf(w, "slow-query log: %d recorded at or above %v (ring of %d)\n",
			recorded, threshold, capacity)
	} else {
		fmt.Fprintf(w, "slow-query log: %d recorded, no threshold (ring of %d)\n",
			recorded, capacity)
	}
	if len(entries) == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	for i, e := range entries {
		fmt.Fprintf(w, "%3d. %10v  %s\n", i+1, e.Latency.Round(time.Microsecond), e.Query)
		switch {
		case e.Err != "":
			fmt.Fprintf(w, "     error: %s\n", e.Err)
		default:
			line := fmt.Sprintf("     %d rows", e.Rows)
			if e.Iterations > 0 {
				line += fmt.Sprintf(", %d iterations", e.Iterations)
			}
			if e.Cache != "" {
				line += ", cache " + e.Cache
			}
			if e.Session > 0 {
				line += fmt.Sprintf(", session %d", e.Session)
			}
			if e.QueryID != 0 {
				line += ", id " + obs.FormatQueryID(e.QueryID)
			}
			if e.Trace != nil {
				line += ", traced"
			}
			fmt.Fprintln(w, line)
		}
	}
}
