// Command dkbd serves a data/knowledge base over TCP to concurrent
// clients, turning the single-process testbed into a shared server: one
// D/KB, many sessions. Queries from different sessions evaluate
// concurrently; loads and retractions serialize against them.
//
// Usage:
//
//	dkbd                          # in-memory D/KB on :7407
//	dkbd -db family.db -addr :9000
//	dkbd -load family.dl          # preload a program at startup
//	dkbd -debug-addr 127.0.0.1:7408   # HTTP /metrics /timeseries /slowlog /healthz /debug/{trace,pprof}
//	dkbd -log-level debug -log-format json
//	dkbd -slow-threshold 10ms     # only retain queries at or above 10ms
//	dkbd -sample-interval 500ms -sample-window 1200   # 10 min of 0.5s samples
//
// dkbd shuts down gracefully on SIGINT/SIGTERM: the listener closes at
// once, in-flight requests finish and receive their responses, then the
// debug HTTP server (if any) is drained and the process exits. Connect
// with `dkbsh -connect HOST:PORT` or the internal/client package; watch
// a running server with `dkbtop -addr HOST:DEBUGPORT`.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dkbms"
	"dkbms/internal/obs"
	"dkbms/internal/server"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", ":7407", "listen address")
	flag.StringVar(&cfg.dbPath, "db", "", "database file (empty = in-memory)")
	flag.StringVar(&cfg.load, "load", "", "Horn-clause program to load at startup")
	flag.IntVar(&cfg.maxConns, "maxconns", server.DefaultMaxConns, "max simultaneous sessions")
	flag.DurationVar(&cfg.ioTimeout, "iotimeout", server.DefaultIOTimeout, "per-request I/O deadline (negative disables)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "HTTP debug listen address serving /metrics /slowlog /healthz /debug/pprof (empty = disabled)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug|info|warn|error")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log format: text|json")
	flag.IntVar(&cfg.slowSize, "slowlog-size", 0, "slow-query ring capacity (0 = default)")
	flag.DurationVar(&cfg.slowThreshold, "slow-threshold", 0, "minimum latency to enter the slow-query log (0 retains every query)")
	flag.IntVar(&cfg.schedWorkers, "sched-workers", 0, "evaluation pool workers shared by all sessions (0 = GOMAXPROCS)")
	flag.StringVar(&cfg.maintPolicy, "maint-policy", "auto", "materialized-view maintenance policy for cached answers: auto|incremental|rederive")
	flag.DurationVar(&cfg.sampleInterval, "sample-interval", obs.DefaultSampleInterval, "retained-telemetry sampling period for /timeseries (negative disables)")
	flag.IntVar(&cfg.sampleWindow, "sample-window", obs.DefaultSampleWindow, "retained-telemetry ring capacity in samples (negative disables)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dkbd: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr, dbPath, load  string
	maxConns            int
	ioTimeout           time.Duration
	debugAddr           string
	logLevel, logFormat string
	slowSize            int
	slowThreshold       time.Duration
	schedWorkers        int
	maintPolicy         string
	sampleInterval      time.Duration
	sampleWindow        int
}

// buildLogger turns the -log-level/-log-format flags into the server's
// structured logger, writing to stderr.
func buildLogger(level, format string) (*obs.Logger, error) {
	var l *obs.Logger
	switch format {
	case "text", "":
		l = obs.NewLogger(os.Stderr)
	case "json":
		l = obs.NewJSONLogger(os.Stderr)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text|json)", format)
	}
	return l.SetLevel(obs.ParseLevel(level)), nil
}

func run(cfg config) error {
	logger, err := buildLogger(cfg.logLevel, cfg.logFormat)
	if err != nil {
		return err
	}

	var tb *dkbms.Testbed
	if cfg.dbPath == "" {
		tb = dkbms.NewMemory()
	} else {
		tb, err = dkbms.Open(cfg.dbPath)
		if err != nil {
			return err
		}
	}
	policy, err := dkbms.ParseMaintenancePolicy(cfg.maintPolicy)
	if err != nil {
		return fmt.Errorf("-maint-policy: %w", err)
	}
	ctb := dkbms.NewConcurrentWithOptions(tb, dkbms.ConcurrentOptions{
		SchedWorkers:      cfg.schedWorkers,
		MaintenancePolicy: policy,
	})
	defer ctb.Close()

	if cfg.load != "" {
		src, err := os.ReadFile(cfg.load)
		if err != nil {
			return err
		}
		if err := ctb.Load(string(src)); err != nil {
			return fmt.Errorf("load %s: %w", cfg.load, err)
		}
		logger.Info("program loaded", "file", cfg.load)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(ctb, server.Options{
		MaxConns:       cfg.maxConns,
		IOTimeout:      cfg.ioTimeout,
		Logger:         logger,
		SlowLogSize:    cfg.slowSize,
		SlowThreshold:  cfg.slowThreshold,
		SampleInterval: cfg.sampleInterval,
		SampleWindow:   cfg.sampleWindow,
	})

	// The debug HTTP server is shut down after the TCP side drains, with
	// a short deadline: a hung profile download must not wedge exit.
	var dbgDone func()
	if cfg.debugAddr != "" {
		dbg := &http.Server{Addr: cfg.debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug server failed", "addr", cfg.debugAddr, "err", err)
			}
		}()
		dbgDone = func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := dbg.Shutdown(sctx); err != nil {
				dbg.Close()
			}
		}
		fmt.Printf("dkbd: debug endpoints on http://%s/{metrics,metrics.json,timeseries,slowlog,healthz,debug/trace,debug/pprof}\n", cfg.debugAddr)
	}

	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, cfg.addr, ready) }()
	select {
	case a := <-ready:
		fmt.Printf("dkbd: serving on %s (max %d sessions)\n", a, cfg.maxConns)
	case err := <-done:
		if dbgDone != nil {
			dbgDone()
		}
		return err
	}

	err = <-done
	if dbgDone != nil {
		dbgDone()
	}
	st := srv.Stats()
	fmt.Printf("dkbd: shut down after %d sessions, %d requests (%d errors)\n",
		st.TotalSessions, st.Requests, st.Errors)
	return err
}
