// Command dkbd serves a data/knowledge base over TCP to concurrent
// clients, turning the single-process testbed into a shared server: one
// D/KB, many sessions. Queries from different sessions evaluate
// concurrently; loads and retractions serialize against them.
//
// Usage:
//
//	dkbd                          # in-memory D/KB on :7407
//	dkbd -db family.db -addr :9000
//	dkbd -load family.dl          # preload a program at startup
//	dkbd -debug-addr 127.0.0.1:7408   # HTTP /metrics JSON snapshot
//
// dkbd shuts down gracefully on SIGINT/SIGTERM: the listener closes at
// once, in-flight requests finish and receive their responses, then the
// process exits. Connect with `dkbsh -connect HOST:PORT` or the
// internal/client package.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dkbms"
	"dkbms/internal/server"
)

func main() {
	addr := flag.String("addr", ":7407", "listen address")
	dbPath := flag.String("db", "", "database file (empty = in-memory)")
	load := flag.String("load", "", "Horn-clause program to load at startup")
	maxConns := flag.Int("maxconns", server.DefaultMaxConns, "max simultaneous sessions")
	ioTimeout := flag.Duration("iotimeout", server.DefaultIOTimeout, "per-request I/O deadline (negative disables)")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listen address serving /metrics (empty = disabled)")
	flag.Parse()

	if err := run(*addr, *dbPath, *load, *maxConns, *ioTimeout, *debugAddr); err != nil {
		fmt.Fprintf(os.Stderr, "dkbd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, dbPath, load string, maxConns int, ioTimeout time.Duration, debugAddr string) error {
	var tb *dkbms.Testbed
	var err error
	if dbPath == "" {
		tb = dkbms.NewMemory()
	} else {
		tb, err = dkbms.Open(dbPath)
		if err != nil {
			return err
		}
	}
	ctb := dkbms.NewConcurrent(tb)
	defer ctb.Close()

	if load != "" {
		src, err := os.ReadFile(load)
		if err != nil {
			return err
		}
		if err := ctb.Load(string(src)); err != nil {
			return fmt.Errorf("load %s: %w", load, err)
		}
		fmt.Printf("dkbd: loaded %s\n", load)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(ctb, server.Options{
		MaxConns:  maxConns,
		IOTimeout: ioTimeout,
		Logf:      server.Logf,
	})
	if debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := srv.Registry().WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		dbg := &http.Server{Addr: debugAddr, Handler: mux}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dkbd: debug server: %v\n", err)
			}
		}()
		go func() {
			<-ctx.Done()
			dbg.Close()
		}()
		fmt.Printf("dkbd: debug metrics on http://%s/metrics\n", debugAddr)
	}

	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, addr, ready) }()
	select {
	case a := <-ready:
		fmt.Printf("dkbd: serving on %s (max %d sessions)\n", a, maxConns)
	case err := <-done:
		return err
	}

	err = <-done
	st := srv.Stats()
	fmt.Printf("dkbd: shut down after %d sessions, %d requests (%d errors)\n",
		st.TotalSessions, st.Requests, st.Errors)
	return err
}
