package dkbms

import (
	"testing"

	"dkbms/internal/storage"
	"dkbms/internal/workload"
)

// TestAncestorHeapIOPinned pins the physical I/O of the EXPERIMENTS.md
// Test 6 query (ancestor over a 1022-edge full binary tree) through the
// per-table heap counters: the default semi-naive+magic evaluation must
// perform exactly one full scan of the base table per LFP iteration and
// touch it no other way. A change in these constants means the engine's
// physical access pattern changed — intentionally or not — and the
// experiment write-ups need re-measuring.
func TestAncestorHeapIOPinned(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	edges := workload.FullBinaryTree(10)
	if len(edges) != 1022 {
		t.Fatalf("workload changed: %d edges, want 1022", len(edges))
	}
	if err := tb.AssertTuples("e", edges); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
ancestor(X, Y) :- e(X, Y).
ancestor(X, Y) :- e(X, Z), ancestor(Z, Y).
`)
	tbl := tb.DB().Catalog().Table("edb_e")
	if tbl == nil {
		t.Fatalf("no edb_e table; have %v", tb.DB().Catalog().Tables())
	}

	base := tbl.Heap.Stats()
	res, err := tb.Query("?- ancestor(t1, W).", &QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1022 {
		t.Fatalf("rows = %d, want 1022 (every tree node below the root)", len(res.Rows))
	}
	iters := res.Iterations()
	if iters != 20 {
		t.Fatalf("iterations = %d, want 20 (magic + ancestor cliques over a depth-10 tree)", iters)
	}

	d := tbl.Heap.Stats().Sub(base)
	pages := d.PagesScanned / d.Scans
	want := storage.HeapStats{
		Scans:        iters,               // one full base-table scan per LFP iteration
		PagesScanned: iters * pages,       // every scan walks the whole heap
		RecsScanned:  iters * int64(1022), // ... and sees every edge
	}
	if d != want {
		t.Fatalf("heap I/O delta = %+v, want %+v", d, want)
	}
	// The query must not have read, written or deleted individual
	// records on the base table (no index path, no mutations).
	if d.Reads != 0 || d.Inserts != 0 || d.Deletes != 0 {
		t.Fatalf("unexpected point I/O on edb_e: %+v", d)
	}
}
