package dkbms_test

import (
	"fmt"
	"sort"

	"dkbms"
)

// Example shows the complete life of a query: facts and rules in,
// recursive answers out.
func Example() {
	tb := dkbms.NewMemory()
	defer tb.Close()

	tb.MustLoad(`
		parent(john, mary).  parent(mary, ann).
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
	`)

	res, err := tb.Query("?- ancestor(john, W).", nil)
	if err != nil {
		panic(err)
	}
	var names []string
	for _, row := range res.Rows {
		names = append(names, row[0].Str)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [ann mary]
}

// ExampleTestbed_Query demonstrates the evaluation knobs the paper's
// experiments turn: LFP strategy and magic-sets optimization.
func ExampleTestbed_Query() {
	tb := dkbms.NewMemory()
	defer tb.Close()
	tb.MustLoad(`
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`)

	naive, _ := tb.Query("?- path(a, W).", &dkbms.QueryOptions{Naive: true, NoOptimize: true})
	magic, _ := tb.Query("?- path(a, W).", nil)
	fmt.Println(len(naive.Rows), naive.Optimized, naive.Strategy)
	fmt.Println(len(magic.Rows), magic.Optimized, magic.Strategy)
	// Output:
	// 2 false naive
	// 2 true semi-naive
}

// ExampleTestbed_Update commits workspace rules to the stored D/KB,
// where later sessions (and queries) find them.
func ExampleTestbed_Update() {
	tb := dkbms.NewMemory()
	defer tb.Close()
	tb.MustLoad(`
		parent(a, b).
		anc(X, Y) :- parent(X, Y).
	`)
	st, err := tb.Update()
	if err != nil {
		panic(err)
	}
	fmt.Println(st.NewRules, tb.Stored().RuleCount())
	// Output: 1 1
}

// ExampleTestbed_Prepare caches compilation across executions.
func ExampleTestbed_Prepare() {
	tb := dkbms.NewMemory()
	defer tb.Close()
	tb.MustLoad(`
		parent(a, b).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`)
	p, err := tb.Prepare("?- anc(a, W).", nil)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Run(); err != nil {
			panic(err)
		}
	}
	fmt.Println(p.Recompiles)
	// Output: 1
}
