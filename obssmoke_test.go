package dkbms

import (
	"fmt"
	"testing"
)

// TestTracingOffOverheadSmoke enforces the observability layer's
// overhead contract: with tracing off, the instrumented query path must
// not build any trace machinery. Wall-clock comparisons are too noisy
// for CI, so the guard is allocation-exact — the hot memoized read path
// (a ConcurrentTestbed plan-cache result hit) stays within a handful of
// allocations per query, where a single accidentally-armed trace would
// add dozens of span/attr allocations.
func TestTracingOffOverheadSmoke(t *testing.T) {
	ctb := NewConcurrent(NewMemory())
	defer ctb.Close()
	var src []byte
	for i := 0; i < 16; i++ {
		src = append(src, fmt.Sprintf("parent(c%d, c%d).\n", i, i+1)...)
	}
	src = append(src, "ancestor(X, Y) :- parent(X, Y).\nancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"...)
	if err := ctb.Load(string(src)); err != nil {
		t.Fatal(err)
	}
	q := "?- ancestor(c0, X)."
	if _, err := ctb.Query(q, nil); err != nil {
		t.Fatal(err) // warm the plan cache
	}

	off := testing.AllocsPerRun(50, func() {
		if _, err := ctb.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	})
	on := testing.AllocsPerRun(50, func() {
		if _, err := ctb.Query(q, &QueryOptions{Trace: true}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/query: tracing off %.0f, tracing on %.0f", off, on)

	// Measured: 2 allocs (parse + result share). The bound leaves room
	// for incidental growth but is far below one span tree.
	if off > 16 {
		t.Errorf("tracing-off hot path allocates %.0f times per query; the off state must cost only nil checks", off)
	}
	// Sanity on the comparison itself: a traced query re-evaluates and
	// records spans, so it must allocate far more than the off path.
	if on < off*10 {
		t.Errorf("traced query allocates %.0f vs %.0f untraced; trace instrumentation appears inert", on, off)
	}
}
