package dkbms

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dkbms/internal/rel"
)

func rowSet(rows []rel.Tuple) []string {
	out := make([]string, len(rows))
	for i, tu := range rows {
		out[i] = tu.String()
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got []rel.Tuple, want ...string) {
	t.Helper()
	g := rowSet(got)
	sort.Strings(want)
	if strings.Join(g, "|") != strings.Join(want, "|") {
		t.Fatalf("rows:\n got %v\nwant %v", g, want)
	}
}

const familyKB = `
parent(john, mary). parent(john, bob).
parent(mary, ann).  parent(mary, tom).
parent(bob, lea).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`

func familyTB(t *testing.T) *Testbed {
	t.Helper()
	tb := NewMemory()
	t.Cleanup(func() { tb.Close() })
	tb.MustLoad(familyKB)
	return tb
}

var allModes = []struct {
	name string
	opts QueryOptions
}{
	{"seminaive-magic", QueryOptions{}},
	{"seminaive-plain", QueryOptions{NoOptimize: true}},
	{"naive-magic", QueryOptions{Naive: true}},
	{"naive-plain", QueryOptions{Naive: true, NoOptimize: true}},
	{"parallel-magic", QueryOptions{Parallel: true}},
	{"parallel-plain", QueryOptions{Parallel: true, NoOptimize: true}},
}

func TestAncestorAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.name, func(t *testing.T) {
			tb := familyTB(t)
			opts := mode.opts
			res, err := tb.Query("?- ancestor(john, W).", &opts)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, res.Rows, "(mary)", "(bob)", "(ann)", "(tom)", "(lea)")
			if len(res.Vars) != 1 || res.Vars[0] != "W" {
				t.Fatalf("vars = %v", res.Vars)
			}
			wantOpt := !mode.opts.NoOptimize
			if res.Optimized != wantOpt {
				t.Fatalf("Optimized = %v, want %v", res.Optimized, wantOpt)
			}
		})
	}
}

func TestAncestorUnboundQuery(t *testing.T) {
	tb := familyTB(t)
	res, err := tb.Query("?- ancestor(A, D).", nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 direct + john->{ann,tom,lea} + mary/bob none beyond direct... :
	// direct: j-m, j-b, m-a, m-t, b-l ; depth2: j-a, j-t, j-l
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows: %v", len(res.Rows), rowSet(res.Rows))
	}
	if res.Optimized {
		t.Fatal("unbound query must not claim magic optimization")
	}
}

func TestBoundSecondArgument(t *testing.T) {
	tb := familyTB(t)
	res, err := tb.Query("?- ancestor(A, lea).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(john)", "(bob)")
}

func TestFullyBoundForbidden(t *testing.T) {
	tb := familyTB(t)
	if _, err := tb.Query("?- ancestor(john, lea).", nil); err == nil {
		t.Fatal("fully ground query accepted")
	}
}

func TestConjunctiveQuery(t *testing.T) {
	tb := familyTB(t)
	tb.MustLoad(`female(mary). female(ann). female(lea).`)
	res, err := tb.Query("?- ancestor(john, W), female(W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(mary)", "(ann)", "(lea)")
}

func TestNonRecursiveQuery(t *testing.T) {
	tb := familyTB(t)
	tb.MustLoad(`grandparent(X, Y) :- parent(X, Z), parent(Z, Y).`)
	res, err := tb.Query("?- grandparent(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(ann)", "(tom)", "(lea)")
}

func TestSameGeneration(t *testing.T) {
	// Classic same-generation over a small tree.
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
up(a, root). up(b, root). up(c, a). up(d, a). up(e, b).
flat(root, root).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
down(X, Y) :- up(Y, X).
`)
	for _, mode := range allModes {
		opts := mode.opts
		res, err := tb.Query("?- sg(c, W).", &opts)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		// same generation as c: c, d (children of a), e (child of b).
		sameRows(t, res.Rows, "(c)", "(d)", "(e)")
	}
}

func TestMutualRecursion(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
edge(n1, n2). edge(n2, n3). edge(n3, n4).
odd(X, Y) :- edge(X, Y).
odd(X, Y) :- edge(X, Z), even(Z, Y).
even(X, Y) :- edge(X, Z), odd(Z, Y).
`)
	for _, mode := range allModes {
		opts := mode.opts
		res, err := tb.Query("?- odd(n1, W).", &opts)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		// paths of odd length from n1: n2 (1), n4 (3)
		sameRows(t, res.Rows, "(n2)", "(n4)")
	}
}

func TestCyclicData(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
e(a, b). e(b, c). e(c, a). e(c, d).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
`)
	for _, mode := range allModes {
		opts := mode.opts
		res, err := tb.Query("?- tc(a, W).", &opts)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		sameRows(t, res.Rows, "(a)", "(b)", "(c)", "(d)")
	}
}

func TestIntegerConstants(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
succ(1, 2). succ(2, 3). succ(3, 4).
le(X, Y) :- succ(X, Y).
le(X, Y) :- succ(X, Z), le(Z, Y).
`)
	res, err := tb.Query("?- le(1, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(2)", "(3)", "(4)")
}

func TestMixedRulesAndFacts(t *testing.T) {
	// A predicate defined by both facts and rules exercises the §1.1
	// normalization.
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
knows(ann, bob).
friend(ann, carl).
knows(X, Y) :- friend(X, Y).
`)
	res, err := tb.Query("?- knows(ann, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(bob)", "(carl)")
}

func TestRandomGraphAgainstReferenceTC(t *testing.T) {
	// Property: for random graphs, every mode computes exactly the
	// reference transitive closure from a given source.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		tb := NewMemory()
		n := 12 + r.Intn(10)
		edges := make(map[[2]int]bool)
		var tuples []rel.Tuple
		for i := 0; i < n*2; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b || edges[[2]int{a, b}] {
				continue
			}
			edges[[2]int{a, b}] = true
			tuples = append(tuples, rel.Tuple{rel.NewInt(int64(a)), rel.NewInt(int64(b))})
		}
		if len(tuples) == 0 {
			tb.Close()
			continue
		}
		if err := tb.AssertTuples("e", tuples); err != nil {
			t.Fatal(err)
		}
		tb.MustLoad(`
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
`)
		src := 0
		// Reference closure by BFS.
		adj := make(map[int][]int)
		for e := range edges {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
		seen := make(map[int]bool)
		stack := append([]int(nil), adj[src]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			stack = append(stack, adj[v]...)
		}
		var want []string
		for v := range seen {
			want = append(want, fmt.Sprintf("(%d)", v))
		}
		for _, mode := range allModes {
			opts := mode.opts
			res, err := tb.Query(fmt.Sprintf("?- tc(%d, W).", src), &opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			sameRows(t, res.Rows, want...)
		}
		tb.Close()
	}
}

func TestEvalStatsPopulated(t *testing.T) {
	tb := familyTB(t)
	res, err := tb.Query("?- ancestor(john, W).", &QueryOptions{NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compile.Total <= 0 || res.Eval.Elapsed <= 0 {
		t.Fatalf("timings missing: %+v %+v", res.Compile, res.Eval)
	}
	found := false
	for _, ns := range res.Eval.Nodes {
		if ns.Recursive && ns.Iterations < 2 {
			t.Fatalf("recursive node with %d iterations", ns.Iterations)
		}
		if ns.Recursive {
			found = true
		}
	}
	if !found {
		t.Fatal("no recursive node in ancestor evaluation")
	}
}

func TestSemanticErrors(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad("p(X) :- undefined_pred(X).")
	if _, err := tb.Query("?- p(W).", nil); err == nil {
		t.Fatal("undefined predicate accepted")
	}
	tb2 := NewMemory()
	defer tb2.Close()
	tb2.MustLoad(`
num(n, 1).
bad(X) :- num(X, X).
`)
	if _, err := tb2.Query("?- bad(W).", nil); err == nil {
		t.Fatal("type conflict accepted")
	}
}

func TestLoadRejectsQueries(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	if err := tb.Load("p(a). ?- p(X)."); err == nil {
		t.Fatal("Load accepted a query")
	}
}

func TestReservedPredicatesRejected(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	if err := tb.Load("_sneaky(X) :- e(X)."); err == nil {
		t.Fatal("reserved predicate accepted")
	}
}

func TestUpdateAndQueryFromStored(t *testing.T) {
	tb := familyTB(t)
	st, err := tb.Update()
	if err != nil {
		t.Fatal(err)
	}
	if st.NewRules != 2 {
		t.Fatalf("NewRules = %d", st.NewRules)
	}
	if tb.Stored().RuleCount() != 2 {
		t.Fatalf("rule count = %d", tb.Stored().RuleCount())
	}
	if len(tb.Workspace().Rules()) != 0 {
		t.Fatal("workspace not cleared")
	}
	// Query must now pull the rules from the stored D/KB.
	res, err := tb.Query("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(mary)", "(bob)", "(ann)", "(tom)", "(lea)")
}

func TestUpdateIncrementalReachability(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
e(x1, x2).
a(X, Y) :- b(X, Y).
b(X, Y) :- e(X, Y).
`)
	if _, err := tb.Update(); err != nil {
		t.Fatal(err)
	}
	// a reaches b, e; b reaches e.
	rows, err := tb.DB().Query("SELECT topredname FROM reachablepreds WHERE frompredname = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows.Tuples, "(b)", "(e)")

	// Second update extends b downward; a's reachability must grow
	// without recomputing the world.
	tb.MustLoad(`
f(x2, x3).
b(X, Y) :- c(X, Y).
c(X, Y) :- f(X, Y).
`)
	if _, err := tb.Update(); err != nil {
		t.Fatal(err)
	}
	rows, err = tb.DB().Query("SELECT topredname FROM reachablepreds WHERE frompredname = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows.Tuples, "(b)", "(c)", "(e)", "(f)")
	// And queries over the extended chain work.
	res, err := tb.Query("?- a(x2, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(x3)")
}

func TestUpdateCyclicRules(t *testing.T) {
	tb := familyTB(t)
	if _, err := tb.Update(); err != nil {
		t.Fatal(err)
	}
	rows, err := tb.DB().Query("SELECT topredname FROM reachablepreds WHERE frompredname = 'ancestor'")
	if err != nil {
		t.Fatal(err)
	}
	// ancestor reaches parent and (via the recursive rule) itself.
	sameRows(t, rows.Tuples, "(ancestor)", "(parent)")
}

func TestPersistentTestbed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.db")
	tb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(familyKB)
	if _, err := tb.Update(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}

	tb2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	res, err := tb2.Query("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(mary)", "(bob)", "(ann)", "(tom)", "(lea)")
}

func TestAdaptiveOptimization(t *testing.T) {
	tb := familyTB(t)
	bound, err := tb.Query("?- ancestor(john, W).", &QueryOptions{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bound.Optimized {
		t.Fatal("adaptive should optimize a bound query")
	}
	free, err := tb.Query("?- ancestor(A, D).", &QueryOptions{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if free.Optimized {
		t.Fatal("adaptive should not optimize an unbound query")
	}
}

func TestNaiveMatchesSemiNaiveStats(t *testing.T) {
	tb := familyTB(t)
	naive, err := tb.Query("?- ancestor(john, W).", &QueryOptions{Naive: true, NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	semi, err := tb.Query("?- ancestor(john, W).", &QueryOptions{NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowSet(naive.Rows), "|") != strings.Join(rowSet(semi.Rows), "|") {
		t.Fatal("strategies disagree")
	}
	if naive.Strategy == semi.Strategy {
		t.Fatal("strategy labels wrong")
	}
}

func TestNoTempTableLeaks(t *testing.T) {
	tb := familyTB(t)
	before := len(tb.DB().Catalog().Tables())
	for i := 0; i < 5; i++ {
		if _, err := tb.Query("?- ancestor(john, W).", nil); err != nil {
			t.Fatal(err)
		}
	}
	after := len(tb.DB().Catalog().Tables())
	if after != before {
		t.Fatalf("temp tables leaked: %d -> %d: %v", before, after, tb.DB().Catalog().Tables())
	}
}

func TestQueryResultFormat(t *testing.T) {
	tb := familyTB(t)
	res, err := tb.Query("?- parent(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.HasPrefix(out, "W\n") || !strings.Contains(out, "mary") {
		t.Fatalf("format output:\n%s", out)
	}
}
