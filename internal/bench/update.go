package bench

import (
	"fmt"
	"time"

	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/stored"
	"dkbms/internal/workload"
)

func init() {
	register("fig15", "stored D/KB update time vs R_s, with/without compiled rule storage", fig15)
	register("table8", "breakdown of D/KB update time", table8)
}

// rawChainStore builds a stored-D/KB manager (bypassing the facade so
// options can be set) pre-loaded with nChains chains of length chainLen.
func rawChainStore(nChains, chainLen int, opts stored.Options) (*db.DB, *stored.Manager, []string, error) {
	d := db.OpenMemory()
	m, err := stored.Open(d, opts)
	if err != nil {
		d.Close()
		return nil, nil, nil, err
	}
	rules, heads, bases := workload.RuleChains(nChains, chainLen)
	for _, b := range bases {
		if err := m.InsertFacts(b, workload.ChainFacts()); err != nil {
			d.Close()
			return nil, nil, nil, err
		}
	}
	if _, err := m.Update(rules); err != nil {
		d.Close()
		return nil, nil, nil, err
	}
	return d, m, heads, nil
}

// fig15 — Test 8: update time for a one-rule workspace as R_s grows,
// with and without the compiled (reachablepreds) storage structure.
// The paper: compiled-form updates are almost an order of magnitude
// slower, and t_u is relatively insensitive to R_s.
func fig15(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig15",
		Title: "t_u (one-rule update) vs R_s, compiled vs source-only rule storage",
		Paper: "compiled storage ~an order of magnitude slower to update; flat in R_s",
		Cols:  []string{"R_s", "compiled t_u(us)", "source-only t_u(us)", "ratio"},
	}
	chainLen := 9
	sizes := []int{9, 45, 90, 189}
	if !cfg.Quick {
		sizes = append(sizes, 378, 756)
	}
	for _, rs := range sizes {
		nChains := rs / chainLen
		var times [2]time.Duration
		for mode, o := range []stored.Options{{}, {NoCompiledRules: true}} {
			d, m, heads, err := rawChainStore(nChains, chainLen, o)
			if err != nil {
				return nil, err
			}
			// One new rule on top of an existing chain head.
			count := 0
			best, err := measure(cfg.reps(), func() (time.Duration, error) {
				rule := dlog.MustParseClause(fmt.Sprintf(
					"newtop%d(X, Y) :- %s(X, Y).", count, heads[0]))
				count++
				st, err := m.Update([]dlog.Clause{rule})
				if err != nil {
					return 0, err
				}
				return st.Total, nil
			})
			d.Close()
			if err != nil {
				return nil, err
			}
			times[mode] = best
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(rs), us(times[0]), us(times[1]),
			fmt.Sprintf("%.1fx", ratio(times[0], times[1])),
		})
	}
	return rep, nil
}

// table8 — Test 9: breakdown of t_u into relevant-rule extraction,
// closure computation/write, and source+dictionary writes, for
// (R_w=36, R_s=189) and (R_w=1, R_s=189). The paper: extraction is a
// significant share, and the source-form write is small.
func table8(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "table8",
		Title: "breakdown of D/KB update time",
		Paper: "t_uextract significant (42%/81%); source-form store small",
		Cols:  []string{"R_w", "R_s", "t_u(us)", "extract", "closure", "store"},
	}
	chainLen := 9
	nChains := 21 // R_s = 189, as in the paper
	for _, rw := range []int{36, 1} {
		d, m, heads, err := rawChainStore(nChains, chainLen, stored.Options{})
		if err != nil {
			return nil, err
		}
		// R_w new rules: chains of 4 stacked on stored chain heads (36 =
		// 9 chains x 4 rules), or a single rule for R_w = 1.
		var rules []dlog.Clause
		if rw == 1 {
			rules = append(rules, dlog.MustParseClause(fmt.Sprintf(
				"w0_0(X, Y) :- %s(X, Y).", heads[0])))
		} else {
			perChain := 4
			for c := 0; c < rw/perChain; c++ {
				for j := 0; j < perChain; j++ {
					var body string
					if j == perChain-1 {
						body = heads[c%len(heads)]
					} else {
						body = fmt.Sprintf("w%d_%d", c, j+1)
					}
					rules = append(rules, dlog.MustParseClause(fmt.Sprintf(
						"w%d_%d(X, Y) :- %s(X, Y).", c, j, body)))
				}
			}
		}
		st, err := m.Update(rules)
		d.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(len(rules)), fmt.Sprint(nChains * chainLen), us(st.Total),
			pct(st.Extract, st.Total), pct(st.TC, st.Total), pct(st.Store, st.Total),
		})
	}
	return rep, nil
}
