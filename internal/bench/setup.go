package bench

import (
	"fmt"
	"time"

	"dkbms"
	"dkbms/internal/dlog"
	"dkbms/internal/workload"
)

// chainStore builds a testbed whose stored D/KB holds nChains rule
// chains of the given length (wide chains carry one base predicate per
// rule). Base relations get one fact each so the dictionaries are
// populated.
func chainStore(nChains, length int, wide bool) (*dkbms.Testbed, []string, error) {
	tb := dkbms.NewMemory()
	var rules []dlog.Clause
	var heads, bases []string
	if wide {
		rules, heads, bases = workload.WideRuleChains(nChains, length)
	} else {
		rules, heads, bases = workload.RuleChains(nChains, length)
	}
	for _, b := range bases {
		if err := tb.AssertTuples(b, workload.ChainFacts()); err != nil {
			tb.Close()
			return nil, nil, err
		}
	}
	if _, err := tb.Stored().Update(rules); err != nil {
		tb.Close()
		return nil, nil, err
	}
	return tb, heads, nil
}

// compileOnce compiles a query against the testbed and returns its
// stats; the program is discarded.
func compileOnce(tb *dkbms.Testbed, q string, optimize bool) (dkbms.QueryResult, error) {
	query, err := dlog.ParseQuery(q)
	if err != nil {
		return dkbms.QueryResult{}, err
	}
	compiled, err := tb.Compile(query, &dkbms.QueryOptions{NoOptimize: !optimize})
	if err != nil {
		return dkbms.QueryResult{}, err
	}
	return dkbms.QueryResult{Compile: compiled.Stats}, nil
}

// treeStore builds a testbed with a full binary tree in the `parent`
// relation (plus an index on the source column, the configuration the
// paper's execution experiments assume) and the ancestor rules in the
// workspace.
func treeStore(depth int, indexed bool) (*dkbms.Testbed, error) {
	tb := dkbms.NewMemory()
	if err := tb.AssertTuples("parent", workload.FullBinaryTree(depth)); err != nil {
		tb.Close()
		return nil, err
	}
	if indexed {
		if err := tb.CreateFactIndex("parent", 0); err != nil {
			tb.Close()
			return nil, err
		}
	}
	if err := tb.Load(ancestorRules); err != nil {
		tb.Close()
		return nil, err
	}
	return tb, nil
}

const ancestorRules = `
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`

// listStore builds a testbed with a single list of the given length in
// `parent` (fine-grained selectivity control for the crossover sweep).
func listStore(length int, indexed bool) (*dkbms.Testbed, error) {
	tb := dkbms.NewMemory()
	if err := tb.AssertTuples("parent", workload.Lists(1, length)); err != nil {
		tb.Close()
		return nil, err
	}
	if indexed {
		if err := tb.CreateFactIndex("parent", 0); err != nil {
			tb.Close()
			return nil, err
		}
	}
	if err := tb.Load(ancestorRules); err != nil {
		tb.Close()
		return nil, err
	}
	return tb, nil
}

// runQuery executes a query and returns the result (for timing use
// res.Eval.Elapsed — query evaluation only, excluding compilation).
func runQuery(tb *dkbms.Testbed, q string, opts dkbms.QueryOptions) (*dkbms.QueryResult, error) {
	return tb.Query(q, &opts)
}

// evalTime runs the query reps times and returns the minimum
// evaluation-only time plus the last full result.
func evalTime(tb *dkbms.Testbed, q string, opts dkbms.QueryOptions, reps int) (time.Duration, *dkbms.QueryResult, error) {
	var last *dkbms.QueryResult
	best, err := measure(reps, func() (time.Duration, error) {
		res, err := runQuery(tb, q, opts)
		if err != nil {
			return 0, err
		}
		last = res
		return res.Eval.Elapsed, nil
	})
	if err != nil {
		return 0, nil, err
	}
	return best, last, nil
}

// queryAt poses the ancestor query rooted at a tree node.
func queryAt(node string) string {
	return fmt.Sprintf("?- ancestor(%s, W).", node)
}
