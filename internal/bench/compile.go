package bench

import (
	"fmt"
	"time"

	"dkbms/internal/workload"
)

func init() {
	register("fig7", "relevant-rule extraction time vs total stored rules (R_s), per R_r", fig7)
	register("fig8", "relevant-rule extraction time vs relevant rules (R_r)", fig8)
	register("fig9", "dictionary read time vs total stored predicates (P_s), per P_r", fig9)
	register("fig10", "dictionary read time vs relevant predicates (P_r), per P_s", fig10)
	register("table4", "breakdown of D/KB query compilation time", table4)
}

// fig7 — Test 1: t_extract versus R_s for R_r ∈ {1, 7, 20}. The paper
// finds t_extract insensitive to R_s thanks to the indexed compiled
// rule storage (reachablepreds).
func fig7(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig7",
		Title: "t_extract vs R_s (total stored rules), per R_r",
		Paper: "flat in R_s: extraction cost depends only on the rules extracted",
		Cols:  []string{"R_r", "R_s", "t_extract(us)"},
	}
	rrs := []int{1, 7, 20}
	sizes := []int{40, 80, 160, 320}
	if !cfg.Quick {
		sizes = append(sizes, 640, 1280)
	}
	type key struct{ rr, rs int }
	extract := make(map[key]time.Duration)
	for _, rr := range rrs {
		for _, rs := range sizes {
			nChains := (rs + rr - 1) / rr
			tb, heads, err := chainStore(nChains, rr, false)
			if err != nil {
				return nil, err
			}
			d, err := measure(cfg.reps(), func() (time.Duration, error) {
				res, err := compileOnce(tb, fmt.Sprintf("?- %s(x, W).", heads[0]), false)
				if err != nil {
					return 0, err
				}
				return res.Compile.Extract, nil
			})
			tb.Close()
			if err != nil {
				return nil, err
			}
			extract[key{rr, rs}] = d
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(rr), fmt.Sprint(rs), us(d),
			})
		}
	}
	// Measured flatness: max/min across R_s per R_r.
	for _, rr := range rrs {
		min, max := time.Duration(0), time.Duration(0)
		for _, rs := range sizes {
			d := extract[key{rr, rs}]
			if min == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"R_r=%d: t_extract varies %.1fx across a %dx sweep of R_s",
			rr, float64(max)/float64(min), sizes[len(sizes)-1]/sizes[0]))
	}
	return rep, nil
}

// fig8 — Test 1: t_extract versus R_r at fixed R_s; grows with R_r
// (join selectivity of the extraction query).
func fig8(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig8",
		Title: "t_extract vs R_r (rules relevant to the query)",
		Paper: "grows with R_r — extraction cost tracks the number of rules extracted",
		Cols:  []string{"R_r", "R_s", "t_extract(us)"},
	}
	rs := cfg.pick(640, 120)
	rrs := []int{1, 2, 5, 10, 20, 40}
	for _, rr := range rrs {
		nChains := (rs + rr - 1) / rr
		tb, heads, err := chainStore(nChains, rr, false)
		if err != nil {
			return nil, err
		}
		d, err := measure(cfg.reps(), func() (time.Duration, error) {
			res, err := compileOnce(tb, fmt.Sprintf("?- %s(x, W).", heads[0]), false)
			if err != nil {
				return 0, err
			}
			return res.Compile.Extract, nil
		})
		tb.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(rr), fmt.Sprint(rs), us(d)})
	}
	return rep, nil
}

// fig9 — Test 2: t_readdict versus P_s (total stored predicates) for
// P_r ∈ {1, 4, 10}; flat in P_s because the dictionaries are indexed on
// predname.
func fig9(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig9",
		Title: "t_readdict vs P_s (total stored predicates), per P_r",
		Paper: "flat in P_s: indexed dictionary lookups",
		Cols:  []string{"P_r", "P_s", "t_readdict(us)"},
	}
	prs := []int{1, 4, 10}
	chainLen := 10
	counts := []int{4, 8, 16, 32}
	if !cfg.Quick {
		counts = append(counts, 64, 128)
	}
	for _, pr := range prs {
		for _, nChains := range counts {
			tb, _, err := chainStore(nChains, chainLen, true)
			if err != nil {
				return nil, err
			}
			// Query at depth so exactly pr rules/preds are relevant.
			q := fmt.Sprintf("?- %s(x, W).", workload.ChainPred(0, chainLen-pr))
			d, err := measure(cfg.reps(), func() (time.Duration, error) {
				res, err := compileOnce(tb, q, false)
				if err != nil {
					return 0, err
				}
				return res.Compile.ReadDict, nil
			})
			tb.Close()
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(pr), fmt.Sprint(nChains * chainLen), us(d),
			})
		}
	}
	return rep, nil
}

// fig10 — Test 2: t_readdict versus P_r for three P_s values; grows
// with P_r.
func fig10(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig10",
		Title: "t_readdict vs P_r (relevant predicates), per P_s",
		Paper: "grows with P_r — reads scale with the predicates the query touches",
		Cols:  []string{"P_s", "P_r", "t_readdict(us)"},
	}
	chainLen := 20
	counts := []int{cfg.pick(16, 4), cfg.pick(64, 8)}
	prs := []int{1, 2, 5, 10, 20}
	for _, nChains := range counts {
		tb, _, err := chainStore(nChains, chainLen, true)
		if err != nil {
			return nil, err
		}
		for _, pr := range prs {
			q := fmt.Sprintf("?- %s(x, W).", workload.ChainPred(0, chainLen-pr))
			d, err := measure(cfg.reps(), func() (time.Duration, error) {
				res, err := compileOnce(tb, q, false)
				if err != nil {
					return 0, err
				}
				return res.Compile.ReadDict, nil
			})
			if err != nil {
				tb.Close()
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(nChains * chainLen), fmt.Sprint(pr), us(d),
			})
		}
		tb.Close()
	}
	return rep, nil
}

// table4 — Test 3: relative contributions of compilation steps for
// R_r ∈ {1, 7, 20}. The paper reports t_extract's share growing from
// 25% to 67% as R_r goes 1→20 (its remaining share went to C compile
// and link of the emitted code fragment, which has no analog here — the
// program-construction time appears as t_codegen).
func table4(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "table4",
		Title: "breakdown of D/KB query compilation time",
		Paper: "t_extract share grows sharply with R_r (25%→67% for 1→20)",
		Cols: []string{"R_r", "t_c(us)", "setup", "extract", "readdict",
			"evalorder", "typecheck", "codegen"},
	}
	rs := cfg.pick(400, 120)
	for _, rr := range []int{1, 7, 20} {
		nChains := (rs + rr - 1) / rr
		tb, heads, err := chainStore(nChains, rr, true)
		if err != nil {
			return nil, err
		}
		type comps struct {
			total, setup, extract, readdict, evalorder, typecheck, codegen time.Duration
		}
		var c comps
		_, err = measure(cfg.reps(), func() (time.Duration, error) {
			res, err := compileOnce(tb, fmt.Sprintf("?- %s(x, W).", heads[0]), false)
			if err != nil {
				return 0, err
			}
			s := res.Compile
			if c.total == 0 || s.Total < c.total {
				c = comps{s.Total, s.Setup, s.Extract, s.ReadDict, s.EvalOrder, s.TypeCheck, s.CodeGen}
			}
			return s.Total, nil
		})
		tb.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(rr), us(c.total),
			pct(c.setup, c.total), pct(c.extract, c.total), pct(c.readdict, c.total),
			pct(c.evalorder, c.total), pct(c.typecheck, c.total), pct(c.codegen, c.total),
		})
	}
	rep.Notes = append(rep.Notes,
		"t_cclink (compile+link of the paper's emitted C) has no analog: the program is interpreted data")
	return rep, nil
}
