package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dkbms"
	"dkbms/internal/client"
	"dkbms/internal/server"
	"dkbms/internal/wire"
)

func init() {
	register("mixed-rw", "concurrent readers under a write stream (snapshot isolation)",
		mixedRW)
}

// mixedRW measures read latency while a fraction of the request stream
// mutates the D/KB. Under the old exclusive-writer lock every LOAD
// stalled all readers for the full commit; under snapshot isolation
// readers pin the published snapshot and continue while the writer
// builds copy-on-write table versions off to the side. Two write
// targets separate the remaining costs:
//
//   - cold: writes append to a relation the query never reads. The
//     memoized answer stays valid (per-table invalidation), so read
//     latency should sit at the read-only baseline.
//   - hot: writes append to the queried relation, so every commit
//     invalidates the memoized answer and reads pay a re-evaluation
//     (with the cached plan). Latency is bounded by evaluation cost,
//     not by waiting out the writer.
func mixedRW(cfg Config) (*Report, error) {
	chain := cfg.pick(64, 16)
	var src []byte
	for i := 0; i < chain; i++ {
		src = append(src, fmt.Sprintf("parent(c%d, c%d).\n", i, i+1)...)
	}
	src = append(src, "ancestor(X, Y) :- parent(X, Y).\n"...)
	src = append(src, "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"...)
	// The cold-write relation exists up front: creating a relation
	// mid-run would grow the schema (a rule-generation event), which is
	// not the steady state this experiment measures.
	src = append(src, "audit(seed, seed).\n"...)

	type point struct {
		clients  int
		writePct int
		target   string // "hot" | "cold" | "-" for read-only
	}
	points := []point{
		{8, 0, "-"},
		{8, 10, "cold"},
		{8, 10, "hot"},
		{8, 50, "cold"},
		{8, 50, "hot"},
		{16, 10, "hot"},
	}
	if cfg.Quick {
		points = []point{{2, 0, "-"}, {2, 50, "cold"}, {2, 50, "hot"}}
	}
	perClient := cfg.pick(40, 4)

	rep := &Report{
		ID:    "mixed-rw",
		Title: "concurrent readers under a write stream (snapshot isolation)",
		Paper: "the testbed is single-user; this measures reader latency while the D/KB is updated",
		Cols: []string{"clients", "write_pct", "target", "reads", "writes",
			"read_p50_us", "read_p99_us", "commits", "copied_tables", "stall_ms",
			"result_hits", "plan_hits"},
	}

	var baselineP99, coldWorstP99, hotWorstP99 time.Duration
	for _, pt := range points {
		tb := dkbms.NewConcurrent(dkbms.NewMemory())
		if err := tb.Load(string(src)); err != nil {
			tb.Close()
			return nil, err
		}
		lats, writes, stats, err := driveMixed(tb, pt.clients, perClient, pt.writePct, pt.target)
		snap := tb.SnapshotStats()
		tb.Close()
		if err != nil {
			return nil, err
		}
		p50, p99 := latPercentiles(lats)
		if pt.writePct == 0 && baselineP99 == 0 {
			baselineP99 = p99
		}
		if pt.target == "cold" && p99 > coldWorstP99 {
			coldWorstP99 = p99
		}
		if pt.target == "hot" && p99 > hotWorstP99 {
			hotWorstP99 = p99
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", pt.clients),
			fmt.Sprintf("%d", pt.writePct),
			pt.target,
			fmt.Sprintf("%d", len(lats)),
			fmt.Sprintf("%d", writes),
			us(p50),
			us(p99),
			fmt.Sprintf("%d", snap.Commits),
			fmt.Sprintf("%d", snap.CopiedTables),
			ms(snap.WriterStall),
			fmt.Sprintf("%d", stats.PlanResultHits),
			fmt.Sprintf("%d", stats.PlanHits),
		})
	}
	if baselineP99 > 0 && coldWorstP99 > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"untouched-table reads: worst cold-write p99 is %.1fx the read-only baseline (%v vs %v) — the write stream does not stall them",
			float64(coldWorstP99)/float64(baselineP99), coldWorstP99.Round(time.Microsecond),
			baselineP99.Round(time.Microsecond)))
	}
	if hotWorstP99 > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"touched-table reads: worst hot-write p99 is %v — bounded by re-evaluating the invalidated closure (plan cached), not by waiting out writers",
			hotWorstP99.Round(time.Millisecond)))
	}
	return rep, nil
}

// driveMixed serves tb on a loopback port and runs nClients sessions,
// each issuing perClient requests of which writePct percent are LOAD
// frames appending a fresh fact to the target relation ("hot" = the
// queried parent relation, "cold" = the unrelated audit relation) and
// the rest are QUERY frames for the ancestor closure. It returns the
// read latencies, the write count, and the server's final stats.
func driveMixed(tb *dkbms.ConcurrentTestbed, nClients, perClient, writePct int, target string) ([]time.Duration, int, server.Stats, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := server.New(tb, server.Options{MaxConns: nClients + 1})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		return nil, 0, server.Stats{}, err
	}

	clients := make([]*client.Client, nClients)
	for i := range clients {
		c, err := client.Dial(addr.String())
		if err != nil {
			return nil, 0, server.Stats{}, err
		}
		defer c.Close()
		clients[i] = c
	}

	const query = "?- ancestor(c0, X)."
	// One untimed warm-up so every row measures the steady state, not
	// the first request's cold compile + LFP evaluation.
	if _, err := clients[0].Query(query, wire.QueryOpts{}); err != nil {
		return nil, 0, server.Stats{}, err
	}
	every := 0 // a write every Nth request
	if writePct > 0 {
		every = 100 / writePct
		if every < 1 {
			every = 1
		}
	}
	perLat := make([][]time.Duration, nClients)
	perWrites := make([]int, nClients)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := range clients {
		wg.Add(1)
		//dkblint:bounded one goroutine per configured bench client
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				if every > 0 && j%every == 0 {
					fact := fmt.Sprintf("audit(w%d_%d, w%d_%d).", i, j, i, j)
					if target == "hot" {
						// A fresh edge INTO the chain root: the queried
						// closure's answer is unchanged (nothing new is
						// reachable from c0), but the parent relation's
						// version moves, so every commit invalidates the
						// memoized answer and reads pay one re-evaluation.
						fact = fmt.Sprintf("parent(w%d_%d, c0).", i, j)
					}
					if err := clients[i].Load(fact); err != nil {
						errs <- err
						return
					}
					perWrites[i]++
					continue
				}
				t0 := time.Now()
				if _, err := clients[i].Query(query, wire.QueryOpts{}); err != nil {
					errs <- err
					return
				}
				perLat[i] = append(perLat[i], time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, 0, server.Stats{}, err
	}
	stats := srv.Stats()
	cancel()
	if err := <-done; err != nil {
		return nil, 0, server.Stats{}, err
	}
	var lats []time.Duration
	writes := 0
	for i := range perLat {
		lats = append(lats, perLat[i]...)
		writes += perWrites[i]
	}
	return lats, writes, stats, nil
}

// latPercentiles returns p50 and p99 over the samples (0, 0 when empty).
func latPercentiles(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		return sorted[int(q*float64(len(sorted)-1))]
	}
	return rank(0.50), rank(0.99)
}
