package bench

import (
	"fmt"
	"strings"
	"time"

	"dkbms"
	"dkbms/internal/workload"
)

func init() {
	register("fig11", "execution time vs fraction of relevant facts (D_rel/D_tot)", fig11)
	register("fig12", "naive vs semi-naive LFP evaluation", fig12)
	register("table5", "breakdown of LFP evaluation time", table5)
	register("fig13", "magic-sets optimization vs query selectivity (crossover)", fig13)
	register("fig14", "the two LFP phases under magic sets vs D_rel", fig14)
}

// fig11 — Test 4: t_e versus D_rel/D_tot, two methods. Method 1 holds
// D_tot fixed and moves the query root down the tree (t_e flat without
// magic: the whole closure is computed regardless). Method 2 holds the
// query fixed and grows D_tot by adding disjoint trees (t_e grows).
func fig11(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig11",
		Title: "t_e vs D_rel/D_tot (semi-naive, no optimization)",
		Paper: "flat when D_tot fixed; grows with D_tot when D_rel fixed",
		Cols:  []string{"method", "D_rel", "D_tot", "rel_frac", "t_e(ms)"},
	}
	opts := dkbms.QueryOptions{NoOptimize: true}

	// Method 1: fixed tree, query at levels 1..depth-1.
	depth := cfg.pick(11, 7)
	tb, err := treeStore(depth, true)
	if err != nil {
		return nil, err
	}
	dtot := len(workload.FullBinaryTree(depth))
	var method1 []time.Duration
	for level := 1; level < depth; level += 2 {
		node := workload.TreeNode(1 << (level - 1)) // leftmost node of level
		drel := workload.SubtreeEdges(depth, level)
		d, _, err := evalTime(tb, queryAt(node), opts, cfg.reps())
		if err != nil {
			tb.Close()
			return nil, err
		}
		method1 = append(method1, d)
		rep.Rows = append(rep.Rows, []string{
			"1: vary query", fmt.Sprint(drel), fmt.Sprint(dtot),
			fmt.Sprintf("%.2f", float64(drel)/float64(dtot)), ms(d),
		})
	}
	tb.Close()

	// Method 2: fixed query subtree (tree 0), growing forest.
	subDepth := cfg.pick(8, 5)
	for _, n := range []int{1, 2, 4, 8} {
		ftb := dkbms.NewMemory()
		if err := ftb.AssertTuples("parent", workload.Forest(n, subDepth)); err != nil {
			ftb.Close()
			return nil, err
		}
		if err := ftb.CreateFactIndex("parent", 0); err != nil {
			ftb.Close()
			return nil, err
		}
		if err := ftb.Load(ancestorRules); err != nil {
			ftb.Close()
			return nil, err
		}
		drel := (1 << subDepth) - 2
		dtot := n * drel
		d, _, err := evalTime(ftb, queryAt(workload.ForestNode(0, 1)), opts, cfg.reps())
		ftb.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			"2: grow D_tot", fmt.Sprint(drel), fmt.Sprint(dtot),
			fmt.Sprintf("%.2f", float64(drel)/float64(dtot)), ms(d),
		})
	}
	if len(method1) > 1 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"method 1 flatness: max/min = %.2fx across the level sweep",
			ratio(maxD(method1), minD(method1))))
	}
	return rep, nil
}

// fig12 — Test 5: naive vs semi-naive. The paper measures semi-naive
// 2.5–3x faster on tree data (naive redoes all prior iterations' work).
func fig12(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig12",
		Title: "t_e: naive vs semi-naive (no optimization)",
		Paper: "semi-naive 2.5-3x faster than naive",
		Cols:  []string{"level", "D_rel/D_tot", "naive(ms)", "semi-naive(ms)", "ratio"},
	}
	depth := cfg.pick(10, 7)
	tb, err := treeStore(depth, true)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	dtot := len(workload.FullBinaryTree(depth))
	var ratios []float64
	for level := 1; level < depth; level += 2 {
		node := workload.TreeNode(1 << (level - 1))
		drel := workload.SubtreeEdges(depth, level)
		dn, _, err := evalTime(tb, queryAt(node), dkbms.QueryOptions{Naive: true, NoOptimize: true}, cfg.reps())
		if err != nil {
			return nil, err
		}
		ds, _, err := evalTime(tb, queryAt(node), dkbms.QueryOptions{NoOptimize: true}, cfg.reps())
		if err != nil {
			return nil, err
		}
		r := float64(dn) / float64(ds)
		ratios = append(ratios, r)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(level),
			fmt.Sprintf("%.2f", float64(drel)/float64(dtot)),
			ms(dn), ms(ds), fmt.Sprintf("%.1fx", r),
		})
	}
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	rep.Notes = append(rep.Notes, fmt.Sprintf("mean naive/semi-naive ratio: %.1fx (paper: 2.5-3x)", mean))
	return rep, nil
}

// table5 — Test 6: breakdown of LFP evaluation into temp-table
// management, rule (RHS) evaluation and termination checking. The paper
// reports RHS+termination at ~95% (naive) and ~85% (semi-naive), with
// naive's step times 2.5-3x semi-naive's.
func table5(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "table5",
		Title: "breakdown of LFP evaluation time (ancestor on a tree)",
		Paper: "eval+termination dominate: ~95% naive, ~85% semi-naive",
		Cols:  []string{"strategy", "t_e(ms)", "temp-tables", "rule-eval", "term-check", "iterations"},
	}
	depth := cfg.pick(10, 7)
	tb, err := treeStore(depth, true)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	for _, naive := range []bool{true, false} {
		opts := dkbms.QueryOptions{Naive: naive, NoOptimize: true}
		_, res, err := evalTime(tb, queryAt(workload.TreeNode(1)), opts, cfg.reps())
		if err != nil {
			return nil, err
		}
		s := res.Eval
		iters := 0
		for _, ns := range s.Nodes {
			if ns.Recursive {
				iters = ns.Iterations
			}
		}
		name := "semi-naive"
		if naive {
			name = "naive"
		}
		rep.Rows = append(rep.Rows, []string{
			name, ms(s.Elapsed),
			pct(s.TempTable, s.Elapsed), pct(s.Eval, s.Elapsed), pct(s.TermCheck, s.Elapsed),
			fmt.Sprint(iters),
		})
	}
	return rep, nil
}

// fig13 — Test 7: t_e with and without magic sets as a function of
// query selectivity (D_rel/D_tot), locating the crossover beyond which
// optimization hurts. The paper: crossover ≈72% selectivity for
// semi-naive, ≈85% for naive; at very low selectivity on large data the
// optimized query is orders of magnitude faster.
func fig13(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig13",
		Title: "t_e vs query selectivity, magic sets on/off",
		Paper: "flat without magic; rising with; crossover ~72% (semi-naive) / ~85% (naive)",
		Cols:  []string{"strategy", "selectivity", "plain(ms)", "magic(ms)", "winner"},
	}
	// A single list gives fine-grained selectivity: querying position k
	// of an n-list makes D_rel/D_tot = (n-k)/n. (List length is kept
	// moderate because naive evaluation at full selectivity is cubic
	// through the SQL interface — the very overhead the paper measures.)
	n := cfg.pick(200, 60)
	tb, err := listStore(n, true)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	selectivities := []float64{0.05, 0.25, 0.5, 0.65, 0.72, 0.8, 0.9, 1.0}
	if cfg.Quick {
		selectivities = []float64{0.05, 0.5, 0.8, 1.0}
	}
	for _, naive := range []bool{false, true} {
		strategy := "semi-naive"
		reps := cfg.reps()
		if naive {
			strategy = "naive"
			// Naive runs are long and dominated by inherent work, not
			// noise; one repetition suffices.
			reps = 1
		}
		crossover := -1.0
		for _, sel := range selectivities {
			k := n - int(sel*float64(n))
			if k < 0 {
				k = 0
			}
			node := fmt.Sprintf("l0_%d", k)
			plain, _, err := evalTime(tb, queryAt(node),
				dkbms.QueryOptions{Naive: naive, NoOptimize: true}, reps)
			if err != nil {
				return nil, err
			}
			magic, _, err := evalTime(tb, queryAt(node),
				dkbms.QueryOptions{Naive: naive}, reps)
			if err != nil {
				return nil, err
			}
			winner := "magic"
			if plain < magic {
				winner = "plain"
				if crossover < 0 {
					crossover = sel
				}
			}
			rep.Rows = append(rep.Rows, []string{
				strategy, fmt.Sprintf("%.2f", sel), ms(plain), ms(magic), winner,
			})
		}
		if crossover >= 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: optimization stops paying at ~%.0f%% selectivity", strategy, crossover*100))
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: magic won at every measured selectivity", strategy))
		}
	}
	// Headline: very low selectivity on a big tree.
	depth := cfg.pick(13, 8)
	big, err := treeStore(depth, true)
	if err != nil {
		return nil, err
	}
	defer big.Close()
	leafParent := workload.TreeNode((1 << (depth - 1)) - 1)
	plain, _, err := evalTime(big, queryAt(leafParent), dkbms.QueryOptions{NoOptimize: true}, 1)
	if err != nil {
		return nil, err
	}
	magic, _, err := evalTime(big, queryAt(leafParent), dkbms.QueryOptions{}, 1)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"low-selectivity headline (tree of %d edges, leaf query): plain %s ms vs magic %s ms (%.0fx)",
		len(workload.FullBinaryTree(depth)), ms(plain), ms(magic), ratio(plain, magic)))
	return rep, nil
}

// fig14 — Test 7 continued: under magic sets the evaluation has two LFP
// phases — the magic-rules clique (computing the relevant set) and the
// modified-rules clique (computing answers over it). The paper: the
// modified-rules phase shrinks quickly as D_rel drops, the magic phase
// more slowly.
func fig14(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig14",
		Title: "magic-rules vs modified-rules evaluation time vs D_rel",
		Paper: "modified-rules time tracks D_rel; magic-rules time falls more slowly",
		Cols:  []string{"level", "D_rel", "magic-phase(ms)", "modified-phase(ms)"},
	}
	depth := cfg.pick(11, 7)
	tb, err := treeStore(depth, true)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	for level := 1; level < depth; level += 2 {
		node := workload.TreeNode(1 << (level - 1))
		drel := workload.SubtreeEdges(depth, level)
		_, res, err := evalTime(tb, queryAt(node), dkbms.QueryOptions{}, cfg.reps())
		if err != nil {
			return nil, err
		}
		var magicT, modT time.Duration
		for _, ns := range res.Eval.Nodes {
			isMagic := false
			for _, p := range ns.Preds {
				if strings.HasPrefix(p, "m_") {
					isMagic = true
				}
			}
			if isMagic {
				magicT += ns.Elapsed
			} else {
				modT += ns.Elapsed
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(level), fmt.Sprint(drel), ms(magicT), ms(modT),
		})
	}
	return rep, nil
}

func minD(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

func maxD(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
