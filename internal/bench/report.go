// Package bench implements the paper's experiments (§5.3): one runner
// per table and figure, each regenerating the same rows/series the
// paper reports, over the testbed's own workload generators. The
// cmd/dkbbench binary prints the reports; bench_test.go wraps the
// runners as testing.B benchmarks; EXPERIMENTS.md records paper-vs-
// measured conclusions.
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Report is one experiment's regenerated table/figure.
type Report struct {
	// ID is the experiment key ("fig7", "table4", ...).
	ID string
	// Title is the experiment's one-line description.
	Title string
	// Paper summarizes what the paper's version of the artifact shows.
	Paper string
	// Cols and Rows form the regenerated artifact.
	Cols []string
	Rows [][]string
	// Notes carry measured conclusions (crossovers, ratios).
	Notes []string
}

// Format renders the report as aligned text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Cols)
	dashes := make([]string, len(r.Cols))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSONReport is the machine-readable form of a finished experiment,
// written by dkbbench as BENCH_<id>.json so the perf trajectory can be
// tracked across commits. Rows carry the per-point measurements exactly
// as the text table does; the environment block records what hardware
// and settings produced them.
type JSONReport struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Paper string     `json:"paper,omitempty"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`

	// Environment and run parameters.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Reps       int    `json:"reps"`
	// ElapsedMS is the wall time of the whole experiment run.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Timestamp is the run's completion time (RFC 3339, UTC).
	Timestamp string `json:"timestamp"`
}

// JSON renders the report with its run environment as indented JSON.
func (r *Report) JSON(cfg Config, elapsed time.Duration) ([]byte, error) {
	jr := JSONReport{
		ID:         r.ID,
		Title:      r.Title,
		Paper:      r.Paper,
		Cols:       r.Cols,
		Rows:       r.Rows,
		Notes:      r.Notes,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Reps:       cfg.reps(),
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	out, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Config scales the experiments. Full (the default from dkbbench)
// reproduces paper-scale inputs; Quick shrinks everything so the whole
// suite runs in seconds for tests and CI.
type Config struct {
	Quick bool
	// Reps is the number of repetitions per measured point (the
	// minimum is reported, which is robust to scheduling noise).
	Reps int
}

// DefaultConfig is paper-scale.
func DefaultConfig() Config { return Config{Reps: 3} }

// QuickConfig is test-scale.
func QuickConfig() Config { return Config{Quick: true, Reps: 1} }

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 1
	}
	return c.Reps
}

// pick returns quick when Quick, full otherwise.
func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// measure runs f reps times and returns the minimum duration. Any error
// aborts.
func measure(reps int, f func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.0f", float64(d.Microseconds()))
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

// Runner is a registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

var registry []Runner

func register(id, title string, run func(Config) (*Report, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// Runners returns all registered experiments sorted by ID group order
// (figures then tables then ablations, in paper order).
func Runners() []Runner {
	out := append([]Runner(nil), registry...)
	rank := func(id string) string {
		// Stable, readable ordering: fig7..fig15 numerically, then
		// tables, then ablations.
		var n int
		switch {
		case strings.HasPrefix(id, "fig"):
			fmt.Sscanf(id, "fig%d", &n)
			return fmt.Sprintf("a%03d", n)
		case strings.HasPrefix(id, "table"):
			fmt.Sscanf(id, "table%d", &n)
			return fmt.Sprintf("b%03d", n)
		default:
			return "c" + id
		}
	}
	sort.Slice(out, func(i, j int) bool { return rank(out[i].ID) < rank(out[j].ID) })
	return out
}

// Find returns the runner with the given ID, or nil.
func Find(id string) *Runner {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}
