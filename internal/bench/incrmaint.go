package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dkbms"
)

func init() {
	register("incr-maint", "incremental view maintenance vs re-derivation under an update stream",
		incrMaint)
}

// incrMaint measures the cost of keeping a memoized ancestor closure
// fresh under a fact-update stream, comparing the three maintenance
// policies. One cycle is: LOAD a batch of new leaf edges, re-read the
// query, RETRACT the batch, re-read again. Under MaintRederive every
// commit drops the memo and each read pays a full LFP re-derivation;
// under MaintIncremental the commit itself propagates the delta through
// the program's delta rules (insertions) or Delete-and-Rederive
// (retractions) and the reads are result hits; MaintAuto switches
// between them at the cost crossover (delta > answer/4, floor 16).
// Answers are verified exactly equal across policies before timing.
func incrMaint(cfg Config) (*Report, error) {
	depth := cfg.pick(10, 6)
	batches := []int{1, 4, 16, 64, 256}
	if cfg.Quick {
		batches = []int{1, 8, 64}
	}

	// Full binary tree in heap order; leaves start at 2^(depth-1), so
	// hanging fresh children off the first leaf keeps them reachable
	// from the root without touching existing internal edges.
	nodes := (1 << depth) - 1
	leaf := 1 << (depth - 1)
	var src strings.Builder
	for i := 1; 2*i+1 <= nodes; i++ {
		fmt.Fprintf(&src, "parent(t%d, t%d).\nparent(t%d, t%d).\n", i, 2*i, i, 2*i+1)
	}
	src.WriteString(ancestorRules)
	const q = "?- ancestor(t1, W)."
	baseRows := nodes - 1

	policies := []dkbms.MaintenancePolicy{
		dkbms.MaintRederive, dkbms.MaintIncremental, dkbms.MaintAuto,
	}

	newTB := func(p dkbms.MaintenancePolicy) (*dkbms.ConcurrentTestbed, error) {
		c := dkbms.NewConcurrentWithOptions(dkbms.NewMemory(),
			dkbms.ConcurrentOptions{MaintenancePolicy: p})
		if err := c.Load(src.String()); err != nil {
			c.Close()
			return nil, err
		}
		res, err := c.Query(q, nil) // warm: memoize (and view, unless rederive)
		if err != nil {
			c.Close()
			return nil, err
		}
		if len(res.Rows) != baseRows {
			c.Close()
			return nil, fmt.Errorf("incr-maint: base closure %d rows, want %d", len(res.Rows), baseRows)
		}
		return c, nil
	}

	batchSrc := func(k int) string {
		var b strings.Builder
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, "parent(t%d, z%d).\n", leaf, i)
		}
		return b.String()
	}
	retractPat := fmt.Sprintf("parent(t%d, X)", leaf) // the leaf has no other children

	// cycle applies one insert batch + read + retract + read and returns
	// the wall-clock total plus the two answers.
	cycle := func(c *dkbms.ConcurrentTestbed, k int) (time.Duration, *dkbms.QueryResult, *dkbms.QueryResult, error) {
		ins := batchSrc(k)
		start := time.Now()
		if err := c.Load(ins); err != nil {
			return 0, nil, nil, err
		}
		up, err := c.Query(q, nil)
		if err != nil {
			return 0, nil, nil, err
		}
		if n, err := c.RetractSrc(retractPat); err != nil || int(n) != k {
			return 0, nil, nil, fmt.Errorf("incr-maint: retract %d of %d: %v", n, k, err)
		}
		down, err := c.Query(q, nil)
		return time.Since(start), up, down, err
	}

	// Verification pass: every policy must produce the exact same answer
	// set at both cycle points as MaintRederive (the ground truth path).
	for _, k := range batches {
		var wantUp, wantDown string
		for _, p := range policies {
			c, err := newTB(p)
			if err != nil {
				return nil, err
			}
			_, up, down, err := cycle(c, k)
			c.Close()
			if err != nil {
				return nil, err
			}
			if len(up.Rows) != baseRows+k {
				return nil, fmt.Errorf("incr-maint: %v batch %d: %d rows after insert, want %d",
					p, k, len(up.Rows), baseRows+k)
			}
			ku, kd := sortedRows(up), sortedRows(down)
			if p == dkbms.MaintRederive {
				wantUp, wantDown = ku, kd
				continue
			}
			if ku != wantUp || kd != wantDown {
				return nil, fmt.Errorf("incr-maint: %v batch %d: maintained answers diverge from re-derivation", p, k)
			}
		}
	}

	rep := &Report{
		ID:    "incr-maint",
		Title: "incremental view maintenance vs re-derivation under an update stream",
		Paper: "the testbed re-derives after every update; delta-rule maintenance of memoized answers is the post-paper extension measured here",
		Cols: []string{"batch", "policy", "cycle_us", "maintained", "rederived",
			"delta_tuples", "answer_rows"},
	}

	type key struct {
		batch  int
		policy dkbms.MaintenancePolicy
	}
	cycles := make(map[key]time.Duration)
	for _, k := range batches {
		for _, p := range policies {
			c, err := newTB(p)
			if err != nil {
				return nil, err
			}
			best, err := measure(cfg.reps(), func() (time.Duration, error) {
				d, _, _, err := cycle(c, k)
				return d, err
			})
			st := c.MatViewStats()
			c.Close()
			if err != nil {
				return nil, err
			}
			cycles[key{k, p}] = best
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(k), p.String(), us(best),
				fmt.Sprint(st.Maintained), fmt.Sprint(st.Rederives),
				fmt.Sprint(st.DeltaTuples), fmt.Sprint(baseRows + k),
			})
		}
	}

	small, large := batches[0], batches[len(batches)-1]
	if r, i := cycles[key{small, dkbms.MaintRederive}], cycles[key{small, dkbms.MaintIncremental}]; i > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"batch %d: incremental maintenance cycle is %.1fx faster than re-derivation (%v vs %v), answers exactly equal",
			small, float64(r)/float64(i), i.Round(time.Microsecond), r.Round(time.Microsecond)))
	}
	crossover := baseRows / 4
	if crossover < 16 {
		crossover = 16
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"auto crossover at delta > %d tuples (answer/4, floor 16): batch %d commits maintain incrementally; batch %d commits above it fall back to re-derivation (counted in rederived)",
		crossover, small, large))
	return rep, nil
}

// sortedRows canonicalizes an answer for exact-set comparison.
func sortedRows(res *dkbms.QueryResult) string {
	keys := make([]string, len(res.Rows))
	for i, tu := range res.Rows {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = v.String()
		}
		keys[i] = strings.Join(parts, ",")
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}
