package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment at
// test scale and sanity-checks report structure.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow-ish even at quick scale")
	}
	cfg := QuickConfig()
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != r.ID {
				t.Fatalf("report ID %q from runner %q", rep.ID, r.ID)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Cols) {
					t.Fatalf("row width %d vs %d cols", len(row), len(rep.Cols))
				}
			}
			out := rep.Format()
			if !strings.Contains(out, strings.ToUpper(r.ID)) {
				t.Fatalf("format output missing ID:\n%s", out)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	rs := Runners()
	if len(rs) < 17 {
		t.Fatalf("only %d experiments registered", len(rs))
	}
	// Paper order: figures first, ascending.
	if rs[0].ID != "fig7" {
		t.Fatalf("first runner %s", rs[0].ID)
	}
	if Find("fig13") == nil || Find("nope") != nil {
		t.Fatal("Find broken")
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
	}
	for _, want := range []string{
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"table4", "table5", "table8",
		"ablation-index", "ablation-join", "ablation-adaptive", "ablation-tcop", "ablation-storage",
		"ablation-parallel", "parallel-speedup",
	} {
		if !seen[want] {
			t.Fatalf("experiment %s not registered", want)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	q := QuickConfig()
	if q.pick(100, 5) != 5 || DefaultConfig().pick(100, 5) != 100 {
		t.Fatal("pick")
	}
	if (Config{}).reps() != 1 {
		t.Fatal("reps floor")
	}
}
