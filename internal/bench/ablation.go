package bench

import (
	"fmt"
	"time"

	"dkbms"
	"dkbms/internal/rel"
	"dkbms/internal/rtlib"
	"dkbms/internal/stored"
	"dkbms/internal/workload"
)

func init() {
	register("ablation-index", "system-relation indexes on/off: extraction time vs R_s", ablationIndex)
	register("ablation-join", "fact-relation index on/off: LFP join strategy in t_e", ablationJoin)
	register("ablation-adaptive", "adaptive optimization switch vs fixed on/off", ablationAdaptive)
	register("ablation-tcop", "specialized TC operator vs SQL-interface LFP loop", ablationTCOp)
	register("ablation-storage", "compiled rule storage on/off: query-side extraction cost", ablationStorage)
	register("ablation-parallel", "parallel vs sequential differential evaluation", ablationParallel)
}

// ablationParallel measures the paper's conclusion 7a (parallel
// evaluation of each recursive equation's right-hand side) on a clique
// with several differentials per iteration (same-generation: three).
func ablationParallel(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation-parallel",
		Title: "t_e: sequential vs parallel differential evaluation",
		Paper: "(paper conclusion 7a: evaluate each recursive equation's RHS in parallel)",
		Cols:  []string{"workload", "sequential(ms)", "parallel(ms)", "speedup"},
	}
	depth := cfg.pick(9, 6)
	tb := dkbms.NewMemory()
	defer tb.Close()
	tree := workload.FullBinaryTree(depth)
	up := make([]rel.Tuple, len(tree))
	for i, e := range tree {
		up[i] = rel.Tuple{e[1], e[0]}
	}
	if err := tb.AssertTuples("up", up); err != nil {
		return nil, err
	}
	if err := tb.CreateFactIndex("up", 0); err != nil {
		return nil, err
	}
	if err := tb.AssertTuples("flat", []rel.Tuple{
		{rel.NewString(workload.TreeNode(1)), rel.NewString(workload.TreeNode(1))},
	}); err != nil {
		return nil, err
	}
	if err := tb.Load(`
down(X, Y) :- up(Y, X).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`); err != nil {
		return nil, err
	}
	q := fmt.Sprintf("?- sg(%s, W).", workload.TreeNode((1<<depth)-2))
	seq, seqRes, err := evalTime(tb, q, dkbms.QueryOptions{}, cfg.reps())
	if err != nil {
		return nil, err
	}
	par, parRes, err := evalTime(tb, q, dkbms.QueryOptions{Parallel: true}, cfg.reps())
	if err != nil {
		return nil, err
	}
	if len(seqRes.Rows) != len(parRes.Rows) {
		return nil, fmt.Errorf("ablation-parallel: answers differ: %d vs %d rows",
			len(seqRes.Rows), len(parRes.Rows))
	}
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("same-generation d=%d", depth),
		ms(seq), ms(par), fmt.Sprintf("%.1fx", ratio(seq, par)),
	})
	rep.Notes = append(rep.Notes,
		"the parallel path also replaces SQL set-difference dedup with in-memory keys (conclusion 6b), so gains exceed pure rule-level parallelism",
		"answers verified identical")
	return rep, nil
}

// ablationIndex removes the B+tree indexes on rulesource/reachablepreds
// — the design choice behind Fig 7's flatness — and shows extraction
// time regaining its dependence on R_s.
func ablationIndex(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation-index",
		Title: "t_extract vs R_s with and without system-relation indexes",
		Paper: "(design claim underlying Fig 7: the flatness comes from the indexes)",
		Cols:  []string{"R_s", "indexed(us)", "unindexed(us)"},
	}
	chainLen := 7
	sizes := []int{70, 140, 280}
	if !cfg.Quick {
		sizes = append(sizes, 560, 1120)
	}
	for _, rs := range sizes {
		nChains := rs / chainLen
		var times [2]time.Duration
		for mode, noIdx := range []bool{false, true} {
			d, m, heads, err := rawChainStore(nChains, chainLen, stored.Options{NoIndexes: noIdx})
			if err != nil {
				return nil, err
			}
			best, err := measure(cfg.reps(), func() (time.Duration, error) {
				t0 := time.Now()
				if _, err := m.ExtractRelevant([]string{heads[0]}); err != nil {
					return 0, err
				}
				return time.Since(t0), nil
			})
			d.Close()
			if err != nil {
				return nil, err
			}
			times[mode] = best
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(rs), us(times[0]), us(times[1])})
	}
	return rep, nil
}

// ablationJoin drops the index on the fact relation's join column, so
// every LFP iteration's delta⋈parent join degrades from an index
// nested-loop probe to a hash build over the full relation.
func ablationJoin(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation-join",
		Title: "t_e with and without an index on parent's source column",
		Paper: "(paper conclusion 6c/6d: iteration-join access paths matter — unless the SQL-interface overheads dominate, which Tests 5-6 show they do)",
		Cols:  []string{"D_tot", "indexed(ms)", "unindexed(ms)", "speedup"},
	}
	rep.Notes = append(rep.Notes,
		"a ~1x result here is itself the paper's point: per-iteration EXCEPT/DISTINCT/temp-table traffic, not the join, bounds t_e through a SQL interface")
	for _, depth := range []int{cfg.pick(9, 6), cfg.pick(11, 7)} {
		var times [2]time.Duration
		for mode, indexed := range []bool{true, false} {
			tb, err := treeStore(depth, indexed)
			if err != nil {
				return nil, err
			}
			d, _, err := evalTime(tb, queryAt(workload.TreeNode(2)),
				dkbms.QueryOptions{NoOptimize: true}, cfg.reps())
			tb.Close()
			if err != nil {
				return nil, err
			}
			times[mode] = d
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(len(workload.FullBinaryTree(depth))),
			ms(times[0]), ms(times[1]), fmt.Sprintf("%.1fx", ratio(times[1], times[0])),
		})
	}
	return rep, nil
}

// ablationAdaptive evaluates the paper's proposed dynamic optimization
// switch: at low selectivity it should behave like magic-on, at full
// selectivity like magic-off, never being the worst of the three.
func ablationAdaptive(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation-adaptive",
		Title: "adaptive optimization switch vs fixed strategies",
		Paper: "(paper §6: 'tune the optimizer to adapt the optimization strategy dynamically')",
		Cols:  []string{"query", "selectivity", "plain(ms)", "magic(ms)", "adaptive(ms)", "adaptive chose"},
	}
	// Kept moderate: the plain configurations at high selectivity cost
	// O(n^3) tuple work through the SQL interface.
	n := cfg.pick(150, 60)
	tb, err := listStore(n, true)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	cases := []struct {
		name string
		q    string
		sel  string
	}{
		{"bound low-sel", queryAt(fmt.Sprintf("l0_%d", n-n/20)), "0.05"},
		{"bound high-sel", queryAt("l0_0"), "1.00"},
		{"unbound", "?- ancestor(A, D).", "1.00"},
	}
	for _, c := range cases {
		plain, _, err := evalTime(tb, c.q, dkbms.QueryOptions{NoOptimize: true}, cfg.reps())
		if err != nil {
			return nil, err
		}
		magic, magicRes, err := evalTime(tb, c.q, dkbms.QueryOptions{}, cfg.reps())
		if err != nil {
			return nil, err
		}
		adaptive, adRes, err := evalTime(tb, c.q, dkbms.QueryOptions{Adaptive: true}, cfg.reps())
		if err != nil {
			return nil, err
		}
		chose := "plain"
		if adRes.Optimized {
			chose = "magic"
		}
		_ = magicRes
		rep.Rows = append(rep.Rows, []string{
			c.name, c.sel, ms(plain), ms(magic), ms(adaptive), chose,
		})
	}
	return rep, nil
}

// ablationTCOp compares the full KM/SQL evaluation of the ancestor
// query against the specialized in-DBMS transitive-closure operator the
// paper's conclusions (items 6 and 8) argue for.
func ablationTCOp(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation-tcop",
		Title: "SQL-interface LFP loop vs in-DBMS TC operator",
		Paper: "(paper conclusion 8: special LFP operators can be optimized far better)",
		Cols:  []string{"D_tot", "sql-lfp magic(ms)", "tc-operator(ms)", "speedup"},
	}
	for _, depth := range []int{cfg.pick(10, 6), cfg.pick(12, 8)} {
		tb, err := treeStore(depth, true)
		if err != nil {
			return nil, err
		}
		node := workload.TreeNode(2)
		sqlTime, res, err := evalTime(tb, queryAt(node), dkbms.QueryOptions{}, cfg.reps())
		if err != nil {
			tb.Close()
			return nil, err
		}
		seed := rel.NewString(node)
		var tcRows []rel.Tuple
		tcTime, err := measure(cfg.reps(), func() (time.Duration, error) {
			t0 := time.Now()
			rows, err := rtlib.TC(tb.DB(), "parent", &seed)
			if err != nil {
				return 0, err
			}
			tcRows = rows
			return time.Since(t0), nil
		})
		tb.Close()
		if err != nil {
			return nil, err
		}
		if len(tcRows) != len(res.Rows) {
			return nil, fmt.Errorf("ablation-tcop: TC operator disagrees: %d vs %d rows",
				len(tcRows), len(res.Rows))
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(len(workload.FullBinaryTree(depth))),
			ms(sqlTime), ms(tcTime), fmt.Sprintf("%.0fx", ratio(sqlTime, tcTime)),
		})
	}
	rep.Notes = append(rep.Notes, "both sides verified to return identical answer sets")
	return rep, nil
}

// ablationStorage shows the query-side benefit bought by Fig 15's
// update-side cost: with compiled rule storage a deep-chain extraction
// is a single indexed query; without, the compiler iterates hop by hop.
func ablationStorage(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "ablation-storage",
		Title: "compile-time extraction cost: compiled vs source-only rule storage",
		Paper: "(the time-space/update-query tradeoff of the paper's §6 conclusions 1-2)",
		Cols:  []string{"chain depth", "compiled(us)", "source-only(us)", "extract calls (compiled/source)"},
	}
	for _, depth := range []int{5, 20, cfg.pick(80, 40)} {
		var times [2]time.Duration
		var calls [2]int64
		for mode, o := range []stored.Options{{}, {NoCompiledRules: true}} {
			d, m, heads, err := rawChainStore(1, depth, o)
			if err != nil {
				return nil, err
			}
			before := m.StatsSnapshot().ExtractCalls
			best, err := measure(cfg.reps(), func() (time.Duration, error) {
				t0 := time.Now()
				// Iterative extraction exactly as the compiler does
				// it: the next frontier is computed after the whole
				// batch is registered, so predicates defined within
				// the batch are not re-requested.
				frontier := []string{heads[0]}
				have := map[string]bool{}
				for len(frontier) > 0 {
					rules, err := m.ExtractRelevant(frontier)
					if err != nil {
						return 0, err
					}
					if len(rules) == 0 {
						break
					}
					for _, c := range rules {
						have[c.Head.Pred] = true
					}
					next := map[string]bool{}
					for _, c := range rules {
						for _, a := range c.Body {
							if !have[a.Pred] {
								next[a.Pred] = true
							}
						}
					}
					frontier = frontier[:0]
					for p := range next {
						frontier = append(frontier, p)
					}
				}
				return time.Since(t0), nil
			})
			calls[mode] = m.StatsSnapshot().ExtractCalls - before
			d.Close()
			if err != nil {
				return nil, err
			}
			times[mode] = best
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(depth), us(times[0]), us(times[1]),
			fmt.Sprintf("%d/%d", calls[0]/int64(cfg.reps()), calls[1]/int64(cfg.reps())),
		})
	}
	return rep, nil
}
