package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"dkbms"
	"dkbms/internal/client"
	"dkbms/internal/server"
	"dkbms/internal/wire"
)

func init() {
	register("server-scaling", "concurrent clients against one dkbd server",
		serverScaling)
}

// serverScaling measures query throughput and latency as independent
// client sessions are added against a single shared D/KB server. Every
// request is a QUERY frame for the same recursive query, so the run
// exercises the whole shared read path: the first request compiles and
// evaluates the LFP, and every identical repeat hits the server-wide
// plan cache (memoized answer while the D/KB stands still) over the
// sharded buffer pool. Read QPS should therefore climb with the client
// count until the available cores saturate, instead of flatlining on a
// per-request recompile + re-evaluation.
func serverScaling(cfg Config) (*Report, error) {
	// Shared D/KB: a parent chain plus the recursive ancestor rules, so
	// the cold request is a genuine LFP evaluation, not a lookup.
	chain := cfg.pick(64, 16)
	var src []byte
	for i := 0; i < chain; i++ {
		src = append(src, fmt.Sprintf("parent(c%d, c%d).\n", i, i+1)...)
	}
	src = append(src, "ancestor(X, Y) :- parent(X, Y).\n"...)
	src = append(src, "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n"...)

	clientCounts := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		clientCounts = []int{1, 4}
	}
	perClient := cfg.pick(40, 4)

	rep := &Report{
		ID:    "server-scaling",
		Title: "concurrent clients against one dkbd server",
		Paper: "the testbed is single-user; this measures the server subsystem's read concurrency",
		Cols: []string{"clients", "requests", "elapsed_ms", "req_per_s", "p50_us", "p99_us",
			"plan_result_hits", "plan_misses", "pool_hits", "pool_misses"},
	}

	var oneClient float64
	for _, nClients := range clientCounts {
		tb := dkbms.NewConcurrent(dkbms.NewMemory())
		if err := tb.Load(string(src)); err != nil {
			tb.Close()
			return nil, err
		}
		elapsed, stats, err := driveClients(tb, nClients, perClient)
		tb.Close()
		if err != nil {
			return nil, err
		}
		total := nClients * perClient
		rps := float64(total) / elapsed.Seconds()
		if nClients == 1 {
			oneClient = rps
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", nClients),
			fmt.Sprintf("%d", total),
			ms(elapsed),
			fmt.Sprintf("%.0f", rps),
			us(stats.P50),
			us(stats.P99),
			fmt.Sprintf("%d", stats.PlanResultHits),
			fmt.Sprintf("%d", stats.PlanMisses),
			fmt.Sprintf("%d", stats.PoolHits),
			fmt.Sprintf("%d", stats.PoolMisses),
		})
	}
	if oneClient > 0 && len(clientCounts) > 1 {
		last := clientCounts[len(clientCounts)-1]
		lastRow := rep.Rows[len(rep.Rows)-1]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"throughput at %d clients is %s req/s vs %.0f req/s single-client (%d CPUs, GOMAXPROCS %d)",
			last, lastRow[3], oneClient, runtime.NumCPU(), runtime.GOMAXPROCS(0)))
	}
	return rep, nil
}

// driveClients serves tb on a loopback port, runs nClients sessions each
// issuing perClient QUERY requests for the same query text, and returns
// the wall time for the whole volley plus the server's final stats.
func driveClients(tb *dkbms.ConcurrentTestbed, nClients, perClient int) (time.Duration, server.Stats, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := server.New(tb, server.Options{MaxConns: nClients + 1})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		return 0, server.Stats{}, err
	}

	clients := make([]*client.Client, nClients)
	for i := range clients {
		c, err := client.Dial(addr.String())
		if err != nil {
			return 0, server.Stats{}, err
		}
		defer c.Close()
		clients[i] = c
	}

	const query = "?- ancestor(c0, X)."
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	start := time.Now()
	for i := range clients {
		wg.Add(1)
		//dkblint:bounded one goroutine per configured bench client
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				if _, err := clients[i].Query(query, wire.QueryOpts{}); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, server.Stats{}, err
	}
	stats := srv.Stats()
	cancel()
	if err := <-done; err != nil {
		return 0, server.Stats{}, err
	}
	return elapsed, stats, nil
}
