package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"dkbms"
	"dkbms/internal/sched"
	"dkbms/internal/workload"
)

func init() {
	register("parallel-speedup", "scheduler-pool parallel evaluation vs sequential, swept over GOMAXPROCS", parallelSpeedup)
}

// answerKey canonicalizes a result's rows for byte-identical-answer
// verification across evaluation modes.
func answerKey(res *dkbms.QueryResult) string {
	keys := make([]string, len(res.Rows))
	for i, tu := range res.Rows {
		keys[i] = tu.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// parallelSpeedup measures the bounded shared scheduler end to end:
// the wavefront + partitioned-differential + Go-side-termcheck path
// (QueryOptions.Parallel on a pool sized to GOMAXPROCS) against the
// default sequential semi-naive path, on the fig12 ancestor tree and a
// mutual-recursion variant, swept over GOMAXPROCS. On a single-core
// host the speedup is algorithmic (hash-partitioned Go-side duplicate
// elimination and bulk installs replacing per-rule SQL set differences
// — paper conclusion 6b and the §5 SQL-interface overhead complaint);
// extra cores add the conclusion-7a parallelism on top.
func parallelSpeedup(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "parallel-speedup",
		Title: "t_e: sequential semi-naive vs scheduler-pool parallel, by GOMAXPROCS",
		Paper: "(paper conclusions 6b and 7a: Go-side duplicate elimination, parallel recursive equations)",
		Cols:  []string{"workload", "GOMAXPROCS", "sequential(ms)", "parallel(ms)", "speedup"},
	}
	depth := cfg.pick(10, 7)
	procs := []int{1, 2, 4, 8}
	if cfg.Quick {
		procs = []int{1, 2}
	}

	mutualRules := `
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc2(Z, Y).
anc2(X, Y) :- parent(X, Y).
anc2(X, Y) :- parent(X, Z), anc(Z, Y).
`
	workloads := []struct {
		name  string
		rules string
		query string
	}{
		{"fig12 tree", "", queryAt(workload.TreeNode(1))},
		{"mutual recursion", mutualRules, fmt.Sprintf("?- anc(%s, W).", workload.TreeNode(1))},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, w := range workloads {
		tb, err := treeStore(depth, true)
		if err != nil {
			return nil, err
		}
		if w.rules != "" {
			if err := tb.Load(w.rules); err != nil {
				tb.Close()
				return nil, err
			}
		}
		for _, n := range procs {
			runtime.GOMAXPROCS(n)
			pool := sched.NewPool(n)
			tb.SetEvalPool(pool)
			seq, seqRes, err := evalTime(tb, w.query, dkbms.QueryOptions{NoOptimize: true}, cfg.reps())
			if err == nil {
				var par time.Duration
				var parRes *dkbms.QueryResult
				par, parRes, err = evalTime(tb, w.query, dkbms.QueryOptions{NoOptimize: true, Parallel: true}, cfg.reps())
				if err == nil && answerKey(seqRes) != answerKey(parRes) {
					err = fmt.Errorf("parallel-speedup: %s at GOMAXPROCS=%d: answers differ", w.name, n)
				}
				if err == nil {
					rep.Rows = append(rep.Rows, []string{
						w.name, fmt.Sprint(n), ms(seq), ms(par), fmt.Sprintf("%.1fx", ratio(seq, par)),
					})
				}
			}
			tb.SetEvalPool(nil)
			pool.Close()
			if err != nil {
				tb.Close()
				return nil, err
			}
		}
		tb.Close()
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("host has %d CPU(s); single-core speedup is the Go-side dedup/termcheck and bulk-install win, not core parallelism", runtime.NumCPU()),
		"answers verified byte-identical between modes at every point")
	return rep, nil
}
