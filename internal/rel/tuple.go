package rel

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Tuple is one row: a slice of values. Tuples are positional; names live
// in the schema.
type Tuple []Value

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// CompareTuples orders tuples lexicographically; shorter tuples sort
// before longer ones with an equal prefix.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Key returns a string usable as a map key that uniquely identifies the
// tuple's contents. Used by Distinct, hash joins and set operations.
// The encoding is injective: integers are length-prefixed decimal and
// strings are length-prefixed bytes, so no two distinct tuples collide.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		switch v.Kind {
		case TypeInt:
			fmt.Fprintf(&b, "i%d;", v.Int)
		case TypeString:
			fmt.Fprintf(&b, "s%d:%s;", len(v.Str), v.Str)
		default:
			b.WriteString("u;")
		}
	}
	return b.String()
}

// KeyOf returns Key() of a projection of the tuple onto the given
// ordinals, without materializing the projection.
func (t Tuple) KeyOf(ords []int) string {
	var b strings.Builder
	for _, o := range ords {
		v := t[o]
		switch v.Kind {
		case TypeInt:
			fmt.Fprintf(&b, "i%d;", v.Int)
		case TypeString:
			fmt.Fprintf(&b, "s%d:%s;", len(v.Str), v.Str)
		default:
			b.WriteString("u;")
		}
	}
	return b.String()
}

// Encode serializes the tuple against its schema into buf (appending) and
// returns the extended buffer. Layout: for each column, TypeInt → 8-byte
// big-endian int64; TypeString → uvarint length + bytes.
func (t Tuple) Encode(buf []byte) []byte {
	var scratch [8]byte
	for _, v := range t {
		switch v.Kind {
		case TypeInt:
			binary.BigEndian.PutUint64(scratch[:], uint64(v.Int))
			buf = append(buf, scratch[:]...)
		case TypeString:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		default:
			// Unknown values are never stored; encode as empty string.
			buf = binary.AppendUvarint(buf, 0)
		}
	}
	return buf
}

// DecodeTuple deserializes a tuple of the given schema from data.
func DecodeTuple(data []byte, schema *Schema) (Tuple, error) {
	t := make(Tuple, schema.Len())
	off := 0
	for i := 0; i < schema.Len(); i++ {
		switch schema.Col(i).Type {
		case TypeInt:
			if off+8 > len(data) {
				return nil, fmt.Errorf("rel: short tuple: int column %d", i)
			}
			t[i] = NewInt(int64(binary.BigEndian.Uint64(data[off : off+8])))
			off += 8
		case TypeString:
			n, sz := binary.Uvarint(data[off:])
			if sz <= 0 {
				return nil, fmt.Errorf("rel: bad string length at column %d", i)
			}
			off += sz
			if off+int(n) > len(data) {
				return nil, fmt.Errorf("rel: short tuple: string column %d", i)
			}
			t[i] = NewString(string(data[off : off+int(n)]))
			off += int(n)
		default:
			return nil, fmt.Errorf("rel: cannot decode unknown-typed column %d", i)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("rel: %d trailing bytes after tuple", len(data)-off)
	}
	return t, nil
}
