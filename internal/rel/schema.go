package rel

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Schemas are immutable once built;
// operations that would change a schema return a new one.
type Schema struct {
	cols []Column
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-sensitive, the engine lowercases identifiers at parse time).
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("rel: empty column name")
		}
		if _, dup := seen[c.Name]; dup {
			return nil, fmt.Errorf("rel: duplicate column %q", c.Name)
		}
		seen[c.Name] = struct{}{}
	}
	return &Schema{cols: append([]Column(nil), cols...)}, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Ordinal returns the position of the named column, or -1.
func (s *Schema) Ordinal(name string) int {
	for i, c := range s.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Project returns a schema holding the columns at the given ordinals.
func (s *Schema) Project(ords []int) *Schema {
	cols := make([]Column, len(ords))
	for i, o := range ords {
		cols[i] = s.cols[o]
	}
	return &Schema{cols: cols}
}

// Concat returns the schema of a join result: s's columns followed by
// t's. Duplicate names are allowed here because join outputs are always
// addressed by ordinal internally.
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(t.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, t.cols...)
	return &Schema{cols: cols}
}

// Equal reports whether two schemas have identical columns.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}

// TypesCompatible reports whether the column types match positionally
// (names may differ). Set operations and INSERT...SELECT require this.
func (s *Schema) TypesCompatible(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i].Type != t.cols[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}
