package rel

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	if TypeInt.String() != "INTEGER" || TypeString.String() != "CHAR" {
		t.Fatalf("unexpected type names: %v %v", TypeInt, TypeString)
	}
	if TypeUnknown.String() != "UNKNOWN" {
		t.Fatalf("unexpected zero type name: %v", TypeUnknown)
	}
}

func TestParseType(t *testing.T) {
	for _, s := range []string{"INTEGER", "INT", "int", "integer"} {
		ty, err := ParseType(s)
		if err != nil || ty != TypeInt {
			t.Fatalf("ParseType(%q) = %v, %v", s, ty, err)
		}
	}
	for _, s := range []string{"CHAR", "char", "VARCHAR", "string"} {
		ty, err := ParseType(s)
		if err != nil || ty != TypeString {
			t.Fatalf("ParseType(%q) = %v, %v", s, ty, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Fatal("ParseType(blob) should fail")
	}
}

func TestValueString(t *testing.T) {
	if NewInt(-42).String() != "-42" {
		t.Fatalf("int rendering: %q", NewInt(-42).String())
	}
	if NewString("abc").String() != "abc" {
		t.Fatalf("string rendering: %q", NewString("abc").String())
	}
}

func TestValueSQL(t *testing.T) {
	if NewInt(7).SQL() != "7" {
		t.Fatalf("int SQL: %q", NewInt(7).SQL())
	}
	if NewString("o'brien").SQL() != "'o''brien'" {
		t.Fatalf("string SQL quoting: %q", NewString("o'brien").SQL())
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(5), NewInt(5), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("a"), 1},
		{NewString("x"), NewString("x"), 0},
		{NewInt(1), NewString("1"), -1}, // type tag ordering
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Compare must be antisymmetric and transitive over random values.
	gen := func(r *rand.Rand) Value {
		if r.Intn(2) == 0 {
			return NewInt(int64(r.Intn(20) - 10))
		}
		return NewString(string(rune('a' + r.Intn(5))))
	}
	r := rand.New(rand.NewSource(1))
	vals := make([]Value, 40)
	for i := range vals {
		vals[i] = gen(r)
	}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Fatalf("antisymmetry violated for %v,%v", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated for %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s, err := NewSchema(Column{"x", TypeInt}, Column{"y", TypeString})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Col(0).Name != "x" || s.Col(1).Type != TypeString {
		t.Fatalf("schema contents wrong: %v", s)
	}
	if s.Ordinal("y") != 1 || s.Ordinal("z") != -1 {
		t.Fatal("Ordinal lookup wrong")
	}
	if s.String() != "(x INTEGER, y CHAR)" {
		t.Fatalf("String: %q", s.String())
	}
}

func TestSchemaDuplicateRejected(t *testing.T) {
	if _, err := NewSchema(Column{"x", TypeInt}, Column{"x", TypeInt}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewSchema(Column{"", TypeInt}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestSchemaProjectConcat(t *testing.T) {
	s := MustSchema(Column{"a", TypeInt}, Column{"b", TypeString}, Column{"c", TypeInt})
	p := s.Project([]int{2, 0})
	if p.String() != "(c INTEGER, a INTEGER)" {
		t.Fatalf("project: %v", p)
	}
	q := MustSchema(Column{"d", TypeString})
	j := s.Concat(q)
	if j.Len() != 4 || j.Col(3).Name != "d" {
		t.Fatalf("concat: %v", j)
	}
}

func TestSchemaCompat(t *testing.T) {
	a := MustSchema(Column{"a", TypeInt}, Column{"b", TypeString})
	b := MustSchema(Column{"x", TypeInt}, Column{"y", TypeString})
	c := MustSchema(Column{"x", TypeString}, Column{"y", TypeInt})
	if !a.TypesCompatible(b) {
		t.Fatal("a and b should be type-compatible")
	}
	if a.TypesCompatible(c) {
		t.Fatal("a and c should not be compatible")
	}
	if a.Equal(b) {
		t.Fatal("a and b are not Equal (names differ)")
	}
	if !a.Equal(a) {
		t.Fatal("a should equal itself")
	}
}

func TestTupleRoundTrip(t *testing.T) {
	s := MustSchema(Column{"a", TypeInt}, Column{"b", TypeString}, Column{"c", TypeInt})
	tu := Tuple{NewInt(-5), NewString("hello world"), NewInt(1 << 40)}
	enc := tu.Encode(nil)
	dec, err := DecodeTuple(enc, s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tu, dec) {
		t.Fatalf("round trip: got %v want %v", dec, tu)
	}
}

func TestTupleEncodePropertyRoundTrip(t *testing.T) {
	// Property: Encode/DecodeTuple round-trips arbitrary (int, string) rows.
	f := func(i int64, s string, j int64) bool {
		sch := MustSchema(Column{"a", TypeInt}, Column{"b", TypeString}, Column{"c", TypeInt})
		tu := Tuple{NewInt(i), NewString(s), NewInt(j)}
		dec, err := DecodeTuple(tu.Encode(nil), sch)
		return err == nil && reflect.DeepEqual(tu, dec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Property: distinct tuples have distinct keys.
	f := func(a1 int64, s1 string, a2 int64, s2 string) bool {
		t1 := Tuple{NewInt(a1), NewString(s1)}
		t2 := Tuple{NewInt(a2), NewString(s2)}
		same := a1 == a2 && s1 == s2
		return (t1.Key() == t2.Key()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Regression: the classic concatenation ambiguity must not collide.
	t1 := Tuple{NewString("ab"), NewString("c")}
	t2 := Tuple{NewString("a"), NewString("bc")}
	if t1.Key() == t2.Key() {
		t.Fatal("key not injective across string boundaries")
	}
}

func TestTupleKeyOfMatchesProjection(t *testing.T) {
	tu := Tuple{NewInt(1), NewString("x"), NewInt(3)}
	proj := Tuple{tu[2], tu[0]}
	if tu.KeyOf([]int{2, 0}) != proj.Key() {
		t.Fatal("KeyOf differs from Key of projection")
	}
}

func TestCompareTuples(t *testing.T) {
	a := Tuple{NewInt(1), NewInt(2)}
	b := Tuple{NewInt(1), NewInt(3)}
	c := Tuple{NewInt(1)}
	if CompareTuples(a, b) != -1 || CompareTuples(b, a) != 1 {
		t.Fatal("lexicographic compare wrong")
	}
	if CompareTuples(c, a) != -1 || CompareTuples(a, a) != 0 {
		t.Fatal("prefix compare wrong")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := MustSchema(Column{"a", TypeInt})
	if _, err := DecodeTuple([]byte{1, 2}, s); err == nil {
		t.Fatal("short int data accepted")
	}
	ss := MustSchema(Column{"a", TypeString})
	if _, err := DecodeTuple([]byte{10, 'x'}, ss); err == nil {
		t.Fatal("short string data accepted")
	}
	// Trailing junk must be rejected.
	tu := Tuple{NewInt(1)}
	enc := append(tu.Encode(nil), 0xFF)
	if _, err := DecodeTuple(enc, s); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	b := a.Clone()
	b[0] = NewInt(9)
	if a[0].Int != 1 {
		t.Fatal("Clone aliases original")
	}
}
