// Package rel defines the value, tuple and schema layer shared by the
// storage engine, the SQL executor and the knowledge manager.
//
// The testbed's data model is deliberately small — the paper's D/KB uses
// only integer and character-string columns — but the layer is complete:
// typed values with total ordering, schemas with named typed columns, and
// a compact binary tuple encoding used by the slotted-page heap files.
package rel

import (
	"fmt"
	"strconv"
)

// Type identifies a column type. The testbed supports the two types the
// paper's intensional data dictionary records: integer and char.
type Type uint8

const (
	// TypeUnknown is the zero Type; it appears only transiently during
	// type inference, never in a committed schema.
	TypeUnknown Type = iota
	// TypeInt is a 64-bit signed integer column.
	TypeInt
	// TypeString is a variable-length character-string column.
	TypeString
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeString:
		return "CHAR"
	default:
		return "UNKNOWN"
	}
}

// ParseType maps a SQL type name to a Type. It accepts the spellings the
// testbed's SQL subset recognises.
func ParseType(s string) (Type, error) {
	switch s {
	case "INTEGER", "INT", "integer", "int":
		return TypeInt, nil
	case "CHAR", "char", "VARCHAR", "varchar", "STRING", "string":
		return TypeString, nil
	default:
		return TypeUnknown, fmt.Errorf("rel: unknown type %q", s)
	}
}

// Value is a single typed datum. Exactly one of the payload fields is
// meaningful, selected by Kind. Value is a small value type and is passed
// by value throughout the engine.
type Value struct {
	Kind Type
	Int  int64
	Str  string
}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: TypeInt, Int: v} }

// NewString returns a string value.
func NewString(s string) Value { return Value{Kind: TypeString, Str: s} }

// String renders the value for display and for rule source round-tripping.
func (v Value) String() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeString:
		return v.Str
	default:
		return "<unknown>"
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeString:
		return "'" + escapeQuotes(v.Str) + "'"
	default:
		return "NULL"
	}
}

func escapeQuotes(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Compare returns -1, 0 or +1 as a sorts before, equal to, or after b.
// Values of different types order by type tag; the planner never compares
// mixed types for well-typed programs, but indexes need a total order.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case TypeInt:
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		default:
			return 0
		}
	case TypeString:
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values are identical in type and payload.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }
