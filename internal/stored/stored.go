// Package stored implements the testbed's Stored D/KB Manager (paper
// §3.2.3, §4.1, §4.3). The stored data/knowledge base lives entirely
// inside the relational DBMS:
//
//   - facts (the extensional database) as ordinary relations named
//     edb_<pred> with columns c0..cn-1, described by the extensional
//     data dictionary relations edbrels/edbcols;
//   - rules (the intensional database) in source form in rulesource,
//     described by the intensional dictionary idbrels/idbcols, and in
//     compiled form in reachablepreds — the transitive closure of the
//     rules' predicate connection graph, which makes the time to
//     extract the rules relevant to a query depend only on how many
//     rules are extracted, not on the total number stored (the paper's
//     central rule-storage-structure claim, Test 1/Fig 7).
//
// Updates from the workspace maintain reachablepreds incrementally
// (§4.3): only the portion of the closure affected by the new rules is
// recomputed.
package stored

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"dkbms/internal/catalog"
	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/rel"
)

// System relation names.
const (
	TabRuleSource     = "rulesource"
	TabReachablePreds = "reachablepreds"
	TabIDBRels        = "idbrels"
	TabIDBCols        = "idbcols"
	TabEDBRels        = "edbrels"
	TabEDBCols        = "edbcols"
)

// Options configure the manager.
type Options struct {
	// NoCompiledRules disables the reachablepreds compiled storage
	// structure: rules are stored in source form only and relevant-rule
	// extraction degrades to iterative direct lookups (the paper's
	// "without compiled form rule storage" configuration, Fig 15).
	NoCompiledRules bool
	// NoIndexes skips the B+tree indexes on the system relations (the
	// index ablation underlying the Fig 7 flatness claim).
	NoIndexes bool
}

// Manager is the stored-D/KB manager bound to one database (or, via
// WithDB, to a resolver-bound view of one).
type Manager struct {
	d    *db.DB
	opts Options
	// nextRuleID is the next rulesource identifier. Written only on the
	// update path, which is serialized above this layer; read-only views
	// built by WithDB never touch it.
	nextRuleID int64

	// stats counts manager traffic for the experiment harness. The
	// counters are updated atomically — rule extraction and dictionary
	// reads happen on the compile path, which concurrent sessions share —
	// and the pointer is shared with every WithDB view so all traffic
	// lands in one place. Racing readers go through StatsSnapshot.
	stats *Stats
}

// Stats are cumulative counters.
type Stats struct {
	ExtractCalls int64
	// ExtractedRules counts rules returned by ExtractRelevant.
	ExtractedRules int64
	ReadDictCalls  int64
}

// StatsSnapshot returns the counters read with atomic loads.
func (m *Manager) StatsSnapshot() Stats {
	return Stats{
		ExtractCalls:   atomic.LoadInt64(&m.stats.ExtractCalls),
		ExtractedRules: atomic.LoadInt64(&m.stats.ExtractedRules),
		ReadDictCalls:  atomic.LoadInt64(&m.stats.ReadDictCalls),
	}
}

// WithDB returns a read-only view of the manager bound to d — normally
// a snapshot-bound view of the same database — for the compile path
// (ExtractRelevant, BaseTypes, DerivedTypes). The view shares the
// traffic counters with the original; the rule-id allocator stays
// behind (views never update).
func (m *Manager) WithDB(d *db.DB) *Manager {
	return &Manager{d: d, opts: m.opts, stats: m.stats}
}

// Open binds a manager to the database, creating the system relations
// on first use.
func Open(d *db.DB, opts Options) (*Manager, error) {
	m := &Manager{d: d, opts: opts, stats: &Stats{}}
	type tdef struct {
		name, ddl string
		indexes   []string
	}
	defs := []tdef{
		{TabRuleSource, "CREATE TABLE rulesource (headpredname CHAR, ruleid INTEGER, ruletext CHAR)",
			[]string{"CREATE INDEX rulesource_head ON rulesource (headpredname)"}},
		{TabReachablePreds, "CREATE TABLE reachablepreds (frompredname CHAR, topredname CHAR)",
			[]string{
				"CREATE INDEX reachable_from ON reachablepreds (frompredname)",
				"CREATE INDEX reachable_to ON reachablepreds (topredname)",
			}},
		{TabIDBRels, "CREATE TABLE idbrels (predname CHAR, arity INTEGER)",
			[]string{"CREATE INDEX idbrels_pred ON idbrels (predname)"}},
		{TabIDBCols, "CREATE TABLE idbcols (predname CHAR, colno INTEGER, coltype CHAR)",
			[]string{"CREATE INDEX idbcols_pred ON idbcols (predname)"}},
		{TabEDBRels, "CREATE TABLE edbrels (predname CHAR, arity INTEGER)",
			[]string{"CREATE INDEX edbrels_pred ON edbrels (predname)"}},
		{TabEDBCols, "CREATE TABLE edbcols (predname CHAR, colno INTEGER, coltype CHAR)",
			[]string{"CREATE INDEX edbcols_pred ON edbcols (predname)"}},
	}
	for _, def := range defs {
		if d.HasTable(def.name) {
			continue
		}
		if err := d.Exec(def.ddl); err != nil {
			return nil, err
		}
		if opts.NoIndexes {
			continue
		}
		for _, ix := range def.indexes {
			if err := d.Exec(ix); err != nil {
				return nil, err
			}
		}
	}
	n, err := d.QueryCount("SELECT COUNT(*) FROM rulesource")
	if err != nil {
		return nil, err
	}
	m.nextRuleID = n + 1
	return m, nil
}

// DB returns the underlying database.
func (m *Manager) DB() *db.DB { return m.d }

// --- Extensional database ---

// InsertFact stores one fact tuple, creating the predicate's relation
// and dictionary entries on first use.
func (m *Manager) InsertFact(pred string, tu rel.Tuple) error {
	return m.InsertFacts(pred, []rel.Tuple{tu})
}

// InsertFacts bulk-loads fact tuples for a predicate.
func (m *Manager) InsertFacts(pred string, tuples []rel.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	types := make([]rel.Type, len(tuples[0]))
	for i, v := range tuples[0] {
		types[i] = v.Kind
	}
	tb, err := m.ensureFactTable(pred, types)
	if err != nil {
		return err
	}
	for _, tu := range tuples {
		if _, err := tb.Insert(tu); err != nil {
			return err
		}
	}
	return nil
}

// ensureFactTable creates (or fetches) the extensional relation of a
// predicate and its dictionary rows.
func (m *Manager) ensureFactTable(pred string, types []rel.Type) (*catalog.Table, error) {
	name := codegen.BaseTable(pred)
	if t := m.d.Catalog().Table(name); t != nil {
		if t.Schema.Len() != len(types) {
			return nil, fmt.Errorf("stored: predicate %s has arity %d, got %d", pred, t.Schema.Len(), len(types))
		}
		for i := range types {
			if t.Schema.Col(i).Type != types[i] {
				return nil, fmt.Errorf("stored: predicate %s column %d is %v, got %v",
					pred, i+1, t.Schema.Col(i).Type, types[i])
			}
		}
		return t, nil
	}
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", name)
	for i, ty := range types {
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "c%d %s", i, ty.String())
	}
	ddl.WriteByte(')')
	if err := m.d.Exec(ddl.String()); err != nil {
		return nil, err
	}
	// Dictionary entries (the extensional data dictionary the semantic
	// checker reads).
	if err := m.d.Exec(fmt.Sprintf("INSERT INTO edbrels VALUES ('%s', %d)", sqlEscape(pred), len(types))); err != nil {
		return nil, err
	}
	for i, ty := range types {
		if err := m.d.Exec(fmt.Sprintf("INSERT INTO edbcols VALUES ('%s', %d, '%s')",
			sqlEscape(pred), i, ty.String())); err != nil {
			return nil, err
		}
	}
	return m.d.Catalog().Table(name), nil
}

// CreateFactIndex builds an index on the given 0-based columns of a
// fact relation.
func (m *Manager) CreateFactIndex(pred string, cols []int) error {
	name := codegen.BaseTable(pred)
	t := m.d.Catalog().Table(name)
	if t == nil {
		return fmt.Errorf("stored: no facts for predicate %s", pred)
	}
	colNames := make([]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= t.Schema.Len() {
			return fmt.Errorf("stored: column %d out of range for %s", c, pred)
		}
		colNames[i] = fmt.Sprintf("c%d", c)
	}
	idxName := fmt.Sprintf("%s_ix_%s", name, strings.Join(colNames, "_"))
	if m.d.Catalog().Index(idxName) != nil {
		return nil // already indexed
	}
	_, err := m.d.Catalog().CreateIndex(idxName, name, colNames, false)
	return err
}

// FactCount returns the number of stored facts for a predicate.
func (m *Manager) FactCount(pred string) int {
	return m.d.TableRows(codegen.BaseTable(pred))
}

// BaseTypes reads the extensional data dictionary for the given
// predicates (the paper's t_readdict operation, Test 2).
func (m *Manager) BaseTypes(preds []string) (map[string][]rel.Type, error) {
	atomic.AddInt64(&m.stats.ReadDictCalls, 1)
	out := make(map[string][]rel.Type)
	for _, p := range preds {
		rows, err := m.d.Query(fmt.Sprintf(
			"SELECT colno, coltype FROM edbcols WHERE predname = '%s'", sqlEscape(p)))
		if err != nil {
			return nil, err
		}
		if len(rows.Tuples) == 0 {
			continue
		}
		types := make([]rel.Type, len(rows.Tuples))
		for _, tu := range rows.Tuples {
			colno := int(tu[0].Int)
			ty, err := rel.ParseType(tu[1].Str)
			if err != nil {
				return nil, fmt.Errorf("stored: dictionary corruption for %s: %w", p, err)
			}
			if colno < 0 || colno >= len(types) {
				return nil, fmt.Errorf("stored: dictionary corruption for %s: column %d", p, colno)
			}
			types[colno] = ty
		}
		out[p] = types
	}
	return out, nil
}

// DerivedTypes reads the intensional data dictionary for the given
// predicates.
func (m *Manager) DerivedTypes(preds []string) (map[string][]rel.Type, error) {
	atomic.AddInt64(&m.stats.ReadDictCalls, 1)
	out := make(map[string][]rel.Type)
	for _, p := range preds {
		rows, err := m.d.Query(fmt.Sprintf(
			"SELECT colno, coltype FROM idbcols WHERE predname = '%s'", sqlEscape(p)))
		if err != nil {
			return nil, err
		}
		if len(rows.Tuples) == 0 {
			continue
		}
		types := make([]rel.Type, len(rows.Tuples))
		for _, tu := range rows.Tuples {
			colno := int(tu[0].Int)
			ty, err := rel.ParseType(tu[1].Str)
			if err != nil {
				return nil, fmt.Errorf("stored: dictionary corruption for %s: %w", p, err)
			}
			if colno < 0 || colno >= len(types) {
				return nil, fmt.Errorf("stored: dictionary corruption for %s: column %d", p, colno)
			}
			types[colno] = ty
		}
		out[p] = types
	}
	return out, nil
}

// --- Intensional database: extraction ---

// ExtractRelevant returns the stored rules needed to solve the given
// predicates. With compiled rule storage this is a single indexed query
// joining reachablepreds with rulesource (paper §4.1); without it, only
// directly-defining rules are returned and the compiler iterates.
func (m *Manager) ExtractRelevant(preds []string) ([]dlog.Clause, error) {
	atomic.AddInt64(&m.stats.ExtractCalls, 1)
	if len(preds) == 0 {
		return nil, nil
	}
	var parts []string
	for _, p := range preds {
		e := sqlEscape(p)
		parts = append(parts, fmt.Sprintf(
			"SELECT ruleid, ruletext FROM rulesource WHERE headpredname = '%s'", e))
		if !m.opts.NoCompiledRules {
			parts = append(parts, fmt.Sprintf(
				"SELECT rs.ruleid, rs.ruletext FROM reachablepreds rp, rulesource rs "+
					"WHERE rp.frompredname = '%s' AND rs.headpredname = rp.topredname", e))
		}
	}
	rows, err := m.d.Query(strings.Join(parts, " UNION "))
	if err != nil {
		return nil, err
	}
	// Deterministic order by rule id.
	sort.Slice(rows.Tuples, func(i, j int) bool {
		return rows.Tuples[i][0].Int < rows.Tuples[j][0].Int
	})
	out := make([]dlog.Clause, 0, len(rows.Tuples))
	for _, tu := range rows.Tuples {
		c, err := dlog.ParseClause(tu[1].Str)
		if err != nil {
			return nil, fmt.Errorf("stored: corrupt rule %d: %w", tu[0].Int, err)
		}
		out = append(out, c)
	}
	atomic.AddInt64(&m.stats.ExtractedRules, int64(len(out)))
	return out, nil
}

// RuleCount returns the number of stored rules.
func (m *Manager) RuleCount() int { return m.d.TableRows(TabRuleSource) }

// ReachableEdges returns the number of compiled reachability edges.
func (m *Manager) ReachableEdges() int { return m.d.TableRows(TabReachablePreds) }

func sqlEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }
