package stored

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/rel"
)

func open(t *testing.T, opts Options) (*db.DB, *Manager) {
	t.Helper()
	d := db.OpenMemory()
	t.Cleanup(func() { d.Close() })
	m, err := Open(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

func clause(s string) dlog.Clause { return dlog.MustParseClause(s) }

func ruleSet(rules []dlog.Clause) string {
	out := make([]string, len(rules))
	for i, c := range rules {
		out[i] = c.String()
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

func TestSystemTablesCreated(t *testing.T) {
	d, _ := open(t, Options{})
	for _, tab := range []string{TabRuleSource, TabReachablePreds, TabIDBRels, TabIDBCols, TabEDBRels, TabEDBCols} {
		if !d.HasTable(tab) {
			t.Fatalf("missing system table %s", tab)
		}
	}
}

func TestInsertFactsAndDictionary(t *testing.T) {
	_, m := open(t, Options{})
	err := m.InsertFacts("parent", []rel.Tuple{
		{rel.NewString("john"), rel.NewString("mary")},
		{rel.NewString("mary"), rel.NewString("ann")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FactCount("parent") != 2 {
		t.Fatalf("fact count = %d", m.FactCount("parent"))
	}
	types, err := m.BaseTypes([]string{"parent", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || len(types["parent"]) != 2 || types["parent"][0] != rel.TypeString {
		t.Fatalf("types = %v", types)
	}
}

func TestInsertFactsTypeConflicts(t *testing.T) {
	_, m := open(t, Options{})
	if err := m.InsertFact("p", rel.Tuple{rel.NewString("a"), rel.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertFact("p", rel.Tuple{rel.NewString("a")}); err == nil {
		t.Fatal("arity change accepted")
	}
	if err := m.InsertFact("p", rel.Tuple{rel.NewInt(1), rel.NewInt(1)}); err == nil {
		t.Fatal("type change accepted")
	}
}

func TestCreateFactIndex(t *testing.T) {
	d, m := open(t, Options{})
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	if err := m.CreateFactIndex("e", []int{0}); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := m.CreateFactIndex("e", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateFactIndex("e", []int{5}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := m.CreateFactIndex("ghost", []int{0}); err == nil {
		t.Fatal("index on missing predicate accepted")
	}
	if d.Catalog().Index("edb_e_ix_c0") == nil {
		t.Fatal("index not created")
	}
}

func commitRules(t *testing.T, m *Manager, srcs ...string) UpdateStats {
	t.Helper()
	var rules []dlog.Clause
	for _, s := range srcs {
		rules = append(rules, clause(s))
	}
	// Any base predicates must already exist; tests load them first.
	st, err := m.Update(rules)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestUpdateStoresRulesAndClosure(t *testing.T) {
	_, m := open(t, Options{})
	m.InsertFact("parent", rel.Tuple{rel.NewString("john"), rel.NewString("mary")})
	st := commitRules(t, m,
		"ancestor(X, Y) :- parent(X, Y).",
		"ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
	)
	if st.NewRules != 2 || st.Total <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if m.RuleCount() != 2 {
		t.Fatalf("rule count = %d", m.RuleCount())
	}
	// ancestor reaches parent and itself: 2 edges.
	if m.ReachableEdges() != 2 {
		t.Fatalf("reachable edges = %d", m.ReachableEdges())
	}
	types, err := m.DerivedTypes([]string{"ancestor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(types["ancestor"]) != 2 || types["ancestor"][1] != rel.TypeString {
		t.Fatalf("derived types = %v", types)
	}
}

func TestExtractRelevant(t *testing.T) {
	_, m := open(t, Options{})
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	commitRules(t, m,
		"a(X, Y) :- b(X, Y).",
		"b(X, Y) :- c(X, Y).",
		"c(X, Y) :- e(X, Y).",
		"z(X, Y) :- e(X, Y).", // irrelevant to a
	)
	rules, err := m.ExtractRelevant([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	want := ruleSet([]dlog.Clause{
		clause("a(X, Y) :- b(X, Y)."),
		clause("b(X, Y) :- c(X, Y)."),
		clause("c(X, Y) :- e(X, Y)."),
	})
	if ruleSet(rules) != want {
		t.Fatalf("extracted:\n%s\nwant:\n%s", ruleSet(rules), want)
	}
}

func TestExtractRelevantWithoutCompiledStorage(t *testing.T) {
	_, m := open(t, Options{NoCompiledRules: true})
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	commitRules(t, m,
		"a(X, Y) :- b(X, Y).",
		"b(X, Y) :- e(X, Y).",
	)
	if m.ReachableEdges() != 0 {
		t.Fatal("NoCompiledRules still wrote reachablepreds")
	}
	// Direct extraction returns only a's own rules...
	rules, err := m.ExtractRelevant([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("direct extraction returned %d rules", len(rules))
	}
	// ...so callers iterate (as the compiler does).
	rules2, err := m.ExtractRelevant([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules2) != 1 {
		t.Fatalf("second hop returned %d rules", len(rules2))
	}
}

func TestUpdateRejectsFacts(t *testing.T) {
	_, m := open(t, Options{})
	if _, err := m.Update([]dlog.Clause{clause("p(a).")}); err == nil {
		t.Fatal("fact accepted by Update")
	}
}

func TestUpdateTypeConsistencyAcrossCommits(t *testing.T) {
	_, m := open(t, Options{})
	m.InsertFact("s", rel.Tuple{rel.NewString("a")})
	m.InsertFact("n", rel.Tuple{rel.NewInt(1)})
	commitRules(t, m, "p(X) :- s(X).")
	// Second commit tries to redefine p with an int column.
	if _, err := m.Update([]dlog.Clause{clause("p(X) :- n(X).")}); err == nil {
		t.Fatal("type redefinition accepted")
	}
}

func TestUpdateUndefinedBaseRejected(t *testing.T) {
	_, m := open(t, Options{})
	if _, err := m.Update([]dlog.Clause{clause("p(X) :- nothing(X).")}); err == nil {
		t.Fatal("rule over undefined predicate accepted")
	}
}

func TestIncrementalUpstreamPropagation(t *testing.T) {
	d, m := open(t, Options{})
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	m.InsertFact("f", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	commitRules(t, m,
		"top(X, Y) :- mid(X, Y).",
		"mid(X, Y) :- e(X, Y).",
	)
	// Commit extends mid; top's closure must grow transitively.
	commitRules(t, m, "mid(X, Y) :- low(X, Y).", "low(X, Y) :- f(X, Y).")
	rows, err := d.Query("SELECT topredname FROM reachablepreds WHERE frompredname = 'top'")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, tu := range rows.Tuples {
		got = append(got, tu[0].Str)
	}
	sort.Strings(got)
	if strings.Join(got, ",") != "e,f,low,mid" {
		t.Fatalf("top reaches %v", got)
	}
}

func TestIncrementalCycleCreation(t *testing.T) {
	d, m := open(t, Options{})
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	commitRules(t, m,
		"x(A, B) :- y(A, B).",
		"y(A, B) :- e(A, B).",
	)
	// New rule closes a cycle: y :- x. Now x reaches x and y reaches y.
	commitRules(t, m, "y(A, B) :- x(A, B).")
	for _, p := range []string{"x", "y"} {
		rows, err := d.Query(fmt.Sprintf(
			"SELECT topredname FROM reachablepreds WHERE frompredname = '%s'", p))
		if err != nil {
			t.Fatal(err)
		}
		found := map[string]bool{}
		for _, tu := range rows.Tuples {
			found[tu[0].Str] = true
		}
		if !found["x"] || !found["y"] || !found["e"] {
			t.Fatalf("%s reaches %v", p, found)
		}
	}
}

func TestIncrementalMatchesFromScratch(t *testing.T) {
	// Property: after a sequence of updates, reachablepreds equals the
	// closure computed from scratch over all stored rules.
	d, m := open(t, Options{})
	m.InsertFact("e0", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	batches := [][]string{
		{"p0(X, Y) :- e0(X, Y)."},
		{"p1(X, Y) :- p0(X, Y).", "p2(X, Y) :- p1(X, Y)."},
		{"p0(X, Y) :- p3(X, Y).", "p3(X, Y) :- e0(X, Y)."},
		{"p3(X, Y) :- p2(X, Y)."}, // closes a big cycle
		{"p4(X, Y) :- p2(X, Y), p0(X, Y)."},
	}
	var all []dlog.Clause
	for _, b := range batches {
		var rules []dlog.Clause
		for _, s := range b {
			rules = append(rules, clause(s))
		}
		all = append(all, rules...)
		if _, err := m.Update(rules); err != nil {
			t.Fatal(err)
		}
	}
	// From-scratch closure via pcg on all rules.
	fromScratch := make(map[string]map[string]bool)
	{
		g := buildGraph(all)
		for p, reach := range g {
			fromScratch[p] = reach
		}
	}
	rows, err := d.Query("SELECT frompredname, topredname FROM reachablepreds")
	if err != nil {
		t.Fatal(err)
	}
	gotEdges := make(map[string]map[string]bool)
	for _, tu := range rows.Tuples {
		if gotEdges[tu[0].Str] == nil {
			gotEdges[tu[0].Str] = make(map[string]bool)
		}
		gotEdges[tu[0].Str][tu[1].Str] = true
	}
	for p, want := range fromScratch {
		got := gotEdges[p]
		if len(got) != len(want) {
			t.Fatalf("closure of %s: got %v want %v", p, got, want)
		}
		for q := range want {
			if !got[q] {
				t.Fatalf("closure of %s missing %s", p, q)
			}
		}
	}
	if len(gotEdges) != len(fromScratch) {
		t.Fatalf("closure covers %d preds, want %d", len(gotEdges), len(fromScratch))
	}
}

func TestUpdateStatsBreakdown(t *testing.T) {
	_, m := open(t, Options{})
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	st := commitRules(t, m,
		"a(X, Y) :- b(X, Y).",
		"b(X, Y) :- e(X, Y).",
	)
	if st.Store <= 0 || st.TC <= 0 {
		t.Fatalf("breakdown missing: %+v", st)
	}
	if st.TCEdges != 3 { // a->{b,e}, b->{e}
		t.Fatalf("TCEdges = %d", st.TCEdges)
	}
}

func TestNoIndexesOption(t *testing.T) {
	d, m := open(t, Options{NoIndexes: true})
	if d.Catalog().Index("rulesource_head") != nil {
		t.Fatal("index created despite NoIndexes")
	}
	m.InsertFact("e", rel.Tuple{rel.NewString("a"), rel.NewString("b")})
	commitRules(t, m, "p(X, Y) :- e(X, Y).")
	rules, err := m.ExtractRelevant([]string{"p"})
	if err != nil || len(rules) != 1 {
		t.Fatalf("extraction without indexes: %d rules, %v", len(rules), err)
	}
}

// buildGraph computes reachability per pred from a rule list (test
// reference implementation, independent of pcg).
func buildGraph(rules []dlog.Clause) map[string]map[string]bool {
	dep := make(map[string]map[string]bool)
	for _, c := range rules {
		if dep[c.Head.Pred] == nil {
			dep[c.Head.Pred] = make(map[string]bool)
		}
		for _, a := range c.Body {
			dep[c.Head.Pred][a.Pred] = true
		}
	}
	out := make(map[string]map[string]bool)
	for p := range dep {
		reach := make(map[string]bool)
		var stack []string
		for q := range dep[p] {
			stack = append(stack, q)
		}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[q] {
				continue
			}
			reach[q] = true
			for z := range dep[q] {
				stack = append(stack, z)
			}
		}
		out[p] = reach
	}
	return out
}
