package stored

import (
	"fmt"
	"sort"
	"time"

	"dkbms/internal/dlog"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
	"dkbms/internal/typeinf"
)

// UpdateStats breaks down a stored-D/KB update the way the paper's
// Test 9 reports it.
type UpdateStats struct {
	// Extract is the time to pull the rules relevant to the workspace
	// rules out of the stored D/KB (t_uextract).
	Extract time.Duration
	// TC is the time to compute and write the incremental transitive
	// closure of the PCG (t_utc). Zero when compiled rule storage is
	// disabled.
	TC time.Duration
	// Store is the time to write the source form and dictionary rows
	// (t_ustore).
	Store time.Duration
	// Total wall-clock update time (t_u).
	Total time.Duration
	// NewRules is the number of workspace rules committed (R_w).
	NewRules int
	// TCEdges is the number of reachability edges written.
	TCEdges int
}

// Update commits workspace rules into the stored D/KB (paper §4.3):
//
//  1. extract from the stored D/KB the rules relevant to the new ones,
//  2. build the PCG of the composite rule set and compute its
//     transitive closure,
//  3. type-check the new predicates against the dictionaries,
//  4. update idbrels/idbcols, reachablepreds (incrementally) and
//     rulesource.
//
// Only intensional structures are updated; facts flow through
// InsertFacts. As in the paper, no integrity checking beyond the type
// check is attempted.
func (m *Manager) Update(rules []dlog.Clause) (UpdateStats, error) {
	var st UpdateStats
	if len(rules) == 0 {
		return st, nil
	}
	total := time.Now()
	st.NewRules = len(rules)

	for _, c := range rules {
		if c.IsFact() {
			return st, fmt.Errorf("stored: Update takes rules only; fact %q belongs in the extensional database", c.String())
		}
	}

	// --- Step 1: composite rule set = new rules + relevant stored
	// rules, iterated to a fixpoint over body references.
	t0 := time.Now()
	composite := append([]dlog.Clause(nil), rules...)
	have := make(map[string]bool)
	heads := make(map[string]bool)
	for _, c := range rules {
		have[c.Head.Pred] = true
		heads[c.Head.Pred] = true
	}
	frontier := make(map[string]bool)
	for _, c := range rules {
		for _, a := range c.Body {
			frontier[a.Pred] = true
		}
	}
	// The heads themselves may already have stored rules that must be
	// part of the composite closure.
	for h := range heads {
		frontier[h] = true
	}
	for len(frontier) > 0 {
		var ask []string
		for p := range frontier {
			ask = append(ask, p)
		}
		sort.Strings(ask)
		extracted, err := m.ExtractRelevant(ask)
		if err != nil {
			return st, err
		}
		frontier = make(map[string]bool)
		seenRule := make(map[string]bool)
		for _, c := range composite {
			seenRule[c.String()] = true
		}
		for _, c := range extracted {
			if seenRule[c.String()] {
				continue
			}
			seenRule[c.String()] = true
			composite = append(composite, c)
			have[c.Head.Pred] = true
			for _, a := range c.Body {
				if !have[a.Pred] {
					frontier[a.Pred] = true
				}
			}
		}
		// Drop frontier preds with no stored rules (base predicates).
		for p := range frontier {
			if have[p] {
				delete(frontier, p)
			}
		}
		if len(extracted) == 0 {
			break
		}
	}
	st.Extract = time.Since(t0)

	// --- Step 2+3: PCG of the composite, closure, and type check.
	g := pcg.Build(composite)
	tc := g.TransitiveClosure()

	derivedTypes, err := m.typeCheckComposite(g, composite)
	if err != nil {
		return st, err
	}

	// --- Step 4: write dictionaries and rule storage.
	// 4a. idbrels/idbcols for newly-defined predicates.
	t0 = time.Now()
	var newPreds []string
	for h := range heads {
		newPreds = append(newPreds, h)
	}
	sort.Strings(newPreds)
	for _, p := range newPreds {
		types := derivedTypes[p]
		known, err := m.DerivedTypes([]string{p})
		if err != nil {
			return st, err
		}
		if existing, ok := known[p]; ok {
			if len(existing) != len(types) {
				return st, fmt.Errorf("stored: predicate %s stored with arity %d, update has %d", p, len(existing), len(types))
			}
			for i := range existing {
				if existing[i] != types[i] {
					return st, fmt.Errorf("stored: predicate %s column %d stored as %v, update infers %v",
						p, i+1, existing[i], types[i])
				}
			}
			continue
		}
		if err := m.d.Exec(fmt.Sprintf("INSERT INTO idbrels VALUES ('%s', %d)", sqlEscape(p), len(types))); err != nil {
			return st, err
		}
		for i, ty := range types {
			if err := m.d.Exec(fmt.Sprintf("INSERT INTO idbcols VALUES ('%s', %d, '%s')",
				sqlEscape(p), i, ty.String())); err != nil {
				return st, err
			}
		}
	}
	// 4b. rulesource rows for the new rules.
	for _, c := range rules {
		stmt := fmt.Sprintf("INSERT INTO rulesource VALUES ('%s', %d, '%s')",
			sqlEscape(c.Head.Pred), m.nextRuleID, sqlEscape(c.String()))
		m.nextRuleID++
		if err := m.d.Exec(stmt); err != nil {
			return st, err
		}
	}
	st.Store = time.Since(t0)

	// 4c. incremental reachablepreds maintenance.
	if !m.opts.NoCompiledRules {
		t0 = time.Now()
		if err := m.refreshReachability(heads, tc); err != nil {
			return st, err
		}
		st.TC = time.Since(t0)
	}

	st.TCEdges = 0
	for _, reach := range tc {
		st.TCEdges += len(reach)
	}
	st.Total = time.Since(total)
	return st, nil
}

// refreshReachability rewrites the reachablepreds rows affected by an
// update: the updated heads themselves, plus every stored predicate
// that could already reach one of them (found through the compiled
// closure — the "incremental" part: untouched regions of the rule base
// are never visited).
func (m *Manager) refreshReachability(heads map[string]bool, tc map[string]map[string]bool) error {
	// New reachability of each updated head, from the composite TC.
	headReach := make(map[string]map[string]bool)
	for h := range heads {
		headReach[h] = tc[h]
	}

	// Upstream predicates: frompred rows pointing at any updated head.
	upstream := make(map[string]bool)
	for h := range heads {
		rows, err := m.d.Query(fmt.Sprintf(
			"SELECT frompredname FROM reachablepreds WHERE topredname = '%s'", sqlEscape(h)))
		if err != nil {
			return err
		}
		for _, tu := range rows.Tuples {
			p := tu[0].Str
			if !heads[p] {
				upstream[p] = true
			}
		}
	}

	// Updated heads: replace their rows wholesale.
	var hs []string
	for h := range heads {
		hs = append(hs, h)
	}
	sort.Strings(hs)
	for _, h := range hs {
		if err := m.d.Exec(fmt.Sprintf(
			"DELETE FROM reachablepreds WHERE frompredname = '%s'", sqlEscape(h))); err != nil {
			return err
		}
		if err := m.insertReach(h, headReach[h]); err != nil {
			return err
		}
	}

	// Upstream predicates: their old reachability remains valid and
	// gains the new reachability of every updated head they reach.
	var ups []string
	for p := range upstream {
		ups = append(ups, p)
	}
	sort.Strings(ups)
	for _, p := range ups {
		rows, err := m.d.Query(fmt.Sprintf(
			"SELECT topredname FROM reachablepreds WHERE frompredname = '%s'", sqlEscape(p)))
		if err != nil {
			return err
		}
		old := make(map[string]bool, len(rows.Tuples))
		for _, tu := range rows.Tuples {
			old[tu[0].Str] = true
		}
		add := make(map[string]bool)
		for h := range heads {
			if !old[h] {
				continue
			}
			for q := range headReach[h] {
				if !old[q] && q != p {
					add[q] = true
				}
			}
			// A head on a new cycle through p could even reach p; keep
			// the self edge out (reachablepreds stores proper closure
			// including self only via cycles, mirroring pcg semantics).
			if headReach[h][p] {
				add[p] = true
			}
		}
		if err := m.insertReach(p, add); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) insertReach(from string, to map[string]bool) error {
	var ts []string
	for q := range to {
		ts = append(ts, q)
	}
	sort.Strings(ts)
	for _, q := range ts {
		if err := m.d.Exec(fmt.Sprintf("INSERT INTO reachablepreds VALUES ('%s', '%s')",
			sqlEscape(from), sqlEscape(q))); err != nil {
			return err
		}
	}
	return nil
}

// typeCheckComposite runs the semantic checks of §4.3 step 4 over the
// composite rule set, returning inferred types for its derived
// predicates.
func (m *Manager) typeCheckComposite(g *pcg.Graph, composite []dlog.Clause) (map[string][]rel.Type, error) {
	var roots []string
	seen := make(map[string]bool)
	for _, c := range composite {
		if !seen[c.Head.Pred] {
			seen[c.Head.Pred] = true
			roots = append(roots, c.Head.Pred)
		}
	}
	sort.Strings(roots)
	analysis, err := pcg.Analyze(g, roots...)
	if err != nil {
		return nil, err
	}
	baseTypes, err := m.BaseTypes(analysis.BasePreds)
	if err != nil {
		return nil, err
	}
	for _, p := range analysis.BasePreds {
		if _, ok := baseTypes[p]; !ok {
			return nil, fmt.Errorf("stored: predicate %s is neither defined by rules nor present in the extensional database", p)
		}
	}
	return typeinf.Infer(analysis.Order, baseTypes)
}
