package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stressMarker is the single record each stress page carries: derived
// from the page ID, so any cross-page mixup or lost write-back shows up
// as a content mismatch.
func stressMarker(id PageID) []byte {
	return []byte(fmt.Sprintf("page-%08d", id))
}

// TestPagerConcurrentStress hammers a tiny pool (2 shards x 4 frames)
// with concurrent Fetch/Unpin/Allocate from many goroutines, so the
// working set is far larger than the pool and eviction with write-back
// runs constantly under load. Run with -race, it exercises the sharded
// latches, the atomic pin counts and the grow-then-publish ordering in
// Allocate; content checks catch any page served from the wrong frame
// or lost across eviction.
func TestPagerConcurrentStress(t *testing.T) {
	p := NewMemPager(8)
	if p.Shards() < 2 {
		t.Fatalf("want a striped pool for this test, got %d shard(s)", p.Shards())
	}

	// Seed a working set three times the pool size.
	var ids []PageID
	for i := 0; i < 24; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.Insert(stressMarker(pg.ID)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pg.ID)
		p.Unpin(pg)
	}

	const workers = 8
	var mu sync.Mutex // guards ids
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				switch {
				case r.Intn(10) == 0:
					// Grow the working set under concurrent traffic.
					pg, err := p.Allocate()
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := pg.Insert(stressMarker(pg.ID)); err != nil {
						t.Error(err)
						p.Unpin(pg)
						return
					}
					mu.Lock()
					ids = append(ids, pg.ID)
					mu.Unlock()
					p.Unpin(pg)
				default:
					mu.Lock()
					var id PageID
					if r.Intn(4) == 0 {
						id = ids[0] // hot page: contended pin counts
					} else {
						id = ids[r.Intn(len(ids))]
					}
					mu.Unlock()
					pg, err := p.Fetch(id)
					if err != nil {
						t.Errorf("fetch %d: %v", id, err)
						return
					}
					if got := pg.Record(0); !bytes.Equal(got, stressMarker(id)) {
						t.Errorf("page %d served %q, want %q", id, got, stressMarker(id))
						p.Unpin(pg)
						return
					}
					p.Unpin(pg)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions: the stress never exceeded the pool")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("implausible traffic: %+v", st)
	}

	// Quiesced, every page (including evicted ones) must read back
	// intact and end the test unpinned.
	for _, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("final fetch %d: %v", id, err)
		}
		if got := pg.Record(0); !bytes.Equal(got, stressMarker(id)) {
			t.Fatalf("page %d lost content across eviction: %q", id, got)
		}
		if n := pg.pins.Load(); n != 1 {
			t.Fatalf("page %d pin count %d after quiesce, want 1", id, n)
		}
		p.Unpin(pg)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPagerConcurrentSamePage pins and unpins one page from many
// goroutines at once: the pure atomic-pin fast path. The page must
// never be evicted while pinned, and the pin count must return to zero.
func TestPagerConcurrentSamePage(t *testing.T) {
	p := NewMemPager(4)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("shared")); err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	p.Unpin(pg)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pg, err := p.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(pg.Record(0), []byte("shared")) {
					t.Error("content changed under concurrent pins")
					p.Unpin(pg)
					return
				}
				p.Unpin(pg)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	pg, err = p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if n := pg.pins.Load(); n != 1 {
		t.Fatalf("pin count %d after quiesce, want 1", n)
	}
	p.Unpin(pg)
}
