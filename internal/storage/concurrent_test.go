package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stressMarker is the single record each stress page carries: derived
// from the page ID, so any cross-page mixup or lost write-back shows up
// as a content mismatch.
func stressMarker(id PageID) []byte {
	return []byte(fmt.Sprintf("page-%08d", id))
}

// TestPagerConcurrentStress hammers a tiny pool (2 shards x 4 frames)
// with concurrent Fetch/Unpin/Allocate from many goroutines, so the
// working set is far larger than the pool and eviction with write-back
// runs constantly under load. Run with -race, it exercises the sharded
// latches, the atomic pin counts and the grow-then-publish ordering in
// Allocate; content checks catch any page served from the wrong frame
// or lost across eviction.
func TestPagerConcurrentStress(t *testing.T) {
	p := NewMemPager(8)
	if p.Shards() < 2 {
		t.Fatalf("want a striped pool for this test, got %d shard(s)", p.Shards())
	}

	// Seed a working set three times the pool size.
	var ids []PageID
	for i := 0; i < 24; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.Insert(stressMarker(pg.ID)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pg.ID)
		p.Unpin(pg)
	}

	const workers = 8
	var mu sync.Mutex // guards ids
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				switch {
				case r.Intn(10) == 0:
					// Grow the working set under concurrent traffic.
					pg, err := p.Allocate()
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := pg.Insert(stressMarker(pg.ID)); err != nil {
						t.Error(err)
						p.Unpin(pg)
						return
					}
					mu.Lock()
					ids = append(ids, pg.ID)
					mu.Unlock()
					p.Unpin(pg)
				default:
					mu.Lock()
					var id PageID
					if r.Intn(4) == 0 {
						id = ids[0] // hot page: contended pin counts
					} else {
						id = ids[r.Intn(len(ids))]
					}
					mu.Unlock()
					pg, err := p.Fetch(id)
					if err != nil {
						t.Errorf("fetch %d: %v", id, err)
						return
					}
					if got := pg.Record(0); !bytes.Equal(got, stressMarker(id)) {
						t.Errorf("page %d served %q, want %q", id, got, stressMarker(id))
						p.Unpin(pg)
						return
					}
					p.Unpin(pg)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions: the stress never exceeded the pool")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("implausible traffic: %+v", st)
	}

	// Quiesced, every page (including evicted ones) must read back
	// intact and end the test unpinned.
	for _, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("final fetch %d: %v", id, err)
		}
		if got := pg.Record(0); !bytes.Equal(got, stressMarker(id)) {
			t.Fatalf("page %d lost content across eviction: %q", id, got)
		}
		if n := pg.pins.Load(); n != 1 {
			t.Fatalf("page %d pin count %d after quiesce, want 1", id, n)
		}
		p.Unpin(pg)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPagerConcurrentSamePage pins and unpins one page from many
// goroutines at once: the pure atomic-pin fast path. The page must
// never be evicted while pinned, and the pin count must return to zero.
func TestPagerConcurrentSamePage(t *testing.T) {
	p := NewMemPager(4)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Insert([]byte("shared")); err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	p.Unpin(pg)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pg, err := p.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(pg.Record(0), []byte("shared")) {
					t.Error("content changed under concurrent pins")
					p.Unpin(pg)
					return
				}
				p.Unpin(pg)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	pg, err = p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if n := pg.pins.Load(); n != 1 {
		t.Fatalf("pin count %d after quiesce, want 1", n)
	}
	p.Unpin(pg)
}

// TestPagerLatchFreeMissRead targets the miss path's latch-free read:
// Fetch drops the shard latch around the backing-store read and retries
// when an eviction write-back overlaps it (the evictGen recheck). A
// file-backed pool one quarter the working-set size keeps cold misses
// and dirty evictions running concurrently. Each page's record is a
// marker prefix plus a run of one version byte; writers bump the version
// under a per-page test lock (exclusive in-memory access, like the heap
// layer's locking above the pager), so a torn read — a page assembled
// from bytes of two different write-backs — shows up as a mixed-version
// run.
func TestPagerLatchFreeMissRead(t *testing.T) {
	path := t.TempDir() + "/miss.db"
	p, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	const (
		pages   = 32
		fillLen = 512
	)
	record := func(id PageID, version byte) []byte {
		rec := make([]byte, len(stressMarker(id))+fillLen)
		copy(rec, stressMarker(id))
		for i := len(stressMarker(id)); i < len(rec); i++ {
			rec[i] = version
		}
		return rec
	}
	var ids []PageID
	for i := 0; i < pages; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.Insert(record(pg.ID, 0)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pg.ID)
		p.Unpin(pg)
	}
	pageLocks := make([]sync.Mutex, pages)
	versions := make([]byte, pages)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 977))
			for i := 0; i < 300; i++ {
				slot := r.Intn(len(ids))
				id := ids[slot]
				pageLocks[slot].Lock()
				pg, err := p.Fetch(id)
				if err != nil {
					pageLocks[slot].Unlock()
					t.Errorf("fetch %d: %v", id, err)
					return
				}
				got := pg.Record(0)
				prefix := stressMarker(id)
				if !bytes.Equal(got[:len(prefix)], prefix) {
					t.Errorf("page %d served marker %q, want %q", id, got[:len(prefix)], prefix)
				}
				fill := got[len(prefix):]
				for j := 1; j < len(fill); j++ {
					if fill[j] != fill[0] {
						t.Errorf("page %d: mixed versions %d and %d at offset %d (torn latch-free read?)",
							id, fill[0], fill[j], j)
						break
					}
				}
				if r.Intn(3) == 0 {
					// Bump the version in place so the page is dirty and
					// its eviction write-back overlaps cold reads.
					versions[slot]++
					copy(got, record(id, versions[slot]))
					pg.Dirty = true
				}
				p.Unpin(pg)
				pageLocks[slot].Unlock()
				if t.Failed() {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := p.Stats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("stress never exercised the miss/eviction paths: %+v", st)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
