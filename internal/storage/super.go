package storage

import (
	"encoding/binary"
	"fmt"
)

// Superblock layout (page 0 of every database file):
//
//	offset 0: magic "DKBM"
//	offset 4: uint32 format version
//	offset 8: uint32 free-list head page ID
//	offset 12: uint32 root (catalog heap head) page ID
//
// The free list reuses the page-header next field of the freed pages
// themselves, so freeing a heap chain is O(1) writes per page and
// allocation pops in O(1).
const (
	superMagic   = "DKBM"
	superVersion = 1

	superOffMagic   = 0
	superOffVersion = 4
	superOffFree    = 8
	superOffRoot    = 12
)

// EnsureSuperblock formats page 0 as a superblock on a fresh store, or
// validates an existing one. It returns the root page ID recorded there
// (InvalidPageID on a fresh store).
func (p *Pager) EnsureSuperblock() (PageID, error) {
	if p.PageCount() == 0 {
		pg, err := p.Allocate()
		if err != nil {
			return InvalidPageID, err
		}
		defer p.Unpin(pg)
		if pg.ID != 0 {
			return InvalidPageID, fmt.Errorf("storage: superblock allocated as page %d", pg.ID)
		}
		copy(pg.Data[superOffMagic:], superMagic)
		binary.BigEndian.PutUint32(pg.Data[superOffVersion:], superVersion)
		binary.BigEndian.PutUint32(pg.Data[superOffFree:], uint32(InvalidPageID))
		binary.BigEndian.PutUint32(pg.Data[superOffRoot:], uint32(InvalidPageID))
		pg.Dirty = true
		p.setHasSuper()
		return InvalidPageID, nil
	}
	pg, err := p.Fetch(0)
	if err != nil {
		return InvalidPageID, err
	}
	defer p.Unpin(pg)
	if string(pg.Data[superOffMagic:superOffMagic+4]) != superMagic {
		return InvalidPageID, fmt.Errorf("storage: bad magic — not a dkbms database")
	}
	if v := binary.BigEndian.Uint32(pg.Data[superOffVersion:]); v != superVersion {
		return InvalidPageID, fmt.Errorf("storage: format version %d, want %d", v, superVersion)
	}
	p.setHasSuper()
	return PageID(binary.BigEndian.Uint32(pg.Data[superOffRoot:])), nil
}

func (p *Pager) setHasSuper() {
	p.hasSuper.Store(true)
}

func (p *Pager) superblockPresent() bool {
	return p.hasSuper.Load()
}

// SetRoot records the catalog heap head in the superblock.
func (p *Pager) SetRoot(id PageID) error {
	pg, err := p.Fetch(0)
	if err != nil {
		return err
	}
	defer p.Unpin(pg)
	binary.BigEndian.PutUint32(pg.Data[superOffRoot:], uint32(id))
	pg.Dirty = true
	return nil
}

func (p *Pager) freeHead() (PageID, error) {
	pg, err := p.Fetch(0)
	if err != nil {
		return InvalidPageID, err
	}
	defer p.Unpin(pg)
	return PageID(binary.BigEndian.Uint32(pg.Data[superOffFree:])), nil
}

func (p *Pager) setFreeHead(id PageID) error {
	pg, err := p.Fetch(0)
	if err != nil {
		return err
	}
	defer p.Unpin(pg)
	binary.BigEndian.PutUint32(pg.Data[superOffFree:], uint32(id))
	pg.Dirty = true
	return nil
}

// AllocateReusable returns a pinned, freshly initialized page, preferring
// the free list over growing the store. Heaps and the catalog use this;
// raw Allocate remains for the superblock itself.
func (p *Pager) AllocateReusable() (*Page, error) {
	if !p.superblockPresent() {
		// Bare pager (no superblock, e.g. unit tests): just grow.
		return p.Allocate()
	}
	// The pop below is a multi-step read-modify-write of the free list;
	// flMu keeps concurrent allocators (e.g. two sessions materializing
	// temp tables) from popping the same page twice.
	//dkblint:locksafe free-list transactions are multi-page read-modify-writes; flMu must span the chain's page fetches
	p.flMu.Lock()
	defer p.flMu.Unlock()
	head, err := p.freeHead()
	if err != nil {
		return nil, err
	}
	if head == InvalidPageID {
		return p.Allocate()
	}
	pg, err := p.Fetch(head)
	if err != nil {
		return nil, err
	}
	next := pg.Next()
	pg.Init() // keeps ID, clears contents
	if err := p.setFreeHead(next); err != nil {
		p.Unpin(pg)
		return nil, err
	}
	return pg, nil
}

// FreeChain pushes every page of a heap chain onto the free list. On a
// bare pager (no superblock) the pages simply leak; only full databases
// recycle pages.
func (p *Pager) FreeChain(head PageID) error {
	if !p.superblockPresent() {
		return nil
	}
	//dkblint:locksafe free-list transactions are multi-page read-modify-writes; flMu must span the chain's page fetches
	p.flMu.Lock()
	defer p.flMu.Unlock()
	id := head
	for id != InvalidPageID {
		pg, err := p.Fetch(id)
		if err != nil {
			return err
		}
		next := pg.Next()
		fh, err := p.freeHead()
		if err != nil {
			p.Unpin(pg)
			return err
		}
		pg.Init()
		pg.SetNext(fh)
		if err := p.setFreeHead(id); err != nil {
			p.Unpin(pg)
			return err
		}
		p.Unpin(pg)
		id = next
	}
	return nil
}

// FreePages counts the pages currently on the free list (diagnostics).
func (p *Pager) FreePages() (int, error) {
	if !p.superblockPresent() {
		return 0, nil
	}
	//dkblint:locksafe free-list transactions are multi-page read-modify-writes; flMu must span the chain's page fetches
	p.flMu.Lock()
	defer p.flMu.Unlock()
	id, err := p.freeHead()
	if err != nil {
		return 0, err
	}
	n := 0
	for id != InvalidPageID {
		pg, err := p.Fetch(id)
		if err != nil {
			return 0, err
		}
		id = pg.Next()
		p.Unpin(pg)
		n++
	}
	return n, nil
}
