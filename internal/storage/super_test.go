package storage

import (
	"path/filepath"
	"testing"
)

func TestSuperblockFreshAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	p, err := OpenPager(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	root, err := p.EnsureSuperblock()
	if err != nil {
		t.Fatal(err)
	}
	if root != InvalidPageID {
		t.Fatalf("fresh root = %d", root)
	}
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRoot(h.Head()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert([]byte("catalog row")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPager(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	root2, err := p2.EnsureSuperblock()
	if err != nil {
		t.Fatal(err)
	}
	if root2 != h.Head() {
		t.Fatalf("root after reopen = %d, want %d", root2, h.Head())
	}
	h2 := OpenHeap(p2, root2)
	n, err := h2.Count()
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestSuperblockBadMagic(t *testing.T) {
	p := NewMemPager(8)
	pg, err := p.Allocate() // page 0 without superblock formatting
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(pg)
	if _, err := p.EnsureSuperblock(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFreeListRecycling(t *testing.T) {
	p := NewMemPager(256)
	if _, err := p.EnsureSuperblock(); err != nil {
		t.Fatal(err)
	}
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	// Fill several pages.
	for i := 0; i < 3000; i++ {
		if _, err := h.Insert([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	grown := p.PageCount()
	if err := h.Drop(); err != nil {
		t.Fatal(err)
	}
	free, err := p.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free < 10 {
		t.Fatalf("expected >=10 free pages after drop, got %d", free)
	}
	// A new heap of the same size must not grow the store.
	h2, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if _, err := h2.Insert([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if p.PageCount() != grown {
		t.Fatalf("store grew from %d to %d pages despite free list", grown, p.PageCount())
	}
}

func TestTruncateReturnsTailPages(t *testing.T) {
	p := NewMemPager(256)
	if _, err := p.EnsureSuperblock(); err != nil {
		t.Fatal(err)
	}
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Truncate(); err != nil {
		t.Fatal(err)
	}
	free, err := p.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free == 0 {
		t.Fatal("truncate freed no pages")
	}
	n, err := h.Count()
	if err != nil || n != 0 {
		t.Fatalf("count after truncate = %d, %v", n, err)
	}
	// Reusable afterwards.
	if _, err := h.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestFreeChainWithoutSuperblockIsNoop(t *testing.T) {
	p := NewMemPager(8)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FreeChain(h.Head()); err != nil {
		t.Fatal(err)
	}
	free, err := p.FreePages()
	if err != nil || free != 0 {
		t.Fatalf("free pages = %d, %v", free, err)
	}
}
