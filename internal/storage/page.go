// Package storage implements the testbed's page-based storage engine:
// fixed-size slotted pages, heap files addressed by record ID, and a
// sharded buffer pool with per-shard LRU eviction. The paper's DBMS
// layer is a commercial relational system; this package supplies the
// equivalent storage substrate so that the engine above it has realistic
// cost structure (page-at-a-time I/O, slot indirection, free-space
// management).
package storage

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// PageSize is the size of every page in bytes. 4 KiB matches common
// database practice and keeps the slot directory arithmetic simple.
const PageSize = 4096

// PageID identifies a page within a single file, starting at 0.
type PageID uint32

// InvalidPageID marks "no page" in page-header links.
const InvalidPageID = PageID(0xFFFFFFFF)

// Slotted page layout:
//
//	offset 0:  uint32 next page ID (free-list / heap chain link)
//	offset 4:  uint16 slot count
//	offset 6:  uint16 free-space pointer (offset of start of record area
//	           free region, growing upward from the header)
//	offset 8:  slot directory, 4 bytes per slot:
//	           uint16 record offset (0xFFFF = dead slot), uint16 length
//	records grow downward from PageSize.
const (
	pageHdrNext      = 0
	pageHdrSlotCount = 4
	pageHdrFreePtr   = 6
	pageHdrSize      = 8
	slotSize         = 4
	deadSlotOffset   = 0xFFFF
)

// Page is a fixed-size byte buffer with slotted-record accessors. It is
// not safe for concurrent mutation: the buffer pool no longer serializes
// page access behind one latch — concurrent readers may share a pinned
// page, but anyone mutating a page must hold a pin and be the only
// writer (the engine's upper layers guarantee this: updates run
// exclusively, and concurrent queries only write session-private temp
// tables). The pin count is atomic so Unpin is lock-free and eviction
// can test it under the owning shard's latch alone.
type Page struct {
	ID    PageID
	Data  [PageSize]byte
	Dirty bool
	pins  atomic.Int32
}

// Init formats the page as an empty slotted page.
func (p *Page) Init() {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.SetNext(InvalidPageID)
	p.setSlotCount(0)
	p.setFreePtr(pageHdrSize)
	p.Dirty = true
}

// Next returns the chained page ID stored in the header.
func (p *Page) Next() PageID {
	return PageID(binary.BigEndian.Uint32(p.Data[pageHdrNext:]))
}

// SetNext stores the chained page ID.
func (p *Page) SetNext(id PageID) {
	binary.BigEndian.PutUint32(p.Data[pageHdrNext:], uint32(id))
	p.Dirty = true
}

// SlotCount returns the number of slots, live or dead.
func (p *Page) SlotCount() int {
	return int(binary.BigEndian.Uint16(p.Data[pageHdrSlotCount:]))
}

func (p *Page) setSlotCount(n int) {
	binary.BigEndian.PutUint16(p.Data[pageHdrSlotCount:], uint16(n))
}

func (p *Page) freePtr() int {
	return int(binary.BigEndian.Uint16(p.Data[pageHdrFreePtr:]))
}

func (p *Page) setFreePtr(off int) {
	binary.BigEndian.PutUint16(p.Data[pageHdrFreePtr:], uint16(off))
}

func (p *Page) slot(i int) (off, length int) {
	base := pageHdrSize + i*slotSize
	off = int(binary.BigEndian.Uint16(p.Data[base:]))
	length = int(binary.BigEndian.Uint16(p.Data[base+2:]))
	return off, length
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHdrSize + i*slotSize
	binary.BigEndian.PutUint16(p.Data[base:], uint16(off))
	binary.BigEndian.PutUint16(p.Data[base+2:], uint16(length))
	p.Dirty = true
}

// recordLow returns the lowest offset used by any live record, i.e. the
// bottom of the record area (records grow downward from PageSize).
func (p *Page) recordLow() int {
	low := PageSize
	for i := 0; i < p.SlotCount(); i++ {
		off, _ := p.slot(i)
		if off != deadSlotOffset && off < low {
			low = off
		}
	}
	return low
}

// FreeSpace returns the bytes available for a new record including its
// slot directory entry.
func (p *Page) FreeSpace() int {
	used := pageHdrSize + p.SlotCount()*slotSize
	free := p.recordLow() - used - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// HasRoom reports whether a record of n bytes fits on this page.
func (p *Page) HasRoom(n int) bool { return p.FreeSpace() >= n }

// Insert stores a record and returns its slot number. The caller must
// have checked HasRoom.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > PageSize-pageHdrSize-slotSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(rec))
	}
	if !p.HasRoom(len(rec)) {
		return 0, fmt.Errorf("storage: page %d full", p.ID)
	}
	// Compute the record position before touching the slot directory so
	// the fresh slot's zeroed entry cannot perturb recordLow.
	newLow := p.recordLow() - len(rec)
	// Reuse a dead slot if one exists (keeps slot numbers dense enough).
	slotNo := -1
	for i := 0; i < p.SlotCount(); i++ {
		if off, _ := p.slot(i); off == deadSlotOffset {
			slotNo = i
			break
		}
	}
	if slotNo == -1 {
		slotNo = p.SlotCount()
		p.setSlotCount(slotNo + 1)
	}
	copy(p.Data[newLow:newLow+len(rec)], rec)
	p.setSlot(slotNo, newLow, len(rec))
	p.Dirty = true
	return slotNo, nil
}

// Record returns the bytes of the record in the given slot, or nil if
// the slot is dead or out of range. The returned slice aliases the page
// buffer; callers must copy before the page can be evicted.
func (p *Page) Record(slotNo int) []byte {
	if slotNo < 0 || slotNo >= p.SlotCount() {
		return nil
	}
	off, length := p.slot(slotNo)
	if off == deadSlotOffset {
		return nil
	}
	return p.Data[off : off+length]
}

// Delete marks the slot dead. The space is reclaimed lazily by Compact.
func (p *Page) Delete(slotNo int) error {
	if slotNo < 0 || slotNo >= p.SlotCount() {
		return fmt.Errorf("storage: delete of invalid slot %d on page %d", slotNo, p.ID)
	}
	off, _ := p.slot(slotNo)
	if off == deadSlotOffset {
		return fmt.Errorf("storage: double delete of slot %d on page %d", slotNo, p.ID)
	}
	p.setSlot(slotNo, deadSlotOffset, 0)
	p.Dirty = true
	return nil
}

// LiveRecords returns the number of live records on the page.
func (p *Page) LiveRecords() int {
	n := 0
	for i := 0; i < p.SlotCount(); i++ {
		if off, _ := p.slot(i); off != deadSlotOffset {
			n++
		}
	}
	return n
}

// Compact rewrites the record area to squeeze out dead space, preserving
// slot numbers of live records.
func (p *Page) Compact() {
	type liveRec struct {
		slot int
		data []byte
	}
	var live []liveRec
	for i := 0; i < p.SlotCount(); i++ {
		off, length := p.slot(i)
		if off == deadSlotOffset {
			continue
		}
		cp := make([]byte, length)
		copy(cp, p.Data[off:off+length])
		live = append(live, liveRec{slot: i, data: cp})
	}
	top := PageSize
	for _, r := range live {
		top -= len(r.data)
		copy(p.Data[top:top+len(r.data)], r.data)
		p.setSlot(r.slot, top, len(r.data))
	}
	// Trim trailing dead slots.
	n := p.SlotCount()
	for n > 0 {
		if off, _ := p.slot(n - 1); off != deadSlotOffset {
			break
		}
		n--
	}
	p.setSlotCount(n)
	p.Dirty = true
}
