package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Pager provides page-granular access to a backing store — either a file
// on disk or an anonymous in-memory store — through a sharded buffer
// pool. All tables and indexes of one database share one Pager
// (single-file database layout).
//
// Concurrency model: pages are striped across lock-striped shards by
// PageID, each shard owning its own frame table, LRU list and traffic
// counters, so concurrent Fetch/Unpin of pages in different shards never
// contend on a common latch. Pin counts are atomics: Unpin is lock-free,
// and eviction (which runs under the owning shard's latch) only removes
// frames whose pin count is zero. Page growth (Allocate) serializes on a
// dedicated allocation latch; free-list transactions serialize on flMu
// as before.
type Pager struct {
	file *os.File // nil for in-memory databases

	// mem is the in-memory backing store when file == nil. The outer
	// slice is guarded by memMu (Allocate appends may relocate it);
	// the inner page buffers are only touched by readPage/writePage
	// under the owning shard's latch.
	mem   [][]byte
	memMu sync.RWMutex

	// pageCount is read lock-free by Fetch's bounds check; Allocate
	// publishes it only after the backing store has grown.
	pageCount atomic.Uint32

	// allocMu serializes store growth (file truncate / mem append) and
	// page-ID assignment.
	allocMu sync.Mutex

	hasSuper atomic.Bool // page 0 is a superblock (set by EnsureSuperblock)

	// flMu serializes whole free-list transactions (pop in
	// AllocateReusable, push in FreeChain), which span several page
	// fetches and so cannot rely on the shard latches alone. Always
	// acquired before any shard latch.
	flMu sync.Mutex

	shards []shard
	mask   uint32 // len(shards)-1; shards is a power of two
}

// shard is one stripe of the buffer pool: a frame table with its own
// latch, LRU list, capacity share and counters.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*frame
	lruHead  *frame // most recently used
	lruTail  *frame // least recently used
	stats    PagerStats
	// evictGen counts eviction write-backs in this stripe. Fetch's
	// latch-free miss read snapshots it to detect a write-back that
	// overlapped the read (see Fetch).
	evictGen uint64
}

// PagerStats are cumulative counters for buffer-pool activity,
// aggregated across shards by Stats().
type PagerStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64
}

// Stats returns a snapshot of the buffer-pool counters summed over all
// shards. Safe to call while other goroutines use the pager; the sum is
// not a single atomic cut across shards, which is fine for monitoring.
func (p *Pager) Stats() PagerStats {
	var out PagerStats
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.Evictions += sh.stats.Evictions
		out.Writes += sh.stats.Writes
		sh.mu.Unlock()
	}
	return out
}

// ShardStats returns a per-shard snapshot of the buffer-pool counters,
// indexed by stripe. Monitoring uses it to spot skewed stripes (one hot
// page chain hammering a single latch); Stats() remains the aggregate.
func (p *Pager) ShardStats() []PagerStats {
	out := make([]PagerStats, len(p.shards))
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out[i] = sh.stats
		sh.mu.Unlock()
	}
	return out
}

type frame struct {
	page       *Page
	prev, next *frame
}

// DefaultPoolPages is the default buffer-pool capacity (pages).
const DefaultPoolPages = 1024

// maxShards caps the stripe count; beyond ~16 ways the shard latches
// stop being the bottleneck and the map/LRU bookkeeping dominates.
const maxShards = 16

// minShardPages is the smallest per-shard capacity worth striping for:
// smaller pools stay single-sharded so tiny test pools keep a usable
// LRU instead of thrashing one-frame stripes.
const minShardPages = 4

// OpenPager opens (creating if necessary) a file-backed pager. poolPages
// of 0 selects DefaultPoolPages.
func OpenPager(path string, poolPages int) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	p := newPager(poolPages)
	p.file = f
	p.pageCount.Store(uint32(st.Size() / PageSize))
	return p, nil
}

// NewMemPager returns a pager backed by process memory. Used for
// in-memory databases and most benchmarks (the paper's relative results
// do not depend on durable storage).
func NewMemPager(poolPages int) *Pager {
	return newPager(poolPages)
}

func newPager(poolPages int) *Pager {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	n := 1
	for n < maxShards && (n*2)*minShardPages <= poolPages {
		n *= 2
	}
	p := &Pager{shards: make([]shard, n), mask: uint32(n - 1)}
	base, extra := poolPages/n, poolPages%n
	for i := range p.shards {
		cap := base
		if i < extra {
			cap++
		}
		p.shards[i] = shard{
			capacity: cap,
			frames:   make(map[PageID]*frame, cap),
		}
	}
	return p
}

// shardOf returns the stripe owning the page.
func (p *Pager) shardOf(id PageID) *shard {
	return &p.shards[uint32(id)&p.mask]
}

// Shards returns the stripe count (diagnostics and tests).
func (p *Pager) Shards() int { return len(p.shards) }

// PageCount returns the number of allocated pages.
func (p *Pager) PageCount() PageID {
	return PageID(p.pageCount.Load())
}

// Allocate creates a new zero page and returns it pinned.
func (p *Pager) Allocate() (*Page, error) {
	//dkblint:locksafe file growth must be atomic with the page-count publish; allocMu is a leaf lock no reader path takes
	p.allocMu.Lock()
	id := PageID(p.pageCount.Load())
	if p.file == nil {
		p.memMu.Lock()
		p.mem = append(p.mem, make([]byte, PageSize))
		p.memMu.Unlock()
	} else {
		if err := p.file.Truncate((int64(id) + 1) * PageSize); err != nil {
			p.allocMu.Unlock()
			return nil, fmt.Errorf("storage: grow file: %w", err)
		}
	}
	// Publish the count only after the backing store covers the page, so
	// a concurrent Fetch that passes the bounds check can always read.
	p.pageCount.Store(uint32(id) + 1)
	p.allocMu.Unlock()

	pg := &Page{ID: id}
	pg.Init()
	pg.pins.Store(1)
	sh := p.shardOf(id)
	//dkblint:locksafe install may evict a dirty victim; its write-back must finish before the frame vanishes (see evictOne)
	sh.mu.Lock()
	sh.install(p, pg)
	sh.mu.Unlock()
	return pg, nil
}

// Fetch returns the page pinned; the caller must Unpin it.
//
// The miss path reads the page from the backing store with the shard
// latch released, so a slow disk read never blocks hits on the same
// stripe. Correctness of the latch-free read: the only writer of a
// page's on-disk bytes while readers are active is eviction write-back,
// which runs under this shard's latch and bumps evictGen before the
// frame disappears. If evictGen is unchanged between dropping the latch
// and re-taking it, no write-back overlapped our read and the copy is
// intact; otherwise the copy may be torn and the read retries. A racing
// Fetch of the same page that installs first wins — the re-check turns
// our miss into a hit on its frame.
func (p *Pager) Fetch(id PageID) (*Page, error) {
	if uint32(id) >= p.pageCount.Load() {
		return nil, fmt.Errorf("storage: fetch of unallocated page %d (have %d)", id, p.PageCount())
	}
	sh := p.shardOf(id)
	//dkblint:locksafe eviction write-back must finish before the victim frame vanishes; the common miss path reads with the latch released
	sh.mu.Lock()
	if fr, ok := sh.frames[id]; ok {
		sh.stats.Hits++
		fr.page.pins.Add(1)
		sh.touch(fr)
		sh.mu.Unlock()
		return fr.page, nil
	}
	sh.stats.Misses++
	for {
		gen := sh.evictGen
		sh.mu.Unlock()
		pg := &Page{ID: id}
		if err := p.readPage(id, pg.Data[:]); err != nil {
			return nil, err
		}
		//dkblint:locksafe install may evict a dirty victim; its write-back must finish before the frame vanishes (see evictOne)
		sh.mu.Lock()
		if fr, ok := sh.frames[id]; ok {
			sh.stats.Hits++
			fr.page.pins.Add(1)
			sh.touch(fr)
			sh.mu.Unlock()
			return fr.page, nil
		}
		if sh.evictGen != gen {
			// A write-back ran while the latch was down; our copy may
			// be torn. Retry the read under a fresh generation.
			continue
		}
		pg.pins.Store(1)
		sh.install(p, pg)
		sh.mu.Unlock()
		return pg, nil
	}
}

// Unpin releases a pin taken by Fetch or Allocate. It is lock-free: the
// pin count is atomic, and eviction re-checks it under the shard latch.
func (p *Pager) Unpin(pg *Page) {
	for {
		n := pg.pins.Load()
		if n <= 0 {
			return
		}
		if pg.pins.CompareAndSwap(n, n-1) {
			return
		}
	}
}

// install places a page in the shard, evicting if needed. Caller holds
// the shard latch.
func (sh *shard) install(p *Pager, pg *Page) {
	for len(sh.frames) >= sh.capacity {
		if !sh.evictOne(p) {
			// Everything is pinned; run over capacity rather than fail.
			break
		}
	}
	fr := &frame{page: pg}
	sh.frames[pg.ID] = fr
	sh.pushFront(fr)
}

// evictOne writes back and drops the least recently used unpinned page.
// Caller holds the shard latch, which excludes new pins on this shard's
// pages: a page observed unpinned here cannot gain a pin mid-eviction.
func (sh *shard) evictOne(p *Pager) bool {
	for fr := sh.lruTail; fr != nil; fr = fr.prev {
		if fr.page.pins.Load() > 0 {
			continue
		}
		if fr.page.Dirty {
			sh.evictGen++
			if err := p.writePage(&sh.stats, fr.page); err != nil {
				// Eviction write failures are unrecoverable mid-flight;
				// keep the page resident and report pressure by refusing.
				return false
			}
		}
		sh.remove(fr)
		delete(sh.frames, fr.page.ID)
		sh.stats.Evictions++
		return true
	}
	return false
}

func (p *Pager) readPage(id PageID, buf []byte) error {
	if p.file == nil {
		p.memMu.RLock()
		copy(buf, p.mem[id])
		p.memMu.RUnlock()
		return nil
	}
	_, err := p.file.ReadAt(buf, int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

func (p *Pager) writePage(stats *PagerStats, pg *Page) error {
	stats.Writes++
	if p.file == nil {
		p.memMu.RLock()
		copy(p.mem[pg.ID], pg.Data[:])
		p.memMu.RUnlock()
		pg.Dirty = false
		return nil
	}
	if _, err := p.file.WriteAt(pg.Data[:], int64(pg.ID)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", pg.ID, err)
	}
	pg.Dirty = false
	return nil
}

// Flush writes all dirty resident pages to the backing store.
func (p *Pager) Flush() error {
	for i := range p.shards {
		sh := &p.shards[i]
		//dkblint:locksafe flush runs on serialized commit/close paths; the latch pins the dirty set against concurrent eviction
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.page.Dirty {
				if err := p.writePage(&sh.stats, fr.page); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	if p.file != nil {
		if err := p.file.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	return nil
}

// Close flushes and releases the backing store.
func (p *Pager) Close() error {
	if err := p.Flush(); err != nil {
		return err
	}
	if p.file != nil {
		err := p.file.Close()
		p.file = nil
		return err
	}
	return nil
}

// --- LRU list maintenance (caller holds the shard latch) ---

func (sh *shard) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = fr
	}
	sh.lruHead = fr
	if sh.lruTail == nil {
		sh.lruTail = fr
	}
}

func (sh *shard) remove(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		sh.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		sh.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (sh *shard) touch(fr *frame) {
	sh.remove(fr)
	sh.pushFront(fr)
}
