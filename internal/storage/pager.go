package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Pager provides page-granular access to a backing store — either a file
// on disk or an anonymous in-memory store — through a buffer pool with
// LRU eviction. All tables and indexes of one database share one Pager
// (single-file database layout).
type Pager struct {
	mu        sync.Mutex
	file      *os.File // nil for in-memory databases
	mem       [][]byte // in-memory backing store when file == nil
	pageCount PageID
	hasSuper  bool // page 0 is a superblock (set by EnsureSuperblock)

	// flMu serializes whole free-list transactions (pop in
	// AllocateReusable, push in FreeChain), which span several page
	// fetches and so cannot rely on mu alone. Always acquired before mu.
	flMu sync.Mutex

	capacity int
	frames   map[PageID]*frame
	lruHead  *frame // most recently used
	lruTail  *frame // least recently used

	// stats counts buffer-pool traffic (guarded by mu); read it through
	// Stats().
	stats PagerStats
}

// PagerStats are cumulative counters for buffer-pool activity.
type PagerStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64
}

// Stats returns a consistent snapshot of the buffer-pool counters; used
// by tests and the bench harness to confirm the engine touches pages as
// expected. Safe to call while other goroutines use the pager.
func (p *Pager) Stats() PagerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

type frame struct {
	page       *Page
	prev, next *frame
}

// DefaultPoolPages is the default buffer-pool capacity (pages).
const DefaultPoolPages = 1024

// OpenPager opens (creating if necessary) a file-backed pager. poolPages
// of 0 selects DefaultPoolPages.
func OpenPager(path string, poolPages int) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	p := newPager(poolPages)
	p.file = f
	p.pageCount = PageID(st.Size() / PageSize)
	return p, nil
}

// NewMemPager returns a pager backed by process memory. Used for
// in-memory databases and most benchmarks (the paper's relative results
// do not depend on durable storage).
func NewMemPager(poolPages int) *Pager {
	return newPager(poolPages)
}

func newPager(poolPages int) *Pager {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	return &Pager{
		capacity: poolPages,
		frames:   make(map[PageID]*frame, poolPages),
	}
}

// PageCount returns the number of allocated pages.
func (p *Pager) PageCount() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pageCount
}

// Allocate creates a new zero page and returns it pinned.
func (p *Pager) Allocate() (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.pageCount
	p.pageCount++
	if p.file == nil {
		p.mem = append(p.mem, make([]byte, PageSize))
	} else {
		if err := p.file.Truncate(int64(p.pageCount) * PageSize); err != nil {
			return nil, fmt.Errorf("storage: grow file: %w", err)
		}
	}
	pg := &Page{ID: id}
	pg.Init()
	pg.pins = 1
	if err := p.install(pg); err != nil {
		return nil, err
	}
	return pg, nil
}

// Fetch returns the page pinned; the caller must Unpin it.
func (p *Pager) Fetch(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.pageCount {
		return nil, fmt.Errorf("storage: fetch of unallocated page %d (have %d)", id, p.pageCount)
	}
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		fr.page.pins++
		p.touch(fr)
		return fr.page, nil
	}
	p.stats.Misses++
	pg := &Page{ID: id}
	if err := p.readPage(id, pg.Data[:]); err != nil {
		return nil, err
	}
	pg.pins = 1
	if err := p.install(pg); err != nil {
		return nil, err
	}
	return pg, nil
}

// Unpin releases a pin taken by Fetch or Allocate.
func (p *Pager) Unpin(pg *Page) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pg.pins > 0 {
		pg.pins--
	}
}

// install places a page in the pool, evicting if needed. Caller holds mu.
func (p *Pager) install(pg *Page) error {
	for len(p.frames) >= p.capacity {
		if !p.evictOne() {
			// Everything is pinned; run over capacity rather than fail.
			break
		}
	}
	fr := &frame{page: pg}
	p.frames[pg.ID] = fr
	p.pushFront(fr)
	return nil
}

// evictOne writes back and drops the least recently used unpinned page.
func (p *Pager) evictOne() bool {
	for fr := p.lruTail; fr != nil; fr = fr.prev {
		if fr.page.pins > 0 {
			continue
		}
		if fr.page.Dirty {
			if err := p.writePage(fr.page); err != nil {
				// Eviction write failures are unrecoverable mid-flight;
				// keep the page resident and report pressure by refusing.
				return false
			}
		}
		p.remove(fr)
		delete(p.frames, fr.page.ID)
		p.stats.Evictions++
		return true
	}
	return false
}

func (p *Pager) readPage(id PageID, buf []byte) error {
	if p.file == nil {
		copy(buf, p.mem[id])
		return nil
	}
	_, err := p.file.ReadAt(buf, int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

func (p *Pager) writePage(pg *Page) error {
	p.stats.Writes++
	if p.file == nil {
		copy(p.mem[pg.ID], pg.Data[:])
		pg.Dirty = false
		return nil
	}
	if _, err := p.file.WriteAt(pg.Data[:], int64(pg.ID)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", pg.ID, err)
	}
	pg.Dirty = false
	return nil
}

// Flush writes all dirty resident pages to the backing store.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.page.Dirty {
			if err := p.writePage(fr.page); err != nil {
				return err
			}
		}
	}
	if p.file != nil {
		if err := p.file.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	return nil
}

// Close flushes and releases the backing store.
func (p *Pager) Close() error {
	if err := p.Flush(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file != nil {
		err := p.file.Close()
		p.file = nil
		return err
	}
	return nil
}

// --- LRU list maintenance (caller holds mu) ---

func (p *Pager) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = fr
	}
	p.lruHead = fr
	if p.lruTail == nil {
		p.lruTail = fr
	}
}

func (p *Pager) remove(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		p.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		p.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (p *Pager) touch(fr *frame) {
	p.remove(fr)
	p.pushFront(fr)
}
