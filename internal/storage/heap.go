package storage

import (
	"fmt"
)

// RID identifies a record within a heap file: page plus slot.
type RID struct {
	Page PageID
	Slot int
}

// String renders "page:slot" for diagnostics.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// HeapFile is an unordered collection of records stored in a chain of
// slotted pages inside a Pager. The chain head page ID is the file's
// identity (recorded in the catalog).
type HeapFile struct {
	pager *Pager
	head  PageID
	// lastWithRoom caches the page that most recently accepted an
	// insert, so bulk loads do not rescan the chain.
	lastWithRoom PageID
}

// CreateHeap allocates a new empty heap file and returns it.
func CreateHeap(p *Pager) (*HeapFile, error) {
	pg, err := p.AllocateReusable()
	if err != nil {
		return nil, err
	}
	defer p.Unpin(pg)
	return &HeapFile{pager: p, head: pg.ID, lastWithRoom: pg.ID}, nil
}

// OpenHeap reopens an existing heap file by its head page ID.
func OpenHeap(p *Pager, head PageID) *HeapFile {
	return &HeapFile{pager: p, head: head, lastWithRoom: head}
}

// Head returns the head page ID (the persistent identity of the file).
func (h *HeapFile) Head() PageID { return h.head }

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	// Try the cached page first, then walk the chain from it, extending
	// at the tail when no page has room.
	id := h.lastWithRoom
	for {
		pg, err := h.pager.Fetch(id)
		if err != nil {
			return RID{}, err
		}
		if pg.HasRoom(len(rec)) {
			slot, err := pg.Insert(rec)
			h.pager.Unpin(pg)
			if err != nil {
				return RID{}, err
			}
			h.lastWithRoom = id
			return RID{Page: id, Slot: slot}, nil
		}
		next := pg.Next()
		if next == InvalidPageID {
			// Extend the chain.
			np, err := h.pager.AllocateReusable()
			if err != nil {
				h.pager.Unpin(pg)
				return RID{}, err
			}
			pg.SetNext(np.ID)
			h.pager.Unpin(pg)
			slot, err := np.Insert(rec)
			h.pager.Unpin(np)
			if err != nil {
				return RID{}, err
			}
			h.lastWithRoom = np.ID
			return RID{Page: np.ID, Slot: slot}, nil
		}
		h.pager.Unpin(pg)
		id = next
	}
}

// Get returns a copy of the record at rid, or an error if the slot is
// dead or out of range.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pager.Unpin(pg)
	rec := pg.Record(rid.Slot)
	if rec == nil {
		return nil, fmt.Errorf("storage: no record at %s", rid)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Delete removes the record at rid and compacts the page when more than
// half its slots are dead.
func (h *HeapFile) Delete(rid RID) error {
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pager.Unpin(pg)
	if err := pg.Delete(rid.Slot); err != nil {
		return err
	}
	if pg.SlotCount() > 0 && pg.LiveRecords()*2 < pg.SlotCount() {
		pg.Compact()
	}
	// A delete opens room; remember this page for future inserts.
	h.lastWithRoom = rid.Page
	return nil
}

// Scan calls fn for every live record in the file, in chain order. The
// record slice passed to fn aliases the page buffer and must not be
// retained. Returning a non-nil error from fn stops the scan.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	id := h.head
	for id != InvalidPageID {
		pg, err := h.pager.Fetch(id)
		if err != nil {
			return err
		}
		for s := 0; s < pg.SlotCount(); s++ {
			rec := pg.Record(s)
			if rec == nil {
				continue
			}
			if err := fn(RID{Page: id, Slot: s}, rec); err != nil {
				h.pager.Unpin(pg)
				return err
			}
		}
		next := pg.Next()
		h.pager.Unpin(pg)
		id = next
	}
	return nil
}

// Count returns the number of live records (full scan).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) error { n++; return nil })
	return n, err
}

// Truncate deletes every record. The head page survives (it is the
// file's catalog identity); tail pages go back to the pager free list.
func (h *HeapFile) Truncate() error {
	pg, err := h.pager.Fetch(h.head)
	if err != nil {
		return err
	}
	tail := pg.Next()
	pg.Init()
	pg.SetNext(InvalidPageID)
	h.pager.Unpin(pg)
	h.lastWithRoom = h.head
	return h.pager.FreeChain(tail)
}

// Drop releases every page of the file to the pager free list. The heap
// must not be used afterwards.
func (h *HeapFile) Drop() error {
	head := h.head
	h.head = InvalidPageID
	return h.pager.FreeChain(head)
}
