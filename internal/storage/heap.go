package storage

import (
	"fmt"
	"sync/atomic"
)

// RID identifies a record within a heap file: page plus slot.
type RID struct {
	Page PageID
	Slot int
}

// String renders "page:slot" for diagnostics.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// HeapFile is an unordered collection of records stored in a chain of
// slotted pages inside a Pager. The chain head page ID is the file's
// identity (recorded in the catalog).
type HeapFile struct {
	pager *Pager
	head  PageID
	// lastWithRoom caches the page that most recently accepted an
	// insert, so bulk loads do not rescan the chain.
	lastWithRoom PageID

	// stats counts physical traffic on this file. The fields are atomics
	// because scans run concurrently (the server admits parallel readers)
	// while a metrics collector may snapshot at any moment.
	stats heapCounters
}

// heapCounters is the live (atomic) form of HeapStats.
type heapCounters struct {
	reads        atomic.Int64
	inserts      atomic.Int64
	deletes      atomic.Int64
	scans        atomic.Int64
	pagesScanned atomic.Int64
	recsScanned  atomic.Int64
}

// HeapStats is a snapshot of one heap file's traffic counters: record
// point reads (Get), inserts, deletes, full-scan passes, and the pages
// and live records those scans visited. The paper reports query costs in
// exactly these physical units, so the executor attaches deltas of this
// snapshot to scan-operator spans.
type HeapStats struct {
	Reads        int64 `json:"reads"`
	Inserts      int64 `json:"inserts"`
	Deletes      int64 `json:"deletes"`
	Scans        int64 `json:"scans"`
	PagesScanned int64 `json:"pages_scanned"`
	RecsScanned  int64 `json:"recs_scanned"`
}

// Stats snapshots the file's traffic counters. Safe to call concurrently
// with any traffic; the snapshot is not a single atomic cut, which is
// fine for monitoring and for per-query deltas (queries that need exact
// deltas run their operators single-threaded).
func (h *HeapFile) Stats() HeapStats {
	return HeapStats{
		Reads:        h.stats.reads.Load(),
		Inserts:      h.stats.inserts.Load(),
		Deletes:      h.stats.deletes.Load(),
		Scans:        h.stats.scans.Load(),
		PagesScanned: h.stats.pagesScanned.Load(),
		RecsScanned:  h.stats.recsScanned.Load(),
	}
}

// Sub returns the counter-by-counter difference s - prev (the traffic
// between two snapshots).
func (s HeapStats) Sub(prev HeapStats) HeapStats {
	return HeapStats{
		Reads:        s.Reads - prev.Reads,
		Inserts:      s.Inserts - prev.Inserts,
		Deletes:      s.Deletes - prev.Deletes,
		Scans:        s.Scans - prev.Scans,
		PagesScanned: s.PagesScanned - prev.PagesScanned,
		RecsScanned:  s.RecsScanned - prev.RecsScanned,
	}
}

// Pager returns the pager backing this file (shared by all files of one
// database; used to correlate heap traffic with buffer-pool traffic).
func (h *HeapFile) Pager() *Pager { return h.pager }

// CreateHeap allocates a new empty heap file and returns it.
func CreateHeap(p *Pager) (*HeapFile, error) {
	pg, err := p.AllocateReusable()
	if err != nil {
		return nil, err
	}
	defer p.Unpin(pg)
	return &HeapFile{pager: p, head: pg.ID, lastWithRoom: pg.ID}, nil
}

// OpenHeap reopens an existing heap file by its head page ID.
func OpenHeap(p *Pager, head PageID) *HeapFile {
	return &HeapFile{pager: p, head: head, lastWithRoom: head}
}

// Head returns the head page ID (the persistent identity of the file).
func (h *HeapFile) Head() PageID { return h.head }

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	h.stats.inserts.Add(1)
	// Try the cached page first, then walk the chain from it, extending
	// at the tail when no page has room.
	id := h.lastWithRoom
	for {
		pg, err := h.pager.Fetch(id)
		if err != nil {
			return RID{}, err
		}
		if pg.HasRoom(len(rec)) {
			slot, err := pg.Insert(rec)
			h.pager.Unpin(pg)
			if err != nil {
				return RID{}, err
			}
			h.lastWithRoom = id
			return RID{Page: id, Slot: slot}, nil
		}
		next := pg.Next()
		if next == InvalidPageID {
			// Extend the chain.
			np, err := h.pager.AllocateReusable()
			if err != nil {
				h.pager.Unpin(pg)
				return RID{}, err
			}
			pg.SetNext(np.ID)
			h.pager.Unpin(pg)
			slot, err := np.Insert(rec)
			h.pager.Unpin(np)
			if err != nil {
				return RID{}, err
			}
			h.lastWithRoom = np.ID
			return RID{Page: np.ID, Slot: slot}, nil
		}
		h.pager.Unpin(pg)
		id = next
	}
}

// Get returns a copy of the record at rid, or an error if the slot is
// dead or out of range.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	h.stats.reads.Add(1)
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pager.Unpin(pg)
	rec := pg.Record(rid.Slot)
	if rec == nil {
		return nil, fmt.Errorf("storage: no record at %s", rid)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Delete removes the record at rid and compacts the page when more than
// half its slots are dead.
func (h *HeapFile) Delete(rid RID) error {
	h.stats.deletes.Add(1)
	pg, err := h.pager.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pager.Unpin(pg)
	if err := pg.Delete(rid.Slot); err != nil {
		return err
	}
	if pg.SlotCount() > 0 && pg.LiveRecords()*2 < pg.SlotCount() {
		pg.Compact()
	}
	// A delete opens room; remember this page for future inserts.
	h.lastWithRoom = rid.Page
	return nil
}

// Scan calls fn for every live record in the file, in chain order. The
// record slice passed to fn aliases the page buffer and must not be
// retained. Returning a non-nil error from fn stops the scan.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	h.stats.scans.Add(1)
	// Accumulate locally and publish once: one pair of atomic adds per
	// scan instead of one per page/record keeps the hot loop unchanged.
	var pages, recs int64
	defer func() {
		h.stats.pagesScanned.Add(pages)
		h.stats.recsScanned.Add(recs)
	}()
	id := h.head
	for id != InvalidPageID {
		pg, err := h.pager.Fetch(id)
		if err != nil {
			return err
		}
		pages++
		for s := 0; s < pg.SlotCount(); s++ {
			rec := pg.Record(s)
			if rec == nil {
				continue
			}
			recs++
			if err := fn(RID{Page: id, Slot: s}, rec); err != nil {
				h.pager.Unpin(pg)
				return err
			}
		}
		next := pg.Next()
		h.pager.Unpin(pg)
		id = next
	}
	return nil
}

// Count returns the number of live records (full scan).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) error { n++; return nil })
	return n, err
}

// Truncate deletes every record. The head page survives (it is the
// file's catalog identity); tail pages go back to the pager free list.
func (h *HeapFile) Truncate() error {
	pg, err := h.pager.Fetch(h.head)
	if err != nil {
		return err
	}
	tail := pg.Next()
	pg.Init()
	pg.SetNext(InvalidPageID)
	h.pager.Unpin(pg)
	h.lastWithRoom = h.head
	return h.pager.FreeChain(tail)
}

// Drop releases every page of the file to the pager free list. The heap
// must not be used afterwards.
func (h *HeapFile) Drop() error {
	head := h.head
	h.head = InvalidPageID
	return h.pager.FreeChain(head)
}
