package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestPageInsertGetDelete(t *testing.T) {
	var p Page
	p.Init()
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Record(s1), []byte("hello")) || !bytes.Equal(p.Record(s2), []byte("world!")) {
		t.Fatal("records corrupted")
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if p.Record(s1) != nil {
		t.Fatal("deleted record still readable")
	}
	if p.LiveRecords() != 1 {
		t.Fatalf("live records = %d, want 1", p.LiveRecords())
	}
	// Dead slot gets reused.
	s3, err := p.Insert([]byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("dead slot not reused: got %d want %d", s3, s1)
	}
}

func TestPageDeleteErrors(t *testing.T) {
	var p Page
	p.Init()
	if err := p.Delete(0); err == nil {
		t.Fatal("delete of nonexistent slot succeeded")
	}
	s, _ := p.Insert([]byte("x"))
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(s); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestPageFillAndCompact(t *testing.T) {
	var p Page
	p.Init()
	rec := bytes.Repeat([]byte("a"), 100)
	var slots []int
	for p.HasRoom(len(rec)) {
		s, err := p.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if len(slots) < 30 {
		t.Fatalf("expected ~39 records per page, got %d", len(slots))
	}
	if _, err := p.Insert(rec); err == nil {
		t.Fatal("insert into full page succeeded")
	}
	// Delete every other record, compact, verify survivors.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.Compact()
	for i := 1; i < len(slots); i += 2 {
		if !bytes.Equal(p.Record(slots[i]), rec) {
			t.Fatalf("record %d lost after compact", slots[i])
		}
	}
	// Compaction must have opened room.
	if !p.HasRoom(len(rec)) {
		t.Fatal("no room after compact")
	}
}

func TestPageOversizeRecord(t *testing.T) {
	var p Page
	p.Init()
	if _, err := p.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestPagerAllocateFetchPersist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	slot, err := pg.Insert([]byte("persistent"))
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	p.Unpin(pg)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.PageCount() != 1 {
		t.Fatalf("page count after reopen = %d", p2.PageCount())
	}
	pg2, err := p2.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Unpin(pg2)
	if !bytes.Equal(pg2.Record(slot), []byte("persistent")) {
		t.Fatal("record lost across close/reopen")
	}
}

func TestPagerEviction(t *testing.T) {
	p := NewMemPager(4)
	var ids []PageID
	for i := 0; i < 16; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pg.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pg.ID)
		p.Unpin(pg)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("expected evictions with a 4-page pool and 16 pages")
	}
	// All pages must still be readable (write-back on eviction).
	for i, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec := pg.Record(0); len(rec) != 1 || rec[0] != byte(i) {
			t.Fatalf("page %d content lost across eviction", id)
		}
		p.Unpin(pg)
	}
}

func TestPagerFetchUnallocated(t *testing.T) {
	p := NewMemPager(4)
	if _, err := p.Fetch(0); err == nil {
		t.Fatal("fetch of unallocated page succeeded")
	}
}

func TestHeapInsertScanDelete(t *testing.T) {
	p := NewMemPager(32)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	cnt, err := h.Count()
	if err != nil || cnt != n {
		t.Fatalf("count = %d, %v; want %d", cnt, err, n)
	}
	// Point lookups.
	for i := 0; i < n; i += 37 {
		rec, err := h.Get(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(rec) != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d corrupted: %q", i, rec)
		}
	}
	// Delete a third; verify survivors via scan.
	deleted := make(map[RID]bool)
	for i := 0; i < n; i += 3 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
		deleted[rids[i]] = true
	}
	seen := 0
	err = h.Scan(func(rid RID, rec []byte) error {
		if deleted[rid] {
			return fmt.Errorf("deleted rid %s still in scan", rid)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := n - len(deleted); seen != want {
		t.Fatalf("scan saw %d records, want %d", seen, want)
	}
}

func TestHeapGetErrors(t *testing.T) {
	p := NewMemPager(8)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Fatal("get of deleted record succeeded")
	}
}

func TestHeapTruncate(t *testing.T) {
	p := NewMemPager(64)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Truncate(); err != nil {
		t.Fatal(err)
	}
	cnt, err := h.Count()
	if err != nil || cnt != 0 {
		t.Fatalf("count after truncate = %d, %v", cnt, err)
	}
	// Heap stays usable.
	if _, err := h.Insert([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	cnt, _ = h.Count()
	if cnt != 1 {
		t.Fatalf("count after reinsert = %d", cnt)
	}
}

func TestHeapReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pages")
	p, err := OpenPager(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	head := h.Head()
	for i := 0; i < 300; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("row%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPager(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	h2 := OpenHeap(p2, head)
	cnt, err := h2.Count()
	if err != nil || cnt != 300 {
		t.Fatalf("count after reopen = %d, %v", cnt, err)
	}
}

func TestHeapRandomizedAgainstModel(t *testing.T) {
	// Model-based randomized test: the heap must agree with a map model
	// under a random interleaving of inserts, deletes and lookups.
	p := NewMemPager(16)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[RID]string)
	var live []RID
	r := rand.New(rand.NewSource(42))
	for op := 0; op < 5000; op++ {
		switch {
		case len(live) == 0 || r.Intn(3) > 0:
			rec := fmt.Sprintf("v%d-%d", op, r.Intn(1000))
			rid, err := h.Insert([]byte(rec))
			if err != nil {
				t.Fatal(err)
			}
			if _, clash := model[rid]; clash {
				t.Fatalf("rid %s handed out twice while live", rid)
			}
			model[rid] = rec
			live = append(live, rid)
		default:
			i := r.Intn(len(live))
			rid := live[i]
			got, err := h.Get(rid)
			if err != nil || string(got) != model[rid] {
				t.Fatalf("get %s = %q, %v; want %q", rid, got, err, model[rid])
			}
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Final state check via scan.
	got := make(map[RID]string)
	if err := h.Scan(func(rid RID, rec []byte) error {
		got[rid] = string(rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("scan found %d records, model has %d", len(got), len(model))
	}
	for rid, want := range model {
		if got[rid] != want {
			t.Fatalf("rid %s = %q, want %q", rid, got[rid], want)
		}
	}
}

func TestPagerStats(t *testing.T) {
	p := NewMemPager(8)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	p.Unpin(pg)
	if _, err := p.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Hits == 0 {
		t.Fatal("expected a buffer-pool hit")
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	p := NewMemPager(4096)
	h, err := CreateHeap(p)
	if err != nil {
		b.Fatal(err)
	}
	rec := bytes.Repeat([]byte("x"), 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	p := NewMemPager(4096)
	h, _ := CreateHeap(p)
	rec := bytes.Repeat([]byte("x"), 32)
	for i := 0; i < 10000; i++ {
		h.Insert(rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := h.Scan(func(RID, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10000 {
			b.Fatal("short scan")
		}
	}
}

func TestHeapStats(t *testing.T) {
	p := NewMemPager(64)
	h, err := CreateHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := h.Insert([]byte("record"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if _, err := h.Get(rids[3]); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rids[4]); err != nil {
		t.Fatal(err)
	}
	if err := h.Scan(func(RID, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	want := HeapStats{Reads: 1, Inserts: 10, Deletes: 1, Scans: 1, PagesScanned: 1, RecsScanned: 9}
	if st != want {
		t.Fatalf("Stats() = %+v, want %+v", st, want)
	}
	// Sub yields the traffic between two snapshots.
	if _, err := h.Insert([]byte("more")); err != nil {
		t.Fatal(err)
	}
	d := h.Stats().Sub(st)
	if d != (HeapStats{Inserts: 1}) {
		t.Fatalf("delta = %+v, want one insert", d)
	}
	if h.Pager() != p {
		t.Fatal("Pager() must return the backing pager")
	}
}

func TestPagerShardStats(t *testing.T) {
	p := NewMemPager(64)
	h, _ := CreateHeap(p)
	for i := 0; i < 100; i++ {
		h.Insert([]byte("record-payload-to-fill-pages-quickly"))
	}
	h.Scan(func(RID, []byte) error { return nil })
	per := p.ShardStats()
	if len(per) != p.Shards() {
		t.Fatalf("ShardStats has %d entries, want %d", len(per), p.Shards())
	}
	var sum PagerStats
	for _, s := range per {
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Evictions += s.Evictions
		sum.Writes += s.Writes
	}
	if sum != p.Stats() {
		t.Fatalf("shard sum %+v != aggregate %+v", sum, p.Stats())
	}
	if sum.Hits == 0 {
		t.Fatal("expected buffer-pool hits after scanning resident pages")
	}
}
