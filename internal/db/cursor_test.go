package db

import (
	"testing"
)

func TestCursorFetchLoop(t *testing.T) {
	d := family(t)
	stmt, err := d.Prepare("SELECT chd FROM parent WHERE par = 'john'")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Schema().Col(0).Name != "chd" {
		t.Fatalf("schema %v", cur.Schema())
	}
	var got []string
	for {
		tu, err := cur.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if tu == nil {
			break
		}
		got = append(got, tu[0].Str)
	}
	if len(got) != 2 {
		t.Fatalf("fetched %v", got)
	}
}

func TestCursorReexecutionSeesNewData(t *testing.T) {
	// The paper's precompiled embedded queries re-open cursors against
	// fresh data; each Open replans against current table state.
	d := family(t)
	stmt, err := d.Prepare("SELECT COUNT(*) FROM parent")
	if err != nil {
		t.Fatal(err)
	}
	count := func() int64 {
		cur, err := stmt.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		tu, err := cur.Fetch()
		if err != nil || tu == nil {
			t.Fatalf("fetch: %v %v", tu, err)
		}
		return tu[0].Int
	}
	if n := count(); n != 5 {
		t.Fatalf("count = %d", n)
	}
	mustExec(t, d, "INSERT INTO parent VALUES ('lea','zoe')")
	if n := count(); n != 6 {
		t.Fatalf("count after insert = %d", n)
	}
}

func TestCursorErrors(t *testing.T) {
	d := family(t)
	if _, err := d.Prepare("DELETE FROM parent"); err == nil {
		t.Fatal("non-SELECT prepared")
	}
	if _, err := d.Prepare("SELEKT x"); err == nil {
		t.Fatal("garbage prepared")
	}
	stmt, err := d.Prepare("SELECT par FROM parent")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := stmt.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); err == nil {
		t.Fatal("fetch on closed cursor succeeded")
	}
	if err := cur.Close(); err != nil {
		t.Fatal("double close errored")
	}
	// Prepared against a table that later disappears: Open must fail
	// cleanly.
	stmt2, err := d.Prepare("SELECT x FROM ghost")
	if err != nil {
		t.Fatal(err) // parsing succeeds; planning happens at Open
	}
	if _, err := stmt2.Open(); err == nil {
		t.Fatal("open against missing table succeeded")
	}
	if stmt.Source() == "" {
		t.Fatal("source lost")
	}
}
