// Package db is the embedded relational DBMS the Knowledge Manager
// targets — the testbed's stand-in for the paper's commercial relational
// database with an embedded-SQL interface. It ties together the SQL
// front-end, the planner, the executor and the storage engine behind a
// small Exec/Query API.
package db

import (
	"context"
	"fmt"
	"sync/atomic"

	"dkbms/internal/catalog"
	"dkbms/internal/exec"
	"dkbms/internal/obs"
	"dkbms/internal/plan"
	"dkbms/internal/rel"
	"dkbms/internal/sql"
	"dkbms/internal/storage"
)

// TableResolver resolves base-table names to pinned physical table
// versions. A snapshot implements it; a DB view carrying one binds
// every statement it executes to that snapshot's state.
//
// ResolveTable reports the table (possibly nil) and whether the
// resolver is authoritative for the name. Non-authoritative names fall
// through to the live catalog — that is how session-private temp
// tables, which are created during evaluation and are never
// snapshotted, keep resolving.
type TableResolver interface {
	ResolveTable(name string) (t *catalog.Table, authoritative bool)
}

// DB is one open database, or a resolver-bound view of one (see
// WithResolver). Views share the pager, catalog and statement counters
// with their parent; only name resolution differs.
type DB struct {
	pager *storage.Pager
	cat   *catalog.Catalog
	res   TableResolver

	// stats counts statement traffic for the measurement harness. It is
	// a pointer so resolver views accumulate into the same counters.
	stats *Stats
}

// Stats are cumulative statement counters. Counters are updated
// atomically: read-only statements may run concurrently (the run-time
// library's parallel rule evaluation and the server's concurrent
// sessions do). Readers that may race an in-flight statement must use
// DB.StatsSnapshot rather than loading the fields directly.
type Stats struct {
	Selects int64
	Inserts int64
	// InsertedRows counts rows written by INSERT statements.
	InsertedRows int64
	Deletes      int64
	DDL          int64
}

// StatsSnapshot returns the statement counters read with atomic loads,
// safe to call while statements execute on other goroutines.
func (d *DB) StatsSnapshot() Stats {
	return Stats{
		Selects:      atomic.LoadInt64(&d.stats.Selects),
		Inserts:      atomic.LoadInt64(&d.stats.Inserts),
		InsertedRows: atomic.LoadInt64(&d.stats.InsertedRows),
		Deletes:      atomic.LoadInt64(&d.stats.Deletes),
		DDL:          atomic.LoadInt64(&d.stats.DDL),
	}
}

// WithResolver returns a view of the database whose base-table name
// resolution goes through r first. The view shares everything else —
// pager, catalog, counters — with the receiver; it is how a query
// evaluates against a pinned snapshot while the live catalog moves.
func (d *DB) WithResolver(r TableResolver) *DB {
	return &DB{pager: d.pager, cat: d.cat, res: r, stats: d.stats}
}

// Table resolves a table name: through the view's resolver when it is
// authoritative for the name, otherwise in the live catalog. This is
// the single binding point between statement execution and physical
// tables — the planner, DML executors and row-count probes all pass
// through it.
func (d *DB) Table(name string) *catalog.Table {
	if d.res != nil {
		if t, ok := d.res.ResolveTable(name); ok {
			return t
		}
	}
	return d.cat.Table(name)
}

// Open opens (creating if needed) a file-backed database with the
// default buffer-pool size.
func Open(path string) (*DB, error) { return OpenWithPool(path, 0) }

// OpenWithPool opens a file-backed database with an explicit buffer
// pool capacity in pages (0 = default). Small pools force eviction
// traffic; tests and memory-constrained deployments use this.
func OpenWithPool(path string, poolPages int) (*DB, error) {
	pager, err := storage.OpenPager(path, poolPages)
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(pager)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return &DB{pager: pager, cat: cat, stats: &Stats{}}, nil
}

// OpenMemory opens a fresh in-memory database.
func OpenMemory() *DB {
	pager := storage.NewMemPager(0)
	cat, err := catalog.Open(pager)
	if err != nil {
		// A fresh memory pager cannot fail to initialize; treat as a
		// programming error.
		panic(fmt.Sprintf("db: init memory database: %v", err))
	}
	return &DB{pager: pager, cat: cat, stats: &Stats{}}
}

// Close flushes and closes the database.
func (d *DB) Close() error { return d.pager.Close() }

// Catalog exposes the schema manager (the KM's stored-D/KB manager uses
// it for direct bulk loads that bypass SQL parsing).
func (d *DB) Catalog() *catalog.Catalog { return d.cat }

// Rows is a fully-materialized query result.
type Rows struct {
	Schema *rel.Schema
	Tuples []rel.Tuple
}

// Exec parses and executes a statement that returns no rows (DDL, DML).
// Executing a SELECT through Exec is an error; use Query.
func (d *DB) Exec(stmt string) error { return d.ExecTraced(stmt, nil) }

// ExecTraced is Exec with optional operator-level tracing: when sp is
// non-nil, an INSERT ... SELECT statement records its operator tree
// (rows emitted per scan/join/filter) as child spans of sp. A nil sp
// costs one nil check over Exec.
func (d *DB) ExecTraced(stmt string, sp *obs.Span) error {
	return d.ExecTracedCtx(context.Background(), stmt, sp)
}

// ExecTracedCtx is ExecTraced with statement cancellation: an
// INSERT ... SELECT observes ctx between source tuples and aborts with
// ctx.Err() when it is cancelled. Other statement forms do bounded work
// and ignore ctx.
func (d *DB) ExecTracedCtx(ctx context.Context, stmt string, sp *obs.Span) error {
	st, err := sql.Parse(stmt)
	if err != nil {
		return err
	}
	switch s := st.(type) {
	case *sql.Select:
		return fmt.Errorf("db: Exec called with a SELECT; use Query")
	case sql.CreateTable:
		return d.execCreateTable(s)
	case sql.DropTable:
		return d.execDropTable(s)
	case sql.CreateIndex:
		return d.execCreateIndex(s)
	case sql.DropIndex:
		atomic.AddInt64(&d.stats.DDL, 1)
		return d.cat.DropIndex(s.Name)
	case sql.Insert:
		return d.execInsert(ctx, s, sp)
	case sql.Delete:
		return d.execDelete(s)
	default:
		return fmt.Errorf("db: unhandled statement %T", st)
	}
}

// Query parses, plans and fully evaluates a SELECT.
func (d *DB) Query(stmt string) (*Rows, error) { return d.QueryTraced(stmt, nil) }

// QueryTraced is Query with optional operator-level tracing: when sp is
// non-nil the SELECT's operator tree (rows emitted per operator) is
// recorded as child spans of sp. A nil sp costs one nil check.
func (d *DB) QueryTraced(stmt string, sp *obs.Span) (*Rows, error) {
	return d.QueryTracedCtx(context.Background(), stmt, sp)
}

// QueryTracedCtx is QueryTraced with statement cancellation: the drain
// observes ctx between result tuples and aborts with ctx.Err() when it
// is cancelled, so a long scan or join stops mid-statement instead of
// running to completion.
func (d *DB) QueryTracedCtx(ctx context.Context, stmt string, sp *obs.Span) (*Rows, error) {
	st, err := sql.Parse(stmt)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("db: Query called with a non-SELECT %T; use Exec", st)
	}
	return d.runSelect(ctx, sel, sp)
}

// QueryCount evaluates a SELECT COUNT(*) (or any single-int-row query)
// and returns the count.
func (d *DB) QueryCount(stmt string) (int64, error) {
	rows, err := d.Query(stmt)
	if err != nil {
		return 0, err
	}
	if len(rows.Tuples) != 1 || len(rows.Tuples[0]) != 1 || rows.Tuples[0][0].Kind != rel.TypeInt {
		return 0, fmt.Errorf("db: QueryCount: result is not a single integer")
	}
	return rows.Tuples[0][0].Int, nil
}

// InsertTuples appends tuples to a table directly, bypassing SQL text.
// The run-time library's evaluation loops install thousands of derived
// tuples per iteration; rendering and parsing one INSERT statement per
// tuple is pure interface overhead (the paper's §5 complaint about its
// SQL-only DBMS interface), so the bulk path goes straight to the
// catalog's index-maintaining insert. Counted as a single INSERT
// statement plus one row per tuple, like INSERT ... SELECT.
func (d *DB) InsertTuples(table string, tuples []rel.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	atomic.AddInt64(&d.stats.Inserts, 1)
	t := d.Table(table)
	if t == nil {
		return fmt.Errorf("db: no table %s", table)
	}
	for _, tu := range tuples {
		if _, err := t.Insert(tu); err != nil {
			return err
		}
		atomic.AddInt64(&d.stats.InsertedRows, 1)
	}
	return nil
}

func (d *DB) runSelect(ctx context.Context, sel *sql.Select, sp *obs.Span) (*Rows, error) {
	atomic.AddInt64(&d.stats.Selects, 1)
	op, err := plan.BuildSelect(d, sel)
	if err != nil {
		return nil, err
	}
	op, flush := exec.Instrument(op, sp)
	defer flush()
	tuples, err := exec.CollectCtx(ctx, op)
	if err != nil {
		return nil, err
	}
	return &Rows{Schema: op.Schema(), Tuples: tuples}, nil
}

func (d *DB) execCreateTable(s sql.CreateTable) error {
	atomic.AddInt64(&d.stats.DDL, 1)
	schema, err := rel.NewSchema(s.Columns...)
	if err != nil {
		return err
	}
	_, err = d.cat.CreateTable(s.Name, schema, s.Temp)
	return err
}

func (d *DB) execDropTable(s sql.DropTable) error {
	atomic.AddInt64(&d.stats.DDL, 1)
	if d.cat.Table(s.Name) == nil && s.IfExists {
		return nil
	}
	return d.cat.DropTable(s.Name)
}

func (d *DB) execCreateIndex(s sql.CreateIndex) error {
	atomic.AddInt64(&d.stats.DDL, 1)
	_, err := d.cat.CreateIndex(s.Name, s.Table, s.Columns, false)
	return err
}

func (d *DB) execInsert(ctx context.Context, s sql.Insert, sp *obs.Span) error {
	atomic.AddInt64(&d.stats.Inserts, 1)
	t := d.Table(s.Table)
	if t == nil {
		return fmt.Errorf("db: no table %s", s.Table)
	}
	if s.Query != nil {
		op, err := plan.BuildSelect(d, s.Query)
		if err != nil {
			return err
		}
		if !op.Schema().TypesCompatible(t.Schema) {
			return fmt.Errorf("db: INSERT INTO %s: select schema %v incompatible with table schema %v",
				s.Table, op.Schema(), t.Schema)
		}
		op, flush := exec.Instrument(op, sp)
		defer flush()
		// Materialize before writing so self-referential inserts
		// (INSERT INTO t SELECT ... FROM t) read a stable snapshot.
		tuples, err := exec.CollectCtx(ctx, op)
		if err != nil {
			return err
		}
		for _, tu := range tuples {
			if _, err := t.Insert(tu); err != nil {
				return err
			}
			atomic.AddInt64(&d.stats.InsertedRows, 1)
		}
		return nil
	}
	for _, row := range s.Rows {
		tu := make(rel.Tuple, len(row))
		for i, e := range row {
			lit, ok := e.(sql.Literal)
			if !ok {
				return fmt.Errorf("db: non-literal in VALUES row")
			}
			tu[i] = lit.Value
		}
		if _, err := t.Insert(tu); err != nil {
			return err
		}
		atomic.AddInt64(&d.stats.InsertedRows, 1)
	}
	return nil
}

func (d *DB) execDelete(s sql.Delete) error {
	atomic.AddInt64(&d.stats.Deletes, 1)
	t := d.Table(s.Table)
	if t == nil {
		return fmt.Errorf("db: no table %s", s.Table)
	}
	if s.Where == nil {
		return t.Truncate()
	}
	// Resolve the predicate against the table schema (single-table
	// scope), collect victims, then delete.
	pred, err := plan.BindTablePred(t, s.Where)
	if err != nil {
		return err
	}
	type victim struct {
		rid storage.RID
		tu  rel.Tuple
	}
	var victims []victim
	err = t.Scan(func(rid storage.RID, tu rel.Tuple) error {
		if pred.Holds(tu) {
			victims = append(victims, victim{rid, tu})
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, v := range victims {
		if err := t.DeleteRID(v.rid, v.tu); err != nil {
			return err
		}
	}
	return nil
}

// TableRows returns the maintained row count of a table (0 if absent).
func (d *DB) TableRows(name string) int {
	t := d.Table(name)
	if t == nil {
		return 0
	}
	return t.Rows()
}

// HasTable reports whether the table exists.
func (d *DB) HasTable(name string) bool { return d.Table(name) != nil }

// Flush persists dirty pages (no-op cost for memory databases).
func (d *DB) Flush() error { return d.pager.Flush() }

// PagerStats returns a snapshot of the buffer-pool counters.
func (d *DB) PagerStats() storage.PagerStats { return d.pager.Stats() }

// PagerShardStats returns the buffer-pool counters per stripe.
func (d *DB) PagerShardStats() []storage.PagerStats { return d.pager.ShardStats() }
