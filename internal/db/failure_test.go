package db

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOpenRejectsNonDatabaseFile: a file with the wrong magic must be
// refused, not misinterpreted.
func TestOpenRejectsNonDatabaseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-db")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("zero-filled file opened as a database")
	}
}

// TestOpenRejectsTruncatedFile: a file whose size is not a multiple of
// the page size is corrupt.
func TestOpenRejectsTruncatedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.db")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE t (x INTEGER)", "INSERT INTO t VALUES (1)")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("truncated file opened")
	}
}

// TestSurvivesCatalogOfManyTables: churn a few hundred DDL operations
// and reopen; the catalog heap must replay cleanly.
func TestSurvivesCatalogOfManyTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.db")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustExec(t, d,
			"CREATE TABLE t"+itoa(i)+" (a INTEGER, b CHAR)",
			"CREATE INDEX ix"+itoa(i)+" ON t"+itoa(i)+" (a)",
			"INSERT INTO t"+itoa(i)+" VALUES ("+itoa(i)+", 'v')",
		)
		if i%3 == 0 && i > 0 {
			mustExec(t, d, "DROP TABLE t"+itoa(i-1))
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Spot checks.
	rows := mustQuery(t, d2, "SELECT b FROM t0 WHERE a = 0")
	if len(rows.Tuples) != 1 || rows.Tuples[0][0].Str != "v" {
		t.Fatalf("t0 contents: %v", rows.Tuples)
	}
	if d2.HasTable("t2") {
		t.Fatal("dropped table resurrected")
	}
	if !d2.HasTable("t99") {
		t.Fatal("t99 lost")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestDeleteDuringIteration: DELETE collects victims before removing,
// so a predicate matching everything is safe.
func TestDeleteDuringIteration(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d, "CREATE TABLE t (x INTEGER)")
	for i := 0; i < 1000; i++ {
		mustExec(t, d, "INSERT INTO t VALUES ("+itoa(i)+")")
	}
	mustExec(t, d, "DELETE FROM t WHERE x >= 0")
	if n := d.TableRows("t"); n != 0 {
		t.Fatalf("%d rows left", n)
	}
}

// TestLargeStrings: strings spanning a good fraction of a page round-trip.
func TestLargeStrings(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d, "CREATE TABLE t (s CHAR)")
	big := make([]byte, 3000)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	mustExec(t, d, "INSERT INTO t VALUES ('"+string(big)+"')")
	rows := mustQuery(t, d, "SELECT s FROM t")
	if len(rows.Tuples) != 1 || rows.Tuples[0][0].Str != string(big) {
		t.Fatal("large string corrupted")
	}
	// Oversized record must fail cleanly, not corrupt the page.
	huge := make([]byte, 5000)
	for i := range huge {
		huge[i] = 'x'
	}
	if err := d.Exec("INSERT INTO t VALUES ('" + string(huge) + "')"); err == nil {
		t.Fatal("page-exceeding record accepted")
	}
	rows = mustQuery(t, d, "SELECT COUNT(*) FROM t")
	if rows.Tuples[0][0].Int != 1 {
		t.Fatal("failed insert changed row count")
	}
}

// TestTinyBufferPoolEndToEnd runs a join workload through a pool far
// smaller than the data, forcing eviction and write-back on every scan.
func TestTinyBufferPoolEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.db")
	d, err := OpenWithPool(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE e (a INTEGER, b INTEGER)", "CREATE INDEX e_a ON e (a)")
	for i := 0; i < 3000; i++ {
		mustExec(t, d, "INSERT INTO e VALUES ("+itoa(i%100)+", "+itoa(i)+")")
	}
	if d.PagerStats().Evictions == 0 {
		t.Fatal("expected evictions with an 8-page pool")
	}
	n, err := d.QueryCount("SELECT COUNT(*) FROM e WHERE a = 7")
	if err != nil || n != 30 {
		t.Fatalf("count = %d, %v", n, err)
	}
	rows := mustQuery(t, d, "SELECT t0.b FROM e t0, e t1 WHERE t0.a = t1.b AND t1.a = 7")
	if len(rows.Tuples) == 0 {
		t.Fatal("join under eviction returned nothing")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify durability through all that eviction traffic.
	d2, err := OpenWithPool(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	n, err = d2.QueryCount("SELECT COUNT(*) FROM e")
	if err != nil || n != 3000 {
		t.Fatalf("rows after reopen = %d, %v", n, err)
	}
}
