package db

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dkbms/internal/rel"
)

func mustExec(t *testing.T, d *DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if err := d.Exec(s); err != nil {
			t.Fatalf("Exec(%q): %v", s, err)
		}
	}
}

func mustQuery(t *testing.T, d *DB, q string) *Rows {
	t.Helper()
	rows, err := d.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return rows
}

// rowStrings renders and sorts result tuples for order-insensitive
// comparison.
func rowStrings(rows *Rows) []string {
	out := make([]string, len(rows.Tuples))
	for i, tu := range rows.Tuples {
		out[i] = tu.String()
	}
	sort.Strings(out)
	return out
}

func wantRows(t *testing.T, rows *Rows, want ...string) {
	t.Helper()
	got := rowStrings(rows)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %s, want %s (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func family(t *testing.T) *DB {
	t.Helper()
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE parent (par CHAR, chd CHAR)",
		"INSERT INTO parent VALUES ('john','mary'), ('john','bob'), ('mary','ann'), ('mary','tom'), ('bob','lea')",
	)
	return d
}

func TestSelectAll(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d, "SELECT * FROM parent")
	if len(rows.Tuples) != 5 {
		t.Fatalf("%d rows", len(rows.Tuples))
	}
	if rows.Schema.String() != "(par CHAR, chd CHAR)" {
		t.Fatalf("schema %v", rows.Schema)
	}
}

func TestSelectWhereEquality(t *testing.T) {
	d := family(t)
	wantRows(t, mustQuery(t, d, "SELECT chd FROM parent WHERE par = 'mary'"), "(ann)", "(tom)")
}

func TestSelectProjectionAndAlias(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d, "SELECT chd AS kid, par FROM parent WHERE par = 'john'")
	if rows.Schema.Col(0).Name != "kid" || rows.Schema.Col(1).Name != "par" {
		t.Fatalf("schema %v", rows.Schema)
	}
	wantRows(t, rows, "(mary, john)", "(bob, john)")
}

func TestSelfJoinGrandparents(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d,
		"SELECT t0.par, t1.chd FROM parent t0, parent t1 WHERE t0.chd = t1.par")
	wantRows(t, rows,
		"(john, ann)", "(john, tom)", "(john, lea)",
		// john->bob->lea and john->mary->{ann,tom}
	)
}

func TestThreeWayJoin(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d,
		"SELECT t0.par, t2.chd FROM parent t0, parent t1, parent t2 WHERE t0.chd = t1.par AND t1.chd = t2.par")
	wantRows(t, rows) // john->mary->ann has no children; john->bob->lea has none; so empty
}

func TestJoinWithConstantBinding(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d,
		"SELECT t1.chd FROM parent t0, parent t1 WHERE t0.par = 'john' AND t0.chd = t1.par")
	wantRows(t, rows, "(ann)", "(tom)", "(lea)")
}

func TestDistinct(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d, "SELECT DISTINCT par FROM parent")
	wantRows(t, rows, "(john)", "(mary)", "(bob)")
}

func TestCountStar(t *testing.T) {
	d := family(t)
	n, err := d.QueryCount("SELECT COUNT(*) FROM parent WHERE par = 'john'")
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	n, err = d.QueryCount("SELECT COUNT(*) FROM parent")
	if err != nil || n != 5 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestComparisonOperators(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE nums (n INTEGER)",
		"INSERT INTO nums VALUES (1), (2), (3), (4), (5)",
	)
	cases := []struct {
		where string
		want  int
	}{
		{"n = 3", 1}, {"n <> 3", 4}, {"n < 3", 2}, {"n <= 3", 3},
		{"n > 3", 2}, {"n >= 3", 3}, {"n > 1 AND n < 5", 3},
		{"n = 1 OR n = 5", 2}, {"NOT n = 3", 4},
		{"n >= 2 AND (n = 2 OR n = 4)", 2},
	}
	for _, c := range cases {
		rows := mustQuery(t, d, "SELECT n FROM nums WHERE "+c.where)
		if len(rows.Tuples) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(rows.Tuples), c.want)
		}
	}
}

func TestSetOperations(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE a (x INTEGER)", "CREATE TABLE b (x INTEGER)",
		"INSERT INTO a VALUES (1), (2), (3), (3)",
		"INSERT INTO b VALUES (3), (4)",
	)
	wantRows(t, mustQuery(t, d, "SELECT x FROM a UNION SELECT x FROM b"), "(1)", "(2)", "(3)", "(4)")
	rows := mustQuery(t, d, "SELECT x FROM a UNION ALL SELECT x FROM b")
	if len(rows.Tuples) != 6 {
		t.Fatalf("union all: %d", len(rows.Tuples))
	}
	wantRows(t, mustQuery(t, d, "SELECT x FROM a EXCEPT SELECT x FROM b"), "(1)", "(2)")
	wantRows(t, mustQuery(t, d, "SELECT x FROM a INTERSECT SELECT x FROM b"), "(3)")
	// Left-associative chains.
	wantRows(t, mustQuery(t, d,
		"SELECT x FROM a EXCEPT SELECT x FROM b UNION SELECT x FROM b"), "(1)", "(2)", "(3)", "(4)")
}

func TestSetOpIncompatible(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE a (x INTEGER)", "CREATE TABLE s (y CHAR)",
		"INSERT INTO a VALUES (1)", "INSERT INTO s VALUES ('q')",
	)
	if _, err := d.Query("SELECT x FROM a UNION SELECT y FROM s"); err == nil {
		t.Fatal("incompatible union accepted")
	}
}

func TestInsertSelect(t *testing.T) {
	d := family(t)
	mustExec(t, d,
		"CREATE TABLE anc (a CHAR, d CHAR)",
		"INSERT INTO anc SELECT par, chd FROM parent",
	)
	if n := d.TableRows("anc"); n != 5 {
		t.Fatalf("anc rows = %d", n)
	}
	// Self-referential insert sees a stable snapshot.
	mustExec(t, d, "INSERT INTO anc SELECT a, d FROM anc")
	if n := d.TableRows("anc"); n != 10 {
		t.Fatalf("anc rows after self-insert = %d", n)
	}
}

func TestInsertSelectTypeMismatch(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE a (x INTEGER)", "CREATE TABLE s (y CHAR)",
		"INSERT INTO s VALUES ('q')",
	)
	if err := d.Exec("INSERT INTO a SELECT y FROM s"); err == nil {
		t.Fatal("type-incompatible INSERT SELECT accepted")
	}
}

func TestDelete(t *testing.T) {
	d := family(t)
	mustExec(t, d, "DELETE FROM parent WHERE par = 'mary'")
	if n := d.TableRows("parent"); n != 3 {
		t.Fatalf("rows after delete = %d", n)
	}
	mustExec(t, d, "DELETE FROM parent")
	if n := d.TableRows("parent"); n != 0 {
		t.Fatalf("rows after delete-all = %d", n)
	}
}

func TestIndexedQueryCorrectness(t *testing.T) {
	// The same queries must return identical results with and without
	// an index (access-path selection must not change semantics).
	build := func(withIndex bool) *DB {
		d := OpenMemory()
		mustExec(t, d, "CREATE TABLE e (src INTEGER, dst INTEGER)")
		if withIndex {
			mustExec(t, d, "CREATE INDEX e_src ON e (src)")
		}
		r := rand.New(rand.NewSource(11))
		var stmts []string
		for i := 0; i < 500; i++ {
			stmts = append(stmts, fmt.Sprintf("INSERT INTO e VALUES (%d, %d)", r.Intn(50), r.Intn(50)))
		}
		mustExec(t, d, stmts...)
		return d
	}
	plain, indexed := build(false), build(true)
	queries := []string{
		"SELECT dst FROM e WHERE src = 7",
		"SELECT src FROM e WHERE dst = 3 AND src = 7",
		"SELECT DISTINCT t0.src, t1.dst FROM e t0, e t1 WHERE t0.dst = t1.src AND t0.src = 5",
		"SELECT COUNT(*) FROM e WHERE src = 20",
	}
	for _, q := range queries {
		a := rowStrings(mustQuery(t, plain, q))
		b := rowStrings(mustQuery(t, indexed, q))
		if strings.Join(a, "|") != strings.Join(b, "|") {
			t.Errorf("query %q differs with index: %v vs %v", q, a, b)
		}
	}
}

func TestCompositeIndexPrefix(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE r (a CHAR, b CHAR, c INTEGER)",
		"CREATE INDEX r_ab ON r (a, b)",
		"INSERT INTO r VALUES ('x','p',1), ('x','q',2), ('y','p',3)",
	)
	wantRows(t, mustQuery(t, d, "SELECT c FROM r WHERE a = 'x'"), "(1)", "(2)")
	wantRows(t, mustQuery(t, d, "SELECT c FROM r WHERE a = 'x' AND b = 'q'"), "(2)")
}

func TestCrossJoin(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE a (x INTEGER)", "CREATE TABLE b (y INTEGER)",
		"INSERT INTO a VALUES (1), (2)", "INSERT INTO b VALUES (10), (20)",
	)
	rows := mustQuery(t, d, "SELECT x, y FROM a, b")
	if len(rows.Tuples) != 4 {
		t.Fatalf("cross join: %d rows", len(rows.Tuples))
	}
	// Non-equi join predicate (residual on cross product).
	rows = mustQuery(t, d, "SELECT x, y FROM a, b WHERE y > x")
	if len(rows.Tuples) != 4 {
		t.Fatalf("non-equi join: %d rows", len(rows.Tuples))
	}
	// Cross-table OR (residual).
	rows = mustQuery(t, d, "SELECT x, y FROM a, b WHERE x = 1 OR y = 20")
	if len(rows.Tuples) != 3 {
		t.Fatalf("cross-table OR: %d rows", len(rows.Tuples))
	}
}

func TestStarOverJoinDeduplicatesNames(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d, "SELECT * FROM parent t0, parent t1 WHERE t0.chd = t1.par")
	if rows.Schema.Len() != 4 {
		t.Fatalf("schema %v", rows.Schema)
	}
	names := map[string]bool{}
	for _, c := range rows.Schema.Columns() {
		if names[c.Name] {
			t.Fatalf("duplicate column name %s in %v", c.Name, rows.Schema)
		}
		names[c.Name] = true
	}
}

func TestErrors(t *testing.T) {
	d := family(t)
	for _, q := range []string{
		"SELECT nope FROM parent",
		"SELECT par FROM nosuch",
		"SELECT t9.par FROM parent t0",
		"SELECT par FROM parent WHERE par = 5",               // type mismatch
		"SELECT par FROM parent p, parent p WHERE par = 'x'", // dup alias; also ambiguous
	} {
		if _, err := d.Query(q); err == nil {
			t.Errorf("Query(%q) unexpectedly succeeded", q)
		}
	}
	if err := d.Exec("SELECT par FROM parent"); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := d.Query("DELETE FROM parent"); err == nil {
		t.Error("Query of DELETE accepted")
	}
	if err := d.Exec("INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Error("insert into missing table accepted")
	}
	if err := d.Exec("DELETE FROM nosuch"); err == nil {
		t.Error("delete from missing table accepted")
	}
	// Ambiguous unqualified column across two tables.
	if _, err := d.Query("SELECT par FROM parent t0, parent t1 WHERE t0.par = t1.par"); err == nil {
		t.Error("ambiguous column accepted")
	}
}

func TestDropTableIfExists(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d, "DROP TABLE IF EXISTS ghost")
	if err := d.Exec("DROP TABLE ghost"); err == nil {
		t.Fatal("drop of missing table without IF EXISTS accepted")
	}
}

func TestTempTableLifecycle(t *testing.T) {
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TEMP TABLE scratch (x INTEGER)",
		"INSERT INTO scratch VALUES (1), (2)",
	)
	wantRows(t, mustQuery(t, d, "SELECT x FROM scratch"), "(1)", "(2)")
	mustExec(t, d, "DROP TABLE scratch")
	if d.HasTable("scratch") {
		t.Fatal("temp table survived drop")
	}
}

func TestPersistenceEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "family.db")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d,
		"CREATE TABLE parent (par CHAR, chd CHAR)",
		"CREATE INDEX parent_par ON parent (par)",
		"INSERT INTO parent VALUES ('john','mary'), ('mary','ann')",
	)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	wantRows(t, mustQuery(t, d2, "SELECT chd FROM parent WHERE par = 'john'"), "(mary)")
}

func TestLiteralProjection(t *testing.T) {
	d := family(t)
	rows := mustQuery(t, d, "SELECT 'anc' AS tag, par FROM parent WHERE chd = 'lea'")
	wantRows(t, rows, "(anc, bob)")
	if rows.Schema.Col(0).Type != rel.TypeString {
		t.Fatalf("schema %v", rows.Schema)
	}
}

// TestJoinAgainstReferenceModel cross-checks the planner+executor against
// a brute-force in-memory evaluation over random data and random
// conjunctive queries.
func TestJoinAgainstReferenceModel(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	d := OpenMemory()
	mustExec(t, d,
		"CREATE TABLE e (s INTEGER, d INTEGER)",
		"CREATE INDEX e_s ON e (s)",
	)
	type edge struct{ s, dd int }
	var edges []edge
	for i := 0; i < 300; i++ {
		e := edge{r.Intn(20), r.Intn(20)}
		edges = append(edges, e)
		mustExec(t, d, fmt.Sprintf("INSERT INTO e VALUES (%d, %d)", e.s, e.dd))
	}
	for trial := 0; trial < 20; trial++ {
		c := r.Intn(20)
		// Query: SELECT t0.s, t1.d FROM e t0, e t1 WHERE t0.d = t1.s AND t0.s = c
		got := rowStrings(mustQuery(t, d, fmt.Sprintf(
			"SELECT t0.s, t1.d FROM e t0, e t1 WHERE t0.d = t1.s AND t0.s = %d", c)))
		var want []string
		for _, a := range edges {
			if a.s != c {
				continue
			}
			for _, b := range edges {
				if a.dd == b.s {
					want = append(want, fmt.Sprintf("(%d, %d)", a.s, b.dd))
				}
			}
		}
		sort.Strings(want)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("trial %d (c=%d): got %d rows, want %d rows", trial, c, len(got), len(want))
		}
	}
}

func TestStatsCounters(t *testing.T) {
	d := family(t)
	mustQuery(t, d, "SELECT * FROM parent")
	st := d.StatsSnapshot()
	if st.Selects == 0 || st.Inserts == 0 || st.InsertedRows != 5 || st.DDL == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQueryCancellation pins the statement-level cancellation point: a
// cancelled context aborts a SELECT's drain (and an INSERT ... SELECT's
// source drain) with ctx.Err() instead of running the statement to
// completion, while a live context leaves results untouched.
func TestQueryCancellation(t *testing.T) {
	d := family(t)
	ctx, cancel := context.WithCancel(context.Background())

	rows, err := d.QueryTracedCtx(ctx, "SELECT * FROM parent", nil)
	if err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	if len(rows.Tuples) != 5 {
		t.Fatalf("live ctx: got %d rows, want 5", len(rows.Tuples))
	}

	cancel()
	if _, err := d.QueryTracedCtx(ctx, "SELECT * FROM parent", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SELECT: got %v, want context.Canceled", err)
	}
	mustExec(t, d, "CREATE TABLE copy2 (par CHAR, chd CHAR)")
	if err := d.ExecTracedCtx(ctx, "INSERT INTO copy2 SELECT * FROM parent", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled INSERT ... SELECT: got %v, want context.Canceled", err)
	}
	if n := d.TableRows("copy2"); n != 0 {
		t.Fatalf("cancelled INSERT ... SELECT wrote %d rows", n)
	}
}
