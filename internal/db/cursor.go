package db

import (
	"fmt"
	"sync/atomic"

	"dkbms/internal/exec"
	"dkbms/internal/plan"
	"dkbms/internal/rel"
	"dkbms/internal/sql"
)

// Stmt is a prepared SELECT: parsed once, planned per execution (plans
// bind physical table state, so they are rebuilt each Open). This is
// the testbed's analog of the paper's embedded-SQL interface: DECLARE
// CURSOR / OPEN / FETCH / CLOSE against the DBMS.
type Stmt struct {
	d   *DB
	sel *sql.Select
	src string
}

// Prepare parses a SELECT for repeated cursor execution.
func (d *DB) Prepare(stmt string) (*Stmt, error) {
	st, err := sql.Parse(stmt)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("db: Prepare requires a SELECT, got %T", st)
	}
	return &Stmt{d: d, sel: sel, src: stmt}, nil
}

// Source returns the statement text.
func (s *Stmt) Source() string { return s.src }

// Open plans the statement against current table state and opens a
// cursor. The caller must Close it.
func (s *Stmt) Open() (*Cursor, error) {
	op, err := plan.BuildSelect(s.d, s.sel)
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.d.stats.Selects, 1)
	return &Cursor{op: op}, nil
}

// Cursor streams a query's result tuple by tuple — unlike DB.Query,
// nothing beyond operator state is materialized on the client side.
type Cursor struct {
	op     exec.Operator
	closed bool
}

// Schema describes the cursor's rows.
func (c *Cursor) Schema() *rel.Schema { return c.op.Schema() }

// Fetch returns the next tuple, or (nil, nil) at end of results.
func (c *Cursor) Fetch() (rel.Tuple, error) {
	if c.closed {
		return nil, fmt.Errorf("db: fetch on closed cursor")
	}
	return c.op.Next()
}

// Close releases the cursor. Closing twice is a no-op.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.op.Close()
}
