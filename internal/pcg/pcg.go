// Package pcg implements the Predicate Connection Graph machinery of the
// paper's Workspace D/KB Manager (§2.2–2.3, §3.2.2): reachability,
// cliques (strongly connected components of mutually recursive
// predicates, found with Tarjan's algorithm), the evaluation graph, and
// the evaluation order list that drives D/KB query processing.
package pcg

import (
	"fmt"
	"sort"

	"dkbms/internal/dlog"
)

// Graph is a predicate connection graph over a rule set. Edges run from
// a rule's head predicate to each predicate in its body ("depends on");
// the paper draws them in the opposite direction, which only flips the
// wording of reachability.
type Graph struct {
	// Rules indexes the defining clauses of each derived predicate.
	Rules map[string][]dlog.Clause
	// DependsOn[p] is the set of predicates in the bodies of p's rules.
	DependsOn map[string]map[string]bool
}

// Build constructs the PCG of a rule set. Facts contribute a predicate
// with no outgoing edges.
func Build(rules []dlog.Clause) *Graph {
	g := &Graph{
		Rules:     make(map[string][]dlog.Clause),
		DependsOn: make(map[string]map[string]bool),
	}
	for _, c := range rules {
		g.Add(c)
	}
	return g
}

// Add inserts one clause into the graph.
func (g *Graph) Add(c dlog.Clause) {
	h := c.Head.Pred
	g.Rules[h] = append(g.Rules[h], c)
	if g.DependsOn[h] == nil {
		g.DependsOn[h] = make(map[string]bool)
	}
	for _, a := range c.Body {
		g.DependsOn[h][a.Pred] = true
	}
}

// IsDerived reports whether the graph has rules defining pred.
func (g *Graph) IsDerived(pred string) bool { return len(g.Rules[pred]) > 0 }

// Reachable returns every predicate reachable from the seeds by
// following body references, including the seeds themselves.
func (g *Graph) Reachable(seeds ...string) map[string]bool {
	seen := make(map[string]bool)
	var stack []string
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for q := range g.DependsOn[p] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return seen
}

// TransitiveClosure returns, for each derived predicate, the set of
// predicates reachable from it (excluding itself unless it is reachable
// via a cycle). This is the compiled form the Stored D/KB Manager
// persists in the reachablepreds relation.
func (g *Graph) TransitiveClosure() map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(g.Rules))
	for p := range g.Rules {
		r := make(map[string]bool)
		// BFS from p's direct dependencies so p itself appears only if
		// it lies on a cycle.
		var stack []string
		for q := range g.DependsOn[p] {
			if !r[q] {
				r[q] = true
				stack = append(stack, q)
			}
		}
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for z := range g.DependsOn[q] {
				if !r[z] {
					r[z] = true
					stack = append(stack, z)
				}
			}
		}
		out[p] = r
	}
	return out
}

// Node is one entry in an evaluation order list: either a clique of
// mutually recursive predicates or a single non-recursive derived
// predicate.
type Node struct {
	// Preds lists the predicates evaluated by this node. One element
	// for a non-recursive predicate node; one or more for a clique.
	Preds []string
	// Recursive reports whether the node is a clique (LFP computation
	// needed). A single predicate with a self-loop is a clique of one.
	Recursive bool
	// ExitRules are the clique's non-recursive defining rules (all
	// rules for a non-recursive node).
	ExitRules []dlog.Clause
	// RecursiveRules are the rules whose body mentions a predicate
	// mutually recursive with the head. Empty for non-recursive nodes.
	RecursiveRules []dlog.Clause
	// Deps indexes the earlier Order entries this node's rule bodies
	// read (its predecessors in the evaluation-order DAG). Nodes with
	// disjoint dependency chains may evaluate concurrently — the
	// stratum wavefront the run-time library's scheduler exploits.
	Deps []int
}

// Analysis is the result of analyzing a rule set for a set of root
// predicates (usually the singleton query predicate).
type Analysis struct {
	// Reachable is every predicate reachable from the roots (roots
	// included).
	Reachable map[string]bool
	// BasePreds are reachable predicates with no defining rules.
	BasePreds []string
	// Order is the evaluation order list: dependencies first, so
	// evaluating nodes left to right satisfies every body reference.
	Order []*Node
}

// Analyze computes reachability, cliques and the evaluation order for
// the given roots. It returns an error if a root has no defining rules.
func Analyze(g *Graph, roots ...string) (*Analysis, error) {
	for _, r := range roots {
		if !g.IsDerived(r) {
			return nil, fmt.Errorf("pcg: no rules define root predicate %s", r)
		}
	}
	reach := g.Reachable(roots...)

	a := &Analysis{Reachable: reach}
	for p := range reach {
		if !g.IsDerived(p) {
			a.BasePreds = append(a.BasePreds, p)
		}
	}
	sort.Strings(a.BasePreds)

	sccs := tarjan(g, reach)
	// tarjan emits components in reverse topological order of the
	// condensation with edges head->body; a component is emitted only
	// after everything it depends on. That is exactly the evaluation
	// order (dependencies first).
	for _, comp := range sccs {
		sort.Strings(comp)
		inComp := make(map[string]bool, len(comp))
		for _, p := range comp {
			inComp[p] = true
		}
		node := &Node{Preds: comp}
		for _, p := range comp {
			for _, c := range g.Rules[p] {
				rec := false
				for _, b := range c.Body {
					if inComp[b.Pred] {
						rec = true
						break
					}
				}
				if rec {
					node.RecursiveRules = append(node.RecursiveRules, c)
				} else {
					node.ExitRules = append(node.ExitRules, c)
				}
			}
		}
		node.Recursive = len(comp) > 1 || len(node.RecursiveRules) > 0
		a.Order = append(a.Order, node)
	}
	// Wire the evaluation-order DAG: node i depends on the node defining
	// each derived predicate its rule bodies mention (clique-internal
	// references excluded — those are the LFP itself, not an ordering
	// edge). tarjan's emission order guarantees dependencies precede
	// dependents, so every edge points at an earlier index.
	nodeOf := make(map[string]int)
	for i, n := range a.Order {
		for _, p := range n.Preds {
			nodeOf[p] = i
		}
	}
	for i, n := range a.Order {
		seen := make(map[int]bool)
		for _, rules := range [][]dlog.Clause{n.ExitRules, n.RecursiveRules} {
			for _, c := range rules {
				for _, b := range c.Body {
					if j, ok := nodeOf[b.Pred]; ok && j != i && !seen[j] {
						seen[j] = true
						n.Deps = append(n.Deps, j)
					}
				}
			}
		}
		sort.Ints(n.Deps)
	}
	return a, nil
}

// tarjan runs Tarjan's SCC algorithm over the derived predicates in
// scope. Components come out in reverse topological order with respect
// to DependsOn edges, i.e. dependencies before dependents.
func tarjan(g *Graph, scope map[string]bool) [][]string {
	type vstate struct {
		index, low int
		onStack    bool
	}
	states := make(map[string]*vstate)
	var stack []string
	var comps [][]string
	counter := 0

	// Iterative Tarjan to survive deep rule chains (the compilation
	// benchmarks build chains hundreds of rules long).
	type frame struct {
		pred  string
		succs []string
		next  int
	}
	succsOf := func(p string) []string {
		var out []string
		for q := range g.DependsOn[p] {
			if scope[q] && g.IsDerived(q) {
				out = append(out, q)
			}
		}
		sort.Strings(out) // determinism
		return out
	}

	var roots []string
	for p := range scope {
		if g.IsDerived(p) {
			roots = append(roots, p)
		}
	}
	sort.Strings(roots)

	for _, root := range roots {
		if states[root] != nil {
			continue
		}
		var callStack []frame
		push := func(p string) {
			states[p] = &vstate{index: counter, low: counter, onStack: true}
			counter++
			stack = append(stack, p)
			callStack = append(callStack, frame{pred: p, succs: succsOf(p)})
		}
		push(root)
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			st := states[f.pred]
			advanced := false
			for f.next < len(f.succs) {
				q := f.succs[f.next]
				f.next++
				qs := states[q]
				if qs == nil {
					push(q)
					advanced = true
					break
				}
				if qs.onStack && qs.index < st.low {
					st.low = qs.index
				}
			}
			if advanced {
				continue
			}
			// Finished f.pred.
			if st.low == st.index {
				var comp []string
				for {
					p := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[p].onStack = false
					comp = append(comp, p)
					if p == f.pred {
						break
					}
				}
				comps = append(comps, comp)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := states[callStack[len(callStack)-1].pred]
				if st.low < parent.low {
					parent.low = st.low
				}
			}
		}
	}
	return comps
}
