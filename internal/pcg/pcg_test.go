package pcg

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dkbms/internal/dlog"
)

func rules(t *testing.T, srcs ...string) []dlog.Clause {
	t.Helper()
	out := make([]dlog.Clause, len(srcs))
	for i, s := range srcs {
		out[i] = dlog.MustParseClause(s)
	}
	return out
}

// paperRules is the sample D/KB of the paper's Figure 1 (with base
// predicates b1, b2 and a sensible reading of the OCR-garbled clauses):
// p and q are mutually recursive; p1 and p2 are each self-recursive.
func paperRules(t *testing.T) []dlog.Clause {
	return rules(t,
		"p(X, Y) :- p1(X, Z), q(Z, Y).", // R1
		"q(X, Y) :- p(X, Y).",           // R6 (mutual recursion p<->q)
		"p(X, Y) :- b1(X, Y).",          // exit for p
		"p1(X, Y) :- b1(X, Z), p1(Z, Y).",
		"p1(X, Y) :- b1(X, Y).",
		"p2(X, Y) :- b2(X, Z), p2(Z, Y).",
		"p2(X, Y) :- b2(X, Y).",
		"q(X, Y) :- p2(X, Y).",
	)
}

func TestReachable(t *testing.T) {
	g := Build(paperRules(t))
	r := g.Reachable("p")
	for _, want := range []string{"p", "q", "p1", "p2", "b1", "b2"} {
		if !r[want] {
			t.Errorf("%s not reachable from p", want)
		}
	}
	r2 := g.Reachable("p2")
	if r2["p1"] || r2["q"] {
		t.Errorf("p2 reaches too much: %v", r2)
	}
	if !r2["b2"] || !r2["p2"] {
		t.Errorf("p2 reachability wrong: %v", r2)
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := Build(rules(t,
		"a(X) :- b(X).",
		"b(X) :- c(X).",
		"c(X) :- base(X).",
	))
	tc := g.TransitiveClosure()
	if !tc["a"]["b"] || !tc["a"]["c"] || !tc["a"]["base"] {
		t.Fatalf("tc[a] = %v", tc["a"])
	}
	if tc["a"]["a"] {
		t.Fatal("a is not on a cycle; must not reach itself")
	}
	if !tc["c"]["base"] || tc["c"]["a"] {
		t.Fatalf("tc[c] = %v", tc["c"])
	}
	// Self-recursive predicate reaches itself.
	g2 := Build(rules(t, "p(X,Y) :- e(X,Z), p(Z,Y).", "p(X,Y) :- e(X,Y)."))
	tc2 := g2.TransitiveClosure()
	if !tc2["p"]["p"] || !tc2["p"]["e"] {
		t.Fatalf("tc2[p] = %v", tc2["p"])
	}
}

func TestAnalyzeCliques(t *testing.T) {
	g := Build(paperRules(t))
	a, err := Analyze(g, "p")
	if err != nil {
		t.Fatal(err)
	}
	// Expected nodes: {p,q} mutual clique, {p1} self clique, {p2} self
	// clique. Base: b1, b2.
	if strings.Join(a.BasePreds, ",") != "b1,b2" {
		t.Fatalf("base preds %v", a.BasePreds)
	}
	if len(a.Order) != 3 {
		t.Fatalf("order has %d nodes: %+v", len(a.Order), a.Order)
	}
	byKey := map[string]*Node{}
	for _, n := range a.Order {
		byKey[strings.Join(n.Preds, ",")] = n
	}
	pq := byKey["p,q"]
	if pq == nil || !pq.Recursive {
		t.Fatalf("missing mutual clique p,q: %v", byKey)
	}
	if len(pq.RecursiveRules) != 2 { // R1 (p via q) and R6 (q via p)
		t.Fatalf("p,q recursive rules = %d", len(pq.RecursiveRules))
	}
	if len(pq.ExitRules) != 2 { // p :- b1 ; q :- p2
		t.Fatalf("p,q exit rules = %d", len(pq.ExitRules))
	}
	p1 := byKey["p1"]
	if p1 == nil || !p1.Recursive || len(p1.RecursiveRules) != 1 || len(p1.ExitRules) != 1 {
		t.Fatalf("p1 clique wrong: %+v", p1)
	}
}

func TestEvaluationOrderDependenciesFirst(t *testing.T) {
	g := Build(paperRules(t))
	a, err := Analyze(g, "p")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range a.Order {
		for _, p := range n.Preds {
			pos[p] = i
		}
	}
	// p1 and p2 must be evaluated before the {p,q} clique.
	if !(pos["p1"] < pos["p"] && pos["p2"] < pos["p"]) {
		t.Fatalf("order positions: %v", pos)
	}
}

func TestAnalyzeNonRecursive(t *testing.T) {
	g := Build(rules(t,
		"gp(X, Y) :- parent(X, Z), parent(Z, Y).",
		"ggp(X, Y) :- gp(X, Z), parent(Z, Y).",
	))
	a, err := Analyze(g, "ggp")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != 2 {
		t.Fatalf("order = %+v", a.Order)
	}
	if a.Order[0].Preds[0] != "gp" || a.Order[1].Preds[0] != "ggp" {
		t.Fatalf("order = %v then %v", a.Order[0].Preds, a.Order[1].Preds)
	}
	for _, n := range a.Order {
		if n.Recursive || len(n.RecursiveRules) != 0 {
			t.Fatalf("non-recursive node misclassified: %+v", n)
		}
	}
}

func TestAnalyzeScopesToRoots(t *testing.T) {
	g := Build(rules(t,
		"a(X) :- base(X).",
		"unrelated(X) :- other(X).",
	))
	an, err := Analyze(g, "a")
	if err != nil {
		t.Fatal(err)
	}
	if an.Reachable["unrelated"] {
		t.Fatal("unrelated predicate in scope")
	}
	if len(an.Order) != 1 {
		t.Fatalf("order = %+v", an.Order)
	}
}

func TestAnalyzeMissingRoot(t *testing.T) {
	g := Build(rules(t, "a(X) :- b(X)."))
	if _, err := Analyze(g, "zzz"); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestSelfLoopIsClique(t *testing.T) {
	g := Build(rules(t,
		"anc(X,Y) :- par(X,Y).",
		"anc(X,Y) :- par(X,Z), anc(Z,Y).",
	))
	a, err := Analyze(g, "anc")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != 1 || !a.Order[0].Recursive {
		t.Fatalf("%+v", a.Order)
	}
	n := a.Order[0]
	if len(n.ExitRules) != 1 || len(n.RecursiveRules) != 1 {
		t.Fatalf("rule split: %d exit, %d recursive", len(n.ExitRules), len(n.RecursiveRules))
	}
}

func TestDeepChainIterativeTarjan(t *testing.T) {
	// A chain of 5000 rules must not blow the stack (iterative Tarjan).
	var rs []dlog.Clause
	const depth = 5000
	for i := 0; i < depth; i++ {
		rs = append(rs, dlog.MustParseClause(
			fmt.Sprintf("p%d(X) :- p%d(X).", i, i+1)))
	}
	rs = append(rs, dlog.MustParseClause(fmt.Sprintf("p%d(X) :- base(X).", depth)))
	g := Build(rs)
	a, err := Analyze(g, "p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != depth+1 {
		t.Fatalf("order has %d nodes", len(a.Order))
	}
	// Dependencies first: p5000 first, p0 last.
	if a.Order[0].Preds[0] != fmt.Sprintf("p%d", depth) || a.Order[len(a.Order)-1].Preds[0] != "p0" {
		t.Fatalf("order ends: %v ... %v", a.Order[0].Preds, a.Order[len(a.Order)-1].Preds)
	}
}

func TestBigCycleOneClique(t *testing.T) {
	// p0 -> p1 -> ... -> p99 -> p0: one clique of 100.
	var rs []dlog.Clause
	for i := 0; i < 100; i++ {
		rs = append(rs, dlog.MustParseClause(
			fmt.Sprintf("p%d(X) :- p%d(X).", i, (i+1)%100)))
		rs = append(rs, dlog.MustParseClause(
			fmt.Sprintf("p%d(X) :- base%d(X).", i, i)))
	}
	g := Build(rs)
	a, err := Analyze(g, "p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != 1 {
		t.Fatalf("%d nodes, want 1 clique", len(a.Order))
	}
	n := a.Order[0]
	if len(n.Preds) != 100 || len(n.RecursiveRules) != 100 || len(n.ExitRules) != 100 {
		t.Fatalf("clique: %d preds, %d rec, %d exit", len(n.Preds), len(n.RecursiveRules), len(n.ExitRules))
	}
	if !sort.StringsAreSorted(n.Preds) {
		t.Fatal("clique preds not sorted (determinism)")
	}
}

func TestDeterministicOrder(t *testing.T) {
	build := func() string {
		g := Build(rules(t,
			"a(X) :- b(X), c(X).",
			"b(X) :- base(X).",
			"c(X) :- base(X).",
		))
		an, err := Analyze(g, "a")
		if err != nil {
			t.Fatal(err)
		}
		var parts []string
		for _, n := range an.Order {
			parts = append(parts, strings.Join(n.Preds, "+"))
		}
		return strings.Join(parts, "|")
	}
	first := build()
	for i := 0; i < 10; i++ {
		if build() != first {
			t.Fatal("analysis order is nondeterministic")
		}
	}
}

func TestNodeDeps(t *testing.T) {
	g := Build(paperRules(t))
	a, err := Analyze(g, "p")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range a.Order {
		for _, p := range n.Preds {
			pos[p] = i
		}
	}
	deps := func(pred string) []int { return a.Order[pos[pred]].Deps }
	// p1 and p2 only read base predicates (and themselves): no deps.
	if len(deps("p1")) != 0 || len(deps("p2")) != 0 {
		t.Fatalf("leaf cliques have deps: p1=%v p2=%v", deps("p1"), deps("p2"))
	}
	// The {p,q} clique reads p1 (R1) and p2 (q's exit rule); its
	// clique-internal edges (p<->q) must not appear.
	want := []int{pos["p1"], pos["p2"]}
	sort.Ints(want)
	got := deps("p")
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("p,q deps = %v, want %v", got, want)
	}
	// Every dep index points strictly earlier in the order.
	for i, n := range a.Order {
		for _, d := range n.Deps {
			if d >= i {
				t.Fatalf("node %d (%v) depends on %d, not earlier", i, n.Preds, d)
			}
		}
	}
}
