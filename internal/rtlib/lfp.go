package rtlib

import (
	"fmt"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

// evalCliqueNaive computes the least fixed point of a clique by naive
// iteration: R_{k+1} = f(R_k) recomputed from scratch each round,
// terminating when f adds nothing new. The implementation follows the
// paper's embedded-SQL realization: fresh temporary tables per
// iteration, a set-difference termination check, and a full table copy
// to install each round's result.
func (ev *evaluator) evalCliqueNaive(node *codegen.Node, seeds map[string][]rel.Tuple, ns *NodeStats, sp *obs.Span) error {
	for _, p := range node.Preds {
		if err := ev.createPredTable(p, seeds, ns); err != nil {
			return err
		}
	}
	// Iteration 0 records the seed contents so per-iteration delta
	// cardinalities sum to the node's final tuple count.
	if sp != nil {
		zero := sp.Start("iteration 0")
		for _, p := range node.Preds {
			zero.SetInt("delta("+p+")", int64(ev.d.TableRows(ev.tableOf(p))))
		}
		zero.End()
	}
	rules := append(append([]codegen.RuleSQL(nil), node.ExitRules...), node.RecursiveRules...)

	for {
		if err := ev.checkCtx(); err != nil {
			return err
		}
		ns.Iterations++
		var itSp *obs.Span
		if sp != nil {
			itSp = sp.Start(fmt.Sprintf("iteration %d", ns.Iterations))
		}
		// new_p := f(R) for each predicate, into fresh tables.
		newNames := make(map[string]string, len(node.Preds))
		for _, p := range node.Preds {
			name := fmt.Sprintf("%snew%d_%s", ev.prefix, ns.Iterations, sanitize(p))
			t0 := time.Now()
			if err := ev.createTable(name, ev.prog.Schemas[p]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
			newNames[p] = name
			// Seeds are part of every f(R) application (they are facts
			// of the predicate).
			if err := ev.d.InsertTuples(name, seeds[p]); err != nil {
				return err
			}
		}
		for i := range rules {
			r := &rules[i]
			target := newNames[r.Head]
			var ruleSp *obs.Span
			if itSp != nil {
				ruleSp = itSp.Start("rule " + r.Head)
				ruleSp.SetString("src", r.Source)
			}
			t0 := time.Now()
			stmt := fmt.Sprintf("INSERT INTO %s %s EXCEPT SELECT * FROM %s",
				target, r.SQL(ev.tableOf), target)
			if err := ev.d.ExecTracedCtx(ev.evalCtx(), stmt, ruleSp); err != nil {
				return fmt.Errorf("rtlib: rule %q: %w", r.Source, err)
			}
			ruleSp.End()
			ns.Eval += time.Since(t0)
		}
		// Termination: f(R) added nothing beyond R. The check is the
		// full set difference the paper calls out as expensive under a
		// plain SQL interface. Under Parallel the difference is computed
		// Go-side instead, hash-range partitioned across the pool.
		grew := false
		tcSp := itSp.Start("termcheck")
		for _, p := range node.Preds {
			var added int
			if ev.opts.Parallel && ev.parts > 1 {
				tcSp.SetInt("sched.partitions", int64(ev.parts))
				n, err := ev.termDiffPartitioned(newNames[p], ev.tableOf(p), ns)
				if err != nil {
					return err
				}
				added = n
			} else {
				t0 := time.Now()
				diff, err := ev.d.Query(fmt.Sprintf(
					"SELECT * FROM %s EXCEPT SELECT * FROM %s", newNames[p], ev.tableOf(p)))
				if err != nil {
					return err
				}
				ns.TermCheck += time.Since(t0)
				added = len(diff.Tuples)
			}
			if added > 0 {
				grew = true
			}
			if itSp != nil {
				itSp.SetInt("delta("+p+")", int64(added))
				itSp.SetInt("acc("+p+")", int64(ev.d.TableRows(newNames[p])))
			}
		}
		tcSp.End()
		itSp.End()
		// Install the new round: drop old tables, rename-by-copy (the
		// SQL interface has no rename, as the paper notes — copying is
		// part of the measured overhead).
		for _, p := range node.Preds {
			t0 := time.Now()
			old := ev.tableOf(p)
			if err := ev.d.Exec(fmt.Sprintf("DELETE FROM %s", old)); err != nil {
				return err
			}
			if err := ev.d.Exec(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", old, newNames[p])); err != nil {
				return err
			}
			if err := ev.dropTable(newNames[p]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
		}
		if !grew {
			return nil
		}
	}
}

// evalCliqueSemiNaive computes the least fixed point with the
// differential (semi-naive) method: after initializing each predicate
// with its exit rules, every iteration evaluates each recursive rule
// once per clique occurrence with that occurrence reading the previous
// iteration's delta, keeps only tuples not already accumulated, and
// terminates when every delta is empty.
func (ev *evaluator) evalCliqueSemiNaive(node *codegen.Node, seeds map[string][]rel.Tuple, ns *NodeStats, sp *obs.Span) error {
	delta := make(map[string]string, len(node.Preds))
	for _, p := range node.Preds {
		if err := ev.createPredTable(p, seeds, ns); err != nil {
			return err
		}
	}
	// Initialization: exit rules (plus seeds, already inserted) fill
	// the accumulators; delta_0 is a copy of the initial relations.
	var zeroSp *obs.Span
	if sp != nil {
		zeroSp = sp.Start("iteration 0")
	}
	for i := range node.ExitRules {
		r := &node.ExitRules[i]
		target := ev.tableOf(r.Head)
		var ruleSp *obs.Span
		if zeroSp != nil {
			ruleSp = zeroSp.Start("rule " + r.Head)
			ruleSp.SetString("src", r.Source)
		}
		t0 := time.Now()
		stmt := fmt.Sprintf("INSERT INTO %s %s EXCEPT SELECT * FROM %s",
			target, r.SQL(ev.tableOf), target)
		if err := ev.d.ExecTracedCtx(ev.evalCtx(), stmt, ruleSp); err != nil {
			return fmt.Errorf("rtlib: rule %q: %w", r.Source, err)
		}
		ruleSp.End()
		ns.Eval += time.Since(t0)
	}
	for _, p := range node.Preds {
		name := fmt.Sprintf("%sdelta_%s", ev.prefix, sanitize(p))
		t0 := time.Now()
		if err := ev.createTable(name, ev.prog.Schemas[p]); err != nil {
			return err
		}
		if err := ev.d.Exec(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", name, ev.tableOf(p))); err != nil {
			return err
		}
		ns.TempTable += time.Since(t0)
		delta[p] = name
		if zeroSp != nil {
			zeroSp.SetInt("delta("+p+")", int64(ev.d.TableRows(name)))
		}
	}
	zeroSp.End()

	for {
		if err := ev.checkCtx(); err != nil {
			return err
		}
		ns.Iterations++
		var itSp *obs.Span
		if sp != nil {
			itSp = sp.Start(fmt.Sprintf("iteration %d", ns.Iterations))
		}
		// Evaluate differentials into fresh delta tables.
		newDelta := make(map[string]string, len(node.Preds))
		for _, p := range node.Preds {
			name := fmt.Sprintf("%sndelta%d_%s", ev.prefix, ns.Iterations, sanitize(p))
			t0 := time.Now()
			if err := ev.createTable(name, ev.prog.Schemas[p]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
			newDelta[p] = name
		}
		for i := range node.RecursiveRules {
			r := &node.RecursiveRules[i]
			target := newDelta[r.Head]
			acc := ev.tableOf(r.Head)
			// One differential per clique occurrence: occurrence j
			// reads delta, the others the full accumulator.
			for _, occ := range r.CliqueOccs {
				tables := make([]string, len(r.From))
				for fi, f := range r.From {
					if fi == occ {
						tables[fi] = delta[f.Pred]
					} else {
						tables[fi] = ev.tableOf(f.Pred)
					}
				}
				var ruleSp *obs.Span
				if itSp != nil {
					ruleSp = itSp.Start("rule " + r.Head)
					ruleSp.SetString("src", r.Source)
				}
				t0 := time.Now()
				stmt := fmt.Sprintf("INSERT INTO %s %s EXCEPT SELECT * FROM %s EXCEPT SELECT * FROM %s",
					target, r.SQLWithTables(tables), acc, target)
				if err := ev.d.ExecTracedCtx(ev.evalCtx(), stmt, ruleSp); err != nil {
					return fmt.Errorf("rtlib: rule %q: %w", r.Source, err)
				}
				ruleSp.End()
				ns.Eval += time.Since(t0)
			}
		}
		// Termination check: all deltas empty.
		done := true
		tcSp := itSp.Start("termcheck")
		for _, p := range node.Preds {
			t0 := time.Now()
			n, err := ev.d.QueryCount(fmt.Sprintf("SELECT COUNT(*) FROM %s", newDelta[p]))
			if err != nil {
				return err
			}
			ns.TermCheck += time.Since(t0)
			if n > 0 {
				done = false
			}
			if itSp != nil {
				itSp.SetInt("delta("+p+")", n)
				itSp.SetInt("acc("+p+")", int64(ev.d.TableRows(ev.tableOf(p))))
			}
		}
		tcSp.End()
		itSp.End()
		if done {
			for _, p := range node.Preds {
				t0 := time.Now()
				if err := ev.dropTable(newDelta[p]); err != nil {
					return err
				}
				if err := ev.dropTable(delta[p]); err != nil {
					return err
				}
				ns.TempTable += time.Since(t0)
			}
			return nil
		}
		// Accumulate deltas and advance.
		for _, p := range node.Preds {
			t0 := time.Now()
			if err := ev.d.Exec(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s",
				ev.tableOf(p), newDelta[p])); err != nil {
				return err
			}
			if err := ev.dropTable(delta[p]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
			delta[p] = newDelta[p]
		}
	}
}

// termDiffPartitioned counts tuples of newName absent from oldName —
// the naive termination set difference — Go-side, hash-range
// partitioned across the pool: partition k indexes only the old tuples
// whose keys hash to k and probes only the matching new tuples, so the
// partitions share nothing and run lock-free (the tcop.go hash-probe
// idea applied to the general LFP path).
func (ev *evaluator) termDiffPartitioned(newName, oldName string, ns *NodeStats) (int, error) {
	t0 := time.Now()
	newRows, err := ev.d.Query("SELECT * FROM " + newName)
	if err != nil {
		return 0, err
	}
	oldRows, err := ev.d.Query("SELECT * FROM " + oldName)
	if err != nil {
		return 0, err
	}
	counts := make([]int, ev.parts)
	ev.runJobs(ev.parts, func(part, _ int) {
		old := make(map[string]bool)
		for _, tu := range oldRows.Tuples {
			if k := tu.Key(); tupleShard(k, ev.parts) == part {
				old[k] = true
			}
		}
		seen := make(map[string]bool)
		for _, tu := range newRows.Tuples {
			k := tu.Key()
			if tupleShard(k, ev.parts) != part || old[k] || seen[k] {
				continue
			}
			seen[k] = true
			counts[part]++
		}
	})
	ns.TermCheck += time.Since(t0)
	added := 0
	for _, c := range counts {
		added += c
	}
	return added, nil
}

// cleanup drops every temp table created by the evaluator.
func (ev *evaluator) cleanup() error {
	var firstErr error
	ev.mu.Lock()
	tables := append([]string(nil), ev.created...)
	ev.mu.Unlock()
	for _, t := range tables {
		if err := ev.dropTable(t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	ev.mu.Lock()
	ev.created = nil
	ev.mu.Unlock()
	return firstErr
}

// seedTuplesValid verifies seed arity/type against schemas before any
// table is created, so failures surface as clean errors.
func seedTuplesValid(prog *codegen.Program) error {
	for _, s := range prog.Seeds {
		sch := prog.Schemas[s.Pred]
		if sch == nil {
			return fmt.Errorf("rtlib: seed for unknown predicate %s", s.Pred)
		}
		if len(s.Tuple) != sch.Len() {
			return fmt.Errorf("rtlib: seed arity mismatch for %s", s.Pred)
		}
		for i, v := range s.Tuple {
			if v.Kind != sch.Col(i).Type {
				return fmt.Errorf("rtlib: seed type mismatch for %s column %d", s.Pred, i)
			}
		}
	}
	return nil
}
