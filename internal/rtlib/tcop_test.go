package rtlib

import (
	"fmt"
	"testing"

	"dkbms/internal/db"
	"dkbms/internal/rel"
)

func TestTCSingleSourceMatchesLFP(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c", "c>a", "c>d") // cycle + tail
	prog := ancestorProgram(t)
	res, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, tu := range res.Rows {
		if tu[0].Str == "a" {
			want[tu[1].Str] = true
		}
	}
	seed := rel.NewString("a")
	rows, err := TC(d, "e", &seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("TC found %d, LFP %d", len(rows), len(want))
	}
	for _, tu := range rows {
		if tu[0].Str != "a" || !want[tu[1].Str] {
			t.Fatalf("unexpected pair %v", tu)
		}
	}
}

func TestTCFullClosureMatchesLFP(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c", "b>d", "d>b")
	prog := ancestorProgram(t)
	res, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TC(d, "e", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(rows) != rowSet(res.Rows) {
		t.Fatalf("closures differ:\nTC:  %s\nLFP: %s", rowSet(rows), rowSet(res.Rows))
	}
}

func TestTCErrors(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	if _, err := TC(d, "ghost", nil); err == nil {
		t.Fatal("missing relation accepted")
	}
	if err := d.Exec("CREATE TABLE edb_tri (a INTEGER, b INTEGER, c INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := TC(d, "tri", nil); err == nil {
		t.Fatal("ternary relation accepted")
	}
}

func TestTCIntegerDomain(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	if err := d.Exec("CREATE TABLE edb_n (c0 INTEGER, c1 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Exec(fmt.Sprintf("INSERT INTO edb_n VALUES (%d, %d)", i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	seed := rel.NewInt(0)
	rows, err := TC(d, "n", &seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("reachable = %d, want 10", len(rows))
	}
}
