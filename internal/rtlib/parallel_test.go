package rtlib

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/rel"
	"dkbms/internal/sched"
)

func TestParallelMatchesSequential(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	var edges []string
	for i := 0; i < 40; i++ {
		edges = append(edges, fmt.Sprintf("n%02d>n%02d", i, i+1))
		if i%3 == 0 {
			edges = append(edges, fmt.Sprintf("n%02d>n%02d", i, (i+7)%41))
		}
	}
	loadEdges(t, d, "e", edges...)
	prog := ancestorProgram(t)
	seq, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(d, prog, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(seq.Rows) != rowSet(par.Rows) {
		t.Fatalf("parallel disagrees:\nseq: %s\npar: %s", rowSet(seq.Rows), rowSet(par.Rows))
	}
}

func TestParallelMutualRecursion(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c", "c>d", "d>e2", "e2>a")
	prog := compile(t, "odd", stringPair,
		"odd(X, Y) :- e(X, Y).",
		"odd(X, Y) :- e(X, Z), even(Z, Y).",
		"even(X, Y) :- e(X, Z), odd(Z, Y).",
	)
	seq, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(d, prog, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(seq.Rows) != rowSet(par.Rows) {
		t.Fatal("parallel disagrees on mutual recursion")
	}
}

func TestParallelWithSeeds(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	prog := compile(t, "m", stringPair, "m(Y) :- m(X), e(X, Y).")
	prog.Seeds = seedsFor("m", "a")
	res, err := Evaluate(d, prog, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(res.Rows) != "(a)|(b)|(c)" {
		t.Fatalf("rows: %s", rowSet(res.Rows))
	}
}

func TestParallelNoTempLeaks(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	before := len(d.Catalog().Tables())
	prog := ancestorProgram(t)
	if _, err := Evaluate(d, prog, Options{Parallel: true}); err != nil {
		t.Fatal(err)
	}
	if after := len(d.Catalog().Tables()); after != before {
		t.Fatalf("leak: %d -> %d", before, after)
	}
}

// multiStratumProgram mirrors the paper's Figure 1 shape: two leaf
// self-recursive cliques over disjoint base relations feeding a mutual
// {p,q} clique, so the wavefront has real independent work.
func multiStratumProgram(t *testing.T) *codegen.Program {
	t.Helper()
	types := map[string][]rel.Type{
		"b1": {rel.TypeString, rel.TypeString},
		"b2": {rel.TypeString, rel.TypeString},
	}
	return compile(t, "p", types,
		"p(X, Y) :- p1(X, Z), q(Z, Y).",
		"q(X, Y) :- p(X, Y).",
		"p(X, Y) :- b1(X, Y).",
		"p1(X, Y) :- b1(X, Z), p1(Z, Y).",
		"p1(X, Y) :- b1(X, Y).",
		"p2(X, Y) :- b2(X, Z), p2(Z, Y).",
		"p2(X, Y) :- b2(X, Y).",
		"q(X, Y) :- p2(X, Y).",
	)
}

func TestWavefrontMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := db.OpenMemory()
			defer d.Close()
			loadEdges(t, d, "b1", "a>b", "b>c", "c>d", "d>e2")
			loadEdges(t, d, "b2", "b>x", "x>y", "y>z")
			prog := multiStratumProgram(t)
			seq, err := Evaluate(d, prog, Options{})
			if err != nil {
				t.Fatal(err)
			}
			pool := sched.NewPool(workers)
			defer pool.Close()
			par, err := Evaluate(d, prog, Options{Parallel: true, Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			if rowSet(seq.Rows) != rowSet(par.Rows) {
				t.Fatalf("wavefront disagrees:\nseq: %s\npar: %s", rowSet(seq.Rows), rowSet(par.Rows))
			}
			if pool.Stats().Submitted == 0 {
				t.Fatal("pool never saw a task")
			}
			if got := len(d.Catalog().Tables()); got != 2 {
				t.Fatalf("temp tables leaked: %d tables remain", got)
			}
		})
	}
}

func TestWavefrontNaiveStrategy(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "b1", "a>b", "b>c", "c>d")
	loadEdges(t, d, "b2", "b>x", "x>y")
	prog := multiStratumProgram(t)
	seq, err := Evaluate(d, prog, Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	par, err := Evaluate(d, prog, Options{Strategy: Naive, Parallel: true, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(seq.Rows) != rowSet(par.Rows) {
		t.Fatal("naive wavefront disagrees with sequential naive")
	}
}

// fanoutProgram has a single clique with many exit rules, so every
// iteration would spawn one goroutine per rule if the fan-out were
// unbounded.
func fanoutProgram(t *testing.T) *codegen.Program {
	t.Helper()
	types := map[string][]rel.Type{}
	var srcs []string
	for i := 0; i < 8; i++ {
		types[fmt.Sprintf("e%d", i)] = []rel.Type{rel.TypeString, rel.TypeString}
		srcs = append(srcs, fmt.Sprintf("anc(X, Y) :- e%d(X, Y).", i))
	}
	srcs = append(srcs, "anc(X, Y) :- e0(X, Z), anc(Z, Y).")
	return compile(t, "anc", types, srcs...)
}

// TestFallbackGoroutinesBounded runs 32 concurrent Parallel queries on
// the pool-less fallback path and checks the peak goroutine count stays
// near queries*GOMAXPROCS rather than queries*rules (the pre-semaphore
// behaviour).
func TestFallbackGoroutinesBounded(t *testing.T) {
	const queries = 32
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	d := db.OpenMemory()
	defer d.Close()
	for i := 0; i < 8; i++ {
		loadEdges(t, d, fmt.Sprintf("e%d", i), "a>b", "b>c", "c>d", "d>e2", "e2>f")
	}
	prog := fanoutProgram(t)

	base := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Evaluate(d, prog, Options{Parallel: true}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(stop)
	mon.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Bound: base + one goroutine per query + GOMAXPROCS select workers
	// per query + monitor slack. Unbounded fan-out would add 8 rule
	// goroutines per query instead (base + 32*9).
	limit := int64(base + queries + queries*2 + 16)
	if p := peak.Load(); p > limit {
		t.Fatalf("peak goroutines %d exceeds bound %d (base %d)", p, limit, base)
	}
}
