package rtlib

import (
	"fmt"
	"testing"

	"dkbms/internal/db"
)

func TestParallelMatchesSequential(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	var edges []string
	for i := 0; i < 40; i++ {
		edges = append(edges, fmt.Sprintf("n%02d>n%02d", i, i+1))
		if i%3 == 0 {
			edges = append(edges, fmt.Sprintf("n%02d>n%02d", i, (i+7)%41))
		}
	}
	loadEdges(t, d, "e", edges...)
	prog := ancestorProgram(t)
	seq, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(d, prog, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(seq.Rows) != rowSet(par.Rows) {
		t.Fatalf("parallel disagrees:\nseq: %s\npar: %s", rowSet(seq.Rows), rowSet(par.Rows))
	}
}

func TestParallelMutualRecursion(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c", "c>d", "d>e2", "e2>a")
	prog := compile(t, "odd", stringPair,
		"odd(X, Y) :- e(X, Y).",
		"odd(X, Y) :- e(X, Z), even(Z, Y).",
		"even(X, Y) :- e(X, Z), odd(Z, Y).",
	)
	seq, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(d, prog, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(seq.Rows) != rowSet(par.Rows) {
		t.Fatal("parallel disagrees on mutual recursion")
	}
}

func TestParallelWithSeeds(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	prog := compile(t, "m", stringPair, "m(Y) :- m(X), e(X, Y).")
	prog.Seeds = seedsFor("m", "a")
	res, err := Evaluate(d, prog, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(res.Rows) != "(a)|(b)|(c)" {
		t.Fatalf("rows: %s", rowSet(res.Rows))
	}
}

func TestParallelNoTempLeaks(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	before := len(d.Catalog().Tables())
	prog := ancestorProgram(t)
	if _, err := Evaluate(d, prog, Options{Parallel: true}); err != nil {
		t.Fatal(err)
	}
	if after := len(d.Catalog().Tables()); after != before {
		t.Fatalf("leak: %d -> %d", before, after)
	}
}
