package rtlib

import (
	"fmt"
	"sync"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/rel"
)

// evalCliqueSemiNaiveParallel is the paper's conclusion 7a realized:
// "during each iteration, the right hand side of each recursive
// equation may be evaluated in parallel". Every differential SELECT of
// an iteration runs concurrently (reads only — the engine's buffer pool
// and indexes are safe for concurrent readers); the new tuples are then
// deduplicated and installed serially. Results are identical to the
// sequential semi-naive loop.
func (ev *evaluator) evalCliqueSemiNaiveParallel(node *codegen.Node, seeds map[string][]rel.Tuple, ns *NodeStats) error {
	for _, p := range node.Preds {
		if err := ev.createPredTable(p, seeds, ns); err != nil {
			return err
		}
	}
	// Initialization: exit rules, evaluated concurrently as well.
	initRows, err := ev.parallelSelects(selectsFor(node.ExitRules, func(r *codegen.RuleSQL) []string {
		tables := make([]string, len(r.From))
		for i, f := range r.From {
			tables[i] = ev.tableOf(f.Pred)
		}
		return tables
	}), ns)
	if err != nil {
		return err
	}
	// accKeys tracks accumulated tuples per predicate, Go-side, so
	// deduplication needs no SQL set differences.
	accKeys := make(map[string]map[string]bool, len(node.Preds))
	for _, p := range node.Preds {
		accKeys[p] = make(map[string]bool)
		for _, tu := range seeds[p] {
			accKeys[p][tu.Key()] = true
		}
	}
	delta := make(map[string][]rel.Tuple, len(node.Preds))
	for i, r := range node.ExitRules {
		for _, tu := range initRows[i] {
			k := tu.Key()
			if !accKeys[r.Head][k] {
				accKeys[r.Head][k] = true
				if err := ev.insertTuple(ev.tables[r.Head], tu); err != nil {
					return err
				}
				delta[r.Head] = append(delta[r.Head], tu)
			}
		}
	}
	// Seeds are part of the initial delta too.
	for _, p := range node.Preds {
		delta[p] = append(delta[p], seeds[p]...)
	}

	// Delta tables are still materialized in the DBMS because the
	// differential SELECTs read them.
	deltaTable := make(map[string]string, len(node.Preds))
	for _, p := range node.Preds {
		name := fmt.Sprintf("%spdelta_%s", ev.prefix, sanitize(p))
		t0 := time.Now()
		if err := ev.createTable(name, ev.prog.Schemas[p]); err != nil {
			return err
		}
		ns.TempTable += time.Since(t0)
		deltaTable[p] = name
		for _, tu := range delta[p] {
			if err := ev.insertTuple(name, tu); err != nil {
				return err
			}
		}
	}

	type job struct {
		head string
		sql  string
	}
	for {
		ns.Iterations++
		var jobs []job
		for i := range node.RecursiveRules {
			r := &node.RecursiveRules[i]
			for _, occ := range r.CliqueOccs {
				tables := make([]string, len(r.From))
				for fi, f := range r.From {
					if fi == occ {
						tables[fi] = deltaTable[f.Pred]
					} else {
						tables[fi] = ev.tableOf(f.Pred)
					}
				}
				jobs = append(jobs, job{head: r.Head, sql: r.SQLWithTables(tables)})
			}
		}
		sqls := make([]string, len(jobs))
		for i, j := range jobs {
			sqls[i] = j.sql
		}
		results, err := ev.parallelSelects(sqls, ns)
		if err != nil {
			return err
		}
		// Serial install with Go-side dedup.
		newDelta := make(map[string][]rel.Tuple, len(node.Preds))
		for i, j := range jobs {
			for _, tu := range results[i] {
				k := tu.Key()
				if accKeys[j.head][k] {
					continue
				}
				accKeys[j.head][k] = true
				if err := ev.insertTuple(ev.tables[j.head], tu); err != nil {
					return err
				}
				newDelta[j.head] = append(newDelta[j.head], tu)
			}
		}
		// Termination: all deltas empty (a map-size check; the paper's
		// expensive SQL set difference is gone, which is conclusion 6b).
		t0 := time.Now()
		done := true
		for _, p := range node.Preds {
			if len(newDelta[p]) > 0 {
				done = false
			}
		}
		ns.TermCheck += time.Since(t0)
		if done {
			for _, p := range node.Preds {
				t0 := time.Now()
				if err := ev.dropTable(deltaTable[p]); err != nil {
					return err
				}
				ns.TempTable += time.Since(t0)
			}
			return nil
		}
		for _, p := range node.Preds {
			t0 := time.Now()
			if err := ev.d.Exec("DELETE FROM " + deltaTable[p]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
			for _, tu := range newDelta[p] {
				if err := ev.insertTuple(deltaTable[p], tu); err != nil {
					return err
				}
			}
		}
	}
}

// selectsFor renders rule SELECTs with a table-choice function.
func selectsFor(rules []codegen.RuleSQL, tables func(*codegen.RuleSQL) []string) []string {
	out := make([]string, len(rules))
	for i := range rules {
		out[i] = rules[i].SQLWithTables(tables(&rules[i]))
	}
	return out
}

// parallelSelects evaluates read-only SELECT statements concurrently.
func (ev *evaluator) parallelSelects(sqls []string, ns *NodeStats) ([][]rel.Tuple, error) {
	results := make([][]rel.Tuple, len(sqls))
	errs := make([]error, len(sqls))
	t0 := time.Now()
	var wg sync.WaitGroup
	for i, q := range sqls {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			rows, err := ev.d.Query(q)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = rows.Tuples
		}(i, q)
	}
	wg.Wait()
	ns.Eval += time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
