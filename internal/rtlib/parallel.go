package rtlib

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

// Partitioning thresholds. Below these sizes the serial loop wins: the
// per-partition bookkeeping (maps, slices, task handoff) costs more
// than the work it divides.
const (
	// dedupThreshold is the per-iteration raw result size (tuples
	// across all differentials) at which Go-side dedup is hash-range
	// partitioned across workers.
	dedupThreshold = 256
	// partitionThreshold is the per-predicate delta size at which the
	// delta relation is split into hash-range partition tables so each
	// differential SELECT becomes parts independent jobs.
	partitionThreshold = 1024
)

// tupleShard assigns a tuple key to one of parts hash-range partitions.
// FNV-1a: cheap, stable, and independent of Go's map hash so partition
// contents are deterministic across runs.
func tupleShard(key string, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(parts))
}

// runJobs executes n independent jobs concurrently, bounded by the
// shared worker pool when the evaluation has one (fair admission across
// sessions), else by a GOMAXPROCS-slot semaphore so a single evaluation
// never fans out more goroutines than cores regardless of how many rule
// differentials an iteration produces. The job's second argument is the
// pool worker index (-1 for inline/fallback execution).
func (ev *evaluator) runJobs(n int, job func(i, worker int)) {
	if n <= 1 {
		if n == 1 {
			job(0, -1)
		}
		return
	}
	if ev.client != nil {
		g := ev.client.Group()
		for i := 0; i < n; i++ {
			i := i
			g.Go(func(worker int) { job(i, worker) })
		}
		g.Wait()
		return
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{} // bounding acquire, released by the job
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			job(i, -1)
		}(i)
	}
	wg.Wait()
}

// parallelSelects evaluates read-only SELECT statements concurrently on
// the evaluation's job runner. When sp is non-nil each statement records
// an operator-tree span under it, labelled by the matching labels entry
// (the trace serializes concurrent appends) and tagged with the worker
// that ran it.
func (ev *evaluator) parallelSelects(sqls, labels []string, ns *NodeStats, sp *obs.Span) ([][]rel.Tuple, error) {
	results := make([][]rel.Tuple, len(sqls))
	errs := make([]error, len(sqls))
	t0 := time.Now()
	ev.runJobs(len(sqls), func(i, worker int) {
		var jobSp *obs.Span
		if sp != nil {
			jobSp = sp.Start(labels[i])
			jobSp.SetInt("sched.worker", int64(worker))
		}
		rows, err := ev.d.QueryTracedCtx(ev.evalCtx(), sqls[i], jobSp)
		jobSp.End()
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = rows.Tuples
	})
	ns.Eval += time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// accSet is one predicate's accumulated-tuple index, sharded by hash
// range: shard k holds exactly the keys tupleShard assigns to k, so a
// partitioned dedup pass owns its shard exclusively and runs without
// locks. count is the total across shards.
type accSet struct {
	shards []map[string]bool
	count  int
}

func newAccSet(parts int) *accSet {
	s := &accSet{shards: make([]map[string]bool, parts)}
	for i := range s.shards {
		s.shards[i] = make(map[string]bool)
	}
	return s
}

// add inserts a key (serial use); reports whether it was new.
func (s *accSet) add(key string) bool {
	m := s.shards[tupleShard(key, len(s.shards))]
	if m[key] {
		return false
	}
	m[key] = true
	s.count++
	return true
}

// dedup filters the raw differential results down to genuinely new
// tuples, updating acc. results[i] belongs to predicate heads[i]. The
// returned slices are indexed by partition then predicate — partition
// p's tuples all hash to shard p, which is exactly the layout the
// partitioned delta tables want. Small batches run serially into
// partition 0's slot ordering (same hash shards, so correctness is
// unaffected); large ones fan one task per shard onto the pool, each
// task probing and updating only its own shard — lock-free.
func (ev *evaluator) dedup(heads []string, results [][]rel.Tuple, acc map[string]*accSet, ns *NodeStats) []map[string][]rel.Tuple {
	parts := ev.parts
	out := make([]map[string][]rel.Tuple, parts)
	for p := range out {
		out[p] = make(map[string][]rel.Tuple)
	}
	total := 0
	for _, rows := range results {
		total += len(rows)
	}
	t0 := time.Now()
	if parts == 1 || total < dedupThreshold {
		for i, rows := range results {
			a := acc[heads[i]]
			for _, tu := range rows {
				if a.add(tu.Key()) {
					out[0][heads[i]] = append(out[0][heads[i]], tu)
				}
			}
		}
		ns.TermCheck += time.Since(t0)
		return out
	}
	// Precompute keys and shards once (the partition tasks would
	// otherwise each re-derive every tuple's key).
	keys := make([][]string, len(results))
	shards := make([][]uint8, len(results))
	ev.runJobs(len(results), func(i, _ int) {
		keys[i] = make([]string, len(results[i]))
		shards[i] = make([]uint8, len(results[i]))
		for j, tu := range results[i] {
			k := tu.Key()
			keys[i][j] = k
			shards[i][j] = uint8(tupleShard(k, parts))
		}
	})
	ev.runJobs(parts, func(p, _ int) {
		for i, rows := range results {
			m := acc[heads[i]].shards[p]
			for j, tu := range rows {
				if int(shards[i][j]) != p {
					continue
				}
				k := keys[i][j]
				if m[k] {
					continue
				}
				m[k] = true
				out[p][heads[i]] = append(out[p][heads[i]], tu)
			}
		}
	})
	for _, a := range acc {
		n := 0
		for _, m := range a.shards {
			n += len(m)
		}
		a.count = n
	}
	ns.TermCheck += time.Since(t0)
	return out
}

// deltaRelation materializes one predicate's per-iteration delta in the
// DBMS, optionally split into hash-range partition tables so each
// differential SELECT over a large delta becomes parts independent
// jobs (conclusion 7a taken inside a single rule application).
type deltaRelation struct {
	pred   string
	names  []string // partition tables, created lazily; names[0] first
	dirty  []bool   // partition holds rows from the previous fill
	active []string // partitions holding the current delta
}

// fill installs the iteration's delta tuples (grouped by shard, as
// dedup returns them) into partition tables. Small deltas collapse into
// partition 0 — one differential per rule occurrence, as before; large
// ones occupy one table per non-empty shard.
func (ev *evaluator) fillDelta(dr *deltaRelation, byShard []map[string][]rel.Tuple, ns *NodeStats) error {
	total := 0
	for _, m := range byShard {
		total += len(m[dr.pred])
	}
	split := ev.parts > 1 && total >= partitionThreshold
	// Clear previously used partitions.
	t0 := time.Now()
	for i, d := range dr.dirty {
		if d {
			if err := ev.d.Exec("DELETE FROM " + dr.names[i]); err != nil {
				return err
			}
			dr.dirty[i] = false
		}
	}
	ns.TempTable += time.Since(t0)
	dr.active = dr.active[:0]
	install := func(part int, tuples []rel.Tuple) error {
		if len(tuples) == 0 {
			return nil
		}
		for len(dr.names) <= part {
			name := fmt.Sprintf("%spdelta%d_%s", ev.prefix, len(dr.names), sanitize(dr.pred))
			t0 := time.Now()
			if err := ev.createTable(name, ev.prog.Schemas[dr.pred]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
			dr.names = append(dr.names, name)
			dr.dirty = append(dr.dirty, false)
		}
		if err := ev.d.InsertTuples(dr.names[part], tuples); err != nil {
			return err
		}
		dr.dirty[part] = true
		dr.active = append(dr.active, dr.names[part])
		return nil
	}
	if !split {
		var all []rel.Tuple
		for _, m := range byShard {
			all = append(all, m[dr.pred]...)
		}
		return install(0, all)
	}
	for part, m := range byShard {
		if err := install(part, m[dr.pred]); err != nil {
			return err
		}
	}
	return nil
}

// evalCliqueSemiNaiveParallel is the paper's conclusion 7a realized on
// the bounded scheduler: every differential SELECT of an iteration runs
// concurrently (reads only — the engine's buffer pool and indexes are
// safe for concurrent readers); large deltas are hash-range partitioned
// so a single rule's differential splits across workers; and the new
// tuples are deduplicated against a sharded Go-side accumulator index —
// per-partition hash sets merged lock-free — instead of the SQL set
// differences the paper laments (conclusion 6b). Results are identical
// to the sequential semi-naive loop.
func (ev *evaluator) evalCliqueSemiNaiveParallel(node *codegen.Node, seeds map[string][]rel.Tuple, ns *NodeStats, sp *obs.Span) error {
	for _, p := range node.Preds {
		if err := ev.createPredTable(p, seeds, ns); err != nil {
			return err
		}
	}
	var zeroSp *obs.Span
	if sp != nil {
		zeroSp = sp.Start("iteration 0")
		zeroSp.SetInt("sched.partitions", int64(ev.parts))
	}
	initLabels := make([]string, len(node.ExitRules))
	initHeads := make([]string, len(node.ExitRules))
	for i := range node.ExitRules {
		initLabels[i] = "rule " + node.ExitRules[i].Head
		initHeads[i] = node.ExitRules[i].Head
	}
	// Initialization: exit rules, evaluated concurrently as well.
	initRows, err := ev.parallelSelects(selectsFor(node.ExitRules, func(r *codegen.RuleSQL) []string {
		tables := make([]string, len(r.From))
		for i, f := range r.From {
			tables[i] = ev.tableOf(f.Pred)
		}
		return tables
	}), initLabels, ns, zeroSp)
	if err != nil {
		return err
	}
	// acc tracks accumulated tuples per predicate, Go-side and sharded,
	// so deduplication needs no SQL set differences.
	acc := make(map[string]*accSet, len(node.Preds))
	for _, p := range node.Preds {
		acc[p] = newAccSet(ev.parts)
		for _, tu := range seeds[p] {
			acc[p].add(tu.Key())
		}
	}
	byShard := ev.dedup(initHeads, initRows, acc, ns)
	// Install the deduplicated exit-rule tuples (seeds are already in
	// the predicate tables from createPredTable).
	for _, p := range node.Preds {
		var fresh []rel.Tuple
		for _, m := range byShard {
			fresh = append(fresh, m[p]...)
		}
		if err := ev.d.InsertTuples(ev.tableOf(p), fresh); err != nil {
			return err
		}
		// Seeds are part of the initial delta too.
		if len(seeds[p]) > 0 {
			byShard[0][p] = append(byShard[0][p], seeds[p]...)
		}
		if zeroSp != nil {
			zeroSp.SetInt("delta("+p+")", int64(len(fresh)+len(seeds[p])))
		}
	}
	zeroSp.End()

	// Delta relations are still materialized in the DBMS because the
	// differential SELECTs read them — partitioned by hash range when
	// large.
	deltas := make(map[string]*deltaRelation, len(node.Preds))
	for _, p := range node.Preds {
		deltas[p] = &deltaRelation{pred: p}
		if err := ev.fillDelta(deltas[p], byShard, ns); err != nil {
			return err
		}
	}

	type job struct {
		head string
		sql  string
	}
	for {
		if err := ev.checkCtx(); err != nil {
			return err
		}
		ns.Iterations++
		var itSp *obs.Span
		if sp != nil {
			itSp = sp.Start(fmt.Sprintf("iteration %d", ns.Iterations))
		}
		// One job per (recursive rule, clique occurrence, active delta
		// partition of that occurrence's predicate): the union over
		// partitions is the full differential, since the occurrence is
		// linear in the delta.
		var jobs []job
		for i := range node.RecursiveRules {
			r := &node.RecursiveRules[i]
			for _, occ := range r.CliqueOccs {
				for _, part := range deltas[r.From[occ].Pred].active {
					tables := make([]string, len(r.From))
					for fi, f := range r.From {
						if fi == occ {
							tables[fi] = part
						} else {
							tables[fi] = ev.tableOf(f.Pred)
						}
					}
					jobs = append(jobs, job{head: r.Head, sql: r.SQLWithTables(tables)})
				}
			}
		}
		sqls := make([]string, len(jobs))
		labels := make([]string, len(jobs))
		heads := make([]string, len(jobs))
		for i, j := range jobs {
			sqls[i] = j.sql
			labels[i] = "rule " + j.head
			heads[i] = j.head
		}
		results, err := ev.parallelSelects(sqls, labels, ns, itSp)
		if err != nil {
			return err
		}
		byShard := ev.dedup(heads, results, acc, ns)
		newCount := make(map[string]int, len(node.Preds))
		for _, p := range node.Preds {
			var fresh []rel.Tuple
			for _, m := range byShard {
				fresh = append(fresh, m[p]...)
			}
			newCount[p] = len(fresh)
			if err := ev.d.InsertTuples(ev.tableOf(p), fresh); err != nil {
				return err
			}
		}
		// Termination: all deltas empty (a map-size check; the paper's
		// expensive SQL set difference is gone, which is conclusion 6b).
		t0 := time.Now()
		done := true
		for _, p := range node.Preds {
			if newCount[p] > 0 {
				done = false
			}
			if itSp != nil {
				itSp.SetInt("delta("+p+")", int64(newCount[p]))
				itSp.SetInt("acc("+p+")", int64(acc[p].count))
			}
		}
		ns.TermCheck += time.Since(t0)
		itSp.End()
		if done {
			for _, p := range node.Preds {
				t0 := time.Now()
				for _, name := range deltas[p].names {
					if err := ev.dropTable(name); err != nil {
						return err
					}
				}
				ns.TempTable += time.Since(t0)
			}
			return nil
		}
		for _, p := range node.Preds {
			if err := ev.fillDelta(deltas[p], byShard, ns); err != nil {
				return err
			}
		}
	}
}

// selectsFor renders rule SELECTs with a table-choice function.
func selectsFor(rules []codegen.RuleSQL, tables func(*codegen.RuleSQL) []string) []string {
	out := make([]string, len(rules))
	for i := range rules {
		out[i] = rules[i].SQLWithTables(tables(&rules[i]))
	}
	return out
}
