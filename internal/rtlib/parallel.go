package rtlib

import (
	"fmt"
	"sync"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

// evalCliqueSemiNaiveParallel is the paper's conclusion 7a realized:
// "during each iteration, the right hand side of each recursive
// equation may be evaluated in parallel". Every differential SELECT of
// an iteration runs concurrently (reads only — the engine's buffer pool
// and indexes are safe for concurrent readers); the new tuples are then
// deduplicated and installed serially. Results are identical to the
// sequential semi-naive loop.
func (ev *evaluator) evalCliqueSemiNaiveParallel(node *codegen.Node, seeds map[string][]rel.Tuple, ns *NodeStats, sp *obs.Span) error {
	for _, p := range node.Preds {
		if err := ev.createPredTable(p, seeds, ns); err != nil {
			return err
		}
	}
	var zeroSp *obs.Span
	if sp != nil {
		zeroSp = sp.Start("iteration 0")
	}
	initLabels := make([]string, len(node.ExitRules))
	for i := range node.ExitRules {
		initLabels[i] = "rule " + node.ExitRules[i].Head
	}
	// Initialization: exit rules, evaluated concurrently as well.
	initRows, err := ev.parallelSelects(selectsFor(node.ExitRules, func(r *codegen.RuleSQL) []string {
		tables := make([]string, len(r.From))
		for i, f := range r.From {
			tables[i] = ev.tableOf(f.Pred)
		}
		return tables
	}), initLabels, ns, zeroSp)
	if err != nil {
		return err
	}
	// accKeys tracks accumulated tuples per predicate, Go-side, so
	// deduplication needs no SQL set differences.
	accKeys := make(map[string]map[string]bool, len(node.Preds))
	for _, p := range node.Preds {
		accKeys[p] = make(map[string]bool)
		for _, tu := range seeds[p] {
			accKeys[p][tu.Key()] = true
		}
	}
	delta := make(map[string][]rel.Tuple, len(node.Preds))
	for i, r := range node.ExitRules {
		for _, tu := range initRows[i] {
			k := tu.Key()
			if !accKeys[r.Head][k] {
				accKeys[r.Head][k] = true
				if err := ev.insertTuple(ev.tables[r.Head], tu); err != nil {
					return err
				}
				delta[r.Head] = append(delta[r.Head], tu)
			}
		}
	}
	// Seeds are part of the initial delta too.
	for _, p := range node.Preds {
		delta[p] = append(delta[p], seeds[p]...)
		if zeroSp != nil {
			zeroSp.SetInt("delta("+p+")", int64(len(delta[p])))
		}
	}
	zeroSp.End()

	// Delta tables are still materialized in the DBMS because the
	// differential SELECTs read them.
	deltaTable := make(map[string]string, len(node.Preds))
	for _, p := range node.Preds {
		name := fmt.Sprintf("%spdelta_%s", ev.prefix, sanitize(p))
		t0 := time.Now()
		if err := ev.createTable(name, ev.prog.Schemas[p]); err != nil {
			return err
		}
		ns.TempTable += time.Since(t0)
		deltaTable[p] = name
		for _, tu := range delta[p] {
			if err := ev.insertTuple(name, tu); err != nil {
				return err
			}
		}
	}

	type job struct {
		head string
		sql  string
	}
	for {
		if err := ev.checkCtx(); err != nil {
			return err
		}
		ns.Iterations++
		var itSp *obs.Span
		if sp != nil {
			itSp = sp.Start(fmt.Sprintf("iteration %d", ns.Iterations))
		}
		var jobs []job
		for i := range node.RecursiveRules {
			r := &node.RecursiveRules[i]
			for _, occ := range r.CliqueOccs {
				tables := make([]string, len(r.From))
				for fi, f := range r.From {
					if fi == occ {
						tables[fi] = deltaTable[f.Pred]
					} else {
						tables[fi] = ev.tableOf(f.Pred)
					}
				}
				jobs = append(jobs, job{head: r.Head, sql: r.SQLWithTables(tables)})
			}
		}
		sqls := make([]string, len(jobs))
		labels := make([]string, len(jobs))
		for i, j := range jobs {
			sqls[i] = j.sql
			labels[i] = "rule " + j.head
		}
		results, err := ev.parallelSelects(sqls, labels, ns, itSp)
		if err != nil {
			return err
		}
		// Serial install with Go-side dedup.
		newDelta := make(map[string][]rel.Tuple, len(node.Preds))
		for i, j := range jobs {
			for _, tu := range results[i] {
				k := tu.Key()
				if accKeys[j.head][k] {
					continue
				}
				accKeys[j.head][k] = true
				if err := ev.insertTuple(ev.tables[j.head], tu); err != nil {
					return err
				}
				newDelta[j.head] = append(newDelta[j.head], tu)
			}
		}
		// Termination: all deltas empty (a map-size check; the paper's
		// expensive SQL set difference is gone, which is conclusion 6b).
		t0 := time.Now()
		done := true
		for _, p := range node.Preds {
			if len(newDelta[p]) > 0 {
				done = false
			}
			if itSp != nil {
				itSp.SetInt("delta("+p+")", int64(len(newDelta[p])))
				itSp.SetInt("acc("+p+")", int64(len(accKeys[p])))
			}
		}
		ns.TermCheck += time.Since(t0)
		itSp.End()
		if done {
			for _, p := range node.Preds {
				t0 := time.Now()
				if err := ev.dropTable(deltaTable[p]); err != nil {
					return err
				}
				ns.TempTable += time.Since(t0)
			}
			return nil
		}
		for _, p := range node.Preds {
			t0 := time.Now()
			if err := ev.d.Exec("DELETE FROM " + deltaTable[p]); err != nil {
				return err
			}
			ns.TempTable += time.Since(t0)
			for _, tu := range newDelta[p] {
				if err := ev.insertTuple(deltaTable[p], tu); err != nil {
					return err
				}
			}
		}
	}
}

// selectsFor renders rule SELECTs with a table-choice function.
func selectsFor(rules []codegen.RuleSQL, tables func(*codegen.RuleSQL) []string) []string {
	out := make([]string, len(rules))
	for i := range rules {
		out[i] = rules[i].SQLWithTables(tables(&rules[i]))
	}
	return out
}

// parallelSelects evaluates read-only SELECT statements concurrently.
// When sp is non-nil each statement records an operator-tree span under
// it, labelled by the matching labels entry (the trace serializes
// concurrent appends).
func (ev *evaluator) parallelSelects(sqls, labels []string, ns *NodeStats, sp *obs.Span) ([][]rel.Tuple, error) {
	results := make([][]rel.Tuple, len(sqls))
	errs := make([]error, len(sqls))
	t0 := time.Now()
	var wg sync.WaitGroup
	for i, q := range sqls {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			var jobSp *obs.Span
			if sp != nil {
				jobSp = sp.Start(labels[i])
			}
			rows, err := ev.d.QueryTraced(q, jobSp)
			jobSp.End()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = rows.Tuples
		}(i, q)
	}
	wg.Wait()
	ns.Eval += time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
