// Package rtlib is the testbed's Run Time Library (paper §3.3): the
// bottom-up least-fixed-point machinery that executes the evaluation
// program produced by the code generator against the DBMS through its
// SQL interface.
//
// Two LFP strategies are implemented, as in the paper:
//
//   - naive evaluation: each iteration recomputes f(R) from scratch into
//     a fresh table and terminates when no new tuple appeared;
//   - semi-naive evaluation: the differential approach — each recursive
//     rule is evaluated once per clique occurrence with that occurrence
//     reading the delta relation, and only genuinely new tuples extend
//     the result.
//
// Exactly as the paper laments, everything runs over plain SQL: temp
// tables are created and dropped per iteration, termination checks are
// set differences, and accumulated relations are copied — the library
// instruments those costs (Stats) because they are the subject of the
// paper's Tests 5–7.
package rtlib

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/sched"
)

// Strategy selects the LFP evaluation algorithm.
type Strategy int

// Available strategies.
const (
	SemiNaive Strategy = iota
	Naive
)

// String names the strategy.
func (s Strategy) String() string {
	if s == Naive {
		return "naive"
	}
	return "semi-naive"
}

// Options configure an evaluation run.
type Options struct {
	Strategy Strategy
	// KeepTables, when set, skips the final cleanup so callers can
	// inspect derived relations; Cleanup must then be called manually.
	KeepTables bool
	// Parallel evaluates each iteration's recursive-rule differentials
	// concurrently (the paper's conclusion 7a), hash-partitions large
	// dedup and termination checks across workers, and evaluates
	// independent evaluation-order nodes as a dependency wavefront.
	// The answer is identical to the sequential loop.
	Parallel bool
	// Pool, when non-nil and Parallel is set, bounds the evaluation's
	// concurrency on a shared worker pool with fair per-query
	// admission. Without a pool, parallel work falls back to transient
	// goroutines capped at GOMAXPROCS per evaluation.
	Pool *sched.Pool
	// Trace, when non-nil, records an "eval" span tree: one span per
	// evaluation-order node, per LFP iteration (delta cardinalities,
	// accumulator sizes, set-difference cost) and per generated SQL
	// statement's operator tree. Nil disables all recording at the cost
	// of a nil check.
	Trace *obs.Trace
	// Ctx, when non-nil, is polled at LFP iteration boundaries (and
	// between nodes); cancellation aborts the evaluation with an error
	// wrapping ctx.Err().
	Ctx context.Context
}

// NodeStats records the cost of evaluating one evaluation-order node.
type NodeStats struct {
	Preds      []string
	Recursive  bool
	Iterations int
	// Elapsed is the total wall-clock time in the node.
	Elapsed time.Duration
	// TempTable is time creating/dropping/copying temporary tables.
	TempTable time.Duration
	// Eval is time evaluating rule bodies (INSERT INTO ... SELECT).
	Eval time.Duration
	// TermCheck is time spent deciding termination (set differences /
	// counts).
	TermCheck time.Duration
	// Tuples is the final size of the node's derived relations.
	Tuples int
}

// Stats aggregates an evaluation run.
type Stats struct {
	Nodes []NodeStats
	// Totals across nodes.
	TempTable time.Duration
	Eval      time.Duration
	TermCheck time.Duration
	Elapsed   time.Duration
}

// Result is a completed evaluation.
type Result struct {
	// Rows are the tuples of the query predicate.
	Rows []rel.Tuple
	// Schema describes the rows.
	Schema *rel.Schema
	Stats  Stats

	ev *evaluator
}

// Cleanup drops any temp tables kept alive by Options.KeepTables.
func (r *Result) Cleanup() error {
	if r.ev == nil {
		return nil
	}
	err := r.ev.cleanup()
	r.ev = nil
	return err
}

// Detach transfers ownership of the evaluation's derived relations to
// the caller: the predicate→temp-table map and the list of tables to
// drop eventually (the materialized-view layer wraps them and maintains
// them in place). After Detach, Cleanup is a no-op; both return nil
// maps unless the evaluation ran with Options.KeepTables. The
// evaluation is complete by the time a Result exists, so no lock is
// needed.
func (r *Result) Detach() (tables map[string]string, created []string) {
	if r.ev == nil {
		return nil, nil
	}
	ev := r.ev
	r.ev = nil
	return ev.tables, ev.created
}

// runSeq distinguishes concurrent evaluations' temp table names within
// one process (the shell, the benches and the server's sessions reuse a
// single DB). Incremented atomically: evaluations start concurrently.
var runSeq uint64

// maxPartitions caps hash-range partitioning of dedup, termination
// checks and delta tables: beyond ~8 ways the per-partition bookkeeping
// outweighs the parallelism for the deltas these workloads produce.
const maxPartitions = 8

// Evaluate runs a compiled program against the database.
func Evaluate(d *db.DB, prog *codegen.Program, opts Options) (*Result, error) {
	seq := atomic.AddUint64(&runSeq, 1)
	ev := &evaluator{
		d:      d,
		prog:   prog,
		opts:   opts,
		prefix: fmt.Sprintf("dkb%d_", seq),
		tables: make(map[string]string),
		ctx:    opts.Ctx,
		parts:  1,
	}
	if opts.Parallel {
		if opts.Pool != nil {
			ev.client = opts.Pool.NewClient()
			defer ev.client.Close()
			ev.parts = opts.Pool.Workers()
		} else {
			ev.parts = runtime.GOMAXPROCS(0)
		}
		if ev.parts > maxPartitions {
			ev.parts = maxPartitions
		}
		if ev.parts < 1 {
			ev.parts = 1
		}
	}
	res, err := ev.run()
	if err != nil {
		// Best-effort teardown on failure.
		ev.cleanup()
		return nil, err
	}
	if !opts.KeepTables {
		if err := ev.cleanup(); err != nil {
			return nil, err
		}
	} else {
		res.ev = ev
	}
	return res, nil
}

type evaluator struct {
	d      *db.DB
	prog   *codegen.Program
	opts   Options
	prefix string
	// mu guards tables and created: the stratum wavefront evaluates
	// independent nodes concurrently, and each registers the temp
	// tables it creates.
	mu sync.Mutex
	// tables maps derived predicates to their temp table names. Base
	// predicates map to themselves.
	tables  map[string]string
	created []string // temp tables to drop at cleanup
	stats   Stats
	ctx     context.Context
	// client is the evaluation's admission handle on the shared worker
	// pool (nil without one); parts is the hash-range partition count
	// for dedup/termcheck/delta partitioning (1 = no partitioning).
	client *sched.Client
	parts  int
}

// checkCtx polls the run's context (nil = never canceled). It is the
// LFP iteration-boundary cancellation point.
func (ev *evaluator) checkCtx() error {
	if ev.ctx == nil {
		return nil
	}
	if err := ev.ctx.Err(); err != nil {
		return fmt.Errorf("rtlib: evaluation canceled: %w", err)
	}
	return nil
}

// evalCtx returns the run's context for statement-level cancellation
// (rule INSERT ... SELECTs and differential SELECTs observe it between
// tuples), or Background when the run has none.
func (ev *evaluator) evalCtx() context.Context {
	if ev.ctx == nil {
		return context.Background()
	}
	return ev.ctx
}

// tableOf resolves a predicate to its current relation name: the temp
// table for derived predicates, the extensional table otherwise.
func (ev *evaluator) tableOf(pred string) string {
	ev.mu.Lock()
	t, ok := ev.tables[pred]
	ev.mu.Unlock()
	if ok {
		return t
	}
	return codegen.BaseTable(pred)
}

func (ev *evaluator) run() (*Result, error) {
	start := time.Now()
	// Verify base relations and seeds up front for clean errors.
	for _, p := range ev.prog.BasePreds {
		if !ev.d.HasTable(codegen.BaseTable(p)) {
			return nil, fmt.Errorf("rtlib: extensional relation %s (for predicate %s) does not exist",
				codegen.BaseTable(p), p)
		}
	}
	if err := seedTuplesValid(ev.prog); err != nil {
		return nil, err
	}
	seeds := make(map[string][]rel.Tuple)
	for _, s := range ev.prog.Seeds {
		seeds[s.Pred] = append(seeds[s.Pred], s.Tuple)
	}
	// Seed-only predicates (no defining rules, e.g. the magic predicate
	// of a non-recursive bound subgoal) are materialized up front.
	nodePreds := make(map[string]bool)
	for _, n := range ev.prog.Nodes {
		for _, p := range n.Preds {
			nodePreds[p] = true
		}
	}
	var preStats NodeStats
	for _, s := range ev.prog.Seeds {
		if nodePreds[s.Pred] {
			continue
		}
		if _, made := ev.tables[s.Pred]; made {
			continue
		}
		if err := ev.createPredTable(s.Pred, seeds, &preStats); err != nil {
			return nil, err
		}
	}
	ev.stats.TempTable += preStats.TempTable

	evalSp := ev.opts.Trace.Start("eval")
	ev.stats.Nodes = make([]NodeStats, len(ev.prog.Nodes))
	if ev.client != nil && len(ev.prog.Nodes) > 1 {
		if err := ev.runWavefront(seeds, evalSp); err != nil {
			return nil, err
		}
	} else {
		for i := range ev.prog.Nodes {
			if err := ev.checkCtx(); err != nil {
				return nil, err
			}
			if err := ev.evalNode(i, seeds, evalSp, -1); err != nil {
				return nil, err
			}
		}
	}
	if ev.client != nil {
		evalSp.SetInt("sched.admitted", ev.client.Admitted())
	}
	for i := range ev.stats.Nodes {
		ns := &ev.stats.Nodes[i]
		ev.stats.TempTable += ns.TempTable
		ev.stats.Eval += ns.Eval
		ev.stats.TermCheck += ns.TermCheck
	}

	ev.mu.Lock()
	qt, ok := ev.tables[ev.prog.QueryPred]
	ev.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rtlib: query predicate %s was not evaluated", ev.prog.QueryPred)
	}
	rows, err := ev.d.Query("SELECT * FROM " + qt)
	if err != nil {
		return nil, err
	}
	ev.stats.Elapsed = time.Since(start)
	evalSp.SetInt("rows", int64(len(rows.Tuples)))
	evalSp.End()
	return &Result{Rows: rows.Tuples, Schema: ev.prog.Schemas[ev.prog.QueryPred], Stats: ev.stats}, nil
}

// evalNode evaluates evaluation-order node i and records its stats at
// index i. worker is the pool worker running it (-1 when sequential or
// inline), recorded on the node's span.
func (ev *evaluator) evalNode(i int, seeds map[string][]rel.Tuple, evalSp *obs.Span, worker int) error {
	node := &ev.prog.Nodes[i]
	ns := &ev.stats.Nodes[i]
	ns.Preds = node.Preds
	ns.Recursive = node.Recursive
	var sp *obs.Span
	if evalSp != nil {
		sp = evalSp.Start("node " + strings.Join(node.Preds, ","))
		if node.Recursive {
			sp.SetString("kind", "recursive")
		}
		if worker >= 0 {
			sp.SetInt("sched.worker", int64(worker))
		}
	}
	nodeStart := time.Now()
	var err error
	if node.Recursive {
		switch {
		case ev.opts.Strategy == Naive:
			err = ev.evalCliqueNaive(node, seeds, ns, sp)
		case ev.opts.Parallel:
			err = ev.evalCliqueSemiNaiveParallel(node, seeds, ns, sp)
		default:
			err = ev.evalCliqueSemiNaive(node, seeds, ns, sp)
		}
	} else {
		err = ev.evalNonRecursive(node, seeds, ns, sp)
	}
	if err != nil {
		return err
	}
	ns.Elapsed = time.Since(nodeStart)
	for _, p := range node.Preds {
		ns.Tuples += ev.d.TableRows(ev.tableOf(p))
	}
	sp.SetInt("iterations", int64(ns.Iterations))
	sp.SetInt("tuples", int64(ns.Tuples))
	sp.End()
	return nil
}

// runWavefront evaluates the evaluation-order list as a dependency
// wavefront on the shared pool: a node is forked as soon as every node
// it reads has finished, so independent cliques — separate recursions
// with no path between them, or a query over several disjoint rule
// families — evaluate concurrently. Program.Nodes is topologically
// ordered (dependencies first), so at least one node is always ready
// and the forked set grows monotonically toward completion.
func (ev *evaluator) runWavefront(seeds map[string][]rel.Tuple, evalSp *obs.Span) error {
	n := len(ev.prog.Nodes)
	dependents := make([][]int, n)
	remaining := make([]int, n)
	for i := range ev.prog.Nodes {
		deps := ev.prog.Nodes[i].Deps
		remaining[i] = len(deps)
		for _, j := range deps {
			dependents[j] = append(dependents[j], i)
		}
	}
	var mu sync.Mutex // guards remaining and firstErr
	var firstErr error
	g := ev.client.Group()
	var launch func(i int)
	launch = func(i int) {
		g.Go(func(worker int) {
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			err := ev.checkCtx()
			if err == nil {
				err = ev.evalNode(i, seeds, evalSp, worker)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for _, j := range dependents[i] {
				remaining[j]--
				if remaining[j] == 0 {
					launch(j)
				}
			}
		})
	}
	mu.Lock()
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			launch(i)
		}
	}
	mu.Unlock()
	g.Wait()
	return firstErr
}

// createPredTable creates the temp table for a derived predicate and
// registers it, inserting any seeds.
func (ev *evaluator) createPredTable(pred string, seeds map[string][]rel.Tuple, ns *NodeStats) error {
	name := ev.prefix + sanitize(pred)
	t0 := time.Now()
	if err := ev.createTable(name, ev.prog.Schemas[pred]); err != nil {
		return err
	}
	ns.TempTable += time.Since(t0)
	ev.mu.Lock()
	ev.tables[pred] = name
	ev.mu.Unlock()
	return ev.d.InsertTuples(name, seeds[pred])
}

func (ev *evaluator) createTable(name string, schema *rel.Schema) error {
	if schema == nil {
		return fmt.Errorf("rtlib: no schema for temp table %s", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TEMP TABLE %s (", name)
	for i := 0; i < schema.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		c := schema.Col(i)
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type.String())
	}
	b.WriteByte(')')
	if err := ev.d.Exec(b.String()); err != nil {
		return err
	}
	ev.mu.Lock()
	ev.created = append(ev.created, name)
	ev.mu.Unlock()
	return nil
}

func (ev *evaluator) dropTable(name string) error {
	ev.mu.Lock()
	for i, t := range ev.created {
		if t == name {
			ev.created = append(ev.created[:i], ev.created[i+1:]...)
			break
		}
	}
	ev.mu.Unlock()
	return ev.d.Exec("DROP TABLE " + name)
}

// evalNonRecursive evaluates a non-recursive predicate node: union of
// its rules, deduplicated.
func (ev *evaluator) evalNonRecursive(node *codegen.Node, seeds map[string][]rel.Tuple, ns *NodeStats, sp *obs.Span) error {
	for _, p := range node.Preds {
		if err := ev.createPredTable(p, seeds, ns); err != nil {
			return err
		}
	}
	for i := range node.ExitRules {
		r := &node.ExitRules[i]
		target := ev.tableOf(r.Head)
		var ruleSp *obs.Span
		if sp != nil {
			ruleSp = sp.Start("rule " + r.Head)
			ruleSp.SetString("src", r.Source)
		}
		t0 := time.Now()
		stmt := fmt.Sprintf("INSERT INTO %s %s EXCEPT SELECT * FROM %s",
			target, r.SQL(ev.tableOf), target)
		if err := ev.d.ExecTracedCtx(ev.evalCtx(), stmt, ruleSp); err != nil {
			return fmt.Errorf("rtlib: rule %q: %w", r.Source, err)
		}
		ruleSp.End()
		ns.Eval += time.Since(t0)
	}
	ns.Iterations = 1
	return nil
}

// sanitize maps predicate names injectively onto SQL identifier bodies:
// the uniform "p" prefix keeps reserved predicates (leading '_') legal
// and collision-free against user predicates.
func sanitize(pred string) string {
	return "p" + pred
}
