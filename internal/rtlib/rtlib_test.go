package rtlib

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
	"dkbms/internal/typeinf"
)

// compile runs the pcg → typeinf → codegen pipeline for a rule set.
func compile(t *testing.T, root string, baseTypes map[string][]rel.Type, srcs ...string) *codegen.Program {
	t.Helper()
	var rules []dlog.Clause
	for _, s := range srcs {
		rules = append(rules, dlog.MustParseClause(s))
	}
	g := pcg.Build(rules)
	a, err := pcg.Analyze(g, root)
	if err != nil {
		t.Fatal(err)
	}
	types, err := typeinf.Infer(a.Order, baseTypes)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(a.Order, types, a.BasePreds, root)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// loadEdges creates edb_<pred> and loads string pairs "a>b".
func loadEdges(t *testing.T, d *db.DB, pred string, edges ...string) {
	t.Helper()
	if err := d.Exec(fmt.Sprintf("CREATE TABLE %s (c0 CHAR, c1 CHAR)", codegen.BaseTable(pred))); err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		parts := strings.SplitN(e, ">", 2)
		if err := d.Exec(fmt.Sprintf("INSERT INTO %s VALUES ('%s', '%s')",
			codegen.BaseTable(pred), parts[0], parts[1])); err != nil {
			t.Fatal(err)
		}
	}
}

var stringPair = map[string][]rel.Type{
	"e": {rel.TypeString, rel.TypeString},
}

func ancestorProgram(t *testing.T) *codegen.Program {
	return compile(t, "anc", stringPair,
		"anc(X, Y) :- e(X, Y).",
		"anc(X, Y) :- e(X, Z), anc(Z, Y).",
	)
}

func rowSet(rows []rel.Tuple) string {
	out := make([]string, len(rows))
	for i, tu := range rows {
		out[i] = tu.String()
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

func TestEvaluateBothStrategies(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		d := db.OpenMemory()
		loadEdges(t, d, "e", "a>b", "b>c", "c>d")
		prog := ancestorProgram(t)
		res, err := Evaluate(d, prog, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		want := "(a, b)|(a, c)|(a, d)|(b, c)|(b, d)|(c, d)"
		if rowSet(res.Rows) != want {
			t.Fatalf("%v rows: %s", strat, rowSet(res.Rows))
		}
		if res.Stats.Elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", strat)
		}
		d.Close()
	}
}

func TestNaiveDoesMoreEvalWork(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	var edges []string
	for i := 0; i < 30; i++ {
		edges = append(edges, fmt.Sprintf("n%02d>n%02d", i, i+1))
	}
	loadEdges(t, d, "e", edges...)
	prog := ancestorProgram(t)
	semi, err := Evaluate(d, prog, Options{Strategy: SemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Evaluate(d, prog, Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(semi.Rows) != rowSet(naive.Rows) {
		t.Fatal("strategies disagree")
	}
	// The paper's Test 5: naive recomputes prior iterations' tuples, so
	// its evaluation time dominates semi-naive's on a deep chain.
	if naive.Stats.Eval <= semi.Stats.Eval {
		t.Fatalf("naive eval %v not greater than semi-naive %v", naive.Stats.Eval, semi.Stats.Eval)
	}
}

func TestIterationCounts(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c", "c>d", "d>e2")
	prog := ancestorProgram(t)
	res, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rec *NodeStats
	for i := range res.Stats.Nodes {
		if res.Stats.Nodes[i].Recursive {
			rec = &res.Stats.Nodes[i]
		}
	}
	if rec == nil {
		t.Fatal("no recursive node stats")
	}
	// Path length 4: deltas shrink over 4 rounds, 5th confirms empty.
	if rec.Iterations < 4 {
		t.Fatalf("iterations = %d", rec.Iterations)
	}
	if rec.Tuples != 10 { // closure of a 4-edge chain: 4+3+2+1
		t.Fatalf("tuples = %d", rec.Tuples)
	}
}

func TestSeedsInitializeRelation(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	// m seeded with 'a', closed under m(Y) :- m(X), e(X, Y) — exactly
	// the shape of a magic predicate with its query seed.
	prog := compile(t, "m", stringPair, "m(Y) :- m(X), e(X, Y).")
	prog.Seeds = []codegen.SeedFact{{Pred: "m", Tuple: rel.Tuple{rel.NewString("a")}}}
	res, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(res.Rows) != "(a)|(b)|(c)" {
		t.Fatalf("rows: %s", rowSet(res.Rows))
	}
}

func TestMissingBaseRelation(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	prog := ancestorProgram(t)
	if _, err := Evaluate(d, prog, Options{}); err == nil {
		t.Fatal("missing extensional relation accepted")
	}
}

func TestBadSeedRejected(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b")
	prog := ancestorProgram(t)
	prog.Seeds = []codegen.SeedFact{{Pred: "anc", Tuple: rel.Tuple{rel.NewInt(3)}}}
	if _, err := Evaluate(d, prog, Options{}); err == nil {
		t.Fatal("type-mismatched seed accepted")
	}
	prog.Seeds = []codegen.SeedFact{{Pred: "ghost", Tuple: rel.Tuple{rel.NewString("x")}}}
	if _, err := Evaluate(d, prog, Options{}); err == nil {
		t.Fatal("seed for unknown predicate accepted")
	}
}

func TestNoTempTablesRemain(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	before := len(d.Catalog().Tables())
	prog := ancestorProgram(t)
	for _, strat := range []Strategy{SemiNaive, Naive} {
		if _, err := Evaluate(d, prog, Options{Strategy: strat}); err != nil {
			t.Fatal(err)
		}
	}
	if after := len(d.Catalog().Tables()); after != before {
		t.Fatalf("temp tables leaked: %d -> %d (%v)", before, after, d.Catalog().Tables())
	}
}

func TestKeepTablesAndCleanup(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b")
	prog := ancestorProgram(t)
	before := len(d.Catalog().Tables())
	res, err := Evaluate(d, prog, Options{KeepTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Catalog().Tables()) <= before {
		t.Fatal("KeepTables did not keep anything")
	}
	if err := res.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if len(d.Catalog().Tables()) != before {
		t.Fatal("Cleanup left tables behind")
	}
	// Second cleanup is a no-op.
	if err := res.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestNonRecursiveChain(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c")
	prog := compile(t, "ggp", stringPair,
		"gp(X, Y) :- e(X, Z), e(Z, Y).",
		"ggp(X, Y) :- gp(X, Z), e(Z, Y).",
	)
	res, err := Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(res.Rows) != "" { // a>b>c has no third edge
		t.Fatalf("rows: %s", rowSet(res.Rows))
	}
	loadLonger := func(edges ...string) {
		for _, e := range edges {
			parts := strings.SplitN(e, ">", 2)
			if err := d.Exec(fmt.Sprintf("INSERT INTO %s VALUES ('%s', '%s')",
				codegen.BaseTable("e"), parts[0], parts[1])); err != nil {
				t.Fatal(err)
			}
		}
	}
	loadLonger("c>d")
	res, err = Evaluate(d, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rowSet(res.Rows) != "(a, d)" {
		t.Fatalf("rows: %s", rowSet(res.Rows))
	}
}

func TestMutualRecursionClique(t *testing.T) {
	d := db.OpenMemory()
	defer d.Close()
	loadEdges(t, d, "e", "a>b", "b>c", "c>d", "d>e2")
	prog := compile(t, "odd", stringPair,
		"odd(X, Y) :- e(X, Y).",
		"odd(X, Y) :- e(X, Z), even(Z, Y).",
		"even(X, Y) :- e(X, Z), odd(Z, Y).",
	)
	for _, strat := range []Strategy{SemiNaive, Naive} {
		res, err := Evaluate(d, prog, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		want := "(a, b)|(a, d)|(b, c)|(b, e2)|(c, d)|(d, e2)"
		if rowSet(res.Rows) != want {
			t.Fatalf("%v rows: %s", strat, rowSet(res.Rows))
		}
	}
}

func TestStrategyString(t *testing.T) {
	if SemiNaive.String() != "semi-naive" || Naive.String() != "naive" {
		t.Fatal("strategy names")
	}
}

// seedsFor builds string seed facts for one predicate.
func seedsFor(pred string, vals ...string) []codegen.SeedFact {
	out := make([]codegen.SeedFact, len(vals))
	for i, v := range vals {
		out[i] = codegen.SeedFact{Pred: pred, Tuple: rel.Tuple{rel.NewString(v)}}
	}
	return out
}
