package rtlib

import (
	"fmt"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// TC is the specialized transitive-closure operator the paper's
// conclusions call for (items 6 and 8): a least-fixed-point computation
// executed inside the DBMS rather than as an application program over
// the SQL interface. It avoids every overhead the paper measures in
// Tests 5–6 — no temporary tables, no table copies, and a termination
// check that is a hash probe instead of a set difference.
//
// TC computes the transitive closure of the binary extensional relation
// of pred. A non-nil seed restricts the computation to pairs reachable
// from that single source value (the equivalent of the magic-restricted
// evaluation for a bound-first query), returning (seed, y) pairs.
func TC(d *db.DB, pred string, seed *rel.Value) ([]rel.Tuple, error) {
	t := d.Table(codegen.BaseTable(pred))
	if t == nil {
		return nil, fmt.Errorf("rtlib: no extensional relation for %s", pred)
	}
	if t.Schema.Len() != 2 {
		return nil, fmt.Errorf("rtlib: TC requires a binary relation; %s has %d columns", pred, t.Schema.Len())
	}
	// Build the adjacency map in one scan.
	keyOf := func(v rel.Value) string { return fmt.Sprintf("%d\x00%s", v.Kind, v.String()) }
	adj := make(map[string][]rel.Value)
	keyVal := make(map[string]rel.Value)
	if err := t.Scan(func(_ storage.RID, tu rel.Tuple) error {
		k := keyOf(tu[0])
		adj[k] = append(adj[k], tu[1])
		keyVal[k] = tu[0]
		return nil
	}); err != nil {
		return nil, err
	}

	if seed != nil {
		// Single-source reachability: worklist over the adjacency map.
		seen := make(map[string]rel.Value)
		var stack []rel.Value
		for _, b := range adj[keyOf(*seed)] {
			if _, ok := seen[keyOf(b)]; !ok {
				seen[keyOf(b)] = b
				stack = append(stack, b)
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, b := range adj[keyOf(v)] {
				if _, ok := seen[keyOf(b)]; !ok {
					seen[keyOf(b)] = b
					stack = append(stack, b)
				}
			}
		}
		out := make([]rel.Tuple, 0, len(seen))
		for _, v := range seen {
			out = append(out, rel.Tuple{*seed, v})
		}
		return out, nil
	}

	// Full closure: semi-naive at the tuple level, per source node.
	var out []rel.Tuple
	for k, src := range keyVal {
		seen := make(map[string]rel.Value)
		var stack []rel.Value
		for _, b := range adj[k] {
			if _, ok := seen[keyOf(b)]; !ok {
				seen[keyOf(b)] = b
				stack = append(stack, b)
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, b := range adj[keyOf(v)] {
				if _, ok := seen[keyOf(b)]; !ok {
					seen[keyOf(b)] = b
					stack = append(stack, b)
				}
			}
		}
		for _, v := range seen {
			out = append(out, rel.Tuple{src, v})
		}
	}
	return out, nil
}
