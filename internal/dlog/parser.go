package dlog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseProgram parses a sequence of clauses and queries.
func ParseProgram(src string) (*Program, error) {
	p := &dparser{src: src}
	prog := &Program{}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return prog, nil
		}
		if p.peekStr("?-") {
			q, err := p.query()
			if err != nil {
				return nil, err
			}
			prog.Queries = append(prog.Queries, q)
			continue
		}
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		prog.Clauses = append(prog.Clauses, c)
	}
}

// ParseClause parses exactly one clause (rule or fact).
func ParseClause(src string) (Clause, error) {
	p := &dparser{src: src}
	c, err := p.clause()
	if err != nil {
		return Clause{}, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return Clause{}, p.errf("trailing input after clause")
	}
	return c, nil
}

// ParseQuery parses exactly one query ("?- ..." with the prefix
// optional).
func ParseQuery(src string) (Query, error) {
	p := &dparser{src: src}
	p.skipSpace()
	p.peekStr("?-") // consume if present
	q, err := p.goals()
	if err != nil {
		return Query{}, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return Query{}, p.errf("trailing input after query")
	}
	return q, nil
}

// MustParseClause is ParseClause panicking on error; for tests and
// fixture literals.
func MustParseClause(src string) Clause {
	c, err := ParseClause(src)
	if err != nil {
		panic(err)
	}
	return c
}

type dparser struct {
	src string
	pos int
}

func (p *dparser) errf(format string, args ...any) error {
	tail := p.src[p.pos:]
	if len(tail) > 40 {
		tail = tail[:40] + "..."
	}
	return fmt.Errorf("dlog: %s (at %q)", fmt.Sprintf(format, args...), tail)
}

func (p *dparser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '%' { // Prolog-style line comment
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c == '#' { // shell-style line comment
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		return
	}
}

// peekStr consumes s if the input starts with it.
func (p *dparser) peekStr(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *dparser) expectByte(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *dparser) query() (Query, error) {
	q, err := p.goals()
	if err != nil {
		return Query{}, err
	}
	return q, nil
}

func (p *dparser) goals() (Query, error) {
	var q Query
	for {
		a, err := p.atom()
		if err != nil {
			return Query{}, err
		}
		q.Goals = append(q.Goals, a)
		p.skipSpace()
		if p.peekStr(",") {
			continue
		}
		if err := p.expectByte('.'); err != nil {
			return Query{}, err
		}
		return q, nil
	}
}

func (p *dparser) clause() (Clause, error) {
	head, err := p.atom()
	if err != nil {
		return Clause{}, err
	}
	c := Clause{Head: head}
	p.skipSpace()
	if p.peekStr(":-") || p.peekStr("<-") {
		for {
			a, err := p.atom()
			if err != nil {
				return Clause{}, err
			}
			c.Body = append(c.Body, a)
			if p.peekStr(",") {
				continue
			}
			break
		}
	}
	if err := p.expectByte('.'); err != nil {
		return Clause{}, err
	}
	return c, nil
}

func (p *dparser) atom() (Atom, error) {
	p.skipSpace()
	name, err := p.identifier()
	if err != nil {
		return Atom{}, err
	}
	if name == "" || !isPredName(name) {
		return Atom{}, p.errf("predicate name must start with a lower-case letter or '_', got %q", name)
	}
	if err := p.expectByte('('); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name}
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.peekStr(",") {
			continue
		}
		break
	}
	if err := p.expectByte(')'); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *dparser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected end of input in term")
	}
	c := p.src[p.pos]
	switch {
	case c == '"':
		s, err := p.quoted()
		if err != nil {
			return Term{}, err
		}
		return CStr(s), nil
	case c == '-' || (c >= '0' && c <= '9'):
		start := p.pos
		if c == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return Term{}, p.errf("bad integer %q", p.src[start:p.pos])
		}
		return CInt(n), nil
	default:
		name, err := p.identifier()
		if err != nil {
			return Term{}, err
		}
		if name == "" {
			return Term{}, p.errf("expected term")
		}
		if isLowerStart(name) {
			return CStr(name), nil
		}
		return V(name), nil
	}
}

func (p *dparser) quoted() (string, error) {
	// p.src[p.pos] == '"'
	p.pos++
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return b.String(), nil
		case '\\':
			if p.pos+1 < len(p.src) {
				b.WriteByte(p.src[p.pos+1])
				p.pos += 2
				continue
			}
			return "", p.errf("dangling escape")
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", p.errf("unterminated string")
}

func (p *dparser) identifier() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos], nil
}

func isLowerStart(s string) bool {
	return len(s) > 0 && s[0] >= 'a' && s[0] <= 'z'
}

// isPredName reports whether s can name a predicate: lower-case start
// for user predicates, '_' start for reserved internal predicates (the
// compiled query head, magic-set auxiliaries).
func isPredName(s string) bool {
	return isLowerStart(s) || (len(s) > 0 && s[0] == '_')
}
