// Package dlog implements the testbed's Horn-clause front-end: the rule
// language of the paper's Knowledge Manager. Clauses are pure,
// function-free Datalog:
//
//	ancestor(X, Y) :- parent(X, Y).
//	ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//	parent(john, mary).
//	?- ancestor(john, X).
//
// Variables begin with an upper-case letter or '_'; constants are
// lower-case identifiers, quoted strings, or integers. A clause with an
// empty body and a ground head is a fact. "?- goal." poses a query.
package dlog

import (
	"fmt"
	"strings"

	"dkbms/internal/rel"
)

// TermKind distinguishes variables from constants.
type TermKind int

// Term kinds.
const (
	TermVar TermKind = iota
	TermConst
)

// Term is one argument of an atom: a variable or a constant.
type Term struct {
	Kind TermKind
	Var  string    // variable name when Kind == TermVar
	Val  rel.Value // constant value when Kind == TermConst
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: TermVar, Var: name} }

// C returns a constant term from a value.
func C(v rel.Value) Term { return Term{Kind: TermConst, Val: v} }

// CStr returns a string-constant term.
func CStr(s string) Term { return C(rel.NewString(s)) }

// CInt returns an integer-constant term.
func CInt(n int64) Term { return C(rel.NewInt(n)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// String renders the term in source syntax.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	switch t.Val.Kind {
	case rel.TypeInt:
		return t.Val.String()
	case rel.TypeString:
		if isPlainConstant(t.Val.Str) {
			return t.Val.Str
		}
		escaped := strings.ReplaceAll(t.Val.Str, "\\", "\\\\")
		escaped = strings.ReplaceAll(escaped, "\"", "\\\"")
		return "\"" + escaped + "\""
	default:
		return "<?>"
	}
}

// isPlainConstant reports whether s can be written without quotes
// (lower-case identifier).
func isPlainConstant(s string) bool {
	if len(s) == 0 {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// String renders the atom in source syntax.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Vars returns the distinct variable names in order of first occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// IsGround reports whether the atom has no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Clause is a Horn clause: Head :- Body. An empty body with a ground
// head is a fact.
type Clause struct {
	Head Atom
	Body []Atom
}

// IsFact reports whether the clause is a fact (empty body, ground head).
func (c Clause) IsFact() bool { return len(c.Body) == 0 && c.Head.IsGround() }

// String renders the clause in source syntax (with trailing period).
func (c Clause) String() string {
	if len(c.Body) == 0 {
		return c.Head.String() + "."
	}
	var b strings.Builder
	b.WriteString(c.Head.String())
	b.WriteString(" :- ")
	for i, a := range c.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Vars returns the distinct variables of the clause (head then body) in
// order of first occurrence.
func (c Clause) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a Atom) {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	add(c.Head)
	for _, a := range c.Body {
		add(a)
	}
	return out
}

// RangeRestricted reports whether every head variable appears in the
// body — the safety condition for bottom-up evaluation of rules.
func (c Clause) RangeRestricted() bool {
	if len(c.Body) == 0 {
		return c.Head.IsGround()
	}
	bodyVars := make(map[string]bool)
	for _, a := range c.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, t := range c.Head.Args {
		if t.IsVar() && !bodyVars[t.Var] {
			return false
		}
	}
	return true
}

// Rename returns a copy of the clause with the head predicate replaced.
func (c Clause) Rename(pred string) Clause {
	nc := c.Clone()
	nc.Head.Pred = pred
	return nc
}

// Clone deep-copies the clause.
func (c Clause) Clone() Clause {
	nc := Clause{Head: cloneAtom(c.Head)}
	nc.Body = make([]Atom, len(c.Body))
	for i, a := range c.Body {
		nc.Body[i] = cloneAtom(a)
	}
	return nc
}

func cloneAtom(a Atom) Atom {
	na := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	copy(na.Args, a.Args)
	return na
}

// Query is a conjunctive query: ?- g1, g2, ... gn.
type Query struct {
	Goals []Atom
}

// String renders the query in source syntax.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("?- ")
	for i, a := range q.Goals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Vars returns the distinct variables of the query in order of first
// occurrence — the output columns of the answer relation.
func (q Query) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range q.Goals {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// AsClause converts the query into a rule defining the reserved
// predicate "_query" with the query variables as head arguments. The
// knowledge manager compiles this rule like any other.
func (q Query) AsClause() Clause {
	vars := q.Vars()
	head := Atom{Pred: QueryPred, Args: make([]Term, len(vars))}
	for i, v := range vars {
		head.Args[i] = V(v)
	}
	return Clause{Head: head, Body: append([]Atom(nil), q.Goals...)}
}

// QueryPred is the reserved head predicate for compiled queries.
const QueryPred = "_query"

// Program is a parsed unit: clauses and queries in source order.
type Program struct {
	Clauses []Clause
	Queries []Query
}

// Validate checks every clause for range restriction and consistent
// arity per predicate, returning the first problem found.
func (p *Program) Validate() error {
	arity := make(map[string]int)
	check := func(a Atom) error {
		if n, ok := arity[a.Pred]; ok && n != a.Arity() {
			return fmt.Errorf("dlog: predicate %s used with arity %d and %d", a.Pred, n, a.Arity())
		}
		arity[a.Pred] = a.Arity()
		if a.Arity() == 0 {
			return fmt.Errorf("dlog: predicate %s has zero arity", a.Pred)
		}
		return nil
	}
	for _, c := range p.Clauses {
		if !c.RangeRestricted() {
			return fmt.Errorf("dlog: clause %q is not range-restricted", c.String())
		}
		if err := check(c.Head); err != nil {
			return err
		}
		for _, a := range c.Body {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	for _, q := range p.Queries {
		if len(q.Goals) == 0 {
			return fmt.Errorf("dlog: empty query")
		}
		for _, a := range q.Goals {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	return nil
}
