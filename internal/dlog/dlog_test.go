package dlog

import (
	"strings"
	"testing"

	"dkbms/internal/rel"
)

func TestParseFact(t *testing.T) {
	c := MustParseClause("parent(john, mary).")
	if !c.IsFact() {
		t.Fatal("not a fact")
	}
	if c.Head.Pred != "parent" || c.Head.Args[0].Val.Str != "john" {
		t.Fatalf("%+v", c)
	}
}

func TestParseRule(t *testing.T) {
	c := MustParseClause("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).")
	if c.IsFact() || len(c.Body) != 2 {
		t.Fatalf("%+v", c)
	}
	if !c.Head.Args[0].IsVar() || c.Head.Args[0].Var != "X" {
		t.Fatalf("head arg: %+v", c.Head.Args[0])
	}
	if c.Body[1].Pred != "ancestor" {
		t.Fatalf("body: %+v", c.Body)
	}
}

func TestParseArrowSyntax(t *testing.T) {
	c := MustParseClause("p(X) <- q(X).")
	if len(c.Body) != 1 || c.Body[0].Pred != "q" {
		t.Fatalf("%+v", c)
	}
}

func TestParseTerms(t *testing.T) {
	c := MustParseClause(`t(X, lower, "Quoted String", 42, -7, _Anon).`)
	args := c.Head.Args
	if !args[0].IsVar() {
		t.Fatal("X should be a variable")
	}
	if args[1].IsVar() || args[1].Val.Str != "lower" {
		t.Fatalf("lower: %+v", args[1])
	}
	if args[2].Val.Str != "Quoted String" {
		t.Fatalf("quoted: %+v", args[2])
	}
	if args[3].Val.Int != 42 || args[4].Val.Int != -7 {
		t.Fatalf("ints: %+v %+v", args[3], args[4])
	}
	if !args[5].IsVar() || args[5].Var != "_Anon" {
		t.Fatalf("underscore var: %+v", args[5])
	}
}

func TestParseProgramWithQueriesAndComments(t *testing.T) {
	src := `
% the classic example
parent(john, mary).
parent(mary, ann).  # trailing comment
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
?- ancestor(john, W).
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Clauses) != 4 || len(prog.Queries) != 1 {
		t.Fatalf("clauses=%d queries=%d", len(prog.Clauses), len(prog.Queries))
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	q := prog.Queries[0]
	if len(q.Goals) != 1 || q.Goals[0].Args[1].Var != "W" {
		t.Fatalf("%+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"parent(john, mary)",  // missing period
		"Parent(john, mary).", // upper-case predicate
		"parent(john mary).",
		"parent().",
		"p(X) :- .",
		`p("unterminated).`,
		"p(X) :- q(X), .",
	}
	for _, src := range bad {
		if _, err := ParseClause(src); err == nil {
			t.Errorf("ParseClause(%q) unexpectedly succeeded", src)
		}
	}
}

func TestClauseStringRoundTrip(t *testing.T) {
	srcs := []string{
		"parent(john, mary).",
		"ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
		`label(X, "Hello World") :- node(X).`,
		"num(X, 42) :- base(X).",
	}
	for _, src := range srcs {
		c := MustParseClause(src)
		printed := c.String()
		c2, err := ParseClause(printed)
		if err != nil {
			t.Fatalf("reparse of %q: %v", printed, err)
		}
		if c2.String() != printed {
			t.Fatalf("unstable print: %q vs %q", c2.String(), printed)
		}
	}
}

func TestRangeRestricted(t *testing.T) {
	ok := MustParseClause("p(X, Y) :- q(X), r(Y).")
	if !ok.RangeRestricted() {
		t.Fatal("should be range-restricted")
	}
	bad := MustParseClause("p(X, Y) :- q(X).")
	if bad.RangeRestricted() {
		t.Fatal("Y is unbound; should fail")
	}
	fact := MustParseClause("p(a).")
	if !fact.RangeRestricted() {
		t.Fatal("ground fact is range-restricted")
	}
}

func TestValidateArityConsistency(t *testing.T) {
	prog, err := ParseProgram("p(a, b). p(c) :- q(c).")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err == nil {
		t.Fatal("inconsistent arity accepted")
	}
	// Non-range-restricted program.
	prog2, _ := ParseProgram("p(X, Y) :- q(X).")
	if err := prog2.Validate(); err == nil {
		t.Fatal("non-range-restricted program accepted")
	}
}

func TestQueryAsClause(t *testing.T) {
	q, err := ParseQuery("?- ancestor(john, X), person(X).")
	if err != nil {
		t.Fatal(err)
	}
	c := q.AsClause()
	if c.Head.Pred != QueryPred {
		t.Fatalf("head pred %s", c.Head.Pred)
	}
	if len(c.Head.Args) != 1 || c.Head.Args[0].Var != "X" {
		t.Fatalf("head args %+v", c.Head.Args)
	}
	if len(c.Body) != 2 {
		t.Fatalf("body %+v", c.Body)
	}
}

func TestQueryWithoutPrefix(t *testing.T) {
	q, err := ParseQuery("ancestor(john, X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Goals) != 1 {
		t.Fatalf("%+v", q)
	}
}

func TestVarsOrder(t *testing.T) {
	c := MustParseClause("p(Y, X) :- q(X, Z), r(Z, Y).")
	vars := c.Vars()
	if strings.Join(vars, ",") != "Y,X,Z" {
		t.Fatalf("vars = %v", vars)
	}
	q, _ := ParseQuery("?- q(B, A), r(A, C).")
	if strings.Join(q.Vars(), ",") != "B,A,C" {
		t.Fatalf("query vars = %v", q.Vars())
	}
}

func TestCloneIndependence(t *testing.T) {
	c := MustParseClause("p(X) :- q(X).")
	c2 := c.Clone()
	c2.Head.Pred = "z"
	c2.Body[0].Args[0] = CStr("k")
	if c.Head.Pred != "p" || c.Body[0].Args[0].Var != "X" {
		t.Fatal("clone aliases original")
	}
	c3 := c.Rename("renamed")
	if c3.Head.Pred != "renamed" || c.Head.Pred != "p" {
		t.Fatal("rename wrong")
	}
}

func TestTermStringQuoting(t *testing.T) {
	if CStr("john").String() != "john" {
		t.Fatal("plain constant should be unquoted")
	}
	if CStr("John").String() != `"John"` {
		t.Fatalf("capitalized constant must be quoted: %s", CStr("John").String())
	}
	if CStr("two words").String() != `"two words"` {
		t.Fatal("spaces need quotes")
	}
	if CInt(-3).String() != "-3" {
		t.Fatal("int term")
	}
	if V("Xyz").String() != "Xyz" {
		t.Fatal("var term")
	}
}

func TestIsGroundAndAtomVars(t *testing.T) {
	a := NewAtom("p", CStr("a"), V("X"), V("X"), CInt(1))
	if a.IsGround() {
		t.Fatal("has a var")
	}
	if vars := a.Vars(); len(vars) != 1 || vars[0] != "X" {
		t.Fatalf("vars = %v", vars)
	}
	g := NewAtom("p", CStr("a"), CInt(2))
	if !g.IsGround() {
		t.Fatal("ground atom misreported")
	}
}

func TestZeroArityRejected(t *testing.T) {
	if _, err := ParseClause("p()."); err == nil {
		t.Fatal("zero-arity atom parsed")
	}
}

func TestValueTypesInTerms(t *testing.T) {
	c := MustParseClause("p(1, x).")
	if c.Head.Args[0].Val.Kind != rel.TypeInt || c.Head.Args[1].Val.Kind != rel.TypeString {
		t.Fatalf("%+v", c.Head.Args)
	}
}

func BenchmarkParseClause(b *testing.B) {
	const src = "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y)."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseClause(src); err != nil {
			b.Fatal(err)
		}
	}
}
