package dlog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dkbms/internal/rel"
)

// genTerm produces a random term from a bounded vocabulary.
func genTerm(r *rand.Rand) Term {
	switch r.Intn(4) {
	case 0:
		return V([]string{"X", "Y", "Zvar", "_W"}[r.Intn(4)])
	case 1:
		return CInt(int64(r.Intn(2000) - 1000))
	case 2:
		return CStr([]string{"alpha", "b1", "c_2"}[r.Intn(3)])
	default:
		// Quoted-string territory: spaces, capitals, escapes.
		return CStr([]string{"Hello World", "Mixed Case", `quo"te`, ""}[r.Intn(4)])
	}
}

func genAtom(r *rand.Rand, preds []string) Atom {
	a := Atom{Pred: preds[r.Intn(len(preds))]}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		a.Args = append(a.Args, genTerm(r))
	}
	return a
}

// TestQuickClausePrintParseRoundTrip: String() of a random clause
// reparses to a clause that prints identically.
func TestQuickClausePrintParseRoundTrip(t *testing.T) {
	preds := []string{"p", "q", "edge", "_query"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Clause{Head: genAtom(r, preds)}
		for i := 0; i < r.Intn(3); i++ {
			c.Body = append(c.Body, genAtom(r, preds))
		}
		printed := c.String()
		c2, err := ParseClause(printed)
		if err != nil {
			t.Logf("unparseable print %q: %v", printed, err)
			return false
		}
		return c2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueryRoundTrip does the same for queries.
func TestQuickQueryRoundTrip(t *testing.T) {
	preds := []string{"p", "anc"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := Query{}
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			q.Goals = append(q.Goals, genAtom(r, preds))
		}
		printed := q.String()
		q2, err := ParseQuery(printed)
		if err != nil {
			return false
		}
		return q2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValueTermTypes: constants keep their value types through a
// print/parse cycle.
func TestQuickValueTermTypes(t *testing.T) {
	f := func(n int64, s string) bool {
		c := Clause{Head: Atom{Pred: "p", Args: []Term{CInt(n), CStr(s)}}}
		c2, err := ParseClause(c.String())
		if err != nil {
			return false
		}
		a := c2.Head.Args
		return a[0].Val.Kind == rel.TypeInt && a[0].Val.Int == n &&
			a[1].Val.Kind == rel.TypeString && a[1].Val.Str == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEscapeRoundTrips pins the backslash/quote escaping fix.
func TestEscapeRoundTrips(t *testing.T) {
	for _, s := range []string{`back\slash`, `trailing\`, `mix\"ed`, "spaces and Caps", `"`} {
		c := Clause{Head: Atom{Pred: "p", Args: []Term{CStr(s)}}}
		c2, err := ParseClause(c.String())
		if err != nil {
			t.Fatalf("%q prints unparseable %q: %v", s, c.String(), err)
		}
		if got := c2.Head.Args[0].Val.Str; got != s {
			t.Fatalf("%q round-trips to %q via %q", s, got, c.String())
		}
	}
}
