package sql

import (
	"strings"
	"testing"

	"dkbms/internal/rel"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE parent (par CHAR, chd CHAR)").(CreateTable)
	if st.Name != "parent" || len(st.Columns) != 2 {
		t.Fatalf("%+v", st)
	}
	if st.Columns[0] != (rel.Column{Name: "par", Type: rel.TypeString}) {
		t.Fatalf("col0 = %+v", st.Columns[0])
	}
	if st.Temp {
		t.Fatal("unexpected temp")
	}
}

func TestParseCreateTempTableWithLengths(t *testing.T) {
	st := mustParse(t, "create temp table tmp1 (a integer, b char(20))").(CreateTable)
	if !st.Temp || st.Name != "tmp1" {
		t.Fatalf("%+v", st)
	}
	if st.Columns[1].Type != rel.TypeString {
		t.Fatalf("char(20) type = %v", st.Columns[1].Type)
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	ci := mustParse(t, "CREATE INDEX rs_head ON rulesource (headpredname, ruleid)").(CreateIndex)
	if ci.Name != "rs_head" || ci.Table != "rulesource" || len(ci.Columns) != 2 {
		t.Fatalf("%+v", ci)
	}
	di := mustParse(t, "DROP INDEX rs_head").(DropIndex)
	if di.Name != "rs_head" {
		t.Fatalf("%+v", di)
	}
}

func TestParseDropTable(t *testing.T) {
	dt := mustParse(t, "DROP TABLE IF EXISTS tmp_delta;").(DropTable)
	if dt.Name != "tmp_delta" || !dt.IfExists {
		t.Fatalf("%+v", dt)
	}
	dt2 := mustParse(t, "DROP TABLE t").(DropTable)
	if dt2.IfExists {
		t.Fatal("IfExists should be false")
	}
}

func TestParseInsertValues(t *testing.T) {
	in := mustParse(t, "INSERT INTO parent VALUES ('john', 'mary'), ('mary', 'ann')").(Insert)
	if in.Table != "parent" || len(in.Rows) != 2 || in.Query != nil {
		t.Fatalf("%+v", in)
	}
	lit := in.Rows[1][1].(Literal)
	if lit.Value.Str != "ann" {
		t.Fatalf("literal = %v", lit)
	}
	neg := mustParse(t, "INSERT INTO nums VALUES (-5)").(Insert)
	if neg.Rows[0][0].(Literal).Value.Int != -5 {
		t.Fatal("negative literal")
	}
}

func TestParseInsertSelect(t *testing.T) {
	in := mustParse(t, "INSERT INTO anc SELECT t0.par, t0.chd FROM parent t0").(Insert)
	if in.Query == nil || in.Rows != nil {
		t.Fatalf("%+v", in)
	}
	if len(in.Query.Items) != 2 {
		t.Fatalf("items = %d", len(in.Query.Items))
	}
}

func TestParseDelete(t *testing.T) {
	d := mustParse(t, "DELETE FROM t WHERE a = 1 AND b <> 'x'").(Delete)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("%+v", d)
	}
	d2 := mustParse(t, "DELETE FROM t").(Delete)
	if d2.Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestParseSelectBasic(t *testing.T) {
	s := mustParse(t, "SELECT DISTINCT t0.c0, t1.c1 FROM parent t0, anc AS t1 WHERE t0.c1 = t1.c0").(*Select)
	if !s.Distinct || len(s.Items) != 2 || len(s.From) != 2 {
		t.Fatalf("%+v", s)
	}
	if s.From[0].Alias != "t0" || s.From[1].Alias != "t1" || s.From[1].Table != "anc" {
		t.Fatalf("from = %+v", s.From)
	}
	cmp := s.Where.(Compare)
	if cmp.Op != CmpEq || cmp.Left.(ColRef).Table != "t0" {
		t.Fatalf("where = %+v", s.Where)
	}
}

func TestParseSelectStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t").(*Select)
	if len(s.Items) != 0 || s.CountStar {
		t.Fatalf("%+v", s)
	}
}

func TestParseCountStar(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM t WHERE x > 3").(*Select)
	if !s.CountStar {
		t.Fatalf("%+v", s)
	}
}

func TestParseCompound(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t EXCEPT SELECT a FROM u UNION SELECT a FROM v").(*Select)
	if s.SetOp != SetExcept || s.Next == nil {
		t.Fatalf("first op = %v", s.SetOp)
	}
	if s.Next.SetOp != SetUnion || s.Next.Next == nil {
		t.Fatalf("second op = %v", s.Next.SetOp)
	}
	sa := mustParse(t, "SELECT a FROM t UNION ALL SELECT a FROM u").(*Select)
	if sa.SetOp != SetUnionAll {
		t.Fatalf("op = %v", sa.SetOp)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE (x = 1 OR y = 2) AND NOT z = 3").(*Select)
	and, ok := s.Where.(And)
	if !ok {
		t.Fatalf("top is %T", s.Where)
	}
	if _, ok := and.Left.(Or); !ok {
		t.Fatalf("left is %T", and.Left)
	}
	if _, ok := and.Right.(Not); !ok {
		t.Fatalf("right is %T", and.Right)
	}
	// Precedence: AND binds tighter than OR.
	s2 := mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").(*Select)
	if _, ok := s2.Where.(Or); !ok {
		t.Fatalf("top is %T, want Or", s2.Where)
	}
}

func TestParseAllComparators(t *testing.T) {
	ops := map[string]CmpOp{"=": CmpEq, "<>": CmpNe, "!=": CmpNe, "<": CmpLt, "<=": CmpLe, ">": CmpGt, ">=": CmpGe}
	for text, want := range ops {
		s := mustParse(t, "SELECT a FROM t WHERE a "+text+" 5").(*Select)
		if got := s.Where.(Compare).Op; got != want {
			t.Errorf("op %q parsed as %v", text, got)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = 'o''brien'").(*Select)
	lit := s.Where.(Compare).Right.(Literal)
	if lit.Value.Str != "o'brien" {
		t.Fatalf("literal = %q", lit.Value.Str)
	}
}

func TestParseCaseInsensitivity(t *testing.T) {
	s := mustParse(t, "select A from T where A = 1").(*Select)
	if s.From[0].Table != "t" || s.Items[0].Expr.(ColRef).Column != "a" {
		t.Fatalf("identifiers not folded: %+v", s)
	}
}

func TestParseComments(t *testing.T) {
	s := mustParse(t, "SELECT a -- projection\nFROM t -- source\n").(*Select)
	if len(s.Items) != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ==",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"CREATE VIEW v",
		"INSERT INTO t",
		"INSERT INTO t VALUES (a)", // column ref in VALUES
		"DELETE t",
		"DROP t",
		"SELECT a FROM t alias extra",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT COUNT(a) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestFormatExprRoundTrip(t *testing.T) {
	src := "SELECT a FROM t WHERE (t.a = 1 AND b <> 'x') OR NOT c < 3"
	s := mustParse(t, src).(*Select)
	formatted := FormatExpr(s.Where)
	// Reparse the formatted predicate inside a shell query; structure
	// must be preserved.
	s2 := mustParse(t, "SELECT a FROM t WHERE "+formatted).(*Select)
	if FormatExpr(s2.Where) != formatted {
		t.Fatalf("format not stable: %q vs %q", FormatExpr(s2.Where), formatted)
	}
	if !strings.Contains(formatted, "AND") || !strings.Contains(formatted, "NOT") {
		t.Fatalf("formatted = %q", formatted)
	}
}

func TestSelectItemAlias(t *testing.T) {
	s := mustParse(t, "SELECT t0.c0 AS src, 5 AS five FROM t t0").(*Select)
	if s.Items[0].Alias != "src" || s.Items[1].Alias != "five" {
		t.Fatalf("%+v", s.Items)
	}
	if s.Items[1].Expr.(Literal).Value.Int != 5 {
		t.Fatal("literal projection")
	}
}

func BenchmarkParseSelect(b *testing.B) {
	const q = "SELECT DISTINCT t0.c0, t1.c1 FROM parent t0, ancestor t1 WHERE t0.c1 = t1.c0 AND t0.c0 = 'john'"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCompound(b *testing.B) {
	const q = "SELECT c0, c1 FROM a EXCEPT SELECT c0, c1 FROM b EXCEPT SELECT c0, c1 FROM c"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
