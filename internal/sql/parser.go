package sql

import (
	"fmt"
	"strconv"

	"dkbms/internal/rel"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after statement")
	}
	return st, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

// expect consumes a matching token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case tokIdent:
			want = "identifier"
		case tokInt:
			want = "integer"
		case tokString:
			want = "string"
		default:
			want = "token"
		}
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(tokKeyword, "CREATE"):
		return p.create()
	case p.accept(tokKeyword, "DROP"):
		return p.drop()
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "DELETE"):
		return p.deleteStmt()
	default:
		return nil, p.errf("unknown statement start %q", p.cur().text)
	}
}

func (p *parser) create() (Statement, error) {
	temp := p.accept(tokKeyword, "TEMP")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var cols []rel.Column
		for {
			cn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokKeyword {
				return nil, p.errf("expected column type, found %q", tt.text)
			}
			ty, err := rel.ParseType(tt.text)
			if err != nil {
				return nil, p.errf("bad column type %q", tt.text)
			}
			// CHAR(20)-style length specifiers are accepted and ignored.
			if p.accept(tokSymbol, "(") {
				if _, err := p.expect(tokInt, ""); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			cols = append(cols, rel.Column{Name: cn.text, Type: ty})
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return CreateTable{Name: name.text, Columns: cols, Temp: temp}, nil

	case p.accept(tokKeyword, "INDEX"):
		if temp {
			return nil, p.errf("CREATE TEMP INDEX is not supported; index temp-ness follows the table")
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			cn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			cols = append(cols, cn.text)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return CreateIndex{Name: name.text, Table: table.text, Columns: cols}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) drop() (Statement, error) {
	switch {
	case p.accept(tokKeyword, "TABLE"):
		ifExists := false
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return DropTable{Name: name.text, IfExists: ifExists}, nil
	case p.accept(tokKeyword, "INDEX"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return DropIndex{Name: name.text}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after DROP")
	}
}

func (p *parser) insert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "VALUES") {
		var rows [][]Expr
		for {
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				lit, err := p.literal()
				if err != nil {
					return nil, err
				}
				row = append(row, lit)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		return Insert{Table: table.text, Rows: rows}, nil
	}
	if p.at(tokKeyword, "SELECT") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return Insert{Table: table.text, Query: sel}, nil
	}
	return nil, p.errf("expected VALUES or SELECT after INSERT INTO %s", table.text)
}

func (p *parser) deleteStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.accept(tokKeyword, "WHERE") {
		where, err = p.orExpr()
		if err != nil {
			return nil, err
		}
	}
	return Delete{Table: table.text, Where: where}, nil
}

// selectStmt parses a select with optional compound set operations,
// left-associated.
func (p *parser) selectStmt() (*Select, error) {
	head, err := p.simpleSelect()
	if err != nil {
		return nil, err
	}
	cur := head
	for {
		var op SetOp
		switch {
		case p.accept(tokKeyword, "UNION"):
			if p.accept(tokKeyword, "ALL") {
				op = SetUnionAll
			} else {
				op = SetUnion
			}
		case p.accept(tokKeyword, "EXCEPT"):
			op = SetExcept
		case p.accept(tokKeyword, "INTERSECT"):
			op = SetIntersect
		default:
			return head, nil
		}
		rhs, err := p.simpleSelect()
		if err != nil {
			return nil, err
		}
		cur.SetOp = op
		cur.Next = rhs
		cur = rhs
	}
}

func (p *parser) simpleSelect() (*Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	switch {
	case p.accept(tokSymbol, "*"):
		// empty Items = all columns
	case p.accept(tokKeyword, "COUNT"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		sel.CountStar = true
	default:
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	e, err := p.operand()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.text
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name.text, Alias: name.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.text
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// --- expressions: or > and > not > comparison > operand ---

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Or{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = And{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	}
	// Parenthesized boolean sub-expression vs parenthesized operand: we
	// only need boolean parens (operands are atomic), so '(' always
	// opens a boolean group here.
	if p.accept(tokSymbol, "(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokSymbol {
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "=":
		op = CmpEq
	case "<>", "!=":
		op = CmpNe
	case "<":
		op = CmpLt
	case "<=":
		op = CmpLe
	case ">":
		op = CmpGt
	case ">=":
		op = CmpGe
	default:
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	p.next()
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return Compare{Op: op, Left: left, Right: right}, nil
}

// operand parses a column reference or a literal.
func (p *parser) operand() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return Literal{Value: rel.NewInt(n)}, nil
	case tokString:
		p.next()
		return Literal{Value: rel.NewString(t.text)}, nil
	case tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return ColRef{Table: t.text, Column: col.text}, nil
		}
		return ColRef{Column: t.text}, nil
	default:
		return nil, p.errf("expected operand, found %q", t.text)
	}
}

// literal parses a literal only (INSERT VALUES rows).
func (p *parser) literal() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return Literal{Value: rel.NewInt(n)}, nil
	case tokString:
		p.next()
		return Literal{Value: rel.NewString(t.text)}, nil
	default:
		return nil, p.errf("expected literal, found %q", t.text)
	}
}
