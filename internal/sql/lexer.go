package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int    // byte offset in the input, for error messages
}

// keywords recognized by the dialect. Identifiers colliding with these
// must be avoided by callers (the code generator mangles its names).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"CREATE": true, "DROP": true, "TABLE": true, "INDEX": true,
	"TEMP": true, "ON": true, "IF": true, "EXISTS": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UNION": true, "ALL": true, "EXCEPT": true, "INTERSECT": true,
	"COUNT": true, "INTEGER": true, "INT": true, "CHAR": true,
	"VARCHAR": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src fully, returning the token stream.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c >= '0' && c <= '9':
			l.lexNumber(start)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.pos++
			l.lexNumber(start)
		case isIdentStart(rune(c)):
			l.lexWord(start)
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() (string, error) {
	// l.src[l.pos] == '\''
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string literal at offset %d", l.pos)
}

func (l *lexer) lexNumber(start int) {
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokInt, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
	}
}

func (l *lexer) lexSymbol() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "!=", "<=", ">=":
		l.pos += 2
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '=', '<', '>', '*', ';':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
