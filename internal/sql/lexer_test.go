package sql

import (
	"testing"
)

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexKeywordsAndIdentifiers(t *testing.T) {
	toks := lexKinds(t, "SELECT distinct foo FROM Bar")
	want := []struct {
		kind tokenKind
		text string
	}{
		{tokKeyword, "SELECT"},
		{tokKeyword, "DISTINCT"},
		{tokIdent, "foo"},
		{tokKeyword, "FROM"},
		{tokIdent, "bar"},
		{tokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i, w := range want {
		if toks[i].kind != w.kind || toks[i].text != w.text {
			t.Fatalf("token %d = (%d, %q), want (%d, %q)", i, toks[i].kind, toks[i].text, w.kind, w.text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexKinds(t, "<> != <= >= < > = ( ) , . * ;")
	texts := []string{"<>", "!=", "<=", ">=", "<", ">", "=", "(", ")", ",", ".", "*", ";"}
	for i, w := range texts {
		if toks[i].kind != tokSymbol || toks[i].text != w {
			t.Fatalf("token %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexStringsAndNumbers(t *testing.T) {
	toks := lexKinds(t, "'abc' 'it''s' 42 -7")
	if toks[0].kind != tokString || toks[0].text != "abc" {
		t.Fatalf("%+v", toks[0])
	}
	if toks[1].text != "it's" {
		t.Fatalf("escaped quote: %q", toks[1].text)
	}
	if toks[2].kind != tokInt || toks[2].text != "42" {
		t.Fatalf("%+v", toks[2])
	}
	if toks[3].kind != tokInt || toks[3].text != "-7" {
		t.Fatalf("negative: %+v", toks[3])
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "SELECT -- everything\n x")
	if len(toks) != 3 || toks[1].text != "x" {
		t.Fatalf("%+v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "@", "#"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "SELECT  x")
	if toks[0].pos != 0 || toks[1].pos != 8 {
		t.Fatalf("positions: %d, %d", toks[0].pos, toks[1].pos)
	}
}

func TestLexUnderscoreIdentifiers(t *testing.T) {
	toks := lexKinds(t, "_query edb_parent c0")
	for i, want := range []string{"_query", "edb_parent", "c0"} {
		if toks[i].kind != tokIdent || toks[i].text != want {
			t.Fatalf("token %d = %+v", i, toks[i])
		}
	}
}

func TestLexMinusNotFollowedByDigit(t *testing.T) {
	// A bare '-' (not a comment, not a negative number) is an error in
	// this dialect — there is no arithmetic.
	if _, err := lex("a - b"); err == nil {
		t.Fatal("bare minus accepted")
	}
}
