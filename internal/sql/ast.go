// Package sql implements the testbed DBMS's SQL front-end: a lexer, a
// recursive-descent parser and the statement AST. The dialect is the
// subset the Knowledge Manager's code generator emits plus the DDL and
// DML the stored-D/KB manager and the loader need:
//
//	CREATE TABLE t (col TYPE, ...)          DROP TABLE t
//	CREATE INDEX i ON t (col, ...)          DROP INDEX i
//	INSERT INTO t VALUES (...), (...)       INSERT INTO t SELECT ...
//	DELETE FROM t [WHERE pred]
//	SELECT [DISTINCT] items FROM t [alias] [, u [alias]]* [WHERE pred]
//	<select> UNION | EXCEPT | INTERSECT <select>
//	SELECT COUNT(*) FROM ...
//
// Predicates are boolean combinations (AND/OR/NOT, parentheses) of
// comparisons between column references and literals. Identifiers are
// case-insensitive (folded to lower case); keywords are recognized in
// any case.
package sql

import (
	"strings"

	"dkbms/internal/rel"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (cols).
type CreateTable struct {
	Name    string
	Columns []rel.Column
	// Temp marks engine-internal temporary tables (CREATE TEMP TABLE).
	Temp bool
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
	// IfExists suppresses the error when the table is absent.
	IfExists bool
}

// CreateIndex is CREATE INDEX name ON table (cols).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

// DropIndex is DROP INDEX name.
type DropIndex struct {
	Name string
}

// Insert is INSERT INTO table VALUES ... or INSERT INTO table SELECT ...
type Insert struct {
	Table string
	Rows  []([]Expr) // literal rows; nil when Select is set
	Query *Select    // nil for VALUES form
}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where Expr // nil = delete all
}

// Select is a (possibly compound) query.
type Select struct {
	Distinct bool
	// Items is the projection list; empty means '*'. CountStar selects
	// are marked by the flag with an empty Items list.
	Items     []SelectItem
	CountStar bool
	From      []TableRef
	Where     Expr // nil = no predicate

	// Compound set operation: this select OP Next.
	SetOp SetOp
	Next  *Select
}

// SetOp identifies the compound operator chaining two selects.
type SetOp int

// Set operation kinds. SetNone marks a simple (non-compound) select.
const (
	SetNone SetOp = iota
	SetUnion
	SetUnionAll
	SetExcept
	SetIntersect
)

// SelectItem is one projection expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table in FROM, optionally aliased.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

func (CreateTable) stmt() {}
func (DropTable) stmt()   {}
func (CreateIndex) stmt() {}
func (DropIndex) stmt()   {}
func (Insert) stmt()      {}
func (Delete) stmt()      {}
func (*Select) stmt()     {}

// Expr is a scalar or boolean expression.
type Expr interface{ expr() }

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table  string // "" when unqualified
	Column string
}

// Literal is a constant value.
type Literal struct {
	Value rel.Value
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Compare is "left op right".
type Compare struct {
	Op    CmpOp
	Left  Expr
	Right Expr
}

// And is a conjunction.
type And struct{ Left, Right Expr }

// Or is a disjunction.
type Or struct{ Left, Right Expr }

// Not is a negation.
type Not struct{ Inner Expr }

func (ColRef) expr()  {}
func (Literal) expr() {}
func (Compare) expr() {}
func (And) expr()     {}
func (Or) expr()      {}
func (Not) expr()     {}

// String renders a column reference.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// FormatExpr renders an expression back to SQL (tests, diagnostics and
// the code generator's golden files use this).
func FormatExpr(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e)
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch v := e.(type) {
	case ColRef:
		b.WriteString(v.String())
	case Literal:
		b.WriteString(v.Value.SQL())
	case Compare:
		formatExpr(b, v.Left)
		b.WriteByte(' ')
		b.WriteString(v.Op.String())
		b.WriteByte(' ')
		formatExpr(b, v.Right)
	case And:
		b.WriteByte('(')
		formatExpr(b, v.Left)
		b.WriteString(" AND ")
		formatExpr(b, v.Right)
		b.WriteByte(')')
	case Or:
		b.WriteByte('(')
		formatExpr(b, v.Left)
		b.WriteString(" OR ")
		formatExpr(b, v.Right)
		b.WriteByte(')')
	case Not:
		b.WriteString("NOT (")
		formatExpr(b, v.Inner)
		b.WriteByte(')')
	}
}
