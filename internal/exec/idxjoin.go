package exec

import (
	"fmt"

	"dkbms/internal/catalog"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// IndexNLJoin is an index nested-loop join: for each tuple of the outer
// (left) input it probes a B+tree index of the inner table, fetching
// only matching rows. When the outer side is small this touches a
// number of inner rows proportional to the result, not to the inner
// table — the property behind the paper's finding that relevant-rule
// extraction time is independent of the total stored-rule count (Fig 7).
type IndexNLJoin struct {
	Left     Operator
	Right    *catalog.Table
	Index    *catalog.Index
	LeftOrds []int // ordinals in the left output forming the probe key,
	// aligned with the index's leading columns
	Residual Pred // nil/True when absent

	cur     rel.Tuple
	matches []rel.Tuple
	mpos    int
	schema  *rel.Schema
}

// Schema returns the concatenated schema.
func (j *IndexNLJoin) Schema() *rel.Schema {
	if j.schema == nil {
		j.schema = j.Left.Schema().Concat(j.Right.Schema)
	}
	return j.schema
}

// Open opens the outer input.
func (j *IndexNLJoin) Open() error {
	if j.Residual == nil {
		j.Residual = True{}
	}
	if len(j.LeftOrds) == 0 || len(j.LeftOrds) > len(j.Index.Ords) {
		return fmt.Errorf("exec: index join key width %d does not fit index %s", len(j.LeftOrds), j.Index.Name)
	}
	j.cur = nil
	j.matches = nil
	j.mpos = 0
	return j.Left.Open()
}

// Next returns the next joined tuple.
func (j *IndexNLJoin) Next() (rel.Tuple, error) {
	//dkblint:ctxok consumes one left tuple or one index posting per iteration over finite inputs; the RunCtx drain observes cancellation
	for {
		for j.mpos < len(j.matches) {
			rt := j.matches[j.mpos]
			j.mpos++
			joined := make(rel.Tuple, 0, len(j.cur)+len(rt))
			joined = append(joined, j.cur...)
			joined = append(joined, rt...)
			if j.Residual.Holds(joined) {
				return joined, nil
			}
		}
		tu, err := j.Left.Next()
		if err != nil || tu == nil {
			return nil, err
		}
		j.cur = tu
		key := make(rel.Tuple, len(j.LeftOrds))
		for i, o := range j.LeftOrds {
			key[i] = tu[o]
		}
		var postings []storage.RID
		if len(key) == len(j.Index.Ords) {
			postings = j.Index.Lookup(key)
		} else {
			postings = j.Index.LookupPrefix(key)
		}
		j.matches = j.matches[:0]
		for _, rid := range postings {
			rt, err := j.Right.Get(rid)
			if err != nil {
				return nil, fmt.Errorf("exec: index %s points at missing record %s: %w", j.Index.Name, rid, err)
			}
			j.matches = append(j.matches, rt)
		}
		j.mpos = 0
	}
}

// Close closes the outer input.
func (j *IndexNLJoin) Close() error { return j.Left.Close() }
