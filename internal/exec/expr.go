// Package exec implements the testbed DBMS's physical operators — the
// Volcano-style iterator tree the planner assembles for each statement —
// together with resolved (ordinal-addressed) expression evaluation.
package exec

import (
	"fmt"

	"dkbms/internal/rel"
	"dkbms/internal/sql"
)

// Scalar is a resolved scalar expression evaluated against a tuple.
type Scalar interface {
	Eval(tu rel.Tuple) rel.Value
	// Type returns the static type of the expression.
	Type() rel.Type
}

// Col reads the tuple value at a fixed ordinal.
type Col struct {
	Ord int
	Ty  rel.Type
}

// Eval returns the column value.
func (c Col) Eval(tu rel.Tuple) rel.Value { return tu[c.Ord] }

// Type returns the column's type.
func (c Col) Type() rel.Type { return c.Ty }

// Const is a literal value.
type Const struct {
	Val rel.Value
}

// Eval returns the constant.
func (c Const) Eval(rel.Tuple) rel.Value { return c.Val }

// Type returns the literal's type.
func (c Const) Type() rel.Type { return c.Val.Kind }

// Pred is a resolved boolean predicate.
type Pred interface {
	Holds(tu rel.Tuple) bool
}

// True is the always-true predicate.
type True struct{}

// Holds reports true.
func (True) Holds(rel.Tuple) bool { return true }

// Cmp compares two scalars.
type Cmp struct {
	Op          sql.CmpOp
	Left, Right Scalar
}

// Holds evaluates the comparison.
func (c Cmp) Holds(tu rel.Tuple) bool {
	r := rel.Compare(c.Left.Eval(tu), c.Right.Eval(tu))
	switch c.Op {
	case sql.CmpEq:
		return r == 0
	case sql.CmpNe:
		return r != 0
	case sql.CmpLt:
		return r < 0
	case sql.CmpLe:
		return r <= 0
	case sql.CmpGt:
		return r > 0
	case sql.CmpGe:
		return r >= 0
	}
	return false
}

// AndP is a conjunction of predicates.
type AndP struct{ Preds []Pred }

// Holds reports whether every conjunct holds.
func (a AndP) Holds(tu rel.Tuple) bool {
	for _, p := range a.Preds {
		if !p.Holds(tu) {
			return false
		}
	}
	return true
}

// OrP is a disjunction.
type OrP struct{ Left, Right Pred }

// Holds reports whether either disjunct holds.
func (o OrP) Holds(tu rel.Tuple) bool { return o.Left.Holds(tu) || o.Right.Holds(tu) }

// NotP negates a predicate.
type NotP struct{ Inner Pred }

// Holds reports the negation.
func (n NotP) Holds(tu rel.Tuple) bool { return !n.Inner.Holds(tu) }

// ConjunctsOf flattens nested AndP/Cmp trees into a conjunct list.
func ConjunctsOf(p Pred) []Pred {
	if a, ok := p.(AndP); ok {
		var out []Pred
		for _, c := range a.Preds {
			out = append(out, ConjunctsOf(c)...)
		}
		return out
	}
	if _, ok := p.(True); ok {
		return nil
	}
	return []Pred{p}
}

// AndOf rebuilds a predicate from conjuncts (True for an empty list).
func AndOf(preds []Pred) Pred {
	switch len(preds) {
	case 0:
		return True{}
	case 1:
		return preds[0]
	default:
		return AndP{Preds: preds}
	}
}

// ShiftOrds returns a copy of the predicate with every column ordinal
// shifted by delta. Used when a single-table predicate is re-anchored to
// a join output whose columns for that table start at delta.
func ShiftOrds(p Pred, delta int) Pred {
	switch v := p.(type) {
	case True:
		return v
	case Cmp:
		return Cmp{Op: v.Op, Left: shiftScalar(v.Left, delta), Right: shiftScalar(v.Right, delta)}
	case AndP:
		out := make([]Pred, len(v.Preds))
		for i, c := range v.Preds {
			out[i] = ShiftOrds(c, delta)
		}
		return AndP{Preds: out}
	case OrP:
		return OrP{Left: ShiftOrds(v.Left, delta), Right: ShiftOrds(v.Right, delta)}
	case NotP:
		return NotP{Inner: ShiftOrds(v.Inner, delta)}
	default:
		panic(fmt.Sprintf("exec: unknown predicate %T", p))
	}
}

func shiftScalar(s Scalar, delta int) Scalar {
	if c, ok := s.(Col); ok {
		return Col{Ord: c.Ord + delta, Ty: c.Ty}
	}
	return s
}
