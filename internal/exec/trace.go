package exec

import (
	"fmt"

	"dkbms/internal/catalog"
	"dkbms/internal/index"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// Instrument wraps every operator of the tree in a row counter and
// returns the instrumented tree plus a flush function. After the tree
// has been drained (or abandoned on error), flush writes one child span
// per operator under parent — name, rows emitted — mirroring the tree
// shape, EXPLAIN ANALYZE-style. With a nil parent the tree is returned
// untouched and flush is a no-op, so callers thread an optional span
// unconditionally.
func Instrument(op Operator, parent *obs.Span) (Operator, func()) {
	if parent == nil {
		return op, func() {}
	}
	root := &opCount{}
	wrapped := wrap(op, root)
	return wrapped, func() { root.emit(parent) }
}

// opCount is the row counter of one wrapped operator.
type opCount struct {
	name string
	rows int64
	kids []*opCount
	io   *ioProbe // non-nil on leaf access paths (scans, index probes)
}

func (c *opCount) emit(parent *obs.Span) {
	sp := parent.Start(c.name)
	sp.SetInt("rows", c.rows)
	c.io.emit(sp)
	for _, k := range c.kids {
		k.emit(sp)
	}
}

// ioProbe attributes physical I/O to one access-path operator: it
// snapshots the operator's heap/index/buffer-pool counters when the
// operator first opens and emits the deltas as span attributes. The
// counters are engine-wide, so under concurrent queries the delta is an
// upper bound on this operator's share; for a single running query it is
// exact (the unit the paper costs its experiments in).
type ioProbe struct {
	heap *storage.HeapFile
	idx  *catalog.Index

	armed    bool
	heapBase storage.HeapStats
	poolBase storage.PagerStats
	treeBase index.TreeStats
}

// arm takes the baseline snapshot. Called on the operator's first Open;
// re-opens (LFP iterations rebuild cursors) keep the original baseline
// so the emitted delta covers the whole query.
func (p *ioProbe) arm() {
	if p == nil || p.armed {
		return
	}
	p.armed = true
	if p.heap != nil {
		p.heapBase = p.heap.Stats()
		p.poolBase = p.heap.Pager().Stats()
	}
	if p.idx != nil {
		p.treeBase = p.idx.Stats()
	}
}

// emit writes the I/O deltas onto the operator's span.
func (p *ioProbe) emit(sp *obs.Span) {
	if p == nil || !p.armed {
		return
	}
	if p.heap != nil {
		d := p.heap.Stats().Sub(p.heapBase)
		if p.idx == nil {
			// Sequential access: whole-chain passes.
			sp.SetInt("heap_pages", d.PagesScanned)
			sp.SetInt("heap_recs", d.RecsScanned)
		} else {
			// Index-driven access: point reads behind postings.
			sp.SetInt("heap_reads", d.Reads)
		}
		pd := p.heap.Pager().Stats()
		sp.SetInt("pool_hits", pd.Hits-p.poolBase.Hits)
		sp.SetInt("pool_misses", pd.Misses-p.poolBase.Misses)
	}
	if p.idx != nil {
		td := p.idx.Stats()
		sp.SetInt("descents", td.Searches-p.treeBase.Searches)
	}
}

// child allocates a counter node under c.
func (c *opCount) child() *opCount {
	k := &opCount{}
	c.kids = append(c.kids, k)
	return k
}

// wrap rebuilds the operator tree with counting decorators, recording
// operator names as it descends. Unknown operator types are counted
// under their Go type name with no visible children.
func wrap(op Operator, c *opCount) Operator {
	switch o := op.(type) {
	case *SeqScan:
		c.name = fmt.Sprintf("scan(%s)", o.Table.Name)
		c.io = &ioProbe{heap: o.Table.Heap}
	case *IndexScan:
		c.name = fmt.Sprintf("idxscan(%s.%s)", o.Table.Name, o.Index.Name)
		c.io = &ioProbe{heap: o.Table.Heap, idx: o.Index}
	case *IndexNLJoin:
		c.name = fmt.Sprintf("idxjoin(%s.%s)", o.Right.Name, o.Index.Name)
		c.io = &ioProbe{heap: o.Right.Heap, idx: o.Index}
		o.Left = wrap(o.Left, c.child())
	case *Filter:
		c.name = "filter"
		o.Input = wrap(o.Input, c.child())
	case *Project:
		c.name = "project"
		o.Input = wrap(o.Input, c.child())
	case *NLJoin:
		c.name = "nljoin"
		o.Left = wrap(o.Left, c.child())
		o.Right = wrap(o.Right, c.child())
	case *HashJoin:
		c.name = "hashjoin"
		o.Left = wrap(o.Left, c.child())
		o.Right = wrap(o.Right, c.child())
	case *Distinct:
		c.name = "distinct"
		o.Input = wrap(o.Input, c.child())
	case *SetOpExec:
		c.name = setOpName(o.Kind)
		o.Left = wrap(o.Left, c.child())
		o.Right = wrap(o.Right, c.child())
	case *CountStar:
		c.name = "count"
		o.Input = wrap(o.Input, c.child())
	case *Values:
		c.name = "values"
	default:
		c.name = fmt.Sprintf("%T", op)
	}
	return &countedOp{inner: op, c: c}
}

func setOpName(k SetOpKind) string {
	switch k {
	case OpUnion:
		return "union"
	case OpUnionAll:
		return "union-all"
	case OpExcept:
		return "except"
	case OpIntersect:
		return "intersect"
	}
	return "setop"
}

// countedOp forwards the Operator contract, counting emitted rows.
type countedOp struct {
	inner Operator
	c     *opCount
}

// Schema returns the inner operator's schema.
func (w *countedOp) Schema() *rel.Schema { return w.inner.Schema() }

// Open arms the I/O probe (first open only) and opens the inner
// operator.
func (w *countedOp) Open() error {
	w.c.io.arm()
	return w.inner.Open()
}

// Next forwards one tuple, counting it.
func (w *countedOp) Next() (rel.Tuple, error) {
	tu, err := w.inner.Next()
	if tu != nil {
		w.c.rows++
	}
	return tu, err
}

// Close closes the inner operator.
func (w *countedOp) Close() error { return w.inner.Close() }
