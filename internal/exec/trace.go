package exec

import (
	"fmt"

	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

// Instrument wraps every operator of the tree in a row counter and
// returns the instrumented tree plus a flush function. After the tree
// has been drained (or abandoned on error), flush writes one child span
// per operator under parent — name, rows emitted — mirroring the tree
// shape, EXPLAIN ANALYZE-style. With a nil parent the tree is returned
// untouched and flush is a no-op, so callers thread an optional span
// unconditionally.
func Instrument(op Operator, parent *obs.Span) (Operator, func()) {
	if parent == nil {
		return op, func() {}
	}
	root := &opCount{}
	wrapped := wrap(op, root)
	return wrapped, func() { root.emit(parent) }
}

// opCount is the row counter of one wrapped operator.
type opCount struct {
	name string
	rows int64
	kids []*opCount
}

func (c *opCount) emit(parent *obs.Span) {
	sp := parent.Start(c.name)
	sp.SetInt("rows", c.rows)
	for _, k := range c.kids {
		k.emit(sp)
	}
}

// child allocates a counter node under c.
func (c *opCount) child() *opCount {
	k := &opCount{}
	c.kids = append(c.kids, k)
	return k
}

// wrap rebuilds the operator tree with counting decorators, recording
// operator names as it descends. Unknown operator types are counted
// under their Go type name with no visible children.
func wrap(op Operator, c *opCount) Operator {
	switch o := op.(type) {
	case *SeqScan:
		c.name = fmt.Sprintf("scan(%s)", o.Table.Name)
	case *IndexScan:
		c.name = fmt.Sprintf("idxscan(%s.%s)", o.Table.Name, o.Index.Name)
	case *Filter:
		c.name = "filter"
		o.Input = wrap(o.Input, c.child())
	case *Project:
		c.name = "project"
		o.Input = wrap(o.Input, c.child())
	case *NLJoin:
		c.name = "nljoin"
		o.Left = wrap(o.Left, c.child())
		o.Right = wrap(o.Right, c.child())
	case *HashJoin:
		c.name = "hashjoin"
		o.Left = wrap(o.Left, c.child())
		o.Right = wrap(o.Right, c.child())
	case *Distinct:
		c.name = "distinct"
		o.Input = wrap(o.Input, c.child())
	case *SetOpExec:
		c.name = setOpName(o.Kind)
		o.Left = wrap(o.Left, c.child())
		o.Right = wrap(o.Right, c.child())
	case *CountStar:
		c.name = "count"
		o.Input = wrap(o.Input, c.child())
	case *Values:
		c.name = "values"
	default:
		c.name = fmt.Sprintf("%T", op)
	}
	return &countedOp{inner: op, c: c}
}

func setOpName(k SetOpKind) string {
	switch k {
	case OpUnion:
		return "union"
	case OpUnionAll:
		return "union-all"
	case OpExcept:
		return "except"
	case OpIntersect:
		return "intersect"
	}
	return "setop"
}

// countedOp forwards the Operator contract, counting emitted rows.
type countedOp struct {
	inner Operator
	c     *opCount
}

// Schema returns the inner operator's schema.
func (w *countedOp) Schema() *rel.Schema { return w.inner.Schema() }

// Open opens the inner operator.
func (w *countedOp) Open() error { return w.inner.Open() }

// Next forwards one tuple, counting it.
func (w *countedOp) Next() (rel.Tuple, error) {
	tu, err := w.inner.Next()
	if tu != nil {
		w.c.rows++
	}
	return tu, err
}

// Close closes the inner operator.
func (w *countedOp) Close() error { return w.inner.Close() }
