package exec

import (
	"fmt"
	"testing"

	"dkbms/internal/catalog"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/sql"
	"dkbms/internal/storage"
)

// newTable creates a table with (a INTEGER, b INTEGER) rows from pairs.
func newTable(t *testing.T, c *catalog.Catalog, name string, pairs [][2]int64) *catalog.Table {
	t.Helper()
	tb, err := c.CreateTable(name, rel.MustSchema(
		rel.Column{Name: "a", Type: rel.TypeInt},
		rel.Column{Name: "b", Type: rel.TypeInt},
	), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if _, err := tb.Insert(rel.Tuple{rel.NewInt(p[0]), rel.NewInt(p[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func cat(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Open(storage.NewMemPager(256))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func collect(t *testing.T, op Operator) []rel.Tuple {
	t.Helper()
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSeqScanSnapshot(t *testing.T) {
	c := cat(t)
	tb := newTable(t, c, "e", [][2]int64{{1, 2}, {3, 4}})
	s := NewSeqScan(tb)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	// Insert after Open: must not be visible in this scan.
	if _, err := tb.Insert(rel.Tuple{rel.NewInt(5), rel.NewInt(6)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		tu, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tu == nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("snapshot saw %d rows", n)
	}
	s.Close()
}

func TestIndexScan(t *testing.T) {
	c := cat(t)
	newTable(t, c, "e", [][2]int64{{1, 10}, {1, 11}, {2, 20}})
	idx, err := c.CreateIndex("e_a", "e", []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, NewIndexScan(c.Table("e"), idx, rel.Tuple{rel.NewInt(1)}))
	if len(rows) != 2 {
		t.Fatalf("index scan found %d", len(rows))
	}
}

func TestFilterAndProject(t *testing.T) {
	c := cat(t)
	tb := newTable(t, c, "e", [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	f := &Filter{
		Input: NewSeqScan(tb),
		Pred:  Cmp{Op: sql.CmpGt, Left: Col{Ord: 0, Ty: rel.TypeInt}, Right: Const{Val: rel.NewInt(1)}},
	}
	p := &Project{
		Input: f,
		Exprs: []Scalar{Col{Ord: 1, Ty: rel.TypeInt}},
		Out:   rel.MustSchema(rel.Column{Name: "b", Type: rel.TypeInt}),
	}
	rows := collect(t, p)
	if len(rows) != 2 || rows[0][0].Int != 20 || rows[1][0].Int != 30 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoin(t *testing.T) {
	c := cat(t)
	l := newTable(t, c, "l", [][2]int64{{1, 2}, {3, 4}, {5, 6}})
	r := newTable(t, c, "r", [][2]int64{{2, 100}, {4, 200}, {9, 300}})
	j := &HashJoin{
		Left: NewSeqScan(l), Right: NewSeqScan(r),
		LeftOrds: []int{1}, RightOrds: []int{0},
	}
	rows := collect(t, j)
	if len(rows) != 2 {
		t.Fatalf("join rows = %v", rows)
	}
	for _, tu := range rows {
		if tu[1].Int != tu[2].Int {
			t.Fatalf("join key mismatch: %v", tu)
		}
	}
	if j.Schema().Len() != 4 {
		t.Fatalf("join schema %v", j.Schema())
	}
}

func TestHashJoinResidual(t *testing.T) {
	c := cat(t)
	l := newTable(t, c, "l", [][2]int64{{1, 2}, {3, 2}})
	r := newTable(t, c, "r", [][2]int64{{2, 100}})
	j := &HashJoin{
		Left: NewSeqScan(l), Right: NewSeqScan(r),
		LeftOrds: []int{1}, RightOrds: []int{0},
		Residual: Cmp{Op: sql.CmpGt, Left: Col{Ord: 0, Ty: rel.TypeInt}, Right: Const{Val: rel.NewInt(2)}},
	}
	rows := collect(t, j)
	if len(rows) != 1 || rows[0][0].Int != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestNLJoinCross(t *testing.T) {
	c := cat(t)
	l := newTable(t, c, "l", [][2]int64{{1, 2}, {3, 4}})
	r := newTable(t, c, "r", [][2]int64{{5, 6}})
	j := &NLJoin{Left: NewSeqScan(l), Right: NewSeqScan(r), Pred: True{}}
	rows := collect(t, j)
	if len(rows) != 2 {
		t.Fatalf("cross rows = %d", len(rows))
	}
}

func TestIndexNLJoin(t *testing.T) {
	c := cat(t)
	l := newTable(t, c, "l", [][2]int64{{0, 1}, {0, 2}, {0, 9}})
	newTable(t, c, "r", [][2]int64{{1, 100}, {2, 200}, {3, 300}})
	idx, err := c.CreateIndex("r_a", "r", []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	j := &IndexNLJoin{
		Left:     NewSeqScan(l),
		Right:    c.Table("r"),
		Index:    idx,
		LeftOrds: []int{1},
	}
	rows := collect(t, j)
	if len(rows) != 2 {
		t.Fatalf("index join rows = %v", rows)
	}
	for _, tu := range rows {
		if tu[1].Int != tu[2].Int {
			t.Fatalf("key mismatch: %v", tu)
		}
	}
}

func TestIndexNLJoinMatchesHashJoin(t *testing.T) {
	c := cat(t)
	var pairsL, pairsR [][2]int64
	for i := int64(0); i < 60; i++ {
		pairsL = append(pairsL, [2]int64{i, i % 7})
		pairsR = append(pairsR, [2]int64{i % 7, i * 10})
	}
	l := newTable(t, c, "l", pairsL)
	newTable(t, c, "r", pairsR)
	idx, err := c.CreateIndex("r_a", "r", []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	hj := &HashJoin{Left: NewSeqScan(l), Right: NewSeqScan(c.Table("r")), LeftOrds: []int{1}, RightOrds: []int{0}}
	ij := &IndexNLJoin{Left: NewSeqScan(l), Right: c.Table("r"), Index: idx, LeftOrds: []int{1}}
	a, b := collect(t, hj), collect(t, ij)
	if len(a) != len(b) {
		t.Fatalf("hash join %d rows, index join %d rows", len(a), len(b))
	}
	set := make(map[string]int)
	for _, tu := range a {
		set[tu.String()]++
	}
	for _, tu := range b {
		set[tu.String()]--
	}
	for k, v := range set {
		if v != 0 {
			t.Fatalf("multiset mismatch at %s (%+d)", k, v)
		}
	}
}

func TestDistinctOp(t *testing.T) {
	c := cat(t)
	tb := newTable(t, c, "e", [][2]int64{{1, 1}, {1, 1}, {2, 2}})
	rows := collect(t, &Distinct{Input: NewSeqScan(tb)})
	if len(rows) != 2 {
		t.Fatalf("distinct rows = %v", rows)
	}
}

func TestSetOps(t *testing.T) {
	c := cat(t)
	l := newTable(t, c, "l", [][2]int64{{1, 1}, {2, 2}, {2, 2}})
	r := newTable(t, c, "r", [][2]int64{{2, 2}, {3, 3}})
	cases := []struct {
		kind SetOpKind
		want int
	}{
		{OpUnion, 3}, {OpUnionAll, 5}, {OpExcept, 1}, {OpIntersect, 1},
	}
	for _, cse := range cases {
		op := &SetOpExec{Kind: cse.kind, Left: NewSeqScan(l), Right: NewSeqScan(r)}
		rows := collect(t, op)
		if len(rows) != cse.want {
			t.Errorf("setop %d: %d rows, want %d", cse.kind, len(rows), cse.want)
		}
	}
}

func TestCountStarOp(t *testing.T) {
	c := cat(t)
	tb := newTable(t, c, "e", [][2]int64{{1, 1}, {2, 2}})
	rows := collect(t, &CountStar{Input: NewSeqScan(tb)})
	if len(rows) != 1 || rows[0][0].Int != 2 {
		t.Fatalf("count = %v", rows)
	}
}

func TestPredicates(t *testing.T) {
	tu := rel.Tuple{rel.NewInt(5), rel.NewString("x")}
	lt := Cmp{Op: sql.CmpLt, Left: Col{Ord: 0, Ty: rel.TypeInt}, Right: Const{Val: rel.NewInt(10)}}
	eq := Cmp{Op: sql.CmpEq, Left: Col{Ord: 1, Ty: rel.TypeString}, Right: Const{Val: rel.NewString("x")}}
	if !lt.Holds(tu) || !eq.Holds(tu) {
		t.Fatal("basic comparisons")
	}
	if !(AndP{Preds: []Pred{lt, eq}}).Holds(tu) {
		t.Fatal("and")
	}
	if !(OrP{Left: NotP{Inner: lt}, Right: eq}).Holds(tu) {
		t.Fatal("or/not")
	}
	if (NotP{Inner: True{}}).Holds(tu) {
		t.Fatal("not true")
	}
}

func TestConjunctsRoundTrip(t *testing.T) {
	a := Cmp{Op: sql.CmpEq, Left: Col{Ord: 0, Ty: rel.TypeInt}, Right: Const{Val: rel.NewInt(1)}}
	b := Cmp{Op: sql.CmpEq, Left: Col{Ord: 1, Ty: rel.TypeInt}, Right: Const{Val: rel.NewInt(2)}}
	all := ConjunctsOf(AndP{Preds: []Pred{a, AndP{Preds: []Pred{b}}}})
	if len(all) != 2 {
		t.Fatalf("conjuncts = %d", len(all))
	}
	if _, ok := AndOf(nil).(True); !ok {
		t.Fatal("empty AndOf should be True")
	}
	if _, ok := AndOf([]Pred{a}).(Cmp); !ok {
		t.Fatal("singleton AndOf should unwrap")
	}
}

func TestShiftOrds(t *testing.T) {
	p := AndP{Preds: []Pred{
		Cmp{Op: sql.CmpEq, Left: Col{Ord: 0, Ty: rel.TypeInt}, Right: Col{Ord: 1, Ty: rel.TypeInt}},
		OrP{
			Left:  Cmp{Op: sql.CmpGt, Left: Col{Ord: 2, Ty: rel.TypeInt}, Right: Const{Val: rel.NewInt(0)}},
			Right: NotP{Inner: True{}},
		},
	}}
	shifted := ShiftOrds(p, 10)
	tu := make(rel.Tuple, 13)
	for i := range tu {
		tu[i] = rel.NewInt(int64(i))
	}
	// After shift: col10 == col11 fails (10 != 11) so And fails.
	if shifted.Holds(tu) {
		t.Fatal("shifted predicate wrong")
	}
	tu[11] = rel.NewInt(10)
	if !shifted.Holds(tu) {
		t.Fatal("shifted predicate should hold now")
	}
}

func TestValuesOp(t *testing.T) {
	v := &Values{
		Rows: []rel.Tuple{{rel.NewInt(1)}, {rel.NewInt(2)}},
		Out:  rel.MustSchema(rel.Column{Name: "x", Type: rel.TypeInt}),
	}
	rows := collect(t, v)
	if len(rows) != 2 {
		t.Fatalf("values rows = %v", rows)
	}
}

func BenchmarkHashJoinVsIndexJoin(b *testing.B) {
	c, err := catalog.Open(storage.NewMemPager(4096))
	if err != nil {
		b.Fatal(err)
	}
	big, _ := c.CreateTable("big", rel.MustSchema(
		rel.Column{Name: "a", Type: rel.TypeInt},
		rel.Column{Name: "b", Type: rel.TypeInt}), false)
	for i := int64(0); i < 50000; i++ {
		big.Insert(rel.Tuple{rel.NewInt(i), rel.NewInt(i)})
	}
	small, _ := c.CreateTable("small", rel.MustSchema(
		rel.Column{Name: "a", Type: rel.TypeInt},
		rel.Column{Name: "b", Type: rel.TypeInt}), false)
	for i := int64(0); i < 10; i++ {
		small.Insert(rel.Tuple{rel.NewInt(i), rel.NewInt(i * 1000)})
	}
	idx, _ := c.CreateIndex("big_a", "big", []string{"a"}, false)

	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := &HashJoin{Left: NewSeqScan(small), Right: NewSeqScan(big), LeftOrds: []int{1}, RightOrds: []int{0}}
			if _, err := Collect(j); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := &IndexNLJoin{Left: NewSeqScan(small), Right: big, Index: idx, LeftOrds: []int{1}}
			if _, err := Collect(j); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ExampleRun() {
	c, _ := catalog.Open(storage.NewMemPager(64))
	tb, _ := c.CreateTable("e", rel.MustSchema(rel.Column{Name: "a", Type: rel.TypeInt}), false)
	tb.Insert(rel.Tuple{rel.NewInt(7)})
	_ = Run(NewSeqScan(tb), func(tu rel.Tuple) error {
		fmt.Println(tu)
		return nil
	})
	// Output: (7)
}

func TestInstrumentAttachesIO(t *testing.T) {
	c := cat(t)
	tb := newTable(t, c, "e", [][2]int64{{1, 10}, {2, 20}, {3, 30}, {2, 40}})
	idx, err := c.CreateIndex("e_a", "e", []string{"a"}, false)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace("query")
	op, flush := Instrument(NewSeqScan(tb), tr.Root())
	if got := len(collect(t, op)); got != 4 {
		t.Fatalf("scan rows = %d", got)
	}
	flush()
	sp := tr.Root().Find("scan(e)")
	if sp == nil {
		t.Fatal("no scan span")
	}
	if v, ok := sp.Int("heap_pages"); !ok || v < 1 {
		t.Fatalf("heap_pages = %d, %v", v, ok)
	}
	if v, ok := sp.Int("heap_recs"); !ok || v != 4 {
		t.Fatalf("heap_recs = %d, %v (want 4)", v, ok)
	}
	if _, ok := sp.Int("pool_hits"); !ok {
		t.Fatal("scan span missing pool_hits")
	}
	if _, ok := sp.Int("pool_misses"); !ok {
		t.Fatal("scan span missing pool_misses")
	}

	// Index-driven access reports descents and point reads.
	tr2 := obs.NewTrace("query")
	op2, flush2 := Instrument(NewIndexScan(tb, idx, rel.Tuple{rel.NewInt(2)}), tr2.Root())
	if got := len(collect(t, op2)); got != 2 {
		t.Fatalf("idxscan rows = %d", got)
	}
	flush2()
	sp2 := tr2.Root().Find("idxscan(e.e_a)")
	if sp2 == nil {
		t.Fatal("no idxscan span")
	}
	if v, ok := sp2.Int("heap_reads"); !ok || v != 2 {
		t.Fatalf("heap_reads = %d, %v (want 2)", v, ok)
	}
	if v, ok := sp2.Int("descents"); !ok || v < 1 {
		t.Fatalf("descents = %d, %v", v, ok)
	}

	// IndexNLJoin wraps its outer input and probes the inner index.
	l := newTable(t, c, "l", [][2]int64{{0, 2}, {0, 3}})
	tr3 := obs.NewTrace("query")
	j := &IndexNLJoin{Left: NewSeqScan(l), Right: tb, Index: idx, LeftOrds: []int{1}}
	op3, flush3 := Instrument(j, tr3.Root())
	if got := len(collect(t, op3)); got != 3 {
		t.Fatalf("idxjoin rows = %d", got)
	}
	flush3()
	sp3 := tr3.Root().Find("idxjoin(e.e_a)")
	if sp3 == nil {
		t.Fatalf("no idxjoin span in\n%s", tr3.Format())
	}
	if v, ok := sp3.Int("descents"); !ok || v != 2 {
		t.Fatalf("idxjoin descents = %d, %v (want 2, one per outer row)", v, ok)
	}
	if sp3.Find("scan(l)") == nil {
		t.Fatalf("idxjoin outer input not counted:\n%s", tr3.Format())
	}
}
