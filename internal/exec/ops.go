package exec

import (
	"context"
	"fmt"

	"dkbms/internal/catalog"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// Operator is a Volcano-style iterator. The contract is Open, then Next
// until it returns a nil tuple, then Close. Operators are single-use.
type Operator interface {
	Schema() *rel.Schema
	Open() error
	Next() (rel.Tuple, error)
	Close() error
}

// Run drains an operator, invoking fn per tuple.
func Run(op Operator, fn func(tu rel.Tuple) error) error {
	return RunCtx(context.Background(), op, fn)
}

// RunCtx drains an operator like Run, but polls the context between
// tuples: cancelling ctx aborts the drain with ctx.Err() at the next
// tuple boundary. This is the statement-level cancellation point — the
// operators themselves stay context-free (each Next consumes a bounded
// amount of its finite, Open-materialized input), so a runaway join or
// scan is cut off here rather than inside every operator.
func RunCtx(ctx context.Context, op Operator, fn func(tu rel.Tuple) error) error {
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		tu, err := op.Next()
		if err != nil {
			return err
		}
		if tu == nil {
			return nil
		}
		if err := fn(tu); err != nil {
			return err
		}
	}
}

// Collect drains an operator into a slice.
func Collect(op Operator) ([]rel.Tuple, error) {
	return CollectCtx(context.Background(), op)
}

// CollectCtx drains an operator into a slice, observing the context
// between tuples like RunCtx.
func CollectCtx(ctx context.Context, op Operator) ([]rel.Tuple, error) {
	var out []rel.Tuple
	err := RunCtx(ctx, op, func(tu rel.Tuple) error {
		out = append(out, tu)
		return nil
	})
	return out, err
}

// --- SeqScan ---

// SeqScan reads every tuple of a table. The scan materializes RIDs lazily
// page by page via the heap iterator.
type SeqScan struct {
	Table *catalog.Table

	tuples []rel.Tuple
	pos    int
}

// NewSeqScan returns a sequential scan of the table.
func NewSeqScan(t *catalog.Table) *SeqScan { return &SeqScan{Table: t} }

// Schema returns the table schema.
func (s *SeqScan) Schema() *rel.Schema { return s.Table.Schema }

// Open materializes the snapshot of the table. Materializing up front
// gives statement-level snapshot semantics: a statement that reads and
// writes the same table (INSERT INTO t SELECT ... FROM t) sees the state
// as of Open.
func (s *SeqScan) Open() error {
	s.tuples = s.tuples[:0]
	s.pos = 0
	return s.Table.Scan(func(_ storage.RID, tu rel.Tuple) error {
		s.tuples = append(s.tuples, tu)
		return nil
	})
}

// Next returns the next tuple or nil.
func (s *SeqScan) Next() (rel.Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, nil
	}
	tu := s.tuples[s.pos]
	s.pos++
	return tu, nil
}

// Close releases the snapshot.
func (s *SeqScan) Close() error {
	s.tuples = nil
	return nil
}

// --- IndexScan ---

// IndexScan reads tuples whose index key starts with Key (equality on a
// prefix of the index columns).
type IndexScan struct {
	Table *catalog.Table
	Index *catalog.Index
	Key   rel.Tuple // prefix values for the leading index columns

	rids []storage.RID
	pos  int
}

// NewIndexScan returns an index-driven scan.
func NewIndexScan(t *catalog.Table, ix *catalog.Index, key rel.Tuple) *IndexScan {
	return &IndexScan{Table: t, Index: ix, Key: key}
}

// Schema returns the table schema.
func (s *IndexScan) Schema() *rel.Schema { return s.Table.Schema }

// Open performs the index lookup.
func (s *IndexScan) Open() error {
	if len(s.Key) == len(s.Index.Ords) {
		s.rids = s.Index.Lookup(s.Key)
	} else {
		s.rids = s.Index.LookupPrefix(s.Key)
	}
	s.pos = 0
	return nil
}

// Next fetches the next matching tuple from the heap.
func (s *IndexScan) Next() (rel.Tuple, error) {
	if s.pos >= len(s.rids) {
		return nil, nil
	}
	rid := s.rids[s.pos]
	s.pos++
	tu, err := s.Table.Get(rid)
	if err != nil {
		return nil, fmt.Errorf("exec: index %s points at missing record %s: %w", s.Index.Name, rid, err)
	}
	return tu, nil
}

// Close releases the posting list.
func (s *IndexScan) Close() error {
	s.rids = nil
	return nil
}

// --- Filter ---

// Filter passes through tuples satisfying the predicate.
type Filter struct {
	Input Operator
	Pred  Pred
}

// Schema returns the input schema.
func (f *Filter) Schema() *rel.Schema { return f.Input.Schema() }

// Open opens the input.
func (f *Filter) Open() error { return f.Input.Open() }

// Next returns the next satisfying tuple.
func (f *Filter) Next() (rel.Tuple, error) {
	//dkblint:ctxok consumes one tuple of the finite Open-materialized input per iteration; the RunCtx drain observes cancellation
	for {
		tu, err := f.Input.Next()
		if err != nil || tu == nil {
			return nil, err
		}
		if f.Pred.Holds(tu) {
			return tu, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.Input.Close() }

// --- Project ---

// Project evaluates scalar expressions over each input tuple.
type Project struct {
	Input Operator
	Exprs []Scalar
	Out   *rel.Schema
}

// Schema returns the projection's output schema.
func (p *Project) Schema() *rel.Schema { return p.Out }

// Open opens the input.
func (p *Project) Open() error { return p.Input.Open() }

// Next computes the next projected tuple.
func (p *Project) Next() (rel.Tuple, error) {
	tu, err := p.Input.Next()
	if err != nil || tu == nil {
		return nil, err
	}
	out := make(rel.Tuple, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Eval(tu)
	}
	return out, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.Input.Close() }

// --- Nested-loop join (cross product with residual predicate) ---

// NLJoin is a block nested-loop join: the right input is materialized
// once, then streamed per left tuple. The predicate (possibly True for a
// pure cross product) is applied to the concatenated tuple.
type NLJoin struct {
	Left, Right Operator
	Pred        Pred

	right  []rel.Tuple
	cur    rel.Tuple
	rpos   int
	schema *rel.Schema
}

// Schema returns the concatenated schema.
func (j *NLJoin) Schema() *rel.Schema {
	if j.schema == nil {
		j.schema = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.schema
}

// Open opens both inputs and materializes the right side.
func (j *NLJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	var err error
	j.right, err = Collect(j.Right)
	if err != nil {
		return err
	}
	j.cur = nil
	j.rpos = 0
	return nil
}

// Next returns the next joined tuple.
func (j *NLJoin) Next() (rel.Tuple, error) {
	//dkblint:ctxok consumes one left tuple or one inner match per iteration over finite inputs; the RunCtx drain observes cancellation
	for {
		if j.cur == nil {
			tu, err := j.Left.Next()
			if err != nil || tu == nil {
				return nil, err
			}
			j.cur = tu
			j.rpos = 0
		}
		for j.rpos < len(j.right) {
			rt := j.right[j.rpos]
			j.rpos++
			joined := make(rel.Tuple, 0, len(j.cur)+len(rt))
			joined = append(joined, j.cur...)
			joined = append(joined, rt...)
			if j.Pred.Holds(joined) {
				return joined, nil
			}
		}
		j.cur = nil
	}
}

// Close closes the left input (the right is already drained).
func (j *NLJoin) Close() error {
	j.right = nil
	return j.Left.Close()
}

// --- Hash join ---

// HashJoin is an equijoin on LeftOrds = RightOrds with an optional
// residual predicate over the concatenated tuple. The right (build) side
// is hashed; the left (probe) side streams.
type HashJoin struct {
	Left, Right         Operator
	LeftOrds, RightOrds []int
	Residual            Pred // True when absent

	table   map[string][]rel.Tuple
	cur     rel.Tuple
	matches []rel.Tuple
	mpos    int
	schema  *rel.Schema
}

// Schema returns the concatenated schema.
func (j *HashJoin) Schema() *rel.Schema {
	if j.schema == nil {
		j.schema = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.schema
}

// Open builds the hash table from the right input.
func (j *HashJoin) Open() error {
	if j.Residual == nil {
		j.Residual = True{}
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.table = make(map[string][]rel.Tuple)
	err := Run(j.Right, func(tu rel.Tuple) error {
		k := tu.KeyOf(j.RightOrds)
		j.table[k] = append(j.table[k], tu)
		return nil
	})
	if err != nil {
		return err
	}
	j.cur = nil
	j.matches = nil
	j.mpos = 0
	return nil
}

// Next returns the next joined tuple.
func (j *HashJoin) Next() (rel.Tuple, error) {
	//dkblint:ctxok consumes one left tuple or one bucket match per iteration over finite inputs; the RunCtx drain observes cancellation
	for {
		for j.mpos < len(j.matches) {
			rt := j.matches[j.mpos]
			j.mpos++
			joined := make(rel.Tuple, 0, len(j.cur)+len(rt))
			joined = append(joined, j.cur...)
			joined = append(joined, rt...)
			if j.Residual.Holds(joined) {
				return joined, nil
			}
		}
		tu, err := j.Left.Next()
		if err != nil || tu == nil {
			return nil, err
		}
		j.cur = tu
		j.matches = j.table[tu.KeyOf(j.LeftOrds)]
		j.mpos = 0
	}
}

// Close closes the probe input and releases the hash table.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Left.Close()
}

// --- Distinct ---

// Distinct removes duplicate tuples (hash-based).
type Distinct struct {
	Input Operator
	seen  map[string]struct{}
}

// Schema returns the input schema.
func (d *Distinct) Schema() *rel.Schema { return d.Input.Schema() }

// Open opens the input and resets the seen set.
func (d *Distinct) Open() error {
	d.seen = make(map[string]struct{})
	return d.Input.Open()
}

// Next returns the next previously-unseen tuple.
func (d *Distinct) Next() (rel.Tuple, error) {
	//dkblint:ctxok consumes one input tuple per iteration over a finite input; the RunCtx drain observes cancellation
	for {
		tu, err := d.Input.Next()
		if err != nil || tu == nil {
			return nil, err
		}
		k := tu.Key()
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return tu, nil
	}
}

// Close closes the input.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}

// --- Set operations ---

// SetOpKind selects the set operation implemented by SetOpExec.
type SetOpKind int

// Set operation kinds (bag semantics follow SQL: UNION/EXCEPT/INTERSECT
// are duplicate-eliminating; UNION ALL concatenates).
const (
	OpUnion SetOpKind = iota
	OpUnionAll
	OpExcept
	OpIntersect
)

// SetOpExec evaluates Left OP Right. Inputs must be type-compatible.
type SetOpExec struct {
	Kind        SetOpKind
	Left, Right Operator

	out []rel.Tuple
	pos int
}

// Schema returns the left input's schema (SQL convention).
func (s *SetOpExec) Schema() *rel.Schema { return s.Left.Schema() }

// Open fully evaluates the set operation (these operators are blocking).
func (s *SetOpExec) Open() error {
	if !s.Left.Schema().TypesCompatible(s.Right.Schema()) {
		return fmt.Errorf("exec: set operation over incompatible schemas %v and %v",
			s.Left.Schema(), s.Right.Schema())
	}
	s.out = s.out[:0]
	s.pos = 0
	switch s.Kind {
	case OpUnionAll:
		err := Run(s.Left, func(tu rel.Tuple) error { s.out = append(s.out, tu); return nil })
		if err != nil {
			return err
		}
		return Run(s.Right, func(tu rel.Tuple) error { s.out = append(s.out, tu); return nil })
	case OpUnion:
		seen := make(map[string]struct{})
		add := func(tu rel.Tuple) error {
			k := tu.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				s.out = append(s.out, tu)
			}
			return nil
		}
		if err := Run(s.Left, add); err != nil {
			return err
		}
		return Run(s.Right, add)
	case OpExcept:
		drop := make(map[string]struct{})
		if err := Run(s.Right, func(tu rel.Tuple) error {
			drop[tu.Key()] = struct{}{}
			return nil
		}); err != nil {
			return err
		}
		seen := make(map[string]struct{})
		return Run(s.Left, func(tu rel.Tuple) error {
			k := tu.Key()
			if _, excluded := drop[k]; excluded {
				return nil
			}
			if _, dup := seen[k]; dup {
				return nil
			}
			seen[k] = struct{}{}
			s.out = append(s.out, tu)
			return nil
		})
	case OpIntersect:
		keep := make(map[string]struct{})
		if err := Run(s.Right, func(tu rel.Tuple) error {
			keep[tu.Key()] = struct{}{}
			return nil
		}); err != nil {
			return err
		}
		seen := make(map[string]struct{})
		return Run(s.Left, func(tu rel.Tuple) error {
			k := tu.Key()
			if _, present := keep[k]; !present {
				return nil
			}
			if _, dup := seen[k]; dup {
				return nil
			}
			seen[k] = struct{}{}
			s.out = append(s.out, tu)
			return nil
		})
	}
	return fmt.Errorf("exec: unknown set operation %d", s.Kind)
}

// Next returns the next result tuple.
func (s *SetOpExec) Next() (rel.Tuple, error) {
	if s.pos >= len(s.out) {
		return nil, nil
	}
	tu := s.out[s.pos]
	s.pos++
	return tu, nil
}

// Close releases the materialized result.
func (s *SetOpExec) Close() error {
	s.out = nil
	return nil
}

// --- CountStar ---

var countSchema = rel.MustSchema(rel.Column{Name: "count", Type: rel.TypeInt})

// CountStar counts input tuples and emits a single-row result.
type CountStar struct {
	Input Operator
	done  bool
}

// Schema returns the single-column count schema.
func (c *CountStar) Schema() *rel.Schema { return countSchema }

// Open opens the input.
func (c *CountStar) Open() error {
	c.done = false
	return c.Input.Open()
}

// Next counts the input on first call.
func (c *CountStar) Next() (rel.Tuple, error) {
	if c.done {
		return nil, nil
	}
	n := int64(0)
	//dkblint:ctxok counts a finite Open-materialized input; bounded by input size
	for {
		tu, err := c.Input.Next()
		if err != nil {
			return nil, err
		}
		if tu == nil {
			break
		}
		n++
	}
	c.done = true
	return rel.Tuple{rel.NewInt(n)}, nil
}

// Close closes the input.
func (c *CountStar) Close() error { return c.Input.Close() }

// --- Values ---

// Values emits a fixed list of tuples (INSERT ... VALUES source).
type Values struct {
	Rows []rel.Tuple
	Out  *rel.Schema
	pos  int
}

// Schema returns the declared schema.
func (v *Values) Schema() *rel.Schema { return v.Out }

// Open resets the cursor.
func (v *Values) Open() error { v.pos = 0; return nil }

// Next returns the next row.
func (v *Values) Next() (rel.Tuple, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	tu := v.Rows[v.pos]
	v.pos++
	return tu, nil
}

// Close is a no-op.
func (v *Values) Close() error { return nil }
