// Package client is the Go client for a dkbd server: a thin, synchronous
// wrapper over the wire protocol. A Client owns one connection and runs a
// strict request/response alternation on it; it is safe for concurrent
// use, with concurrent callers serialized per connection. Open several
// clients to exercise server-side concurrency.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dkbms/internal/wire"
)

// Client is one dkbd connection.
type Client struct {
	mu   sync.Mutex // serializes request/response exchanges
	conn net.Conn
}

// Dial connects to a dkbd server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection. In-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response, translating a
// server ERROR frame into a Go error.
func (c *Client) roundTrip(t wire.MsgType, payload []byte, want wire.MsgType) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := wire.WriteFrame(c.conn, t, payload); err != nil {
		return nil, err
	}
	rt, rp, _, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if rt == wire.MsgError {
		e, derr := wire.DecodeError(rp)
		if derr != nil {
			return nil, fmt.Errorf("client: undecodable server error: %v", derr)
		}
		// The code byte maps the failure back onto the dkbms sentinels,
		// so errors.Is(err, dkbms.ErrParse) etc. work through the wire.
		return nil, e.Err()
	}
	if rt != want {
		return nil, fmt.Errorf("client: server sent %v, want %v", rt, want)
	}
	return rp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(wire.MsgPing, nil, wire.MsgPong)
	return err
}

// Load sends Horn-clause source (facts and rules) to the server's
// workspace D/KB.
func (c *Client) Load(src string) error {
	_, err := c.roundTrip(wire.MsgLoad, wire.Load{Src: src}.Encode(), wire.MsgOK)
	return err
}

// Query evaluates one query ("?- p(X, y).") on the server.
func (c *Client) Query(src string, opts wire.QueryOpts) (*wire.Result, error) {
	rp, err := c.roundTrip(wire.MsgQuery, wire.Query{Src: src, Opts: opts}.Encode(), wire.MsgResult)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(rp)
}

// Stmt is a server-side prepared query, private to this client's session.
type Stmt struct {
	c *Client
	// ID is the session-local prepared-statement id.
	ID uint64
	// Generation is the server rule-base generation at prepare time. The
	// server recompiles transparently when it moves.
	Generation uint64
}

// Prepare compiles a query on the server for repeated execution.
func (c *Client) Prepare(src string, opts wire.QueryOpts) (*Stmt, error) {
	rp, err := c.roundTrip(wire.MsgPrepare, wire.Prepare{Src: src, Opts: opts}.Encode(), wire.MsgPrepared)
	if err != nil {
		return nil, err
	}
	p, err := wire.DecodePrepared(rp)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, ID: p.ID, Generation: p.Generation}, nil
}

// Exec runs the prepared query against the current D/KB state.
func (s *Stmt) Exec() (*wire.Result, error) {
	return s.ExecWithQueryID(0)
}

// ExecWithQueryID is Exec under an explicit query ID (0 lets the server
// mint one); the reply echoes the ID the execution ran under.
func (s *Stmt) ExecWithQueryID(qid uint64) (*wire.Result, error) {
	rp, err := s.c.roundTrip(wire.MsgExecP, wire.ExecP{ID: s.ID, QueryID: qid}.Encode(), wire.MsgResult)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(rp)
}

// Retract removes base facts matching pattern (e.g. "parent(john, X)")
// and reports how many were deleted.
func (c *Client) Retract(pattern string) (int64, error) {
	rp, err := c.roundTrip(wire.MsgRetract, wire.Retract{Pattern: pattern}.Encode(), wire.MsgRetracted)
	if err != nil {
		return 0, err
	}
	r, err := wire.DecodeRetracted(rp)
	if err != nil {
		return 0, err
	}
	return r.N, nil
}

// Stats fetches the server's activity counters.
func (c *Client) Stats() (wire.ServerStats, error) {
	rp, err := c.roundTrip(wire.MsgStats, nil, wire.MsgStatsReply)
	if err != nil {
		return wire.ServerStats{}, err
	}
	return wire.DecodeServerStats(rp)
}

// Slowlog fetches the server's slow-query log (slowest first).
func (c *Client) Slowlog() (wire.Slowlog, error) {
	rp, err := c.roundTrip(wire.MsgSlowlog, nil, wire.MsgSlowlogReply)
	if err != nil {
		return wire.Slowlog{}, err
	}
	return wire.DecodeSlowlog(rp)
}

// Views fetches the server's live maintained materialized views, most
// recently used first.
func (c *Client) Views() (wire.Views, error) {
	rp, err := c.roundTrip(wire.MsgViews, nil, wire.MsgViewsReply)
	if err != nil {
		return wire.Views{}, err
	}
	return wire.DecodeViews(rp)
}
