// Package codegen is the testbed's Code Generator (paper §3.2.6). The
// paper's version emits a C program segment that "loads certain data
// structures in the object program with query-specific information" —
// the predicate/clique nodes of the evaluation order list, their schema
// information, and the SQL query evaluating the body of each rule. This
// package emits exactly those data structures as a Program value, which
// the run-time library (internal/rtlib) interprets: the Go equivalent of
// compiling the fragment and linking it against the run-time library.
//
// Every predicate relation — extensional fact tables and the temporary
// tables holding derived predicates — uses canonical column names c0,
// c1, ... so rule bodies compile to SQL without consulting per-table
// column naming.
package codegen

import (
	"fmt"
	"strings"

	"dkbms/internal/dlog"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
)

// BridgePrefix marks the synthetic base predicates the knowledge
// manager introduces when normalizing a predicate defined by both rules
// and facts (paper §1.1: "we can assume without loss of generality that
// a predicate is defined entirely by rules or entirely by facts"). The
// bridge predicate _b_p aliases p's extensional table.
const BridgePrefix = "_b_"

// BaseTable returns the DBMS table holding a base predicate's facts.
// Every predicate's extensional relation is named edb_<pred> with
// columns c0..cn-1; bridge predicates alias their original predicate's
// table.
func BaseTable(pred string) string {
	return "edb_" + strings.TrimPrefix(pred, BridgePrefix)
}

// FromEntry is one relation in a compiled rule's FROM list. Pred is the
// predicate name; the run-time library maps it to a concrete table
// (extensional table, derived temp table, or delta table during
// semi-naive differentials). Alias is the fixed alias used by the
// compiled select list and WHERE text.
type FromEntry struct {
	Pred  string
	Alias string
}

// RuleSQL is the compiled form of one rule: the constituents of
//
//	SELECT DISTINCT <SelectList> FROM <From...> [WHERE <Where>]
//
// with table names left symbolic so the runtime can substitute delta
// tables per differential.
type RuleSQL struct {
	// Head is the defined predicate.
	Head string
	// Source is the original clause (diagnostics and EXPLAIN output).
	Source string
	// SelectList is the projection computing the head tuple.
	SelectList string
	// From lists the body relations in order.
	From []FromEntry
	// Where is the conjunction of constant and variable-equality
	// conditions ("" when the body imposes none).
	Where string
	// CliqueOccs indexes From entries whose predicate belongs to the
	// same clique as Head (the occurrences semi-naive differentiates).
	CliqueOccs []int
}

// SQL renders the rule with the given predicate→table mapping.
func (r *RuleSQL) SQL(tableOf func(pred string) string) string {
	var b strings.Builder
	b.WriteString("SELECT DISTINCT ")
	b.WriteString(r.SelectList)
	b.WriteString(" FROM ")
	for i, f := range r.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tableOf(f.Pred))
		b.WriteByte(' ')
		b.WriteString(f.Alias)
	}
	if r.Where != "" {
		b.WriteString(" WHERE ")
		b.WriteString(r.Where)
	}
	return b.String()
}

// SQLWithTables renders the rule with an explicit table name per FROM
// position (used by semi-naive differentials).
func (r *RuleSQL) SQLWithTables(tables []string) string {
	var b strings.Builder
	b.WriteString("SELECT DISTINCT ")
	b.WriteString(r.SelectList)
	b.WriteString(" FROM ")
	for i, f := range r.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tables[i])
		b.WriteByte(' ')
		b.WriteString(f.Alias)
	}
	if r.Where != "" {
		b.WriteString(" WHERE ")
		b.WriteString(r.Where)
	}
	return b.String()
}

// Node mirrors one entry of the evaluation order list.
type Node struct {
	// Preds are the predicates this node evaluates.
	Preds []string
	// Recursive marks clique nodes (LFP computation).
	Recursive bool
	// ExitRules and RecursiveRules partition the compiled rules.
	ExitRules      []RuleSQL
	RecursiveRules []RuleSQL
	// Deps indexes the earlier Nodes whose relations this node's rules
	// read (from pcg.Node.Deps). Nodes with no path between them may
	// evaluate concurrently.
	Deps []int
}

// SeedFact is a ground tuple inserted into a derived predicate before
// evaluation (magic seeds).
type SeedFact struct {
	Pred  string
	Tuple rel.Tuple
}

// Program is the compiled evaluation program: the data structures the
// paper's code fragment loads.
type Program struct {
	// Nodes in evaluation order (dependencies first).
	Nodes []Node
	// QueryPred is the predicate whose relation holds the answer.
	QueryPred string
	// Schemas maps each derived predicate to its (c0..cn-1) schema.
	Schemas map[string]*rel.Schema
	// BasePreds lists the extensional predicates the program reads.
	BasePreds []string
	// Seeds are initial facts for derived predicates.
	Seeds []SeedFact
}

// Generate compiles an analyzed rule set into a Program. derivedTypes
// must cover every derived predicate in the order (from typeinf.Infer).
func Generate(order []*pcg.Node, derivedTypes map[string][]rel.Type, basePreds []string, queryPred string) (*Program, error) {
	prog := &Program{
		QueryPred: queryPred,
		Schemas:   make(map[string]*rel.Schema),
		BasePreds: append([]string(nil), basePreds...),
	}
	for _, n := range order {
		node := Node{
			Preds:     append([]string(nil), n.Preds...),
			Recursive: n.Recursive,
			Deps:      append([]int(nil), n.Deps...),
		}
		inClique := make(map[string]bool, len(n.Preds))
		for _, p := range n.Preds {
			inClique[p] = true
			types, ok := derivedTypes[p]
			if !ok {
				return nil, fmt.Errorf("codegen: no inferred types for %s", p)
			}
			cols := make([]rel.Column, len(types))
			for i, t := range types {
				cols[i] = rel.Column{Name: fmt.Sprintf("c%d", i), Type: t}
			}
			schema, err := rel.NewSchema(cols...)
			if err != nil {
				return nil, err
			}
			prog.Schemas[p] = schema
		}
		for _, c := range n.ExitRules {
			rs, err := CompileRule(c, inClique)
			if err != nil {
				return nil, err
			}
			node.ExitRules = append(node.ExitRules, rs)
		}
		for _, c := range n.RecursiveRules {
			rs, err := CompileRule(c, inClique)
			if err != nil {
				return nil, err
			}
			node.RecursiveRules = append(node.RecursiveRules, rs)
		}
		prog.Nodes = append(prog.Nodes, node)
	}
	return prog, nil
}

// Explain renders the program as text: the evaluation order list with
// each node's kind, predicates and compiled SQL (derived relations
// shown as <pred>, extensional relations by their table names). The
// shell's .explain command and documentation use it.
func (p *Program) Explain() string {
	var b strings.Builder
	tableOf := func(pred string) string {
		if _, derived := p.Schemas[pred]; derived {
			return "<" + pred + ">"
		}
		return BaseTable(pred)
	}
	fmt.Fprintf(&b, "query predicate: %s\n", p.QueryPred)
	if len(p.Seeds) > 0 {
		b.WriteString("seeds:\n")
		for _, s := range p.Seeds {
			fmt.Fprintf(&b, "  %s%s\n", s.Pred, s.Tuple.String())
		}
	}
	for i, n := range p.Nodes {
		kind := "predicate"
		if n.Recursive {
			kind = "clique"
		}
		fmt.Fprintf(&b, "node %d (%s): %s\n", i+1, kind, strings.Join(n.Preds, ", "))
		for _, r := range n.ExitRules {
			fmt.Fprintf(&b, "  exit  %s\n        %s\n", r.Source, r.SQL(tableOf))
		}
		for _, r := range n.RecursiveRules {
			fmt.Fprintf(&b, "  rec   %s\n        %s\n", r.Source, r.SQL(tableOf))
		}
	}
	return b.String()
}

// CompileRule translates one clause into its RuleSQL. inClique marks
// predicates mutually recursive with the head (may be nil).
func CompileRule(c dlog.Clause, inClique map[string]bool) (RuleSQL, error) {
	if len(c.Body) == 0 {
		return RuleSQL{}, fmt.Errorf("codegen: cannot compile bodiless clause %q; facts belong in the extensional database", c.String())
	}
	rs := RuleSQL{Head: c.Head.Pred, Source: c.String()}

	// First occurrence of each variable.
	type pos struct{ atom, arg int }
	firstOcc := make(map[string]pos)
	var conds []string
	for ai, a := range c.Body {
		alias := fmt.Sprintf("t%d", ai)
		rs.From = append(rs.From, FromEntry{Pred: a.Pred, Alias: alias})
		if inClique != nil && inClique[a.Pred] {
			rs.CliqueOccs = append(rs.CliqueOccs, ai)
		}
		for gi, t := range a.Args {
			ref := fmt.Sprintf("%s.c%d", alias, gi)
			if t.IsVar() {
				if f, seen := firstOcc[t.Var]; seen {
					conds = append(conds, fmt.Sprintf("%s = t%d.c%d", ref, f.atom, f.arg))
				} else {
					firstOcc[t.Var] = pos{ai, gi}
				}
			} else {
				conds = append(conds, fmt.Sprintf("%s = %s", ref, t.Val.SQL()))
			}
		}
	}
	rs.Where = strings.Join(conds, " AND ")

	var sel []string
	for _, t := range c.Head.Args {
		if t.IsVar() {
			f, seen := firstOcc[t.Var]
			if !seen {
				return RuleSQL{}, fmt.Errorf("codegen: head variable %s unbound in %q (rule not range-restricted)", t.Var, c.String())
			}
			sel = append(sel, fmt.Sprintf("t%d.c%d", f.atom, f.arg))
		} else {
			sel = append(sel, t.Val.SQL())
		}
	}
	rs.SelectList = strings.Join(sel, ", ")
	return rs, nil
}
