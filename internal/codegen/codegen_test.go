package codegen

import (
	"strings"
	"testing"

	"dkbms/internal/dlog"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
)

func ident(pred string) string { return pred }

func TestCompileSimpleRule(t *testing.T) {
	c := dlog.MustParseClause("gp(X, Y) :- parent(X, Z), parent(Z, Y).")
	rs, err := CompileRule(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := rs.SQL(ident)
	want := "SELECT DISTINCT t0.c0, t1.c1 FROM parent t0, parent t1 WHERE t1.c0 = t0.c1"
	if got != want {
		t.Fatalf("sql:\n got %q\nwant %q", got, want)
	}
}

func TestCompileConstants(t *testing.T) {
	c := dlog.MustParseClause(`tag(X, "root", 7) :- node(john, X).`)
	rs, err := CompileRule(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := rs.SQL(ident)
	if !strings.Contains(got, "t0.c0 = 'john'") {
		t.Fatalf("constant condition missing: %q", got)
	}
	if !strings.Contains(got, "SELECT DISTINCT t0.c1, 'root', 7 FROM") {
		t.Fatalf("constant projection missing: %q", got)
	}
}

func TestCompileRepeatedVariableInOneAtom(t *testing.T) {
	c := dlog.MustParseClause("loop(X) :- e(X, X).")
	rs, err := CompileRule(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := rs.SQL(ident)
	if !strings.Contains(got, "t0.c1 = t0.c0") {
		t.Fatalf("self-equality missing: %q", got)
	}
}

func TestCompileQuotedConstant(t *testing.T) {
	c := dlog.MustParseClause(`p(X) :- e(X, "o'brien").`)
	rs, err := CompileRule(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rs.SQL(ident), "'o''brien'") {
		t.Fatalf("quote escaping: %q", rs.SQL(ident))
	}
}

func TestCompileCliqueOccurrences(t *testing.T) {
	c := dlog.MustParseClause("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
	rs, err := CompileRule(c, map[string]bool{"anc": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.CliqueOccs) != 1 || rs.CliqueOccs[0] != 1 {
		t.Fatalf("clique occs = %v", rs.CliqueOccs)
	}
	// Nonlinear rule: two occurrences.
	c2 := dlog.MustParseClause("anc(X, Y) :- anc(X, Z), anc(Z, Y).")
	rs2, _ := CompileRule(c2, map[string]bool{"anc": true})
	if len(rs2.CliqueOccs) != 2 {
		t.Fatalf("nonlinear occs = %v", rs2.CliqueOccs)
	}
}

func TestSQLWithTables(t *testing.T) {
	c := dlog.MustParseClause("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
	rs, err := CompileRule(c, map[string]bool{"anc": true})
	if err != nil {
		t.Fatal(err)
	}
	got := rs.SQLWithTables([]string{"edb_parent", "delta_anc"})
	if !strings.Contains(got, "FROM edb_parent t0, delta_anc t1") {
		t.Fatalf("table substitution: %q", got)
	}
}

func TestCompileFactRejected(t *testing.T) {
	c := dlog.MustParseClause("p(a).")
	if _, err := CompileRule(c, nil); err == nil {
		t.Fatal("fact compiled as rule")
	}
}

func TestBaseTable(t *testing.T) {
	if BaseTable("parent") != "edb_parent" {
		t.Fatal(BaseTable("parent"))
	}
	if BaseTable(BridgePrefix+"knows") != "edb_knows" {
		t.Fatal("bridge predicates must alias their original table")
	}
}

func TestGenerateProgram(t *testing.T) {
	rules := []dlog.Clause{
		dlog.MustParseClause("anc(X, Y) :- parent(X, Y)."),
		dlog.MustParseClause("anc(X, Y) :- parent(X, Z), anc(Z, Y)."),
		dlog.MustParseClause("named(X) :- anc(john, X)."),
	}
	g := pcg.Build(rules)
	a, err := pcg.Analyze(g, "named")
	if err != nil {
		t.Fatal(err)
	}
	types := map[string][]rel.Type{
		"anc":   {rel.TypeString, rel.TypeString},
		"named": {rel.TypeString},
	}
	prog, err := Generate(a.Order, types, a.BasePreds, "named")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(prog.Nodes))
	}
	if !prog.Nodes[0].Recursive || prog.Nodes[1].Recursive {
		t.Fatalf("node kinds wrong: %+v", prog.Nodes)
	}
	if prog.Schemas["anc"].String() != "(c0 CHAR, c1 CHAR)" {
		t.Fatalf("anc schema %v", prog.Schemas["anc"])
	}
	if len(prog.BasePreds) != 1 || prog.BasePreds[0] != "parent" {
		t.Fatalf("base preds %v", prog.BasePreds)
	}
	if prog.QueryPred != "named" {
		t.Fatalf("query pred %s", prog.QueryPred)
	}
}

func TestGenerateMissingTypes(t *testing.T) {
	rules := []dlog.Clause{dlog.MustParseClause("p(X) :- e(X).")}
	g := pcg.Build(rules)
	a, err := pcg.Analyze(g, "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(a.Order, map[string][]rel.Type{}, a.BasePreds, "p"); err == nil {
		t.Fatal("missing types accepted")
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	// Head variable not in body (constructed directly; the parser-level
	// validators would also catch it).
	c := dlog.Clause{
		Head: dlog.NewAtom("p", dlog.V("X"), dlog.V("Y")),
		Body: []dlog.Atom{dlog.NewAtom("e", dlog.V("X"))},
	}
	if _, err := CompileRule(c, nil); err == nil {
		t.Fatal("unsafe rule compiled")
	}
}

func TestExplain(t *testing.T) {
	rules := []dlog.Clause{
		dlog.MustParseClause("anc(X, Y) :- parent(X, Y)."),
		dlog.MustParseClause("anc(X, Y) :- parent(X, Z), anc(Z, Y)."),
	}
	g := pcg.Build(rules)
	a, err := pcg.Analyze(g, "anc")
	if err != nil {
		t.Fatal(err)
	}
	types := map[string][]rel.Type{"anc": {rel.TypeString, rel.TypeString}}
	prog, err := Generate(a.Order, types, a.BasePreds, "anc")
	if err != nil {
		t.Fatal(err)
	}
	prog.Seeds = []SeedFact{{Pred: "anc", Tuple: rel.Tuple{rel.NewString("a"), rel.NewString("b")}}}
	out := prog.Explain()
	for _, want := range []string{
		"query predicate: anc",
		"seeds:",
		"anc(a, b)",
		"node 1 (clique): anc",
		"exit ",
		"rec ",
		"edb_parent",
		"<anc>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}
