package plan

import (
	"fmt"
	"testing"

	"dkbms/internal/catalog"
	"dkbms/internal/exec"
	"dkbms/internal/rel"
	"dkbms/internal/sql"
	"dkbms/internal/storage"
)

func setup(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.Open(storage.NewMemPager(1024))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func addTable(t *testing.T, c *catalog.Catalog, name string, rows int) *catalog.Table {
	t.Helper()
	tb, err := c.CreateTable(name, rel.MustSchema(
		rel.Column{Name: "a", Type: rel.TypeInt},
		rel.Column{Name: "b", Type: rel.TypeInt},
	), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(rel.Tuple{rel.NewInt(int64(i)), rel.NewInt(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func build(t *testing.T, c *catalog.Catalog, q string) exec.Operator {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildSelect(c, st.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// unwrap strips Project/Filter/Distinct to reach the join/scan spine.
func unwrap(op exec.Operator) exec.Operator {
	for {
		switch v := op.(type) {
		case *exec.Project:
			op = v.Input
		case *exec.Filter:
			op = v.Input
		case *exec.Distinct:
			op = v.Input
		default:
			return op
		}
	}
}

func TestPlanUsesIndexScanForLiteralEquality(t *testing.T) {
	c := setup(t)
	addTable(t, c, "e", 100)
	if _, err := c.CreateIndex("e_a", "e", []string{"a"}, false); err != nil {
		t.Fatal(err)
	}
	op := unwrap(build(t, c, "SELECT b FROM e WHERE a = 5"))
	if _, ok := op.(*exec.IndexScan); !ok {
		t.Fatalf("expected IndexScan, got %T", op)
	}
	// Without a usable index: SeqScan under the filter.
	op2 := unwrap(build(t, c, "SELECT a FROM e WHERE b = 5"))
	if _, ok := op2.(*exec.SeqScan); !ok {
		t.Fatalf("expected SeqScan, got %T", op2)
	}
}

func TestPlanPrefersIndexJoinOnLargeIndexedInner(t *testing.T) {
	c := setup(t)
	addTable(t, c, "small", 5)
	addTable(t, c, "big", 500)
	if _, err := c.CreateIndex("big_a", "big", []string{"a"}, false); err != nil {
		t.Fatal(err)
	}
	op := unwrap(build(t, c, "SELECT s.b FROM small s, big g WHERE s.a = g.a"))
	if _, ok := op.(*exec.IndexNLJoin); !ok {
		t.Fatalf("expected IndexNLJoin, got %T", op)
	}
}

func TestPlanHashJoinWhenNoIndex(t *testing.T) {
	c := setup(t)
	addTable(t, c, "small", 5)
	addTable(t, c, "big", 500)
	op := unwrap(build(t, c, "SELECT s.b FROM small s, big g WHERE s.a = g.a"))
	if _, ok := op.(*exec.HashJoin); !ok {
		t.Fatalf("expected HashJoin, got %T", op)
	}
}

func TestPlanHashJoinForSmallInner(t *testing.T) {
	c := setup(t)
	addTable(t, c, "a1", 10)
	addTable(t, c, "a2", 20) // below indexJoinThreshold
	if _, err := c.CreateIndex("a2_a", "a2", []string{"a"}, false); err != nil {
		t.Fatal(err)
	}
	op := unwrap(build(t, c, "SELECT t.b FROM a1 t, a2 u WHERE t.a = u.a"))
	if _, ok := op.(*exec.HashJoin); !ok {
		t.Fatalf("expected HashJoin for a small inner, got %T", op)
	}
}

func TestPlanStartsFromFilteredTable(t *testing.T) {
	// Even though big has 100x the rows, the literal-equality filter on
	// its indexed column makes it the cheapest start — the estimate
	// must use the posting count, not the raw size.
	c := setup(t)
	addTable(t, c, "mid", 50)
	addTable(t, c, "big", 500)
	if _, err := c.CreateIndex("big_a", "big", []string{"a"}, false); err != nil {
		t.Fatal(err)
	}
	op := unwrap(build(t, c, "SELECT m.b FROM mid m, big g WHERE g.a = 5 AND g.b = m.a"))
	// Plan shape: join with big's access path on the LEFT (it is the
	// start table). The left side of the join chain is an IndexScan.
	switch j := op.(type) {
	case *exec.HashJoin:
		if _, ok := unwrap(j.Left).(*exec.IndexScan); !ok {
			t.Fatalf("expected IndexScan start, got %T", unwrap(j.Left))
		}
	case *exec.IndexNLJoin:
		if _, ok := unwrap(j.Left).(*exec.IndexScan); !ok {
			t.Fatalf("expected IndexScan start, got %T", unwrap(j.Left))
		}
	default:
		t.Fatalf("unexpected join %T", op)
	}
}

func TestPlanCrossJoinFallback(t *testing.T) {
	c := setup(t)
	addTable(t, c, "x1", 3)
	addTable(t, c, "x2", 3)
	op := unwrap(build(t, c, "SELECT * FROM x1, x2"))
	if _, ok := op.(*exec.NLJoin); !ok {
		t.Fatalf("expected NLJoin, got %T", op)
	}
}

func TestPlanResultsIdenticalAcrossJoinStrategies(t *testing.T) {
	// The same query over identical data, with and without the index
	// that flips the join strategy, must agree.
	run := func(withIndex bool) map[string]bool {
		c := setup(t)
		addTable(t, c, "small", 8)
		addTable(t, c, "big", 300)
		if withIndex {
			if _, err := c.CreateIndex("big_a", "big", []string{"a"}, false); err != nil {
				t.Fatal(err)
			}
		}
		op := build(t, c, "SELECT s.a, g.b FROM small s, big g WHERE s.a = g.a")
		rows, err := exec.Collect(op)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, tu := range rows {
			out[tu.String()] = true
		}
		return out
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("row sets differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("missing row %s", k)
		}
	}
}

func TestBindTablePred(t *testing.T) {
	c := setup(t)
	tb := addTable(t, c, "e", 10)
	st, err := sql.Parse("SELECT a FROM e WHERE a >= 3 AND b <> 1")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := BindTablePred(tb, st.(*sql.Select).Where)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tb.Scan(func(_ storage.RID, tu rel.Tuple) error {
		if pred.Holds(tu) {
			n++
		}
		return nil
	})
	// a in 3..9 minus b==1 (a=1 excluded already; b = a%10 so b==1 only
	// at a=1): 7 rows.
	if n != 7 {
		t.Fatalf("matched %d", n)
	}
	// Unknown column errors.
	st2, _ := sql.Parse("SELECT a FROM e WHERE zz = 3")
	if _, err := BindTablePred(tb, st2.(*sql.Select).Where); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestPlanManyTablesChain(t *testing.T) {
	// A 5-way chain join must produce a correct plan regardless of
	// greedy ordering decisions.
	c := setup(t)
	for i := 0; i < 5; i++ {
		addTable(t, c, fmt.Sprintf("t%d", i), 30+10*i)
	}
	q := "SELECT t0.a FROM t0, t1, t2, t3, t4 WHERE t0.b = t1.b AND t1.b = t2.b AND t2.b = t3.b AND t3.b = t4.b AND t0.a = 3"
	rows, err := exec.Collect(build(t, c, q))
	if err != nil {
		t.Fatal(err)
	}
	// b = 3%10 = 3 for t0.a=3; each table has rows with b=3: t_i has
	// (30+10i)/10 = 3+i such rows. Join count = 1 * 4 * 5 * 6 * 7.
	if want := 4 * 5 * 6 * 7; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}
