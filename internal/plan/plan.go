// Package plan turns parsed SQL SELECT statements into physical operator
// trees. The planner is the classic textbook pipeline the paper's
// commercial DBMS would run:
//
//   - predicate analysis: split the WHERE clause into per-table
//     conjuncts (pushed below joins), equijoin conjuncts (drive hash
//     joins) and residual predicates (applied once their tables are
//     joined);
//   - access-path selection: a table with equality-on-literal conjuncts
//     matching a B+tree index prefix is read through an IndexScan,
//     everything else through a SeqScan;
//   - greedy join ordering on maintained row counts, preferring
//     equijoin-connected tables (hash join) and falling back to nested
//     loops for disconnected or non-equi predicates.
package plan

import (
	"fmt"

	"dkbms/internal/catalog"
	"dkbms/internal/exec"
	"dkbms/internal/rel"
	"dkbms/internal/sql"
)

// TableSource resolves FROM-clause names to physical tables. The live
// catalog implements it directly; a snapshot-bound db.DB view resolves
// base-table names to frozen table versions instead, which is how the
// planner binds a whole query to one consistent engine state.
type TableSource interface {
	Table(name string) *catalog.Table
}

// BuildSelect plans a (possibly compound) SELECT against the source.
func BuildSelect(cat TableSource, s *sql.Select) (exec.Operator, error) {
	left, err := buildSimple(cat, s)
	if err != nil {
		return nil, err
	}
	for cur := s; cur.SetOp != sql.SetNone; cur = cur.Next {
		right, err := buildSimple(cat, cur.Next)
		if err != nil {
			return nil, err
		}
		var kind exec.SetOpKind
		switch cur.SetOp {
		case sql.SetUnion:
			kind = exec.OpUnion
		case sql.SetUnionAll:
			kind = exec.OpUnionAll
		case sql.SetExcept:
			kind = exec.OpExcept
		case sql.SetIntersect:
			kind = exec.OpIntersect
		}
		left = &exec.SetOpExec{Kind: kind, Left: left, Right: right}
	}
	return left, nil
}

// colID names a column symbolically: table position in FROM, ordinal in
// that table's schema. Predicates are analyzed symbolically and bound to
// physical ordinals only when attached to an operator.
type colID struct {
	table int
	col   int
}

// symScalar is a column or literal leaf.
type symScalar struct {
	isCol bool
	col   colID
	ty    rel.Type
	val   rel.Value
}

// symPred mirrors the sql predicate tree with resolved leaves.
type symPred interface{ tables(set map[int]bool) }

type symCmp struct {
	op          sql.CmpOp
	left, right symScalar
}

type symAnd struct{ left, right symPred }
type symOr struct{ left, right symPred }
type symNot struct{ inner symPred }

func (c symCmp) tables(set map[int]bool) {
	if c.left.isCol {
		set[c.left.col.table] = true
	}
	if c.right.isCol {
		set[c.right.col.table] = true
	}
}
func (a symAnd) tables(set map[int]bool) { a.left.tables(set); a.right.tables(set) }
func (o symOr) tables(set map[int]bool)  { o.left.tables(set); o.right.tables(set) }
func (n symNot) tables(set map[int]bool) { n.inner.tables(set) }

func tablesOf(p symPred) map[int]bool {
	set := make(map[int]bool)
	p.tables(set)
	return set
}

// scope resolves names during planning.
type scope struct {
	aliases []string
	tables  []*catalog.Table
}

func (sc *scope) resolve(c sql.ColRef) (colID, rel.Type, error) {
	if c.Table != "" {
		for i, a := range sc.aliases {
			if a == c.Table {
				o := sc.tables[i].Schema.Ordinal(c.Column)
				if o < 0 {
					return colID{}, 0, fmt.Errorf("plan: no column %s in %s", c.Column, c.Table)
				}
				return colID{table: i, col: o}, sc.tables[i].Schema.Col(o).Type, nil
			}
		}
		return colID{}, 0, fmt.Errorf("plan: unknown table alias %s", c.Table)
	}
	found := -1
	ord := -1
	for i, t := range sc.tables {
		if o := t.Schema.Ordinal(c.Column); o >= 0 {
			if found >= 0 {
				return colID{}, 0, fmt.Errorf("plan: ambiguous column %s", c.Column)
			}
			found, ord = i, o
		}
	}
	if found < 0 {
		return colID{}, 0, fmt.Errorf("plan: unknown column %s", c.Column)
	}
	return colID{table: found, col: ord}, sc.tables[found].Schema.Col(ord).Type, nil
}

func (sc *scope) scalar(e sql.Expr) (symScalar, error) {
	switch v := e.(type) {
	case sql.ColRef:
		id, ty, err := sc.resolve(v)
		if err != nil {
			return symScalar{}, err
		}
		return symScalar{isCol: true, col: id, ty: ty}, nil
	case sql.Literal:
		return symScalar{val: v.Value, ty: v.Value.Kind}, nil
	default:
		return symScalar{}, fmt.Errorf("plan: unsupported scalar %T", e)
	}
}

func (sc *scope) pred(e sql.Expr) (symPred, error) {
	switch v := e.(type) {
	case sql.Compare:
		l, err := sc.scalar(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := sc.scalar(v.Right)
		if err != nil {
			return nil, err
		}
		if l.ty != r.ty {
			return nil, fmt.Errorf("plan: type mismatch in comparison: %v vs %v", l.ty, r.ty)
		}
		return symCmp{op: v.Op, left: l, right: r}, nil
	case sql.And:
		l, err := sc.pred(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := sc.pred(v.Right)
		if err != nil {
			return nil, err
		}
		return symAnd{left: l, right: r}, nil
	case sql.Or:
		l, err := sc.pred(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := sc.pred(v.Right)
		if err != nil {
			return nil, err
		}
		return symOr{left: l, right: r}, nil
	case sql.Not:
		in, err := sc.pred(v.Inner)
		if err != nil {
			return nil, err
		}
		return symNot{inner: in}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported predicate %T", e)
	}
}

// splitConjuncts flattens top-level ANDs.
func splitConjuncts(p symPred) []symPred {
	if a, ok := p.(symAnd); ok {
		return append(splitConjuncts(a.left), splitConjuncts(a.right)...)
	}
	return []symPred{p}
}

// colMap tracks where each symbolic column currently lives in the plan's
// output tuple.
type colMap map[colID]int

// bind converts a symbolic predicate to a physical one via the map.
func bind(p symPred, m colMap) (exec.Pred, error) {
	switch v := p.(type) {
	case symCmp:
		l, err := bindScalar(v.left, m)
		if err != nil {
			return nil, err
		}
		r, err := bindScalar(v.right, m)
		if err != nil {
			return nil, err
		}
		return exec.Cmp{Op: v.op, Left: l, Right: r}, nil
	case symAnd:
		l, err := bind(v.left, m)
		if err != nil {
			return nil, err
		}
		r, err := bind(v.right, m)
		if err != nil {
			return nil, err
		}
		return exec.AndP{Preds: []exec.Pred{l, r}}, nil
	case symOr:
		l, err := bind(v.left, m)
		if err != nil {
			return nil, err
		}
		r, err := bind(v.right, m)
		if err != nil {
			return nil, err
		}
		return exec.OrP{Left: l, Right: r}, nil
	case symNot:
		in, err := bind(v.inner, m)
		if err != nil {
			return nil, err
		}
		return exec.NotP{Inner: in}, nil
	default:
		return nil, fmt.Errorf("plan: unknown symbolic predicate %T", p)
	}
}

func bindScalar(s symScalar, m colMap) (exec.Scalar, error) {
	if !s.isCol {
		return exec.Const{Val: s.val}, nil
	}
	ord, ok := m[s.col]
	if !ok {
		return nil, fmt.Errorf("plan: column %v not available at this point in the plan", s.col)
	}
	return exec.Col{Ord: ord, Ty: s.ty}, nil
}

// equijoin detects a cross-table equality comparison.
func equijoin(p symPred) (l, r colID, ok bool) {
	c, isCmp := p.(symCmp)
	if !isCmp || c.op != sql.CmpEq || !c.left.isCol || !c.right.isCol {
		return colID{}, colID{}, false
	}
	if c.left.col.table == c.right.col.table {
		return colID{}, colID{}, false
	}
	return c.left.col, c.right.col, true
}

func buildSimple(cat TableSource, s *sql.Select) (exec.Operator, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("plan: empty FROM")
	}
	sc := &scope{}
	seen := make(map[string]bool)
	for _, tr := range s.From {
		t := cat.Table(tr.Table)
		if t == nil {
			return nil, fmt.Errorf("plan: no table %s", tr.Table)
		}
		if seen[tr.Alias] {
			return nil, fmt.Errorf("plan: duplicate alias %s", tr.Alias)
		}
		seen[tr.Alias] = true
		sc.aliases = append(sc.aliases, tr.Alias)
		sc.tables = append(sc.tables, t)
	}

	// Classify predicates.
	var tablePreds = make([][]symPred, len(sc.tables))
	type joinPred struct{ l, r colID }
	var joinPreds []joinPred
	var residuals []symPred
	if s.Where != nil {
		p, err := sc.pred(s.Where)
		if err != nil {
			return nil, err
		}
		for _, conj := range splitConjuncts(p) {
			ts := tablesOf(conj)
			switch {
			case len(ts) <= 1:
				ti := 0
				for t := range ts {
					ti = t
				}
				tablePreds[ti] = append(tablePreds[ti], conj)
			default:
				if l, r, ok := equijoin(conj); ok {
					joinPreds = append(joinPreds, joinPred{l, r})
				} else {
					residuals = append(residuals, conj)
				}
			}
		}
	}

	// Per-table equality-on-literal columns (for index selection) and
	// cardinality estimates after local predicates. When an index
	// covers the literal key the estimate is the exact posting count.
	eqLits := make([]map[int]rel.Value, len(sc.tables))
	estimates := make([]int, len(sc.tables))
	for ti := range sc.tables {
		t := sc.tables[ti]
		eqLit := make(map[int]rel.Value)
		for _, p := range tablePreds[ti] {
			if c, ok := p.(symCmp); ok && c.op == sql.CmpEq {
				if c.left.isCol && !c.right.isCol {
					eqLit[c.left.col.col] = c.right.val
				} else if c.right.isCol && !c.left.isCol {
					eqLit[c.right.col.col] = c.left.val
				}
			}
		}
		eqLits[ti] = eqLit
		estimates[ti] = t.Rows()
		if len(eqLit) > 0 {
			if best := pickIndex(t, eqLit); best != nil {
				key := indexKey(best, eqLit)
				estimates[ti] = len(best.LookupPrefix(key))
			} else {
				// Unindexed literal equality: assume strong filtering.
				estimates[ti] = t.Rows()/10 + 1
			}
		}
	}

	// Access path per table: returns the operator and the table-local
	// column map.
	access := func(ti int) (exec.Operator, error) {
		t := sc.tables[ti]
		local := make(colMap, t.Schema.Len())
		for c := 0; c < t.Schema.Len(); c++ {
			local[colID{table: ti, col: c}] = c
		}
		eqLit := eqLits[ti]
		var op exec.Operator
		if len(eqLit) > 0 {
			if best := pickIndex(t, eqLit); best != nil {
				op = exec.NewIndexScan(t, best, indexKey(best, eqLit))
			}
		}
		if op == nil {
			op = exec.NewSeqScan(t)
		}
		// Attach all table predicates (the index may cover only some;
		// re-checking the covered equalities is cheap and keeps the
		// planner simple and the executor obviously correct).
		if len(tablePreds[ti]) > 0 {
			var preds []exec.Pred
			for _, p := range tablePreds[ti] {
				bp, err := bind(p, local)
				if err != nil {
					return nil, err
				}
				preds = append(preds, bp)
			}
			op = &exec.Filter{Input: op, Pred: exec.AndOf(preds)}
		}
		return op, nil
	}

	// Greedy join order.
	n := len(sc.tables)
	joined := make(map[int]bool)
	// Start with the table estimated smallest after local predicates.
	start := 0
	for i := 1; i < n; i++ {
		if estimates[i] < estimates[start] {
			start = i
		}
	}
	cur, err := access(start)
	if err != nil {
		return nil, err
	}
	joined[start] = true
	m := make(colMap)
	for c := 0; c < sc.tables[start].Schema.Len(); c++ {
		m[colID{table: start, col: c}] = c
	}
	width := sc.tables[start].Schema.Len()

	usedJoin := make([]bool, len(joinPreds))
	usedResidual := make([]bool, len(residuals))

	attachResiduals := func() error {
		var preds []exec.Pred
		for i, r := range residuals {
			if usedResidual[i] {
				continue
			}
			ok := true
			for t := range tablesOf(r) {
				if !joined[t] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			bp, err := bind(r, m)
			if err != nil {
				return err
			}
			preds = append(preds, bp)
			usedResidual[i] = true
		}
		if len(preds) > 0 {
			cur = &exec.Filter{Input: cur, Pred: exec.AndOf(preds)}
		}
		return nil
	}
	if err := attachResiduals(); err != nil {
		return nil, err
	}

	for len(joined) < n {
		// Candidate: unjoined table connected by an equijoin.
		cand := -1
		for _, jp := range joinPreds {
			var newT int
			switch {
			case joined[jp.l.table] && !joined[jp.r.table]:
				newT = jp.r.table
			case joined[jp.r.table] && !joined[jp.l.table]:
				newT = jp.l.table
			default:
				continue
			}
			if cand < 0 || estimates[newT] < estimates[cand] {
				cand = newT
			}
		}
		if cand >= 0 {
			var lords, rords []int
			for i, jp := range joinPreds {
				if usedJoin[i] {
					continue
				}
				var inner, outer colID
				switch {
				case joined[jp.l.table] && jp.r.table == cand:
					inner, outer = jp.l, jp.r
				case joined[jp.r.table] && jp.l.table == cand:
					inner, outer = jp.r, jp.l
				default:
					continue
				}
				lords = append(lords, m[inner])
				rords = append(rords, outer.col)
				usedJoin[i] = true
			}
			op, err := buildJoin(sc, cand, cur, lords, rords, tablePreds[cand], m, width, access)
			if err != nil {
				return nil, err
			}
			cur = op
			for c := 0; c < sc.tables[cand].Schema.Len(); c++ {
				m[colID{table: cand, col: c}] = width + c
			}
			width += sc.tables[cand].Schema.Len()
			joined[cand] = true
		} else {
			// No equijoin available: cross join with the smallest
			// remaining table; residuals attach right after.
			small := -1
			for i := 0; i < n; i++ {
				if !joined[i] && (small < 0 || estimates[i] < estimates[small]) {
					small = i
				}
			}
			right, err := access(small)
			if err != nil {
				return nil, err
			}
			cur = &exec.NLJoin{Left: cur, Right: right, Pred: exec.True{}}
			for c := 0; c < sc.tables[small].Schema.Len(); c++ {
				m[colID{table: small, col: c}] = width + c
			}
			width += sc.tables[small].Schema.Len()
			joined[small] = true
		}
		if err := attachResiduals(); err != nil {
			return nil, err
		}
	}

	// Join predicates between already-joined tables that the greedy
	// order didn't consume become filters.
	var lateJoin []exec.Pred
	for i, jp := range joinPreds {
		if usedJoin[i] {
			continue
		}
		lo, lok := m[jp.l]
		ro, rok := m[jp.r]
		if !lok || !rok {
			return nil, fmt.Errorf("plan: unbound join predicate")
		}
		lt := sc.tables[jp.l.table].Schema.Col(jp.l.col).Type
		rt := sc.tables[jp.r.table].Schema.Col(jp.r.col).Type
		lateJoin = append(lateJoin, exec.Cmp{Op: sql.CmpEq, Left: exec.Col{Ord: lo, Ty: lt}, Right: exec.Col{Ord: ro, Ty: rt}})
	}
	if len(lateJoin) > 0 {
		cur = &exec.Filter{Input: cur, Pred: exec.AndOf(lateJoin)}
	}
	for i := range residuals {
		if !usedResidual[i] {
			return nil, fmt.Errorf("plan: residual predicate left unattached")
		}
	}

	// COUNT(*) replaces the projection.
	if s.CountStar {
		return &exec.CountStar{Input: cur}, nil
	}

	// Projection.
	proj, outSchema, err := projection(sc, s, m)
	if err != nil {
		return nil, err
	}
	if proj != nil {
		cur = &exec.Project{Input: cur, Exprs: proj, Out: outSchema}
	}
	if s.Distinct {
		cur = &exec.Distinct{Input: cur}
	}
	return cur, nil
}

// projection resolves the select list. A nil scalar list means the input
// already has the right shape ('*' over a single table).
func projection(sc *scope, s *sql.Select, m colMap) ([]exec.Scalar, *rel.Schema, error) {
	if len(s.Items) == 0 {
		// '*': all columns in FROM order.
		if len(sc.tables) == 1 {
			return nil, nil, nil // pass through
		}
		var exprs []exec.Scalar
		var cols []rel.Column
		nameCount := make(map[string]int)
		for ti, t := range sc.tables {
			for c := 0; c < t.Schema.Len(); c++ {
				col := t.Schema.Col(c)
				exprs = append(exprs, exec.Col{Ord: m[colID{table: ti, col: c}], Ty: col.Type})
				cols = append(cols, rel.Column{Name: uniqueName(nameCount, col.Name), Type: col.Type})
			}
		}
		schema, err := rel.NewSchema(cols...)
		if err != nil {
			return nil, nil, err
		}
		return exprs, schema, nil
	}
	var exprs []exec.Scalar
	var cols []rel.Column
	nameCount := make(map[string]int)
	for _, item := range s.Items {
		ss, err := sc.scalar(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		phys, err := bindScalar(ss, m)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, phys)
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(sql.ColRef); ok {
				name = cr.Column
			} else {
				name = "expr"
			}
		}
		cols = append(cols, rel.Column{Name: uniqueName(nameCount, name), Type: ss.ty})
	}
	schema, err := rel.NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return exprs, schema, nil
}

func uniqueName(count map[string]int, name string) string {
	count[name]++
	if count[name] == 1 {
		return name
	}
	return fmt.Sprintf("%s_%d", name, count[name])
}

// indexJoinThreshold is the inner-table size above which an index
// nested-loop join is preferred over building a hash table on the whole
// inner relation. Below it the hash build is cheap enough that probing
// overhead is not worth plan complexity.
const indexJoinThreshold = 64

// buildJoin attaches the candidate table to the current plan. It
// prefers an index nested-loop join when the inner table is large and
// carries a B+tree whose leading columns are join columns; otherwise it
// falls back to a hash join over the candidate's filtered access path.
//
// lords are probe-side ordinals in cur's output; rords are the matching
// column ordinals in the candidate table. tPreds are the candidate's
// single-table predicates (symbolic); m/width describe cur's output
// before the join.
func buildJoin(sc *scope, cand int, cur exec.Operator, lords, rords []int,
	tPreds []symPred, m colMap, width int,
	access func(int) (exec.Operator, error)) (exec.Operator, error) {

	t := sc.tables[cand]
	// Equality-on-literal columns disqualify the index join shortcut:
	// the filtered access path (possibly its own IndexScan) is already
	// selective, and the hash build is over the filtered rows only.
	hasEqLit := false
	for _, p := range tPreds {
		if c, ok := p.(symCmp); ok && c.op == sql.CmpEq && (c.left.isCol != c.right.isCol) {
			hasEqLit = true
		}
	}
	if !hasEqLit && t.Rows() > indexJoinThreshold {
		if idx, keyLords, residual := matchJoinIndex(t, lords, rords, m, width, tPreds); idx != nil {
			return &exec.IndexNLJoin{
				Left:     cur,
				Right:    t,
				Index:    idx,
				LeftOrds: keyLords,
				Residual: residual,
			}, nil
		}
	}
	right, err := access(cand)
	if err != nil {
		return nil, err
	}
	return &exec.HashJoin{Left: cur, Right: right, LeftOrds: lords, RightOrds: rords}, nil
}

// matchJoinIndex finds the candidate-table index whose leading columns
// are all join columns, maximizing the covered prefix. It returns the
// probe-key ordinals (in cur's output) aligned with the index columns,
// and the residual predicate: uncovered join equalities plus the
// candidate's single-table predicates, both over the concatenated
// output.
func matchJoinIndex(t *catalog.Table, lords, rords []int, m colMap, width int, tPreds []symPred) (*catalog.Index, []int, exec.Pred) {
	var best *catalog.Index
	bestLen := 0
	for _, idx := range t.Indexes {
		l := 0
		for _, io := range idx.Ords {
			found := false
			for _, ro := range rords {
				if ro == io {
					found = true
					break
				}
			}
			if !found {
				break
			}
			l++
		}
		if l > bestLen {
			best, bestLen = idx, l
		}
	}
	if best == nil {
		return nil, nil, nil
	}
	keyLords := make([]int, bestLen)
	covered := make([]bool, len(rords))
	for i := 0; i < bestLen; i++ {
		for k, ro := range rords {
			if ro == best.Ords[i] && !covered[k] {
				keyLords[i] = lords[k]
				covered[k] = true
				break
			}
		}
	}
	var preds []exec.Pred
	for k, ro := range rords {
		if covered[k] {
			continue
		}
		ty := t.Schema.Col(ro).Type
		preds = append(preds, exec.Cmp{
			Op:    sql.CmpEq,
			Left:  exec.Col{Ord: lords[k], Ty: ty},
			Right: exec.Col{Ord: width + ro, Ty: ty},
		})
	}
	// Candidate's single-table predicates, re-anchored to the join
	// output (its columns start at width).
	if len(tPreds) > 0 {
		local := make(colMap)
		for p := range m {
			local[p] = m[p]
		}
		// The candidate's own columns are not in m yet; bind against a
		// temporary map extended with them.
		for c := 0; c < t.Schema.Len(); c++ {
			// The symbolic predicates reference (candTable, col); we do
			// not know cand's index here, so recover it from the preds
			// themselves below.
			_ = c
		}
		for _, sp := range tPreds {
			ext := make(colMap)
			for id, o := range local {
				ext[id] = o
			}
			for ti := range tablesOf(sp) {
				for c := 0; c < t.Schema.Len(); c++ {
					ext[colID{table: ti, col: c}] = width + c
				}
			}
			bp, err := bind(sp, ext)
			if err != nil {
				// Binding can only fail on planner bugs; fall back to
				// hash join by reporting no index.
				return nil, nil, nil
			}
			preds = append(preds, bp)
		}
	}
	return best, keyLords, exec.AndOf(preds)
}

// indexKey builds the probe key for pickIndex's chosen index from the
// literal equality bindings.
func indexKey(idx *catalog.Index, eqLit map[int]rel.Value) rel.Tuple {
	key := make(rel.Tuple, 0, len(idx.Ords))
	for _, o := range idx.Ords {
		v, ok := eqLit[o]
		if !ok {
			break
		}
		key = append(key, v)
	}
	return key
}

// pickIndex chooses the index with the longest fully-bound prefix among
// the equality columns.
func pickIndex(t *catalog.Table, eqLit map[int]rel.Value) *catalog.Index {
	var best *catalog.Index
	bestLen := 0
	for _, idx := range t.Indexes {
		l := 0
		for _, o := range idx.Ords {
			if _, ok := eqLit[o]; !ok {
				break
			}
			l++
		}
		if l > bestLen {
			best, bestLen = idx, l
		}
	}
	return best
}
