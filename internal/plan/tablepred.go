package plan

import (
	"dkbms/internal/catalog"
	"dkbms/internal/exec"
	"dkbms/internal/sql"
)

// BindTablePred resolves a predicate against a single table's schema
// (ordinals are table-local). DELETE ... WHERE uses this.
func BindTablePred(t *catalog.Table, e sql.Expr) (exec.Pred, error) {
	sc := &scope{aliases: []string{t.Name}, tables: []*catalog.Table{t}}
	p, err := sc.pred(e)
	if err != nil {
		return nil, err
	}
	m := make(colMap, t.Schema.Len())
	for c := 0; c < t.Schema.Len(); c++ {
		m[colID{table: 0, col: c}] = c
	}
	return bind(p, m)
}
