package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dkbms"
	"dkbms/internal/client"
	"dkbms/internal/obs"
	"dkbms/internal/server"
	"dkbms/internal/wire"
)

const baseProgram = `
parent(c0, c1). parent(c1, c2). parent(c2, c3). parent(c3, c4).
parent(c4, c5). parent(c5, c6). parent(c6, c7). parent(c7, c8).
parent(c8, c9).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`

// startServer runs a server over tb on a loopback port and returns its
// address, a cancel func, and the channel Serve's result lands on.
func startServer(t *testing.T, tb *dkbms.ConcurrentTestbed, opts server.Options) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	srv := server.New(tb, opts)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	select {
	case addr := <-ready:
		return addr.String(), cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("server did not start: %v", err)
		return "", nil, nil
	}
}

// rowSet flattens a result into a sorted, comparable form.
func rowSet(rows []string) string {
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func wireRows(res *wire.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, tu := range res.Rows {
		var cells []string
		for _, v := range tu {
			cells = append(cells, v.String())
		}
		out = append(out, strings.Join(cells, ","))
	}
	return out
}

func localRows(res *dkbms.QueryResult) []string {
	out := make([]string, 0, len(res.Rows))
	for _, tu := range res.Rows {
		var cells []string
		for _, v := range tu {
			cells = append(cells, v.String())
		}
		out = append(out, strings.Join(cells, ","))
	}
	return out
}

func TestServerBasic(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	addr, cancel, done := startServer(t, tb, server.Options{})
	defer func() { cancel(); <-done }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("?- ancestor(c0, X).", wire.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("query returned %d rows, want 9", len(res.Rows))
	}

	// The remote result must match a single-threaded testbed exactly.
	ref := dkbms.NewMemory()
	defer ref.Close()
	if err := ref.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query("?- ancestor(c0, X).", &dkbms.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := rowSet(wireRows(res)), rowSet(localRows(want)); got != exp {
		t.Fatalf("remote result diverges from local:\nremote:\n%s\nlocal:\n%s", got, exp)
	}

	// Prepared queries survive rule-base changes via recompilation.
	stmt, err := c.Prepare("?- ancestor(X, c9).", wire.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 9 {
		t.Fatalf("prepared exec: %d rows, want 9", len(r1.Rows))
	}
	if err := c.Load("parent(pre, c0)."); err != nil {
		t.Fatal(err)
	}
	r2, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != 10 {
		t.Fatalf("prepared exec after load: %d rows, want 10", len(r2.Rows))
	}

	// Retraction round-trips with a count.
	n, err := c.Retract("parent(pre, X)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("retracted %d, want 1", n)
	}

	// Errors come back as errors, not dead connections.
	if _, err := c.Query("?- undefined_pred(X).", wire.QueryOpts{}); err == nil {
		t.Fatal("query on undefined predicate succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after server-side error: %v", err)
	}

	// Repeated identical QUERYs on a standing D/KB hit the shared plan
	// cache, and the reply surfaces it along with buffer-pool traffic.
	for i := 0; i < 3; i++ {
		if _, err := c.Query("?- ancestor(c0, X).", wire.QueryOpts{}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 8 || st.Errors < 1 || st.ActiveSessions != 1 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("traffic counters empty: %+v", st)
	}
	if st.PlanResultHits < 2 || st.PlanMisses == 0 {
		t.Fatalf("plan-cache counters missing from stats: %+v", st)
	}
	if st.PoolHits == 0 {
		t.Fatalf("buffer-pool counters missing from stats: %+v", st)
	}
}

// TestServerStress runs 32 concurrent sessions mixing queries, prepared
// execution and occasional loads, then checks the final state against a
// single-threaded testbed.
func TestServerStress(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	if err := tb.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done := startServer(t, tb, server.Options{MaxConns: 64})
	defer func() { cancel(); <-done }()

	const (
		workers = 32
		iters   = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	var loadedMu sync.Mutex
	var loaded []string

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("worker %d: dial: %w", w, err)
				return
			}
			defer c.Close()
			stmt, err := c.Prepare("?- ancestor(c0, X).", wire.QueryOpts{})
			if err != nil {
				errs <- fmt.Errorf("worker %d: prepare: %w", w, err)
				return
			}
			for i := 0; i < iters; i++ {
				switch {
				// A few writers extend the chain below c9; everyone else
				// reads. Facts are only added, so ancestor(c0, _) grows
				// monotonically from its base size of 9.
				case w%8 == 0 && i%4 == 3:
					fact := fmt.Sprintf("parent(c9, x%d_%d).", w, i)
					if err := c.Load(fact); err != nil {
						errs <- fmt.Errorf("worker %d: load: %w", w, err)
						return
					}
					loadedMu.Lock()
					loaded = append(loaded, fact)
					loadedMu.Unlock()
				case i%2 == 0:
					res, err := c.Query("?- ancestor(c0, X).", wire.QueryOpts{})
					if err != nil {
						errs <- fmt.Errorf("worker %d: query: %w", w, err)
						return
					}
					if len(res.Rows) < 9 {
						errs <- fmt.Errorf("worker %d: query saw %d rows, want >= 9", w, len(res.Rows))
						return
					}
				default:
					res, err := stmt.Exec()
					if err != nil {
						errs <- fmt.Errorf("worker %d: exec: %w", w, err)
						return
					}
					if len(res.Rows) < 9 {
						errs <- fmt.Errorf("worker %d: exec saw %d rows, want >= 9", w, len(res.Rows))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Final state must be byte-identical to a single-threaded testbed
	// that performed the same loads.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("?- ancestor(c0, X).", wire.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ref := dkbms.NewMemory()
	defer ref.Close()
	if err := ref.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	loadedMu.Lock()
	refLoads := strings.Join(loaded, "\n")
	loadedMu.Unlock()
	if err := ref.Load(refLoads); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query("?- ancestor(c0, X).", &dkbms.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := rowSet(wireRows(res)), rowSet(localRows(want)); got != exp {
		t.Fatalf("final state diverges from single-threaded reference:\nserver:\n%s\nreference:\n%s", got, exp)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalSessions < workers {
		t.Fatalf("server saw %d sessions, want >= %d", st.TotalSessions, workers)
	}
	if st.Errors != 0 {
		t.Fatalf("server recorded %d request errors during stress", st.Errors)
	}
}

// TestGracefulShutdown checks that cancelling the context wakes idle
// sessions, refuses new connections, and returns from Serve.
func TestGracefulShutdown(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	addr, cancel, done := startServer(t, tb, server.Options{})

	// A few idle sessions block in their read loops.
	var clients []*client.Client
	for i := 0; i < 4; i++ {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel with idle sessions")
	}

	// Existing sessions are gone and new connections are refused.
	if err := clients[0].Ping(); err == nil {
		t.Fatal("ping succeeded on a drained session")
	}
	if c, err := client.Dial(addr); err == nil {
		defer c.Close()
		if err := c.Ping(); err == nil {
			t.Fatal("new session served after shutdown")
		}
	}
}

// TestMaxConnsBackpressure checks that over-limit clients queue rather
// than fail, and get served once a slot frees.
func TestMaxConnsBackpressure(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	addr, cancel, done := startServer(t, tb, server.Options{MaxConns: 1})
	defer func() { cancel(); <-done }()

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}

	// The second client queues in the listen backlog: its ping only
	// completes after c1 disconnects.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	pinged := make(chan error, 1)
	go func() { pinged <- c2.Ping() }()
	select {
	case err := <-pinged:
		t.Fatalf("second session served while at MaxConns (ping: %v)", err)
	case <-time.After(200 * time.Millisecond):
	}
	c1.Close()
	select {
	case err := <-pinged:
		if err != nil {
			t.Fatalf("queued session failed after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued session never served after slot freed")
	}
}

// TestQueryTraceOverWire sets the TRACE option bit on a QUERY frame and
// checks the span tree comes back in the RESULT: per-iteration deltas
// summing to the answer count, exactly as in a local traced query.
func TestQueryTraceOverWire(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	addr, cancel, done := startServer(t, tb, server.Options{})
	defer func() { cancel(); <-done }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load(baseProgram); err != nil {
		t.Fatal(err)
	}

	// Unbound ancestor over the 9-edge chain: closure = 9*10/2 = 45
	// tuples, each new in exactly one iteration.
	res, err := c.Query("?- ancestor(X, Y).", wire.QueryOpts{NoOptimize: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 45 {
		t.Fatalf("%d rows, want 45", len(res.Rows))
	}
	if res.Trace == nil {
		t.Fatal("TRACE bit set but RESULT carries no span tree")
	}
	var sum int64
	for _, it := range res.Trace.FindAll("iteration ") {
		if d, ok := it.Int("delta(ancestor)"); ok {
			sum += d
		}
	}
	if sum != 45 {
		t.Fatalf("wire-decoded iteration deltas sum to %d, want 45:\n%s",
			sum, obs.Adopt(res.Trace).Format())
	}
	if res.Trace.Find("compile") == nil || res.Trace.Find("eval") == nil {
		t.Fatalf("wire trace lacks compile/eval spans:\n%s", obs.Adopt(res.Trace).Format())
	}

	// Without the bit the result must stay trace-free, and the traced
	// exchange must not have poisoned the plan cache's memoized answer.
	plain, err := c.Query("?- ancestor(X, Y).", wire.QueryOpts{NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced query returned a trace")
	}
	if len(plain.Rows) != 45 {
		t.Fatalf("untraced query after traced one: %d rows, want 45", len(plain.Rows))
	}
}

// TestTypedErrorsOverWire checks that the ERROR frame's code byte maps
// server-side failures back onto the dkbms sentinels client-side.
func TestTypedErrorsOverWire(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	addr, cancel, done := startServer(t, tb, server.Options{})
	defer func() { cancel(); <-done }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Load("not a clause at all"); !errors.Is(err, dkbms.ErrParse) {
		t.Errorf("Load syntax error over wire: %v", err)
	}
	if _, err := c.Query("?- broken(", wire.QueryOpts{}); !errors.Is(err, dkbms.ErrParse) {
		t.Errorf("Query syntax error over wire: %v", err)
	}
	if _, err := c.Query("?- nosuch(X).", wire.QueryOpts{}); !errors.Is(err, dkbms.ErrUnknownPredicate) {
		t.Errorf("unknown predicate over wire: %v", err)
	}
	if err := c.Load("p(X)."); !errors.Is(err, dkbms.ErrSemantic) {
		t.Errorf("non-ground fact over wire: %v", err)
	}
	// The error text still reaches the caller verbatim-ish.
	_, err = c.Query("?- nosuch(X).", wire.QueryOpts{})
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error text lost over wire: %v", err)
	}
}

func TestSlowlogOverWire(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	if err := tb.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done := startServer(t, tb, server.Options{})
	defer func() { cancel(); <-done }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A traced query, a cache-hit repeat, and a failing query: all three
	// must land in the slow log (threshold 0 retains everything).
	if _, err := c.Query("?- ancestor(c0, W).", wire.QueryOpts{Trace: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("?- ancestor(c0, W).", wire.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("?- ancestor(c0, W).", wire.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("?- nosuch(X).", wire.QueryOpts{}); err == nil {
		t.Fatal("expected unknown-predicate error")
	}

	sl, err := c.Slowlog()
	if err != nil {
		t.Fatal(err)
	}
	if sl.Capacity != int64(obs.DefaultSlowLogSize) || sl.ThresholdNs != 0 {
		t.Fatalf("slowlog settings = %+v", sl)
	}
	if sl.Recorded != 4 || len(sl.Entries) != 4 {
		t.Fatalf("recorded %d entries (%d in snapshot), want 4", sl.Recorded, len(sl.Entries))
	}
	var traced, resultHit, failed *int
	for i := range sl.Entries {
		e := &sl.Entries[i]
		switch {
		case e.Trace != nil:
			traced = &i
			if e.Rows != 9 || e.Iterations == 0 {
				t.Errorf("traced entry: rows=%d iterations=%d", e.Rows, e.Iterations)
			}
			if e.Trace.Find("lfp") == nil && e.Trace.Find("eval") == nil && len(e.Trace.Children) == 0 {
				t.Errorf("retained trace is empty")
			}
		case e.Err != "":
			failed = &i
			if !strings.Contains(e.Err, "nosuch") {
				t.Errorf("failed entry err = %q", e.Err)
			}
		case e.Cache == "result":
			resultHit = &i
		}
		if e.Session == 0 {
			t.Errorf("entry %d has no session id", i)
		}
		if e.Query == "" {
			t.Errorf("entry %d has no query text", i)
		}
	}
	if traced == nil || failed == nil || resultHit == nil {
		t.Fatalf("missing entry kinds (traced=%v failed=%v resultHit=%v):\n%+v",
			traced != nil, failed != nil, resultHit != nil, sl.Entries)
	}
}

func TestDebugEndpoints(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	if err := tb.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Query("?- ancestor(c0, W).", nil); err != nil {
		t.Fatal(err)
	}
	srv := server.New(tb, server.Options{})
	hs := httptest.NewServer(srv.DebugHandler())
	defer hs.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /metrics is Prometheus text now; the JSON snapshot moved to
	// /metrics.json.
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE dkb_query_count counter",
		"# TYPE dkb_server_request_latency_ns summary",
		"dkb_runtime_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var metrics []obs.Metric
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	var hasTable, hasShard, hasRate bool
	for _, m := range metrics {
		if strings.HasPrefix(m.Name, "table.") {
			hasTable = true
		}
		if strings.HasPrefix(m.Name, "pool.shard.") {
			hasShard = true
		}
		if m.Name == "pool.hit_rate_pct" {
			hasRate = true
		}
	}
	if !hasTable || !hasShard || !hasRate {
		t.Fatalf("engine metrics missing (table=%v shard=%v rate=%v)", hasTable, hasShard, hasRate)
	}

	code, body = get("/slowlog")
	if code != 200 {
		t.Fatalf("/slowlog = %d", code)
	}
	var snap obs.SlowLogSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/slowlog is not JSON: %v\n%s", err, body)
	}
	if snap.Capacity != obs.DefaultSlowLogSize {
		t.Fatalf("slowlog capacity = %d", snap.Capacity)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestSessionStructuredLogging(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	var buf syncBuffer
	logger := obs.NewLogger(&buf).SetLevel(obs.LevelDebug)
	addr, cancel, done := startServer(t, tb, server.Options{Logger: logger})

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	cancel()
	<-done

	out := buf.String()
	for _, want := range []string{"session opened", "session=1", "addr=", "request served", "type=PING", "seq=1", "session closed"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// syncBuffer is a goroutine-safe strings.Builder for log capture.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestQueryIDOverWire: a client-supplied query ID is echoed in the
// RESULT and filed in the server's slow-query ring; a server-minted ID
// (client sends none) is echoed too and matches the ring entry.
func TestQueryIDOverWire(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	if err := tb.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	addr, cancel, done := startServer(t, tb, server.Options{})
	defer func() { cancel(); <-done }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Client-supplied ID.
	const qid = 0x1234abcd
	res, err := c.Query("?- ancestor(c0, W).", wire.QueryOpts{QueryID: qid})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID != qid {
		t.Fatalf("echoed id = %#x, want %#x", res.QueryID, qid)
	}

	// Server-minted ID.
	res2, err := c.Query("?- parent(c0, W).", wire.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.QueryID == 0 || res2.QueryID == qid {
		t.Fatalf("minted id = %#x", res2.QueryID)
	}

	// Prepared execution propagates the ID too.
	stmt, err := c.Prepare("?- ancestor(c0, W).", wire.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	const pqid = 0x777
	res3, err := stmt.ExecWithQueryID(pqid)
	if err != nil {
		t.Fatal(err)
	}
	if res3.QueryID != pqid {
		t.Fatalf("execp echoed id = %#x, want %#x", res3.QueryID, pqid)
	}
	// An ID-less Exec gets a server-minted one.
	res4, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res4.QueryID == 0 {
		t.Fatal("execp without id not minted")
	}

	// Every execution above is filed in the slow log under its ID.
	sl, err := c.Slowlog()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]obs.SlowQuery{}
	for _, e := range sl.Entries {
		byID[e.QueryID] = e
	}
	for _, want := range []uint64{qid, res2.QueryID, pqid, res4.QueryID} {
		if _, ok := byID[want]; !ok {
			t.Fatalf("slowlog has no entry for id %#x (entries: %+v)", want, sl.Entries)
		}
	}
	if e := byID[qid]; e.Query != "?- ancestor(c0, W)." {
		t.Fatalf("slowlog entry for %#x = %+v", qid, e)
	}
}

// TestTimeSeriesPinnedDeltas: with deterministic sample boundaries
// around a burst of N queries, the windowed query.count delta is
// exactly N.
func TestTimeSeriesPinnedDeltas(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	if err := tb.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	// A huge interval keeps the background ticker quiet so the only ring
	// samples are the pinned SampleNow calls below (plus Start's).
	srv := server.New(tb, server.Options{SampleInterval: time.Hour})
	addr, cancel, done := startServerWith(t, srv)
	defer func() { cancel(); <-done }()

	ts := srv.TimeSeries()
	ts.SampleNow()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := c.Query("?- ancestor(c0, W).", wire.QueryOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	ts.SampleNow()

	st, ok := ts.Stat("query.count", 0)
	if !ok {
		t.Fatal("query.count not sampled")
	}
	if st.Delta != n {
		t.Fatalf("windowed query.count delta = %d, want %d", st.Delta, n)
	}
	if st.Rate <= 0 {
		t.Fatalf("rate = %v", st.Rate)
	}

	// The STATS reply carries the same counter.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != n {
		t.Fatalf("stats.Queries = %d, want %d", stats.Queries, n)
	}
}

// startServerWith is startServer for a pre-built server (tests that
// need the server handle itself).
func startServerWith(t *testing.T, srv *server.Server) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	select {
	case addr := <-ready:
		return addr.String(), cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("server did not start: %v", err)
		return "", nil, nil
	}
}

// TestTimeSeriesAndTraceEndpoints drives /timeseries and /debug/trace:
// windowed series appear after traffic, and a traced query's span tree
// exports as Chrome trace-event JSON addressable by its query ID.
func TestTimeSeriesAndTraceEndpoints(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	if err := tb.Load(baseProgram); err != nil {
		t.Fatal(err)
	}
	srv := server.New(tb, server.Options{SampleInterval: time.Hour})
	addr, cancel, done := startServerWith(t, srv)
	defer func() { cancel(); <-done }()
	hs := httptest.NewServer(srv.DebugHandler())
	defer hs.Close()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const qid = 0xbeef
	res, err := c.Query("?- ancestor(c0, W).", wire.QueryOpts{Trace: true, QueryID: qid})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.QueryID != qid {
		t.Fatalf("traced result: trace=%v id=%#x", res.Trace, res.QueryID)
	}
	srv.TimeSeries().SampleNow()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/timeseries?points=16")
	if code != 200 {
		t.Fatalf("/timeseries = %d %s", code, body)
	}
	var snap obs.TimeSeriesSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/timeseries not JSON: %v", err)
	}
	var found bool
	for _, s := range snap.Series {
		if s.Name == "query.count" && s.Last >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/timeseries lacks query.count: %s", body)
	}
	if code, body := get("/timeseries?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window = %d %s", code, body)
	}

	code, body = get("/debug/trace?id=" + obs.FormatQueryID(qid))
	if code != 200 {
		t.Fatalf("/debug/trace = %d %s", code, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	var names []string
	for _, e := range doc.TraceEvents {
		names = append(names, fmt.Sprint(e["name"]))
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "query") || !strings.Contains(joined, "process_name") {
		t.Fatalf("/debug/trace events = %v", names)
	}
	if code, _ := get("/debug/trace?id=q00000000000000ff"); code != http.StatusNotFound {
		t.Fatalf("unknown id = %d", code)
	}
	if code, _ := get("/debug/trace?id=nonsense!"); code != http.StatusBadRequest {
		t.Fatalf("bad id = %d", code)
	}
}

// TestSamplingDisabled: a negative sample interval runs no sampler
// goroutine and /timeseries reports 404.
func TestSamplingDisabled(t *testing.T) {
	tb := dkbms.NewConcurrent(dkbms.NewMemory())
	defer tb.Close()
	srv := server.New(tb, server.Options{SampleInterval: -1})
	if srv.TimeSeries() != nil {
		t.Fatal("sampling not disabled")
	}
	hs := httptest.NewServer(srv.DebugHandler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/timeseries = %d, want 404", resp.StatusCode)
	}
}
