// Package server is the dkbd network front-end: a TCP server exposing a
// shared ConcurrentTestbed to many client sessions over the wire
// protocol (internal/wire).
//
// Each accepted connection becomes a session goroutine running a strict
// request/response loop. Read-only traffic (QUERY, EXECP, STATS, PING)
// runs concurrently across sessions, each query pinned to an immutable
// engine snapshot; LOAD and RETRACT serialize on the single-writer
// commit path and publish new snapshots without blocking readers. A
// connection-limit semaphore is
// acquired before Accept, so excess clients queue in the listen backlog
// (backpressure) instead of being half-served. Shutdown is graceful: on
// context cancel the listener closes immediately (new connections are
// refused), in-flight requests complete and write their responses, and
// Serve returns only when every session has drained.
package server

import (
	"context"
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dkbms"
	"dkbms/internal/obs"
)

// Options tune a server.
type Options struct {
	// MaxConns caps simultaneous sessions; further connections wait in
	// the listen backlog. 0 selects DefaultMaxConns.
	MaxConns int
	// IOTimeout bounds single reads of a request body (after its first
	// byte) and single response writes; it guards sessions against
	// stalled peers, not against long evaluations. 0 selects
	// DefaultIOTimeout; negative disables deadlines.
	IOTimeout time.Duration
	// Logger receives structured connection-level diagnostics, annotated
	// per session with the remote address, session id and request
	// sequence number. nil falls back to Logf; if that is also nil,
	// diagnostics are discarded.
	Logger *obs.Logger
	// Logf is the legacy printf-style diagnostic sink, kept as a
	// compatibility shim: when Logger is nil it is adapted through
	// obs.NewLogfLogger. nil discards.
	Logf func(format string, args ...any)
	// SlowLogSize is the slow-query ring capacity; 0 selects
	// obs.DefaultSlowLogSize.
	SlowLogSize int
	// SlowThreshold is the minimum latency a query must reach to enter
	// the slow log. 0 retains every query (the ring then holds the most
	// recent SlowLogSize queries).
	SlowThreshold time.Duration
	// SampleInterval is the retained-telemetry sampling period: every
	// interval the time-series ring snapshots the whole metrics registry
	// so /timeseries (and dkbtop's sparklines) can serve windowed rates
	// and quantiles. 0 selects obs.DefaultSampleInterval; negative
	// disables retention entirely (no sampler goroutine runs).
	SampleInterval time.Duration
	// SampleWindow is the ring capacity in samples. 0 selects
	// obs.DefaultSampleWindow; negative disables retention.
	SampleWindow int
}

// Default option values.
const (
	DefaultMaxConns  = 64
	DefaultIOTimeout = 30 * time.Second
)

// Server serves one ConcurrentTestbed over TCP.
type Server struct {
	tb   *dkbms.ConcurrentTestbed
	opts Options
	log  *obs.Logger  // nil discards (obs loggers are nil-safe)
	slow *obs.SlowLog // slow-query ring, served by SLOWLOG and /slowlog

	stats  counters
	reg    *obs.Registry
	ts     *obs.TimeSeries // retained telemetry; nil when sampling is disabled
	nextID atomic.Uint64   // session ids

	mu       sync.Mutex
	sessions map[*session]struct{}
	draining bool
}

// New builds a server over the testbed. The server does not own the
// testbed; closing it after Serve returns is the caller's job.
func New(tb *dkbms.ConcurrentTestbed, opts Options) *Server {
	if opts.MaxConns <= 0 {
		opts.MaxConns = DefaultMaxConns
	}
	if opts.IOTimeout == 0 {
		opts.IOTimeout = DefaultIOTimeout
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NewLogfLogger(opts.Logf) // nil Logf → nil logger
	}
	s := &Server{
		tb:       tb,
		opts:     opts,
		log:      logger,
		slow:     obs.NewSlowLog(opts.SlowLogSize, opts.SlowThreshold),
		sessions: make(map[*session]struct{}),
	}
	s.initRegistry()
	interval, window := opts.SampleInterval, opts.SampleWindow
	if interval == 0 {
		interval = obs.DefaultSampleInterval
	}
	if window == 0 {
		window = obs.DefaultSampleWindow
	}
	// A negative interval or window leaves s.ts nil: every read serves
	// the disabled shape and Serve starts no sampler goroutine.
	s.ts = obs.NewTimeSeries(s.reg, interval, window)
	return s
}

// initRegistry builds the server's metrics registry: the request
// counters and the latency histogram live there directly; the plan
// cache, buffer pool, rule-base generation and snapshot store are read
// through gauge callbacks at snapshot time (callbacks run outside the
// registry lock, so pinning an engine snapshot inside them is safe).
func (s *Server) initRegistry() {
	r := obs.NewRegistry()
	s.reg = r
	s.stats.lat = r.Histogram("server.request_latency_ns")
	s.stats.queries = r.Counter("query.count")
	obs.RegisterRuntimeMetrics(r)
	gauge := func(name string, fn func() int64) { r.GaugeFunc(name, fn) }
	gauge("server.sessions_active", s.stats.activeSessions.Load)
	gauge("server.sessions_total", s.stats.totalSessions.Load)
	gauge("server.in_flight", s.stats.inFlight.Load)
	gauge("server.requests", s.stats.requests.Load)
	gauge("server.errors", s.stats.errors.Load)
	gauge("server.bytes_in", s.stats.bytesIn.Load)
	gauge("server.bytes_out", s.stats.bytesOut.Load)
	gauge("plan.result_hits", func() int64 { return s.tb.PlanStats().ResultHits })
	gauge("plan.hits", func() int64 { return s.tb.PlanStats().PlanHits })
	gauge("plan.misses", func() int64 { return s.tb.PlanStats().Misses })
	gauge("plan.entries", func() int64 { return s.tb.PlanStats().Entries })
	gauge("pool.hits", func() int64 { return s.tb.PagerStats().Hits })
	gauge("pool.misses", func() int64 { return s.tb.PagerStats().Misses })
	gauge("pool.evictions", func() int64 { return s.tb.PagerStats().Evictions })
	gauge("pool.hit_rate_pct", func() int64 {
		st := s.tb.PagerStats()
		if st.Hits+st.Misses == 0 {
			return 100
		}
		return st.Hits * 100 / (st.Hits + st.Misses)
	})
	gauge("dkb.generation", func() int64 { return int64(s.tb.Generation()) })
	gauge("snapshot.gen", func() int64 { return int64(s.tb.SnapshotStats().Gen) })
	gauge("snapshot.active_readers", func() int64 { return s.tb.SnapshotStats().ActiveReaders })
	gauge("snapshot.retired", func() int64 { return s.tb.SnapshotStats().RetiredSnapshots })
	gauge("snapshot.live_versions", func() int64 { return s.tb.SnapshotStats().LiveVersions })
	gauge("snapshot.reclaim_backlog", func() int64 { return s.tb.SnapshotStats().ReclaimBacklog })
	gauge("snapshot.reclaimed_tables", func() int64 { return s.tb.SnapshotStats().ReclaimedTables })
	gauge("snapshot.reclaim_errors", func() int64 { return s.tb.SnapshotStats().ReclaimErrors })
	gauge("snapshot.commits", func() int64 { return s.tb.SnapshotStats().Commits })
	gauge("snapshot.copied_tables", func() int64 { return s.tb.SnapshotStats().CopiedTables })
	gauge("snapshot.writer_stall_ns", func() int64 { return int64(s.tb.SnapshotStats().WriterStall) })
	gauge("slowlog.recorded", s.slow.Recorded)
	gauge("sched.workers", func() int64 { return int64(s.tb.SchedStats().Workers) })
	gauge("sched.clients", func() int64 { return int64(s.tb.SchedStats().Clients) })
	gauge("sched.queued", func() int64 { return int64(s.tb.SchedStats().Queued) })
	gauge("sched.submitted", func() int64 { return s.tb.SchedStats().Submitted })
	gauge("sched.completed", func() int64 { return s.tb.SchedStats().Completed })
	gauge("sched.stolen", func() int64 { return s.tb.SchedStats().Stolen })
	gauge("matview.live", func() int64 { return s.tb.MatViewStats().Live })
	gauge("matview.maintained", func() int64 { return s.tb.MatViewStats().Maintained })
	gauge("matview.rederives", func() int64 { return s.tb.MatViewStats().Rederives })
	gauge("matview.delta_tuples", func() int64 { return s.tb.MatViewStats().DeltaTuples })
	gauge("matview.maintain_ns", func() int64 { return int64(s.tb.MatViewStats().MaintainTime) })
	// The engine floor — per-table heap traffic, per-index tree shape,
	// per-shard pool counters — is a dynamic metric set following the
	// live schema, contributed through a collector.
	r.CollectorFunc("engine", s.tb.EngineMetrics)
}

// Registry exposes the server's metrics registry (the dkbd debug HTTP
// endpoint serves its snapshot as JSON).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SlowLog exposes the server's slow-query ring (served over the wire by
// SLOWLOG and over HTTP by the /slowlog debug endpoint).
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// TimeSeries exposes the retained-telemetry ring (nil when sampling is
// disabled; the obs methods are nil-safe).
func (s *Server) TimeSeries() *obs.TimeSeries { return s.ts }

// ListenAndServe listens on addr ("host:port") and serves until ctx is
// cancelled. The listener's actual address (useful with ":0") is sent on
// ready, if non-nil, once accepting.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- net.Addr) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- lis.Addr()
	}
	return s.Serve(ctx, lis)
}

// Serve accepts sessions on lis until ctx is cancelled, then drains and
// returns nil. The listener is closed by Serve.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	// Closing the listener is what breaks the Accept loop; do it the
	// moment the context falls.
	stop := context.AfterFunc(ctx, func() {
		lis.Close()
		s.beginDrain()
	})
	defer stop()

	// Retained telemetry samples for the server's lifetime; Stop waits
	// for the sampler goroutine, so none outlives Serve.
	s.ts.Start()
	defer s.ts.Stop()

	sem := make(chan struct{}, s.opts.MaxConns)
	var wg sync.WaitGroup
	for {
		// Backpressure: take a session slot before accepting, so that at
		// MaxConns sessions the kernel queues further clients instead of
		// this loop accepting connections it cannot serve.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return nil
		}
		conn, err := lis.Accept()
		if err != nil {
			<-sem
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				wg.Wait()
				return nil
			}
			// Transient accept failure (e.g. EMFILE): log and go on.
			s.log.Warn("accept failed", "err", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		sess := newSession(s, conn)
		s.track(sess)
		wg.Add(1)
		go func() {
			defer func() {
				s.untrack(sess)
				<-sem
				wg.Done()
			}()
			sess.serve(ctx)
		}()
	}
}

// track registers a live session; if the server is already draining the
// session is told to finish after its current request.
func (s *Server) track(sess *session) {
	s.stats.activeSessions.Add(1)
	s.stats.totalSessions.Add(1)
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	draining := s.draining
	s.mu.Unlock()
	if draining {
		sess.interruptIdleRead()
	}
}

func (s *Server) untrack(sess *session) {
	s.stats.activeSessions.Add(-1)
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// beginDrain wakes every session blocked waiting for its next request.
// Sessions mid-request are untouched — they finish, respond, then see
// the cancelled context and exit.
func (s *Server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.interruptIdleRead()
	}
}

// Stats returns a snapshot of the server counters, including request
// latency percentiles over the recent window, the shared plan cache's
// hit counters and the buffer pool's aggregated shard counters.
func (s *Server) Stats() Stats {
	return s.stats.snapshot(s.tb.Generation(), s.tb.PlanStats(), s.tb.PagerStats(),
		s.tb.SnapshotStats(), s.tb.SchedStats(), s.tb.MatViewStats())
}

// Logf is a ready-made Options.Logf writing through the standard logger.
func Logf(format string, args ...any) { log.Printf(format, args...) }
