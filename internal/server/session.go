package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"dkbms"
	"dkbms/internal/obs"
	"dkbms/internal/wire"
)

// maxPreparedPerSession caps a session's prepared-statement table so a
// misbehaving client cannot grow server memory without bound.
const maxPreparedPerSession = 1024

// session is one connected client: a strict request/response loop over
// a single connection, with a private prepared-statement table.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64      // server-unique session id
	log  *obs.Logger // child logger carrying session id + remote addr
	seq  uint64      // requests served so far (the request sequence number)
	// ctx is the serve context: shutdown cancels it, which aborts any
	// in-flight evaluation at its next LFP iteration boundary.
	ctx context.Context

	// prepared maps session-local ids to prepared queries. Entries are
	// keyed to the rule-base generation through ConcurrentPrepared, which
	// recompiles transparently when the generation moves; the source text
	// rides along so EXECP traffic lands in the slow log legibly.
	prepared map[uint64]preparedQuery
	nextID   uint64
}

// preparedQuery is one prepared-statement table entry.
type preparedQuery struct {
	cp  *dkbms.ConcurrentPrepared
	src string
}

func newSession(srv *Server, conn net.Conn) *session {
	id := srv.nextID.Add(1)
	return &session{
		srv:      srv,
		conn:     conn,
		id:       id,
		log:      srv.log.With("session", int64(id), "addr", conn.RemoteAddr().String()),
		prepared: make(map[uint64]preparedQuery),
	}
}

// interruptIdleRead wakes the session if it is blocked waiting for the
// next request, by poisoning the read deadline. A session mid-request is
// not affected: it finishes, writes its response, and exits on the
// cancelled context at the top of its loop.
func (s *session) interruptIdleRead() {
	s.conn.SetReadDeadline(time.Now())
}

// serve runs the request loop until the peer disconnects, an I/O error
// occurs, or ctx is cancelled between requests.
func (s *session) serve(ctx context.Context) {
	defer s.conn.Close()
	s.ctx = ctx
	s.log.Debug("session opened")
	defer func() { s.log.Debug("session closed", "requests", s.seq) }()
	for {
		if ctx.Err() != nil {
			return
		}
		// Wait for the next request with no deadline (sessions may idle
		// indefinitely); once the header starts arriving, the rest of the
		// frame must show up within IOTimeout.
		s.conn.SetReadDeadline(time.Time{})
		t, payload, n, err := wire.ReadFrame(&armedReader{s: s})
		if err != nil {
			if ctx.Err() == nil && err != io.EOF {
				s.log.Warn("read failed", "seq", s.seq, "err", err)
			}
			return
		}
		s.srv.stats.bytesIn.Add(int64(n))
		s.seq++

		start := time.Now()
		s.srv.stats.inFlight.Add(1)
		respType, respPayload := s.handle(t, payload)
		s.srv.stats.inFlight.Add(-1)

		if s.srv.opts.IOTimeout > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(s.srv.opts.IOTimeout))
		}
		wn, werr := wire.WriteFrame(s.conn, respType, respPayload)
		s.srv.stats.bytesOut.Add(int64(wn))
		s.srv.stats.observe(time.Since(start), respType == wire.MsgError)
		if werr != nil {
			s.log.Warn("write failed", "seq", s.seq, "type", t.String(), "err", werr)
			return
		}
		if s.log.Enabled(obs.LevelDebug) {
			s.log.Debug("request served", "seq", s.seq, "type", t.String(),
				"reply", respType.String(), "ms", time.Since(start))
		}
	}
}

// armedReader reads from the session connection, arming the per-request
// I/O deadline after the first byte of a frame arrives. The idle wait
// for that first byte carries no deadline (unless shutdown poisons it).
type armedReader struct {
	s     *session
	armed bool
}

func (r *armedReader) Read(p []byte) (int, error) {
	n, err := r.s.conn.Read(p)
	if n > 0 && !r.armed {
		r.armed = true
		if to := r.s.srv.opts.IOTimeout; to > 0 {
			r.s.conn.SetReadDeadline(time.Now().Add(to))
		}
	}
	return n, err
}

// handle dispatches one request and returns the response frame.
func (s *session) handle(t wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	switch t {
	case wire.MsgPing:
		return wire.MsgPong, nil

	case wire.MsgLoad:
		m, err := wire.DecodeLoad(payload)
		if err != nil {
			return errFrame(err)
		}
		if err := s.srv.tb.Load(m.Src); err != nil {
			return errFrame(err)
		}
		return wire.MsgOK, nil

	case wire.MsgQuery:
		m, err := wire.DecodeQuery(payload)
		if err != nil {
			return errFrame(err)
		}
		// Adopt the client's query ID or mint one, so every execution is
		// identifiable across the result echo, the structured log and the
		// slow-query ring.
		opts := m.Opts.ToOptions()
		if opts.QueryID == 0 {
			opts.QueryID = obs.NewQueryID()
		}
		s.srv.stats.queries.Inc()
		start := time.Now()
		res, err := s.srv.tb.QueryContext(s.ctx, m.Src, opts)
		s.recordSlow(m.Src, start, res, err, opts.QueryID)
		if err != nil {
			return errFrame(err)
		}
		return wire.MsgResult, encodeResult(res)

	case wire.MsgPrepare:
		m, err := wire.DecodePrepare(payload)
		if err != nil {
			return errFrame(err)
		}
		if len(s.prepared) >= maxPreparedPerSession {
			return errFrame(fmt.Errorf("server: session holds %d prepared queries; close some or reconnect", len(s.prepared)))
		}
		cp, err := s.srv.tb.Prepare(m.Src, m.Opts.ToOptions())
		if err != nil {
			return errFrame(err)
		}
		s.nextID++
		id := s.nextID
		s.prepared[id] = preparedQuery{cp: cp, src: m.Src}
		return wire.MsgPrepared, wire.Prepared{ID: id, Generation: s.srv.tb.Generation()}.Encode()

	case wire.MsgExecP:
		m, err := wire.DecodeExecP(payload)
		if err != nil {
			return errFrame(err)
		}
		pq, ok := s.prepared[m.ID]
		if !ok {
			return errFrame(fmt.Errorf("server: no prepared query %d in this session", m.ID))
		}
		qid := m.QueryID
		if qid == 0 {
			qid = obs.NewQueryID()
		}
		s.srv.stats.queries.Inc()
		start := time.Now()
		res, err := pq.cp.RunWithQueryID(qid)
		s.recordSlow(pq.src, start, res, err, qid)
		if err != nil {
			return errFrame(err)
		}
		return wire.MsgResult, encodeResult(res)

	case wire.MsgRetract:
		m, err := wire.DecodeRetract(payload)
		if err != nil {
			return errFrame(err)
		}
		n, err := s.srv.tb.RetractSrc(m.Pattern)
		if err != nil {
			return errFrame(err)
		}
		return wire.MsgRetracted, wire.Retracted{N: int64(n)}.Encode()

	case wire.MsgStats:
		return wire.MsgStatsReply, s.srv.Stats().Encode()

	case wire.MsgSlowlog:
		return wire.MsgSlowlogReply, wire.Slowlog{
			ThresholdNs: int64(s.srv.slow.Threshold()),
			Capacity:    int64(s.srv.slow.Capacity()),
			Recorded:    s.srv.slow.Recorded(),
			Entries:     s.srv.slow.Snapshot(),
		}.Encode()

	case wire.MsgViews:
		views := s.srv.tb.Views()
		m := wire.Views{Views: make([]wire.ViewInfo, 0, len(views))}
		for _, v := range views {
			m.Views = append(m.Views, wire.ViewInfo{
				Query:           v.Query,
				Policy:          v.Policy.String(),
				Rows:            int64(v.Rows),
				Maintains:       v.Maintains,
				LastDeltaTuples: v.LastDeltaTuples,
				LastMaintain:    v.LastDuration,
			})
		}
		return wire.MsgViewsReply, m.Encode()

	default:
		return errFrame(fmt.Errorf("server: unknown request type %v", t))
	}
}

// recordSlow enters one query execution into the server's slow-query
// ring, keyed by the wire-propagated query ID. Failed queries are
// retained too (with the error text); traces ride along only when the
// query ran traced.
func (s *session) recordSlow(src string, start time.Time, res *dkbms.QueryResult, err error, qid uint64) {
	e := obs.SlowQuery{
		Query:   src,
		Start:   start,
		Latency: time.Since(start),
		Session: int64(s.id),
		QueryID: qid,
	}
	if err != nil {
		e.Err = err.Error()
	} else {
		e.Cache = res.Cache
		e.Rows = int64(len(res.Rows))
		e.Iterations = res.Iterations()
		e.Trace = res.Trace.Root()
		e.Snapshot = res.Snapshot
	}
	s.srv.slow.Record(e)
	if s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("query done", "query_id", obs.FormatQueryID(qid),
			"ms", e.Latency, "cache", e.Cache, "err", e.Err)
	}
}

func errFrame(err error) (wire.MsgType, []byte) {
	return wire.MsgError, wire.Error{Code: wire.CodeFor(err), Msg: err.Error()}.Encode()
}

func encodeResult(res *dkbms.QueryResult) []byte {
	return wire.Result{
		Vars:      res.Vars,
		Rows:      res.Rows,
		Optimized: res.Optimized,
		Strategy:  res.Strategy.String(),
		Trace:     res.Trace.Root(),
		QueryID:   res.QueryID,
	}.Encode()
}
