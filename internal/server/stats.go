package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dkbms"
	"dkbms/internal/matview"
	"dkbms/internal/obs"
	"dkbms/internal/sched"
	"dkbms/internal/snapshot"
	"dkbms/internal/storage"
	"dkbms/internal/wire"
)

// Stats is a snapshot of server activity. It is the native form of the
// wire.ServerStats payload.
type Stats = wire.ServerStats

// latencyWindow is how many recent request latencies the percentile
// window keeps. Power of two; old samples are overwritten ring-wise.
const latencyWindow = 1024

// counters aggregates server activity. All fields are updated without a
// lock except the latency ring.
type counters struct {
	activeSessions atomic.Int64
	totalSessions  atomic.Int64
	inFlight       atomic.Int64
	requests       atomic.Int64
	errors         atomic.Int64
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64

	mu        sync.Mutex
	latencies [latencyWindow]time.Duration
	nLat      int64 // total samples ever recorded

	// lat mirrors the latency stream into the server's obs registry
	// (exponential-bucket histogram; the exact ring above still backs
	// the wire stats' percentiles). Nil-safe when no registry is wired.
	lat *obs.Histogram
	// queries counts QUERY+EXECP requests as a real registry counter —
	// the time-series ring samples it, so /timeseries serves an exact
	// windowed query rate. Nil-safe when no registry is wired.
	queries *obs.Counter
}

// observe records one completed request.
func (c *counters) observe(d time.Duration, isError bool) {
	c.requests.Add(1)
	if isError {
		c.errors.Add(1)
	}
	c.lat.ObserveDuration(d)
	c.mu.Lock()
	c.latencies[c.nLat%latencyWindow] = d
	c.nLat++
	c.mu.Unlock()
}

// percentiles returns p50 and p99 over the retained window.
func (c *counters) percentiles() (p50, p99 time.Duration) {
	c.mu.Lock()
	n := c.nLat
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]time.Duration, n)
	copy(window, c.latencies[:n])
	c.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	rank := func(q float64) time.Duration {
		i := int(q * float64(n-1))
		return window[i]
	}
	return rank(0.50), rank(0.99)
}

// snapshot assembles the wire-form stats.
func (c *counters) snapshot(generation uint64, plan dkbms.PlanCacheStats, pool storage.PagerStats, snap snapshot.Stats, sch sched.Stats, mv matview.Stats) Stats {
	p50, p99 := c.percentiles()
	return Stats{
		ActiveSessions: c.activeSessions.Load(),
		TotalSessions:  c.totalSessions.Load(),
		InFlight:       c.inFlight.Load(),
		Requests:       c.requests.Load(),
		Errors:         c.errors.Load(),
		BytesIn:        c.bytesIn.Load(),
		BytesOut:       c.bytesOut.Load(),
		P50:            p50,
		P99:            p99,
		PlanResultHits: plan.ResultHits,
		PlanHits:       plan.PlanHits,
		PlanMisses:     plan.Misses,
		PoolHits:       pool.Hits,
		PoolMisses:     pool.Misses,
		PoolEvictions:  pool.Evictions,
		Generation:     generation,

		SnapshotGen:     snap.Gen,
		SnapshotReaders: snap.ActiveReaders,
		ReclaimBacklog:  snap.ReclaimBacklog,
		WriterStall:     snap.WriterStall,

		SchedWorkers:   int64(sch.Workers),
		SchedQueued:    int64(sch.Queued),
		SchedSubmitted: sch.Submitted,
		SchedStolen:    sch.Stolen,

		ViewsLive:         mv.Live,
		ViewsMaintained:   mv.Maintained,
		ViewsRederives:    mv.Rederives,
		ViewsDeltaTuples:  mv.DeltaTuples,
		ViewsMaintainTime: mv.MaintainTime,

		Queries: c.queries.Load(),
	}
}
