package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the server's debug HTTP surface, mounted by dkbd
// under -debug-addr:
//
//	/metrics       metrics-registry snapshot (JSON array)
//	/slowlog       slow-query ring snapshot (JSON object)
//	/healthz       liveness probe ("ok", 200)
//	/debug/pprof/  Go runtime profiles
//
// The pprof handlers are registered explicitly on a private mux (not via
// the net/http/pprof import side effect on DefaultServeMux), so serving
// this handler never exposes profiles on muxes the caller did not ask
// for.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.slow.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
