package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"dkbms/internal/obs"
)

// DebugHandler returns the server's debug HTTP surface, mounted by dkbd
// under -debug-addr:
//
//	/metrics       metrics-registry snapshot, Prometheus text exposition
//	/metrics.json  the same snapshot as a JSON array
//	/timeseries    windowed rates/deltas/quantiles from the retained ring
//	               (?window=30s trims the window, ?points=60 attaches raw
//	               samples per series)
//	/debug/trace   Chrome/Perfetto trace-event JSON for one retained
//	               query (?id=q<hex> from a RESULT echo or the slow log)
//	/slowlog       slow-query ring snapshot (JSON object)
//	/healthz       liveness probe ("ok", 200)
//	/debug/pprof/  Go runtime profiles
//
// The pprof handlers are registered explicitly on a private mux (not via
// the net/http/pprof import side effect on DefaultServeMux), so serving
// this handler never exposes profiles on muxes the caller did not ask
// for.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := s.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if s.ts == nil {
			http.Error(w, "time-series sampling disabled (-sample-interval < 0)", http.StatusNotFound)
			return
		}
		var window time.Duration
		if v := r.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad ?window= duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			window = d
		}
		points := 0
		if v := r.URL.Query().Get("points"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad ?points= count", http.StatusBadRequest)
				return
			}
			points = n
		}
		w.Header().Set("Content-Type", "application/json")
		if err := s.ts.WriteJSON(w, window, points); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		qid, err := obs.ParseQueryID(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad or missing ?id= query id: "+err.Error(), http.StatusBadRequest)
			return
		}
		for _, e := range s.slow.Snapshot() {
			if e.QueryID != qid {
				continue
			}
			if e.Trace == nil {
				http.Error(w, "query retained without a trace; run it with the Trace option",
					http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := obs.WriteChromeTrace(w, e.Trace, qid); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		http.Error(w, "no retained query with id "+obs.FormatQueryID(qid), http.StatusNotFound)
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.slow.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
