// Package workload generates the synthetic data and rule bases of the
// paper's experiments (§5.2, Table "D/KB characterization"). Base
// relations are binary and characterized by their directed-graph
// representation: lists, full binary trees, directed acyclic graphs and
// directed cyclic graphs. Rule bases are chains with controllable total
// size (R_s), relevant size (R_r) and relevant-predicate count (P_r).
package workload

import (
	"fmt"
	"math/rand"

	"dkbms/internal/dlog"
	"dkbms/internal/rel"
)

func node(prefix string, i int) rel.Value {
	return rel.NewString(fmt.Sprintf("%s%d", prefix, i))
}

// Lists returns the edge tuples of n disjoint lists of the given length
// (length = number of nodes per list; edges per list = length-1). The
// paper: a database with n lists of average length l has ≈ n(l-1)
// tuples.
func Lists(n, length int) []rel.Tuple {
	var out []rel.Tuple
	for li := 0; li < n; li++ {
		for i := 0; i < length-1; i++ {
			out = append(out, rel.Tuple{
				node(fmt.Sprintf("l%d_", li), i),
				node(fmt.Sprintf("l%d_", li), i+1),
			})
		}
	}
	return out
}

// FullBinaryTree returns the parent→child edges of a full binary tree
// of the given depth (depth 1 = a single node, no edges). Nodes are
// named t1..t(2^depth − 1) in heap order: node i has children 2i and
// 2i+1. The paper: a tree of depth d has 2^d − 2 tuples.
func FullBinaryTree(depth int) []rel.Tuple {
	if depth < 1 {
		return nil
	}
	nodes := (1 << depth) - 1
	var out []rel.Tuple
	for i := 1; 2*i+1 <= nodes; i++ {
		out = append(out,
			rel.Tuple{node("t", i), node("t", 2*i)},
			rel.Tuple{node("t", i), node("t", 2*i+1)},
		)
	}
	return out
}

// TreeNode names node i of a FullBinaryTree.
func TreeNode(i int) string { return fmt.Sprintf("t%d", i) }

// TreeNodes returns the number of nodes of a full binary tree of depth d.
func TreeNodes(depth int) int { return (1 << depth) - 1 }

// SubtreeEdges returns the number of edges in the subtree of a
// FullBinaryTree(depth) rooted at a node on the given level (root is
// level 1). Each such subtree is itself a full binary tree of depth
// depth-level+1.
func SubtreeEdges(depth, level int) int {
	sub := depth - level + 1
	if sub < 1 {
		return 0
	}
	return (1 << sub) - 2
}

// Forest returns fb-tree edges for n disjoint trees of equal depth;
// tree k's nodes are prefixed fk_. Used to grow D_tot while holding a
// query's relevant subtree fixed.
func Forest(n, depth int) []rel.Tuple {
	var out []rel.Tuple
	nodes := (1 << depth) - 1
	for k := 0; k < n; k++ {
		prefix := fmt.Sprintf("f%d_t", k)
		for i := 1; 2*i+1 <= nodes; i++ {
			out = append(out,
				rel.Tuple{node(prefix, i), node(prefix, 2*i)},
				rel.Tuple{node(prefix, i), node(prefix, 2*i+1)},
			)
		}
	}
	return out
}

// ForestNode names node i of tree k in a Forest.
func ForestNode(k, i int) string { return fmt.Sprintf("f%d_t%d", k, i) }

// DAG returns a layered directed acyclic graph: pathLength layers of
// width nodes each; every node in layer j+1 receives fanIn edges from
// distinct random nodes of layer j. Average fan-out equals fanIn (width
// constant across layers). Total tuples = (pathLength-1) · width · fanIn.
func DAG(width, pathLength, fanIn int, rng *rand.Rand) []rel.Tuple {
	if fanIn > width {
		fanIn = width
	}
	var out []rel.Tuple
	name := func(layer, i int) rel.Value {
		return rel.NewString(fmt.Sprintf("d%d_%d", layer, i))
	}
	for layer := 1; layer < pathLength; layer++ {
		for i := 0; i < width; i++ {
			perm := rng.Perm(width)
			for _, src := range perm[:fanIn] {
				out = append(out, rel.Tuple{name(layer-1, src), name(layer, i)})
			}
		}
	}
	return out
}

// DAGNode names node i of a DAG layer.
func DAGNode(layer, i int) string { return fmt.Sprintf("d%d_%d", layer, i) }

// CyclicGraph returns nCycles disjoint directed cycles of cycleLen
// nodes each, plus nChords random chord edges between cycles (which may
// merge them into larger strongly connected structures).
func CyclicGraph(nCycles, cycleLen, nChords int, rng *rand.Rand) []rel.Tuple {
	var out []rel.Tuple
	name := func(c, i int) rel.Value {
		return rel.NewString(fmt.Sprintf("c%d_%d", c, i))
	}
	for c := 0; c < nCycles; c++ {
		for i := 0; i < cycleLen; i++ {
			out = append(out, rel.Tuple{name(c, i), name(c, (i+1)%cycleLen)})
		}
	}
	for k := 0; k < nChords; k++ {
		c1, c2 := rng.Intn(nCycles), rng.Intn(nCycles)
		out = append(out, rel.Tuple{name(c1, rng.Intn(cycleLen)), name(c2, rng.Intn(cycleLen))})
	}
	return out
}

// CyclicNode names node i of cycle c.
func CyclicNode(c, i int) string { return fmt.Sprintf("c%d_%d", c, i) }

// RuleChains builds a synthetic rule base of nChains disjoint chains,
// each of the given length:
//
//	chain k:  qk_0(X,Y) :- qk_1(X,Y).   ...   qk_{L-1}(X,Y) :- bk(X,Y).
//
// A query on a chain head touches exactly `length` rules and `length`
// derived predicates, so R_r and P_r are controlled by the chain length
// and R_s by nChains·length. Each chain bottoms out in its own base
// predicate bk.
func RuleChains(nChains, length int) (rules []dlog.Clause, heads []string, basePreds []string) {
	for k := 0; k < nChains; k++ {
		for j := 0; j < length; j++ {
			head := ChainPred(k, j)
			var body string
			if j == length-1 {
				body = ChainBase(k)
			} else {
				body = ChainPred(k, j+1)
			}
			rules = append(rules, dlog.MustParseClause(
				fmt.Sprintf("%s(X, Y) :- %s(X, Y).", head, body)))
		}
		heads = append(heads, ChainPred(k, 0))
		basePreds = append(basePreds, ChainBase(k))
	}
	return rules, heads, basePreds
}

// ChainPred names derived predicate j of chain k.
func ChainPred(k, j int) string { return fmt.Sprintf("q%d_%d", k, j) }

// ChainBase names the base predicate of chain k.
func ChainBase(k int) string { return fmt.Sprintf("bb%d", k) }

// ChainFacts returns a single fact tuple for each chain's base
// predicate (enough for the compile-time experiments, which never
// evaluate large data through these rules).
func ChainFacts() []rel.Tuple {
	return []rel.Tuple{{rel.NewString("x"), rel.NewString("y")}}
}

// WideRuleChains builds chains in which every rule additionally reads
// its own base predicate:
//
//	qk_j(X, Y) :- qk_{j+1}(X, Z), bk_j(Z, Y).
//	qk_{L-1}(X, Y) :- bk_{L-1}(X, Y).
//
// A query on qk_j therefore touches L-j rules, L-j derived predicates
// AND L-j distinct base predicates — the shape the dictionary-read
// experiments (Test 2) need, where P_r controls how many dictionary
// entries the semantic checker reads.
func WideRuleChains(nChains, length int) (rules []dlog.Clause, heads []string, basePreds []string) {
	for k := 0; k < nChains; k++ {
		for j := 0; j < length; j++ {
			head := ChainPred(k, j)
			base := WideChainBase(k, j)
			if j == length-1 {
				rules = append(rules, dlog.MustParseClause(
					fmt.Sprintf("%s(X, Y) :- %s(X, Y).", head, base)))
			} else {
				rules = append(rules, dlog.MustParseClause(
					fmt.Sprintf("%s(X, Y) :- %s(X, Z), %s(Z, Y).", head, ChainPred(k, j+1), base)))
			}
			basePreds = append(basePreds, base)
		}
		heads = append(heads, ChainPred(k, 0))
	}
	return rules, heads, basePreds
}

// WideChainBase names the base predicate of rule j in chain k of
// WideRuleChains.
func WideChainBase(k, j int) string { return fmt.Sprintf("wb%d_%d", k, j) }
