package workload

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestLists(t *testing.T) {
	edges := Lists(3, 5)
	if len(edges) != 3*4 { // n(l-1)
		t.Fatalf("edges = %d", len(edges))
	}
	// Disjoint: all node names unique per list prefix.
	seen := map[string]bool{}
	for _, e := range edges {
		seen[e[0].Str] = true
		seen[e[1].Str] = true
	}
	if len(seen) != 15 {
		t.Fatalf("nodes = %d", len(seen))
	}
}

func TestFullBinaryTree(t *testing.T) {
	for depth := 1; depth <= 8; depth++ {
		edges := FullBinaryTree(depth)
		want := (1 << depth) - 2 // paper: 2^d - 2 tuples
		if len(edges) != want {
			t.Fatalf("depth %d: %d edges, want %d", depth, len(edges), want)
		}
	}
	// Structure: node i parents 2i and 2i+1.
	edges := FullBinaryTree(3)
	found := map[string]bool{}
	for _, e := range edges {
		found[e[0].Str+">"+e[1].Str] = true
	}
	for _, want := range []string{"t1>t2", "t1>t3", "t2>t4", "t3>t7"} {
		if !found[want] {
			t.Fatalf("missing edge %s in %v", want, found)
		}
	}
}

func TestSubtreeEdges(t *testing.T) {
	// Level 1 = whole tree.
	if SubtreeEdges(10, 1) != (1<<10)-2 {
		t.Fatal("level 1")
	}
	// Leaves have no edges.
	if SubtreeEdges(10, 10) != 0 {
		t.Fatal("leaf level")
	}
	if SubtreeEdges(10, 11) != 0 {
		t.Fatal("below leaves")
	}
	// One level down halves (roughly) the subtree.
	if SubtreeEdges(10, 2) != (1<<9)-2 {
		t.Fatal("level 2")
	}
}

func TestForest(t *testing.T) {
	edges := Forest(4, 5)
	if len(edges) != 4*((1<<5)-2) {
		t.Fatalf("edges = %d", len(edges))
	}
	if ForestNode(2, 1) != "f2_t1" {
		t.Fatal(ForestNode(2, 1))
	}
}

func TestDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := DAG(10, 5, 3, rng)
	if len(edges) != 4*10*3 {
		t.Fatalf("edges = %d", len(edges))
	}
	// Acyclic by construction: edges only go layer i -> i+1.
	for _, e := range edges {
		var l1, n1, l2, n2 int
		if _, err := fmt.Sscanf(e[0].Str, "d%d_%d", &l1, &n1); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(e[1].Str, "d%d_%d", &l2, &n2); err != nil {
			t.Fatal(err)
		}
		if l2 != l1+1 {
			t.Fatalf("edge crosses %d layers: %v", l2-l1, e)
		}
	}
	// fanIn capped at width.
	edges2 := DAG(2, 3, 10, rng)
	if len(edges2) != 2*2*2 {
		t.Fatalf("capped edges = %d", len(edges2))
	}
}

func TestCyclicGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	edges := CyclicGraph(3, 4, 5, rng)
	if len(edges) != 3*4+5 {
		t.Fatalf("edges = %d", len(edges))
	}
	// Each cycle closes: edge from last node back to node 0.
	found := map[string]bool{}
	for _, e := range edges {
		found[e[0].Str+">"+e[1].Str] = true
	}
	for c := 0; c < 3; c++ {
		if !found[CyclicNode(c, 3)+">"+CyclicNode(c, 0)] {
			t.Fatalf("cycle %d not closed", c)
		}
	}
}

func TestRuleChains(t *testing.T) {
	rules, heads, bases := RuleChains(3, 4)
	if len(rules) != 12 || len(heads) != 3 || len(bases) != 3 {
		t.Fatalf("%d rules, %d heads, %d bases", len(rules), len(heads), len(bases))
	}
	if heads[1] != ChainPred(1, 0) || bases[2] != ChainBase(2) {
		t.Fatalf("naming: %v %v", heads, bases)
	}
	// Chain structure: q1_3 :- bb1.
	last := rules[4+3] // chain 1, rule 3
	if last.Head.Pred != "q1_3" || last.Body[0].Pred != "bb1" {
		t.Fatalf("chain tail: %v", last)
	}
	// All range-restricted and parseable (MustParseClause would have
	// panicked otherwise); heads disjoint across chains.
	seen := map[string]bool{}
	for _, r := range rules {
		if seen[r.Head.Pred] {
			t.Fatalf("duplicate head %s", r.Head.Pred)
		}
		seen[r.Head.Pred] = true
	}
}
