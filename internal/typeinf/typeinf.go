// Package typeinf implements the testbed's Semantic Checker (paper
// §3.2.4): the definedness check (every derived predicate reachable
// from the query has defining rules, every other body predicate is a
// known base relation) and the type-inference algorithm that derives the
// column types of derived predicates from the rules and verifies that
// all rules defining a predicate agree.
package typeinf

import (
	"errors"
	"fmt"

	"dkbms/internal/dlog"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
)

// ErrUndefined marks definedness failures — a predicate with neither
// defining rules nor a base relation. Callers (the root API, the
// server) classify compilation errors with errors.Is against it.
var ErrUndefined = errors.New("undefined predicate")

// CheckDefined verifies that every reachable predicate is either derived
// (has rules) or a base relation with a known schema.
func CheckDefined(g *pcg.Graph, reachable map[string]bool, baseTypes map[string][]rel.Type) error {
	for p := range reachable {
		if g.IsDerived(p) {
			continue
		}
		if _, ok := baseTypes[p]; !ok {
			return fmt.Errorf("typeinf: %w %s: it has no defining rules and is not a base relation", ErrUndefined, p)
		}
	}
	return nil
}

// Infer derives the column types of every derived predicate in the
// evaluation order. baseTypes supplies extensional schemas. The returned
// map contains an entry for each derived predicate in order.
//
// Within a recursive clique the rules are iterated to a fixpoint: types
// only move from unknown to known, so the iteration terminates. A
// conflict (two rules or two body occurrences forcing different types on
// the same column or variable) is an error, as is a column whose type
// remains unknown once the clique stabilizes.
func Infer(order []*pcg.Node, baseTypes map[string][]rel.Type) (map[string][]rel.Type, error) {
	return InferHinted(order, baseTypes, nil)
}

// InferHinted is Infer with initial type hints for derived predicates.
// Magic-set seed facts provide such hints: a magic predicate defined
// only by recursive magic rules plus a ground seed gets its column
// types from the seed, which pure rule-driven inference cannot see.
func InferHinted(order []*pcg.Node, baseTypes map[string][]rel.Type, hints map[string][]rel.Type) (map[string][]rel.Type, error) {
	derived := make(map[string][]rel.Type)
	typeOf := func(pred string) []rel.Type {
		if t, ok := baseTypes[pred]; ok {
			return t
		}
		return derived[pred]
	}

	for _, node := range order {
		// Initialize unknown signatures for the node's predicates using
		// head arities.
		arity := make(map[string]int)
		noteArity := func(a dlog.Atom) {
			arity[a.Pred] = a.Arity()
		}
		for _, c := range node.ExitRules {
			noteArity(c.Head)
		}
		for _, c := range node.RecursiveRules {
			noteArity(c.Head)
		}
		for _, p := range node.Preds {
			n, ok := arity[p]
			if !ok {
				return nil, fmt.Errorf("typeinf: clique predicate %s has no rules", p)
			}
			derived[p] = make([]rel.Type, n)
			if hint, ok := hints[p]; ok {
				if len(hint) != n {
					return nil, fmt.Errorf("typeinf: hint for %s has arity %d, rules have %d", p, len(hint), n)
				}
				copy(derived[p], hint)
			}
		}

		rules := append(append([]dlog.Clause(nil), node.ExitRules...), node.RecursiveRules...)
		for changed := true; changed; {
			changed = false
			for _, c := range rules {
				ch, err := inferRule(c, typeOf, derived)
				if err != nil {
					return nil, err
				}
				changed = changed || ch
			}
		}
		for _, p := range node.Preds {
			for i, t := range derived[p] {
				if t == rel.TypeUnknown {
					return nil, fmt.Errorf("typeinf: cannot infer type of column %d of %s", i+1, p)
				}
			}
		}
	}
	return derived, nil
}

// inferRule propagates types through one rule. It reports whether any
// head column type became known.
func inferRule(c dlog.Clause, typeOf func(string) []rel.Type, derived map[string][]rel.Type) (bool, error) {
	vars := make(map[string]rel.Type)
	// Gather variable types from body atoms.
	for _, a := range c.Body {
		sig := typeOf(a.Pred)
		if sig == nil {
			return false, fmt.Errorf("typeinf: %w %s in body of %q", ErrUndefined, a.Pred, c.String())
		}
		if len(sig) != a.Arity() {
			return false, fmt.Errorf("typeinf: %s used with arity %d but has %d columns (in %q)",
				a.Pred, a.Arity(), len(sig), c.String())
		}
		for i, t := range a.Args {
			want := sig[i]
			if t.IsVar() {
				if want == rel.TypeUnknown {
					continue
				}
				if have, ok := vars[t.Var]; ok && have != rel.TypeUnknown && have != want {
					return false, fmt.Errorf("typeinf: variable %s is both %v and %v in %q",
						t.Var, have, want, c.String())
				}
				vars[t.Var] = want
			} else if want != rel.TypeUnknown && t.Val.Kind != want {
				return false, fmt.Errorf("typeinf: constant %s has type %v but column %d of %s is %v (in %q)",
					t.String(), t.Val.Kind, i+1, a.Pred, want, c.String())
			}
		}
	}
	// Propagate to the head.
	sig := derived[c.Head.Pred]
	if sig == nil {
		return false, fmt.Errorf("typeinf: head predicate %s missing from inference state", c.Head.Pred)
	}
	if len(sig) != c.Head.Arity() {
		return false, fmt.Errorf("typeinf: %s defined with arity %d and %d", c.Head.Pred, len(sig), c.Head.Arity())
	}
	changed := false
	for i, t := range c.Head.Args {
		var ty rel.Type
		if t.IsVar() {
			ty = vars[t.Var] // may be unknown this pass
		} else {
			ty = t.Val.Kind
		}
		if ty == rel.TypeUnknown {
			continue
		}
		switch sig[i] {
		case rel.TypeUnknown:
			sig[i] = ty
			changed = true
		case ty:
			// consistent
		default:
			return false, fmt.Errorf("typeinf: rules disagree on column %d of %s: %v vs %v (in %q)",
				i+1, c.Head.Pred, sig[i], ty, c.String())
		}
	}
	return changed, nil
}
