package typeinf

import (
	"testing"

	"dkbms/internal/dlog"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
)

func analyze(t *testing.T, root string, srcs ...string) (*pcg.Graph, *pcg.Analysis) {
	t.Helper()
	var rs []dlog.Clause
	for _, s := range srcs {
		rs = append(rs, dlog.MustParseClause(s))
	}
	g := pcg.Build(rs)
	a, err := pcg.Analyze(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

var familyBase = map[string][]rel.Type{
	"parent": {rel.TypeString, rel.TypeString},
	"age":    {rel.TypeString, rel.TypeInt},
}

func TestInferNonRecursive(t *testing.T) {
	_, a := analyze(t, "gp",
		"gp(X, Y) :- parent(X, Z), parent(Z, Y).",
	)
	types, err := Infer(a.Order, familyBase)
	if err != nil {
		t.Fatal(err)
	}
	got := types["gp"]
	if len(got) != 2 || got[0] != rel.TypeString || got[1] != rel.TypeString {
		t.Fatalf("gp types = %v", got)
	}
}

func TestInferRecursive(t *testing.T) {
	_, a := analyze(t, "anc",
		"anc(X, Y) :- parent(X, Y).",
		"anc(X, Y) :- parent(X, Z), anc(Z, Y).",
	)
	types, err := Infer(a.Order, familyBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := types["anc"]; got[0] != rel.TypeString || got[1] != rel.TypeString {
		t.Fatalf("anc types = %v", got)
	}
}

func TestInferMixedTypesThroughChain(t *testing.T) {
	_, a := analyze(t, "older",
		"older(X, N) :- age(X, N).",
		"older(X, N) :- parent(X, Z), older(Z, N).",
	)
	types, err := Infer(a.Order, familyBase)
	if err != nil {
		t.Fatal(err)
	}
	got := types["older"]
	if got[0] != rel.TypeString || got[1] != rel.TypeInt {
		t.Fatalf("older types = %v", got)
	}
}

func TestInferConstantsInHeadAndBody(t *testing.T) {
	_, a := analyze(t, "labeled",
		`labeled(X, "root") :- parent(X, Y).`,
	)
	types, err := Infer(a.Order, familyBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := types["labeled"]; got[1] != rel.TypeString {
		t.Fatalf("%v", got)
	}
}

func TestInferMutualRecursion(t *testing.T) {
	_, a := analyze(t, "p",
		"p(X, Y) :- parent(X, Y).",
		"p(X, Y) :- q(X, Y).",
		"q(X, Y) :- p(X, Z), parent(Z, Y).",
	)
	types, err := Infer(a.Order, familyBase)
	if err != nil {
		t.Fatal(err)
	}
	if types["p"][0] != rel.TypeString || types["q"][1] != rel.TypeString {
		t.Fatalf("p=%v q=%v", types["p"], types["q"])
	}
}

func TestConflictAcrossRules(t *testing.T) {
	_, a := analyze(t, "bad",
		"bad(X) :- parent(X, Y).",
		"bad(N) :- age(X, N).",
	)
	if _, err := Infer(a.Order, familyBase); err == nil {
		t.Fatal("conflicting rules accepted")
	}
}

func TestConflictWithinRule(t *testing.T) {
	_, a := analyze(t, "bad",
		"bad(X) :- parent(X, Y), age(Y, X).",
	)
	if _, err := Infer(a.Order, familyBase); err == nil {
		t.Fatal("variable with two types accepted")
	}
}

func TestConstantTypeMismatch(t *testing.T) {
	_, a := analyze(t, "bad",
		"bad(X) :- age(X, notanumber).",
	)
	if _, err := Infer(a.Order, familyBase); err == nil {
		t.Fatal("string constant in integer column accepted")
	}
}

func TestArityMismatchAgainstBase(t *testing.T) {
	_, a := analyze(t, "bad",
		"bad(X) :- parent(X).",
	)
	if _, err := Infer(a.Order, familyBase); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestUnresolvableClique(t *testing.T) {
	// p has no exit rule that grounds its types: pure self-recursion.
	_, a := analyze(t, "p",
		"p(X, Y) :- p(Y, X).",
	)
	if _, err := Infer(a.Order, familyBase); err == nil {
		t.Fatal("uninferable types accepted")
	}
}

func TestSwappedColumnsInRecursion(t *testing.T) {
	// Recursive rule swaps columns of mixed types: must be rejected.
	_, a := analyze(t, "p",
		"p(X, N) :- age(X, N).",
		"p(N, X) :- p(X, N).",
	)
	if _, err := Infer(a.Order, familyBase); err == nil {
		t.Fatal("type-swapping recursion accepted")
	}
}

func TestCheckDefined(t *testing.T) {
	g, a := analyze(t, "anc",
		"anc(X, Y) :- parent(X, Y).",
		"anc(X, Y) :- parent(X, Z), anc(Z, Y).",
	)
	if err := CheckDefined(g, a.Reachable, familyBase); err != nil {
		t.Fatal(err)
	}
	// Now with a body predicate that is neither derived nor base.
	g2, a2 := analyze(t, "x",
		"x(A) :- ghost(A).",
	)
	if err := CheckDefined(g2, a2.Reachable, familyBase); err == nil {
		t.Fatal("undefined predicate accepted")
	}
}

func TestInferIntConstantInHead(t *testing.T) {
	_, a := analyze(t, "tagged",
		"tagged(X, 1) :- parent(X, Y).",
	)
	types, err := Infer(a.Order, familyBase)
	if err != nil {
		t.Fatal(err)
	}
	if types["tagged"][1] != rel.TypeInt {
		t.Fatalf("%v", types["tagged"])
	}
}
