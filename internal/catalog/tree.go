package catalog

import (
	"dkbms/internal/index"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// indexTree wraps the B+tree so catalog callers get a focused surface
// (insert, delete, lookup, prefix scan) without importing the index
// package directly.
type indexTree struct {
	t *index.BTree
}

func newIndexTree() *indexTree { return &indexTree{t: index.New()} }

// Insert adds a (key, rid) entry.
func (it *indexTree) Insert(key rel.Tuple, rid storage.RID) error {
	return it.t.Insert(key, rid)
}

// Delete removes a (key, rid) entry.
func (it *indexTree) Delete(key rel.Tuple, rid storage.RID) error {
	return it.t.Delete(key, rid)
}

// Lookup returns postings for an exact key.
func (it *indexTree) Lookup(key rel.Tuple) []storage.RID {
	return it.t.Lookup(key)
}

// LookupPrefix returns postings for all keys with the given prefix.
func (it *indexTree) LookupPrefix(prefix rel.Tuple) []storage.RID {
	return it.t.LookupPrefix(prefix)
}

// Len returns the number of entries.
func (it *indexTree) Len() int { return it.t.Len() }

// Stats snapshots the tree's shape and traffic counters.
func (it *indexTree) Stats() index.TreeStats { return it.t.Stats() }

// Lookup returns postings for the key (exact match on all index columns).
func (ix *Index) Lookup(key rel.Tuple) []storage.RID { return ix.Tree.Lookup(key) }

// LookupPrefix returns postings for keys matching the leading columns.
func (ix *Index) LookupPrefix(prefix rel.Tuple) []storage.RID {
	return ix.Tree.LookupPrefix(prefix)
}

// Entries returns the number of entries in the index.
func (ix *Index) Entries() int { return ix.Tree.Len() }

// Stats snapshots the index tree's shape (height, keys, entries) and
// traffic (searches, summed search depth, splits). The structural fields
// need the same exclusion as tuple traffic when writers are live.
func (ix *Index) Stats() index.TreeStats { return ix.Tree.Stats() }
