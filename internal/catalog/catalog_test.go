package catalog

import (
	"fmt"
	"path/filepath"
	"testing"

	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

func memCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(storage.NewMemPager(512))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func edgeSchema() *rel.Schema {
	return rel.MustSchema(rel.Column{Name: "src", Type: rel.TypeString}, rel.Column{Name: "dst", Type: rel.TypeString})
}

func TestCreateDropTable(t *testing.T) {
	c := memCatalog(t)
	tb, err := c.CreateTable("parent", edgeSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Table("parent") != tb {
		t.Fatal("table not registered")
	}
	if _, err := c.CreateTable("parent", edgeSchema(), false); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if err := c.DropTable("parent"); err != nil {
		t.Fatal(err)
	}
	if c.Table("parent") != nil {
		t.Fatal("dropped table still visible")
	}
	if err := c.DropTable("parent"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestInsertScanTyped(t *testing.T) {
	c := memCatalog(t)
	tb, err := c.CreateTable("parent", edgeSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, err := tb.Insert(rel.Tuple{rel.NewString(fmt.Sprintf("p%d", i)), rel.NewString(fmt.Sprintf("c%d", i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Count()
	if err != nil || n != 100 {
		t.Fatalf("count = %d, %v", n, err)
	}
	// Arity and type errors.
	if _, err := tb.Insert(rel.Tuple{rel.NewString("x")}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := tb.Insert(rel.Tuple{rel.NewInt(1), rel.NewString("y")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestIndexMaintenance(t *testing.T) {
	c := memCatalog(t)
	tb, err := c.CreateTable("parent", edgeSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("parent_src", "parent", []string{"src"}, false); err != nil {
		t.Fatal(err)
	}
	var rids []storage.RID
	var tuples []rel.Tuple
	for i := 0; i < 50; i++ {
		tu := rel.Tuple{rel.NewString(fmt.Sprintf("p%d", i%10)), rel.NewString(fmt.Sprintf("c%d", i))}
		rid, err := tb.Insert(tu)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		tuples = append(tuples, tu)
	}
	idx := c.Index("parent_src")
	if idx == nil {
		t.Fatal("index not registered")
	}
	got := idx.Lookup(rel.Tuple{rel.NewString("p3")})
	if len(got) != 5 {
		t.Fatalf("index lookup found %d, want 5", len(got))
	}
	// Delete updates the index.
	if err := tb.DeleteRID(rids[3], tuples[3]); err != nil { // p3,c3
		t.Fatal(err)
	}
	if got := idx.Lookup(rel.Tuple{rel.NewString("p3")}); len(got) != 4 {
		t.Fatalf("after delete, index has %d, want 4", len(got))
	}
	// Truncate clears the index.
	if err := tb.Truncate(); err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(rel.Tuple{rel.NewString("p3")}); len(got) != 0 {
		t.Fatalf("after truncate, index has %d entries", len(got))
	}
}

func TestIndexOnExistingData(t *testing.T) {
	c := memCatalog(t)
	tb, _ := c.CreateTable("e", edgeSchema(), false)
	for i := 0; i < 30; i++ {
		if _, err := tb.Insert(rel.Tuple{rel.NewString("a"), rel.NewString(fmt.Sprintf("b%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Index created after the fact must be built from the heap.
	if _, err := c.CreateIndex("e_src", "e", []string{"src"}, false); err != nil {
		t.Fatal(err)
	}
	if n := c.Index("e_src").Entries(); n != 30 {
		t.Fatalf("built index has %d entries, want 30", n)
	}
}

func TestIndexErrors(t *testing.T) {
	c := memCatalog(t)
	if _, err := c.CreateIndex("i", "nosuch", []string{"x"}, false); err == nil {
		t.Fatal("index on missing table accepted")
	}
	c.CreateTable("e", edgeSchema(), false)
	if _, err := c.CreateIndex("i", "e", []string{"nocol"}, false); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if _, err := c.CreateIndex("i", "e", nil, false); err == nil {
		t.Fatal("index with no columns accepted")
	}
	if _, err := c.CreateIndex("ok", "e", []string{"src"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("ok", "e", []string{"dst"}, false); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if err := c.DropIndex("nosuch"); err == nil {
		t.Fatal("drop of missing index accepted")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	pager, err := storage.OpenPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(pager)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.CreateTable("facts", rel.MustSchema(
		rel.Column{Name: "id", Type: rel.TypeInt},
		rel.Column{Name: "name", Type: rel.TypeString},
	), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("facts_id", "facts", []string{"id"}, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := tb.Insert(rel.Tuple{rel.NewInt(int64(i)), rel.NewString(fmt.Sprintf("n%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Temp table must NOT persist.
	if _, err := c.CreateTable("scratch", edgeSchema(), true); err != nil {
		t.Fatal(err)
	}
	if err := pager.Close(); err != nil {
		t.Fatal(err)
	}

	pager2, err := storage.OpenPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer pager2.Close()
	c2, err := Open(pager2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Table("scratch") != nil {
		t.Fatal("temp table persisted")
	}
	tb2 := c2.Table("facts")
	if tb2 == nil {
		t.Fatal("table lost across reopen")
	}
	if !tb2.Schema.Equal(tb.Schema) {
		t.Fatalf("schema lost: %v", tb2.Schema)
	}
	n, err := tb2.Count()
	if err != nil || n != 200 {
		t.Fatalf("count = %d, %v", n, err)
	}
	// Index must be rebuilt with correct contents.
	idx := c2.Index("facts_id")
	if idx == nil {
		t.Fatal("index lost across reopen")
	}
	rids := idx.Lookup(rel.Tuple{rel.NewInt(42)})
	if len(rids) != 1 {
		t.Fatalf("rebuilt index lookup = %v", rids)
	}
	tu, err := tb2.Get(rids[0])
	if err != nil || tu[1].Str != "n42" {
		t.Fatalf("lookup row = %v, %v", tu, err)
	}
}

func TestIndexOnPrefixMatch(t *testing.T) {
	c := memCatalog(t)
	tb, _ := c.CreateTable("e", edgeSchema(), false)
	c.CreateIndex("e_both", "e", []string{"src", "dst"}, false)
	if tb.IndexOn([]int{0}) == nil {
		t.Fatal("prefix [src] should match index (src,dst)")
	}
	if tb.IndexOn([]int{0, 1}) == nil {
		t.Fatal("exact [src,dst] should match")
	}
	if tb.IndexOn([]int{1}) != nil {
		t.Fatal("[dst] must not match index (src,dst)")
	}
}

func TestTablesSorted(t *testing.T) {
	c := memCatalog(t)
	c.CreateTable("zeta", edgeSchema(), false)
	c.CreateTable("alpha", edgeSchema(), false)
	names := c.Tables()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Tables() = %v", names)
	}
}

func TestDropTableDropsIndexes(t *testing.T) {
	c := memCatalog(t)
	c.CreateTable("e", edgeSchema(), false)
	c.CreateIndex("e_src", "e", []string{"src"}, false)
	if err := c.DropTable("e"); err != nil {
		t.Fatal(err)
	}
	if c.Index("e_src") != nil {
		t.Fatal("index survived table drop")
	}
}
