// Package catalog maintains the database schema: tables, their columns,
// and their indexes. The catalog itself is stored in a heap file rooted
// in the pager superblock, so a database file is self-describing. Index
// trees are memory-resident and rebuilt from table heaps at open time.
//
// The catalog also owns index maintenance: all tuple traffic goes
// through Table.Insert / Table.DeleteRID, which keep every index of the
// table synchronized with the heap.
package catalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// Table is a named relation: schema plus heap file plus indexes.
type Table struct {
	Name    string
	Schema  *rel.Schema
	Heap    *storage.HeapFile
	Indexes []*Index
	// Temp marks tables that are never written to the catalog heap
	// (the run-time library's per-iteration temporaries).
	Temp bool

	rid storage.RID // location of this table's catalog record
	// heapHeadFromRecord carries the heap head page ID between record
	// decode and heap open during catalog load.
	heapHeadFromRecord storage.PageID
	// rows is a maintained tuple count used by the planner for join
	// ordering and build-side selection.
	rows int
}

// Rows returns the maintained tuple count (exact; updated on every
// insert, delete and truncate, and recounted at open).
func (t *Table) Rows() int { return t.rows }

// Index is a secondary index over a subset of a table's columns.
type Index struct {
	Name  string
	Table string
	Cols  []string
	Ords  []int // column ordinals in the table schema
	Tree  *indexTree
	Temp  bool

	rid storage.RID
}

// indexTree is defined in tree.go as a thin wrapper to avoid leaking the
// index package through the catalog API surface.

// Catalog is the schema manager for one database.
//
// Two locks with a strict order (ddlMu before mu, never mu alone
// around I/O) split the DDL path:
//
//   - ddlMu serializes whole DDL operations, including their heap-file
//     I/O (catalog records, table heap creation, index builds). Only
//     DDL mutates the registries, so holding ddlMu makes a read-check /
//     build / register sequence atomic against other DDL.
//   - mu guards the name→table/index maps only, and is held just long
//     enough to read or swap map entries. No storage I/O ever happens
//     under it (dkblint's lockscope analyzer enforces this), so name
//     resolution never waits on disk latency behind a concurrent
//     CREATE/DROP — a regression the original single-mutex layout had.
//
// Tuple traffic on a *Table* (Insert/DeleteRID/Scan) is not serialized
// here — concurrent writers of one table must coordinate above this
// layer (the server's ConcurrentTestbed lock does).
type Catalog struct {
	pager   *storage.Pager
	heap    *storage.HeapFile // nil until Open
	ddlMu   sync.Mutex
	mu      sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index
}

// Open loads (or initializes) the catalog of the database in pager.
func Open(pager *storage.Pager) (*Catalog, error) {
	root, err := pager.EnsureSuperblock()
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		pager:   pager,
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
	}
	if root == storage.InvalidPageID {
		h, err := storage.CreateHeap(pager)
		if err != nil {
			return nil, err
		}
		if err := pager.SetRoot(h.Head()); err != nil {
			return nil, err
		}
		c.heap = h
		return c, nil
	}
	c.heap = storage.OpenHeap(pager, root)
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// load replays catalog records and rebuilds index trees.
func (c *Catalog) load() error {
	type pendingIndex struct {
		rec []byte
		rid storage.RID
	}
	var idxRecs []pendingIndex
	err := c.heap.Scan(func(rid storage.RID, rec []byte) error {
		if len(rec) == 0 {
			return fmt.Errorf("catalog: empty record at %s", rid)
		}
		switch rec[0] {
		case recTable:
			t, err := decodeTableRecord(rec)
			if err != nil {
				return err
			}
			t.rid = rid
			t.Heap = storage.OpenHeap(c.pager, t.heapHeadFromRecord)
			n, err := t.Heap.Count()
			if err != nil {
				return err
			}
			t.rows = n
			c.tables[t.Name] = t
			return nil
		case recIndex:
			cp := make([]byte, len(rec))
			copy(cp, rec)
			idxRecs = append(idxRecs, pendingIndex{rec: cp, rid: rid})
			return nil
		default:
			return fmt.Errorf("catalog: unknown record kind %d at %s", rec[0], rid)
		}
	})
	if err != nil {
		return err
	}
	for _, pi := range idxRecs {
		idx, err := decodeIndexRecord(pi.rec)
		if err != nil {
			return err
		}
		idx.rid = pi.rid
		t, ok := c.tables[idx.Table]
		if !ok {
			return fmt.Errorf("catalog: index %s references missing table %s", idx.Name, idx.Table)
		}
		if err := buildIndex(t, idx); err != nil {
			return err
		}
		// Open runs single-threaded before the catalog is published, so
		// registration needs no locking here.
		t.Indexes = append(t.Indexes, idx)
		c.indexes[idx.Name] = idx
	}
	return nil
}

// buildIndex resolves column ordinals and builds the index tree from
// the table heap. It performs heap I/O and must not be called with c.mu
// held; registration into the catalog maps is the caller's job.
func buildIndex(t *Table, idx *Index) error {
	idx.Ords = make([]int, len(idx.Cols))
	for i, col := range idx.Cols {
		o := t.Schema.Ordinal(col)
		if o < 0 {
			return fmt.Errorf("catalog: index %s: no column %s in table %s", idx.Name, col, t.Name)
		}
		idx.Ords[i] = o
	}
	idx.Tree = newIndexTree()
	return t.Heap.Scan(func(rid storage.RID, rec []byte) error {
		tu, err := rel.DecodeTuple(rec, t.Schema)
		if err != nil {
			return err
		}
		return idx.Tree.Insert(keyOf(tu, idx.Ords), rid)
	})
}

func keyOf(tu rel.Tuple, ords []int) rel.Tuple {
	k := make(rel.Tuple, len(ords))
	for i, o := range ords {
		k[i] = tu[o]
	}
	return k
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Index returns the named index, or nil.
func (c *Catalog) Index(name string) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexes[name]
}

// Tables returns all table names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// CreateTable creates a table. temp tables are invisible to persistence.
func (c *Catalog) CreateTable(name string, schema *rel.Schema, temp bool) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	//dkblint:locksafe DDL serializes on ddlMu off the query path; heap/index I/O must be atomic with the catalog mutation
	c.ddlMu.Lock()
	defer c.ddlMu.Unlock()
	c.mu.RLock()
	_, exists := c.tables[name]
	c.mu.RUnlock()
	if exists {
		// Stable under ddlMu: only DDL adds or removes map entries.
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	h, err := storage.CreateHeap(c.pager)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema, Heap: h, Temp: temp}
	if !temp {
		rid, err := c.heap.Insert(encodeTableRecord(t))
		if err != nil {
			t.Heap.Drop() // compensate: don't leak the fresh heap's pages
			return nil, err
		}
		t.rid = rid
	}
	c.mu.Lock()
	c.tables[name] = t
	c.mu.Unlock()
	return t, nil
}

// DropTable removes a table, its indexes, and releases its pages.
func (c *Catalog) DropTable(name string) error {
	//dkblint:locksafe DDL serializes on ddlMu off the query path; heap/index I/O must be atomic with the catalog mutation
	c.ddlMu.Lock()
	defer c.ddlMu.Unlock()
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("catalog: no table %s", name)
	}
	for _, idx := range append([]*Index(nil), t.Indexes...) {
		if err := c.dropIndexDDL(idx.Name); err != nil {
			return err
		}
	}
	if !t.Temp {
		if err := c.heap.Delete(t.rid); err != nil {
			return err
		}
	}
	c.mu.Lock()
	delete(c.tables, name)
	c.mu.Unlock()
	return t.Heap.Drop()
}

// CreateIndex creates an index on table columns and builds it.
//
// The build scans the table heap outside any catalog lock; excluding
// concurrent writers of that table during DDL is, as for all tuple
// traffic, the caller's contract (the server's testbed lock provides
// it).
func (c *Catalog) CreateIndex(name, table string, cols []string, temp bool) (*Index, error) {
	//dkblint:locksafe DDL serializes on ddlMu off the query path; heap/index I/O must be atomic with the catalog mutation
	c.ddlMu.Lock()
	defer c.ddlMu.Unlock()
	c.mu.RLock()
	_, exists := c.indexes[name]
	t, ok := c.tables[table]
	c.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("catalog: index %s already exists", name)
	}
	if !ok {
		return nil, fmt.Errorf("catalog: no table %s", table)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: index %s has no columns", name)
	}
	idx := &Index{Name: name, Table: table, Cols: cols, Temp: temp || t.Temp}
	if err := buildIndex(t, idx); err != nil {
		return nil, err
	}
	if !idx.Temp {
		rid, err := c.heap.Insert(encodeIndexRecord(idx))
		if err != nil {
			return nil, err
		}
		idx.rid = rid
	}
	c.mu.Lock()
	t.Indexes = append(t.Indexes, idx)
	c.indexes[idx.Name] = idx
	c.mu.Unlock()
	return idx, nil
}

// DropIndex removes an index.
func (c *Catalog) DropIndex(name string) error {
	//dkblint:locksafe DDL serializes on ddlMu off the query path; heap/index I/O must be atomic with the catalog mutation
	c.ddlMu.Lock()
	defer c.ddlMu.Unlock()
	return c.dropIndexDDL(name)
}

// dropIndexDDL is DropIndex with c.ddlMu already held (c.mu must not
// be: the catalog-record delete is heap I/O).
func (c *Catalog) dropIndexDDL(name string) error {
	c.mu.RLock()
	idx, ok := c.indexes[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("catalog: no index %s", name)
	}
	if !idx.Temp {
		if err := c.heap.Delete(idx.rid); err != nil {
			return err
		}
	}
	c.mu.Lock()
	if t := c.tables[idx.Table]; t != nil {
		for i, ti := range t.Indexes {
			if ti == idx {
				t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
				break
			}
		}
	}
	delete(c.indexes, name)
	c.mu.Unlock()
	return nil
}

// ShadowTable replaces a table with a physically separate clone — the
// copy-on-write step of the snapshot commit path. The clone gets a
// fresh heap holding a raw copy of every record and freshly built
// index trees; the original table object is returned unchanged and
// stays fully readable (snapshots holding it keep scanning its heap
// and probing its indexes), but is no longer reachable by name. The
// caller owns the original's heap pages from here on: they are freed
// by the snapshot store once no snapshot references the old version.
//
// Like all DDL, the clone's I/O runs under ddlMu only; the name maps
// swap under mu at the end. Temp tables cannot be shadowed.
func (c *Catalog) ShadowTable(name string) (*Table, error) {
	//dkblint:locksafe DDL serializes on ddlMu off the query path; heap/index I/O must be atomic with the catalog mutation
	c.ddlMu.Lock()
	defer c.ddlMu.Unlock()
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: no table %s", name)
	}
	if t.Temp {
		return nil, fmt.Errorf("catalog: cannot shadow temp table %s", name)
	}
	h, err := storage.CreateHeap(c.pager)
	if err != nil {
		return nil, err
	}
	cleanup := func(err error) (*Table, error) {
		h.Drop() // compensate: don't leak the fresh heap's pages
		return nil, err
	}
	if err := t.Heap.Scan(func(_ storage.RID, rec []byte) error {
		_, err := h.Insert(rec)
		return err
	}); err != nil {
		return cleanup(err)
	}
	nt := &Table{Name: name, Schema: t.Schema, Heap: h, rows: t.rows}
	newIdx := make([]*Index, 0, len(t.Indexes))
	for _, idx := range t.Indexes {
		// Index catalog records reference the table by name, so the
		// persisted record (and its rid) carries over unchanged.
		ni := &Index{Name: idx.Name, Table: idx.Table, Cols: idx.Cols, Temp: idx.Temp, rid: idx.rid}
		if err := buildIndex(nt, ni); err != nil {
			return cleanup(err)
		}
		newIdx = append(newIdx, ni)
	}
	nt.Indexes = newIdx
	// Rewrite the table's catalog record: it embeds the heap head page.
	if err := c.heap.Delete(t.rid); err != nil {
		return cleanup(err)
	}
	rid, err := c.heap.Insert(encodeTableRecord(nt))
	if err != nil {
		return cleanup(err)
	}
	nt.rid = rid
	c.mu.Lock()
	c.tables[name] = nt
	for _, ni := range nt.Indexes {
		c.indexes[ni.Name] = ni
	}
	c.mu.Unlock()
	return t, nil
}

// Flush persists all dirty pages.
func (c *Catalog) Flush() error { return c.pager.Flush() }

// --- Tuple traffic (index-maintaining) ---

// Insert adds a tuple to the table and all its indexes.
func (t *Table) Insert(tu rel.Tuple) (storage.RID, error) {
	if len(tu) != t.Schema.Len() {
		return storage.RID{}, fmt.Errorf("catalog: arity mismatch inserting into %s: got %d, want %d", t.Name, len(tu), t.Schema.Len())
	}
	for i := range tu {
		if tu[i].Kind != t.Schema.Col(i).Type {
			return storage.RID{}, fmt.Errorf("catalog: type mismatch in %s column %s: %v", t.Name, t.Schema.Col(i).Name, tu[i])
		}
	}
	rid, err := t.Heap.Insert(tu.Encode(nil))
	if err != nil {
		return storage.RID{}, err
	}
	for _, idx := range t.Indexes {
		if err := idx.Tree.Insert(keyOf(tu, idx.Ords), rid); err != nil {
			return storage.RID{}, err
		}
	}
	t.rows++
	return rid, nil
}

// DeleteRID removes the tuple at rid from the heap and all indexes. The
// caller supplies the decoded tuple (executors always have it in hand).
func (t *Table) DeleteRID(rid storage.RID, tu rel.Tuple) error {
	for _, idx := range t.Indexes {
		if err := idx.Tree.Delete(keyOf(tu, idx.Ords), rid); err != nil {
			return err
		}
	}
	if err := t.Heap.Delete(rid); err != nil {
		return err
	}
	t.rows--
	return nil
}

// Truncate removes all tuples and clears all indexes.
func (t *Table) Truncate() error {
	if err := t.Heap.Truncate(); err != nil {
		return err
	}
	for _, idx := range t.Indexes {
		idx.Tree = newIndexTree()
	}
	t.rows = 0
	return nil
}

// Scan decodes every tuple. The tuple passed to fn is freshly allocated
// and may be retained.
func (t *Table) Scan(fn func(rid storage.RID, tu rel.Tuple) error) error {
	return t.Heap.Scan(func(rid storage.RID, rec []byte) error {
		tu, err := rel.DecodeTuple(rec, t.Schema)
		if err != nil {
			return fmt.Errorf("catalog: table %s: %w", t.Name, err)
		}
		return fn(rid, tu)
	})
}

// Count returns the number of tuples.
func (t *Table) Count() (int, error) { return t.Heap.Count() }

// Get decodes the tuple at rid.
func (t *Table) Get(rid storage.RID) (rel.Tuple, error) {
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return rel.DecodeTuple(rec, t.Schema)
}

// IndexOn returns an index of the table whose columns start with the
// given ordinals (exact prefix match), or nil. The planner uses this to
// pick access paths.
func (t *Table) IndexOn(ords []int) *Index {
	for _, idx := range t.Indexes {
		if len(idx.Ords) < len(ords) {
			continue
		}
		ok := true
		for i, o := range ords {
			if idx.Ords[i] != o {
				ok = false
				break
			}
		}
		if ok {
			return idx
		}
	}
	return nil
}

// --- Record encodings ---

const (
	recTable byte = 1
	recIndex byte = 2
)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || int(n) > len(buf)-sz {
		return "", nil, fmt.Errorf("catalog: corrupt string field")
	}
	return string(buf[sz : sz+int(n)]), buf[sz+int(n):], nil
}

func encodeTableRecord(t *Table) []byte {
	buf := []byte{recTable}
	buf = appendString(buf, t.Name)
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Heap.Head()))
	buf = binary.AppendUvarint(buf, uint64(t.Schema.Len()))
	for _, col := range t.Schema.Columns() {
		buf = appendString(buf, col.Name)
		buf = append(buf, byte(col.Type))
	}
	return buf
}

func decodeTableRecord(rec []byte) (*Table, error) {
	buf := rec[1:]
	name, buf, err := readString(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("catalog: truncated table record for %s", name)
	}
	head := storage.PageID(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	ncols, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("catalog: truncated table record for %s", name)
	}
	buf = buf[sz:]
	cols := make([]rel.Column, ncols)
	for i := range cols {
		cn, rest, err := readString(buf)
		if err != nil {
			return nil, err
		}
		if len(rest) < 1 {
			return nil, fmt.Errorf("catalog: truncated column in table %s", name)
		}
		cols[i] = rel.Column{Name: cn, Type: rel.Type(rest[0])}
		buf = rest[1:]
	}
	schema, err := rel.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema}
	t.heapHeadFromRecord = head
	return t, nil
}

func encodeIndexRecord(idx *Index) []byte {
	buf := []byte{recIndex}
	buf = appendString(buf, idx.Name)
	buf = appendString(buf, idx.Table)
	buf = binary.AppendUvarint(buf, uint64(len(idx.Cols)))
	for _, c := range idx.Cols {
		buf = appendString(buf, c)
	}
	return buf
}

func decodeIndexRecord(rec []byte) (*Index, error) {
	buf := rec[1:]
	name, buf, err := readString(buf)
	if err != nil {
		return nil, err
	}
	table, buf, err := readString(buf)
	if err != nil {
		return nil, err
	}
	ncols, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("catalog: truncated index record for %s", name)
	}
	buf = buf[sz:]
	cols := make([]string, ncols)
	for i := range cols {
		cols[i], buf, err = readString(buf)
		if err != nil {
			return nil, err
		}
	}
	return &Index{Name: name, Table: table, Cols: cols}, nil
}
