package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

func intKey(vs ...int64) rel.Tuple {
	t := make(rel.Tuple, len(vs))
	for i, v := range vs {
		t[i] = rel.NewInt(v)
	}
	return t
}

func ridFor(i int) storage.RID {
	return storage.RID{Page: storage.PageID(i / 100), Slot: i % 100}
}

func TestBTreeInsertLookup(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(intKey(int64(i)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 || tr.DistinctKeys() != 1000 {
		t.Fatalf("len=%d keys=%d", tr.Len(), tr.DistinctKeys())
	}
	if tr.Height() < 2 {
		t.Fatal("expected splits at 1000 keys")
	}
	for i := 0; i < 1000; i += 17 {
		rids := tr.Lookup(intKey(int64(i)))
		if len(rids) != 1 || rids[0] != ridFor(i) {
			t.Fatalf("lookup %d = %v", i, rids)
		}
	}
	if tr.Lookup(intKey(5000)) != nil {
		t.Fatal("lookup of absent key returned postings")
	}
}

func TestBTreeDuplicatePostings(t *testing.T) {
	tr := New()
	key := intKey(7)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(key, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 50 || tr.DistinctKeys() != 1 {
		t.Fatalf("len=%d keys=%d", tr.Len(), tr.DistinctKeys())
	}
	if got := tr.Lookup(key); len(got) != 50 {
		t.Fatalf("postings = %d", len(got))
	}
	// Exact duplicate (key, rid) rejected.
	if err := tr.Insert(key, ridFor(3)); err == nil {
		t.Fatal("duplicate (key,rid) accepted")
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		if err := tr.Insert(intKey(int64(i%100)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 2 {
		if err := tr.Delete(intKey(int64(i%100)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 250 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	if err := tr.Delete(intKey(0), ridFor(0)); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := tr.Delete(intKey(9999), ridFor(0)); err == nil {
		t.Fatal("delete of absent key accepted")
	}
}

func TestBTreeCompositePrefix(t *testing.T) {
	tr := New()
	n := 0
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 20; b++ {
			if err := tr.Insert(intKey(a, b), ridFor(n)); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	rids := tr.LookupPrefix(intKey(3))
	if len(rids) != 20 {
		t.Fatalf("prefix lookup found %d, want 20", len(rids))
	}
	var keys []rel.Tuple
	tr.AscendPrefix(intKey(7), func(k rel.Tuple, _ []storage.RID) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 20 {
		t.Fatalf("AscendPrefix visited %d, want 20", len(keys))
	}
	for i, k := range keys {
		if k[0].Int != 7 || k[1].Int != int64(i) {
			t.Fatalf("prefix visit %d got key %v", i, k)
		}
	}
	// Full lookup on composite key.
	if got := tr.Lookup(intKey(7, 5)); len(got) != 1 {
		t.Fatalf("composite lookup = %v", got)
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		if err := tr.Insert(intKey(int64(i)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int64
	tr.AscendRange(intKey(25), intKey(75), func(k rel.Tuple, _ []storage.RID) bool {
		seen = append(seen, k[0].Int)
		return true
	})
	if len(seen) != 50 || seen[0] != 25 || seen[len(seen)-1] != 74 {
		t.Fatalf("range scan wrong: %d items, first %d, last %d", len(seen), seen[0], seen[len(seen)-1])
	}
	// Open-ended scans.
	count := 0
	tr.AscendRange(nil, nil, func(rel.Tuple, []storage.RID) bool { count++; return true })
	if count != 100 {
		t.Fatalf("full scan saw %d", count)
	}
	// Early stop.
	count = 0
	tr.AscendRange(nil, nil, func(rel.Tuple, []storage.RID) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early-stop scan saw %d", count)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	tr := New()
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, w := range words {
		if err := tr.Insert(rel.Tuple{rel.NewString(w)}, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	tr.AscendRange(nil, nil, func(k rel.Tuple, _ []storage.RID) bool {
		got = append(got, k[0].Str)
		return true
	})
	want := append([]string(nil), words...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestBTreeRandomizedAgainstModel(t *testing.T) {
	// Model-based test: tree must agree with a map[key][]rid model under
	// random inserts and deletes, and stay structurally valid throughout.
	tr := New()
	model := make(map[string][]storage.RID)
	keyOf := make(map[string]rel.Tuple)
	r := rand.New(rand.NewSource(7))
	nextRID := 0
	for op := 0; op < 8000; op++ {
		k := intKey(int64(r.Intn(200)), int64(r.Intn(5)))
		ks := k.Key()
		if r.Intn(3) > 0 || len(model[ks]) == 0 {
			rid := ridFor(nextRID)
			nextRID++
			if err := tr.Insert(k, rid); err != nil {
				t.Fatal(err)
			}
			model[ks] = append(model[ks], rid)
			keyOf[ks] = k
		} else {
			rids := model[ks]
			rid := rids[r.Intn(len(rids))]
			if err := tr.Delete(k, rid); err != nil {
				t.Fatal(err)
			}
			for j, x := range rids {
				if x == rid {
					model[ks] = append(rids[:j], rids[j+1:]...)
					break
				}
			}
			if len(model[ks]) == 0 {
				delete(model, ks)
				delete(keyOf, ks)
			}
		}
		if op%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.DistinctKeys() != len(model) {
		t.Fatalf("distinct keys %d, model %d", tr.DistinctKeys(), len(model))
	}
	for ks, want := range model {
		got := tr.Lookup(keyOf[ks])
		if len(got) != len(want) {
			t.Fatalf("key %s: %d postings, want %d", ks, len(got), len(want))
		}
		gotSet := make(map[storage.RID]bool, len(got))
		for _, rid := range got {
			gotSet[rid] = true
		}
		for _, rid := range want {
			if !gotSet[rid] {
				t.Fatalf("key %s missing rid %s", ks, rid)
			}
		}
	}
}

func TestBTreeDescendingInsertOrder(t *testing.T) {
	tr := New()
	for i := 999; i >= 0; i-- {
		if err := tr.Insert(intKey(int64(i)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	tr.AscendRange(nil, nil, func(k rel.Tuple, _ []storage.RID) bool {
		if k[0].Int <= prev {
			t.Fatalf("out of order: %d after %d", k[0].Int, prev)
		}
		prev = k[0].Int
		return true
	})
	if prev != 999 {
		t.Fatalf("last key %d", prev)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(intKey(int64(i)), ridFor(i))
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		_ = tr.Insert(intKey(int64(i)), ridFor(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Lookup(intKey(int64(i % 100000)))
	}
}

func ExampleBTree() {
	tr := New()
	_ = tr.Insert(rel.Tuple{rel.NewString("ann"), rel.NewInt(1)}, storage.RID{Page: 0, Slot: 0})
	_ = tr.Insert(rel.Tuple{rel.NewString("bob"), rel.NewInt(2)}, storage.RID{Page: 0, Slot: 1})
	tr.AscendPrefix(rel.Tuple{rel.NewString("ann")}, func(k rel.Tuple, rids []storage.RID) bool {
		fmt.Println(k, len(rids))
		return true
	})
	// Output: (ann, 1) 1
}

func TestTreeStats(t *testing.T) {
	tr := New()
	if st := tr.Stats(); st.Height != 1 || st.Entries != 0 || st.Splits != 0 {
		t.Fatalf("empty tree stats = %+v", st)
	}
	// Enough keys to force splits (degree is 64).
	for i := 0; i < 200; i++ {
		if err := tr.Insert(rel.Tuple{rel.NewInt(int64(i))}, storage.RID{Page: storage.PageID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	base := tr.Stats()
	if base.Height != int64(tr.Height()) || base.Entries != 200 || base.Keys != 200 {
		t.Fatalf("stats shape = %+v", base)
	}
	if base.Splits == 0 {
		t.Fatal("200 inserts at degree 64 must split at least once")
	}
	tr.Lookup(rel.Tuple{rel.NewInt(7)})
	tr.Lookup(rel.Tuple{rel.NewInt(8)})
	st := tr.Stats()
	if got := st.Searches - base.Searches; got != 2 {
		t.Fatalf("searches delta = %d, want 2", got)
	}
	// Each lookup descends Height nodes.
	if got := st.DepthTotal - base.DepthTotal; got != 2*base.Height {
		t.Fatalf("depth delta = %d, want %d", got, 2*base.Height)
	}
}
