// Package index implements the B+tree secondary index used by the
// testbed's DBMS. The paper's experiments depend critically on indexed
// access paths — the flatness of rule-extraction time in the size of the
// stored rule base (Fig 7) and of dictionary-read time in the number of
// stored predicates (Fig 9) both come from indexes on the join columns of
// the system relations — so the index is a first-class substrate here.
//
// Keys are composite tuples compared lexicographically; duplicates are
// supported via RID postings lists in the leaves. Leaves are chained for
// range scans. The tree is memory-resident and rebuilt from the heap file
// when a database is reopened (the catalog records index definitions, not
// index pages), which keeps the on-disk format to heap pages only.
package index

import (
	"fmt"
	"sync/atomic"

	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// degree is the maximum number of keys per node. 64 keeps the tree
// shallow for the table sizes in the paper's experiments (up to ~20k
// tuples) while exercising splits in tests.
const degree = 64

// BTree is a B+tree mapping composite keys to RID postings.
type BTree struct {
	root   node
	height int
	size   int // number of (key, rid) pairs, counting duplicates
	keys   int // number of distinct keys

	// Traffic counters. searches/depthSum are atomics because lookups run
	// concurrently (the server admits parallel readers over one tree);
	// splits only moves under write exclusivity but is atomic too so a
	// metrics snapshot taken mid-write reads cleanly.
	searches atomic.Int64
	depthSum atomic.Int64
	splits   atomic.Int64
}

// TreeStats is a snapshot of a tree's shape and traffic: structural
// fields (height, distinct keys, total entries) plus cumulative search
// count, summed search depth (descents visit DepthTotal/Searches nodes
// on average) and node splits.
type TreeStats struct {
	Height     int64 `json:"height"`
	Keys       int64 `json:"keys"`
	Entries    int64 `json:"entries"`
	Searches   int64 `json:"searches"`
	DepthTotal int64 `json:"depth_total"`
	Splits     int64 `json:"splits"`
}

// Stats snapshots the tree. The structural fields (Height, Keys,
// Entries) are maintained by writers without synchronization, so a
// snapshot concurrent with writes needs the same exclusion as tuple
// traffic (the server's testbed lock); the counters are atomic.
func (t *BTree) Stats() TreeStats {
	return TreeStats{
		Height:     int64(t.height),
		Keys:       int64(t.keys),
		Entries:    int64(t.size),
		Searches:   t.searches.Load(),
		DepthTotal: t.depthSum.Load(),
		Splits:     t.splits.Load(),
	}
}

type node interface{ isNode() }

type leaf struct {
	keys []rel.Tuple
	rids [][]storage.RID
	next *leaf
	prev *leaf
}

type inner struct {
	// keys[i] is the smallest key in children[i+1]'s subtree.
	keys     []rel.Tuple
	children []node
}

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// New returns an empty tree.
func New() *BTree {
	return &BTree{root: &leaf{}, height: 1}
}

// Len returns the number of (key, rid) entries, counting duplicates.
func (t *BTree) Len() int { return t.size }

// DistinctKeys returns the number of distinct keys.
func (t *BTree) DistinctKeys() int { return t.keys }

// Height returns the tree height (1 = a single leaf).
func (t *BTree) Height() int { return t.height }

// search finds the leaf that key belongs to.
func (t *BTree) search(key rel.Tuple) *leaf {
	t.searches.Add(1)
	n := t.root
	depth := int64(0)
	for {
		depth++
		switch v := n.(type) {
		case *leaf:
			t.depthSum.Add(depth)
			return v
		case *inner:
			i := 0
			for i < len(v.keys) && rel.CompareTuples(key, v.keys[i]) >= 0 {
				i++
			}
			n = v.children[i]
		}
	}
}

// leafPos returns the position of key within lf, and whether it is
// present.
func leafPos(lf *leaf, key rel.Tuple) (int, bool) {
	lo, hi := 0, len(lf.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if rel.CompareTuples(lf.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(lf.keys) && rel.CompareTuples(lf.keys[lo], key) == 0
}

// Insert adds a (key, rid) pair. Duplicate keys accumulate postings; a
// duplicate (key, rid) pair is rejected.
func (t *BTree) Insert(key rel.Tuple, rid storage.RID) error {
	key = key.Clone()
	split, sepKey, err := t.insert(t.root, key, rid)
	if err != nil {
		return err
	}
	if split != nil {
		t.root = &inner{keys: []rel.Tuple{sepKey}, children: []node{t.root, split}}
		t.height++
	}
	return nil
}

// insert descends into n; if n splits, returns the new right sibling and
// the separator key.
func (t *BTree) insert(n node, key rel.Tuple, rid storage.RID) (node, rel.Tuple, error) {
	switch v := n.(type) {
	case *leaf:
		i, found := leafPos(v, key)
		if found {
			for _, r := range v.rids[i] {
				if r == rid {
					return nil, nil, fmt.Errorf("index: duplicate entry %v -> %s", key, rid)
				}
			}
			v.rids[i] = append(v.rids[i], rid)
			t.size++
			return nil, nil, nil
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = key
		v.rids = append(v.rids, nil)
		copy(v.rids[i+1:], v.rids[i:])
		v.rids[i] = []storage.RID{rid}
		t.size++
		t.keys++
		if len(v.keys) <= degree {
			return nil, nil, nil
		}
		// Split leaf.
		t.splits.Add(1)
		mid := len(v.keys) / 2
		right := &leaf{
			keys: append([]rel.Tuple(nil), v.keys[mid:]...),
			rids: append([][]storage.RID(nil), v.rids[mid:]...),
			next: v.next,
			prev: v,
		}
		if v.next != nil {
			v.next.prev = right
		}
		v.keys = v.keys[:mid]
		v.rids = v.rids[:mid]
		v.next = right
		return right, right.keys[0].Clone(), nil

	case *inner:
		i := 0
		for i < len(v.keys) && rel.CompareTuples(key, v.keys[i]) >= 0 {
			i++
		}
		split, sepKey, err := t.insert(v.children[i], key, rid)
		if err != nil || split == nil {
			return nil, nil, err
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = sepKey
		v.children = append(v.children, nil)
		copy(v.children[i+2:], v.children[i+1:])
		v.children[i+1] = split
		if len(v.keys) <= degree {
			return nil, nil, nil
		}
		// Split inner: middle key moves up.
		t.splits.Add(1)
		mid := len(v.keys) / 2
		upKey := v.keys[mid]
		right := &inner{
			keys:     append([]rel.Tuple(nil), v.keys[mid+1:]...),
			children: append([]node(nil), v.children[mid+1:]...),
		}
		v.keys = v.keys[:mid]
		v.children = v.children[:mid+1]
		return right, upKey, nil
	}
	return nil, nil, fmt.Errorf("index: unknown node type %T", n)
}

// Delete removes a (key, rid) pair. It returns an error if the pair is
// absent. Underfull nodes are tolerated (no rebalancing): the testbed's
// delete traffic is table truncation and temp-table teardown, which drop
// whole indexes; point deletes only need correctness, and lookups remain
// O(log n) since keys stay ordered.
func (t *BTree) Delete(key rel.Tuple, rid storage.RID) error {
	lf := t.search(key)
	i, found := leafPos(lf, key)
	if !found {
		return fmt.Errorf("index: delete of absent key %v", key)
	}
	for j, r := range lf.rids[i] {
		if r == rid {
			lf.rids[i] = append(lf.rids[i][:j], lf.rids[i][j+1:]...)
			t.size--
			if len(lf.rids[i]) == 0 {
				lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
				lf.rids = append(lf.rids[:i], lf.rids[i+1:]...)
				t.keys--
			}
			return nil
		}
	}
	return fmt.Errorf("index: delete of absent rid %s under key %v", rid, key)
}

// Lookup returns the postings for an exact key match (nil if absent).
func (t *BTree) Lookup(key rel.Tuple) []storage.RID {
	lf := t.search(key)
	i, found := leafPos(lf, key)
	if !found {
		return nil
	}
	return append([]storage.RID(nil), lf.rids[i]...)
}

// LookupPrefix returns the postings for every key whose leading columns
// equal prefix. Used for indexes queried on a prefix of their columns.
func (t *BTree) LookupPrefix(prefix rel.Tuple) []storage.RID {
	var out []storage.RID
	t.AscendPrefix(prefix, func(_ rel.Tuple, rids []storage.RID) bool {
		out = append(out, rids...)
		return true
	})
	return out
}

// AscendPrefix visits keys with the given prefix in order. fn returning
// false stops the iteration. An empty prefix visits all keys.
func (t *BTree) AscendPrefix(prefix rel.Tuple, fn func(key rel.Tuple, rids []storage.RID) bool) {
	lf := t.search(prefix)
	i, _ := leafPos(lf, prefix)
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			k := lf.keys[i]
			if len(prefix) > 0 {
				if len(k) < len(prefix) {
					return
				}
				if rel.CompareTuples(k[:len(prefix)], prefix) != 0 {
					return
				}
			}
			if !fn(k, lf.rids[i]) {
				return
			}
		}
		lf = lf.next
		i = 0
	}
}

// AscendRange visits keys k with lo <= k < hi in order. A nil lo starts
// at the smallest key; a nil hi runs to the end.
func (t *BTree) AscendRange(lo, hi rel.Tuple, fn func(key rel.Tuple, rids []storage.RID) bool) {
	var lf *leaf
	var i int
	if lo == nil {
		lf = t.leftmost()
	} else {
		lf = t.search(lo)
		i, _ = leafPos(lf, lo)
	}
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			if hi != nil && rel.CompareTuples(lf.keys[i], hi) >= 0 {
				return
			}
			if !fn(lf.keys[i], lf.rids[i]) {
				return
			}
		}
		lf = lf.next
		i = 0
	}
}

func (t *BTree) leftmost() *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			n = v.children[0]
		}
	}
}

// Validate checks structural invariants (ordering, separator bounds,
// leaf chaining) and returns the first violation found. Test support.
func (t *BTree) Validate() error {
	var prevLeaf *leaf
	var prevKey rel.Tuple
	count, distinct := 0, 0
	var walk func(n node, lo, hi rel.Tuple) error
	walk = func(n node, lo, hi rel.Tuple) error {
		switch v := n.(type) {
		case *leaf:
			if v.prev != prevLeaf {
				return fmt.Errorf("index: broken leaf back-link")
			}
			if prevLeaf != nil && prevLeaf.next != v {
				return fmt.Errorf("index: broken leaf chain")
			}
			prevLeaf = v
			for i, k := range v.keys {
				if prevKey != nil && rel.CompareTuples(prevKey, k) >= 0 {
					return fmt.Errorf("index: keys out of order at %v", k)
				}
				if lo != nil && rel.CompareTuples(k, lo) < 0 {
					return fmt.Errorf("index: key %v below subtree bound %v", k, lo)
				}
				if hi != nil && rel.CompareTuples(k, hi) >= 0 {
					return fmt.Errorf("index: key %v above subtree bound %v", k, hi)
				}
				if len(v.rids[i]) == 0 {
					return fmt.Errorf("index: empty postings for key %v", k)
				}
				prevKey = k
				distinct++
				count += len(v.rids[i])
			}
			return nil
		case *inner:
			if len(v.children) != len(v.keys)+1 {
				return fmt.Errorf("index: inner node with %d keys, %d children", len(v.keys), len(v.children))
			}
			for i, c := range v.children {
				var cl, ch rel.Tuple
				if i > 0 {
					cl = v.keys[i-1]
				} else {
					cl = lo
				}
				if i < len(v.keys) {
					ch = v.keys[i]
				} else {
					ch = hi
				}
				if err := walk(c, cl, ch); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("index: unknown node type %T", n)
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if count != t.size || distinct != t.keys {
		return fmt.Errorf("index: size mismatch: counted %d/%d, recorded %d/%d", count, distinct, t.size, t.keys)
	}
	if prevLeaf != nil && prevLeaf.next != nil {
		return fmt.Errorf("index: leaf chain extends past rightmost leaf")
	}
	return nil
}
