package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// TestQuickInsertedKeysRetrievable: any batch of distinct (key, rid)
// pairs inserted into a fresh tree is fully retrievable, the tree
// validates, and iteration yields keys in sorted order.
func TestQuickInsertedKeysRetrievable(t *testing.T) {
	f := func(keys []int64, seed int64) bool {
		tr := New()
		r := rand.New(rand.NewSource(seed))
		inserted := make(map[int64][]storage.RID)
		for i, k := range keys {
			rid := storage.RID{Page: storage.PageID(r.Intn(100)), Slot: i}
			dup := false
			for _, have := range inserted[k] {
				if have == rid {
					dup = true
				}
			}
			if dup {
				continue
			}
			if err := tr.Insert(intKey(k), rid); err != nil {
				return false
			}
			inserted[k] = append(inserted[k], rid)
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		for k, rids := range inserted {
			got := tr.Lookup(intKey(k))
			if len(got) != len(rids) {
				return false
			}
		}
		// Sorted iteration.
		prev := int64(0)
		first := true
		ok := true
		tr.AscendRange(nil, nil, func(key rel.Tuple, _ []storage.RID) bool {
			if !first && key[0].Int <= prev {
				ok = false
				return false
			}
			prev = key[0].Int
			first = false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteRestoresAbsence: inserting then deleting a batch
// leaves an empty, valid tree.
func TestQuickDeleteRestoresAbsence(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New()
		seen := map[int16]bool{}
		var distinct []int16
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				distinct = append(distinct, k)
			}
		}
		for i, k := range distinct {
			if err := tr.Insert(intKey(int64(k)), ridFor(i)); err != nil {
				return false
			}
		}
		for i, k := range distinct {
			if err := tr.Delete(intKey(int64(k)), ridFor(i)); err != nil {
				return false
			}
		}
		return tr.Len() == 0 && tr.DistinctKeys() == 0 && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeMatchesFilter: AscendRange(lo, hi) returns exactly the
// inserted keys within [lo, hi).
func TestQuickRangeMatchesFilter(t *testing.T) {
	f := func(keys []int16, lo, hi int16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		seen := map[int16]bool{}
		for i, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := tr.Insert(intKey(int64(k)), ridFor(i)); err != nil {
				return false
			}
		}
		want := 0
		for k := range seen {
			if k >= lo && k < hi {
				want++
			}
		}
		got := 0
		tr.AscendRange(intKey(int64(lo)), intKey(int64(hi)), func(rel.Tuple, []storage.RID) bool {
			got++
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
