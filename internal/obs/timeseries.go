package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TimeSeries is a fixed-window retained-telemetry ring: a background
// sampler snapshots every registry metric at a configurable interval
// into a ring of the last N samples, and readers compute windowed
// deltas, rates and quantiles from the retained samples. The paper's
// experiments are all time series (cost as the D/KB evolves); this is
// the process-side equivalent — the server's counters over the last ten
// minutes, not just their current values.
//
// Concurrency follows the SlowLog pattern: each sample lands in the
// next ring slot with one atomic cursor add and one atomic pointer
// store; readers load slots with atomic loads and never block the
// sampler. The sampler itself is a single goroutine (plus SampleNow for
// deterministic tests), so samples are strictly ordered in time.
//
// A nil *TimeSeries disables retention entirely — every method is
// nil-safe and NewTimeSeries returns nil for a nil registry, a
// non-positive interval or a non-positive slot count — so a server with
// sampling off runs zero background goroutines and adds zero
// allocations anywhere.
type TimeSeries struct {
	reg      *Registry
	interval time.Duration
	slots    []atomic.Pointer[Sample]
	cursor   atomic.Uint64 // next slot to write (monotonic)

	// mu serializes writers (the ticker goroutine and SampleNow), so
	// sample timestamps are monotonic in ring order.
	mu       sync.Mutex
	stop     chan struct{}
	done     chan struct{} // closed when the sampler goroutine exits
	stopOnce sync.Once
	started  atomic.Bool
}

// Sample is one sampling instant: every registry metric at one moment.
type Sample struct {
	At     time.Time
	Points []SamplePoint // sorted by name
}

// Default sampling configuration (dkbd's -sample-interval/-sample-window
// defaults): one sample per second, ten minutes retained.
const (
	DefaultSampleInterval = time.Second
	DefaultSampleWindow   = 600
)

// NewTimeSeries builds a ring sampling reg every interval, retaining
// slots samples. Returns nil (sampling disabled, all methods no-ops)
// when reg is nil, interval <= 0 or slots <= 0. The returned ring does
// not sample until Start (or SampleNow) is called.
func NewTimeSeries(reg *Registry, interval time.Duration, slots int) *TimeSeries {
	if reg == nil || interval <= 0 || slots <= 0 {
		return nil
	}
	return &TimeSeries{
		reg:      reg,
		interval: interval,
		slots:    make([]atomic.Pointer[Sample], slots),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling interval (0 on a nil ring).
func (ts *TimeSeries) Interval() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.interval
}

// Capacity returns the ring size (0 on a nil ring).
func (ts *TimeSeries) Capacity() int {
	if ts == nil {
		return 0
	}
	return len(ts.slots)
}

// Samples returns how many samples have ever been taken (old ones
// beyond Capacity have been overwritten).
func (ts *TimeSeries) Samples() int64 {
	if ts == nil {
		return 0
	}
	return int64(ts.cursor.Load())
}

// Start launches the background sampler. Idempotent and nil-safe; the
// first sample is taken immediately so a freshly started server has a
// baseline before the first tick.
func (ts *TimeSeries) Start() {
	if ts == nil || !ts.started.CompareAndSwap(false, true) {
		return
	}
	ts.SampleNow()
	go ts.run()
}

// Stop halts the background sampler and waits for it to exit — no
// sample lands after Stop returns. Idempotent and nil-safe. Retained
// samples stay readable after Stop.
func (ts *TimeSeries) Stop() {
	if ts == nil {
		return
	}
	ts.stopOnce.Do(func() { close(ts.stop) })
	if ts.started.Load() {
		<-ts.done
	}
}

func (ts *TimeSeries) run() {
	defer close(ts.done)
	tick := time.NewTicker(ts.interval)
	defer tick.Stop()
	for {
		select {
		case <-ts.stop:
			return
		case <-tick.C:
			ts.SampleNow()
		}
	}
}

// SampleNow takes one sample synchronously — the ticker's body, also
// called directly by tests that need deterministic sample boundaries.
func (ts *TimeSeries) SampleNow() {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s := &Sample{At: time.Now(), Points: ts.reg.sample()}
	i := ts.cursor.Add(1) - 1
	ts.slots[i%uint64(len(ts.slots))].Store(s)
}

// retained returns the retained samples ordered oldest first. Readers
// see a consistent ring view: slots are read newest-to-oldest by cursor
// position, so a concurrent sampler overwriting the oldest slot can at
// worst make that slot appear newer, which the timestamp ordering check
// discards.
func (ts *TimeSeries) retained() []*Sample {
	if ts == nil {
		return nil
	}
	cur := ts.cursor.Load()
	n := uint64(len(ts.slots))
	out := make([]*Sample, 0, len(ts.slots))
	// Walk backwards from the most recently written slot.
	steps := cur
	if steps > n {
		steps = n
	}
	var newest time.Time
	for k := uint64(0); k < steps; k++ {
		i := (cur - 1 - k) % n
		s := ts.slots[i].Load()
		if s == nil {
			continue
		}
		// Discard out-of-order slots (a racing overwrite).
		if !newest.IsZero() && s.At.After(newest) {
			continue
		}
		newest = s.At
		out = append(out, s)
	}
	// Reverse to oldest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SeriesStat is one metric's windowed statistics.
type SeriesStat struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Last is the newest sampled value (counter/gauge value; histogram
	// observation count), First the oldest in the window.
	Last  int64 `json:"last"`
	First int64 `json:"first"`
	// Delta is Last - First; Rate is Delta per second over the window's
	// actual span. Meaningful for counters and cumulative gauges; for
	// level gauges read Min/Max/Last instead.
	Delta int64   `json:"delta"`
	Rate  float64 `json:"rate"`
	// Min and Max bound the sampled values inside the window.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// P50 and P99 are windowed quantiles for histograms — computed from
	// the bucket-count delta between the window's edges, so they describe
	// only the observations that happened inside the window.
	P50 int64 `json:"p50,omitempty"`
	P99 int64 `json:"p99,omitempty"`
	// Points are the raw sampled values, oldest first, present only when
	// the reader asked for them (dkbtop's sparklines).
	Points []int64 `json:"points,omitempty"`
}

// TimeSeriesSnapshot is the JSON document served by /timeseries: the
// ring configuration plus per-metric windowed statistics.
type TimeSeriesSnapshot struct {
	IntervalNs int64 `json:"interval_ns"`
	Capacity   int   `json:"capacity"`
	Samples    int64 `json:"samples"`
	// WindowNs is the actual span covered (newest.At - oldest.At of the
	// samples used), which can be shorter than requested on a young ring.
	WindowNs int64        `json:"window_ns"`
	Series   []SeriesStat `json:"series"`
}

// Window computes per-metric statistics over the trailing window d
// (d <= 0 means the whole retained ring), attaching up to points raw
// values per series when points > 0. Nil-safe: a nil ring returns an
// empty snapshot.
func (ts *TimeSeries) Window(d time.Duration, points int) TimeSeriesSnapshot {
	snap := TimeSeriesSnapshot{
		IntervalNs: int64(ts.Interval()),
		Capacity:   ts.Capacity(),
		Samples:    ts.Samples(),
		Series:     []SeriesStat{},
	}
	samples := ts.retained()
	if d > 0 && len(samples) > 0 {
		cutoff := samples[len(samples)-1].At.Add(-d)
		lo := 0
		for lo < len(samples)-1 && samples[lo].At.Before(cutoff) {
			lo++
		}
		samples = samples[lo:]
	}
	if len(samples) == 0 {
		return snap
	}
	oldest, newest := samples[0], samples[len(samples)-1]
	span := newest.At.Sub(oldest.At)
	snap.WindowNs = int64(span)

	// Index the oldest sample's points by name for first-value and
	// histogram bucket-delta lookups.
	first := make(map[string]SamplePoint, len(oldest.Points))
	for _, p := range oldest.Points {
		first[p.Name] = p
	}
	// Seed one stat per series in the newest sample (the authoritative
	// metric set — tables created mid-window appear, dropped ones age
	// out), then sweep every sample once to fill min/max/points.
	index := make(map[string]int, len(newest.Points))
	snap.Series = make([]SeriesStat, 0, len(newest.Points))
	for _, p := range newest.Points {
		st := SeriesStat{Name: p.Name, Kind: p.Kind, Last: p.Value, Min: p.Value, Max: p.Value}
		if f, ok := first[p.Name]; ok {
			st.First = f.Value
			st.Delta = p.Value - f.Value
			if span > 0 {
				st.Rate = float64(st.Delta) / span.Seconds()
			}
			if p.Kind == "histogram" {
				st.P50, st.P99 = windowedQuantiles(f.Buckets, p.Buckets)
			}
		}
		index[p.Name] = len(snap.Series)
		snap.Series = append(snap.Series, st)
	}
	for _, s := range samples {
		for _, q := range s.Points {
			i, ok := index[q.Name]
			if !ok {
				continue
			}
			st := &snap.Series[i]
			if q.Value < st.Min {
				st.Min = q.Value
			}
			if q.Value > st.Max {
				st.Max = q.Value
			}
			if points > 0 {
				st.Points = append(st.Points, q.Value)
			}
		}
	}
	if points > 0 {
		for i := range snap.Series {
			if pts := snap.Series[i].Points; len(pts) > points {
				snap.Series[i].Points = pts[len(pts)-points:]
			}
		}
	}
	return snap
}

// windowedQuantiles computes p50/p99 from the bucket-count delta
// between the window's edge samples.
func windowedQuantiles(oldBuckets, newBuckets []int64) (p50, p99 int64) {
	if len(newBuckets) == 0 {
		return 0, 0
	}
	delta := make([]int64, len(newBuckets))
	for i := range newBuckets {
		delta[i] = newBuckets[i]
		if i < len(oldBuckets) {
			delta[i] -= oldBuckets[i]
		}
		if delta[i] < 0 {
			delta[i] = 0
		}
	}
	return quantileFromBuckets(delta, 0.50), quantileFromBuckets(delta, 0.99)
}

// Stat returns one metric's windowed statistics (false when the metric
// is absent from the window). Convenience for tests and dkbtop.
func (ts *TimeSeries) Stat(name string, d time.Duration) (SeriesStat, bool) {
	for _, st := range ts.Window(d, 0).Series {
		if st.Name == name {
			return st, true
		}
	}
	return SeriesStat{}, false
}

// WriteJSON writes the windowed snapshot as indented JSON (the
// /timeseries debug endpoint body).
func (ts *TimeSeries) WriteJSON(w io.Writer, d time.Duration, points int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts.Window(d, points))
}
