package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Query IDs identify one request end to end: minted by whichever side
// sees the query first (dkbsh, the client library, or the server
// session), carried over the wire in the QUERY frame, echoed in the
// RESULT frame, and stamped into the structured log, the span trace and
// the slow-query ring — so one query can be followed from client
// prompt to heap I/O.
//
// An ID is a non-zero uint64: a per-process counter seeded once from
// crypto/rand, so IDs minted by different processes (a client and a
// server, two clients) collide only with birthday-bound probability
// while staying cheap to mint (one atomic add, no allocation).

// queryIDCounter is the process-wide mint state.
var queryIDCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		queryIDCounter.Store(binary.BigEndian.Uint64(b[:]))
	} else {
		queryIDCounter.Store(uint64(time.Now().UnixNano()))
	}
}

// NewQueryID mints a process-unique, non-zero query ID.
func NewQueryID() uint64 {
	for {
		if id := queryIDCounter.Add(1); id != 0 {
			return id
		}
	}
}

// FormatQueryID renders an ID the way every surface prints it:
// "q" + 16 hex digits. FormatQueryID(0) is "" — zero means "no ID".
func FormatQueryID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("q%016x", id)
}

// ParseQueryID parses the FormatQueryID form ("q3f2a…", case-insensitive,
// leading zeros optional) or a plain decimal/0x-hex integer.
func ParseQueryID(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("obs: empty query id")
	}
	if s[0] == 'q' || s[0] == 'Q' {
		id, err := strconv.ParseUint(s[1:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("obs: bad query id %q", s)
		}
		return id, nil
	}
	id, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad query id %q", s)
	}
	return id, nil
}
