package obs

import (
	"math"
	"runtime/metrics"
)

// Runtime metric names contributed by RegisterRuntimeMetrics. Process
// health rides in the same registry as the engine counters, so the
// time-series ring retains goroutine counts and GC pauses alongside
// query rates and one window query answers "was that latency spike a
// GC pause or a reader convoy?".
const (
	runtimeGoroutines  = "runtime.goroutines"
	runtimeHeapInuse   = "runtime.heap_inuse_bytes"
	runtimeGCCycles    = "runtime.gc_cycles"
	runtimeGCPauseP99  = "runtime.gc_pause_p99_ns"
	runtimeTotalAlloc = "runtime.heap_allocs_bytes"
)

// runtimeSamples are the runtime/metrics series the collector reads.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/gc/heap/allocs:bytes",
}

// RegisterRuntimeMetrics contributes a process-health collector to the
// registry: goroutine count, heap in-use bytes, cumulative GC cycles
// and allocated bytes, and the GC pause p99 — all read through
// runtime/metrics, so one batched read per registry snapshot.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	r.CollectorFunc("runtime", func() []Metric {
		local := make([]metrics.Sample, len(samples))
		copy(local, samples)
		metrics.Read(local)
		out := make([]Metric, 0, len(local))
		add := func(name, kind string, v int64) {
			out = append(out, Metric{Name: name, Kind: kind, Value: v})
		}
		for _, s := range local {
			switch s.Name {
			case "/sched/goroutines:goroutines":
				if s.Value.Kind() == metrics.KindUint64 {
					add(runtimeGoroutines, "gauge", int64(s.Value.Uint64()))
				}
			case "/memory/classes/heap/objects:bytes":
				if s.Value.Kind() == metrics.KindUint64 {
					add(runtimeHeapInuse, "gauge", int64(s.Value.Uint64()))
				}
			case "/gc/cycles/total:gc-cycles":
				if s.Value.Kind() == metrics.KindUint64 {
					add(runtimeGCCycles, "counter", int64(s.Value.Uint64()))
				}
			case "/gc/heap/allocs:bytes":
				if s.Value.Kind() == metrics.KindUint64 {
					add(runtimeTotalAlloc, "counter", int64(s.Value.Uint64()))
				}
			case "/gc/pauses:seconds":
				if s.Value.Kind() == metrics.KindFloat64Histogram {
					if h := s.Value.Float64Histogram(); h != nil {
						add(runtimeGCPauseP99, "gauge", float64HistQuantile(h, 0.99))
					}
				}
			}
		}
		return out
	})
}

// float64HistQuantile estimates the q-quantile of a runtime/metrics
// float histogram, returned in nanoseconds (the histograms this package
// reads are all seconds-valued).
func float64HistQuantile(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
			// bound, clamped for the +Inf tail.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return int64(ub * 1e9)
		}
	}
	return 0
}
