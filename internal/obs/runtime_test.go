package obs

import (
	"runtime"
	"testing"
)

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(nil) // nil-safe
	runtime.GC()
	byName := map[string]Metric{}
	for _, m := range reg.Snapshot() {
		byName[m.Name] = m
	}
	if m, ok := byName[runtimeGoroutines]; !ok || m.Value < 1 {
		t.Fatalf("goroutines metric = %+v ok=%v", m, ok)
	}
	if m, ok := byName[runtimeHeapInuse]; !ok || m.Value <= 0 {
		t.Fatalf("heap metric = %+v ok=%v", m, ok)
	}
	if m, ok := byName[runtimeGCCycles]; !ok || m.Value < 1 {
		t.Fatalf("gc cycles metric = %+v ok=%v (after runtime.GC)", m, ok)
	}
	if _, ok := byName[runtimeGCPauseP99]; !ok {
		t.Fatalf("gc pause metric missing")
	}
}
