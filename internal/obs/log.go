package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level classifies log records. The zero value is LevelInfo, so a
// zero-configured logger logs info and above.
type Level int8

// Levels, in increasing severity.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to
// its Level; unknown names select LevelInfo.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger is a leveled, structured logger: records are a message plus
// key=value fields, rendered either as logfmt-style text or as one JSON
// object per line. It is zero-dependency (stdlib only) so every layer
// can log through it, and nil-safe — a nil *Logger discards everything
// at the cost of one nil check, mirroring the trace API.
//
// Loggers derived with With share the parent's writer and mutex, so a
// process logs through one serialized stream no matter how many
// per-session children exist.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	json   bool
	noTime bool
	fields []Attr
}

// NewLogger returns a text-format logger at LevelInfo writing to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w}
}

// NewJSONLogger returns a JSON-lines logger at LevelInfo writing to w.
func NewJSONLogger(w io.Writer) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, json: true}
}

// NewLogfLogger adapts a printf-style sink (e.g. log.Printf, or the
// server's legacy Options.Logf) into a Logger. Each record is rendered
// in text form, without a timestamp (printf sinks usually add their
// own), and handed to fn as a single %s argument.
func NewLogfLogger(fn func(format string, args ...any)) *Logger {
	if fn == nil {
		return nil
	}
	return &Logger{mu: &sync.Mutex{}, w: logfWriter{fn: fn}, noTime: true}
}

// logfWriter forwards each rendered line (newline stripped) to a
// printf-style function.
type logfWriter struct {
	fn func(format string, args ...any)
}

func (w logfWriter) Write(p []byte) (int, error) {
	w.fn("%s", strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

// SetLevel sets the minimum level that is written.
func (l *Logger) SetLevel(lv Level) *Logger {
	if l != nil {
		l.level = lv
	}
	return l
}

// Level returns the minimum written level.
func (l *Logger) Level() Level {
	if l == nil {
		return LevelInfo
	}
	return l.level
}

// Enabled reports whether records at lv are written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// With returns a child logger whose records carry the given key/value
// pairs in addition to the parent's. The child shares the parent's
// writer, level and format. Pairs are (string key, value); a trailing
// odd value is recorded under the key "!extra".
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := *l
	child.fields = append(append([]Attr(nil), l.fields...), attrs(kv)...)
	return &child
}

// Debug writes a debug-level record.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info writes an info-level record.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn writes a warn-level record.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error writes an error-level record.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// attrs converts alternating key/value arguments into Attr fields,
// collapsing everything non-string/non-integer through fmt.
func attrs(kv []any) []Attr {
	out := make([]Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		if i+1 >= len(kv) {
			out = append(out, Attr{Key: "!extra", Str: fmt.Sprint(kv[i]), IsStr: true})
			break
		}
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		switch v := kv[i+1].(type) {
		case int:
			out = append(out, Attr{Key: key, Int: int64(v)})
		case int64:
			out = append(out, Attr{Key: key, Int: v})
		case uint64:
			out = append(out, Attr{Key: key, Int: int64(v)})
		case string:
			out = append(out, Attr{Key: key, Str: v, IsStr: true})
		case time.Duration:
			out = append(out, Attr{Key: key, Str: v.String(), IsStr: true})
		case error:
			out = append(out, Attr{Key: key, Str: v.Error(), IsStr: true})
		case bool:
			out = append(out, Attr{Key: key, Str: strconv.FormatBool(v), IsStr: true})
		case fmt.Stringer:
			out = append(out, Attr{Key: key, Str: v.String(), IsStr: true})
		default:
			out = append(out, Attr{Key: key, Str: fmt.Sprint(v), IsStr: true})
		}
	}
	return out
}

func (l *Logger) log(lv Level, msg string, kv []any) {
	if l == nil || lv < l.level {
		return
	}
	now := time.Now()
	var line []byte
	if l.json {
		line = l.renderJSON(now, lv, msg, kv)
	} else {
		line = l.renderText(now, lv, msg, kv)
	}
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

func (l *Logger) renderText(now time.Time, lv Level, msg string, kv []any) []byte {
	var b strings.Builder
	if !l.noTime {
		b.WriteString(now.UTC().Format("2006-01-02T15:04:05.000Z"))
		b.WriteByte(' ')
	}
	b.WriteString(strings.ToUpper(lv.String()))
	b.WriteByte(' ')
	b.WriteString(msg)
	for _, a := range append(append([]Attr(nil), l.fields...), attrs(kv)...) {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		v := a.Value()
		if a.IsStr && strings.ContainsAny(v, " \t\"=") {
			b.WriteString(strconv.Quote(v))
		} else {
			b.WriteString(v)
		}
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

func (l *Logger) renderJSON(now time.Time, lv Level, msg string, kv []any) []byte {
	var b strings.Builder
	b.WriteString(`{"ts":`)
	b.WriteString(strconv.Quote(now.UTC().Format(time.RFC3339Nano)))
	b.WriteString(`,"level":`)
	b.WriteString(strconv.Quote(lv.String()))
	b.WriteString(`,"msg":`)
	b.WriteString(mustJSON(msg))
	for _, a := range append(append([]Attr(nil), l.fields...), attrs(kv)...) {
		b.WriteByte(',')
		b.WriteString(mustJSON(a.Key))
		b.WriteByte(':')
		if a.IsStr {
			b.WriteString(mustJSON(a.Str))
		} else {
			b.WriteString(strconv.FormatInt(a.Int, 10))
		}
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// mustJSON renders a string as a JSON value (json.Marshal on a string
// cannot fail).
func mustJSON(s string) string {
	out, _ := json.Marshal(s)
	return string(out)
}
