package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// Chrome trace-event export: renders a span tree as the JSON format
// ui.perfetto.dev and chrome://tracing load, so a query's compile
// phases, LFP iterations and operator spans can be inspected on a real
// timeline instead of the ASCII tree. One query is one "process"; the
// session timeline is thread 1, and spans that ran on a scheduler
// worker (they carry the sched.worker attribute) land on a thread per
// worker, which makes the parallel-LFP fan-out visible as overlapping
// tracks.

// traceEvent is one entry of the traceEvents array. Complete events
// ("X") carry ts/dur in microseconds (floats, so nanosecond precision
// survives); metadata events ("M") name processes and threads.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document (object form, so Perfetto picks
// up the display unit).
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Thread ids: the session (root) timeline is tid 1; spans carrying
// sched.worker w land on tid workerTidBase+w.
const (
	sessionTid    = 1
	workerTidBase = 2
)

// WriteChromeTrace renders the span tree rooted at root as Chrome
// trace-event JSON. queryID (0 = none) names the process so multiple
// exported queries stay distinguishable when concatenated in one UI
// session. Nil-safe: a nil root writes an empty trace.
func WriteChromeTrace(w io.Writer, root *Span, queryID uint64) error {
	doc := chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ns"}
	procName := "dkb query"
	if queryID != 0 {
		procName += " " + FormatQueryID(queryID)
	}
	pid := int64(1)
	doc.TraceEvents = append(doc.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: sessionTid,
		Args: map[string]any{"name": procName},
	})
	threads := map[int64]string{}
	if root != nil {
		var walk func(s *Span, parentTs float64, parentTid int64)
		walk = func(s *Span, parentTs float64, parentTid int64) {
			ts := float64(s.Offset) / float64(time.Microsecond)
			if s.Offset == 0 {
				// Spans without a recorded offset (old peers) nest at
				// their parent's start so the tree still renders.
				ts = parentTs
			}
			tid := parentTid
			if worker, ok := s.Int("sched.worker"); ok {
				tid = workerTidBase + worker
			}
			if _, ok := threads[tid]; !ok {
				name := "session"
				if tid != sessionTid {
					name = "worker"
				}
				threads[tid] = name
			}
			ev := traceEvent{Name: s.Name, Ph: "X", Ts: ts, Pid: pid, Tid: tid}
			dur := float64(s.Duration) / float64(time.Microsecond)
			ev.Dur = &dur
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]any, len(s.Attrs))
				for _, a := range s.Attrs {
					if a.IsStr {
						ev.Args[a.Key] = a.Str
					} else {
						ev.Args[a.Key] = a.Int
					}
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
			for _, c := range s.Children {
				walk(c, ts, tid)
			}
		}
		walk(root, 0, sessionTid)
	}
	tids := make([]int64, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		label := threads[tid]
		if tid != sessionTid {
			label = "worker " + strconv.FormatInt(tid-workerTidBase, 10)
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": label},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
