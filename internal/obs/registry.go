package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metrics surface: named counters, gauges
// and histograms with atomic fast paths, plus callback gauges for
// adapting existing snapshot-style stats (plan cache, buffer pool).
// Registration is idempotent — asking for an existing name returns the
// existing metric — so packages can grab their metrics at use sites
// without coordination.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
	collectors map[string]func() []Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
		collectors: make(map[string]func() []Metric),
	}
}

// defaultRegistry is the process-wide registry handed out by Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry (dkbd exposes it over
// -debug-addr). Libraries default to it; tests that need isolation
// construct their own with NewRegistry.
func Default() *Registry { return defaultRegistry }

// Counter is a monotonically increasing int64. The zero value is ready
// to use; Add/Load are atomic, so the hot path is one atomic add.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (e.g. active sessions).
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time, adapting
// existing stats structs (plan cache, pager shards) into the registry
// without double bookkeeping. Re-registering a name replaces the
// callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// CollectorFunc registers a callback contributing a whole batch of
// metrics to every snapshot. Collectors serve dynamic metric sets whose
// names are not known at registration time — per-table heap counters,
// per-shard buffer-pool stats — where one GaugeFunc per name cannot
// keep up with tables being created and dropped. Like GaugeFuncs,
// collectors run outside the registry lock at snapshot time, so they
// may take other locks (the catalog's, the pager shards').
// Re-registering a name replaces the callback.
func (r *Registry) CollectorFunc(name string, fn func() []Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors[name] = fn
}

// Histogram records a distribution of int64 observations (the server
// uses nanosecond latencies) in exponential buckets: bucket i counts
// observations in (2^(i-1), 2^i]. Observation is lock-free.
type Histogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (non-positive values count into bucket 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// bucketOf maps v to its bucket: bucket i holds values in
// [2^(i-1), 2^i), so an observation's bucket index is its bit length.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// boundaries: the upper bound of the bucket containing the q-th
// observation. Exact to within a factor of 2, which is what a latency
// p50/p99 needs.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i >= 62 {
				return math.MaxInt64
			}
			return 1 << uint(i+1)
		}
	}
	return math.MaxInt64
}

// bucketCounts copies the raw bucket counters (the time-series sampler
// stores them so windowed quantiles can be computed from bucket deltas).
func (h *Histogram) bucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// quantileFromBuckets is Histogram.Quantile over an explicit bucket
// vector — the bucket-delta form the time-series window uses. Buckets
// follow the Histogram layout: bucket i counts values of bit length i.
func quantileFromBuckets(buckets []int64, q float64) int64 {
	var total int64
	for _, b := range buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i, b := range buckets {
		seen += b
		if seen > rank {
			if i >= 62 {
				return math.MaxInt64
			}
			return 1 << uint(i+1)
		}
	}
	return math.MaxInt64
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Metric is one entry of a registry snapshot.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"
	// Value is the counter/gauge value; for histograms the count.
	Value int64 `json:"value"`
	// Sum, P50 and P99 are histogram-only.
	Sum int64 `json:"sum,omitempty"`
	P50 int64 `json:"p50,omitempty"`
	P99 int64 `json:"p99,omitempty"`
}

// SamplePoint is one metric's state at one sampling instant: the
// snapshot Metric plus, for histograms, the raw bucket counts the
// time-series ring stores so windowed quantiles can be computed from
// bucket deltas.
type SamplePoint struct {
	Metric
	Buckets []int64 `json:"-"`
}

// sample returns every metric (sorted by name, callbacks evaluated now)
// with histogram bucket counts attached — the time-series sampler's
// read path. Snapshot derives from it.
func (r *Registry) sample() []SamplePoint {
	r.mu.Lock()
	out := make([]SamplePoint, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for name, c := range r.counters {
		out = append(out, SamplePoint{Metric: Metric{Name: name, Kind: "counter", Value: c.Load()}})
	}
	for name, g := range r.gauges {
		out = append(out, SamplePoint{Metric: Metric{Name: name, Kind: "gauge", Value: g.Load()}})
	}
	for name, h := range r.histograms {
		out = append(out, SamplePoint{Metric: Metric{
			Name: name, Kind: "histogram",
			Value: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		}, Buckets: h.bucketCounts()})
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	collectors := make([]func() []Metric, 0, len(r.collectors))
	for _, fn := range r.collectors {
		collectors = append(collectors, fn)
	}
	r.mu.Unlock()
	// Callbacks run outside the registry lock: they may take other locks
	// (the plan cache's, the pager's).
	for name, fn := range funcs {
		out = append(out, SamplePoint{Metric: Metric{Name: name, Kind: "gauge", Value: fn()}})
	}
	for _, fn := range collectors {
		for _, m := range fn() {
			out = append(out, SamplePoint{Metric: m})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot returns every metric, sorted by name, with callback gauges
// evaluated now.
func (r *Registry) Snapshot() []Metric {
	pts := r.sample()
	out := make([]Metric, len(pts))
	for i, p := range pts {
		out[i] = p.Metric
	}
	return out
}

// WriteJSON writes the snapshot as a JSON array (the dkbd -debug-addr
// endpoint body).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
