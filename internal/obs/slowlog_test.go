package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThresholdFilters(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	if l.Record(SlowQuery{Query: "fast", Latency: time.Millisecond}) {
		t.Error("below-threshold entry was retained")
	}
	if !l.Record(SlowQuery{Query: "slow", Latency: 20 * time.Millisecond}) {
		t.Error("over-threshold entry was dropped")
	}
	snap := l.Snapshot()
	if len(snap) != 1 || snap[0].Query != "slow" {
		t.Fatalf("snapshot = %+v, want the one slow entry", snap)
	}
	if l.Recorded() != 1 {
		t.Errorf("Recorded() = %d, want 1", l.Recorded())
	}
	l.SetThreshold(0)
	if l.Threshold() != 0 {
		t.Errorf("Threshold() = %v after SetThreshold(0)", l.Threshold())
	}
	if !l.Record(SlowQuery{Query: "fast", Latency: time.Millisecond}) {
		t.Error("zero threshold must retain everything")
	}
}

func TestSlowLogRingOverwritesOldest(t *testing.T) {
	l := NewSlowLog(4, 0)
	for i := 0; i < 10; i++ {
		l.Record(SlowQuery{Query: "q", Latency: time.Duration(i) * time.Millisecond})
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d entries, want capacity 4", len(snap))
	}
	// The last four records (6..9 ms) survive, slowest first.
	for i, want := range []time.Duration{9, 8, 7, 6} {
		if snap[i].Latency != want*time.Millisecond {
			t.Errorf("snap[%d].Latency = %v, want %v ms", i, snap[i].Latency, want)
		}
	}
}

func TestSlowLogSortsSlowestFirst(t *testing.T) {
	l := NewSlowLog(8, 0)
	for _, ms := range []int{3, 9, 1, 7} {
		l.Record(SlowQuery{Query: "q", Latency: time.Duration(ms) * time.Millisecond})
	}
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Latency > snap[i-1].Latency {
			t.Fatalf("snapshot not sorted slowest-first: %v", snap)
		}
	}
}

// TestSlowLogConcurrent hammers Record from many goroutines while
// others Snapshot, under -race in CI: the read path must be lock-free
// and the ring must never tear an entry.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, 0)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 1000; i++ {
				l.Record(SlowQuery{
					Query:   "?- ancestor(X, W).",
					Latency: time.Duration(i) * time.Microsecond,
					Session: int64(w),
					Rows:    int64(i),
				})
			}
		}(w)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range l.Snapshot() {
				if e.Query == "" {
					t.Error("torn entry: empty query text")
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := l.Recorded(); got != 4000 {
		t.Errorf("Recorded() = %d, want 4000", got)
	}
}

func TestSlowLogNil(t *testing.T) {
	var l *SlowLog
	if l.Record(SlowQuery{}) {
		t.Error("nil SlowLog retained an entry")
	}
	if l.Snapshot() != nil || l.Capacity() != 0 || l.Recorded() != 0 || l.Threshold() != 0 {
		t.Error("nil SlowLog accessors must return zero values")
	}
	l.SetThreshold(time.Second) // must not panic
}

func TestSlowLogWriteJSON(t *testing.T) {
	l := NewSlowLog(4, 0)
	l.Record(SlowQuery{Query: "?- p(X).", Latency: 5 * time.Millisecond, Rows: 3, Cache: "miss"})
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"threshold_ns"`, `"capacity": 4`, `"?- p(X)."`, `"cache": "miss"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON body missing %s:\n%s", want, b.String())
		}
	}
}
