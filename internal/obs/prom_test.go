package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests_total").Add(7)
	reg.Gauge("server.sessions_active").Set(3)
	h := reg.Histogram("server.request_latency_ns")
	h.Observe(100)
	h.Observe(1000)
	reg.CollectorFunc("engine", func() []Metric {
		return []Metric{
			{Name: "table.f_parent.rows", Kind: "gauge", Value: 12},
			{Name: "table.f_parent.heap_reads", Kind: "counter", Value: 90},
			{Name: "table.other.rows", Kind: "gauge", Value: 5},
			{Name: "index.ix_parent_c0.height", Kind: "gauge", Value: 2},
			{Name: "pool.shard.03.hits", Kind: "counter", Value: 44},
		}
	})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE dkb_server_requests_total counter\n",
		"dkb_server_requests_total 7\n",
		"# TYPE dkb_server_sessions_active gauge\n",
		"dkb_server_sessions_active 3\n",
		"# TYPE dkb_server_request_latency_ns summary\n",
		`dkb_server_request_latency_ns{quantile="0.5"}`,
		`dkb_server_request_latency_ns{quantile="0.99"}`,
		"dkb_server_request_latency_ns_sum 1100\n",
		"dkb_server_request_latency_ns_count 2\n",
		`dkb_table_rows{table="f_parent"} 12`,
		`dkb_table_rows{table="other"} 5`,
		`dkb_table_heap_reads{table="f_parent"} 90`,
		`dkb_index_height{index="ix_parent_c0"} 2`,
		`dkb_pool_shard_hits{shard="03"} 44`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One # TYPE per family even with many labeled rows.
	if n := strings.Count(out, "# TYPE dkb_table_rows "); n != 1 {
		t.Fatalf("dkb_table_rows declared %d times", n)
	}
	// Basic format validity: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if strings.ContainsAny(fields[0][:1], "0123456789") {
			t.Fatalf("metric name starts with digit: %q", line)
		}
	}
}

func TestPromNameMapping(t *testing.T) {
	cases := []struct{ in, family, labels string }{
		{"server.requests", "dkb_server_requests", ""},
		{"table.f_parent.heap_recs_scanned", "dkb_table_heap_recs_scanned", `{table="f_parent"}`},
		{"index.ix_a_c0.depth_total", "dkb_index_depth_total", `{index="ix_a_c0"}`},
		{"pool.shard.00.misses", "dkb_pool_shard_misses", `{shard="00"}`},
		{"runtime.gc_pause_p99_ns", "dkb_runtime_gc_pause_p99_ns", ""},
	}
	for _, c := range cases {
		family, labels := promName(c.in)
		if family != c.family || labels != c.labels {
			t.Errorf("promName(%q) = %q,%q want %q,%q", c.in, family, labels, c.family, c.labels)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	got := promLabels("table", "we\"ird\\nam\ne")
	want := `{table="we\"ird\\nam\ne"}`
	if got != want {
		t.Fatalf("promLabels = %s want %s", got, want)
	}
}
