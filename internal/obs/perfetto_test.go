package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses the exported document back into generic structures
// (what Perfetto's JSON importer sees).
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func findEvent(events []map[string]any, name string) map[string]any {
	for _, e := range events {
		if e["name"] == name {
			return e
		}
	}
	return nil
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace("query")
	tr.Root().SetInt("snapshot_gen", 7)
	tr.Root().SetString("cache", "miss")
	compile := tr.Start("compile")
	time.Sleep(time.Millisecond)
	compile.End()
	eval := tr.Start("eval")
	iter := eval.Start("iteration 1")
	iter.SetInt("sched.worker", 3)
	iter.SetInt("delta", 42)
	iter.End()
	eval.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Root(), 0xabc); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())

	proc := findEvent(events, "process_name")
	if proc == nil {
		t.Fatalf("no process_name metadata")
	}
	if args := proc["args"].(map[string]any); args["name"] != "dkb query q0000000000000abc" {
		t.Fatalf("process name = %v", args["name"])
	}

	root := findEvent(events, "query")
	if root == nil || root["ph"] != "X" {
		t.Fatalf("root span missing or not complete event: %v", root)
	}
	args := root["args"].(map[string]any)
	if args["snapshot_gen"] != float64(7) || args["cache"] != "miss" {
		t.Fatalf("root args = %v", args)
	}

	cm := findEvent(events, "compile")
	if cm == nil {
		t.Fatalf("compile span missing")
	}
	if cm["dur"].(float64) < 500 { // slept 1ms; dur is µs
		t.Fatalf("compile dur = %v µs, want >= 500", cm["dur"])
	}
	ev := findEvent(events, "eval")
	if ev["ts"].(float64) <= cm["ts"].(float64) {
		t.Fatalf("eval ts %v not after compile ts %v", ev["ts"], cm["ts"])
	}

	// The worker span lands on its own thread, named in metadata.
	it := findEvent(events, "iteration 1")
	if it["tid"].(float64) != float64(workerTidBase+3) {
		t.Fatalf("worker span tid = %v, want %d", it["tid"], workerTidBase+3)
	}
	var workerNamed bool
	for _, e := range events {
		if e["name"] == "thread_name" && e["tid"].(float64) == float64(workerTidBase+3) {
			if e["args"].(map[string]any)["name"] == "worker 3" {
				workerNamed = true
			}
		}
	}
	if !workerNamed {
		t.Fatalf("worker thread not named")
	}
}

func TestWriteChromeTraceNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, 0); err != nil {
		t.Fatalf("nil root: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) != 1 { // just the process metadata
		t.Fatalf("events = %v", events)
	}
}

func TestSpanOffsets(t *testing.T) {
	tr := NewTrace("query")
	a := tr.Start("a")
	time.Sleep(2 * time.Millisecond)
	b := tr.Start("b")
	a.End()
	b.End()
	tr.Finish()
	root := tr.Root()
	if root.Offset != 0 {
		t.Fatalf("root offset = %v", root.Offset)
	}
	if root.Children[1].Offset < root.Children[0].Offset+time.Millisecond {
		t.Fatalf("offsets not ordered: a=%v b=%v",
			root.Children[0].Offset, root.Children[1].Offset)
	}
}

func TestQueryIDMintFormatParse(t *testing.T) {
	a, b := NewQueryID(), NewQueryID()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("mint: %d %d", a, b)
	}
	s := FormatQueryID(a)
	if len(s) != 17 || s[0] != 'q' {
		t.Fatalf("format %q", s)
	}
	back, err := ParseQueryID(s)
	if err != nil || back != a {
		t.Fatalf("parse(%q) = %d, %v; want %d", s, back, err, a)
	}
	if dec, err := ParseQueryID("12345"); err != nil || dec != 12345 {
		t.Fatalf("decimal parse = %d, %v", dec, err)
	}
	if FormatQueryID(0) != "" {
		t.Fatalf("FormatQueryID(0) = %q", FormatQueryID(0))
	}
	if _, err := ParseQueryID(""); err == nil {
		t.Fatalf("empty parse accepted")
	}
	if _, err := ParseQueryID("qzz"); err == nil {
		t.Fatalf("bad hex accepted")
	}
}
