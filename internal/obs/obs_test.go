package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything")
	sp.SetInt("k", 1)
	sp.SetString("s", "v")
	sp.End()
	sp.SetDuration(time.Second)
	child := sp.Start("child")
	child.End()
	tr.Finish()
	if tr.Root() != nil || tr.Format() != "" {
		t.Fatal("nil trace must be empty")
	}
	if _, ok := sp.Int("k"); ok {
		t.Fatal("nil span must hold no attrs")
	}
	if sp.Find("child") != nil || len(sp.FindAll("c")) != 0 {
		t.Fatal("nil span must have no descendants")
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("query")
	c := tr.Start("compile")
	c.SetInt("rules", 4)
	c.End()
	e := tr.Start("eval")
	it := e.Start("iteration 1")
	it.SetInt("delta", 7)
	it.End()
	e.End()
	tr.Finish()

	if got := tr.Root().Find("iteration 1"); got == nil {
		t.Fatal("iteration span not found")
	} else if d, ok := got.Int("delta"); !ok || d != 7 {
		t.Fatalf("delta attr = %d, %v", d, ok)
	}
	if n := len(tr.Root().FindAll("iteration")); n != 1 {
		t.Fatalf("FindAll found %d spans, want 1", n)
	}
	out := tr.Format()
	for _, want := range []string{"query", "├─ compile", "└─ eval", "└─ iteration 1", "delta=7", "rules=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("query")
	parent := tr.Start("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := parent.Start("job")
			sp.SetInt("n", 1)
			sp.End()
		}()
	}
	wg.Wait()
	parent.End()
	if n := len(parent.Children); n != 16 {
		t.Fatalf("recorded %d children, want 16", n)
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(2)
	if r.Counter("requests") != c {
		t.Fatal("Counter registration is not idempotent")
	}
	if c.Load() != 3 {
		t.Fatalf("counter = %d, want 3", c.Load())
	}
	g := r.Gauge("active")
	g.Set(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
	r.GaugeFunc("cb", func() int64 { return 42 })

	snap := r.Snapshot()
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if byName["requests"].Value != 3 || byName["requests"].Kind != "counter" {
		t.Fatalf("snapshot requests = %+v", byName["requests"])
	}
	if byName["cb"].Value != 42 {
		t.Fatalf("snapshot cb = %+v", byName["cb"])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	for i := 0; i < 98; i++ {
		h.Observe(1000) // bucket [512, 1024) -> upper bound 1024
	}
	h.Observe(1 << 20)
	h.Observe(1 << 20)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 != 1024 {
		t.Fatalf("p50 = %d, want 1024", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 1<<21 {
		t.Fatalf("p99 = %d, want %d", p99, 1<<21)
	}
	// Quantiles are monotone and the empty histogram reports zero.
	if (&Histogram{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty: every quantile is 0.
	var empty Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	// Single bucket: all observations in one bucket, every quantile is
	// that bucket's upper bound.
	single := &Histogram{}
	for i := 0; i < 5; i++ {
		single.Observe(700) // bucket [512, 1024)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := single.Quantile(q); got != 1024 {
			t.Errorf("single-bucket Quantile(%v) = %d, want 1024", q, got)
		}
	}
	// Non-positive observations land in bucket 0 (upper bound 2).
	neg := &Histogram{}
	neg.Observe(-5)
	neg.Observe(0)
	if got := neg.Quantile(0.99); got != 2 {
		t.Errorf("non-positive Quantile(0.99) = %d, want 2", got)
	}
	// Overflow bucket: observations at the top of the int64 range must
	// not report a shifted-past-63-bits bound; they saturate to MaxInt64.
	over := &Histogram{}
	over.Observe(math.MaxInt64)
	if got := over.Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("overflow-bucket Quantile(0.5) = %d, want MaxInt64", got)
	}
	over.Observe(1 << 62)
	if got := over.Quantile(1); got != math.MaxInt64 {
		t.Errorf("bucket-62 Quantile(1) = %d, want MaxInt64", got)
	}
}

func TestRegistryCollectorFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.CollectorFunc("tables", func() []Metric {
		return []Metric{
			{Name: "table.edge.reads", Kind: "counter", Value: 7},
			{Name: "table.ancestor.reads", Kind: "counter", Value: 3},
		}
	})
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3: %+v", len(snap), snap)
	}
	// Collector metrics merge into the sorted snapshot.
	if snap[0].Name != "table.ancestor.reads" || snap[1].Name != "table.edge.reads" || snap[2].Name != "z" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	// Re-registering a collector name replaces it.
	r.CollectorFunc("tables", func() []Metric { return nil })
	if got := len(r.Snapshot()); got != 1 {
		t.Fatalf("after replacement snapshot has %d metrics, want 1", got)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Histogram("h").Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var metrics []Metric
	if err := json.Unmarshal(buf.Bytes(), &metrics); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(metrics) != 2 || metrics[0].Name != "a" || metrics[1].Name != "h" {
		t.Fatalf("unexpected snapshot %+v", metrics)
	}
}

func TestNilMetricsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read zero")
	}
}
