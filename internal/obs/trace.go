// Package obs is the testbed's observability layer: a process-wide
// metrics registry (registry.go) and a per-query trace (this file).
//
// The paper reports every experiment in terms of internal counters —
// tuples produced per LFP iteration, temporary-table sizes, iterations
// to fixpoint — so the trace records exactly those: a span tree built
// while a query runs, with one span per compilation phase, per
// evaluation-order node, per LFP iteration and per SQL operator.
//
// The package is zero-dependency (stdlib only) so every layer of the
// system can import it. Tracing is strictly opt-in and the off state
// must cost only a nil check: every method on *Trace and *Span is
// nil-safe, so instrumented code writes
//
//	sp := tr.Start("magic rewrite")   // tr may be nil
//	...
//	sp.End()
//
// without guarding call sites.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are either int64
// or string (mirroring the two relational value kinds), which keeps
// wire encoding trivial.
type Attr struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Int int64  `json:"int,omitempty"`
	// IsStr distinguishes the two value arms (an empty string is a
	// legal value).
	IsStr bool `json:"is_str,omitempty"`
}

// Value renders the attribute value.
func (a Attr) Value() string {
	if a.IsStr {
		return a.Str
	}
	return fmt.Sprintf("%d", a.Int)
}

// Span is one timed region of a trace: a name, a duration, ordered
// attributes and child spans. Spans form a tree under the Trace root.
// All methods are nil-safe.
type Span struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	// Offset is when the span started, relative to the trace root's
	// start (0 for the root itself). It positions spans on a shared
	// timeline — the Perfetto exporter's ts axis.
	Offset   time.Duration `json:"offset_ns,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	start time.Time
	tr    *Trace
}

// Trace is one query's span tree. A nil *Trace disables all recording;
// NewTrace arms it. A Trace is safe for concurrent use by the
// goroutines of one evaluation (the parallel LFP strategy appends child
// spans concurrently).
type Trace struct {
	mu   sync.Mutex
	root *Span
}

// NewTrace starts a trace whose root span carries the given name
// (conventionally the operation: "query", "compile", ...).
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{Name: name, start: time.Now(), tr: t}
	return t
}

// Adopt wraps an externally-built span tree (for example one decoded
// from the wire) in a Trace so it can be formatted and searched. The
// spans become owned by the returned trace; Adopt(nil) is nil.
func Adopt(root *Span) *Trace {
	if root == nil {
		return nil
	}
	t := &Trace{root: root}
	var link func(s *Span)
	link = func(s *Span) {
		s.tr = t
		for _, c := range s.Children {
			link(c)
		}
	}
	link(root)
	return t
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish stamps the root span's duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.root.start.IsZero() {
		t.root.Duration = time.Since(t.root.start)
	}
	t.mu.Unlock()
}

// Start opens a child span of the root. Equivalent to t.Root().Start.
func (t *Trace) Start(name string) *Span { return t.Root().Start(name) }

// Start opens a child span. The child is appended immediately so a
// panic mid-span still leaves it visible; End stamps the duration.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{Name: name, start: time.Now(), tr: s.tr}
	// root.start is written once (NewTrace) before any Start can run, so
	// reading it without the trace lock is safe; adopted trees have a
	// zero root start and keep whatever offsets they were decoded with.
	if rs := s.tr.root.start; !rs.IsZero() {
		child.Offset = child.start.Sub(rs)
	}
	s.tr.mu.Lock()
	s.Children = append(s.Children, child)
	s.tr.mu.Unlock()
	return child
}

// End stamps the span's duration as time since Start.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Duration = time.Since(s.start)
	s.tr.mu.Unlock()
}

// SetDuration records an externally-measured duration (used when the
// instrumented code already keeps its own timers).
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Duration = d
	s.tr.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	s.tr.mu.Unlock()
}

// SetString records a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
	s.tr.mu.Unlock()
}

// Int returns the value of the named integer attribute (0, false when
// absent). Nil-safe; used by tests and the shell's summaries.
func (s *Span) Int(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, a := range s.Attrs {
		if a.Key == key && !a.IsStr {
			return a.Int, true
		}
	}
	return 0, false
}

// Find returns the first descendant span (depth-first, including s)
// whose name matches, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every descendant span (depth-first, including s)
// whose name has the given prefix.
func (s *Span) FindAll(prefix string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if strings.HasPrefix(sp.Name, prefix) {
			out = append(out, sp)
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(s)
	return out
}

// Format renders the trace as an EXPLAIN ANALYZE-style tree:
//
//	query                                   12.3ms
//	├─ compile                              1.1ms  rules=4
//	│  ├─ extract                           0.2ms
//	...
func (t *Trace) Format() string {
	if t == nil || t.root == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	formatSpan(&b, t.root, "", "", "")
	return b.String()
}

func formatSpan(b *strings.Builder, s *Span, lead, self, childLead string) {
	b.WriteString(lead)
	b.WriteString(self)
	b.WriteString(s.Name)
	fmt.Fprintf(b, "  [%s]", s.Duration.Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value())
	}
	b.WriteByte('\n')
	for i, c := range s.Children {
		if i == len(s.Children)-1 {
			formatSpan(b, c, lead+childLead, "└─ ", "   ")
		} else {
			formatSpan(b, c, lead+childLead, "├─ ", "│  ")
		}
	}
}
