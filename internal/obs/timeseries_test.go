package obs

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestTimeSeriesWindowDeltaAndRate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("query.count")
	g := reg.Gauge("backlog")
	ts := NewTimeSeries(reg, time.Second, 16)

	g.Set(5)
	ts.SampleNow()
	for i := 0; i < 40; i++ {
		c.Inc()
	}
	g.Set(2)
	time.Sleep(2 * time.Millisecond) // ensure a non-zero window span
	ts.SampleNow()

	st, ok := ts.Stat("query.count", 0)
	if !ok {
		t.Fatalf("query.count missing from window")
	}
	if st.Delta != 40 {
		t.Fatalf("windowed delta = %d, want exactly 40", st.Delta)
	}
	if st.Rate <= 0 {
		t.Fatalf("rate = %v, want > 0", st.Rate)
	}
	if st.Kind != "counter" || st.Last != 40 || st.First != 0 {
		t.Fatalf("unexpected stat %+v", st)
	}
	gs, ok := ts.Stat("backlog", 0)
	if !ok || gs.Min != 2 || gs.Max != 5 || gs.Last != 2 {
		t.Fatalf("gauge stat = %+v ok=%v, want min 2 max 5 last 2", gs, ok)
	}
}

func TestTimeSeriesHistogramWindowedQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	ts := NewTimeSeries(reg, time.Second, 8)

	// Pre-window observations: large values that must NOT leak into the
	// windowed quantiles.
	for i := 0; i < 100; i++ {
		h.Observe(1 << 30)
	}
	ts.SampleNow()
	// In-window observations: small.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	ts.SampleNow()

	st, ok := ts.Stat("lat", 0)
	if !ok {
		t.Fatalf("lat missing")
	}
	if st.Delta != 100 {
		t.Fatalf("delta = %d, want 100", st.Delta)
	}
	// 100 falls in bucket 6 (2^6=64 < 100 <= 2^7=128): upper bound 128.
	if st.P50 != 128 || st.P99 != 128 {
		t.Fatalf("windowed p50/p99 = %d/%d, want 128/128 (pre-window spikes excluded)", st.P50, st.P99)
	}
	// The cumulative quantile would be dominated by the big spikes;
	// prove the window isolated them.
	if cum := h.Quantile(0.99); cum <= 1<<29 {
		t.Fatalf("cumulative p99 = %d unexpectedly small", cum)
	}
}

func TestTimeSeriesWraparound(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	ts := NewTimeSeries(reg, time.Second, 4)
	for i := 0; i < 10; i++ {
		c.Inc()
		ts.SampleNow()
	}
	if got := ts.Samples(); got != 10 {
		t.Fatalf("Samples() = %d, want 10", got)
	}
	snap := ts.Window(0, 10)
	if snap.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", snap.Capacity)
	}
	var st *SeriesStat
	for i := range snap.Series {
		if snap.Series[i].Name == "n" {
			st = &snap.Series[i]
		}
	}
	if st == nil {
		t.Fatalf("series n missing")
	}
	// Ring of 4: retained samples are after increments 7,8,9,10.
	if st.First != 7 || st.Last != 10 || st.Delta != 3 {
		t.Fatalf("first/last/delta = %d/%d/%d, want 7/10/3", st.First, st.Last, st.Delta)
	}
	if len(st.Points) != 4 {
		t.Fatalf("points = %v, want 4 entries", st.Points)
	}
	for i, want := range []int64{7, 8, 9, 10} {
		if st.Points[i] != want {
			t.Fatalf("points = %v, want [7 8 9 10]", st.Points)
		}
	}
}

func TestTimeSeriesTrailingWindowSelectsSuffix(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	ts := NewTimeSeries(reg, time.Second, 16)
	ts.SampleNow()
	time.Sleep(30 * time.Millisecond)
	c.Add(100)
	ts.SampleNow()
	time.Sleep(5 * time.Millisecond)
	c.Add(1)
	ts.SampleNow()
	// A ~20ms window must exclude the first sample.
	st, ok := ts.Stat("n", 20*time.Millisecond)
	if !ok {
		t.Fatalf("n missing")
	}
	if st.First != 100 || st.Delta != 1 {
		t.Fatalf("first/delta = %d/%d, want 100/1 (oldest sample outside window)", st.First, st.Delta)
	}
}

// TestTimeSeriesConcurrentTicksVsReaders drives the sampler and many
// readers concurrently; under -race this is the ring's memory-model
// proof. Correctness bar: every reader-observed window is internally
// consistent (monotonic counter, delta = last-first).
func TestTimeSeriesConcurrentTicksVsReaders(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	ts := NewTimeSeries(reg, time.Second, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: bump + sample as fast as possible
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			ts.SampleNow()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st, ok := ts.Stat("n", 0)
				if !ok {
					continue
				}
				if st.Delta != st.Last-st.First {
					t.Errorf("inconsistent window: %+v", st)
					return
				}
				if st.First > st.Last {
					t.Errorf("counter went backwards in window: %+v", st)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestTimeSeriesBackgroundSampler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Inc()
	ts := NewTimeSeries(reg, time.Millisecond, 64)
	ts.Start()
	ts.Start() // idempotent
	defer ts.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for ts.Samples() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler took too long: %d samples", ts.Samples())
		}
		time.Sleep(time.Millisecond)
	}
	ts.Stop()
	ts.Stop() // idempotent
	n := ts.Samples()
	time.Sleep(10 * time.Millisecond)
	if got := ts.Samples(); got != n {
		t.Fatalf("sampler still running after Stop: %d -> %d", n, got)
	}
}

// TestTimeSeriesDisabled is the sampling-off guard: a disabled ring is
// nil, runs zero goroutines, and every method is a no-op.
func TestTimeSeriesDisabled(t *testing.T) {
	if ts := NewTimeSeries(nil, time.Second, 10); ts != nil {
		t.Fatalf("nil registry must disable the ring")
	}
	if ts := NewTimeSeries(NewRegistry(), 0, 10); ts != nil {
		t.Fatalf("zero interval must disable the ring")
	}
	if ts := NewTimeSeries(NewRegistry(), time.Second, 0); ts != nil {
		t.Fatalf("zero slots must disable the ring")
	}
	before := runtime.NumGoroutine()
	var ts *TimeSeries
	ts.Start()
	ts.SampleNow()
	ts.Stop()
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("disabled ring spawned goroutines: %d -> %d", before, got)
	}
	if ts.Capacity() != 0 || ts.Samples() != 0 || ts.Interval() != 0 {
		t.Fatalf("nil ring reports non-zero configuration")
	}
	snap := ts.Window(time.Minute, 5)
	if len(snap.Series) != 0 {
		t.Fatalf("nil ring window has series: %+v", snap)
	}
	if _, ok := ts.Stat("x", 0); ok {
		t.Fatalf("nil ring Stat returned a value")
	}
	allocs := testing.AllocsPerRun(100, func() { ts.SampleNow() })
	if allocs != 0 {
		t.Fatalf("disabled SampleNow allocates %.0f", allocs)
	}
}

func TestTimeSeriesWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Add(3)
	ts := NewTimeSeries(reg, time.Second, 4)
	ts.SampleNow()
	ts.SampleNow()
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf, 0, 4); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap TimeSeriesSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if snap.IntervalNs != int64(time.Second) || snap.Samples != 2 || len(snap.Series) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Series[0].Name != "n" || snap.Series[0].Last != 3 {
		t.Fatalf("series = %+v", snap.Series[0])
	}
}
