package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// SlowQuery is one retained slow-query record: what ran, how long it
// took, and the engine-floor context that explains why — plan-cache
// status, LFP iteration count, and (when the query ran with tracing
// enabled) the full span tree.
type SlowQuery struct {
	// Query is the query source text.
	Query string `json:"query"`
	// QueryID is the request's wire-propagated query ID (0 when the
	// query predates ID minting, e.g. local shells without tracing).
	QueryID uint64 `json:"query_id,omitempty"`
	// Start is when evaluation began.
	Start time.Time `json:"start"`
	// Latency is how long the query took end to end.
	Latency time.Duration `json:"latency_ns"`
	// Cache is the plan-cache outcome: "result" (answered from the
	// memoized result), "plan" (compiled program reused, re-evaluated),
	// "miss" (full compile), or "" when no cache was consulted.
	Cache string `json:"cache,omitempty"`
	// Iterations is the total LFP iteration count across evaluation
	// nodes (0 for non-recursive queries and cache result hits).
	Iterations int64 `json:"iterations,omitempty"`
	// Rows is the answer cardinality.
	Rows int64 `json:"rows"`
	// Session identifies the recording session (server-side; 0 locally).
	Session int64 `json:"session,omitempty"`
	// Snapshot is the engine-snapshot generation the query ran against
	// (0 when the query never pinned a snapshot, e.g. parse errors).
	Snapshot uint64 `json:"snapshot,omitempty"`
	// Err carries the error text for failed queries.
	Err string `json:"error,omitempty"`
	// Trace is the query's span tree, retained only when the query ran
	// with tracing enabled (recording cannot reconstruct one after the
	// fact).
	Trace *Span `json:"trace,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of slow-query records with a
// lock-free read path. Record stores each over-threshold entry into the
// next ring slot with two atomic operations (a cursor add and a pointer
// store); Snapshot reads the slots with atomic loads and never blocks a
// writer. Entries below the latency threshold cost one atomic load and
// a compare — no allocation — which keeps the hot query path clean when
// the threshold filters almost everything out.
//
// Retention policy: the ring keeps the most recent Capacity
// over-threshold queries; Snapshot reports them slowest-first. With a
// zero threshold every query is retained (the default: the ring then
// holds the last Capacity queries and Snapshot surfaces the slowest
// among them).
//
// All methods are nil-safe, matching the rest of the package.
type SlowLog struct {
	slots     []atomic.Pointer[SlowQuery]
	cursor    atomic.Uint64 // next slot to write (monotonic)
	threshold atomic.Int64  // minimum retained latency, nanoseconds
}

// DefaultSlowLogSize is the ring capacity selected by NewSlowLog when
// given a non-positive capacity.
const DefaultSlowLogSize = 128

// NewSlowLog returns a slow-query log retaining up to capacity entries
// at or above threshold (0 retains everything).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	l := &SlowLog{slots: make([]atomic.Pointer[SlowQuery], capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current retention threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// SetThreshold changes the retention threshold for future records.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.threshold.Store(int64(d))
}

// Capacity returns the ring size.
func (l *SlowLog) Capacity() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Recorded returns how many entries have ever been retained (recorded
// minus filtered; old entries beyond Capacity have been overwritten).
func (l *SlowLog) Recorded() int64 {
	if l == nil {
		return 0
	}
	return int64(l.cursor.Load())
}

// Record retains the entry if it meets the threshold, returning whether
// it was kept. Below-threshold entries return immediately without
// allocating.
func (l *SlowLog) Record(q SlowQuery) bool {
	if l == nil {
		return false
	}
	if int64(q.Latency) < l.threshold.Load() {
		return false
	}
	e := q // private copy; callers may reuse their struct
	i := l.cursor.Add(1) - 1
	l.slots[i%uint64(len(l.slots))].Store(&e)
	return true
}

// Snapshot returns the retained entries, slowest first. The entries are
// copies; the caller may keep them. Concurrent Records may or may not
// be visible — the snapshot is a monitoring view, not a barrier.
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	out := make([]SlowQuery, 0, len(l.slots))
	for i := range l.slots {
		if p := l.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Latency > out[j].Latency })
	return out
}

// SlowLogSnapshot is the JSON document served by the /slowlog debug
// endpoint: the retention settings plus the retained entries.
type SlowLogSnapshot struct {
	ThresholdNs int64       `json:"threshold_ns"`
	Capacity    int         `json:"capacity"`
	Recorded    int64       `json:"recorded"`
	Entries     []SlowQuery `json:"entries"`
}

// WriteJSON writes the snapshot as indented JSON (the debug endpoint
// body).
func (l *SlowLog) WriteJSON(w io.Writer) error {
	snap := SlowLogSnapshot{
		ThresholdNs: int64(l.Threshold()),
		Capacity:    l.Capacity(),
		Recorded:    l.Recorded(),
		Entries:     l.Snapshot(),
	}
	if snap.Entries == nil {
		snap.Entries = []SlowQuery{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
