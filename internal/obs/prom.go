package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry.
// The dotted internal names map onto Prometheus conventions:
//
//	server.requests          -> dkb_server_requests
//	table.f_parent.rows      -> dkb_table_rows{table="f_parent"}
//	index.ix_p_c0.height     -> dkb_index_height{index="ix_p_c0"}
//	pool.shard.03.hits       -> dkb_pool_shard_hits{shard="03"}
//
// so per-table and per-index series share one metric family with a
// label instead of exploding the family namespace, which is what makes
// the output aggregatable across a fleet. Histograms are exposed as
// summaries (quantile series plus _sum and _count) because the
// exponential buckets are powers of two, not Prometheus-style
// cumulative le buckets.

// PromContentType is the Content-Type for the exposition body.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promFamily is one exposition family: a metric name plus every labeled
// sample in it.
type promFamily struct {
	name string
	kind string // "counter", "gauge" or "histogram"
	rows []promRow
}

type promRow struct {
	labels string // rendered label set, "" for none
	m      Metric
}

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

func writePrometheus(w io.Writer, metrics []Metric) error {
	families := make(map[string]*promFamily)
	var order []string
	for _, m := range metrics {
		name, labels := promName(m.Name)
		f, ok := families[name]
		if !ok {
			f = &promFamily{name: name, kind: m.Kind}
			families[name] = f
			order = append(order, name)
		}
		f.rows = append(f.rows, promRow{labels: labels, m: m})
	}
	sort.Strings(order)
	var b strings.Builder
	for _, name := range order {
		f := families[name]
		switch f.kind {
		case "histogram":
			// Summary exposition: quantiles from the exponential buckets.
			fmt.Fprintf(&b, "# TYPE %s summary\n", name)
			for _, row := range f.rows {
				fmt.Fprintf(&b, "%s%s %d\n", name, mergeLabels(row.labels, `quantile="0.5"`), row.m.P50)
				fmt.Fprintf(&b, "%s%s %d\n", name, mergeLabels(row.labels, `quantile="0.99"`), row.m.P99)
				fmt.Fprintf(&b, "%s_sum%s %d\n", name, row.labels, row.m.Sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", name, row.labels, row.m.Value)
			}
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			for _, row := range f.rows {
				fmt.Fprintf(&b, "%s%s %d\n", name, row.labels, row.m.Value)
			}
		default:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
			for _, row := range f.rows {
				fmt.Fprintf(&b, "%s%s %d\n", name, row.labels, row.m.Value)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a dotted registry name to (family, rendered labels),
// extracting the dynamic middle component of per-table, per-index and
// per-shard series into a label.
func promName(name string) (string, string) {
	if rest, ok := strings.CutPrefix(name, "table."); ok {
		if table, field, ok := cutLast(rest); ok {
			return "dkb_table_" + mangle(field), promLabels("table", table)
		}
	}
	if rest, ok := strings.CutPrefix(name, "index."); ok {
		if index, field, ok := cutLast(rest); ok {
			return "dkb_index_" + mangle(field), promLabels("index", index)
		}
	}
	if rest, ok := strings.CutPrefix(name, "pool.shard."); ok {
		if shard, field, ok := cutLast(rest); ok {
			return "dkb_pool_shard_" + mangle(field), promLabels("shard", shard)
		}
	}
	return "dkb_" + mangle(name), ""
}

// cutLast splits "middle.possibly.dotted.field" at the last dot.
func cutLast(s string) (prefix, last string, ok bool) {
	i := strings.LastIndexByte(s, '.')
	if i < 0 {
		return "", s, false
	}
	return s[:i], s[i+1:], true
}

// mangle rewrites a dotted internal name as a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_'.
func mangle(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders one label pair with value escaping per the
// exposition format (backslash, quote, newline).
func promLabels(key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return fmt.Sprintf(`{%s="%s"}`, key, esc)
}

// mergeLabels merges a rendered label set with one extra pair.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}
