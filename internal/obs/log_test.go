package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestLoggerTextFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Info("accepted", "addr", "1.2.3.4:99", "session", int64(7))
	line := b.String()
	if !strings.Contains(line, "INFO accepted") {
		t.Errorf("missing level+message: %q", line)
	}
	for _, want := range []string{"addr=1.2.3.4:99", "session=7"} {
		if !strings.Contains(line, want) {
			t.Errorf("missing %q in %q", want, line)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Errorf("line not newline-terminated: %q", line)
	}
}

func TestLoggerQuotesAwkwardValues(t *testing.T) {
	var b strings.Builder
	NewLogger(&b).Warn("read", "err", errors.New("unexpected EOF mid frame"))
	if !strings.Contains(b.String(), `err="unexpected EOF mid frame"`) {
		t.Errorf("value with spaces not quoted: %q", b.String())
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b).SetLevel(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := b.String()
	if strings.Contains(out, "DEBUG") || strings.Contains(out, "INFO") {
		t.Errorf("below-level records written: %q", out)
	}
	if !strings.Contains(out, "WARN w") || !strings.Contains(out, "ERROR e") {
		t.Errorf("at-level records missing: %q", out)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with the level filter")
	}
}

func TestLoggerWithFields(t *testing.T) {
	var b strings.Builder
	base := NewLogger(&b)
	sess := base.With("session", int64(3), "addr", "localhost:1")
	sess.Info("query", "ms", 12*time.Millisecond)
	line := b.String()
	for _, want := range []string{"session=3", "addr=localhost:1", "ms=12ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("missing %q in %q", want, line)
		}
	}
	b.Reset()
	base.Info("bare")
	if strings.Contains(b.String(), "session=") {
		t.Errorf("child fields leaked into parent: %q", b.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	var b strings.Builder
	NewJSONLogger(&b).With("session", int64(9)).Error("boom", "rows", 42, "q", `say "hi"`)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if rec["level"] != "error" || rec["msg"] != "boom" {
		t.Errorf("level/msg wrong: %v", rec)
	}
	if rec["session"] != float64(9) || rec["rows"] != float64(42) {
		t.Errorf("numeric fields wrong: %v", rec)
	}
	if rec["q"] != `say "hi"` {
		t.Errorf("string escaping wrong: %v", rec["q"])
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", 1)
	l.With("a", 2).Error("still nothing")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestNewLogfLogger(t *testing.T) {
	var got []string
	l := NewLogfLogger(func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	})
	l.Info("drain", "sessions", 4)
	if len(got) != 1 || got[0] != "INFO drain sessions=4" {
		t.Errorf("Logf shim output = %q, want timestamp-free line", got)
	}
	if NewLogfLogger(nil) != nil {
		t.Error("NewLogfLogger(nil) must be a nil (discarding) logger")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "ERROR": LevelError, "bogus": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
