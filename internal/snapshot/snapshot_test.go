package snapshot

import (
	"fmt"
	"sync"
	"testing"

	"dkbms/internal/catalog"
	"dkbms/internal/core"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// testCatalog opens an in-memory catalog with one two-column fact
// relation per name, each holding a single distinguishing row.
func testCatalog(t *testing.T, names ...string) (*storage.Pager, *catalog.Catalog) {
	t.Helper()
	p := storage.NewMemPager(0)
	c, err := catalog.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		schema, err := rel.NewSchema(rel.Column{Name: "c0", Type: rel.TypeInt}, rel.Column{Name: "c1", Type: rel.TypeInt})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := c.CreateTable(name, schema, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Insert(rel.Tuple{rel.NewInt(int64(i)), rel.NewInt(int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	return p, c
}

// liveTables collects the catalog's current non-temp tables for Publish.
func liveTables(c *catalog.Catalog) map[string]*catalog.Table {
	out := make(map[string]*catalog.Table)
	for _, name := range c.Tables() {
		if t := c.Table(name); t != nil && !t.Temp {
			out[name] = t
		}
	}
	return out
}

// rowCount scans a frozen table version.
func rowCount(t *testing.T, tb *catalog.Table) int {
	t.Helper()
	n := 0
	if err := tb.Scan(func(_ storage.RID, _ rel.Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSnapshotPinKeepsSupersededVersion: a pinned snapshot keeps
// reading the table version it was published with after a commit
// replaces it, and the superseded version's pages are reclaimed only
// when the pin drains.
func TestSnapshotPinKeepsSupersededVersion(t *testing.T) {
	p, c := testCatalog(t, "edb_a", "edb_b")
	st := NewStore("edb_")
	st.Publish(liveTables(c), 1, 1, core.NewWorkspace(), 0)

	s1 := st.Acquire()
	oldA, ok := s1.ResolveTable("edb_a")
	if !ok || oldA == nil {
		t.Fatal("snapshot does not resolve edb_a")
	}

	// Writer: copy-on-write edb_a, append a row to the copy, publish.
	if _, err := c.ShadowTable("edb_a"); err != nil {
		t.Fatal(err)
	}
	newA := c.Table("edb_a")
	if newA == oldA {
		t.Fatal("shadow did not replace the physical table")
	}
	if _, err := newA.Insert(rel.Tuple{rel.NewInt(7), rel.NewInt(8)}); err != nil {
		t.Fatal(err)
	}
	st.Publish(liveTables(c), 1, 2, core.NewWorkspace(), 0)

	// The pinned snapshot still reads the one-row original.
	if got := rowCount(t, oldA); got != 1 {
		t.Fatalf("pinned version has %d rows, want 1", got)
	}
	stats := st.Stats()
	if stats.ReclaimBacklog != 1 || stats.ReclaimedTables != 0 {
		t.Fatalf("backlog %d reclaimed %d before drain; want 1, 0", stats.ReclaimBacklog, stats.ReclaimedTables)
	}
	if stats.OldestPinnedGen != 1 || stats.Gen != 2 {
		t.Fatalf("oldest pinned gen %d at published gen %d; want 1 at 2", stats.OldestPinnedGen, stats.Gen)
	}

	// A fresh reader sees the two-row successor; the shared edb_b
	// version carries the same physical table across generations.
	s2 := st.Acquire()
	curA, _ := s2.ResolveTable("edb_a")
	if got := rowCount(t, curA); got != 2 {
		t.Fatalf("current version has %d rows, want 2", got)
	}
	if b1, _ := s1.ResolveTable("edb_b"); b1 != c.Table("edb_b") {
		t.Fatal("unchanged table was not shared across snapshots")
	}
	if s1.TableGen("edb_a") == s2.TableGen("edb_a") {
		t.Fatal("replaced table kept its version generation")
	}
	if s1.TableGen("edb_b") != s2.TableGen("edb_b") {
		t.Fatal("unchanged table changed its version generation")
	}

	// Draining the old pin reclaims the superseded version's pages.
	free0, err := p.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	s1.Release()
	stats = st.Stats()
	if stats.ReclaimBacklog != 0 || stats.ReclaimedTables != 1 || stats.ReclaimErrors != 0 {
		t.Fatalf("after drain: %+v, want backlog 0, reclaimed 1", stats)
	}
	free1, err := p.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free1 <= free0 {
		t.Fatalf("reclaim returned no pages to the free list (%d -> %d)", free0, free1)
	}
	s2.Release()
	if st.ActiveReaders() != 0 {
		t.Fatalf("readers leaked: %d", st.ActiveReaders())
	}
}

// TestSnapshotAuthority: a snapshot is authoritative for its versioned
// tables and for absent names under the managed prefix, and defers on
// everything else (session temp tables).
func TestSnapshotAuthority(t *testing.T) {
	_, c := testCatalog(t, "edb_a")
	st := NewStore("edb_")
	st.Publish(liveTables(c), 1, 1, core.NewWorkspace(), 0)
	s := st.Acquire()
	defer s.Release()

	if tb, ok := s.ResolveTable("edb_a"); !ok || tb == nil {
		t.Fatal("versioned table not authoritative")
	}
	if tb, ok := s.ResolveTable("edb_created_later"); !ok || tb != nil {
		t.Fatal("absent managed name must be authoritatively invisible")
	}
	if _, ok := s.ResolveTable("dkb1_tmp"); ok {
		t.Fatal("temp-table name must fall through to the live catalog")
	}
	if g := s.TableGen("edb_created_later"); g != 0 {
		t.Fatalf("absent table generation %d, want 0", g)
	}
}

// TestSnapshotChurnNoLeak: continuous commits under concurrent
// acquire/release traffic reclaim every superseded version once
// readers drain — live versions settle to the published set and the
// retired list empties.
func TestSnapshotChurnNoLeak(t *testing.T) {
	_, c := testCatalog(t, "edb_a", "edb_b")
	st := NewStore("edb_")
	st.Publish(liveTables(c), 1, 1, core.NewWorkspace(), 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Acquire()
				if tb, ok := s.ResolveTable("edb_a"); !ok || tb == nil {
					t.Error("lost edb_a")
					s.Release()
					return
				} else if rowCount(t, tb) < 1 {
					t.Error("pinned version lost its rows")
					s.Release()
					return
				}
				s.Release()
			}
		}()
	}

	for i := 0; i < 200; i++ {
		name := "edb_a"
		if i%2 == 1 {
			name = "edb_b"
		}
		if _, err := c.ShadowTable(name); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Table(name).Insert(rel.Tuple{rel.NewInt(int64(i)), rel.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		st.Publish(liveTables(c), 1, uint64(i+2), core.NewWorkspace(), 0)
	}
	close(stop)
	wg.Wait()
	st.Shutdown()

	stats := st.Stats()
	if stats.ActiveReaders != 0 || stats.RetiredSnapshots != 0 {
		t.Fatalf("after shutdown: %d readers, %d retired", stats.ActiveReaders, stats.RetiredSnapshots)
	}
	if stats.ReclaimBacklog != 0 {
		t.Fatalf("reclaim backlog %d after drain", stats.ReclaimBacklog)
	}
	want := int64(len(st.Current().Tables()))
	if stats.LiveVersions != want {
		t.Fatalf("%d live versions, want %d (one per published table): superseded versions leaked", stats.LiveVersions, want)
	}
	if stats.ReclaimedTables != 200 {
		t.Fatalf("reclaimed %d versions across 200 commits", stats.ReclaimedTables)
	}
	if stats.Commits != 201 || stats.CopiedTables != 200 {
		t.Fatalf("commits %d copied %d, want 201/200", stats.Commits, stats.CopiedTables)
	}
}

// TestSnapshotGenerationsMonotonic: Publish numbers snapshots densely
// and stamps fresh versions with the publishing generation.
func TestSnapshotGenerationsMonotonic(t *testing.T) {
	_, c := testCatalog(t, "edb_a")
	st := NewStore("edb_")
	for i := 1; i <= 3; i++ {
		s := st.Publish(liveTables(c), uint64(i), uint64(i), core.NewWorkspace(), 0)
		if s.Gen != uint64(i) {
			t.Fatalf("publish %d got gen %d", i, s.Gen)
		}
		if s.RuleGen != uint64(i) || s.DataGen != uint64(i) {
			t.Fatalf("generation pair not carried: %d/%d", s.RuleGen, s.DataGen)
		}
	}
	s := st.Acquire()
	defer s.Release()
	// edb_a's physical table never changed, so its version still bears
	// the generation that first published it.
	if g := s.TableGen("edb_a"); g != 1 {
		t.Fatalf("unchanged table at gen %d, want 1", g)
	}
	if fmt.Sprintf("%v", s.Tables()) != "[edb_a]" {
		t.Fatalf("tables %v", s.Tables())
	}
}
