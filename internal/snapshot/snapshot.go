// Package snapshot is the engine's MVCC-lite read path: immutable,
// generation-stamped snapshots of the base-table state, published
// through an atomic pointer and reclaimed by reference counting.
//
// The design replaces the reader/writer lock the ConcurrentTestbed
// originally used (readers convoyed behind every LOAD/RETRACT; see
// BENCH_server_scaling.json) with copy-on-write at table granularity:
//
//   - A Snapshot is a frozen view: the generation pair that keys the
//     plan/result cache (RuleGen, DataGen), the workspace rule set at
//     commit time, and a per-table version vector mapping base-table
//     names to immutable *catalog.Table versions.
//   - Readers pin the current snapshot with Store.Acquire — an atomic
//     pointer load plus a pin-count increment, never a lock shared with
//     writers — evaluate entirely against it, and Release it when done.
//   - The single-writer commit path clones only the tables an update
//     touches (catalog.Catalog.ShadowTable), applies the update to the
//     clones, and installs the successor snapshot with Store.Publish.
//     Unchanged tables carry their Version into the new snapshot; a
//     replaced Version is marked superseded.
//   - Reclamation is epoch-like: each Version counts the snapshots that
//     reference it, and a superseded Version frees its heap pages (back
//     to the pager free list) when the last referencing snapshot drains
//     to zero reader pins. A pinned snapshot therefore keeps every
//     table version it can see readable, no matter how many commits
//     have happened since.
package snapshot

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dkbms/internal/catalog"
	"dkbms/internal/core"
)

// Version is one immutable published version of a base table. The
// wrapped *catalog.Table is frozen: the writer never mutates a table
// after a newer version replaces it in the live catalog, so readers may
// scan its heap and probe its indexes without coordination.
type Version struct {
	// Table is the frozen physical table.
	Table *catalog.Table
	// Gen is the snapshot generation that first published this version;
	// the plan cache's per-table dependency vectors compare against it.
	Gen uint64

	// refs counts the snapshots (not readers) referencing this version.
	refs atomic.Int64
	// superseded is set by Publish when a newer version replaces this
	// one; only superseded versions own their heap pages and may free
	// them on the last unref.
	superseded atomic.Bool
	store      *Store
}

// unref drops one snapshot reference; the last reference of a
// superseded version returns its heap pages to the pager free list.
func (v *Version) unref() {
	if v.refs.Add(-1) == 0 && v.superseded.Load() {
		v.reclaim()
	}
}

func (v *Version) reclaim() {
	st := v.store
	st.liveVersions.Add(-1)
	st.backlog.Add(-1)
	if err := v.Table.Heap.Drop(); err != nil {
		st.reclaimErrors.Add(1)
		return
	}
	st.reclaimed.Add(1)
}

// Snapshot is one immutable published engine state. All exported fields
// and maps are frozen at Publish time; a Snapshot is safe for
// concurrent use by any number of readers holding pins on it.
type Snapshot struct {
	// Gen is the commit sequence number: it increases by one per
	// Publish and stamps every table version created by that commit.
	Gen uint64
	// RuleGen and DataGen are the plan-cache generation pair at commit
	// time: RuleGen keys compiled programs, DataGen counts extensional
	// changes (kept for telemetry; result validity uses the per-table
	// vector instead).
	RuleGen uint64
	DataGen uint64

	ws       *core.Workspace
	versions map[string]*Version
	names    []string // sorted version-map keys, for deterministic iteration

	// pins starts at 1 — the store's "currentness" reference — and
	// counts readers on top. Publish drops the currentness pin when the
	// snapshot is superseded; whoever takes pins to zero finalizes.
	pins  atomic.Int64
	done  atomic.Bool
	store *Store
}

// WS returns the frozen workspace rule set of this snapshot.
func (s *Snapshot) WS() *core.Workspace { return s.ws }

// ResolveTable resolves a base-table name against the frozen version
// vector. It reports (table, true) for names the snapshot is
// authoritative for — every versioned table, plus any name under the
// store's managed prefix, for which absence is authoritative too (a
// fact relation created after this snapshot must stay invisible to
// it). Other names (the run-time library's session-private temp
// tables) report (nil, false) and fall through to the live catalog.
func (s *Snapshot) ResolveTable(name string) (*catalog.Table, bool) {
	if v, ok := s.versions[name]; ok {
		return v.Table, true
	}
	if strings.HasPrefix(name, s.store.prefix) {
		return nil, true
	}
	return nil, false
}

// TableGen returns the generation of the named table's version, or 0
// when the snapshot has no such table. Since generations start at 1,
// (name → TableGen) pairs form an exact validity vector: a memoized
// result is current while every dependency reports the recorded value.
func (s *Snapshot) TableGen(name string) uint64 {
	if v, ok := s.versions[name]; ok {
		return v.Gen
	}
	return 0
}

// Tables returns the versioned table names in sorted order.
func (s *Snapshot) Tables() []string { return s.names }

// Version returns the named table's version, or nil.
func (s *Snapshot) Version(name string) *Version { return s.versions[name] }

// Release drops a reader's pin. The last pin of a superseded snapshot
// releases its version references, which reclaims any table version no
// other snapshot can see.
func (s *Snapshot) Release() {
	s.unpin()
	// Decremented after finalization so that Store.Shutdown observing
	// zero readers implies all reclamation this reader triggered is
	// complete.
	s.store.readers.Add(-1)
}

func (s *Snapshot) unpin() {
	if s.pins.Add(-1) == 0 {
		s.finalize()
	}
}

// finalize runs once, when a superseded snapshot's pins drain to zero:
// it releases the version references and then unregisters from the
// retired set. The done flag guards the 0→1→0 pin transient of
// Acquire's recheck loop, which can reach zero a second time.
func (s *Snapshot) finalize() {
	if !s.done.CompareAndSwap(false, true) {
		return
	}
	for _, v := range s.versions {
		v.unref()
	}
	s.store.noteDrained(s)
}

// Store publishes snapshots. The read path (Acquire/Release) is
// lock-free; Publish is called by at most one writer at a time (the
// engine's commit mutex provides that).
type Store struct {
	// current is the published snapshot. Readers load it and pin;
	// Publish swaps it. This pointer is the only rendezvous between
	// readers and the writer.
	current atomic.Pointer[Snapshot]
	prefix  string

	// readers counts queries currently holding a pinned snapshot.
	readers atomic.Int64

	mu      sync.Mutex
	retired map[*Snapshot]struct{} // superseded snapshots not yet drained

	liveVersions  atomic.Int64
	backlog       atomic.Int64 // superseded versions awaiting reclamation
	reclaimed     atomic.Int64
	reclaimErrors atomic.Int64
	commits       atomic.Int64
	copied        atomic.Int64 // table versions replaced across all commits
	stallNs       atomic.Int64 // cumulative writer time spent building copies
}

// NewStore returns an empty store. managedPrefix is the base-table
// naming prefix ("edb_") for which snapshots are authoritative even in
// absence. Publish must run once before the first Acquire.
func NewStore(managedPrefix string) *Store {
	return &Store{prefix: managedPrefix, retired: make(map[*Snapshot]struct{})}
}

// Acquire pins and returns the current snapshot. The recheck loop
// closes the load/pin race with a concurrent Publish: a pin landing on
// a just-superseded snapshot is withdrawn and the load retried, so the
// returned snapshot was current at the instant its pin was visible —
// and its pin keeps every table version it references alive.
func (st *Store) Acquire() *Snapshot {
	for {
		s := st.current.Load()
		s.pins.Add(1)
		if st.current.Load() == s {
			st.readers.Add(1)
			return s
		}
		s.unpin()
	}
}

// Current returns the published snapshot without pinning it. The
// returned snapshot's immutable fields (generations, names) are safe
// to read, but its table versions may be reclaimed at any time — use
// Acquire to evaluate against it.
func (st *Store) Current() *Snapshot { return st.current.Load() }

// Publish installs the successor snapshot built from the given live
// tables (name → current physical table, as the commit left them) and
// generations. Tables whose physical identity is unchanged carry their
// version forward; replaced or dropped versions are marked superseded
// and reclaimed once their referencing snapshots drain. buildCost is
// the writer time spent preparing the commit (table copies), surfaced
// as the writer-stall telemetry. Single writer only.
func (st *Store) Publish(tables map[string]*catalog.Table, ruleGen, dataGen uint64, ws *core.Workspace, buildCost time.Duration) *Snapshot {
	prev := st.current.Load()
	gen := uint64(1)
	if prev != nil {
		gen = prev.Gen + 1
	}
	next := &Snapshot{
		Gen:      gen,
		RuleGen:  ruleGen,
		DataGen:  dataGen,
		ws:       ws,
		versions: make(map[string]*Version, len(tables)),
		store:    st,
	}
	next.pins.Store(1)
	for name, t := range tables {
		if prev != nil {
			if v, ok := prev.versions[name]; ok && v.Table == t {
				v.refs.Add(1)
				next.versions[name] = v
				continue
			}
			if _, replaced := prev.versions[name]; replaced {
				st.copied.Add(1)
			}
		}
		v := &Version{Table: t, Gen: gen, store: st}
		v.refs.Store(1)
		next.versions[name] = v
		st.liveVersions.Add(1)
	}
	next.names = make([]string, 0, len(next.versions))
	for name := range next.versions {
		next.names = append(next.names, name)
	}
	sort.Strings(next.names)

	if prev != nil {
		for name, v := range prev.versions {
			if next.versions[name] != v {
				v.superseded.Store(true)
				st.backlog.Add(1)
			}
		}
		// Register prev as retired before the swap: a racing reader that
		// takes prev's pins to zero right after the swap must find it in
		// the set to unregister.
		st.mu.Lock()
		st.retired[prev] = struct{}{}
		st.mu.Unlock()
	}
	st.current.Store(next)
	st.commits.Add(1)
	st.stallNs.Add(int64(buildCost))
	if prev != nil {
		prev.unpin() // drop the currentness pin; last reader out finalizes
	}
	return next
}

func (st *Store) noteDrained(s *Snapshot) {
	st.mu.Lock()
	delete(st.retired, s)
	st.mu.Unlock()
}

// ActiveReaders returns the number of queries holding a pinned
// snapshot right now.
func (st *Store) ActiveReaders() int64 { return st.readers.Load() }

// Shutdown blocks until every reader has released its snapshot and all
// pending reclamation has run. The caller must have stopped admitting
// new readers first; Publish must not run concurrently.
func (st *Store) Shutdown() {
	for {
		st.mu.Lock()
		n := len(st.retired)
		st.mu.Unlock()
		if n == 0 && st.readers.Load() == 0 {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of the store's telemetry.
type Stats struct {
	// Gen, RuleGen and DataGen identify the published snapshot.
	Gen     uint64
	RuleGen uint64
	DataGen uint64
	// OldestPinnedGen is the generation of the oldest snapshot still
	// held by a reader (== Gen when no retired snapshot survives).
	OldestPinnedGen uint64
	// ActiveReaders counts queries holding a pinned snapshot.
	ActiveReaders int64
	// RetiredSnapshots counts superseded snapshots awaiting drain.
	RetiredSnapshots int64
	// LiveVersions counts table versions not yet reclaimed (including
	// the current ones); ReclaimBacklog counts the superseded subset.
	LiveVersions   int64
	ReclaimBacklog int64
	// ReclaimedTables and ReclaimErrors count completed and failed
	// version reclamations since the store opened.
	ReclaimedTables int64
	ReclaimErrors   int64
	// Commits counts Publish calls; CopiedTables counts table versions
	// replaced across them (the copy-on-write write amplification).
	Commits      int64
	CopiedTables int64
	// WriterStall is the cumulative writer time spent building table
	// copies before publishing.
	WriterStall time.Duration
}

// Stats returns current telemetry.
func (st *Store) Stats() Stats {
	out := Stats{
		ActiveReaders:   st.readers.Load(),
		LiveVersions:    st.liveVersions.Load(),
		ReclaimBacklog:  st.backlog.Load(),
		ReclaimedTables: st.reclaimed.Load(),
		ReclaimErrors:   st.reclaimErrors.Load(),
		Commits:         st.commits.Load(),
		CopiedTables:    st.copied.Load(),
		WriterStall:     time.Duration(st.stallNs.Load()),
	}
	if cur := st.current.Load(); cur != nil {
		out.Gen, out.RuleGen, out.DataGen = cur.Gen, cur.RuleGen, cur.DataGen
		out.OldestPinnedGen = cur.Gen
	}
	st.mu.Lock()
	out.RetiredSnapshots = int64(len(st.retired))
	for s := range st.retired {
		if s.Gen < out.OldestPinnedGen {
			out.OldestPinnedGen = s.Gen
		}
	}
	st.mu.Unlock()
	return out
}
