package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsEveryTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	c := p.NewClient()
	defer c.Close()

	var n atomic.Int64
	g := c.Group()
	for i := 0; i < 100; i++ {
		g.Go(func(int) { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
	if got := c.Admitted(); got != 100 {
		t.Fatalf("admitted = %d, want 100", got)
	}
	st := p.Stats()
	if st.Completed != 100 || st.Submitted != 100 {
		t.Fatalf("stats = %+v, want 100 submitted/completed", st)
	}
}

func TestWaitHelpsInline(t *testing.T) {
	// A pool of one worker, wedged on a task that blocks until the
	// group under test finishes. Wait must run the group's tasks
	// itself or this deadlocks.
	p := NewPool(1)
	defer p.Close()
	blocker := p.NewClient()
	defer blocker.Close()
	release := make(chan struct{})
	bg := blocker.Group()
	bg.Go(func(int) { <-release })

	c := p.NewClient()
	defer c.Close()
	var n atomic.Int64
	g := c.Group()
	for i := 0; i < 10; i++ {
		g.Go(func(worker int) {
			if worker != -1 {
				t.Errorf("task ran on worker %d; the only worker is wedged", worker)
			}
			n.Add(1)
		})
	}
	done := make(chan struct{})
	go func() { g.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait deadlocked with the pool wedged")
	}
	if n.Load() != 10 {
		t.Fatalf("ran %d of 10 tasks", n.Load())
	}
	if st := p.Stats(); st.Stolen < 10 {
		t.Fatalf("stolen = %d, want >= 10 (all inline)", st.Stolen)
	}
	close(release)
	bg.Wait()
}

func TestNestedGroupsAnyPoolSize(t *testing.T) {
	// Tasks that fork nested groups and wait on them: the deadlock
	// shape help-first stealing exists to prevent.
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		c := p.NewClient()
		var n atomic.Int64
		g := c.Group()
		for i := 0; i < 8; i++ {
			g.Go(func(int) {
				sub := c.Group()
				for j := 0; j < 8; j++ {
					sub.Go(func(int) { n.Add(1) })
				}
				sub.Wait()
			})
		}
		g.Wait()
		if n.Load() != 64 {
			t.Fatalf("workers=%d: ran %d of 64 nested tasks", workers, n.Load())
		}
		c.Close()
		p.Close()
	}
}

func TestGoroutinesBoundedByPoolSize(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(3)
	defer p.Close()

	// 16 concurrent "sessions", each forking 32 tasks. Without a pool
	// that is 512 goroutines; with it, 3 workers plus the waiters.
	var wg sync.WaitGroup
	var peak atomic.Int64
	for s := 0; s < 16; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.NewClient()
			defer c.Close()
			g := c.Group()
			for i := 0; i < 32; i++ {
				g.Go(func(int) {
					if n := int64(runtime.NumGoroutine()); n > peak.Load() {
						peak.Store(n)
					}
				})
			}
			g.Wait()
		}()
	}
	wg.Wait()
	// base + 16 session goroutines + 3 workers + slack; far under 512.
	if limit := int64(base + 16 + 3 + 10); peak.Load() > limit {
		t.Fatalf("peak goroutines %d exceeds pool bound %d", peak.Load(), limit)
	}
}

func TestFairRoundRobinAdmission(t *testing.T) {
	// One worker, two clients: a flood of tasks from the first must not
	// starve the second. With round-robin admission the second client's
	// single task runs after at most a couple of flood tasks.
	p := NewPool(1)
	defer p.Close()
	flood := p.NewClient()
	point := p.NewClient()
	defer flood.Close()
	defer point.Close()

	gate := make(chan struct{})
	var floodRuns atomic.Int64
	fg := flood.Group()
	fg.Go(func(int) { <-gate }) // wedge the worker while we queue
	for i := 0; i < 64; i++ {
		fg.Go(func(int) { floodRuns.Add(1); time.Sleep(time.Millisecond) })
	}
	var before int64
	pg := point.Group()
	pg.Go(func(int) { before = floodRuns.Load() })
	close(gate)

	// Only the worker may run these (Wait on pg would steal and defeat
	// the point of the test), so poll for completion.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Completed < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	pg.Wait()
	if before > 2 {
		t.Fatalf("point query waited behind %d flood tasks; round-robin should admit it after at most ~1", before)
	}
	fg.Wait()
}

func TestCloseCompletesQueuedWorkInline(t *testing.T) {
	p := NewPool(2)
	c := p.NewClient()
	g := c.Group()
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		g.Go(func(int) { n.Add(1) })
	}
	p.Close() // workers gone; tickets may be stranded
	g.Wait()  // must finish everything inline
	if n.Load() != 50 {
		t.Fatalf("ran %d of 50 tasks after Close", n.Load())
	}
	c.Close()
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
}
