// Package sched is the bounded evaluation scheduler: a fixed-size
// worker pool shared by every session of a server process, onto which
// the run-time library (internal/rtlib) submits its parallel work —
// per-rule differential SELECTs, hash-range partitions of dedup and
// termination checks, and whole evaluation-order nodes of the stratum
// wavefront.
//
// The paper's conclusion 7a observes that "during each iteration, the
// right hand side of each recursive equation may be evaluated in
// parallel"; the naive realization (one goroutine per rule SQL) means N
// sessions × M rules goroutines, unbounded. The pool caps evaluation
// concurrency at a fixed worker count regardless of session count, and
// keeps admission fair:
//
//   - every evaluation registers a Client; each Client owns a FIFO of
//     pending tasks;
//   - workers scan the clients round-robin, taking at most one task per
//     client per visit, so a giant recursion queueing hundreds of
//     differentials cannot starve a point query that queued two;
//   - waiting is working: Group.Wait executes its own group's unstarted
//     tasks inline ("help-first" stealing). A task that fans out nested
//     subtasks therefore never deadlocks the pool — even a pool of one
//     worker makes progress, because every waiter drains itself.
//
// Tasks must run to completion without blocking on other *queued* tasks
// (blocking on a nested Group is fine — its Wait self-helps). The
// engine's evaluation jobs are plain SELECT/INSERT work and satisfy
// this by construction.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of evaluation workers. The zero value is not
// usable; construct with NewPool.
type Pool struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	clients []*Client // admission ring, scanned round-robin
	cursor  int       // next ring slot to scan
	queued  int       // tickets across all client queues
	closed  bool
	wg      sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	stolen    atomic.Int64
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	// Workers is the fixed pool size.
	Workers int
	// Clients is the number of registered evaluations.
	Clients int
	// Queued counts tasks admitted but not yet started.
	Queued int
	// Submitted, Completed count tasks over the pool's lifetime.
	Submitted int64
	Completed int64
	// Stolen counts tasks a waiter reclaimed and ran inline instead of
	// a pool worker (help-first stealing).
	Stolen int64
}

// NewPool starts a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(i) //dkblint:bounded one worker per pool slot; n is the bound itself
	}
	return p
}

// Workers returns the fixed pool size.
func (p *Pool) Workers() int { return p.workers }

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	clients, queued := len(p.clients), p.queued
	p.mu.Unlock()
	return Stats{
		Workers:   p.workers,
		Clients:   clients,
		Queued:    queued,
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Stolen:    p.stolen.Load(),
	}
}

// Close stops the workers. Queued tasks are not abandoned: their
// groups' Wait calls run them inline. Safe to call once.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// worker is one pool goroutine: take the next admitted ticket, run one
// task of its group, repeat until Close.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		g := p.next()
		if g == nil {
			return
		}
		// The ticket may be stale: Wait may have already reclaimed the
		// task it announced. That is the cheap side of help-first
		// stealing — a no-op pop, not a lost task.
		if fn := g.take(); fn != nil {
			fn(id)
			g.finish()
			p.completed.Add(1)
		}
	}
}

// next blocks until a ticket is available (nil on Close), scanning the
// client ring round-robin from the cursor: one ticket per client per
// visit keeps admission fair across evaluations.
func (p *Pool) next() *Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil
		}
		if n := len(p.clients); n > 0 && p.queued > 0 {
			for i := 0; i < n; i++ {
				c := p.clients[(p.cursor+i)%n]
				if len(c.q) > 0 {
					g := c.q[0]
					c.q = c.q[1:]
					p.queued--
					p.cursor = (p.cursor + i + 1) % n
					return g
				}
			}
		}
		p.cond.Wait()
	}
}

// NewClient registers an evaluation with the pool. Close it when the
// evaluation finishes.
func (p *Pool) NewClient() *Client {
	c := &Client{p: p}
	p.mu.Lock()
	if !p.closed {
		p.clients = append(p.clients, c)
	} else {
		c.closed = true // tasks still complete, inline via Wait
	}
	p.mu.Unlock()
	return c
}

// Client is one evaluation's admission handle: a FIFO of its pending
// tasks, scanned fairly against every other client's.
type Client struct {
	p        *Pool
	q        []*Group // tickets, one per submitted task
	closed   bool     // guarded by p.mu
	admitted atomic.Int64
}

// Admitted counts tasks this client has submitted to the pool.
func (c *Client) Admitted() int64 { return c.admitted.Load() }

// Close deregisters the client. Call only after every Group's Wait has
// returned; remaining tickets are stale by then and are dropped.
func (c *Client) Close() {
	p := c.p
	p.mu.Lock()
	if !c.closed {
		c.closed = true
		for i, cl := range p.clients {
			if cl == c {
				p.clients = append(p.clients[:i], p.clients[i+1:]...)
				break
			}
		}
		p.queued -= len(c.q)
		c.q = nil
	}
	p.mu.Unlock()
}

// enqueue admits one ticket for g, waking a worker. When the client or
// pool is closed the ticket is dropped — the task still runs, inline in
// Group.Wait.
func (c *Client) enqueue(g *Group) {
	p := c.p
	p.mu.Lock()
	if !c.closed && !p.closed {
		c.q = append(c.q, g)
		p.queued++
	}
	p.mu.Unlock()
	p.cond.Signal()
	p.submitted.Add(1)
	c.admitted.Add(1)
}

// Group collects a batch of tasks forked by one caller (errgroup
// shape, minus the error plumbing — evaluation tasks record errors in
// caller-owned slots).
type Group struct {
	c    *Client
	mu   sync.Mutex
	cond *sync.Cond
	// pending holds forked-but-unstarted tasks; open counts forked-but-
	// unfinished ones.
	pending []func(worker int)
	open    int
}

// Group creates an empty task group on this client.
func (c *Client) Group() *Group {
	g := &Group{c: c}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Go forks one task. fn's argument is the pool worker index that ran
// it, or -1 when a waiter ran it inline.
func (g *Group) Go(fn func(worker int)) {
	g.mu.Lock()
	g.pending = append(g.pending, fn)
	g.open++
	g.mu.Unlock()
	g.cond.Broadcast() // a concurrent Wait can steal it
	g.c.enqueue(g)
}

// take pops one unstarted task (nil if none).
func (g *Group) take() func(worker int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.takeLocked()
}

func (g *Group) takeLocked() func(worker int) {
	if len(g.pending) == 0 {
		return nil
	}
	fn := g.pending[0]
	g.pending = g.pending[1:]
	return fn
}

// finish marks one task complete.
func (g *Group) finish() {
	g.mu.Lock()
	g.open--
	if g.open == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Wait blocks until every forked task has finished — by working, not
// idling: any task no worker has started yet is reclaimed and run
// inline on the calling goroutine. This is what makes nested fan-out
// (a wavefront node task forking its differential SELECTs) deadlock-
// free at any pool size.
func (g *Group) Wait() {
	g.mu.Lock()
	for {
		if fn := g.takeLocked(); fn != nil {
			g.mu.Unlock()
			g.c.p.stolen.Add(1)
			fn(-1)
			g.c.p.completed.Add(1)
			g.finish()
			g.mu.Lock()
			continue
		}
		if g.open == 0 {
			break
		}
		g.cond.Wait()
	}
	g.mu.Unlock()
}
