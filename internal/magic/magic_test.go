package magic

import (
	"strings"
	"testing"

	"dkbms/internal/dlog"
)

func clauses(srcs ...string) []dlog.Clause {
	out := make([]dlog.Clause, len(srcs))
	for i, s := range srcs {
		out[i] = dlog.MustParseClause(s)
	}
	return out
}

func derivedSet(preds ...string) func(string) bool {
	set := make(map[string]bool)
	for _, p := range preds {
		set[p] = true
	}
	return func(p string) bool { return set[p] }
}

func ruleStrings(rs []dlog.Clause) []string {
	out := make([]string, len(rs))
	for i, c := range rs {
		out[i] = c.String()
	}
	return out
}

func containsRule(t *testing.T, rs []dlog.Clause, want string) {
	t.Helper()
	for _, c := range rs {
		if c.String() == want {
			return
		}
	}
	t.Fatalf("missing rule %q in:\n%s", want, strings.Join(ruleStrings(rs), "\n"))
}

func TestAncestorBoundFirst(t *testing.T) {
	rules := clauses(
		"_query(X) :- anc(john, X).",
		"anc(X, Y) :- parent(X, Y).",
		"anc(X, Y) :- parent(X, Z), anc(Z, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "anc"))
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryPred != "_query__f" {
		t.Fatalf("query pred %s", res.QueryPred)
	}
	containsRule(t, res.Rules, "_query__f(X) :- anc__bf(john, X).")
	containsRule(t, res.Rules, "anc__bf(X, Y) :- m_anc__bf(X), parent(X, Y).")
	containsRule(t, res.Rules, "anc__bf(X, Y) :- m_anc__bf(X), parent(X, Z), anc__bf(Z, Y).")
	containsRule(t, res.Rules, "m_anc__bf(Z) :- m_anc__bf(X), parent(X, Z).")
	if len(res.Seeds) != 1 || res.Seeds[0].String() != "m_anc__bf(john)" {
		t.Fatalf("seeds = %v", res.Seeds)
	}
}

func TestBoundSecondArgument(t *testing.T) {
	rules := clauses(
		"_query(X) :- anc(X, mary).",
		"anc(X, Y) :- parent(X, Y).",
		"anc(X, Y) :- parent(X, Z), anc(Z, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "anc"))
	if err != nil {
		t.Fatal(err)
	}
	// anc is reached with adornment fb.
	containsRule(t, res.Rules, "anc__fb(X, Y) :- m_anc__fb(Y), parent(X, Y).")
	// In the recursive rule, left-to-right SIP marks Z bound after the
	// parent(X, Z) atom, so the inner anc occurrence is adorned bb.
	containsRule(t, res.Rules, "anc__fb(X, Y) :- m_anc__fb(Y), parent(X, Z), anc__bb(Z, Y).")
	containsRule(t, res.Rules, "m_anc__bb(Z, Y) :- m_anc__fb(Y), parent(X, Z).")
	containsRule(t, res.Rules, "anc__bb(X, Y) :- m_anc__bb(X, Y), parent(X, Y).")
	if len(res.Seeds) != 1 || res.Seeds[0].String() != "m_anc__fb(mary)" {
		t.Fatalf("seeds = %v", res.Seeds)
	}
}

func TestNoBindings(t *testing.T) {
	rules := clauses(
		"_query(X, Y) :- anc(X, Y).",
		"anc(X, Y) :- parent(X, Y).",
		"anc(X, Y) :- parent(X, Z), anc(Z, Y).",
	)
	if _, err := Rewrite(rules, "_query", derivedSet("_query", "anc")); err != ErrNoBindings {
		t.Fatalf("err = %v, want ErrNoBindings", err)
	}
}

func TestSameGenerationBothBound(t *testing.T) {
	// The classic same-generation program with a fully bound query.
	rules := clauses(
		"_query(X) :- sg(ann, X).",
		"sg(X, Y) :- flat(X, Y).",
		"sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "sg"))
	if err != nil {
		t.Fatal(err)
	}
	containsRule(t, res.Rules, "sg__bf(X, Y) :- m_sg__bf(X), flat(X, Y).")
	containsRule(t, res.Rules, "sg__bf(X, Y) :- m_sg__bf(X), up(X, U), sg__bf(U, V), down(V, Y).")
	containsRule(t, res.Rules, "m_sg__bf(U) :- m_sg__bf(X), up(X, U).")
	if len(res.Seeds) != 1 || res.Seeds[0].String() != "m_sg__bf(ann)" {
		t.Fatalf("seeds = %v", res.Seeds)
	}
}

func TestMultipleAdornments(t *testing.T) {
	// p is used once bound-first and once bound-second.
	rules := clauses(
		"_query(X, Y) :- p(a, X), p(Y, b).",
		"p(X, Y) :- e(X, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "p"))
	if err != nil {
		t.Fatal(err)
	}
	containsRule(t, res.Rules, "p__bf(X, Y) :- m_p__bf(X), e(X, Y).")
	containsRule(t, res.Rules, "p__fb(X, Y) :- m_p__fb(Y), e(X, Y).")
	// The first occurrence seeds directly; the second's magic rule has
	// the first occurrence as its body (SIP prefix), so it is a rule.
	if len(res.Seeds) != 1 || res.Seeds[0].String() != "m_p__bf(a)" {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	containsRule(t, res.Rules, "m_p__fb(b) :- p__bf(a, X).")
}

func TestSIPPropagationThroughEDB(t *testing.T) {
	// After evaluating parent(X, Z) with X bound, Z becomes bound for
	// the following derived atom.
	rules := clauses(
		"_query(Y) :- q(john, Y).",
		"q(X, Y) :- parent(X, Z), r(Z, Y).",
		"r(A, B) :- e(A, B).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "q", "r"))
	if err != nil {
		t.Fatal(err)
	}
	containsRule(t, res.Rules, "q__bf(X, Y) :- m_q__bf(X), parent(X, Z), r__bf(Z, Y).")
	containsRule(t, res.Rules, "m_r__bf(Z) :- m_q__bf(X), parent(X, Z).")
	containsRule(t, res.Rules, "r__bf(A, B) :- m_r__bf(A), e(A, B).")
}

func TestSIPPropagationThroughDerived(t *testing.T) {
	// A derived atom also binds its variables for later atoms.
	rules := clauses(
		"_query(Y) :- p(john, Z), p(Z, Y).",
		"p(X, Y) :- e(X, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "p"))
	if err != nil {
		t.Fatal(err)
	}
	// Second p occurrence gets adornment bf with Z bound by the first.
	containsRule(t, res.Rules, "_query__f(Y) :- p__bf(john, Z), p__bf(Z, Y).")
	containsRule(t, res.Rules, "m_p__bf(Z) :- p__bf(john, Z).")
}

func TestConstantInRuleBodyBinds(t *testing.T) {
	rules := clauses(
		"_query(X) :- p(X).",
		"p(X) :- q(a, X).",
		"q(X, Y) :- e(X, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "p", "q"))
	if err != nil {
		t.Fatal(err)
	}
	// p is all-free, but q(a, X) is bf: bindings arise inside rules too.
	containsRule(t, res.Rules, "q__bf(X, Y) :- m_q__bf(X), e(X, Y).")
	if len(res.Seeds) != 1 || res.Seeds[0].String() != "m_q__bf(a)" {
		t.Fatalf("seeds = %v", res.Seeds)
	}
}

func TestMutualRecursion(t *testing.T) {
	rules := clauses(
		"_query(Y) :- p(a, Y).",
		"p(X, Y) :- e(X, Y).",
		"p(X, Y) :- q(X, Y).",
		"q(X, Y) :- p(X, Z), e(Z, Y).",
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "p", "q"))
	if err != nil {
		t.Fatal(err)
	}
	containsRule(t, res.Rules, "p__bf(X, Y) :- m_p__bf(X), q__bf(X, Y).")
	containsRule(t, res.Rules, "q__bf(X, Y) :- m_q__bf(X), p__bf(X, Z), e(Z, Y).")
	containsRule(t, res.Rules, "m_q__bf(X) :- m_p__bf(X).")
	containsRule(t, res.Rules, "m_p__bf(X) :- m_q__bf(X).")
}

func TestOnlyReachableAdornmentsEmitted(t *testing.T) {
	rules := clauses(
		"_query(Y) :- p(a, Y).",
		"p(X, Y) :- e(X, Y).",
		"z(X) :- p(X, X).", // not reachable from the query
	)
	res, err := Rewrite(rules, "_query", derivedSet("_query", "p", "z"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Rules {
		if strings.HasPrefix(c.Head.Pred, "z"+AdornedSep) {
			t.Fatalf("unreachable rule rewritten: %s", c.String())
		}
	}
}

func TestFactsMixedWithRulesRejected(t *testing.T) {
	rules := clauses(
		"_query(Y) :- p(a, Y).",
		"p(X, Y) :- e(X, Y).",
		"p(a, b).",
	)
	if _, err := Rewrite(rules, "_query", derivedSet("_query", "p")); err == nil {
		t.Fatal("facts mixed into derived predicate accepted")
	}
}

func TestMissingQueryPred(t *testing.T) {
	rules := clauses("p(X) :- e(X).")
	if _, err := Rewrite(rules, "_query", derivedSet("p")); err == nil {
		t.Fatal("missing query predicate accepted")
	}
}

func TestNames(t *testing.T) {
	if AdornedName("anc", "bf") != "anc__bf" {
		t.Fatal(AdornedName("anc", "bf"))
	}
	if MagicName("anc__bf") != "m_anc__bf" {
		t.Fatal(MagicName("anc__bf"))
	}
}
