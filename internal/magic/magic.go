// Package magic implements the testbed's Optimizer: the generalized
// magic-sets rewriting of Beeri & Ramakrishnan that the paper's
// Knowledge Manager applies to the rules relevant to a query (§3.2.5).
//
// The rewrite adorns derived predicates with bound/free patterns
// propagated from the query constants using the left-to-right sideways
// information-passing strategy, then generates
//
//   - magic rules, which compute the set of bindings ("relevant facts")
//     the query can actually reach, and
//   - modified rules, the original rules guarded by the magic predicate
//     of their head,
//
// so that the bottom-up LFP computation is restricted to tuples relevant
// to the query. Magic rules whose body is empty and whose head is ground
// surface as Seeds — the initial magic facts.
package magic

import (
	"fmt"
	"sort"
	"strings"

	"dkbms/internal/dlog"
)

// adornedPrefix and magicPrefix are reserved name fragments. The rule
// parser accepts them in user programs, but the workspace manager
// rejects user predicates that collide (see internal/core).
const (
	// AdornedSep joins a predicate name with its adornment string.
	AdornedSep = "__"
	// MagicPrefix marks magic predicates.
	MagicPrefix = "m_"
)

// Result is the outcome of the rewriting.
type Result struct {
	// Rules is the rewritten program: modified rules plus magic rules,
	// over adorned predicate names.
	Rules []dlog.Clause
	// Seeds are ground magic facts to materialize before evaluation
	// (the query's constant bindings).
	Seeds []dlog.Atom
	// QueryPred is the adorned name of the query predicate to evaluate.
	QueryPred string
	// Adornments records the adornment string chosen for each original
	// predicate occurrence (diagnostics; keyed by adorned name).
	Adornments map[string]string
}

// AdornedName returns the rewritten name of pred under an adornment.
func AdornedName(pred, adornment string) string {
	return pred + AdornedSep + adornment
}

// MagicName returns the magic predicate name for an adorned predicate.
func MagicName(adornedPred string) string { return MagicPrefix + adornedPred }

// Rewrite applies generalized magic sets to the rule set for the given
// query predicate (typically dlog.QueryPred, whose single defining rule
// carries the query constants in its body). isDerived classifies body
// predicates; everything else is extensional and left untouched.
//
// If the query rule contains no constants anywhere (nothing to bind),
// the rewrite degenerates to the identity; callers should then evaluate
// the original rules. This is reported via ErrNoBindings.
func Rewrite(rules []dlog.Clause, queryPred string, isDerived func(string) bool) (*Result, error) {
	byHead := make(map[string][]dlog.Clause)
	for _, c := range rules {
		byHead[c.Head.Pred] = append(byHead[c.Head.Pred], c)
	}
	if len(byHead[queryPred]) == 0 {
		return nil, fmt.Errorf("magic: no rules define query predicate %s", queryPred)
	}

	// The query predicate starts all-free: its arguments are the output
	// variables. Bindings enter through constants in rule bodies.
	res := &Result{Adornments: make(map[string]string)}

	type adorned struct {
		pred string
		ad   string
	}
	queryAd := strings.Repeat("f", byHead[queryPred][0].Head.Arity())
	work := []adorned{{pred: queryPred, ad: queryAd}}
	done := map[adorned]bool{}
	res.QueryPred = AdornedName(queryPred, queryAd)

	// If the relevant rules carry no constants at all there is nothing
	// for sideways information passing to restrict: the rewrite would
	// only add magic bookkeeping. Report identity instead.
	hasBindings := false
	for _, c := range rules {
		for _, a := range append([]dlog.Atom{c.Head}, c.Body...) {
			for _, t := range a.Args {
				if !t.IsVar() {
					hasBindings = true
				}
			}
		}
	}
	if !hasBindings {
		return nil, ErrNoBindings
	}

	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		if done[cur] {
			continue
		}
		done[cur] = true
		res.Adornments[AdornedName(cur.pred, cur.ad)] = cur.ad

		for _, c := range byHead[cur.pred] {
			if len(c.Body) == 0 {
				return nil, fmt.Errorf("magic: predicate %s mixes rules and facts; normalize first (clause %q)",
					cur.pred, c.String())
			}
			modified, magics, newAdorned, err := rewriteRule(c, cur.ad, isDerived)
			if err != nil {
				return nil, err
			}
			res.Rules = append(res.Rules, modified)
			for _, m := range magics {
				if len(m.Body) == 0 {
					if !m.Head.IsGround() {
						return nil, fmt.Errorf("magic: non-ground seed %s", m.Head.String())
					}
					res.Seeds = append(res.Seeds, m.Head)
				} else {
					res.Rules = append(res.Rules, m)
				}
			}
			for _, na := range newAdorned {
				work = append(work, adorned{pred: na.pred, ad: na.ad})
			}
		}
	}

	dedupeSeeds(res)
	return res, nil
}

// ErrNoBindings reports that the query carries no constant bindings, so
// magic-sets rewriting cannot restrict anything.
var ErrNoBindings = fmt.Errorf("magic: query has no constant bindings; rewrite is the identity")

type newAdornment struct {
	pred string
	ad   string
}

// rewriteRule adorns one rule under the head adornment headAd and emits
// the modified rule plus one magic rule per derived body atom with at
// least one bound argument.
func rewriteRule(c dlog.Clause, headAd string, isDerived func(string) bool) (dlog.Clause, []dlog.Clause, []newAdornment, error) {
	if len(headAd) != c.Head.Arity() {
		return dlog.Clause{}, nil, nil, fmt.Errorf("magic: adornment %s does not match arity of %s", headAd, c.Head.String())
	}
	bound := make(map[string]bool)
	var headBoundArgs []dlog.Term
	for i, t := range c.Head.Args {
		if headAd[i] == 'b' {
			headBoundArgs = append(headBoundArgs, t)
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}

	adornedHead := dlog.Atom{Pred: AdornedName(c.Head.Pred, headAd), Args: c.Head.Args}
	magicHeadName := MagicName(adornedHead.Pred)

	var newBody []dlog.Atom
	var magicRules []dlog.Clause
	var discovered []newAdornment

	// The magic guard of the head (dropped when the head has no bound
	// positions).
	var guard []dlog.Atom
	if len(headBoundArgs) > 0 {
		guard = []dlog.Atom{{Pred: magicHeadName, Args: headBoundArgs}}
	}

	// prefix holds the adorned body atoms processed so far (for magic
	// rule bodies, per left-to-right SIP).
	var prefix []dlog.Atom
	for _, a := range c.Body {
		if !isDerived(a.Pred) {
			// Extensional atom: pass through; all its variables become
			// bound after evaluation.
			newBody = append(newBody, a)
			prefix = append(prefix, a)
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Var] = true
				}
			}
			continue
		}
		// Derived atom: compute its adornment from current bindings.
		var ad strings.Builder
		var boundArgs []dlog.Term
		for _, t := range a.Args {
			if !t.IsVar() || bound[t.Var] {
				ad.WriteByte('b')
				boundArgs = append(boundArgs, t)
			} else {
				ad.WriteByte('f')
			}
		}
		adName := AdornedName(a.Pred, ad.String())
		discovered = append(discovered, newAdornment{pred: a.Pred, ad: ad.String()})
		if len(boundArgs) > 0 {
			magicBody := append(append([]dlog.Atom(nil), guard...), prefix...)
			magicRules = append(magicRules, dlog.Clause{
				Head: dlog.Atom{Pred: MagicName(adName), Args: boundArgs},
				Body: magicBody,
			})
		}
		adAtom := dlog.Atom{Pred: adName, Args: a.Args}
		newBody = append(newBody, adAtom)
		prefix = append(prefix, adAtom)
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}

	modified := dlog.Clause{
		Head: adornedHead,
		Body: append(append([]dlog.Atom(nil), guard...), newBody...),
	}
	return modified, magicRules, discovered, nil
}

func dedupeSeeds(res *Result) {
	seen := make(map[string]bool)
	var out []dlog.Atom
	for _, s := range res.Seeds {
		k := s.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	res.Seeds = out
}
