// Package matview maintains memoized query answers as materialized
// views. A view owns the derived-relation temp tables an evaluation
// left behind (rtlib's accumulators, transferred via Result.Detach) and
// refreshes them in place when a commit changes base tables the
// compiled program reads: insertions propagate through the program's
// semi-naive delta rules, retractions are handled with
// Delete-and-Rederive (over-delete along the delta rules, then
// re-derive the survivors). The plan cache promotes result entries into
// views and calls Maintain from the single-writer commit path, so a hot
// query's memo survives writes instead of forcing a full re-derivation
// stampede.
//
// The language is pure function-free Horn clauses, so the immediate-
// consequence operator is monotone and both directions are sound; the
// caller falls back to full re-derivation for anything coarser than a
// fact delta (rule changes, relation creation, out-of-band mutation) or
// when the delta is large enough that re-deriving is cheaper (see
// AutoIncremental).
package matview

import (
	"fmt"
	"sync/atomic"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

// EventKind classifies a commit for cache invalidation.
type EventKind int

// Invalidation event kinds.
const (
	// EventFlush drops every cached plan, memo and view (out-of-band
	// mutation: generations did not move, nothing can be trusted).
	EventFlush EventKind = iota
	// EventCommit is a fact-level commit whose exact per-table deltas
	// are in Event.Deltas — the only kind views can be maintained
	// through.
	EventCommit
	// EventRuleGen is a rule-base change (Load with rules, Update,
	// relation creation): compiled programs are stale, memos re-derive.
	EventRuleGen
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventFlush:
		return "flush"
	case EventCommit:
		return "commit"
	case EventRuleGen:
		return "rulegen"
	}
	return fmt.Sprintf("eventkind(%d)", int(k))
}

// TableDelta is one base table's exact fact delta within a commit.
type TableDelta struct {
	// Table is the extensional table name (codegen.BaseTable form).
	Table string
	// Inserted and Deleted are the tuples the commit added/removed.
	Inserted []rel.Tuple
	Deleted  []rel.Tuple
}

// Event is a typed invalidation event: what one commit did, at the
// granularity the plan cache needs to decide between maintaining a view
// and dropping its memo.
type Event struct {
	Kind   EventKind
	Deltas []TableDelta
}

// Size returns the total number of delta tuples across tables.
func (e *Event) Size() int {
	n := 0
	for _, d := range e.Deltas {
		n += len(d.Inserted) + len(d.Deleted)
	}
	return n
}

// RelevantSize returns the number of delta tuples landing in the given
// tables (the dependency set of one view's program).
func (e *Event) RelevantSize(deps []string) int {
	n := 0
	for _, d := range e.Deltas {
		for _, t := range deps {
			if d.Table == t {
				n += len(d.Inserted) + len(d.Deleted)
				break
			}
		}
	}
	return n
}

// AutoIncremental is the Auto-policy cost heuristic: maintain
// incrementally while the relevant base delta stays below a quarter of
// the memoized answer (with a floor of 16 tuples so small views still
// take the incremental path for single-fact commits). Past that
// crossover the semi-naive delta rounds approach the cost of a fresh
// evaluation and re-deriving wins.
func AutoIncremental(deltaTuples, viewRows int) bool {
	limit := viewRows / 4
	if limit < 16 {
		limit = 16
	}
	return deltaTuples <= limit
}

// viewSeq distinguishes concurrent maintenance runs' temp table names
// within one process.
var viewSeq uint64

// View is one maintained materialized view: the compiled program plus
// ownership of the derived-relation temp tables its evaluation
// produced. Maintenance (and Drop) run only on the single-writer commit
// path; the telemetry fields are atomics because Views listings read
// them concurrently with a maintenance run.
type View struct {
	prog *codegen.Program
	// tables maps derived predicates to their accumulator temp tables;
	// base predicates fall through to their extensional tables.
	tables  map[string]string
	created []string

	maintains   atomic.Int64
	lastDelta   atomic.Int64
	lastNs      atomic.Int64
	lastTrace   atomic.Pointer[obs.Trace]
	lastApplied atomic.Int64 // over-deletions + promoted delta tuples
}

// New wraps a detached evaluation (rtlib Result.Detach) as a view.
func New(prog *codegen.Program, tables map[string]string, created []string) *View {
	return &View{prog: prog, tables: tables, created: created}
}

// Maintains returns how many commits this view absorbed incrementally.
func (v *View) Maintains() int64 { return v.maintains.Load() }

// LastDeltaTuples returns the derived-delta size of the last
// maintenance run (over-deleted plus newly derived tuples).
func (v *View) LastDeltaTuples() int64 { return v.lastDelta.Load() }

// LastDuration returns the wall-clock cost of the last maintenance run.
func (v *View) LastDuration() time.Duration { return time.Duration(v.lastNs.Load()) }

// LastTrace returns the span tree recorded by the last maintenance run
// (delta sizes and phase timings), or nil before the first one.
func (v *View) LastTrace() *obs.Trace { return v.lastTrace.Load() }

// tableOf resolves a predicate to the view's accumulator or the live
// extensional table.
func (v *View) tableOf(pred string) string {
	if t, ok := v.tables[pred]; ok {
		return t
	}
	return codegen.BaseTable(pred)
}

// derived reports whether the predicate has a view-owned relation.
func (v *View) derived(pred string) bool {
	_, ok := v.tables[pred]
	return ok
}

// Drop releases the view's temp tables. Safe to call once, from the
// single writer; the view must not be maintained afterwards.
func (v *View) Drop(d *db.DB) error {
	var firstErr error
	for _, t := range v.created {
		if err := d.Exec("DROP TABLE " + t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	v.created = nil
	return firstErr
}

// Counters aggregates maintenance telemetry across a plan cache's
// views (cumulative; the live-view gauge is derived from the cache).
type Counters struct {
	Maintained  atomic.Int64
	Rederives   atomic.Int64
	DeltaTuples atomic.Int64
	MaintainNs  atomic.Int64
	Errors      atomic.Int64
}

// Stats is a point-in-time snapshot of Counters plus the live-view
// population.
type Stats struct {
	// Live is the number of maintained views currently in the cache.
	Live int64
	// Maintained counts commits absorbed incrementally (per view).
	Maintained int64
	// Rederives counts stale views dropped for full re-derivation
	// (policy Rederive, Auto past the crossover, or coarse events).
	Rederives int64
	// DeltaTuples is the cumulative derived-delta volume maintained.
	DeltaTuples int64
	// MaintainTime is the cumulative wall-clock maintenance cost.
	MaintainTime time.Duration
	// Errors counts maintenance or teardown failures (each drops the
	// affected view).
	Errors int64
}

// Snapshot reads the counters.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Maintained:   c.Maintained.Load(),
		Rederives:    c.Rederives.Load(),
		DeltaTuples:  c.DeltaTuples.Load(),
		MaintainTime: time.Duration(c.MaintainNs.Load()),
		Errors:       c.Errors.Load(),
	}
}
