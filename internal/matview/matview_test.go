package matview

import (
	"testing"

	"dkbms/internal/rel"
)

func TestAutoIncremental(t *testing.T) {
	cases := []struct {
		delta, rows int
		want        bool
	}{
		{1, 0, true},     // empty view, tiny delta: floor applies
		{16, 10, true},   // at the floor
		{17, 10, false},  // past the floor on a small view
		{100, 1000, true} /* 100 <= 250 */, {251, 1000, false},
		{250, 1000, true}, // exactly at rows/4
	}
	for _, c := range cases {
		if got := AutoIncremental(c.delta, c.rows); got != c.want {
			t.Errorf("AutoIncremental(%d, %d) = %v, want %v", c.delta, c.rows, got, c.want)
		}
	}
}

func TestEventSizes(t *testing.T) {
	ev := &Event{Kind: EventCommit, Deltas: []TableDelta{
		{Table: "edb_parent", Inserted: []rel.Tuple{{rel.NewString("a"), rel.NewString("b")}}},
		{Table: "edb_likes", Inserted: []rel.Tuple{{rel.NewString("x"), rel.NewString("y")}},
			Deleted: []rel.Tuple{{rel.NewString("p"), rel.NewString("q")}}},
	}}
	if got := ev.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	if got := ev.RelevantSize([]string{"edb_parent"}); got != 1 {
		t.Fatalf("RelevantSize(parent) = %d, want 1", got)
	}
	if got := ev.RelevantSize([]string{"edb_likes", "edb_parent"}); got != 3 {
		t.Fatalf("RelevantSize(both) = %d, want 3", got)
	}
	if got := ev.RelevantSize(nil); got != 0 {
		t.Fatalf("RelevantSize(nil) = %d, want 0", got)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventFlush: "flush", EventCommit: "commit", EventRuleGen: "rulegen",
		EventKind(9): "eventkind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.Maintained.Add(3)
	c.Rederives.Add(2)
	c.DeltaTuples.Add(40)
	c.MaintainNs.Add(1500)
	c.Errors.Add(1)
	st := c.Snapshot()
	if st.Maintained != 3 || st.Rederives != 2 || st.DeltaTuples != 40 ||
		st.MaintainTime != 1500 || st.Errors != 1 {
		t.Fatalf("snapshot %+v", st)
	}
}
