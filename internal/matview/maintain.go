package matview

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/storage"
)

// Maintain refreshes the view through one commit's fact deltas and
// returns the refreshed answer rows (a fresh slice; the previous
// memoized rows are never mutated). It must run on the single-writer
// commit path, after the commit published: base tables are then in
// their post-commit state, which is exactly what the delta rounds join
// against.
//
// Deletions go first (Delete-and-Rederive against the pre-state, which
// is reconstructed as post-state ∪ deleted), then insertions propagate
// semi-naive. On error the view is inconsistent and the caller must
// drop it.
func (v *View) Maintain(d *db.DB, ev *Event) ([]rel.Tuple, error) {
	start := time.Now()
	tr := obs.NewTrace("maintain")

	// Restrict the commit footprint to tables the program reads.
	reads := make(map[string]bool, len(v.prog.BasePreds))
	for _, p := range v.prog.BasePreds {
		reads[codegen.BaseTable(p)] = true
	}
	ins := make(map[string][]rel.Tuple)
	del := make(map[string][]rel.Tuple)
	for _, td := range ev.Deltas {
		if !reads[td.Table] {
			continue
		}
		if len(td.Inserted) > 0 {
			ins[td.Table] = append(ins[td.Table], td.Inserted...)
		}
		if len(td.Deleted) > 0 {
			del[td.Table] = append(del[td.Table], td.Deleted...)
		}
	}

	m := &maint{d: d, v: v, prefix: fmt.Sprintf("mv%d_", atomic.AddUint64(&viewSeq, 1))}
	defer m.dropAll()
	if len(del) > 0 {
		if err := m.dred(del, tr.Root()); err != nil {
			return nil, err
		}
	}
	if len(ins) > 0 {
		if err := m.propagate(ins, tr.Root()); err != nil {
			return nil, err
		}
	}

	rows, err := d.Query("SELECT * FROM " + v.tableOf(v.prog.QueryPred))
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	tr.Root().SetInt("delta_tuples", int64(m.deltaTuples))
	tr.Root().SetInt("maintain_us", elapsed.Microseconds())
	tr.Finish()
	v.maintains.Add(1)
	v.lastDelta.Store(int64(m.deltaTuples))
	v.lastNs.Store(int64(elapsed))
	v.lastTrace.Store(tr)
	return rows.Tuples, nil
}

// maint is the working state of one maintenance run: the scratch temp
// tables it creates (delta tables, pre-state copies) are dropped when
// the run ends, leaving only the view's accumulators.
type maint struct {
	d       *db.DB
	v       *View
	prefix  string
	created []string
	seq     int
	// deltaTuples counts derived-relation changes applied: tuples
	// over-deleted plus delta tuples promoted into accumulators.
	deltaTuples int
}

func (m *maint) createTable(hint string, schema *rel.Schema) (string, error) {
	if schema == nil {
		return "", fmt.Errorf("matview: no schema for scratch table %s", hint)
	}
	m.seq++
	name := fmt.Sprintf("%s%s%d", m.prefix, hint, m.seq)
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TEMP TABLE %s (", name)
	for i := 0; i < schema.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		c := schema.Col(i)
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type.String())
	}
	b.WriteByte(')')
	if err := m.d.Exec(b.String()); err != nil {
		return "", err
	}
	m.created = append(m.created, name)
	return name, nil
}

func (m *maint) dropAll() {
	for _, t := range m.created {
		// Best-effort: a failed scratch drop leaks a temp table until
		// the database closes, nothing worse.
		m.d.Exec("DROP TABLE " + t) //nolint:errcheck
	}
	m.created = nil
}

// rules iterates every compiled rule of the program (exit and recursive
// across all evaluation-order nodes). Delta propagation differentiates
// globally, not per clique: an exit rule of a later node reads derived
// relations of earlier nodes, so it too must fire on their deltas.
func (m *maint) rules(f func(r *codegen.RuleSQL) error) error {
	for ni := range m.v.prog.Nodes {
		n := &m.v.prog.Nodes[ni]
		for i := range n.ExitRules {
			if err := f(&n.ExitRules[i]); err != nil {
				return err
			}
		}
		for i := range n.RecursiveRules {
			if err := f(&n.RecursiveRules[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// tableSchema returns the schema of a live table (base-table deltas and
// pre-state copies reuse the extensional schema).
func (m *maint) tableSchema(table string) (*rel.Schema, error) {
	t := m.d.Table(table)
	if t == nil {
		return nil, fmt.Errorf("matview: base table %s vanished", table)
	}
	return t.Schema, nil
}

// materialize creates a scratch table holding the given tuples.
func (m *maint) materialize(hint, table string, tuples []rel.Tuple) (string, error) {
	schema, err := m.tableSchema(table)
	if err != nil {
		return "", err
	}
	name, err := m.createTable(hint, schema)
	if err != nil {
		return "", err
	}
	return name, m.d.InsertTuples(name, tuples)
}

// --- Insert propagation (semi-naive delta rules) ---

// propagate applies base-table insertions: round 1 evaluates every rule
// once per touched-base FROM position with the delta at that position
// and full post-state elsewhere; later rounds differentiate derived
// positions exactly like rtlib's semi-naive loop, with the EXCEPT chain
// deduplicating across occurrences. Monotonicity makes this sound and
// complete: lfp(post) = lfp(pre ∪ Δ) and every new derivation uses at
// least one new tuple in some position.
func (m *maint) propagate(ins map[string][]rel.Tuple, root *obs.Span) error {
	sp := root.Start("propagate")
	defer sp.End()
	base := 0
	for _, tus := range ins {
		base += len(tus)
	}
	sp.SetInt("inserted_base", int64(base))

	dbase := make(map[string]string, len(ins))
	for table, tuples := range ins {
		name, err := m.materialize("ins_", table, tuples)
		if err != nil {
			return err
		}
		dbase[table] = name
	}
	prev, next, err := m.deltaPair()
	if err != nil {
		return err
	}

	// Round 1: fire every rule at each touched-base position.
	err = m.rules(func(r *codegen.RuleSQL) error {
		for fi, f := range r.From {
			if m.v.derived(f.Pred) {
				continue
			}
			dt, ok := dbase[codegen.BaseTable(f.Pred)]
			if !ok {
				continue
			}
			if err := m.fire(r, fi, dt, m.v.tableOf, prev); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Later rounds: promote deltas into accumulators, differentiate
	// derived positions until the delta runs dry.
	rounds := 0
	for {
		counts, total, err := m.deltaCounts(prev)
		if err != nil {
			return err
		}
		if total == 0 {
			break
		}
		rounds++
		m.deltaTuples += total
		for p, t := range prev {
			if counts[p] == 0 {
				continue
			}
			if err := m.d.Exec(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", m.v.tableOf(p), t)); err != nil {
				return err
			}
		}
		err = m.rules(func(r *codegen.RuleSQL) error {
			for fi, f := range r.From {
				if !m.v.derived(f.Pred) || counts[f.Pred] == 0 {
					continue
				}
				if err := m.fire(r, fi, prev[f.Pred], m.v.tableOf, next); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := m.truncate(prev); err != nil {
			return err
		}
		prev, next = next, prev
	}
	sp.SetInt("rounds", int64(rounds))
	sp.SetInt("delta_tuples", int64(m.deltaTuples))
	return nil
}

// fire evaluates one rule with the delta table at FROM position fi and
// tableOf everywhere else, inserting genuinely new head tuples (not in
// the accumulator, not already in this round's delta) into dst[head].
func (m *maint) fire(r *codegen.RuleSQL, fi int, deltaTable string, tableOf func(string) string, dst map[string]string) error {
	tables := make([]string, len(r.From))
	for fj, f := range r.From {
		if fj == fi {
			tables[fj] = deltaTable
		} else {
			tables[fj] = tableOf(f.Pred)
		}
	}
	stmt := fmt.Sprintf("INSERT INTO %s %s EXCEPT SELECT * FROM %s EXCEPT SELECT * FROM %s",
		dst[r.Head], r.SQLWithTables(tables), m.v.tableOf(r.Head), dst[r.Head])
	if err := m.d.Exec(stmt); err != nil {
		return fmt.Errorf("matview: delta rule %q: %w", r.Source, err)
	}
	return nil
}

// deltaPair creates two empty per-predicate delta table sets (current
// and next round), reused across rounds by truncation.
func (m *maint) deltaPair() (prev, next map[string]string, err error) {
	prev = make(map[string]string, len(m.v.tables))
	next = make(map[string]string, len(m.v.tables))
	for p := range m.v.tables {
		if prev[p], err = m.createTable("d_", m.v.prog.Schemas[p]); err != nil {
			return nil, nil, err
		}
		if next[p], err = m.createTable("d_", m.v.prog.Schemas[p]); err != nil {
			return nil, nil, err
		}
	}
	return prev, next, nil
}

func (m *maint) deltaCounts(delta map[string]string) (map[string]int, int, error) {
	counts := make(map[string]int, len(delta))
	total := 0
	for p, t := range delta {
		n, err := m.d.QueryCount("SELECT COUNT(*) FROM " + t)
		if err != nil {
			return nil, 0, err
		}
		counts[p] = int(n)
		total += int(n)
	}
	return counts, total, nil
}

func (m *maint) truncate(delta map[string]string) error {
	for _, t := range delta {
		if err := m.d.Exec("DELETE FROM " + t); err != nil {
			return err
		}
	}
	return nil
}

// --- Delete-and-Rederive ---

// dred applies base-table deletions with the DRed algorithm:
//
//  1. reconstruct pre-state for each deleted-from base table
//     (post ∪ deleted — the accumulators are still pre-state);
//  2. over-delete: propagate deletion candidates through the delta
//     rules against the pre-state, to a fixpoint;
//  3. remove the candidates (except magic seeds, which are axioms of
//     the program) from the accumulators;
//  4. re-derive survivors: one-step rule evaluation over the now
//     post-state relations, re-inserting any candidate that is still
//     derivable, to a fixpoint.
func (m *maint) dred(del map[string][]rel.Tuple, root *obs.Span) error {
	sp := root.Start("dred")
	defer sp.End()
	base := 0
	for _, tus := range del {
		base += len(tus)
	}
	sp.SetInt("deleted_base", int64(base))

	// Pre-state copies and delta tables for the deleted facts.
	dbase := make(map[string]string, len(del))
	pre := make(map[string]string, len(del))
	for table, tuples := range del {
		dt, err := m.materialize("del_", table, tuples)
		if err != nil {
			return err
		}
		dbase[table] = dt
		pt, err := m.materialize("pre_", table, nil)
		if err != nil {
			return err
		}
		if err := m.d.Exec(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", pt, table)); err != nil {
			return err
		}
		if err := m.d.InsertTuples(pt, tuples); err != nil {
			return err
		}
		pre[table] = pt
	}
	preOf := func(pred string) string {
		if t, ok := m.v.tables[pred]; ok {
			return t // accumulators are still pre-state here
		}
		bt := codegen.BaseTable(pred)
		if p, ok := pre[bt]; ok {
			return p
		}
		return bt
	}

	// Accumulated deletion candidates per derived predicate, plus the
	// per-round pair.
	acc := make(map[string]string, len(m.v.tables))
	for p := range m.v.tables {
		t, err := m.createTable("dd_", m.v.prog.Schemas[p])
		if err != nil {
			return err
		}
		acc[p] = t
	}
	prev, next, err := m.deltaPair()
	if err != nil {
		return err
	}
	// fireDel is fire against the pre-state with the candidate chain's
	// dedup (EXCEPT accumulated candidates EXCEPT this round).
	fireDel := func(r *codegen.RuleSQL, fi int, deltaTable string, dst map[string]string) error {
		tables := make([]string, len(r.From))
		for fj, f := range r.From {
			if fj == fi {
				tables[fj] = deltaTable
			} else {
				tables[fj] = preOf(f.Pred)
			}
		}
		stmt := fmt.Sprintf("INSERT INTO %s %s EXCEPT SELECT * FROM %s EXCEPT SELECT * FROM %s",
			dst[r.Head], r.SQLWithTables(tables), acc[r.Head], dst[r.Head])
		if err := m.d.Exec(stmt); err != nil {
			return fmt.Errorf("matview: over-delete rule %q: %w", r.Source, err)
		}
		return nil
	}

	// Round 1: candidates from the deleted base facts.
	err = m.rules(func(r *codegen.RuleSQL) error {
		for fi, f := range r.From {
			if m.v.derived(f.Pred) {
				continue
			}
			dt, ok := dbase[codegen.BaseTable(f.Pred)]
			if !ok {
				continue
			}
			if err := fireDel(r, fi, dt, prev); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Later rounds: candidates breed candidates through derived
	// positions, still against the pre-state.
	for {
		counts, total, err := m.deltaCounts(prev)
		if err != nil {
			return err
		}
		if total == 0 {
			break
		}
		for p, t := range prev {
			if counts[p] == 0 {
				continue
			}
			if err := m.d.Exec(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", acc[p], t)); err != nil {
				return err
			}
		}
		err = m.rules(func(r *codegen.RuleSQL) error {
			for fi, f := range r.From {
				if !m.v.derived(f.Pred) || counts[f.Pred] == 0 {
					continue
				}
				if err := fireDel(r, fi, prev[f.Pred], next); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := m.truncate(prev); err != nil {
			return err
		}
		prev, next = next, prev
	}

	// Apply: delete the candidates from the accumulators, protecting
	// seeds (they are facts of the program, never derived).
	seeds := make(map[string]map[string]bool, len(m.v.prog.Seeds))
	for _, s := range m.v.prog.Seeds {
		if seeds[s.Pred] == nil {
			seeds[s.Pred] = make(map[string]bool)
		}
		seeds[s.Pred][s.Tuple.Key()] = true
	}
	candidates := make(map[string]map[string]rel.Tuple, len(acc))
	overDeleted := 0
	for p, t := range acc {
		rows, err := m.d.Query("SELECT * FROM " + t)
		if err != nil {
			return err
		}
		if len(rows.Tuples) == 0 {
			continue
		}
		victims := make(map[string]rel.Tuple, len(rows.Tuples))
		for _, tu := range rows.Tuples {
			k := tu.Key()
			if seeds[p][k] {
				continue
			}
			victims[k] = tu
		}
		n, err := deleteMatching(m.d, m.v.tableOf(p), victims)
		if err != nil {
			return err
		}
		overDeleted += n
		if n > 0 {
			candidates[p] = victims
		}
	}
	m.deltaTuples += overDeleted
	sp.SetInt("overdeleted", int64(overDeleted))

	// Re-derive survivors: one-step consequences over the post-state,
	// intersected with the candidate sets (Go-side — the SQL dialect
	// has no subqueries), to a fixpoint.
	rederived := 0
	rounds := 0
	for changed := true; changed; {
		changed = false
		rounds++
		err = m.rules(func(r *codegen.RuleSQL) error {
			cand := candidates[r.Head]
			if len(cand) == 0 {
				return nil
			}
			rows, err := m.d.Query(r.SQL(m.v.tableOf))
			if err != nil {
				return fmt.Errorf("matview: re-derive rule %q: %w", r.Source, err)
			}
			var back []rel.Tuple
			for _, tu := range rows.Tuples {
				k := tu.Key()
				if _, ok := cand[k]; !ok {
					continue
				}
				back = append(back, tu)
				delete(cand, k)
			}
			if len(back) == 0 {
				return nil
			}
			if err := m.d.InsertTuples(m.v.tableOf(r.Head), back); err != nil {
				return err
			}
			rederived += len(back)
			changed = true
			return nil
		})
		if err != nil {
			return err
		}
	}
	m.deltaTuples += rederived
	sp.SetInt("rederived", int64(rederived))
	sp.SetInt("rounds", int64(rounds))
	return nil
}

// deleteMatching removes the rows whose keys appear in victims from a
// table, in one scan (the dialect's DELETE takes only literal
// conjunctions, so per-tuple statements would rescan per victim). It
// returns how many rows actually left the table — candidates a magic
// program never materialized simply do not match.
func deleteMatching(d *db.DB, table string, victims map[string]rel.Tuple) (int, error) {
	t := d.Table(table)
	if t == nil {
		return 0, fmt.Errorf("matview: view relation %s vanished", table)
	}
	type victim struct {
		rid storage.RID
		tu  rel.Tuple
	}
	var hit []victim
	err := t.Scan(func(rid storage.RID, tu rel.Tuple) error {
		if _, ok := victims[tu.Key()]; ok {
			hit = append(hit, victim{rid, tu})
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, vx := range hit {
		if err := t.DeleteRID(vx.rid, vx.tu); err != nil {
			return len(hit), err
		}
	}
	return len(hit), nil
}
