// Package gofanout flags unbounded goroutine fan-out: a `go` statement
// inside a for/range loop with nothing in the loop limiting how many
// launches can be in flight at once. One query spawning a goroutine per
// rule is harmless until 32 sessions each do it; the scheduler work in
// this module exists precisely because evaluation concurrency must be
// bounded by a pool, not by input size.
//
// A launch counts as bounded when the innermost enclosing loop acquires
// a slot before the `go` statement:
//
//   - a channel send (`sem <- struct{}{}` on a buffered channel is the
//     canonical acquire-before-launch idiom),
//   - a channel receive (`<-tokens` draining a pre-filled token bucket),
//   - a call to a method named Acquire (semaphore objects).
//
// Launches whose count is intrinsically fixed (one worker per pool
// slot, one drainer per fixed shard) are waived with a
// `//dkblint:bounded` comment on the `go` statement's line or the line
// above it.
package gofanout

import (
	"go/ast"
	"go/token"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the gofanout pass.
var Analyzer = &lintkit.Analyzer{
	Name: "gofanout",
	Doc:  "no unbounded `go` inside loops: acquire a semaphore slot first, submit to a pool, or waive with //dkblint:bounded",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Pkg.Files {
		waived := lintkit.WaivedLines(pass.Fset, file, "bounded")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, waived)
		}
	}
	return nil
}

// loopBody returns the body of a for or range statement, or nil.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch s := n.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fn *ast.FuncDecl, waived map[int]string) {
	// loops is the stack of enclosing loop bodies at the current walk
	// position; function literals push a frame boundary (a goroutine
	// launched per iteration of a loop *outside* the literal is the
	// literal caller's problem, and `go` inside a literal inside a loop
	// in the same function is still per-iteration, so only the literal
	// boundary resets the stack).
	type frame struct{ loops []*ast.BlockStmt }
	stack := []*frame{{}}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			stack = append(stack, &frame{})
			walk(s.Body)
			stack = stack[:len(stack)-1]
			return
		case *ast.GoStmt:
			cur := stack[len(stack)-1]
			if len(cur.loops) > 0 {
				inner := cur.loops[len(cur.loops)-1]
				line := pass.Fset.Position(s.Pos()).Line
				if _, ok := waived[line]; !ok && !acquiresBefore(inner, s) {
					pass.Reportf(s.Pos(), "goroutine launched per loop iteration with no concurrency bound (acquire a semaphore slot before `go`, submit to a worker pool, or waive with //dkblint:bounded)")
				}
			}
			// The launched call's arguments and body still deserve a
			// look (a loop inside the goroutine is its own frame only
			// when it is a FuncLit, which the case above handles).
			walk(s.Call)
			return
		}
		if body := loopBody(n); body != nil {
			cur := stack[len(stack)-1]
			cur.loops = append(cur.loops, body)
			// Walk the loop header too (range expression, init/cond/post).
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				walk(m)
				return false
			})
			cur.loops = cur.loops[:len(cur.loops)-1]
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m)
			return false
		})
	}
	walk(fn.Body)
}

// acquiresBefore reports whether the loop body performs a slot acquire
// (channel send, channel receive, or an Acquire call) at a position
// before the go statement, outside the go statement itself.
func acquiresBefore(body *ast.BlockStmt, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n.Pos() >= g.Pos() && n != body {
			return false
		}
		switch e := n.(type) {
		case *ast.GoStmt:
			if e == g {
				return false
			}
		case *ast.SendStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Acquire" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
