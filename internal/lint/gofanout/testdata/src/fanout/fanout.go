// Package fanout exercises the gofanout analyzer.
package fanout

import "sync"

func work(int) {}

// unbounded: one goroutine per element, nothing limiting flight.
func unboundedRange(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() { // want "no concurrency bound"
			defer wg.Done()
			work(x)
		}()
	}
	wg.Wait()
}

func unboundedFor(n int) {
	for i := 0; i < n; i++ {
		go work(i) // want "no concurrency bound"
	}
}

// bounded: semaphore slot acquired before each launch.
func boundedSend(xs []int) {
	sem := make(chan struct{}, 4)
	for _, x := range xs {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			work(x)
		}()
	}
}

// bounded: token drained from a pre-filled bucket.
func boundedReceive(xs []int, tokens chan int) {
	for _, x := range xs {
		<-tokens
		go work(x)
	}
}

type sema struct{}

func (sema) Acquire()    {}
func (sema) TryAcquire() {}

// bounded: semaphore object.
func boundedAcquire(xs []int, s sema) {
	for range xs {
		s.Acquire()
		go work(0)
	}
}

// acquire in the outer loop does not bound the inner launches.
func outerAcquireOnly(xs [][]int, s sema) {
	for _, row := range xs {
		s.Acquire()
		for _, x := range row {
			go work(x) // want "no concurrency bound"
		}
	}
}

// acquire inside the launched goroutine itself is too late.
func acquireInsideGo(xs []int, s sema) {
	for range xs {
		go func() { // want "no concurrency bound"
			s.Acquire()
			work(0)
		}()
	}
}

// waived: intrinsically fixed count (one worker per slot).
func fixedWorkers(n int) {
	for i := 0; i < n; i++ {
		//dkblint:bounded
		go work(i)
	}
}

func fixedWorkersInline(n int) {
	for i := 0; i < n; i++ {
		go work(i) //dkblint:bounded
	}
}

// not in a loop: fine.
func single() {
	go work(0)
}

// a loop outside a function literal does not taint launches inside it:
// the literal runs once per call, not per iteration here.
func literalBoundary(xs []int) func() {
	for range xs {
		work(0)
	}
	return func() {
		go work(1)
	}
}
