package gofanout_test

import (
	"testing"

	"dkbms/internal/lint/gofanout"
	"dkbms/internal/lint/lintkit"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, gofanout.Analyzer, "testdata/src")
}
