// Clean fixtures: consistent order, release-before-I/O, cond.Wait
// (which releases the mutex while parked) and per-goroutine work.
package clean

import (
	"os"
	"sync"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

// Consistent A → B order everywhere: an edge, no cycle.
func One() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func Two() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

type S struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
	f     *os.File
}

// ReleaseFirst drops the lock before the write.
func (s *S) ReleaseFirst(buf []byte) {
	s.mu.Lock()
	s.ready = false
	s.mu.Unlock()
	s.f.Write(buf)
}

// CondWait parks under the lock — sync.Cond.Wait releases the mutex, so
// it is not "blocking while held".
func (s *S) CondWait() {
	s.mu.Lock()
	for !s.ready {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Spawn launches the write on another goroutine: not under this hold.
func (s *S) Spawn(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.f.Write(buf) }()
}
