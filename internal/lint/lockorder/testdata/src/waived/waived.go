// Waiver fixtures: //dkblint:locksafe suppresses findings anchored at
// the waived acquisition, and only there — the edge stays in the graph,
// so the cycle still surfaces at its unwaived witness.
package waived

import (
	"os"
	"sync"
)

type S struct {
	mu sync.Mutex
	f  *os.File
}

// Commit's lock is a long-lived serialization lock by design.
func (s *S) Commit(b []byte) {
	s.mu.Lock() //dkblint:locksafe the commit lock serializes whole write-backs by design
	defer s.mu.Unlock()
	s.f.Write(b)
}

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

// The A→B witness is waived; the B→A witness is not, so exactly one
// side of the cycle is reported.
func AB() {
	//dkblint:locksafe init-order only; BA is the audited path
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA() {
	b.mu.Lock() // want "lock-order cycle: waived\\.A\\.mu acquired while waived\\.B\\.mu is held"
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
