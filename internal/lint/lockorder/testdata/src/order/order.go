// Positive fixtures: lock-order cycles, direct and transitive.
package order

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

// AB and BA acquire the two classes in opposite orders: a cycle. Each
// in-cycle edge is reported at the acquisition whose held region closes
// it.
func AB() {
	a.mu.Lock() // want "lock-order cycle: order\\.B\\.mu acquired while order\\.A\\.mu is held; cycle order\\.A\\.mu → order\\.B\\.mu → order\\.A\\.mu"
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA() {
	b.mu.Lock() // want "lock-order cycle: order\\.A\\.mu acquired while order\\.B\\.mu is held"
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// R self-nests: a one-node cycle. Lock classes collapse instances, so
// this is reported even though a second *R instance would be distinct —
// a documented over-approximation.
type R struct{ mu sync.Mutex }

var r1, r2 R

func Nest() {
	r1.mu.Lock() // want "lock-order cycle: order\\.R\\.mu acquired while order\\.R\\.mu is held"
	r2.mu.Lock()
	r2.mu.Unlock()
	r1.mu.Unlock()
}
