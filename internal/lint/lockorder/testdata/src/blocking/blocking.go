// Blocking fixtures: I/O, channel operations and scheduler joins
// reached while a lock is held, directly and through a call chain.
package blocking

import (
	"os"
	"sync"

	"sched"
)

type S struct {
	mu sync.Mutex
	f  *os.File
}

func (s *S) Write(b []byte) {
	s.mu.Lock()
	s.f.Write(b) // want "blocking\\.S\\.mu held across file I/O \\(os\\.File\\.Write\\)"
	s.mu.Unlock()
}

func (s *S) Send(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want "blocking\\.S\\.mu held across a channel send"
	s.mu.Unlock()
}

func (s *S) Recv(ch chan int) int {
	s.mu.Lock()
	v := <-ch // want "blocking\\.S\\.mu held across a channel receive"
	s.mu.Unlock()
	return v
}

func sync3(f *os.File) { f.Sync() }

// Flush reaches file I/O two frames down; the diagnostic names the
// chain.
func (s *S) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sync3(s.f) // want "blocking\\.S\\.mu held across file I/O \\(os\\.File\\.Sync\\) \\(via blocking\\.sync3\\)"
}

func (s *S) Join(g *sched.Group) {
	s.mu.Lock()
	g.Wait() // want "blocking\\.S\\.mu held across sched\\.Group\\.Wait"
	s.mu.Unlock()
}
