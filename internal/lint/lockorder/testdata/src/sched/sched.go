// A stand-in for the module's internal/sched package: lockorder
// matches module packages by name, so fixtures can exercise the
// sched.Group.Wait blocking rule without importing the real engine.
package sched

type Group struct{ n int }

func (g *Group) Wait() {}
