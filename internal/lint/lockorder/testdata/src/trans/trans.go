// Transitive fixtures: the inverted acquisition happens in a callee
// two frames down, and the diagnostic names the call chain.
package trans

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

func lockB() {
	b.mu.Lock()
	b.mu.Unlock()
}

func viaHelper() { lockB() }

func Outer() {
	a.mu.Lock() // want "lock-order cycle: trans\\.B\\.mu acquired via trans\\.viaHelper → trans\\.lockB while trans\\.A\\.mu is held"
	viaHelper()
	a.mu.Unlock()
}

func Inner() {
	b.mu.Lock() // want "lock-order cycle: trans\\.A\\.mu acquired while trans\\.B\\.mu is held"
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
