// Package lockorder is the suite's interprocedural deadlock analyzer.
// It tracks Lock/RLock acquisitions of every struct-field and
// package-level sync.Mutex/RWMutex through the module call graph and
// enforces two rules:
//
//  1. The global lock-acquisition order must be acyclic. Every "lock B
//     acquired (directly or through any call chain) while lock A is
//     held" contributes an A → B edge to a module-wide graph keyed by
//     lock *class* (declaring package, type and field — instances of a
//     class share a node, the lockdep convention). A cycle means two
//     call paths can interleave into a deadlock even if no test
//     schedule has produced one yet.
//
//  2. No blocking operation is reached while a lock is held: file and
//     network I/O (os / net), time.Sleep, sync.WaitGroup.Wait,
//     sched.Group.Wait (which runs queued evaluation tasks inline) and
//     channel operations, found directly in the held region or through
//     any resolved call chain. sync.Cond.Wait is exempt — it releases
//     the mutex it waits on.
//
// Locks that are *designed* to be held across I/O — the engine's commit
// mutex serializes whole copy-on-write commits, the catalog's ddlMu
// serializes whole DDL operations including their heap I/O, and the
// buffer-pool shard latch sanctions page read/write-back under it — are
// waived at the acquisition site with `//dkblint:locksafe <reason>`;
// the justification is mandatory (the directives analyzer rejects bare
// waivers). A waiver suppresses findings anchored at that acquisition
// but leaves its edges in the graph, so a cycle through a waived edge
// is still reported at the cycle's other witnesses.
//
// Soundness limits (see DESIGN.md §14): calls through function values
// and code inside function literals are invisible to the call graph;
// interface calls fan out CHA-style to every implementing type in the
// module (over-approximate); lock classes collapse instances, so a
// self-edge is reported as a potential self-deadlock even when the two
// instances provably differ; `go` statements inside a held region are
// treated as not running under the lock.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dkbms/internal/lint/lintkit"
)

// GraphKey is the cache key under which the analyzer publishes its
// *Graph for -stats and the module pin test.
const GraphKey = "lockorder.graph"

// Analyzer is the lockorder pass.
var Analyzer = &lintkit.Analyzer{
	Name:   "lockorder",
	Doc:    "the global lock-acquisition order is acyclic and no lock is held across a blocking call (waive with //dkblint:locksafe <reason>)",
	Run:    run,
	Module: true,
}

// Graph is the published lock-order graph summary.
type Graph struct {
	// Locks is the sorted set of lock classes discovered (graph nodes).
	Locks []string
	// OrderEdges counts distinct acquired-while-held pairs.
	OrderEdges int
	// BlockingSites counts held regions that reach a blocking operation
	// (waived ones included — the count sizes the audited surface).
	BlockingSites int
}

// edge is one acquired-while-held observation, with its first witness.
type edge struct {
	from, to string
	// pos anchors the report: the acquisition of `from` whose held
	// region reaches the acquisition of `to`.
	pos    token.Pos
	at     token.Pos // where `to` is acquired or the call chain starts
	via    []string  // call chain labels, empty for a direct acquisition
	waived bool
}

// blockInfo is one function's may-block summary: what it can block on
// and the call chain that reaches it.
type blockInfo struct {
	desc  string
	chain []string
}

func run(pass *lintkit.Pass) error {
	cg := pass.Cache.CallGraph(pass.Fset, pass.All)

	// Per-function direct facts.
	directAcq := make(map[*types.Func]map[string]bool)
	directBlock := make(map[*types.Func]*blockInfo)
	for _, node := range cg.Funcs() {
		acq, blk := directFacts(node)
		if len(acq) > 0 {
			directAcq[node.Fn] = acq
		}
		if blk != nil {
			directBlock[node.Fn] = blk
		}
	}

	// Transitive fix-point over the call graph: mayAcquire[fn] maps each
	// reachable lock class to the call chain that reaches its
	// acquisition; mayBlock[fn] carries one blocking witness.
	mayAcquire := make(map[*types.Func]map[string][]string)
	mayBlock := make(map[*types.Func]*blockInfo)
	for fn, acq := range directAcq {
		m := make(map[string][]string, len(acq))
		for id := range acq {
			m[id] = nil
		}
		mayAcquire[fn] = m
	}
	for fn, b := range directBlock {
		mayBlock[fn] = b
	}
	for changed := true; changed; {
		changed = false
		for _, node := range cg.Funcs() {
			for _, cs := range node.Calls {
				if calleeAcq, ok := mayAcquire[cs.Callee]; ok {
					m := mayAcquire[node.Fn]
					if m == nil {
						m = make(map[string][]string)
						mayAcquire[node.Fn] = m
					}
					label := calleeLabel(cs.Callee)
					for id, chain := range calleeAcq {
						if _, have := m[id]; !have {
							m[id] = append([]string{label}, chain...)
							changed = true
						}
					}
				}
				if b, ok := mayBlock[cs.Callee]; ok && mayBlock[node.Fn] == nil {
					mayBlock[node.Fn] = &blockInfo{desc: b.desc, chain: append([]string{calleeLabel(cs.Callee)}, b.chain...)}
					changed = true
				}
			}
		}
	}

	// Held-region scan: every explicit acquisition of a classed lock.
	var edges []edge
	lockSet := map[string]bool{}
	blockingSites := 0
	for _, node := range cg.Funcs() {
		es, blocked := scanFunc(pass, node, cg, mayAcquire, mayBlock, directBlock)
		edges = append(edges, es...)
		blockingSites += blocked
		for id := range directAcq[node.Fn] {
			lockSet[id] = true
		}
	}
	for _, e := range edges {
		lockSet[e.from] = true
		lockSet[e.to] = true
	}

	// Deduplicate edges (first witness wins; scan order is positional,
	// so the witness is deterministic).
	type key struct{ from, to string }
	dedup := map[key]*edge{}
	var order []key
	for i := range edges {
		e := &edges[i]
		k := key{e.from, e.to}
		if prev, ok := dedup[k]; ok {
			// A waived witness must not mask an unwaived one.
			if prev.waived && !e.waived {
				dedup[k] = e
			}
			continue
		}
		dedup[k] = e
		order = append(order, k)
	}

	// Cycle detection over the deduplicated edge set.
	adj := map[string][]string{}
	for _, k := range order {
		adj[k.from] = append(adj[k.from], k.to)
	}
	scc := stronglyConnected(lockSet, adj)
	for _, k := range order {
		e := dedup[k]
		inCycle := k.from == k.to || (scc[k.from] == scc[k.to] && sccSize(scc, scc[k.from]) > 1)
		if !inCycle || e.waived {
			continue
		}
		cyc := cyclePath(k, adj, scc)
		via := ""
		if len(e.via) > 0 {
			via = " via " + strings.Join(e.via, " → ")
		}
		pass.Reportf(e.pos, "lock-order cycle: %s acquired%s while %s is held; cycle %s",
			e.to, via, e.from, cyc)
	}

	g := &Graph{OrderEdges: len(order), BlockingSites: blockingSites}
	for id := range lockSet {
		g.Locks = append(g.Locks, id)
	}
	sort.Strings(g.Locks)
	pass.Cache.Store(GraphKey, g)
	return nil
}

// directFacts scans one function body (outside function literals) for
// lock-class acquisitions and direct blocking evidence.
func directFacts(node *lintkit.FuncNode) (map[string]bool, *blockInfo) {
	info := node.Pkg.Info
	acq := map[string]bool{}
	var blk *blockInfo
	note := func(desc string) {
		if blk == nil {
			blk = &blockInfo{desc: desc}
		}
	}
	walkSkipFuncLit(node.Decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if op := lintkit.AsMutexOp(info, n); op != nil {
				if op.Acquires() {
					if id := op.ClassID(); id != "" {
						acq[id] = true
					}
				}
				return
			}
			if fn := lintkit.Callee(info, n); fn != nil {
				if desc := blockingCallee(fn); desc != "" {
					note(desc)
				}
			}
		case *ast.SendStmt:
			note("a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				note("a channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				note("a blocking select")
			}
		}
	})
	return acq, blk
}

// scanFunc walks every held region of a function: explicit classed
// acquisitions, their release scope (deferred releases extend to the
// function end), and the order/blocking facts inside.
func scanFunc(pass *lintkit.Pass, node *lintkit.FuncNode, cg *lintkit.CallGraph,
	mayAcquire map[*types.Func]map[string][]string, mayBlock map[*types.Func]*blockInfo,
	directBlock map[*types.Func]*blockInfo) ([]edge, int) {

	info := node.Pkg.Info
	cfg := lintkit.BuildCFG(node.Decl.Body)
	if cfg.Unsupported {
		return nil, 0
	}
	waived := waivedLinesFor(pass, node)

	type acquire struct {
		op   *lintkit.MutexOp
		stmt ast.Stmt
	}
	var acquires []acquire
	cfg.VisitFrom(nil, nil, func(s ast.Stmt) {
		for _, h := range lintkit.Headline(s) {
			ast.Inspect(h, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if op := lintkit.AsMutexOp(info, call); op != nil && op.Acquires() && op.ClassID() != "" {
						acquires = append(acquires, acquire{op: op, stmt: s})
					}
				}
				return true
			})
		}
	})

	var edges []edge
	blockedSites := 0
	for _, a := range acquires {
		id := a.op.ClassID()
		line := pass.Fset.Position(a.op.Call.Pos()).Line
		_, isWaived := waived[line]

		want := lintkit.UnlockFor(a.op.Op)
		isRelease := func(n ast.Node) bool {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if op := lintkit.AsMutexOp(info, call); op != nil && op.Op == want && op.Recv == a.op.Recv {
						found = true
						return false
					}
				}
				return true
			})
			return found
		}
		deferred := false
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if isRelease(d.Call) {
					deferred = true
				} else if fl, ok := d.Call.Fun.(*ast.FuncLit); ok && isRelease(fl.Body) {
					deferred = true
				}
			}
			return true
		})
		var stop func(ast.Stmt) bool
		if !deferred {
			stop = func(s ast.Stmt) bool {
				for _, h := range lintkit.Headline(s) {
					if isRelease(h) {
						return true
					}
				}
				return false
			}
		}

		var blocked *blockInfo
		var blockedAt token.Pos
		noteBlock := func(pos token.Pos, b *blockInfo) {
			if blocked == nil {
				blocked, blockedAt = b, pos
			}
		}
		cfg.VisitFrom(a.stmt, stop, func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred work runs after the release path decides;
				// go-routines run concurrently, not under this hold.
				_ = s
				return
			case *ast.SendStmt:
				noteBlock(s.Pos(), &blockInfo{desc: "a channel send"})
			case *ast.SelectStmt:
				if !selectHasDefault(s) {
					noteBlock(s.Pos(), &blockInfo{desc: "a blocking select"})
				}
			}
			for _, h := range lintkit.Headline(s) {
				ast.Inspect(h, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					switch m := m.(type) {
					case *ast.UnaryExpr:
						if m.Op == token.ARROW {
							noteBlock(m.Pos(), &blockInfo{desc: "a channel receive"})
						}
					case *ast.CallExpr:
						op := lintkit.AsMutexOp(info, m)
						if op != nil {
							if op.Acquires() {
								if to := op.ClassID(); to != "" && !(to == id && m == a.op.Call) {
									edges = append(edges, edge{from: id, to: to, pos: a.op.Call.Pos(), at: m.Pos(), waived: isWaived})
								}
							}
							return true
						}
						callee := lintkit.Callee(info, m)
						if callee == nil || isCondWait(callee) {
							return true
						}
						if desc := blockingCallee(callee); desc != "" {
							noteBlock(m.Pos(), &blockInfo{desc: desc})
						}
						label := calleeLabel(callee)
						if acqs, ok := mayAcquire[callee]; ok {
							for to, chain := range acqs {
								edges = append(edges, edge{from: id, to: to, pos: a.op.Call.Pos(), at: m.Pos(),
									via: append([]string{label}, chain...), waived: isWaived})
							}
						}
						if b, ok := mayBlock[callee]; ok {
							noteBlock(m.Pos(), &blockInfo{desc: b.desc, chain: append([]string{label}, b.chain...)})
						}
					}
					return true
				})
			}
		})

		if blocked != nil {
			blockedSites++
			if !isWaived {
				via := ""
				if len(blocked.chain) > 0 {
					via = " (via " + strings.Join(blocked.chain, " → ") + ")"
				}
				pass.Reportf(blockedAt, "%s held across %s%s: %s.%s at %s blocks the lock's critical section; release first or waive with //dkblint:locksafe <reason>",
					id, blocked.desc, via, a.op.Recv, a.op.Op, pass.Fset.Position(a.op.Call.Pos()))
			}
		}
	}
	return edges, blockedSites
}

// waivedLinesFor returns the locksafe-waived lines of the file holding
// the node's declaration.
func waivedLinesFor(pass *lintkit.Pass, node *lintkit.FuncNode) map[int]string {
	for _, f := range node.Pkg.Files {
		if f.FileStart <= node.Decl.Pos() && node.Decl.Pos() <= f.FileEnd {
			return lintkit.WaivedLines(pass.Fset, f, "locksafe")
		}
	}
	return nil
}

// blockingCallee classifies a callee as a known blocking operation.
// Stdlib packages match by import path; module packages match by
// package name, so fixtures can stand in for the real ones.
func blockingCallee(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	recv := lintkit.ReceiverTypeName(fn)
	switch {
	case path == "os" && recv == "File":
		switch name {
		case "Read", "ReadAt", "Write", "WriteAt", "Sync", "Close", "Seek", "Truncate":
			return "file I/O (os.File." + name + ")"
		}
	case path == "os" && recv == "":
		switch name {
		case "Open", "OpenFile", "Create", "Remove", "RemoveAll", "Rename", "ReadFile", "WriteFile", "Truncate", "Mkdir", "MkdirAll":
			return "file I/O (os." + name + ")"
		}
	case path == "net" || strings.HasPrefix(path, "net/"):
		return "network I/O (" + path + "." + name + ")"
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "sync" && recv == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait"
	}
	if lintkit.PkgName(fn) == "sched" {
		switch {
		case recv == "Group" && name == "Wait":
			return "sched.Group.Wait (runs queued evaluation tasks inline)"
		case recv == "Pool" && name == "Close":
			return "sched.Pool.Close (joins the workers)"
		}
	}
	return ""
}

func isCondWait(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		lintkit.ReceiverTypeName(fn) == "Cond" && fn.Name() == "Wait"
}

func calleeLabel(fn *types.Func) string {
	if recv := lintkit.ReceiverTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func walkSkipFuncLit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// --- cycle machinery ---

// stronglyConnected assigns each lock node an SCC id (Tarjan).
func stronglyConnected(nodes map[string]bool, adj map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	counter, compID := 0, 0

	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	var strong func(v string)
	strong = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		succs := append([]string(nil), adj[v]...)
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				if w == v {
					break
				}
			}
			compID++
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return comp
}

func sccSize(comp map[string]int, id int) int {
	n := 0
	for _, c := range comp {
		if c == id {
			n++
		}
	}
	return n
}

// cyclePath renders one cycle through edge k for the diagnostic:
// from → to → ... → from, following in-SCC edges.
func cyclePath(k struct{ from, to string }, adj map[string][]string, comp map[string]int) string {
	if k.from == k.to {
		return fmt.Sprintf("%s → %s", k.from, k.to)
	}
	// BFS from k.to back to k.from inside the SCC.
	type step struct {
		node string
		path []string
	}
	queue := []step{{node: k.to, path: []string{k.from, k.to}}}
	seen := map[string]bool{k.to: true}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		succs := append([]string(nil), adj[s.node]...)
		sort.Strings(succs)
		for _, w := range succs {
			if comp[w] != comp[k.from] {
				continue
			}
			if w == k.from {
				return strings.Join(append(s.path, w), " → ")
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, step{node: w, path: append(append([]string(nil), s.path...), w)})
			}
		}
	}
	return k.from + " → " + k.to + " → … → " + k.from
}
