package lockorder_test

import (
	"path/filepath"
	"testing"

	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/lockorder"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, lockorder.Analyzer, filepath.Join("testdata", "src"))
}
