package pinpair_test

import (
	"testing"

	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/pinpair"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, pinpair.Analyzer, "testdata/src")
}
