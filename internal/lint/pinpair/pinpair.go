// Package pinpair checks the buffer pool's central resource invariant:
// a page pinned by storage.Pager.Fetch / Allocate / AllocateReusable
// must reach Pager.Unpin on every control-flow path out of the function
// that pinned it — including error returns — unless the page itself
// escapes (is returned or handed to another owner), in which case the
// unpin obligation transfers with it. A `defer pager.Unpin(pg)`
// satisfies the obligation on all paths, panics included.
//
// PR 2 made pin counts atomic so eviction trusts them without a global
// latch; a leaked pin therefore wedges a frame in its shard forever and
// shrinks the pool silently. This analyzer turns that rule into a build
// failure.
package pinpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the pinpair pass.
var Analyzer = &lintkit.Analyzer{
	Name: "pinpair",
	Doc:  "every Pager.Fetch/Allocate must be paired with Unpin on all paths",
	Run:  run,
}

// pinSources are the Pager methods that return a pinned page.
var pinSources = map[string]bool{
	"Fetch":            true,
	"Allocate":         true,
	"AllocateReusable": true,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	var cfg *lintkit.CFG // built lazily, once per function

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintkit.Callee(info, call)
		if callee == nil || !pinSources[callee.Name()] ||
			lintkit.PkgName(callee) != "storage" || lintkit.ReceiverTypeName(callee) != "Pager" {
			return true
		}
		if len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true // stored straight into a field/index: owner changed
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "pinned page from %s is discarded without Unpin", callee.Name())
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if cfg == nil {
			cfg = lintkit.BuildCFG(fn.Body)
		}
		if cfg.Unsupported {
			return false // goto/labels: skip the function
		}
		// The error result's object, for pruning failure-branch paths
		// (the page is nil when the acquisition errored).
		var errObj types.Object
		if len(as.Lhs) == 2 {
			if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				errObj = info.Defs[eid]
				if errObj == nil {
					errObj = info.Uses[eid]
				}
			}
		}
		checkPin(pass, cfg, fn, as, callee.Name(), obj, errObj)
		return true
	})
}

// checkPin verifies that one acquisition is released on every path.
func checkPin(pass *lintkit.Pass, cfg *lintkit.CFG, fn *ast.FuncDecl, acquire ast.Stmt, srcName string, obj, errObj types.Object) {
	info := pass.Pkg.Info

	isObj := func(id *ast.Ident) bool {
		return info.Uses[id] == obj || info.Defs[id] == obj
	}
	usesObj := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && isObj(id) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	// isUnpinNode reports whether n contains an Unpin(obj) call.
	isUnpinNode := func(n ast.Node) bool {
		unpinned := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lintkit.IsMethod(info, call, "storage", "Pager", "Unpin") &&
				len(call.Args) == 1 && usesObj(call.Args[0]) {
				unpinned = true
				return false
			}
			return true
		})
		return unpinned
	}

	// escapesNode reports whether n passes the page to another owner:
	// returned, address taken, placed in a composite literal, passed to
	// a call other than Unpin, captured by a closure, sent on a channel,
	// or aliased by an assignment. Selector uses (pg.Data, pg.Next())
	// and comparisons are plain uses, not escapes.
	var escapesNode func(n ast.Node) bool
	escapesNode = func(n ast.Node) bool {
		escaped := false
		ast.Inspect(n, func(m ast.Node) bool {
			if escaped {
				return false
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				if lintkit.IsMethod(info, m, "storage", "Pager", "Unpin") {
					return false // a release, not an escape
				}
				for _, arg := range m.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok && isObj(id) {
						escaped = true
						return false
					}
				}
				return true
			case *ast.SelectorExpr:
				// pg.Field / pg.Method(): inspect only the base for
				// nested expressions like f(pg).X — the Sel side cannot
				// be the page object itself.
				if escapesNode(m.X) {
					escaped = true
				}
				return false
			case *ast.AssignStmt:
				for _, rhs := range m.Rhs {
					if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && isObj(id) {
						escaped = true // aliased: tracking ends
						return false
					}
				}
				return true
			case *ast.ReturnStmt:
				if usesObj(m) {
					escaped = true
					return false
				}
				return true
			case *ast.UnaryExpr:
				if m.Op == token.AND && usesObj(m.X) {
					escaped = true
					return false
				}
				return true
			case *ast.CompositeLit:
				if usesObj(m) {
					escaped = true
				}
				return false
			case *ast.FuncLit:
				if usesObj(m.Body) {
					escaped = true
				}
				return false
			case *ast.SendStmt:
				if usesObj(m.Value) {
					escaped = true
					return false
				}
				return true
			}
			return true
		})
		return escaped
	}

	// A deferred Unpin (directly or inside a deferred closure) satisfies
	// every path, panics included.
	deferSatisfied := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isUnpinNode(d.Call) {
			deferSatisfied = true
		} else if fl, ok := d.Call.Fun.(*ast.FuncLit); ok && isUnpinNode(fl.Body) {
			deferSatisfied = true
		}
		return true
	})
	if deferSatisfied {
		return
	}

	onHeadline := func(s ast.Stmt, pred func(ast.Node) bool) bool {
		for _, h := range lintkit.Headline(s) {
			if pred(h) {
				return true
			}
		}
		return false
	}
	release := func(s ast.Stmt) bool { return onHeadline(s, isUnpinNode) }
	kill := func(s ast.Stmt) bool { return onHeadline(s, escapesNode) }

	// Prune branches taken only when the acquisition failed: the page is
	// nil there, so no pin obligation exists. (An `err` reused by later
	// calls makes this prune over-broad, trading false positives for
	// possible false negatives on already-released paths.)
	skipEdge := func(ec lintkit.EdgeCond) bool {
		if errObj == nil {
			return false
		}
		bin, ok := ast.Unparen(ec.Cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			return false
		}
		errSide := bin.X
		if isNilIdent(bin.X) {
			errSide = bin.Y
		} else if !isNilIdent(bin.Y) {
			return false
		}
		id, ok := ast.Unparen(errSide).(*ast.Ident)
		if !ok || (info.Uses[id] != errObj && info.Defs[id] != errObj) {
			return false
		}
		// `err != nil` then-branch, or `err == nil` else-branch.
		return (bin.Op == token.NEQ) != ec.Negated
	}

	if leakAt, found := cfg.ReachesExitWithout(acquire, release, kill, skipEdge); found {
		switch {
		case leakAt == acquire:
			pass.Reportf(acquire.Pos(), "page pinned by %s is still pinned when the loop re-executes the pin; the previous pin leaks", srcName)
		case leakAt != nil:
			pass.Reportf(acquire.Pos(), "page pinned by %s is not released on the path to %s: missing Unpin", srcName, pass.Fset.Position(leakAt.Pos()))
		default:
			pass.Reportf(acquire.Pos(), "page pinned by %s may leave the function without Unpin", srcName)
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
