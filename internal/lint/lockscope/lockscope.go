// Package lockscope enforces the testbed's lock-scope discipline. Each
// tracked mutex guards an in-memory structure, and the rule that keeps
// the concurrent server responsive is that no storage or network I/O
// happens while one is held:
//
//   - catalog.Catalog.mu guards the name→table/index registry maps.
//     Holding it across heap-file I/O serializes every DDL *and* every
//     name lookup behind disk latency.
//   - storage.(shard).mu is a buffer-pool latch. The write-back design
//     sanctions readPage/writePage under it (a miss must not release
//     the latch between victim selection and frame reuse), but
//     re-entering the pager (Fetch/Allocate/Flush/...) or taking
//     Pager.flMu/allocMu under it inverts the documented flMu → latch
//     order and deadlocks.
//   - server.Server.mu guards the session table. Conn I/O or testbed
//     query execution under it stalls accept/drain for every session.
//
// The analyzer also reports any tracked Lock/RLock that is not paired
// with its Unlock on every path out of the function (defer counts).
// Analysis is intra-procedural: it inspects direct calls in the held
// region, plus the bodies of functions that hold a lock by convention
// (methods of storage.shard; catalog functions named *Locked).
package lockscope

import (
	"go/ast"
	"go/types"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the lockscope pass.
var Analyzer = &lintkit.Analyzer{
	Name: "lockscope",
	Doc:  "no storage or network I/O while a latch or registry mutex is held; all locks released on every path",
	Run:  run,
}

// class describes one tracked mutex field and what is forbidden while
// it is held.
type class struct {
	pkg, typ, field string
	doc             string
	// forbidCall returns a reason if calling fn while held is illegal.
	forbidCall func(fn *types.Func) string
	// forbidLock returns a reason if acquiring the described mutex
	// field while held is illegal. op is "Lock" or "RLock".
	forbidLock func(pkg, typ, field, op string) string
}

var classes = []*class{
	{
		pkg: "catalog", typ: "Catalog", field: "mu",
		doc: "the catalog registry mutex",
		forbidCall: func(fn *types.Func) string {
			if isStorageIO(fn) {
				return "performs storage I/O"
			}
			return ""
		},
		forbidLock: func(pkg, typ, field, op string) string {
			if pkg == "catalog" && typ == "Catalog" && field == "mu" {
				return "is not reentrant"
			}
			return ""
		},
	},
	{
		pkg: "storage", typ: "shard", field: "mu",
		doc: "a buffer-pool shard latch",
		forbidCall: func(fn *types.Func) string {
			if lintkit.PkgName(fn) != "storage" {
				return ""
			}
			switch lintkit.ReceiverTypeName(fn) {
			case "Pager":
				switch fn.Name() {
				case "Fetch", "Allocate", "AllocateReusable", "FreeChain", "Flush", "Close":
					return "re-enters the pager"
				}
			case "HeapFile":
				return "performs heap-file I/O"
			}
			return ""
		},
		forbidLock: func(pkg, typ, field, op string) string {
			if pkg != "storage" {
				return ""
			}
			if typ == "shard" && field == "mu" {
				return "would nest two shard latches"
			}
			// flMu and allocMu are ordered before the shard latch;
			// memMu write-locking under a latch inverts resize order.
			// memMu.RLock under a latch is the sanctioned miss path.
			if typ == "Pager" {
				switch field {
				case "flMu", "allocMu":
					return "inverts the " + field + " → shard-latch lock order"
				case "memMu":
					if op == "Lock" {
						return "inverts the resize lock order"
					}
				}
			}
			return ""
		},
	},
	{
		pkg: "server", typ: "Server", field: "mu",
		doc: "the server session-table mutex",
		forbidCall: func(fn *types.Func) string {
			pkg := lintkit.PkgName(fn)
			recv := lintkit.ReceiverTypeName(fn)
			switch {
			case pkg == "wire" && (fn.Name() == "WriteFrame" || fn.Name() == "ReadFrame"):
				return "performs connection I/O"
			case recv == "Conn" && pkg == "net":
				return "performs connection I/O"
			case pkg == "dkbms" && recv == "ConcurrentTestbed":
				return "executes testbed work"
			case pkg == "server" && recv == "session" && fn.Name() == "interruptIdleRead":
				return "touches the session's connection"
			}
			return ""
		},
		forbidLock: func(pkg, typ, field, op string) string {
			if pkg == "server" && typ == "Server" && field == "mu" {
				return "is not reentrant"
			}
			return ""
		},
	},
}

// lockOp wraps the kit's shared mutex-op decoding with this analyzer's
// tracked-class resolution.
type lockOp struct {
	*lintkit.MutexOp
	class *class // non-nil if tracked
}

// asLockOp decodes a call as a mutex operation, or returns nil.
func asLockOp(info *types.Info, call *ast.CallExpr) *lockOp {
	m := lintkit.AsMutexOp(info, call)
	if m == nil {
		return nil
	}
	op := &lockOp{MutexOp: m}
	for _, c := range classes {
		if m.OwnerPkg == c.pkg && m.OwnerTyp == c.typ && m.Field == c.field {
			op.class = c
		}
	}
	return op
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

// heldOnEntry returns the class a function holds by convention when it
// is called: shard methods run under their shard's latch; catalog
// helpers named *Locked run under the registry mutex.
func heldOnEntry(pass *lintkit.Pass, fn *ast.FuncDecl) *class {
	pkgName := pass.Pkg.Name
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		t := fn.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == "shard" && pkgName == "storage" {
			return classByName("storage", "shard", "mu")
		}
	}
	if pkgName == "catalog" && len(fn.Name.Name) > len("Locked") &&
		fn.Name.Name[len(fn.Name.Name)-len("Locked"):] == "Locked" {
		return classByName("catalog", "Catalog", "mu")
	}
	return nil
}

func classByName(pkg, typ, field string) *class {
	for _, c := range classes {
		if c.pkg == pkg && c.typ == typ && c.field == field {
			return c
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	cfg := lintkit.BuildCFG(fn.Body)
	if cfg.Unsupported {
		return
	}

	// checkNode flags forbidden work inside one statement headline
	// while `held` is held.
	checkNode := func(held *class, n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // runs at call time, not while held here
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op := asLockOp(info, call); op != nil {
				if op.Acquires() {
					if why := held.forbidLock(op.OwnerPkg, op.OwnerTyp, op.Field, op.Op); why != "" {
						pass.Reportf(call.Pos(), "%s.%s while holding %s: %s", op.Recv, op.Op, held.doc, why)
					}
				}
				return true
			}
			if callee := lintkit.Callee(info, call); callee != nil {
				if why := held.forbidCall(callee); why != "" {
					pass.Reportf(call.Pos(), "call to %s while holding %s: %s", calleeLabel(callee), held.doc, why)
				}
			}
			return true
		})
	}

	onHeadline := func(s ast.Stmt, f func(ast.Node)) {
		for _, h := range lintkit.Headline(s) {
			f(h)
		}
	}

	// Convention-held classes cover the whole body, with no release.
	if held := heldOnEntry(pass, fn); held != nil {
		cfg.VisitFrom(nil, nil, func(s ast.Stmt) {
			onHeadline(s, func(h ast.Node) { checkNode(held, h) })
		})
	}

	// Find explicit acquisitions at statement level.
	cfg.VisitFrom(nil, nil, func(s ast.Stmt) {
		for _, h := range lintkit.Headline(s) {
			ast.Inspect(h, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false // a closure's locks belong to its own call frame
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				op := asLockOp(info, call)
				if op == nil || !op.Acquires() {
					return true
				}
				checkAcquire(pass, cfg, fn, s, op, checkNode, onHeadline)
				return true
			})
		}
	})
}

// checkAcquire verifies one Lock/RLock: forbidden work in its held
// region, and release on every path.
func checkAcquire(pass *lintkit.Pass, cfg *lintkit.CFG, fn *ast.FuncDecl, at ast.Stmt, acq *lockOp,
	checkNode func(*class, ast.Node), onHeadline func(ast.Stmt, func(ast.Node))) {
	info := pass.Pkg.Info
	want := lintkit.UnlockFor(acq.Op)

	isRelease := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op := asLockOp(info, call); op != nil && op.Op == want && op.Recv == acq.Recv {
				found = true
				return false
			}
			return true
		})
		return found
	}

	// A deferred release covers all paths; the held region then runs to
	// the end of the function.
	deferred := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isRelease(d.Call) {
			deferred = true
		} else if fl, ok := d.Call.Fun.(*ast.FuncLit); ok && isRelease(fl.Body) {
			deferred = true
		}
		return true
	})

	if acq.class != nil {
		stop := func(s ast.Stmt) bool { return !deferred && stmtReleases(s, isRelease, onHeadline) }
		cfg.VisitFrom(at, stop, func(s ast.Stmt) {
			onHeadline(s, func(h ast.Node) { checkNode(acq.class, h) })
		})
	}

	if !deferred {
		release := func(s ast.Stmt) bool { return stmtReleases(s, isRelease, onHeadline) }
		if leakAt, found := cfg.ReachesExitWithout(at, release, nil, nil); found {
			if leakAt == at {
				pass.Reportf(acq.Call.Pos(), "%s.%s is still held when the loop re-acquires it", acq.Recv, acq.Op)
			} else {
				pass.Reportf(acq.Call.Pos(), "%s.%s is not released on every path out of %s (missing %s or defer)", acq.Recv, acq.Op, fn.Name.Name, want)
			}
		}
	}
}

func stmtReleases(s ast.Stmt, isRelease func(ast.Node) bool, onHeadline func(ast.Stmt, func(ast.Node))) bool {
	found := false
	onHeadline(s, func(h ast.Node) {
		if isRelease(h) {
			found = true
		}
	})
	return found
}

// isStorageIO reports whether fn is a storage-layer operation that hits
// the pager or a heap file.
func isStorageIO(fn *types.Func) bool {
	if lintkit.PkgName(fn) != "storage" {
		return false
	}
	switch lintkit.ReceiverTypeName(fn) {
	case "Pager", "HeapFile":
		return true
	case "":
		switch fn.Name() {
		case "CreateHeap", "OpenHeap":
			return true
		}
	}
	return false
}

func calleeLabel(fn *types.Func) string {
	if recv := lintkit.ReceiverTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
