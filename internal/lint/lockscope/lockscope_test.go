package lockscope_test

import (
	"testing"

	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/lockscope"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, lockscope.Analyzer, "testdata/src")
}
