// Package storage is a fixture stub for lockscope: shard-latch rules,
// the flMu → latch lock order, and the sanctioned write-back path.
package storage

import "sync"

type PageID uint32

type Page struct{ Data []byte }

type Pager struct {
	flMu    sync.Mutex
	allocMu sync.Mutex
	memMu   sync.RWMutex
	shards  []shard
}

type shard struct {
	mu   sync.Mutex
	hits int64
}

func (p *Pager) Fetch(id PageID) (*Page, error) { return &Page{}, nil }
func (p *Pager) Allocate() (*Page, error)       { return &Page{}, nil }
func (p *Pager) Flush() error                   { return nil }
func (p *Pager) Unpin(pg *Page)                 {}
func (p *Pager) writePage(pg *Page)             {}
func (p *Pager) readPage(pg *Page)              {}

type HeapFile struct{ p *Pager }

func (h *HeapFile) Insert(rec []byte) (int, error) { return 0, nil }

func CreateHeap(p *Pager) (*HeapFile, error) { return &HeapFile{p: p}, nil }

// shard methods run under their shard's latch by convention: the
// write-back calls are sanctioned, re-entering the pager is not.
func (sh *shard) evictOK(p *Pager, pg *Page) {
	p.writePage(pg)
	p.readPage(pg)
}

func (sh *shard) evictBad(p *Pager, pg *Page) {
	p.writePage(pg)
	p.Flush() // want "re-enters the pager"
}

func (p *Pager) statsOK() int64 {
	var total int64
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		total += sh.hits
		sh.mu.Unlock()
	}
	return total
}

func (p *Pager) badUnderLatch(id PageID) {
	sh := &p.shards[0]
	sh.mu.Lock()
	p.flMu.Lock() // want "inverts the flMu"
	p.flMu.Unlock()
	pg, _ := p.Fetch(id) // want "re-enters the pager"
	_ = pg
	sh.mu.Unlock()
}

func (p *Pager) badForgot(c bool) {
	sh := &p.shards[0]
	sh.mu.Lock() // want "not released on every path"
	if c {
		return
	}
	sh.mu.Unlock()
}

// The miss path may read-lock memMu under the latch; write-locking it
// there inverts the resize order.
func (p *Pager) memOrder(c bool) {
	sh := &p.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p.memMu.RLock()
	p.memMu.RUnlock()
	if c {
		p.memMu.Lock() // want "inverts the resize lock order"
		p.memMu.Unlock()
	}
}
