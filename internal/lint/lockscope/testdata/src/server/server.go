// Package server is a fixture stub: no connection I/O while the
// session-table mutex is held; collect-then-release is the sanctioned
// shape.
package server

import (
	"io"
	"sync"

	"wire"
)

type Server struct {
	mu       sync.Mutex
	sessions map[int]io.Writer
}

func (s *Server) broadcastBad(payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.sessions {
		wire.WriteFrame(w, 1, payload) // want "performs connection I/O"
	}
}

func (s *Server) broadcastOK(payload []byte) {
	s.mu.Lock()
	targets := make([]io.Writer, 0, len(s.sessions))
	for _, w := range s.sessions {
		targets = append(targets, w)
	}
	s.mu.Unlock()
	for _, w := range targets {
		wire.WriteFrame(w, 1, payload)
	}
}
