// Package catalog is a fixture stub: no storage I/O under the registry
// mutex, including in *Locked helpers that run with it held.
package catalog

import (
	"sync"

	"storage"
)

type Catalog struct {
	mu     sync.RWMutex
	pager  *storage.Pager
	heap   *storage.HeapFile
	tables map[string]bool
}

func (c *Catalog) lookupOK(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

func (c *Catalog) createBad(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, err := storage.CreateHeap(c.pager) // want "performs storage I/O"
	if err != nil {
		return err
	}
	_ = h
	c.tables[name] = true
	return nil
}

// registerLocked runs with c.mu held (the *Locked naming convention).
func (c *Catalog) registerLocked(rec []byte) error {
	_, err := c.heap.Insert(rec) // want "performs heap-file I/O|performs storage I/O"
	return err
}

func (c *Catalog) createOK(name string) error {
	h, err := storage.CreateHeap(c.pager)
	if err != nil {
		return err
	}
	_ = h
	c.mu.Lock()
	c.tables[name] = true
	c.mu.Unlock()
	return nil
}
