// Package wire is a fixture stub: lockscope only needs the WriteFrame
// shape.
package wire

import "io"

func WriteFrame(w io.Writer, t byte, payload []byte) (int, error) {
	return w.Write(payload)
}
