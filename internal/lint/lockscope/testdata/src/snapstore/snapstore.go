// Package snapstore is a fixture stub of the snapshot store's commit
// path: copy-on-write under a single-writer mutex, publication via an
// atomic pointer swap. The commit mutex is not a tracked class — only
// the pairing discipline applies: every path out of a commit must
// release it, including the early-return paths a failed copy takes.
package snapstore

import (
	"sync"
	"sync/atomic"
)

type snap struct {
	gen    uint64
	tables map[string]int
}

type store struct {
	commitMu sync.Mutex
	current  atomic.Pointer[snap]
}

func copyTables(src map[string]int) (map[string]int, error) {
	out := make(map[string]int, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out, nil
}

// publishOK is the canonical shape: acquire, defer release, build the
// successor, swap. The deferred unlock covers the error return.
func (st *store) publishOK() error {
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	old := st.current.Load()
	tables, err := copyTables(old.tables)
	if err != nil {
		return err
	}
	st.current.Store(&snap{gen: old.gen + 1, tables: tables})
	return nil
}

// publishLeaky forgets the unlock on the failed-copy return: the next
// writer blocks forever.
func (st *store) publishLeaky() error {
	st.commitMu.Lock() // want "not released on every path"
	old := st.current.Load()
	tables, err := copyTables(old.tables)
	if err != nil {
		return err
	}
	st.current.Store(&snap{gen: old.gen + 1, tables: tables})
	st.commitMu.Unlock()
	return nil
}
