// A package off the query path: unbounded loops are not ctxflow's
// business here (gofanout and lockorder still apply).
package other

func Spin(step func() bool) {
	for {
		if step() {
			return
		}
	}
}
