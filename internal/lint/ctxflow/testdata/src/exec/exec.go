// Fixtures for transitive observation through a helper chain, and the
// waiver.
package exec

import "rtlib"

type cursor struct {
	helper *rtlib.Helper
}

// The observation is two calls down: Helper.Poll → pollInner → ctx.Err.
func (c *cursor) goodTransitive() {
	for {
		if c.helper.Poll() != nil {
			return
		}
		if c.done() {
			return
		}
	}
}

func (c *cursor) waivedDrain(ch chan int) {
	for { //dkblint:ctxok drains a closed channel; bounded by the producer's shutdown
		if _, ok := <-ch; !ok {
			return
		}
	}
}

func (c *cursor) badDrain(ch chan int) {
	for { // want "unbounded for-loop in query-path package exec never observes the context"
		if _, ok := <-ch; !ok {
			return
		}
	}
}

func (c *cursor) done() bool { return true }
