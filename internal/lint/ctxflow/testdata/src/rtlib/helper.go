package rtlib

import "context"

// Helper exposes an exported observer for the exec fixture's
// cross-package transitive case.
type Helper struct{ Ctx context.Context }

func (h *Helper) Poll() error { return h.pollInner() }

func (h *Helper) pollInner() error { return h.Ctx.Err() }
