// Fixtures in a query-path package name: direct and amortized context
// observation, plus the positive case.
package rtlib

import "context"

type evaluator struct {
	ctx   context.Context
	steps int
}

// checkCtx is the engine's amortized poll: the canonical transitive
// observer.
func (ev *evaluator) checkCtx() error {
	ev.steps++
	if ev.steps%1024 != 0 {
		return nil
	}
	return ev.ctx.Err()
}

func (ev *evaluator) goodDirect() error {
	for {
		if err := ev.ctx.Err(); err != nil {
			return err
		}
		if ev.step() {
			return nil
		}
	}
}

func (ev *evaluator) goodAmortized() error {
	for {
		if err := ev.checkCtx(); err != nil {
			return err
		}
		if ev.step() {
			return nil
		}
	}
}

func (ev *evaluator) goodSelect(ch chan int) {
	for {
		select {
		case <-ev.ctx.Done():
			return
		case <-ch:
		}
	}
}

// A bounded loop terminates on its own: not flagged.
func (ev *evaluator) goodBounded(n int) {
	for i := 0; i < n; i++ {
		ev.step()
	}
}

func (ev *evaluator) badSpin() {
	for { // want "unbounded for-loop in query-path package rtlib never observes the context"
		if ev.step() {
			return
		}
	}
}

// Observation inside a launched goroutine does not gate this loop.
func (ev *evaluator) badGoroutineObserver() {
	for { // want "never observes the context"
		go func() { _ = ev.ctx.Err() }()
		if ev.step() {
			return
		}
	}
}

func (ev *evaluator) step() bool { return true }
