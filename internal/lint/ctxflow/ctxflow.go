// Package ctxflow enforces cancellation-responsiveness on the query
// path. The testbed's cooperative-cancellation design (PR 4) relies on
// every potentially long-running loop polling its context: a `for {}`
// loop in rtlib (recursive evaluation), exec (operator cursors) or
// server (session service loops) that never observes ctx.Done()/
// ctx.Err() keeps a cancelled query burning CPU — and, under the
// scheduler, keeps its worker slot — until the loop happens to drain.
//
// The check is interprocedural: a loop observes the context if its body
// calls context.Context.Done or .Err directly, or calls any module
// function that transitively does (rtlib's evaluator.checkCtx is the
// canonical observer — it amortizes ctx.Err polling behind a counter).
// Only condition-less `for {}` loops are flagged: a bounded `for i :=
// ...` or `range` loop terminates on its own.
//
// Loops whose termination is driven by other means — a server accept
// loop that exits when the listener closes, a session read loop bounded
// by the connection lifetime — are waived at the loop line with
// `//dkblint:ctxok <reason>`; the justification is mandatory.
//
// Soundness limits (DESIGN.md §14): observation behind a function value
// or an interface method outside the CHA set is invisible and reports a
// false positive (waive it); conversely a loop that observes ctx but
// ignores the result still passes — the analyzer proves polling, not
// correct reaction.
package ctxflow

import (
	"go/ast"
	"go/types"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the ctxflow pass.
var Analyzer = &lintkit.Analyzer{
	Name:   "ctxflow",
	Doc:    "unbounded loops in query-path packages (rtlib, exec, server) observe ctx.Done/ctx.Err (waive with //dkblint:ctxok <reason>)",
	Run:    run,
	Module: true,
}

// queryPathPkgs are the package names whose loops sit on the query
// path. Matching is by name so fixtures can stand in for the engine.
var queryPathPkgs = map[string]bool{
	"rtlib":  true,
	"exec":   true,
	"server": true,
}

func run(pass *lintkit.Pass) error {
	cg := pass.Cache.CallGraph(pass.Fset, pass.All)

	// Fix-point: the set of module functions that observe the context,
	// directly or through a callee.
	observers := map[*types.Func]bool{}
	for _, node := range cg.Funcs() {
		if observesDirectly(node) {
			observers[node.Fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range cg.Funcs() {
			if observers[node.Fn] {
				continue
			}
			for _, cs := range node.Calls {
				if observers[cs.Callee] {
					observers[node.Fn] = true
					changed = true
					break
				}
			}
		}
	}

	for _, node := range cg.Funcs() {
		if !queryPathPkgs[node.Pkg.Name] {
			continue
		}
		info := node.Pkg.Info
		var waived map[int]string
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if loopObserves(info, loop.Body, observers) {
				return true
			}
			if waived == nil {
				waived = waivedLinesFor(pass, node)
			}
			if _, ok := waived[pass.Fset.Position(loop.Pos()).Line]; ok {
				return true
			}
			pass.Reportf(loop.Pos(), "unbounded for-loop in query-path package %s never observes the context; poll ctx.Done/ctx.Err in the loop body or waive with //dkblint:ctxok <reason>",
				node.Pkg.Name)
			return true
		})
	}
	return nil
}

// observesDirectly reports whether the function's own body (function
// literals excluded — they run on their own schedule) calls
// context.Context.Done or .Err.
func observesDirectly(node *lintkit.FuncNode) bool {
	info := node.Pkg.Info
	found := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isCtxCall(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// loopObserves reports whether the loop body contains a context
// observation at its own level: a direct Done/Err call, or a call to a
// transitively-observing module function.
func loopObserves(info *types.Info, body *ast.BlockStmt, observers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if isCtxCall(info, call) {
			found = true
			return false
		}
		if fn := lintkit.Callee(info, call); fn != nil && observers[fn] {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCtxCall matches ctx.Done() / ctx.Err() — methods of the
// context.Context interface.
func isCtxCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintkit.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Done" || fn.Name() == "Err"
}

func waivedLinesFor(pass *lintkit.Pass, node *lintkit.FuncNode) map[int]string {
	for _, f := range node.Pkg.Files {
		if f.FileStart <= node.Decl.Pos() && node.Decl.Pos() <= f.FileEnd {
			return lintkit.WaivedLines(pass.Fset, f, "ctxok")
		}
	}
	return map[int]string{}
}
