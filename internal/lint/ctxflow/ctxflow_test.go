package ctxflow_test

import (
	"path/filepath"
	"testing"

	"dkbms/internal/lint/ctxflow"
	"dkbms/internal/lint/lintkit"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, ctxflow.Analyzer, filepath.Join("testdata", "src"))
}
