// Package directives validates the //dkblint: comment grammar itself.
// Waivers are load-bearing: a misspelled `//dkblint:locsafe` or a bare
// `//dkblint:locksafe` with no justification would silently fail to
// waive (or silently waive with no audit trail). This analyzer makes
// both a finding, so the directive surface stays closed:
//
//   - unknown directive names are rejected, with the registry listed;
//   - waiver directives (bounded, locksafe, pinsafe, ctxok) must carry
//     a justification after the name;
//   - valued directives (payload=Name) must carry their value, and
//     flag directives must not.
//
// The registry lives in lintkit (shared with every analyzer and with
// `dkblint -directives`), so adding a directive is one table entry.
package directives

import (
	"strings"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the directives pass.
var Analyzer = &lintkit.Analyzer{
	Name: "directives",
	Doc:  "every //dkblint: directive is known, well-formed, and waivers carry a justification",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, d := range lintkit.FileDirectives(pass.Fset, file) {
			spec := lintkit.DirectiveSpecFor(d.Name)
			if spec == nil {
				pass.Reportf(d.Pos, "unknown directive //dkblint:%s (known: %s)", d.Name, knownNames())
				continue
			}
			switch {
			case spec.Valued && d.Value == "":
				pass.Reportf(d.Pos, "directive //dkblint:%s requires a value (//dkblint:%s=<value>)", d.Name, d.Name)
			case !spec.Valued && d.Value != "":
				pass.Reportf(d.Pos, "directive //dkblint:%s does not take a value", d.Name)
			case spec.NeedsJustification && d.Arg == "":
				pass.Reportf(d.Pos, "waiver //dkblint:%s requires a justification (//dkblint:%s <why this is safe>)", d.Name, d.Name)
			}
		}
	}
	return nil
}

func knownNames() string {
	names := make([]string, len(lintkit.Directives))
	for i, s := range lintkit.Directives {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}
