package directives_test

import (
	"path/filepath"
	"testing"

	"dkbms/internal/lint/directives"
	"dkbms/internal/lint/lintkit"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, directives.Analyzer, filepath.Join("testdata", "src"))
}
