// Directive-grammar fixtures.
package a

import "sync"

type T struct{ mu sync.Mutex }

func waivedProperly(t *T, work func()) {
	t.mu.Lock() //dkblint:locksafe the lock serializes whole commits by design
	work()
	t.mu.Unlock()
}

func misspelled(t *T, work func()) {
	t.mu.Lock() //dkblint:locsafe serializes commits // want "unknown directive //dkblint:locsafe"
	work()
	t.mu.Unlock()
}

func bareWaiver(t *T, work func()) {
	t.mu.Lock() //dkblint:locksafe // want "waiver //dkblint:locksafe requires a justification"
	work()
	t.mu.Unlock()
}

//dkblint:bounded // want "waiver //dkblint:bounded requires a justification"
func bareBounded() {}

//dkblint:payload // want "directive //dkblint:payload requires a value"
const MsgOdd = 1

//dkblint:nopayload=X // want "directive //dkblint:nopayload does not take a value"
const MsgFlag = 2

//dkblint:payload=ServerStats
const MsgStats = 3
