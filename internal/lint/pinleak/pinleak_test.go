package pinleak_test

import (
	"path/filepath"
	"testing"

	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/pinleak"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, pinleak.Analyzer, filepath.Join("testdata", "src"))
}
