// Package pinleak is the suite's interprocedural must-release analyzer.
// It generalizes the old pinpair pass (buffer-pool page pins) to every
// counted resource the engine hands out and owns by protocol:
//
//	page      storage.Pager.Fetch/Allocate/AllocateReusable → Pager.Unpin(pg)
//	snapshot  snapshot.Store.Acquire                        → Snapshot.Release()
//	client    sched.Pool.NewClient                          → Client.Close()
//	group     sched.Client.Group                            → Group.Wait()
//
// Each acquisition must reach its release on every control-flow path
// out of the acquiring function — early error returns included — unless
// ownership demonstrably transfers. A `defer` of the release satisfies
// all paths, panics included. A leaked page pin wedges a frame in its
// shard forever; a leaked snapshot pin blocks epoch reclamation and
// pins every superseded version chain in memory; a leaked client or
// un-waited group strands scheduler queue slots.
//
// Unlike pinpair, the analysis crosses function boundaries:
//
//   - Passing the resource to a callee consults the callee's parameter
//     summary, computed by fix-point over the call graph: a callee that
//     releases the parameter counts as the release; one that stores or
//     returns it takes ownership (tracking ends); one that only reads
//     it leaves the obligation with the caller — where pinpair had to
//     assume any call transferred ownership.
//   - A function that returns a resource it acquired (directly or via
//     another such function) is an owner-returning source: its callers
//     inherit the release obligation at the call site, with the same
//     error-branch pruning as a direct acquisition. This closes the
//     gap pinpair left at wrappers like the testbed's snapshot
//     acquire-with-closed-recheck.
//
// `//dkblint:pinsafe <reason>` waives the acquisition on its own or the
// next line; the justification is mandatory (directives analyzer).
// Soundness limits (DESIGN.md §14): calls through function values and
// interface dispatch outside the CHA set are invisible, so a release
// performed only behind a function value is reported as a leak, and
// aliasing through data structures ends tracking instead of following
// the alias.
package pinleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the pinleak pass.
var Analyzer = &lintkit.Analyzer{
	Name:   "pinleak",
	Doc:    "every page pin, snapshot pin, scheduler client and task group is released on all paths (waive with //dkblint:pinsafe <reason>)",
	Run:    run,
	Module: true,
}

// kind describes one counted resource: how it is acquired, how it is
// released, and the named type that carries it. Packages match by name,
// not import path, so fixture stubs can stand in for the engine.
type kind struct {
	id   string
	noun string
	// Acquisition: a method on srcTyp (declared in package srcPkg) whose
	// name is in srcMethods returns an owned resource.
	srcPkg, srcTyp string
	srcMethods     map[string]bool
	// Release: either relMethod on relTyp taking the resource as its
	// argument (byArg — Pager.Unpin(pg)), or recvMethod invoked on the
	// resource itself (s.Release()).
	byArg                     bool
	relPkg, relTyp, relMethod string
	recvMethod                string
	// The resource's named type, for parameter summaries and
	// owner-return propagation.
	resPkg, resTyp string
}

func (k *kind) releaseName() string {
	if k.byArg {
		return k.relTyp + "." + k.relMethod
	}
	return k.resTyp + "." + k.recvMethod
}

var kinds = []*kind{
	{
		id: "page", noun: "page pinned by",
		srcPkg: "storage", srcTyp: "Pager",
		srcMethods: map[string]bool{"Fetch": true, "Allocate": true, "AllocateReusable": true},
		byArg:      true, relPkg: "storage", relTyp: "Pager", relMethod: "Unpin",
		resPkg: "storage", resTyp: "Page",
	},
	{
		id: "snapshot", noun: "snapshot pinned by",
		srcPkg: "snapshot", srcTyp: "Store",
		srcMethods: map[string]bool{"Acquire": true},
		recvMethod: "Release",
		resPkg:     "snapshot", resTyp: "Snapshot",
	},
	{
		id: "client", noun: "scheduler client from",
		srcPkg: "sched", srcTyp: "Pool",
		srcMethods: map[string]bool{"NewClient": true},
		recvMethod: "Close",
		resPkg:     "sched", resTyp: "Client",
	},
	{
		id: "group", noun: "task group from",
		srcPkg: "sched", srcTyp: "Client",
		srcMethods: map[string]bool{"Group": true},
		recvMethod: "Wait",
		resPkg:     "sched", resTyp: "Group",
	},
}

// resourceKind matches a (possibly pointer) type against the kinds.
func resourceKind(t types.Type) *kind {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	pkg, name := named.Obj().Pkg().Name(), named.Obj().Name()
	for _, k := range kinds {
		if k.resPkg == pkg && k.resTyp == name {
			return k
		}
	}
	return nil
}

// paramClass is a callee parameter's effect on a resource passed to it.
type paramClass int

const (
	classReadonly paramClass = iota // observed only: obligation stays with the caller
	classReleases                   // the callee releases it: counts as the release
	classEscapes                    // the callee keeps it: ownership transfers
)

type ev struct {
	pass         *lintkit.Pass
	cg           *lintkit.CallGraph
	params       map[*types.Var]paramClass // resource-typed params with effects
	ownerSources map[*types.Func]*kind     // functions returning an owned resource
	waived       map[*ast.File]map[int]string
}

func run(pass *lintkit.Pass) error {
	e := &ev{
		pass:         pass,
		cg:           pass.Cache.CallGraph(pass.Fset, pass.All),
		params:       map[*types.Var]paramClass{},
		ownerSources: map[*types.Func]*kind{},
		waived:       map[*ast.File]map[int]string{},
	}
	e.summarizeParams()
	e.findOwnerSources()
	for _, node := range e.cg.Funcs() {
		e.checkBody(node, node.Decl.Body)
		// Closures get their own flow graph: an acquisition inside one
		// must release within the closure (or defer there).
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				e.checkBody(node, fl.Body)
			}
			return true
		})
	}
	return nil
}

// sourceCall resolves a call to the resource kind it acquires, from the
// primary sources or an owner-returning function.
func (e *ev) sourceCall(info *types.Info, call *ast.CallExpr) *kind {
	fn := lintkit.Callee(info, call)
	if fn == nil {
		return nil
	}
	for _, k := range kinds {
		if k.srcMethods[fn.Name()] && lintkit.PkgName(fn) == k.srcPkg &&
			lintkit.ReceiverTypeName(fn) == k.srcTyp {
			return k
		}
	}
	return e.ownerSources[fn]
}

// isReleaseCall reports whether call releases the resource held in obj
// (by the kind's own release op, or by a callee summarized as
// releasing its parameter).
func (e *ev) isReleaseCall(info *types.Info, call *ast.CallExpr, k *kind, isObj func(*ast.Ident) bool) bool {
	fn := lintkit.Callee(info, call)
	if fn == nil {
		return false
	}
	if k.byArg {
		if fn.Name() == k.relMethod && lintkit.PkgName(fn) == k.relPkg &&
			lintkit.ReceiverTypeName(fn) == k.relTyp && len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && isObj(id) {
				return true
			}
		}
	} else if fn.Name() == k.recvMethod && lintkit.PkgName(fn) == k.resPkg &&
		lintkit.ReceiverTypeName(fn) == k.resTyp {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && isObj(id) {
				return true
			}
		}
	}
	// A callee summarized as releasing its resource parameter.
	cls, known := e.argClass(info, call, isObj)
	return known && cls == classReleases
}

// argClass looks up the parameter summary for the argument position
// where obj is passed. known is false when obj is not an argument, or
// the callee is outside the graph.
func (e *ev) argClass(info *types.Info, call *ast.CallExpr, isObj func(*ast.Ident) bool) (paramClass, bool) {
	argIdx := -1
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && isObj(id) {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return classReadonly, false
	}
	fn := lintkit.Callee(info, call)
	if fn == nil || e.cg.Node(fn) == nil {
		return classEscapes, true // unknown callee: assume ownership transfer
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || argIdx >= sig.Params().Len() {
		return classEscapes, true // lands in a variadic tail or mismatch
	}
	if sig.Variadic() && argIdx == sig.Params().Len()-1 {
		return classEscapes, true
	}
	p := sig.Params().At(argIdx)
	if resourceKind(p.Type()) == nil {
		return classEscapes, true // not tracked through a non-resource param
	}
	return e.params[p], true
}

// summarizeParams computes the per-parameter effect summaries by
// fix-point: release and escape facts flow from callees to callers.
func (e *ev) summarizeParams() {
	for changed := true; changed; {
		changed = false
		for _, node := range e.cg.Funcs() {
			sig, ok := node.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				k := resourceKind(p.Type())
				if k == nil {
					continue
				}
				cls := e.classifyParam(node, p, k)
				if cls > e.params[p] {
					e.params[p] = cls
					changed = true
				}
			}
		}
	}
}

// classifyParam scans one function body for what it does with a
// resource parameter. Escape dominates release: a callee that keeps
// the resource on any path owns it, and the caller must not assume a
// release happened.
func (e *ev) classifyParam(node *lintkit.FuncNode, p *types.Var, k *kind) paramClass {
	info := node.Pkg.Info
	isObj := func(id *ast.Ident) bool { return info.Uses[id] == p || info.Defs[id] == p }
	cls := classReadonly
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if e.isReleaseCall(info, n, k, isObj) {
				if cls < classReleases {
					cls = classReleases
				}
				return true
			}
			if c, known := e.argClass(info, n, isObj); known && c > cls {
				cls = c
			}
		case *ast.ReturnStmt:
			if returnsObj(n, isObj) {
				cls = classEscapes
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && isObj(id) {
					cls = classEscapes
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesIdent(n.X, isObj) {
				cls = classEscapes
			}
		case *ast.CompositeLit:
			if usesIdent(n, isObj) {
				cls = classEscapes
			}
			return false
		case *ast.SendStmt:
			if usesIdent(n.Value, isObj) {
				cls = classEscapes
			}
		case *ast.FuncLit:
			if usesIdent(n.Body, isObj) {
				cls = classEscapes
			}
			return false
		}
		return true
	})
	return cls
}

// findOwnerSources marks functions that return a resource they
// acquired: their callers inherit the release obligation. Fix-point,
// since wrappers can stack.
func (e *ev) findOwnerSources() {
	for changed := true; changed; {
		changed = false
		for _, node := range e.cg.Funcs() {
			if e.ownerSources[node.Fn] != nil {
				continue
			}
			if k := e.returnsOwned(node); k != nil {
				e.ownerSources[node.Fn] = k
				changed = true
			}
		}
	}
}

func (e *ev) returnsOwned(node *lintkit.FuncNode) *kind {
	info := node.Pkg.Info
	var found *kind
	// Only the declared body: a closure returning a resource does not
	// make its encloser an owner source.
	walkSkipFuncLit(node.Decl.Body, func(n ast.Node) {
		if found != nil {
			return
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		k := e.sourceCall(info, call)
		if k == nil || len(as.Lhs) == 0 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := objOf(info, id)
		if obj == nil {
			return
		}
		isObj := func(x *ast.Ident) bool { return objOf(info, x) == obj }
		walkSkipFuncLit(node.Decl.Body, func(m ast.Node) {
			if ret, ok := m.(*ast.ReturnStmt); ok && returnsObj(ret, isObj) {
				found = k
			}
		})
	})
	return found
}

// checkBody finds the acquisitions directly inside one body (the
// declared function's, or a closure's) and runs the must-release query
// for each against that body's own flow graph.
func (e *ev) checkBody(node *lintkit.FuncNode, body *ast.BlockStmt) {
	info := node.Pkg.Info
	var cfg *lintkit.CFG

	inspectOwnLevel(body, func(n ast.Node) {
		// Bare source call as a statement: acquired and dropped.
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if k := e.sourceCall(info, call); k != nil && !e.isWaived(node, call.Pos()) {
					e.pass.Reportf(call.Pos(), "%s %s is discarded without %s",
						k.noun, calleeName(info, call), k.releaseName())
				}
			}
			return
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		k := e.sourceCall(info, call)
		if k == nil || len(as.Lhs) == 0 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return // stored into a field/index at birth: owner changed
		}
		if e.isWaived(node, call.Pos()) {
			return
		}
		if id.Name == "_" {
			e.pass.Reportf(as.Pos(), "%s %s is discarded without %s",
				k.noun, calleeName(info, call), k.releaseName())
			return
		}
		obj := objOf(info, id)
		if obj == nil {
			return
		}
		if cfg == nil {
			cfg = lintkit.BuildCFG(body)
		}
		if cfg.Unsupported {
			return
		}
		var errObj types.Object
		if len(as.Lhs) == 2 {
			if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				errObj = objOf(info, eid)
			}
		}
		e.checkAcquire(node, body, cfg, as, call, k, obj, errObj)
	})
}

// checkAcquire is the per-acquisition must-release query, the direct
// descendant of pinpair's checkPin.
func (e *ev) checkAcquire(node *lintkit.FuncNode, body *ast.BlockStmt, cfg *lintkit.CFG,
	acquire ast.Stmt, call *ast.CallExpr, k *kind, obj, errObj types.Object) {
	info := node.Pkg.Info
	isObj := func(id *ast.Ident) bool { return objOf(info, id) == obj }

	isReleaseNode := func(n ast.Node) bool {
		released := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && e.isReleaseCall(info, c, k, isObj) {
				released = true
				return false
			}
			return true
		})
		return released
	}

	// escapesNode: ownership leaves this frame. Calls consult the callee
	// parameter summary — a readonly callee keeps tracking alive, the
	// upgrade over pinpair's assume-transfer rule.
	var escapesNode func(n ast.Node) bool
	escapesNode = func(n ast.Node) bool {
		escaped := false
		ast.Inspect(n, func(m ast.Node) bool {
			if escaped {
				return false
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				if e.isReleaseCall(info, m, k, isObj) {
					return false // the release, not an escape
				}
				if cls, known := e.argClass(info, m, isObj); known && cls == classEscapes {
					escaped = true
					return false
				}
				return true
			case *ast.SelectorExpr:
				if escapesNode(m.X) {
					escaped = true
				}
				return false
			case *ast.AssignStmt:
				for _, rhs := range m.Rhs {
					if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && isObj(id) {
						escaped = true // aliased: tracking ends
						return false
					}
				}
				return true
			case *ast.ReturnStmt:
				if usesIdent(m, isObj) {
					escaped = true // owner-return: callers inherit the obligation
					return false
				}
				return true
			case *ast.UnaryExpr:
				if m.Op == token.AND && usesIdent(m.X, isObj) {
					escaped = true
					return false
				}
				return true
			case *ast.CompositeLit:
				if usesIdent(m, isObj) {
					escaped = true
				}
				return false
			case *ast.FuncLit:
				if usesIdent(m.Body, isObj) {
					escaped = true
				}
				return false
			case *ast.SendStmt:
				if usesIdent(m.Value, isObj) {
					escaped = true
					return false
				}
				return true
			}
			return true
		})
		return escaped
	}

	// A deferred release in this body covers every path out of it.
	deferSatisfied := false
	inspectOwnLevel(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		if isReleaseNode(d.Call) {
			deferSatisfied = true
		} else if fl, ok := d.Call.Fun.(*ast.FuncLit); ok && isReleaseNode(fl.Body) {
			deferSatisfied = true
		}
	})
	if deferSatisfied {
		return
	}

	onHeadline := func(s ast.Stmt, pred func(ast.Node) bool) bool {
		for _, h := range lintkit.Headline(s) {
			if pred(h) {
				return true
			}
		}
		return false
	}
	release := func(s ast.Stmt) bool { return onHeadline(s, isReleaseNode) }
	kill := func(s ast.Stmt) bool { return onHeadline(s, escapesNode) }

	// Prune branches only reachable when the acquisition failed.
	skipEdge := func(ec lintkit.EdgeCond) bool {
		if errObj == nil {
			return false
		}
		bin, ok := ast.Unparen(ec.Cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			return false
		}
		errSide := bin.X
		if isNilIdent(bin.X) {
			errSide = bin.Y
		} else if !isNilIdent(bin.Y) {
			return false
		}
		id, ok := ast.Unparen(errSide).(*ast.Ident)
		if !ok || objOf(info, id) != errObj {
			return false
		}
		return (bin.Op == token.NEQ) != ec.Negated
	}

	srcName := calleeName(info, call)
	if leakAt, found := cfg.ReachesExitWithout(acquire, release, kill, skipEdge); found {
		switch {
		case leakAt == acquire:
			e.pass.Reportf(acquire.Pos(), "%s %s is still held when the loop re-acquires; the previous one leaks (release with %s)",
				k.noun, srcName, k.releaseName())
		case leakAt != nil:
			e.pass.Reportf(acquire.Pos(), "%s %s is not released on the path to %s: missing %s",
				k.noun, srcName, e.pass.Fset.Position(leakAt.Pos()), k.releaseName())
		default:
			e.pass.Reportf(acquire.Pos(), "%s %s may leave the function without %s",
				k.noun, srcName, k.releaseName())
		}
	}
}

// isWaived reports whether a pinsafe directive covers pos in the file
// declaring node.
func (e *ev) isWaived(node *lintkit.FuncNode, pos token.Pos) bool {
	for _, f := range node.Pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			w, ok := e.waived[f]
			if !ok {
				w = lintkit.WaivedLines(e.pass.Fset, f, "pinsafe")
				e.waived[f] = w
			}
			_, hit := w[e.pass.Fset.Position(pos).Line]
			return hit
		}
	}
	return false
}

// --- small helpers ---

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// returnsObj reports whether the resource itself is one of the return
// statement's result expressions ("return pg" — not "return pg.Data",
// which only reads through it).
func returnsObj(ret *ast.ReturnStmt, isObj func(*ast.Ident) bool) bool {
	for _, r := range ret.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && isObj(id) {
			return true
		}
	}
	return false
}

func usesIdent(n ast.Node, isObj func(*ast.Ident) bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && isObj(id) {
			found = true
			return false
		}
		return true
	})
	return found
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	fn := lintkit.Callee(info, call)
	if fn == nil {
		return "call"
	}
	if recv := lintkit.ReceiverTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// inspectOwnLevel visits the nodes of body without descending into
// nested function literals (they are separate bodies with their own
// flow graphs).
func inspectOwnLevel(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func walkSkipFuncLit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
